// Reproduces paper Figure 6: impact of the degree of temporal
// correlations on BPL over time.
//
//  (a) eps = 1:   BPL over t = 0..14 for s in {0, 0.005, 0.05} at n=50
//                 and s = 0.005 at n = 200.
//  (b) eps = 0.1: the same sweep over t = 0..140.
//
// Paper findings to reproduce in shape:
//  * stronger correlation (smaller s) -> sharper, longer growth, higher
//    plateau;
//  * smaller eps delays the growth (~10x more steps) but under strong
//    correlation ends up comparably high;
//  * larger n under the same s -> weaker effective correlation.
//
// BENCH_QUICK=1 trims n=200 (the costly series).

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/table.h"
#include "core/tpl_accountant.h"
#include "markov/smoothing.h"

namespace {

using namespace tcdp;

struct Config {
  const char* label;
  std::size_t n;
  double s;  // negative = strongest (no smoothing)
};

std::vector<double> BplSeries(const Config& config, double eps,
                              std::size_t horizon) {
  StochasticMatrix matrix =
      config.s <= 0.0
          ? StrongestCorrelationMatrix(config.n)
          : SmoothedCorrelationMatrix(config.n, config.s).value();
  TplAccountant acc(TemporalCorrelations::BackwardOnly(std::move(matrix)));
  auto s = acc.RecordUniformReleases(eps, horizon);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return {};
  }
  return acc.BplSeries();
}

void Panel(const char* title, double eps, std::size_t horizon,
           const std::vector<std::size_t>& ts,
           const std::vector<Config>& configs) {
  std::printf("%s\n", title);
  std::vector<std::string> headers = {"t"};
  for (const auto& c : configs) headers.push_back(c.label);
  Table table(headers);
  std::vector<std::vector<double>> series;
  for (const auto& c : configs) series.push_back(BplSeries(c, eps, horizon));
  for (std::size_t t : ts) {
    table.AddRow();
    table.AddInt(static_cast<long long>(t));
    for (const auto& s : series) {
      table.AddNumber(t <= s.size() ? s[t - 1] : 0.0, 4);
    }
  }
  std::printf("%s\n", table.ToAlignedString().c_str());
}

}  // namespace

int main() {
  const bool quick = [] {
    const char* env = std::getenv("BENCH_QUICK");
    return env != nullptr && env[0] == '1';
  }();

  std::printf("Figure 6 reproduction: BPL vs degree of temporal "
              "correlation (Laplacian smoothing s, Eq. 25)\n\n");

  std::vector<Config> configs = {
      {"s=0 (n=50)", 50, -1.0},
      {"s=0.005 (n=50)", 50, 0.005},
      {"s=0.05 (n=50)", 50, 0.05},
  };
  if (!quick) configs.push_back({"s=0.005 (n=200)", 200, 0.005});

  Panel("(a) eps = 1, t = 1..14", 1.0, 14,
        {1, 2, 4, 6, 8, 10, 12, 14}, configs);
  Panel("(b) eps = 0.1, t = 1..140", 0.1, 140,
        {1, 20, 40, 60, 80, 100, 120, 140}, configs);

  std::printf(
      "Shape checks: rows grow then plateau (except s=0, which grows\n"
      "linearly forever); smaller s gives higher plateaus; the n=200\n"
      "column stays below its n=50 counterpart at equal s.\n");
  return 0;
}
