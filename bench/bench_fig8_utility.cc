// Reproduces paper Figure 8: data utility (expected absolute Laplace
// noise) of the 2-DP_T mechanisms.
//
//  (a) vs T in {5, 10, 50}: n = 50, s = 0.001 (strong correlation).
//      Paper: Algorithm 2's noise is flat (~31); Algorithm 3 is lower for
//      short T (~19 at T=5, ~26 at T=10) and converges to Algorithm 2.
//  (b) vs s in {0.01, 0.1, 1}: T = 10. Paper: noise decays toward the
//      no-correlation dashed line (E|noise| = 1/2 at alpha = 2).

#include <cstdio>

#include "common/table.h"
#include "core/budget_allocation.h"
#include "markov/smoothing.h"
#include "release/release_engine.h"

namespace {

using namespace tcdp;

StatusOr<BalancedBudget> Solve(std::size_t n, double s, double alpha) {
  TCDP_ASSIGN_OR_RETURN(auto matrix, SmoothedCorrelationMatrix(n, s));
  TCDP_ASSIGN_OR_RETURN(auto corr,
                        TemporalCorrelations::Both(matrix, matrix));
  TCDP_ASSIGN_OR_RETURN(auto alloc, BudgetAllocator::Create(corr, alpha));
  return alloc.budget();
}

StatusOr<double> NoiseFor(std::size_t n, double s, double alpha,
                          std::size_t horizon, bool quantified) {
  TCDP_ASSIGN_OR_RETURN(auto matrix, SmoothedCorrelationMatrix(n, s));
  TCDP_ASSIGN_OR_RETURN(auto corr,
                        TemporalCorrelations::Both(matrix, matrix));
  TCDP_ASSIGN_OR_RETURN(auto alloc, BudgetAllocator::Create(corr, alpha));
  if (quantified) {
    TCDP_ASSIGN_OR_RETURN(auto sched, alloc.QuantifiedSchedule(horizon));
    return ExpectedAbsNoise(sched);
  }
  return ExpectedAbsNoise(alloc.UpperBoundSchedule(horizon));
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  const double alpha = 2.0;
  const std::size_t n = 50;

  std::printf("Figure 8 reproduction: data utility of %.0f-DP_T "
              "mechanisms (expected |Laplace noise|, sensitivity 1)\n\n",
              alpha);

  // --- (a) utility vs T at strong correlation s = 0.001 -----------------
  {
    const double s = 0.001;
    auto budget = Solve(n, s, alpha);
    if (!budget.ok()) return Fail(budget.status());
    std::printf("(a) n=%zu, s=%.3f: eps* = %.4f  "
                "(paper: Algorithm 2 noise ~31 flat)\n\n",
                n, s, budget->eps_steady);
    Table table({"T", "Algorithm 2", "Algorithm 3"});
    for (std::size_t horizon : {5u, 10u, 50u}) {
      auto a2 = NoiseFor(n, s, alpha, horizon, /*quantified=*/false);
      auto a3 = NoiseFor(n, s, alpha, horizon, /*quantified=*/true);
      if (!a2.ok()) return Fail(a2.status());
      if (!a3.ok()) return Fail(a3.status());
      table.AddRow();
      table.AddInt(static_cast<long long>(horizon));
      table.AddNumber(*a2, 2);
      table.AddNumber(*a3, 2);
    }
    std::printf("%s\n", table.ToAlignedString().c_str());
  }

  // --- (b) utility vs s at T = 10 ---------------------------------------
  {
    const std::size_t horizon = 10;
    std::printf("(b) n=%zu, T=%zu  (dashed no-correlation line: "
                "E|noise| = %.2f)\n\n",
                n, horizon, 1.0 / alpha);
    Table table({"s", "Algorithm 2", "Algorithm 3"});
    for (double s : {0.01, 0.1, 1.0}) {
      auto a2 = NoiseFor(n, s, alpha, horizon, /*quantified=*/false);
      auto a3 = NoiseFor(n, s, alpha, horizon, /*quantified=*/true);
      if (!a2.ok()) return Fail(a2.status());
      if (!a3.ok()) return Fail(a3.status());
      table.AddRow();
      table.AddNumber(s, 2);
      table.AddNumber(*a2, 3);
      table.AddNumber(*a3, 3);
    }
    std::printf("%s\n", table.ToAlignedString().c_str());
  }

  std::printf(
      "Shape checks: (a) Algorithm 2 constant in T, Algorithm 3 cheaper\n"
      "for small T and approaching Algorithm 2 as T grows; (b) both decay\n"
      "toward 1/alpha as correlations weaken (s grows).\n");
  return 0;
}
