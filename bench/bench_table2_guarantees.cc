// Reproduces paper Table II: the privacy guarantee of eps-DP mechanisms
// at event level, w-event level and user level, on independent vs
// temporally correlated data — instantiated numerically with the
// library's accountant so every cell is *computed*, not transcribed.
//
//   Table II (paper):
//                      independent      temporally correlated
//     event-level      eps-DP           alpha-DP_T (alpha >= eps)
//     w-event          w*eps-DP         Theorem 2 composition
//     user-level       T*eps-DP         T*eps-DP_T (Corollary 1)

#include <cstdio>

#include "common/table.h"
#include "core/supremum.h"
#include "core/tpl_accountant.h"
#include "dp/budget.h"

namespace {

using namespace tcdp;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  const double eps = 0.1;
  const std::size_t horizon = 10;  // T
  const std::size_t w = 3;

  auto p = StochasticMatrix::FromRows({{0.8, 0.2}, {0.0, 1.0}});
  auto corr = TemporalCorrelations::Both(p, p);
  if (!corr.ok()) return Fail(corr.status());

  // Correlated accountant.
  TplAccountant correlated(*corr);
  Status s = correlated.RecordUniformReleases(eps, horizon);
  if (!s.ok()) return Fail(s);
  // Independent accountant (classical DP adversary).
  TplAccountant independent(TemporalCorrelations::None());
  s = independent.RecordUniformReleases(eps, horizon);
  if (!s.ok()) return Fail(s);
  // Classical ledger for the w-event column on independent data.
  BudgetLedger ledger;
  for (std::size_t t = 0; t < horizon; ++t) {
    s = ledger.Spend(eps);
    if (!s.ok()) return Fail(s);
  }

  std::printf("Table II reproduction: guarantees of a %.1f-DP mechanism "
              "per step, T=%zu, w=%zu,\ncorrelations P^B = P^F = "
              "(0.8 0.2; 0 1)\n\n",
              eps, horizon, w);

  // Event level: max single-t TPL.
  const double event_indep = independent.MaxTpl();
  const double event_corr = correlated.MaxTpl();
  // w-event: max over windows of w consecutive releases (Theorem 2 on
  // the correlated side; plain sums on the independent side).
  double wevent_corr = 0.0;
  for (std::size_t t = 1; t + w - 1 <= horizon; ++t) {
    auto v = correlated.SequenceTpl(t, w - 1);
    if (!v.ok()) return Fail(v.status());
    wevent_corr = std::max(wevent_corr, *v);
  }
  auto wevent_indep = ledger.WindowSpend(w);
  if (!wevent_indep.ok()) return Fail(wevent_indep.status());
  // User level: the whole timeline.
  auto user_corr = correlated.SequenceTpl(1, horizon - 1);
  if (!user_corr.ok()) return Fail(user_corr.status());
  const double user_indep = ledger.TotalSpent();

  Table table({"privacy notion", "independent data",
               "temporally correlated"});
  table.AddRowCells({"event-level", FormatNumber(event_indep, 4) + "-DP",
                     FormatNumber(event_corr, 4) + "-DP_T"});
  table.AddRowCells({"w-event (w=3)", FormatNumber(*wevent_indep, 4) + "-DP",
                     FormatNumber(wevent_corr, 4) + "-DP_T"});
  table.AddRowCells({"user-level", FormatNumber(user_indep, 4) + "-DP",
                     FormatNumber(*user_corr, 4) + "-DP_T"});
  std::printf("%s\n", table.ToAlignedString().c_str());

  std::printf(
      "Checks against the paper:\n"
      "  * event-level: %.4f > %.4f — correlations inflate event-level "
      "leakage (alpha >= eps).\n"
      "  * user-level: %.4f == %.4f == T*eps — Corollary 1: correlations "
      "do NOT hurt user-level DP.\n"
      "  * w-event: %.4f >= %.4f — Theorem 2 strictly dominates the "
      "independent window sum.\n",
      event_corr, event_indep, *user_corr, user_indep, wevent_corr,
      *wevent_indep);

  // The extreme case called out under Table II: strongest correlation
  // blurs event-level into user-level (T*eps).
  auto strongest = TemporalCorrelations::Both(StochasticMatrix::Identity(2),
                                              StochasticMatrix::Identity(2));
  if (!strongest.ok()) return Fail(strongest.status());
  TplAccountant extreme(*strongest);
  s = extreme.RecordUniformReleases(eps, horizon);
  if (!s.ok()) return Fail(s);
  std::printf(
      "\nExtreme case (P = I): event-level TPL = %.4f = T*eps = %.4f — an\n"
      "eps-DP mechanism is only T*eps-DP_T on event level (the boundary\n"
      "between event- and user-level privacy disappears).\n",
      extreme.MaxTpl(), static_cast<double>(horizon) * eps);
  return 0;
}
