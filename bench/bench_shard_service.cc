// Throughput and recovery benchmarks for the sharded release service
// (ISSUE 3 acceptance):
//
//   * requests/sec over a shard-count x batch-window grid, against the
//     single-shard FleetEngine path (PR 2's engine driven serially with
//     the identical batched event sequence). On multi-core hosts the
//     best multi-shard configuration must beat the FleetEngine
//     baseline (gate enforced when hardware_concurrency >= 2 and not
//     --smoke) — shard workers parallelize the per-release Algorithm-1
//     work the same way the bank's ParallelForRange does, plus
//     pipeline overlap between ingest and apply.
//   * recovery time and disk footprint vs WAL length: full log replay
//     vs snapshot + suffix vs a compacted log (ISSUE 5) — compaction
//     must shrink the on-disk WAL (gate) while recovery stays correct.
//
// Emits BENCH_shard.json next to BENCH_fleet.json; `--smoke` runs a
// seconds-scale configuration for the CI schema check (CTest label
// perf_smoke). Bitwise service/baseline equality is asserted in every
// mode.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "markov/stochastic_matrix.h"
#include "server/sharded_service.h"
#include "service/fleet_engine.h"

namespace {

using namespace tcdp;

struct BenchSpec {
  std::size_t users = 0;
  std::size_t profiles = 0;     // distinct matrix pairs
  std::size_t matrix_size = 0;  // n
  std::size_t requests = 0;     // per-user release requests
  std::uint64_t seed = 20260728;
};

struct Request {
  std::size_t user = 0;
  double epsilon = 0.0;
};

std::vector<TemporalCorrelations> MakeProfiles(const BenchSpec& spec) {
  Rng rng(spec.seed);
  std::vector<TemporalCorrelations> profiles;
  for (std::size_t p = 0; p < spec.profiles; ++p) {
    const StochasticMatrix m = StochasticMatrix::Random(spec.matrix_size, &rng);
    profiles.push_back(TemporalCorrelations::Both(m, m).value());
  }
  return profiles;
}

std::vector<Request> MakeRequests(const BenchSpec& spec) {
  Rng rng(spec.seed + 1);
  const double epsilons[] = {0.05, 0.1, 0.2};
  std::vector<Request> requests(spec.requests);
  for (auto& request : requests) {
    request.user = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(spec.users) - 1));
    request.epsilon = epsilons[rng.UniformInt(0, 2)];
  }
  return requests;
}

/// The deterministic micro-batch semantics, applied offline: the exact
/// global (eps, participants) sequence the service dispatches.
struct GlobalRelease {
  double epsilon = 0.0;
  std::vector<std::size_t> participants;
};

std::vector<GlobalRelease> BatchRequests(const std::vector<Request>& requests,
                                         std::size_t batch_window) {
  std::vector<GlobalRelease> releases;
  std::vector<GlobalRelease> window;
  std::size_t count = 0;
  auto flush = [&] {
    for (auto& group : window) releases.push_back(std::move(group));
    window.clear();
    count = 0;
  };
  for (const Request& request : requests) {
    GlobalRelease* group = nullptr;
    for (auto& candidate : window) {
      if (candidate.epsilon == request.epsilon) group = &candidate;
    }
    if (group == nullptr) {
      window.push_back(GlobalRelease{request.epsilon, {}});
      group = &window.back();
    }
    bool seen = false;
    for (std::size_t u : group->participants) seen |= u == request.user;
    if (!seen) group->participants.push_back(request.user);
    if (++count >= batch_window) flush();
  }
  flush();
  return releases;
}

struct RunResult {
  double seconds = 0.0;
  double requests_per_sec = 0.0;
  double overall_alpha = 0.0;
  std::size_t global_releases = 0;
};

/// PR 2's engine, single shard, no queue, no WAL: the bar the sharded
/// service has to clear.
RunResult RunFleetEngineBaseline(const BenchSpec& spec,
                                 std::size_t batch_window) {
  const auto profiles = MakeProfiles(spec);
  const auto requests = MakeRequests(spec);
  const auto releases = BatchRequests(requests, batch_window);
  FleetEngineOptions options;
  options.num_threads = 1;
  FleetEngine engine(options);
  for (std::size_t u = 0; u < spec.users; ++u) {
    engine.AddUser("user-" + std::to_string(u), profiles[u % spec.profiles]);
  }
  WallTimer timer;
  for (const GlobalRelease& release : releases) {
    const Status recorded =
        engine.RecordRelease(release.epsilon, release.participants);
    if (!recorded.ok()) {
      std::fprintf(stderr, "baseline: %s\n", recorded.ToString().c_str());
      std::exit(1);
    }
  }
  RunResult result;
  result.seconds = timer.ElapsedSeconds();
  result.requests_per_sec =
      result.seconds > 0.0
          ? static_cast<double>(requests.size()) / result.seconds
          : 0.0;
  result.overall_alpha = engine.OverallAlpha();
  result.global_releases = releases.size();
  return result;
}

RunResult RunService(const BenchSpec& spec, std::size_t shards,
                     std::size_t batch_window, const std::string& log_dir) {
  const auto profiles = MakeProfiles(spec);
  const auto requests = MakeRequests(spec);
  server::ShardedServiceOptions options;
  options.num_shards = shards;
  options.batch_window = batch_window;
  auto service = server::ShardedReleaseService::Create(log_dir, options);
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n",
                 service.status().ToString().c_str());
    std::exit(1);
  }
  for (std::size_t u = 0; u < spec.users; ++u) {
    const Status joined = (*service)->Join("user-" + std::to_string(u),
                                           profiles[u % spec.profiles]);
    if (!joined.ok()) {
      std::fprintf(stderr, "join: %s\n", joined.ToString().c_str());
      std::exit(1);
    }
  }
  Status flushed = (*service)->Flush();  // joins applied before timing
  WallTimer timer;
  for (const Request& request : requests) {
    const Status released = (*service)->Release(
        "user-" + std::to_string(request.user), request.epsilon);
    if (!released.ok()) {
      std::fprintf(stderr, "release: %s\n", released.ToString().c_str());
      std::exit(1);
    }
  }
  flushed = (*service)->Flush();
  RunResult result;
  result.seconds = timer.ElapsedSeconds();
  if (!flushed.ok()) {
    std::fprintf(stderr, "flush: %s\n", flushed.ToString().c_str());
    std::exit(1);
  }
  result.requests_per_sec =
      result.seconds > 0.0
          ? static_cast<double>(requests.size()) / result.seconds
          : 0.0;
  auto alpha = (*service)->OverallAlpha();
  result.overall_alpha = alpha.ok() ? *alpha : -1.0;
  result.global_releases = (*service)->stats().global_releases;
  const Status closed = (*service)->Close();
  if (!closed.ok()) {
    std::fprintf(stderr, "close: %s\n", closed.ToString().c_str());
    std::exit(1);
  }
  return result;
}

double TimeRecovery(const std::string& log_dir) {
  WallTimer timer;
  auto service = server::ShardedReleaseService::Recover(log_dir);
  if (!service.ok()) {
    std::fprintf(stderr, "recover: %s\n",
                 service.status().ToString().c_str());
    std::exit(1);
  }
  const double seconds = timer.ElapsedSeconds();
  (void)(*service)->Close();
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_shard.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json path]\n", argv[0]);
      return 2;
    }
  }

  BenchSpec spec;
  spec.users = smoke ? 32 : 256;
  spec.profiles = smoke ? 4 : 16;
  spec.matrix_size = smoke ? 6 : 16;
  spec.requests = smoke ? 120 : 1000;

  const std::size_t hw = std::thread::hardware_concurrency();
  const std::size_t batch_window = smoke ? 8 : 16;
  std::vector<std::size_t> shard_counts =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4};
  if (!smoke && hw > 4) shard_counts.push_back(hw);
  std::vector<std::size_t> windows =
      smoke ? std::vector<std::size_t>{batch_window}
            : std::vector<std::size_t>{batch_window, 64};

  std::string json = "{\n  \"bench\": \"shard_service\",\n";
  json += "  \"smoke\": " + std::string(smoke ? "true" : "false") + ",\n";
  json += "  \"hardware_concurrency\": " + std::to_string(hw) + ",\n";
  json += "  \"workloads\": [\n";
  char buf[512];
  bool ok = true;
  bool first = true;

  const RunResult baseline = RunFleetEngineBaseline(spec, batch_window);
  std::snprintf(buf, sizeof(buf),
                "    {\"name\": \"fleet_engine_baseline\", \"shards\": 1, "
                "\"batch_window\": %zu, \"durable\": false, \"users\": %zu, "
                "\"requests\": %zu, \"global_releases\": %zu, "
                "\"seconds\": %.6f, \"requests_per_sec\": %.1f}",
                batch_window, spec.users, spec.requests,
                baseline.global_releases, baseline.seconds,
                baseline.requests_per_sec);
  json += buf;
  first = false;
  std::printf(
      "baseline (FleetEngine, %zu users, %zu profiles, n=%zu, window %zu): "
      "%.0f req/s over %zu global releases\n",
      spec.users, spec.profiles, spec.matrix_size, batch_window,
      baseline.requests_per_sec, baseline.global_releases);

  double best_multi_shard = 0.0;
  for (std::size_t window : windows) {
    for (std::size_t shards : shard_counts) {
      const RunResult run = RunService(spec, shards, window, "");
      std::snprintf(buf, sizeof(buf),
                    ",\n    {\"name\": \"service\", \"shards\": %zu, "
                    "\"batch_window\": %zu, \"durable\": false, "
                    "\"users\": %zu, \"requests\": %zu, "
                    "\"global_releases\": %zu, \"seconds\": %.6f, "
                    "\"requests_per_sec\": %.1f}",
                    shards, window, spec.users, spec.requests,
                    run.global_releases, run.seconds, run.requests_per_sec);
      json += buf;
      std::printf("service shards=%zu window=%zu: %.0f req/s (%zu global "
                  "releases)\n",
                  shards, window, run.requests_per_sec, run.global_releases);
      // Only same-window runs count toward the gate: a coarser window
      // does less accounting work per request and would flatter the
      // comparison.
      if (shards > 1 && window == batch_window) {
        best_multi_shard = std::max(best_multi_shard, run.requests_per_sec);
      }
      // Determinism: every configuration must agree with the baseline
      // on the fleet's overall alpha, bitwise.
      if (window == batch_window &&
          run.overall_alpha != baseline.overall_alpha) {
        std::fprintf(stderr,
                     "FAILED: shards=%zu window=%zu overall alpha %.17g != "
                     "baseline %.17g\n",
                     shards, window, run.overall_alpha,
                     baseline.overall_alpha);
        ok = false;
      }
    }
  }

  // Durable run + recovery scaling: half and full logs, full log with
  // snapshots cutting the replay, and the snapshotted log after a WAL
  // compaction (disk footprint bounded by manifest + compaction record
  // + post-snapshot suffix).
  json += "\n  ],\n  \"recovery\": [\n";
  first = true;
  const std::string base_dir = "/tmp/tcdp_bench_shard_logs";
  struct RecoveryCase {
    const char* name;
    std::size_t requests;
    std::size_t snapshot_every;
    bool compact;
  };
  const RecoveryCase cases[] = {
      {"half_log", spec.requests / 2, 0, false},
      {"full_log", spec.requests, 0, false},
      {"full_log_snapshots", spec.requests, 25, false},
      {"full_log_compacted", spec.requests, 25, true},
  };
  std::uint64_t snapshotted_bytes = 0;
  std::uint64_t compacted_bytes = 0;
  double compact_seconds = 0.0;
  for (const RecoveryCase& c : cases) {
    std::filesystem::remove_all(base_dir);
    BenchSpec durable_spec = spec;
    durable_spec.requests = c.requests;
    {
      const auto profiles = MakeProfiles(durable_spec);
      const auto requests = MakeRequests(durable_spec);
      server::ShardedServiceOptions options;
      options.num_shards = 2;
      options.batch_window = batch_window;
      options.snapshot_every = c.snapshot_every;
      auto service = server::ShardedReleaseService::Create(base_dir, options);
      if (!service.ok()) {
        std::fprintf(stderr, "durable create: %s\n",
                     service.status().ToString().c_str());
        return 1;
      }
      for (std::size_t u = 0; u < durable_spec.users; ++u) {
        (void)(*service)->Join("user-" + std::to_string(u),
                               profiles[u % durable_spec.profiles]);
      }
      for (const Request& request : requests) {
        (void)(*service)->Release("user-" + std::to_string(request.user),
                                  request.epsilon);
      }
      if (c.compact) {
        if (!(*service)->Flush().ok()) return 1;
        WallTimer compact_timer;
        const Status compacted = (*service)->Compact();
        compact_seconds = compact_timer.ElapsedSeconds();
        if (!compacted.ok()) {
          std::fprintf(stderr, "compact: %s\n",
                       compacted.ToString().c_str());
          return 1;
        }
      }
      if (!(*service)->Close().ok()) return 1;
    }
    std::uint64_t wal_records = 0;
    std::uint64_t wal_physical_records = 0;
    std::uint64_t wal_bytes = 0;
    {
      auto probe = server::ShardedReleaseService::Recover(base_dir);
      if (!probe.ok()) return 1;
      for (std::size_t s = 0; s < (*probe)->num_shards(); ++s) {
        const server::ShardStats stats = (*probe)->shard_stats(s);
        wal_records += stats.wal_records;
        wal_physical_records += stats.wal_physical_records;
        wal_bytes += stats.wal_bytes;
      }
      (void)(*probe)->Close();
    }
    if (std::strcmp(c.name, "full_log_snapshots") == 0) {
      snapshotted_bytes = wal_bytes;
    }
    if (c.compact) compacted_bytes = wal_bytes;
    const double recover_seconds = TimeRecovery(base_dir);
    std::snprintf(buf, sizeof(buf),
                  "%s    {\"name\": \"%s\", \"wal_records\": %llu, "
                  "\"wal_physical_records\": %llu, \"wal_bytes\": %llu, "
                  "\"snapshot_every\": %zu, \"compacted\": %s, "
                  "\"recover_seconds\": %.6f}",
                  first ? "" : ",\n", c.name,
                  static_cast<unsigned long long>(wal_records),
                  static_cast<unsigned long long>(wal_physical_records),
                  static_cast<unsigned long long>(wal_bytes),
                  c.snapshot_every, c.compact ? "true" : "false",
                  recover_seconds);
    json += buf;
    first = false;
    std::printf("recovery %s: %llu WAL records (%llu on disk, %llu "
                "bytes), %.4fs\n",
                c.name, static_cast<unsigned long long>(wal_records),
                static_cast<unsigned long long>(wal_physical_records),
                static_cast<unsigned long long>(wal_bytes),
                recover_seconds);
  }
  std::filesystem::remove_all(base_dir);
  std::printf("compaction: %llu -> %llu WAL bytes in %.4fs\n",
              static_cast<unsigned long long>(snapshotted_bytes),
              static_cast<unsigned long long>(compacted_bytes),
              compact_seconds);
  // Disk gate (always enforced; the workload is deterministic): a
  // compacted log must be strictly smaller than the same log
  // uncompacted.
  if (compacted_bytes == 0 || compacted_bytes >= snapshotted_bytes) {
    std::fprintf(stderr,
                 "FAILED: compaction did not shrink the WAL (%llu -> "
                 "%llu bytes)\n",
                 static_cast<unsigned long long>(snapshotted_bytes),
                 static_cast<unsigned long long>(compacted_bytes));
    ok = false;
  }

  const double speedup = baseline.requests_per_sec > 0.0
                             ? best_multi_shard / baseline.requests_per_sec
                             : 0.0;
  std::printf("multi-shard speedup over FleetEngine baseline: %.2fx%s\n",
              speedup, hw < 2 ? " (single-core host: not enforced)" : "");
  if (!smoke && hw >= 2 && speedup <= 1.0) {
    std::fprintf(stderr,
                 "FAILED: best multi-shard (%.0f req/s) did not beat the "
                 "single-shard FleetEngine path (%.0f req/s)\n",
                 best_multi_shard, baseline.requests_per_sec);
    ok = false;
  }

  json += "\n  ],\n  \"criteria\": {\n";
  std::snprintf(buf, sizeof(buf),
                "    \"multi_shard_speedup_vs_fleet_engine\": %.2f,\n"
                "    \"gate_enforced\": %s,\n"
                "    \"compacted_wal_bytes\": %llu,\n"
                "    \"uncompacted_wal_bytes\": %llu,\n"
                "    \"compact_seconds\": %.6f\n",
                speedup, (!smoke && hw >= 2) ? "true" : "false",
                static_cast<unsigned long long>(compacted_bytes),
                static_cast<unsigned long long>(snapshotted_bytes),
                compact_seconds);
  json += buf;
  json += "  }\n}\n";
  std::ofstream json_out(json_path);
  json_out << json;
  if (!json_out) {
    std::fprintf(stderr, "FAILED: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return ok ? 0 : 1;
}
