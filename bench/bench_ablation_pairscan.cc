// Ablation (DESIGN.md Section 4.4): two exact per-pair solvers for the
// Theorem 4 subset problem —
//  * the paper's iterative removal loop (Algorithm 1 Lines 6-11,
//    O(n^2) per pair worst case), and
//  * the sorted-prefix scan derived from the optimality conditions
//    (Inequalities 21/22 make the optimal subset a threshold set on
//    q_j/d_j, hence a prefix in ratio order; O(n log n) per pair).
//
// Both return identical losses (property-tested + verified here); the
// bench quantifies the speed difference and also reports a *negative*
// ablation result: a seed-aggregate branch-and-bound prune was tried and
// never fired on dense matrices (bound too loose), so it was dropped.

#include <cmath>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "common/table.h"
#include "core/privacy_loss.h"
#include "markov/smoothing.h"
#include "markov/stochastic_matrix.h"

namespace {

using namespace tcdp;

void AgreementSweep() {
  std::printf("Agreement of the two pair solvers (max |loss diff|):\n\n");
  Table table({"matrix", "n", "alpha", "max |diff|"});
  Rng rng(7);
  struct Case {
    std::string label;
    StochasticMatrix matrix;
  };
  std::vector<Case> cases;
  cases.push_back({"random", StochasticMatrix::Random(40, &rng)});
  auto smoothed = SmoothedCorrelationMatrix(40, 0.01);
  if (smoothed.ok()) cases.push_back({"smoothed s=0.01", *smoothed});

  for (const auto& c : cases) {
    TemporalLossFunction loss(c.matrix);
    for (double alpha : {0.1, 1.0, 10.0}) {
      LossEvalOptions iterative;
      LossEvalOptions sorted;
      sorted.method = PairLossMethod::kSortedPrefix;
      const double a = loss.EvaluateDetailed(alpha, iterative).loss;
      const double b = loss.EvaluateDetailed(alpha, sorted).loss;
      table.AddRow();
      table.AddCell(c.label);
      table.AddInt(static_cast<long long>(c.matrix.size()));
      table.AddNumber(alpha, 1);
      table.AddCell(FormatNumber(std::fabs(a - b), 12));
    }
  }
  std::printf("%s\n", table.ToAlignedString().c_str());
}

void BM_Evaluate(benchmark::State& state, PairLossMethod method) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1234 + n);
  auto matrix = StochasticMatrix::Random(n, &rng);
  TemporalLossFunction loss(matrix);
  LossEvalOptions options;
  options.method = method;
  for (auto _ : state) {
    benchmark::DoNotOptimize(loss.EvaluateDetailed(10.0, options));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Pair-solver ablation for Algorithm 1\n\n");
  AgreementSweep();
  for (int n : {50, 100, 200}) {
    benchmark::RegisterBenchmark(
        "PairSolver/iterative",
        [](benchmark::State& s) {
          BM_Evaluate(s, PairLossMethod::kIterativeRefinement);
        })
        ->Arg(n)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        "PairSolver/sorted-prefix",
        [](benchmark::State& s) {
          BM_Evaluate(s, PairLossMethod::kSortedPrefix);
        })
        ->Arg(n)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf(
      "\nFindings: the solvers agree exactly. Despite the better worst-case\n"
      "bound (O(n log n) vs O(n^2) per pair), the sorted-prefix scan is\n"
      "SLOWER in practice — the paper's removal loop converges in 1-2\n"
      "passes on random/smoothed matrices, while sorting pays its cost on\n"
      "every pair. A second negative result, recorded for completeness:\n"
      "pruning pairs by the seed-aggregate bound log(q_seed(e^a-1)+1)\n"
      "never fired on dense matrices. Both justify keeping the paper's\n"
      "algorithm as the default.\n");
  return 0;
}
