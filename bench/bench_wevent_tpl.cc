// Extension experiment (Table II, middle row, made operational): run the
// actual w-event mechanisms of Kellaris et al. [22] — Budget Distribution
// and Budget Absorption — on a correlated stream, and account their
// *realized* per-step spends with the temporal accountant.
//
// The w-event guarantee bounds any w-window's spend by eps on
// independent data. Under temporal correlations, Theorem 2's composition
// over the same windows exceeds eps — quantifying exactly how much the
// paper's "see Theorem 2" cell costs for real mechanisms.

#include <cstdio>
#include <memory>

#include "common/table.h"
#include "core/tpl_accountant.h"
#include "markov/smoothing.h"
#include "release/w_event.h"
#include "workload/generators.h"

namespace {

using namespace tcdp;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  const double eps = 1.0;
  const std::size_t w = 4;
  const std::size_t horizon = 40;

  std::printf("w-event mechanisms under temporal correlations "
              "(eps=%.1f per window of w=%zu)\n\n",
              eps, w);

  // Correlated population stream.
  auto road = RingRoadNetwork(4, 0.85, 0.06);
  if (!road.ok()) return Fail(road.status());
  auto chain = MarkovChain::WithUniformInitial(*road);
  Rng rng(2014);
  auto series = SimulatePopulation(chain, 300, horizon, &rng);
  if (!series.ok()) return Fail(series.status());

  // Adversary knowledge (for the audit): the same mobility model.
  auto corr = TemporalCorrelations::Both(*road, *road);
  if (!corr.ok()) return Fail(corr.status());

  Table table({"mechanism", "publications", "max window spend",
               "nominal guarantee", "max window TPL (Thm 2)",
               "inflation"});

  WEventOptions options;
  options.window = w;
  options.epsilon = eps;

  auto audit = [&](WEventMechanism* mech) -> Status {
    Rng mech_rng(99);
    TplAccountant acc(*corr);
    const double dissim_step = eps * options.dissimilarity_fraction /
                               static_cast<double>(w);
    for (std::size_t t = 1; t <= horizon; ++t) {
      TCDP_ASSIGN_OR_RETURN(Database db, series->At(t));
      TCDP_ASSIGN_OR_RETURN(WEventRelease r, mech->Process(db, &mech_rng));
      // Per-step spend: the always-on dissimilarity slice plus the
      // publication budget (0 when re-publishing).
      TCDP_RETURN_IF_ERROR(
          acc.RecordRelease(dissim_step + r.publication_epsilon + 1e-12));
    }
    TCDP_ASSIGN_OR_RETURN(double window_tpl, acc.MaxWindowTpl(w));
    table.AddRow();
    table.AddCell(mech->name());
    table.AddInt(static_cast<long long>(mech->num_publications()));
    table.AddNumber(mech->MaxWindowSpend(), 4);
    table.AddNumber(eps, 2);
    table.AddNumber(window_tpl, 4);
    table.AddCell(FormatNumber(window_tpl / eps, 2) + "x");
    return Status::OK();
  };

  auto bd = BudgetDistributionMechanism::Create(
      options, std::make_unique<HistogramQuery>());
  if (!bd.ok()) return Fail(bd.status());
  if (Status s = audit(bd->get()); !s.ok()) return Fail(s);

  auto ba = BudgetAbsorptionMechanism::Create(
      options, std::make_unique<HistogramQuery>());
  if (!ba.ok()) return Fail(ba.status());
  if (Status s = audit(ba->get()); !s.ok()) return Fail(s);

  std::printf("%s\n", table.ToAlignedString().c_str());
  std::printf(
      "Reading: both mechanisms respect their nominal w-event budget\n"
      "(column 3 <= %.1f), yet against an adversary with the stream's\n"
      "temporal correlations the effective per-window leakage (Theorem 2)\n"
      "is larger — the cost Table II's correlated w-event cell warns "
      "about.\n",
      eps);
  return 0;
}
