// Reproduces paper Figure 3: BPL, FPL and TPL of Lap(1/0.1) at each time
// point t = 1..10 under (i) the strongest temporal correlation,
// (ii) the moderate matrix P = (0.8 0.2; 0 1), and (iii) no correlation.
//
// Paper series (eps = 0.1):
//   BPL (ii): 0.10 0.18 0.25 0.30 0.35 0.39 0.42 0.45 0.48 0.50
//   FPL (ii): mirrored; TPL: 0.50 0.56 0.60 0.62 0.64 0.64 ... 0.50

#include <cstdio>

#include "common/table.h"
#include "core/tpl_accountant.h"
#include "markov/stochastic_matrix.h"

namespace {

using namespace tcdp;

void PrintSeries(const char* title, const TemporalCorrelations& corr,
                 double eps, std::size_t horizon) {
  TplAccountant acc(corr);
  auto s = acc.RecordUniformReleases(eps, horizon);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return;
  }
  Table table({"t", "BPL", "FPL", "TPL"});
  for (std::size_t t = 1; t <= horizon; ++t) {
    table.AddRow();
    table.AddInt(static_cast<long long>(t));
    table.AddNumber(*acc.Bpl(t), 4);
    table.AddNumber(*acc.Fpl(t), 4);
    table.AddNumber(*acc.Tpl(t), 4);
  }
  std::printf("%s\n%s\n", title, table.ToAlignedString().c_str());
}

}  // namespace

int main() {
  const double eps = 0.1;
  const std::size_t horizon = 10;
  std::printf("Figure 3 reproduction: temporal privacy leakage of "
              "Lap(1/%.1f) at each time point, T=%zu\n\n",
              eps, horizon);

  // (i) Strongest temporal correlation: identity transitions.
  {
    auto corr = TemporalCorrelations::Both(StochasticMatrix::Identity(2),
                                           StochasticMatrix::Identity(2));
    PrintSeries("(i) strongest correlation P = I  "
                "(paper: linear growth, TPL = 1.0 flat)",
                *corr, eps, horizon);
  }
  // (ii) Moderate correlation: the paper's P = (0.8 0.2; 0 1).
  {
    auto p = StochasticMatrix::FromRows({{0.8, 0.2}, {0.0, 1.0}});
    auto corr = TemporalCorrelations::Both(p, p);
    PrintSeries("(ii) moderate correlation P = (0.8 0.2; 0 1)  "
                "(paper BPL: 0.10 0.18 0.25 0.30 0.35 0.39 0.42 0.45 0.48 "
                "0.50)",
                *corr, eps, horizon);
  }
  // (iii) No temporal correlation.
  {
    PrintSeries("(iii) no correlation  (paper: flat at eps)",
                TemporalCorrelations::None(), eps, horizon);
  }
  return 0;
}
