// Ablation (DESIGN.md Section 4.2): two routes to the supremum of the
// leakage recurrence and to the budget inverse that Algorithms 2/3 need.
//
//  1. Supremum: Theorem 5's closed form (certified at the fixpoint's
//     maximizing pair) vs plain fixpoint iteration alpha <- L(alpha)+eps.
//     Both must agree on existence and value.
//  2. Budget inverse ("which eps keeps the supremum at alpha?"):
//     the analytic inverse eps = alpha - L(alpha) (ONE loss evaluation)
//     vs naive bisection on eps with a full fixpoint iteration per probe.

#include <cmath>
#include <cstdio>

#include "common/table.h"
#include "common/timer.h"
#include "core/supremum.h"
#include "markov/smoothing.h"

namespace {

using namespace tcdp;

/// Naive route: bisect eps until the iterated supremum hits alpha.
/// Returns {eps, total L-evaluations}.
std::pair<double, std::size_t> InverseByBisection(
    const TemporalLossFunction& loss, double alpha) {
  double lo = 1e-9, hi = alpha;
  std::size_t evals = 0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    auto fix = IterateLeakageToFixpoint(loss, mid, 100000, 1e-10, 10 * alpha);
    evals += fix.steps;
    if (!fix.converged || fix.value > alpha) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return {0.5 * (lo + hi), evals};
}

}  // namespace

int main() {
  std::printf("Supremum ablation: closed form vs fixpoint iteration\n\n");

  struct Case {
    std::string label;
    StochasticMatrix matrix;
  };
  std::vector<Case> cases;
  cases.push_back({"(0.8 .2; 0 1)",
                   StochasticMatrix::FromRows({{0.8, 0.2}, {0.0, 1.0}})});
  cases.push_back({"(0.8 .2; .1 .9)",
                   StochasticMatrix::FromRows({{0.8, 0.2}, {0.1, 0.9}})});
  for (double s : {0.01, 0.1}) {
    auto m = SmoothedCorrelationMatrix(10, s);
    if (!m.ok()) return 1;
    cases.push_back({"smoothed s=" + FormatNumber(s, 2) + " n=10", *m});
  }

  // --- 1. Supremum value agreement --------------------------------------
  Table sup_table({"matrix", "eps", "Theorem 5", "fixpoint", "|diff|",
                   "fixpoint iterations"});
  for (const auto& c : cases) {
    TemporalLossFunction loss(c.matrix);
    for (double eps : {0.05, 0.1, 0.2}) {
      auto closed = ComputeSupremum(loss, eps);
      auto fix = IterateLeakageToFixpoint(loss, eps);
      if (!closed.ok()) return 1;
      sup_table.AddRow();
      sup_table.AddCell(c.label);
      sup_table.AddNumber(eps, 2);
      sup_table.AddCell(closed->exists ? FormatNumber(closed->value, 6)
                                       : "does not exist");
      sup_table.AddCell(fix.converged ? FormatNumber(fix.value, 6)
                                      : "diverged");
      if (closed->exists && fix.converged) {
        sup_table.AddCell(
            FormatNumber(std::fabs(closed->value - fix.value), 9));
      } else {
        sup_table.AddCell(closed->exists == fix.converged ? "agree"
                                                          : "DISAGREE");
      }
      sup_table.AddInt(static_cast<long long>(fix.steps));
    }
  }
  std::printf("%s\n", sup_table.ToAlignedString().c_str());

  // --- 2. Budget inverse: analytic vs bisection --------------------------
  std::printf("Budget inverse eps(alpha): analytic (1 loss evaluation) vs "
              "bisection over iterated suprema\n\n");
  Table inv_table({"matrix", "alpha", "analytic eps", "bisection eps",
                   "|diff|", "bisection L-evals", "analytic time (us)",
                   "bisection time (us)"});
  for (const auto& c : cases) {
    TemporalLossFunction loss(c.matrix);
    for (double alpha : {0.5, 1.0}) {
      WallTimer t1;
      auto analytic = EpsilonForSupremum(loss, alpha);
      const double us1 = t1.ElapsedSeconds() * 1e6;
      if (!analytic.ok()) return 1;
      WallTimer t2;
      auto [naive, evals] = InverseByBisection(loss, alpha);
      const double us2 = t2.ElapsedSeconds() * 1e6;

      inv_table.AddRow();
      inv_table.AddCell(c.label);
      inv_table.AddNumber(alpha, 1);
      inv_table.AddNumber(*analytic, 6);
      inv_table.AddNumber(naive, 6);
      inv_table.AddCell(FormatNumber(std::fabs(*analytic - naive), 8));
      inv_table.AddInt(static_cast<long long>(evals));
      inv_table.AddNumber(us1, 1);
      inv_table.AddNumber(us2, 1);
    }
  }
  std::printf("%s\n", inv_table.ToAlignedString().c_str());
  std::printf(
      "Reading: Theorem 5 and the iteration agree on existence and value\n"
      "everywhere. For the inverse that Algorithms 2/3 actually need, the\n"
      "analytic identity eps = alpha - L(alpha) replaces thousands of\n"
      "loss evaluations with one.\n");
  return 0;
}
