// Reproduces paper Figure 7: per-time-point privacy leakage of the data
// release algorithms with a 1-DP_T target, T = 30,
// P^B = (0.8 0.2; 0.2 0.8), P^F = (0.8 0.2; 0.1 0.9).
//
//  (a) Algorithm 2 (upper bound): leakage rises toward alpha but stays
//      strictly below it (wasteful for short T).
//  (b) Algorithm 3 (quantification): leakage pinned at alpha at every
//      time point.

#include <cstdio>

#include "common/table.h"
#include "core/budget_allocation.h"
#include "core/tpl_accountant.h"

namespace {

using namespace tcdp;

void Panel(const char* title, const TemporalCorrelations& corr,
           const std::vector<double>& schedule) {
  TplAccountant acc(corr);
  for (double e : schedule) {
    auto s = acc.RecordRelease(e);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return;
    }
  }
  Table table({"t", "eps_t", "BPL", "FPL", "TPL"});
  for (std::size_t t = 1; t <= schedule.size(); ++t) {
    table.AddRow();
    table.AddInt(static_cast<long long>(t));
    table.AddNumber(schedule[t - 1], 4);
    table.AddNumber(*acc.Bpl(t), 4);
    table.AddNumber(*acc.Fpl(t), 4);
    table.AddNumber(*acc.Tpl(t), 4);
  }
  std::printf("%s\nmax TPL = %.6f\n%s\n", title, acc.MaxTpl(),
              table.ToAlignedString().c_str());
}

}  // namespace

int main() {
  const double alpha = 1.0;
  const std::size_t horizon = 30;
  auto corr = TemporalCorrelations::Both(
      StochasticMatrix::FromRows({{0.8, 0.2}, {0.2, 0.8}}),
      StochasticMatrix::FromRows({{0.8, 0.2}, {0.1, 0.9}}));
  if (!corr.ok()) {
    std::fprintf(stderr, "error: %s\n", corr.status().ToString().c_str());
    return 1;
  }
  auto alloc = BudgetAllocator::Create(*corr, alpha);
  if (!alloc.ok()) {
    std::fprintf(stderr, "error: %s\n", alloc.status().ToString().c_str());
    return 1;
  }

  std::printf("Figure 7 reproduction: budget allocation with %0.1f-DP_T, "
              "T=%zu\n", alpha, horizon);
  std::printf("Balanced split: alpha_b=%.4f alpha_f=%.4f eps*=%.4f\n\n",
              alloc->budget().alpha_b, alloc->budget().alpha_f,
              alloc->budget().eps_steady);

  Panel("(a) Algorithm 2 (upper bound): TPL < alpha everywhere",
        *corr, alloc->UpperBoundSchedule(horizon));
  auto q = alloc->QuantifiedSchedule(horizon);
  if (!q.ok()) {
    std::fprintf(stderr, "error: %s\n", q.status().ToString().c_str());
    return 1;
  }
  Panel("(b) Algorithm 3 (quantification): TPL = alpha at every t",
        *corr, *q);
  return 0;
}
