// Ablation (DESIGN.md Section 4.1): the three routes to the loss value
// L(alpha) — Algorithm 1, the paper's pairwise n(n-1)-constraint LFP, and
// the compact 2n+1-constraint reformulation — agree numerically; the
// encodings differ enormously in cost.
//
// google-benchmark timings plus a correctness sweep with max deviation.

#include <cmath>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "common/table.h"
#include "core/privacy_loss.h"
#include "lp/tpl_lfp.h"

namespace {

using namespace tcdp;

StochasticMatrix MakeMatrix(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return StochasticMatrix::Random(n, &rng);
}

void CorrectnessSweep() {
  std::printf("Correctness sweep: max |deviation| from Algorithm 1 across "
              "random matrices\n\n");
  Table table({"n", "alpha", "pairwise LFP", "compact LFP", "Dinkelbach"});
  for (std::size_t n : {3u, 5u, 8u}) {
    for (double alpha : {0.1, 1.0, 5.0}) {
      double dev_pair = 0.0, dev_compact = 0.0, dev_dink = 0.0;
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        auto matrix = MakeMatrix(n, seed * 97);
        TemporalLossFunction loss(matrix);
        const double reference = loss.Evaluate(alpha);
        auto pair = TemporalLossViaLfp(matrix, alpha,
                                       LfpMethod::kCharnesCooper,
                                       LfpFormulation::kPairwise);
        auto compact = TemporalLossViaLfp(matrix, alpha,
                                          LfpMethod::kCharnesCooper,
                                          LfpFormulation::kCompact);
        auto dink = TemporalLossViaLfp(matrix, alpha,
                                       LfpMethod::kDinkelbach,
                                       LfpFormulation::kPairwise);
        if (!pair.ok() || !compact.ok() || !dink.ok()) {
          std::fprintf(stderr, "solver failure in sweep\n");
          return;
        }
        dev_pair = std::max(dev_pair, std::fabs(*pair - reference));
        dev_compact = std::max(dev_compact, std::fabs(*compact - reference));
        dev_dink = std::max(dev_dink, std::fabs(*dink - reference));
      }
      table.AddRow();
      table.AddInt(static_cast<long long>(n));
      table.AddNumber(alpha, 2);
      table.AddCell(FormatNumber(dev_pair, 10));
      table.AddCell(FormatNumber(dev_compact, 10));
      table.AddCell(FormatNumber(dev_dink, 10));
    }
  }
  std::printf("%s\n", table.ToAlignedString().c_str());
}

void BM_Route(benchmark::State& state, LfpMethod method,
              LfpFormulation formulation) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto matrix = MakeMatrix(n, 1234);
  for (auto _ : state) {
    auto loss = TemporalLossViaLfp(matrix, 1.0, method, formulation);
    if (!loss.ok()) state.SkipWithError(loss.status().ToString().c_str());
    benchmark::DoNotOptimize(loss);
  }
}

void BM_Algorithm1(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto matrix = MakeMatrix(n, 1234);
  TemporalLossFunction loss(matrix);
  for (auto _ : state) {
    benchmark::DoNotOptimize(loss.Evaluate(1.0));
  }
}

void RegisterAll() {
  for (int n : {5, 10, 15}) {
    benchmark::RegisterBenchmark("Ablation/Algorithm1", BM_Algorithm1)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        "Ablation/PairwiseLfp",
        [](benchmark::State& s) {
          BM_Route(s, LfpMethod::kCharnesCooper, LfpFormulation::kPairwise);
        })
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        "Ablation/CompactLfp",
        [](benchmark::State& s) {
          BM_Route(s, LfpMethod::kCharnesCooper, LfpFormulation::kCompact);
        })
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("LFP-formulation ablation (DESIGN.md 4.1)\n\n");
  CorrectnessSweep();
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf(
      "\nReading: all routes agree to ~1e-7; the compact encoding is far\n"
      "cheaper than the paper's pairwise one, yet Algorithm 1 beats both\n"
      "by orders of magnitude — the point of Section IV.\n");
  return 0;
}
