// Network frontend throughput (ISSUE 4 acceptance): requests/sec over
// loopback TCP — by connection count and pipeline depth — against the
// same request stream dispatched in-process into the
// ShardedReleaseService.
//
//   * In-process baseline: Release() calls straight into the service
//     (shards=2), no sockets. This is the bar: the acceptance gate
//     requires loopback throughput within 5x of it at pipeline depth
//     >= 8 (enforced when not --smoke and the host has >= 2 cores;
//     single-core hosts timeslice the server loop, the shard workers,
//     and the clients through one pipe and are reported unenforced).
//   * Loopback: a NetServer on 127.0.0.1 with C client threads
//     (disjoint user slices) pipelining D deep. Depth 1 pays a full
//     round trip per request; depth >= 8 amortizes it, which is the
//     number the gate cares about.
//   * Determinism: the single-connection configuration preserves the
//     baseline's request order, so its overall alpha must equal the
//     in-process run's bitwise (asserted in every mode).
//
// Emits BENCH_net.json next to BENCH_fleet.json / BENCH_shard.json;
// `--smoke` runs a seconds-scale configuration for the CI schema check
// (CTest label perf_smoke_net).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "markov/stochastic_matrix.h"
#include "net/client.h"
#include "net/server.h"
#include "server/sharded_service.h"

namespace {

using namespace tcdp;

struct BenchSpec {
  std::size_t users = 0;
  std::size_t profiles = 0;     // distinct matrix pairs
  std::size_t matrix_size = 0;  // n
  std::size_t requests = 0;     // per-user release requests
  std::size_t shards = 2;
  std::size_t batch_window = 16;
  std::uint64_t seed = 20260728;
};

struct Request {
  std::size_t user = 0;
  double epsilon = 0.0;
};

std::vector<TemporalCorrelations> MakeProfiles(const BenchSpec& spec) {
  Rng rng(spec.seed);
  std::vector<TemporalCorrelations> profiles;
  for (std::size_t p = 0; p < spec.profiles; ++p) {
    const StochasticMatrix m =
        StochasticMatrix::Random(spec.matrix_size, &rng);
    profiles.push_back(TemporalCorrelations::Both(m, m).value());
  }
  return profiles;
}

std::vector<Request> MakeRequests(const BenchSpec& spec) {
  Rng rng(spec.seed + 1);
  const double epsilons[] = {0.05, 0.1, 0.2};
  std::vector<Request> requests(spec.requests);
  for (auto& request : requests) {
    request.user = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(spec.users) - 1));
    request.epsilon = epsilons[rng.UniformInt(0, 2)];
  }
  return requests;
}

std::string UserName(std::size_t u) { return "user-" + std::to_string(u); }

struct RunResult {
  double seconds = 0.0;
  double requests_per_sec = 0.0;
  double overall_alpha = 0.0;
};

[[noreturn]] void Die(const char* what, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

/// The bar: the identical request stream applied without sockets.
RunResult RunInProcess(const BenchSpec& spec) {
  const auto profiles = MakeProfiles(spec);
  const auto requests = MakeRequests(spec);
  server::ShardedServiceOptions options;
  options.num_shards = spec.shards;
  options.batch_window = spec.batch_window;
  auto service = server::ShardedReleaseService::Create("", options);
  if (!service.ok()) Die("create", service.status());
  for (std::size_t u = 0; u < spec.users; ++u) {
    const Status joined =
        (*service)->Join(UserName(u), profiles[u % spec.profiles]);
    if (!joined.ok()) Die("join", joined);
  }
  if (Status s = (*service)->Flush(); !s.ok()) Die("flush", s);
  WallTimer timer;
  for (const Request& request : requests) {
    const Status released =
        (*service)->Release(UserName(request.user), request.epsilon);
    if (!released.ok()) Die("release", released);
  }
  if (Status s = (*service)->Flush(); !s.ok()) Die("flush", s);
  RunResult result;
  result.seconds = timer.ElapsedSeconds();
  result.requests_per_sec =
      result.seconds > 0.0
          ? static_cast<double>(requests.size()) / result.seconds
          : 0.0;
  auto alpha = (*service)->OverallAlpha();
  if (!alpha.ok()) Die("alpha", alpha.status());
  result.overall_alpha = *alpha;
  if (Status s = (*service)->Close(); !s.ok()) Die("close", s);
  return result;
}

/// The same stream over loopback TCP: \p connections client threads
/// (disjoint user slices, original order within a slice), each
/// pipelining \p depth requests.
RunResult RunLoopback(const BenchSpec& spec, std::size_t connections,
                      std::size_t depth) {
  const auto profiles = MakeProfiles(spec);
  const auto requests = MakeRequests(spec);
  server::ShardedServiceOptions options;
  options.num_shards = spec.shards;
  options.batch_window = spec.batch_window;
  auto service = server::ShardedReleaseService::Create("", options);
  if (!service.ok()) Die("create", service.status());
  auto net_server = net::NetServer::Listen(service->get());
  if (!net_server.ok()) Die("listen", net_server.status());
  std::thread serve_thread([&net_server] {
    const Status served = (*net_server)->Serve();
    if (!served.ok()) Die("serve", served);
  });

  auto connect = [&](std::size_t pipeline) {
    net::NetClientOptions client_options;
    client_options.pipeline_depth = pipeline;
    auto client = net::NetClient::Connect("127.0.0.1",
                                          (*net_server)->port(),
                                          client_options);
    if (!client.ok()) Die("connect", client.status());
    return std::move(client).value();
  };

  {
    auto setup = connect(depth);
    for (std::size_t u = 0; u < spec.users; ++u) {
      const Status joined = setup->Join(UserName(u),
                                        profiles[u % spec.profiles]);
      if (!joined.ok()) Die("join", joined);
    }
    if (Status s = setup->Flush(); !s.ok()) Die("flush", s);
  }

  WallTimer timer;
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      auto client = connect(depth);
      for (const Request& request : requests) {
        if (request.user % connections != c) continue;
        const Status released =
            client->Release(UserName(request.user), request.epsilon);
        if (!released.ok()) Die("release", released);
      }
      if (Status s = client->Drain(); !s.ok()) Die("drain", s);
    });
  }
  for (std::thread& thread : threads) thread.join();
  auto control = connect(1);
  if (Status s = control->Flush(); !s.ok()) Die("flush", s);
  RunResult result;
  result.seconds = timer.ElapsedSeconds();
  result.requests_per_sec =
      result.seconds > 0.0
          ? static_cast<double>(requests.size()) / result.seconds
          : 0.0;
  if (Status s = control->Shutdown(); !s.ok()) Die("shutdown", s);
  serve_thread.join();
  auto alpha = (*service)->OverallAlpha();
  if (!alpha.ok()) Die("alpha", alpha.status());
  result.overall_alpha = *alpha;
  if (Status s = (*service)->Close(); !s.ok()) Die("close", s);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_net.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json path]\n", argv[0]);
      return 2;
    }
  }

  BenchSpec spec;
  spec.users = smoke ? 32 : 128;
  spec.profiles = smoke ? 4 : 8;
  spec.matrix_size = smoke ? 6 : 8;
  spec.requests = smoke ? 200 : 1500;

  const std::size_t hw = std::thread::hardware_concurrency();
  struct Config {
    std::size_t connections;
    std::size_t depth;
  };
  const std::vector<Config> configs =
      smoke ? std::vector<Config>{{1, 1}, {1, 8}}
            : std::vector<Config>{{1, 1}, {1, 8}, {1, 32}, {4, 8}};

  const RunResult in_process = RunInProcess(spec);
  std::printf(
      "in-process baseline (%zu users, %zu requests, %zu shards, window "
      "%zu): %.0f req/s\n",
      spec.users, spec.requests, spec.shards, spec.batch_window,
      in_process.requests_per_sec);

  std::string json = "{\n  \"bench\": \"net_throughput\",\n";
  json += "  \"smoke\": " + std::string(smoke ? "true" : "false") + ",\n";
  json += "  \"hardware_concurrency\": " + std::to_string(hw) + ",\n";
  json += "  \"workloads\": [\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    {\"name\": \"in_process\", \"connections\": 0, "
                "\"pipeline_depth\": 0, \"users\": %zu, \"requests\": %zu, "
                "\"seconds\": %.6f, \"requests_per_sec\": %.1f}",
                spec.users, spec.requests, in_process.seconds,
                in_process.requests_per_sec);
  json += buf;

  bool ok = true;
  double best_deep_loopback = 0.0;
  for (const Config& config : configs) {
    const RunResult run =
        RunLoopback(spec, config.connections, config.depth);
    std::snprintf(buf, sizeof(buf),
                  ",\n    {\"name\": \"loopback\", \"connections\": %zu, "
                  "\"pipeline_depth\": %zu, \"users\": %zu, "
                  "\"requests\": %zu, \"seconds\": %.6f, "
                  "\"requests_per_sec\": %.1f}",
                  config.connections, config.depth, spec.users,
                  spec.requests, run.seconds, run.requests_per_sec);
    json += buf;
    std::printf("loopback connections=%zu depth=%zu: %.0f req/s\n",
                config.connections, config.depth, run.requests_per_sec);
    if (config.depth >= 8) {
      best_deep_loopback =
          std::max(best_deep_loopback, run.requests_per_sec);
    }
    // Single-connection runs preserve the baseline's request order, so
    // the fleet's overall alpha must match bitwise: the wire moved the
    // requests, it did not change the accounting.
    if (config.connections == 1 &&
        run.overall_alpha != in_process.overall_alpha) {
      std::fprintf(stderr,
                   "FAILED: loopback depth=%zu overall alpha %.17g != "
                   "in-process %.17g\n",
                   config.depth, run.overall_alpha,
                   in_process.overall_alpha);
      ok = false;
    }
  }

  const double slowdown = best_deep_loopback > 0.0
                              ? in_process.requests_per_sec /
                                    best_deep_loopback
                              : 0.0;
  const bool gate_enforced = !smoke && hw >= 2;
  std::printf(
      "loopback (best, depth >= 8) vs in-process: %.2fx slower%s\n",
      slowdown, gate_enforced ? "" : " (gate not enforced on this host)");
  if (gate_enforced && slowdown > 5.0) {
    std::fprintf(stderr,
                 "FAILED: loopback at depth >= 8 is %.2fx slower than "
                 "in-process dispatch (acceptance bound: 5x)\n",
                 slowdown);
    ok = false;
  }

  json += "\n  ],\n  \"criteria\": {\n";
  std::snprintf(buf, sizeof(buf),
                "    \"loopback_slowdown_vs_in_process_depth8\": %.3f,\n"
                "    \"bound\": 5.0,\n"
                "    \"gate_enforced\": %s\n",
                slowdown, gate_enforced ? "true" : "false");
  json += buf;
  json += "  }\n}\n";
  std::ofstream json_out(json_path);
  json_out << json;
  if (!json_out) {
    std::fprintf(stderr, "FAILED: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return ok ? 0 : 1;
}
