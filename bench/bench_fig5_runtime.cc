// Reproduces paper Figure 5: runtime of the privacy-quantification
// routes.
//
//  (a) runtime vs n (domain size) at alpha = 10:
//      Algorithm 1 (polynomial) vs the generic-LFP baselines — our
//      from-scratch stand-ins for Gurobi (Charnes-Cooper + simplex) and
//      lp_solve (Dinkelbach); see DESIGN.md "Deviations".
//  (b) runtime vs alpha at fixed n.
//
// Expected *shape* (the paper's finding): Algorithm 1 stays fast as n
// grows; the generic solvers blow up quickly (the paper measured 11 s vs
// 47 min vs 38 h at n = 150). Absolute numbers differ (C++ vs Java, this
// machine vs theirs); baselines therefore run at smaller n.
//
// Set BENCH_FULL=1 for the larger Algorithm 1 sweep (n up to 250).

#include <cstdlib>

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/privacy_loss.h"
#include "lp/tpl_lfp.h"
#include "markov/stochastic_matrix.h"

namespace {

using namespace tcdp;

StochasticMatrix MakeMatrix(std::size_t n) {
  Rng rng(20170416 + n);
  return StochasticMatrix::Random(n, &rng);
}

void BM_Algorithm1_vs_n(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const double alpha = 10.0;
  StochasticMatrix matrix = MakeMatrix(n);
  TemporalLossFunction loss(matrix);
  for (auto _ : state) {
    benchmark::DoNotOptimize(loss.Evaluate(alpha));
  }
  state.counters["n"] = static_cast<double>(n);
}

void BM_CharnesCooper_vs_n(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const double alpha = 10.0;
  StochasticMatrix matrix = MakeMatrix(n);
  for (auto _ : state) {
    auto loss = TemporalLossViaLfp(matrix, alpha, LfpMethod::kCharnesCooper,
                                   LfpFormulation::kPairwise);
    if (!loss.ok()) state.SkipWithError(loss.status().ToString().c_str());
    benchmark::DoNotOptimize(loss);
  }
  state.counters["n"] = static_cast<double>(n);
}

void BM_Dinkelbach_vs_n(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const double alpha = 10.0;
  StochasticMatrix matrix = MakeMatrix(n);
  for (auto _ : state) {
    auto loss = TemporalLossViaLfp(matrix, alpha, LfpMethod::kDinkelbach,
                                   LfpFormulation::kPairwise);
    if (!loss.ok()) state.SkipWithError(loss.status().ToString().c_str());
    benchmark::DoNotOptimize(loss);
  }
  state.counters["n"] = static_cast<double>(n);
}

void BM_Algorithm1_vs_alpha(benchmark::State& state) {
  // alpha = range(0) / 1000 to sweep the paper's {0.001 .. 20}.
  const double alpha = static_cast<double>(state.range(0)) / 1000.0;
  StochasticMatrix matrix = MakeMatrix(50);
  TemporalLossFunction loss(matrix);
  for (auto _ : state) {
    benchmark::DoNotOptimize(loss.Evaluate(alpha));
  }
  state.counters["alpha"] = alpha;
}

void BM_CharnesCooper_vs_alpha(benchmark::State& state) {
  const double alpha = static_cast<double>(state.range(0)) / 1000.0;
  StochasticMatrix matrix = MakeMatrix(10);
  for (auto _ : state) {
    auto loss = TemporalLossViaLfp(matrix, alpha, LfpMethod::kCharnesCooper,
                                   LfpFormulation::kPairwise);
    if (!loss.ok()) {
      // Large alpha puts e^alpha (~1e9 at alpha=20) into the constraint
      // matrix and the dense simplex loses feasibility tolerance — the
      // same failure mode the paper reports for lp_solve at alpha >= 10
      // ("a precision problem occurs ... due to the design of lp_solve").
      state.SkipWithError(
          ("generic-solver precision failure (paper reports the same for "
           "lp_solve at alpha>=10): " + loss.status().ToString())
              .c_str());
    }
    benchmark::DoNotOptimize(loss);
  }
  state.counters["alpha"] = alpha;
}

void BM_Dinkelbach_vs_alpha(benchmark::State& state) {
  const double alpha = static_cast<double>(state.range(0)) / 1000.0;
  StochasticMatrix matrix = MakeMatrix(10);
  for (auto _ : state) {
    auto loss = TemporalLossViaLfp(matrix, alpha, LfpMethod::kDinkelbach,
                                   LfpFormulation::kPairwise);
    if (!loss.ok()) state.SkipWithError(loss.status().ToString().c_str());
    benchmark::DoNotOptimize(loss);
  }
  state.counters["alpha"] = alpha;
}

bool FullSweep() {
  const char* env = std::getenv("BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

void RegisterAll() {
  // --- Figure 5(a): runtime vs n, alpha = 10 ---
  auto* a1 = benchmark::RegisterBenchmark("Fig5a/Algorithm1",
                                          BM_Algorithm1_vs_n)
                 ->Unit(benchmark::kMillisecond);
  // The paper's full range: n up to 250.
  for (int n : {25, 50, 100, 150, 200, 250}) a1->Arg(n);
  auto* cc = benchmark::RegisterBenchmark("Fig5a/CharnesCooperSimplex",
                                          BM_CharnesCooper_vs_n)
                 ->Unit(benchmark::kMillisecond)
                 ->Iterations(1);
  auto* dk = benchmark::RegisterBenchmark("Fig5a/Dinkelbach",
                                          BM_Dinkelbach_vs_n)
                 ->Unit(benchmark::kMillisecond)
                 ->Iterations(1);
  for (int n : {5, 10, 15}) {
    cc->Arg(n);
    dk->Arg(n);
  }
  if (FullSweep()) {
    cc->Arg(20)->Arg(25);
    dk->Arg(20)->Arg(25);
  }

  // --- Figure 5(b): runtime vs alpha ---
  auto* a1a = benchmark::RegisterBenchmark("Fig5b/Algorithm1_n50",
                                           BM_Algorithm1_vs_alpha)
                  ->Unit(benchmark::kMillisecond);
  auto* cca = benchmark::RegisterBenchmark("Fig5b/CharnesCooper_n10",
                                           BM_CharnesCooper_vs_alpha)
                  ->Unit(benchmark::kMillisecond)
                  ->Iterations(1);
  auto* dka = benchmark::RegisterBenchmark("Fig5b/Dinkelbach_n10",
                                           BM_Dinkelbach_vs_alpha)
                  ->Unit(benchmark::kMillisecond)
                  ->Iterations(1);
  for (int a_milli : {1, 10, 100, 1000, 10000, 20000}) {
    a1a->Arg(a_milli);
    cca->Arg(a_milli);
    dka->Arg(a_milli);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "Figure 5 reproduction: privacy-quantification runtime.\n"
      "Algorithm 1 vs generic LFP baselines (simplex Charnes-Cooper ~ "
      "Gurobi role, Dinkelbach ~ lp_solve role).\n"
      "Paper shape: baselines explode with n; Algorithm 1 stays "
      "polynomial.\n\n");
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
