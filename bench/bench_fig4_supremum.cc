// Reproduces paper Figure 4: the maximum BPL over time for four
// (transition matrix, eps) configurations, with the Theorem 5 supremum
// when it exists.
//
// Paper panels:
//  (a) P = I (q=1, d=0),        eps=0.23 -> no supremum (linear growth)
//  (b) P = (0.8 .2; 0 1),       eps=0.23 -> no supremum (0.23 > ln 1.25)
//  (c) P = (0.8 .1; .2 .9)-type pair q=0.8 d=0.1, eps=0.23 -> sup ~ 0.79
//  (d) P = (0.8 .2; 0 1),       eps=0.15 -> sup ~ 1.19

#include <cstdio>
#include <vector>

#include "common/table.h"
#include "core/supremum.h"
#include "core/tpl_accountant.h"

namespace {

using namespace tcdp;

void Panel(const char* name, const StochasticMatrix& p, double eps,
           std::size_t horizon) {
  TplAccountant acc(TemporalCorrelations::BackwardOnly(p));
  auto s = acc.RecordUniformReleases(eps, horizon);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return;
  }
  TemporalLossFunction loss(p);
  auto sup = ComputeSupremum(loss, eps);

  std::printf("%s  (eps = %.2f)\n", name, eps);
  if (sup.ok() && sup->exists) {
    std::printf("Theorem 5 supremum: %.6f (q=%.4f, d=%.4f)\n", sup->value,
                sup->q_sum, sup->d_sum);
  } else {
    std::printf("Theorem 5: supremum does not exist (unbounded growth)\n");
  }
  Table table({"t", "max BPL"});
  for (std::size_t t : {std::size_t{1}, std::size_t{2}, std::size_t{5},
                        std::size_t{10}, std::size_t{20}, std::size_t{40},
                        std::size_t{60}, std::size_t{80}, horizon}) {
    table.AddRow();
    table.AddInt(static_cast<long long>(t));
    table.AddNumber(*acc.Bpl(t), 4);
  }
  std::printf("%s\n", table.ToAlignedString().c_str());
}

}  // namespace

int main() {
  const std::size_t horizon = 100;
  std::printf("Figure 4 reproduction: maximum BPL over time (t = 1..%zu)\n\n",
              horizon);

  Panel("(a) strongest: P = I (q=1, d=0); paper: linear to ~23",
        StochasticMatrix::Identity(2), 0.23, horizon);
  Panel("(b) P = (0.8 0.2; 0 1) (q=0.8, d=0); paper: unbounded (~3.5 "
        "at t=100)",
        StochasticMatrix::FromRows({{0.8, 0.2}, {0.0, 1.0}}), 0.23, horizon);
  Panel("(c) P = (0.8 0.2; 0.1 0.9) (q=0.8, d=0.1); paper: plateau ~0.8",
        StochasticMatrix::FromRows({{0.8, 0.2}, {0.1, 0.9}}), 0.23, horizon);
  Panel("(d) P = (0.8 0.2; 0 1) (q=0.8, d=0); paper: plateau ~1.2",
        StochasticMatrix::FromRows({{0.8, 0.2}, {0.0, 1.0}}), 0.15, horizon);
  return 0;
}
