// Throughput of the fleet release engine on a 1000-user uniform-matrix
// clickstream workload: every user shares one transition matrix, the
// exact redundancy the shared temporal-loss cache removes.
//
// Three configurations are timed over the same schedule:
//   baseline   — no cache, single thread (1000 Algorithm-1 solves per
//                release);
//   cached     — shared cache, single thread (~1 solve per release);
//   cached+par — shared cache plus the work-stealing pool.
//
// Also asserts the acceptance criteria: cached+parallel reaches >= 5x
// the baseline releases/sec, and its TPL series is bitwise identical to
// the serial cached run.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/table.h"
#include "service/fleet_engine.h"
#include "workload/generators.h"

namespace {

using namespace tcdp;

constexpr std::size_t kUsers = 1000;
constexpr std::size_t kHorizon = 24;
constexpr std::size_t kPages = 16;
constexpr double kEpsilon = 0.1;

struct RunResult {
  double seconds = 0.0;
  double releases_per_sec = 0.0;
  double overall_alpha = 0.0;
  std::vector<double> tpl_user0;
  TemporalLossCache::Stats cache;
  ThreadPool::Stats pool;
};

RunResult RunFleet(const TemporalCorrelations& corr, bool use_cache,
                   std::size_t threads) {
  FleetEngineOptions options;
  options.share_loss_cache = use_cache;
  options.num_threads = threads;
  FleetEngine engine(options);
  for (std::size_t u = 0; u < kUsers; ++u) {
    engine.AddUser("user-" + std::to_string(u), corr);
  }
  auto status = engine.RecordReleases(std::vector<double>(kHorizon, kEpsilon));
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
  RunResult r;
  r.seconds = engine.stats().record_seconds;
  r.releases_per_sec = engine.stats().UserReleasesPerSecond();
  r.overall_alpha = engine.OverallAlpha();
  r.tpl_user0 = engine.user(0).TplSeries();
  r.cache = engine.cache_stats();
  r.pool = engine.pool_stats();
  return r;
}

}  // namespace

int main() {
  auto matrix = ClickstreamModel(kPages);
  if (!matrix.ok()) {
    std::fprintf(stderr, "error: %s\n", matrix.status().ToString().c_str());
    return 1;
  }
  auto corr = TemporalCorrelations::Both(*matrix, *matrix);
  if (!corr.ok()) {
    std::fprintf(stderr, "error: %s\n", corr.status().ToString().c_str());
    return 1;
  }

  const RunResult baseline = RunFleet(*corr, /*use_cache=*/false, 1);
  const RunResult cached = RunFleet(*corr, /*use_cache=*/true, 1);
  const RunResult parallel = RunFleet(*corr, /*use_cache=*/true, 0);

  Table table({"configuration", "seconds", "releases/sec", "speedup",
               "cache hit rate", "tasks stolen"});
  auto add = [&table, &baseline](const char* name, const RunResult& r,
                                 bool cache_on) {
    table.AddRow();
    table.AddCell(name);
    table.AddNumber(r.seconds, 4);
    table.AddNumber(r.releases_per_sec, 0);
    table.AddNumber(r.releases_per_sec / baseline.releases_per_sec, 2);
    table.AddCell(cache_on ? FormatNumber(r.cache.HitRate(), 4) : "-");
    table.AddInt(static_cast<long long>(r.pool.tasks_stolen));
  };
  add("baseline (no cache, 1 thread)", baseline, false);
  add("cached (1 thread)", cached, true);
  add("cached + parallel", parallel, true);
  std::printf("fleet throughput — %zu users, horizon %zu, uniform matrix "
              "(%zu pages), eps %.2f\n%s",
              kUsers, kHorizon, kPages, kEpsilon,
              table.ToAlignedString().c_str());

  const bool identical = cached.tpl_user0 == parallel.tpl_user0 &&
                         cached.overall_alpha == parallel.overall_alpha;
  std::printf("parallel TPL series bitwise-identical to serial: %s\n",
              identical ? "yes" : "NO");
  const double speedup = parallel.releases_per_sec / baseline.releases_per_sec;
  std::printf("cached+parallel speedup over baseline: %.2fx (target >= 5x)\n",
              speedup);
  if (!identical || speedup < 5.0) {
    std::fprintf(stderr, "FAILED acceptance criteria\n");
    return 1;
  }
  return 0;
}
