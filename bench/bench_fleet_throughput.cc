// Throughput of the cohort-batched SoA accountant bank, in two regimes:
//
//   uniform   — 1000 users sharing ONE n=16 transition matrix: the
//               loss cache removes nearly all solve work (the PR-1
//               result; cached must stay >= 5x the uncached baseline);
//   hetero    — many cohorts of DISTINCT n=16 matrices under a sparse
//               (heterogeneous) schedule: per-user BPL states diverge,
//               every release performs real Algorithm-1 work per
//               (cohort, alpha-bucket), and multi-threaded recording
//               must beat the 1-thread run (the ROADMAP open item's
//               success condition; enforced when the host has >= 2
//               hardware threads).
//
// Emits machine-readable BENCH_fleet.json (users/sec by thread count,
// cohort count, matrix size) so the perf trajectory accumulates across
// PRs; `--smoke` runs a seconds-scale configuration for CI schema
// checks (CTest label perf_smoke). Bitwise serial/parallel equality is
// asserted in every mode.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "core/tpl_accountant.h"
#include "service/fleet_engine.h"
#include "workload/generators.h"

namespace {

using namespace tcdp;

struct WorkloadSpec {
  std::string name;
  std::size_t users = 0;
  std::size_t cohorts = 0;      // distinct matrix pairs
  std::size_t matrix_size = 0;  // n
  std::size_t horizon = 0;
  double sparsity = 0.0;  // per-user skip probability per release
  double epsilon = 0.1;
  std::uint64_t seed = 20260728;
};

struct RunResult {
  std::size_t threads = 0;  // 1 = inline
  double seconds = 0.0;
  double users_per_sec = 0.0;
  double overall_alpha = 0.0;
  std::vector<double> tpl_user0;
};

std::vector<TemporalCorrelations> MakeProfiles(const WorkloadSpec& spec) {
  std::vector<TemporalCorrelations> profiles;
  Rng rng(spec.seed);
  for (std::size_t c = 0; c < spec.cohorts; ++c) {
    StochasticMatrix m;
    if (spec.cohorts == 1) {
      auto clickstream = ClickstreamModel(spec.matrix_size);
      if (!clickstream.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     clickstream.status().ToString().c_str());
        std::exit(1);
      }
      m = std::move(clickstream).value();
    } else {
      m = StochasticMatrix::Random(spec.matrix_size, &rng);
    }
    profiles.push_back(TemporalCorrelations::Both(m, m).value());
  }
  return profiles;
}

/// The pre-bank array-of-structs reference: one standalone accountant
/// per user, no interning, no memoization — what every release cost
/// before cohort batching.
RunResult RunAosBaseline(const WorkloadSpec& spec) {
  const auto profiles = MakeProfiles(spec);
  PopulationAccountant population;
  for (std::size_t u = 0; u < spec.users; ++u) {
    population.AddUser("user-" + std::to_string(u),
                       profiles[u % spec.cohorts]);
  }
  WallTimer timer;
  for (std::size_t t = 0; t < spec.horizon; ++t) {
    const Status recorded = population.RecordRelease(spec.epsilon);
    if (!recorded.ok()) {
      std::fprintf(stderr, "error: %s\n", recorded.ToString().c_str());
      std::exit(1);
    }
  }
  RunResult r;
  r.threads = 1;
  r.seconds = timer.ElapsedSeconds();
  r.users_per_sec =
      r.seconds > 0.0
          ? static_cast<double>(spec.users * spec.horizon) / r.seconds
          : 0.0;
  r.overall_alpha = population.OverallAlpha();
  r.tpl_user0 = population.user(0).TplSeries();
  return r;
}

RunResult RunFleet(const WorkloadSpec& spec, bool use_cache,
                   std::size_t threads) {
  FleetEngineOptions options;
  options.share_loss_cache = use_cache;
  options.num_threads = threads;
  FleetEngine engine(options);
  const auto profiles = MakeProfiles(spec);
  for (std::size_t u = 0; u < spec.users; ++u) {
    engine.AddUser("user-" + std::to_string(u), profiles[u % spec.cohorts]);
  }
  // The participation masks are regenerated identically for every
  // thread count (seeded independently of the matrix stream).
  Rng mask_rng(spec.seed + 1);
  std::vector<std::size_t> participants;
  for (std::size_t t = 0; t < spec.horizon; ++t) {
    Status recorded;
    if (spec.sparsity == 0.0) {
      recorded = engine.RecordRelease(spec.epsilon);
    } else {
      participants.clear();
      for (std::size_t u = 0; u < spec.users; ++u) {
        if (mask_rng.Uniform() >= spec.sparsity) participants.push_back(u);
      }
      recorded = engine.RecordRelease(spec.epsilon, participants);
    }
    if (!recorded.ok()) {
      std::fprintf(stderr, "error: %s\n", recorded.ToString().c_str());
      std::exit(1);
    }
  }
  RunResult r;
  r.threads = threads == 0 ? std::thread::hardware_concurrency() : threads;
  r.seconds = engine.stats().record_seconds;
  r.users_per_sec = engine.stats().UserReleasesPerSecond();
  r.overall_alpha = engine.OverallAlpha();
  r.tpl_user0 = engine.user(0).TplSeries();
  return r;
}

void AppendWorkloadJson(std::string* json, const WorkloadSpec& spec,
                        const RunResult& r, bool cache, bool first) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%s    {\"name\": \"%s\", \"users\": %zu, \"cohorts\": %zu, "
      "\"matrix_size\": %zu, \"horizon\": %zu, \"sparsity\": %.3f, "
      "\"cache\": %s, \"threads\": %zu, \"seconds\": %.6f, "
      "\"users_per_sec\": %.1f}",
      first ? "" : ",\n", spec.name.c_str(), spec.users, spec.cohorts,
      spec.matrix_size, spec.horizon, spec.sparsity, cache ? "true" : "false",
      r.threads, r.seconds, r.users_per_sec);
  *json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_fleet.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json path]\n", argv[0]);
      return 2;
    }
  }

  WorkloadSpec uniform;
  uniform.name = "uniform_shared_matrix";
  uniform.users = smoke ? 60 : 1000;
  uniform.cohorts = 1;
  uniform.matrix_size = 16;
  uniform.horizon = smoke ? 6 : 24;

  WorkloadSpec hetero;
  hetero.name = "hetero_cohorts_sparse";
  hetero.users = smoke ? 48 : 960;
  hetero.cohorts = smoke ? 8 : 48;
  hetero.matrix_size = smoke ? 8 : 16;
  hetero.horizon = smoke ? 4 : 10;
  hetero.sparsity = 0.35;

  const std::size_t hw = std::thread::hardware_concurrency();
  std::string json = "{\n  \"bench\": \"fleet_throughput\",\n";
  json += "  \"smoke\": " + std::string(smoke ? "true" : "false") + ",\n";
  json += "  \"hardware_concurrency\": " + std::to_string(hw) + ",\n";
  json += "  \"workloads\": [\n";

  // ---- Regime 1: uniform fleet. Cohort batching alone (uncached bank)
  // already collapses the fleet's identical solves into one per
  // release; the AoS per-user-accountant baseline shows what that
  // saved. The PR-1 acceptance bar (>= 5x the per-user baseline) stays.
  const RunResult aos = RunAosBaseline(uniform);
  const RunResult uncached = RunFleet(uniform, /*use_cache=*/false, 1);
  const RunResult cached = RunFleet(uniform, /*use_cache=*/true, 1);
  const RunResult cached_par = RunFleet(uniform, /*use_cache=*/true, 0);
  WorkloadSpec named = uniform;
  named.name = "uniform_aos_baseline";
  AppendWorkloadJson(&json, named, aos, false, true);
  named.name = "uniform_bank_uncached";
  AppendWorkloadJson(&json, named, uncached, false, false);
  named.name = "uniform_bank_cached";
  AppendWorkloadJson(&json, named, cached, true, false);
  named.name = "uniform_bank_cached_parallel";
  AppendWorkloadJson(&json, named, cached_par, true, false);
  const double cache_speedup = cached.users_per_sec / aos.users_per_sec;
  std::printf(
      "uniform (n=%zu, %zu users, horizon %zu): per-user AoS baseline %.0f "
      "u/s, uncached bank %.0f u/s, cached bank %.0f u/s (%.0fx), "
      "cached+parallel %.0f u/s\n",
      uniform.matrix_size, uniform.users, uniform.horizon, aos.users_per_sec,
      uncached.users_per_sec, cached.users_per_sec, cache_speedup,
      cached_par.users_per_sec);
  bool ok = true;
  if (cached.tpl_user0 != cached_par.tpl_user0 ||
      cached.overall_alpha != cached_par.overall_alpha) {
    std::fprintf(stderr, "FAILED: uniform serial/parallel series differ\n");
    ok = false;
  }
  if (!smoke && cache_speedup < 5.0) {
    std::fprintf(stderr,
                 "FAILED: cached bank speedup %.2fx < 5x AoS baseline\n",
                 cache_speedup);
    ok = false;
  }

  // ---- Regime 2: heterogeneous cohorts + sparse schedules — the
  // workload where per-release work is real and parallelism must pay.
  std::vector<std::size_t> thread_counts =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4};
  if (!smoke && hw > 4) thread_counts.push_back(hw);
  double serial_ups = 0.0;
  double best_parallel_ups = 0.0;
  std::vector<double> serial_tpl0;
  double serial_alpha = 0.0;
  for (std::size_t threads : thread_counts) {
    const RunResult r = RunFleet(hetero, /*use_cache=*/true, threads);
    AppendWorkloadJson(&json, hetero, r, true, false);
    std::printf("hetero  (n=%zu, %zu users, %zu cohorts, sparsity %.2f) "
                "threads=%zu: %.0f u/s\n",
                hetero.matrix_size, hetero.users, hetero.cohorts,
                hetero.sparsity, threads, r.users_per_sec);
    if (threads == 1) {
      serial_ups = r.users_per_sec;
      serial_tpl0 = r.tpl_user0;
      serial_alpha = r.overall_alpha;
    } else {
      best_parallel_ups = std::max(best_parallel_ups, r.users_per_sec);
      if (r.tpl_user0 != serial_tpl0 || r.overall_alpha != serial_alpha) {
        std::fprintf(stderr,
                     "FAILED: hetero series at %zu threads differ from "
                     "serial\n",
                     threads);
        ok = false;
      }
    }
  }
  const double parallel_speedup =
      serial_ups > 0.0 ? best_parallel_ups / serial_ups : 0.0;
  std::printf("hetero parallel speedup over 1 thread: %.2fx%s\n",
              parallel_speedup,
              hw < 2 ? " (single-core host: not enforced)" : "");
  if (!smoke && hw >= 2 && parallel_speedup <= 1.0) {
    std::fprintf(stderr,
                 "FAILED: parallel (%.0f u/s) did not beat 1 thread "
                 "(%.0f u/s) on the n>=16 workload\n",
                 best_parallel_ups, serial_ups);
    ok = false;
  }

  json += "\n  ],\n  \"criteria\": {\n";
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    \"cached_speedup_vs_baseline\": %.2f,\n"
                  "    \"parallel_speedup_vs_serial\": %.2f,\n"
                  "    \"parallel_gate_enforced\": %s\n",
                  cache_speedup, parallel_speedup,
                  (!smoke && hw >= 2) ? "true" : "false");
    json += buf;
  }
  json += "  }\n}\n";
  std::ofstream json_out(json_path);
  json_out << json;
  if (!json_out) {
    std::fprintf(stderr, "FAILED: cannot write %s\n", json_path.c_str());
    return 1;
  }
  json_out.close();
  std::printf("wrote %s\n", json_path.c_str());
  return ok ? 0 : 1;
}
