#!/usr/bin/env python3
"""Markdown link checker for README.md and docs/.

Validates, with no dependencies beyond the stdlib:
  * relative file links resolve to an existing file or directory;
  * intra-document and cross-document anchors (#fragment) resolve to a
    heading whose GitHub slug matches;
  * reference-style link definitions are not silently broken.

External links (http/https/mailto) are intentionally NOT fetched — CI
must not depend on the network — but their syntax is still parsed.

Usage: check_links.py [file-or-dir ...]   (default: README.md docs/)
Exit code 0 when every link resolves, 1 otherwise.
"""

import os
import re
import sys

# [text](target) — excluding images' leading "!" is unnecessary: image
# targets are checked the same way.
INLINE_LINK = re.compile(r"\[(?:[^\]\\]|\\.)*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, spaces to dashes, punctuation
    dropped (inline code/emphasis markers included)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)
    text = re.sub(r"\*\*([^*]*)\*\*|\*([^*]*)\*", r"\1\2", text)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_lines_outside_code(path: str):
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if CODE_FENCE.match(line.strip()):
                in_fence = not in_fence
                continue
            if not in_fence:
                yield line


def heading_slugs(path: str):
    slugs = {}
    for line in markdown_lines_outside_code(path):
        match = HEADING.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        # GitHub disambiguates duplicates with -1, -2, ...
        count = slugs.get(slug, 0)
        slugs[slug] = count + 1
        if count:
            slugs[f"{slug}-{count}"] = 1
    return set(slugs)


def check_file(path: str):
    errors = []
    base = os.path.dirname(path)
    own_slugs = None
    for line in markdown_lines_outside_code(path):
        for match in INLINE_LINK.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            file_part, _, fragment = target.partition("#")
            if file_part:
                resolved = os.path.normpath(os.path.join(base, file_part))
                if not os.path.exists(resolved):
                    errors.append(f"{path}: broken file link '{target}'"
                                  f" ({resolved} does not exist)")
                    continue
                anchor_file = resolved
            else:
                anchor_file = path
            if not fragment:
                continue
            if not anchor_file.endswith(".md"):
                continue  # anchors into non-markdown are not checkable
            if anchor_file == path:
                if own_slugs is None:
                    own_slugs = heading_slugs(path)
                slugs = own_slugs
            else:
                slugs = heading_slugs(anchor_file)
            if fragment.lower() not in slugs:
                errors.append(f"{path}: broken anchor '{target}' "
                              f"(no heading slugs to '{fragment}' in "
                              f"{anchor_file})")
    return errors


def collect(paths):
    for path in paths:
        if os.path.isdir(path):
            for root, _, names in os.walk(path):
                for name in sorted(names):
                    if name.endswith(".md"):
                        yield os.path.join(root, name)
        elif path.endswith(".md"):
            yield path


def main(argv):
    targets = argv[1:] or ["README.md", "docs"]
    errors = []
    checked = 0
    for path in collect(targets):
        checked += 1
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"check_links: {checked} files, {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
