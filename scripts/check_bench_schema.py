#!/usr/bin/env python3
"""External validator for the unified tcdp-bench-v1 BENCH.json schema.

`tcdp bench` validates its own output before writing (bench/report.h),
so this script exists to catch the failure the in-process check cannot:
a C++ serializer bug that drops or renames a field would be validated
against the same broken in-memory shape. CI therefore re-checks the
artifact — and the committed baseline — from the outside, with an
independent implementation of the schema.

Usage:
  check_bench_schema.py BENCH.json [more.json ...]
  check_bench_schema.py --self-test

--self-test feeds a set of deliberately malformed reports through the
validator and fails if any of them is accepted (the negative tests the
issue asks for), plus one well-formed report that must pass.
"""

import copy
import json
import sys

SCHEMA = "tcdp-bench-v1"
MODES = ("smoke", "full")
DIRECTIONS = ("exact", "higher_is_better", "lower_is_better")


class SchemaError(Exception):
    pass


def require(obj, where, **fields):
    """Checks presence and type of each named field of a JSON object."""
    if not isinstance(obj, dict):
        raise SchemaError(f"{where}: expected an object, got {type(obj).__name__}")
    for name, types in fields.items():
        if name not in obj:
            raise SchemaError(f"{where}: missing key '{name}'")
        if not isinstance(obj[name], types) or (
                isinstance(obj[name], bool) and bool not in (
                    types if isinstance(types, tuple) else (types,))):
            raise SchemaError(
                f"{where}: key '{name}' has type {type(obj[name]).__name__}")


def check_numeric_map(obj, where):
    if not isinstance(obj, dict):
        raise SchemaError(f"{where}: expected an object")
    for key, value in obj.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SchemaError(f"{where}: '{key}' is not a number")


def check_hardware(obj, where):
    require(obj, where, cores=int, cpu_mhz=(int, float), hostname=str)
    if obj["cores"] < 1:
        raise SchemaError(f"{where}: cores must be >= 1")


def check_build(obj, where):
    require(obj, where, git_sha=str, flags=str, build_type=str, compiler=str)


def check_record(record, index):
    where = f"records[{index}]"
    require(record, where, suite=str, case=str, mode=str, params=dict,
            metrics=dict, hardware=dict, build=dict, timestamps=dict)
    if record["mode"] not in MODES:
        raise SchemaError(f"{where}: mode '{record['mode']}' not in {MODES}")
    check_numeric_map(record["params"], f"{where}.params")
    check_numeric_map(record["metrics"], f"{where}.metrics")
    if not record["metrics"]:
        raise SchemaError(f"{where}: empty metrics")
    check_hardware(record["hardware"], f"{where}.hardware")
    check_build(record["build"], f"{where}.build")
    require(record["timestamps"], f"{where}.timestamps",
            unix=(int, float), iso=str)


def check_gate(gate, index):
    where = f"gates[{index}]"
    require(gate, where, suite=str, name=str, expression=str,
            enforced=bool, passed=bool, reason=str)


def check_skip(skip, index):
    where = f"skips[{index}]"
    require(skip, where, suite=str, case=str, reason=str)
    if not skip["reason"]:
        raise SchemaError(f"{where}: empty skip reason")


def check_policy(policy, where):
    require(policy, where, direction=str, noise_frac=(int, float),
            informational=bool)
    if policy["direction"] not in DIRECTIONS:
        raise SchemaError(
            f"{where}: direction '{policy['direction']}' not in {DIRECTIONS}")
    if policy["noise_frac"] < 0:
        raise SchemaError(f"{where}: negative noise_frac")


def check_report(data):
    require(data, "report", schema=str, smoke=bool, hardware=dict,
            build=dict, timestamps=dict, suites_run=list,
            records=list, derived=dict, gates=list, skips=list,
            metric_policies=dict)
    if data["schema"] != SCHEMA:
        raise SchemaError(f"report: schema '{data['schema']}' != '{SCHEMA}'")
    check_hardware(data["hardware"], "hardware")
    check_build(data["build"], "build")
    require(data["timestamps"], "timestamps", started_unix=(int, float),
            finished_unix=(int, float), started_iso=str)
    if not data["suites_run"]:
        raise SchemaError("report: empty suites_run")
    suites = set()
    for i, name in enumerate(data["suites_run"]):
        if not isinstance(name, str) or not name:
            raise SchemaError(f"suites_run[{i}]: not a non-empty string")
        suites.add(name)
    if not data["records"]:
        raise SchemaError("report: empty records")
    mode = "smoke" if data["smoke"] else "full"
    for i, record in enumerate(data["records"]):
        check_record(record, i)
        if record["mode"] != mode:
            raise SchemaError(
                f"records[{i}]: mode '{record['mode']}' contradicts "
                f"report smoke={data['smoke']}")
        if record["suite"] not in suites:
            raise SchemaError(
                f"records[{i}]: suite '{record['suite']}' not in suites_run")
    for suite, values in data["derived"].items():
        check_numeric_map(values, f"derived['{suite}']")
    for i, gate in enumerate(data["gates"]):
        check_gate(gate, i)
    for i, skip in enumerate(data["skips"]):
        check_skip(skip, i)
    for suite, metrics in data["metric_policies"].items():
        if not isinstance(metrics, dict):
            raise SchemaError(f"metric_policies['{suite}']: expected an object")
        for metric, policy in metrics.items():
            check_policy(policy, f"metric_policies['{suite}']['{metric}']")


def minimal_valid_report():
    return {
        "schema": SCHEMA,
        "smoke": True,
        "hardware": {"cores": 1, "cpu_mhz": 2000.0, "hostname": "host"},
        "build": {"git_sha": "abc1234", "flags": "-O2",
                  "build_type": "Release", "compiler": "g++"},
        "timestamps": {"started_unix": 1.0, "finished_unix": 2.0,
                       "started_iso": "2026-01-01T00:00:00Z"},
        "suites_run": ["demo"],
        "records": [{
            "suite": "demo",
            "case": "case_a",
            "mode": "smoke",
            "params": {"n": 4},
            "metrics": {"seconds": 0.5},
            "hardware": {"cores": 1, "cpu_mhz": 2000.0, "hostname": "host"},
            "build": {"git_sha": "abc1234", "flags": "-O2",
                      "build_type": "Release", "compiler": "g++"},
            "timestamps": {"unix": 1.5, "iso": "2026-01-01T00:00:01Z"},
        }],
        "derived": {"demo": {"speedup": 2.0}},
        "gates": [{"suite": "demo", "name": "g", "expression": "speedup > 1",
                   "enforced": True, "passed": True, "reason": ""}],
        "skips": [{"suite": "demo", "case": "case_b",
                   "reason": "requires >= 2 cores"}],
        "metric_policies": {"demo": {"seconds": {
            "direction": "lower_is_better", "noise_frac": 0.15,
            "informational": True}}},
    }


def self_test():
    check_report(minimal_valid_report())  # the well-formed one must pass

    rejected = 0

    def mutate(description, fn):
        nonlocal rejected
        data = copy.deepcopy(minimal_valid_report())
        fn(data)
        try:
            check_report(data)
        except SchemaError:
            rejected += 1
            return
        raise SystemExit(
            f"self-test: accepted malformed report: {description}")

    mutate("wrong schema tag", lambda d: d.update(schema="tcdp-bench-v0"))
    mutate("missing records", lambda d: d.pop("records"))
    mutate("empty records", lambda d: d.update(records=[]))
    mutate("record missing case", lambda d: d["records"][0].pop("case"))
    mutate("record missing hardware",
           lambda d: d["records"][0].pop("hardware"))
    mutate("record missing build", lambda d: d["records"][0].pop("build"))
    mutate("record missing timestamps",
           lambda d: d["records"][0].pop("timestamps"))
    mutate("record timestamp missing unix",
           lambda d: d["records"][0]["timestamps"].pop("unix"))
    mutate("record with bad mode",
           lambda d: d["records"][0].update(mode="warmup"))
    mutate("record mode contradicting report mode",
           lambda d: d["records"][0].update(mode="full"))
    mutate("record for unlisted suite",
           lambda d: d["records"][0].update(suite="ghost"))
    mutate("non-numeric metric",
           lambda d: d["records"][0]["metrics"].update(seconds="fast"))
    mutate("boolean posing as a metric",
           lambda d: d["records"][0]["metrics"].update(seconds=True))
    mutate("empty metrics", lambda d: d["records"][0].update(metrics={}))
    mutate("hardware without cores", lambda d: d["hardware"].pop("cores"))
    mutate("zero cores", lambda d: d["hardware"].update(cores=0))
    mutate("build without git_sha", lambda d: d["build"].pop("git_sha"))
    mutate("report without timestamps", lambda d: d.pop("timestamps"))
    mutate("timestamps missing started_iso",
           lambda d: d["timestamps"].pop("started_iso"))
    mutate("gate without expression",
           lambda d: d["gates"][0].pop("expression"))
    mutate("skip without reason", lambda d: d["skips"][0].update(reason=""))
    mutate("unknown policy direction",
           lambda d: d["metric_policies"]["demo"]["seconds"].update(
               direction="sideways"))
    mutate("negative noise band",
           lambda d: d["metric_policies"]["demo"]["seconds"].update(
               noise_frac=-0.1))
    mutate("empty suites_run", lambda d: d.update(suites_run=[]))
    print(f"self-test OK: {rejected} malformed reports rejected, "
          "1 valid accepted")


def main(argv):
    if len(argv) < 2:
        raise SystemExit(__doc__)
    if argv[1] == "--self-test":
        self_test()
        return 0
    for path in argv[1:]:
        with open(path, encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as err:
                raise SystemExit(f"{path}: not valid JSON: {err}")
        try:
            check_report(data)
        except SchemaError as err:
            raise SystemExit(f"{path}: {err}")
        print(f"{path}: OK ({len(data['records'])} records, "
              f"{len(data['gates'])} gates, schema {SCHEMA})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
