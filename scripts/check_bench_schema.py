#!/usr/bin/env python3
"""Schema validation for the BENCH_*.json files the benchmarks emit.

CI runs this on both the seconds-scale smoke outputs and the full
acceptance runs, so a bench refactor that drops or renames a field
fails visibly instead of silently shipping an empty artifact.

Usage: check_bench_schema.py <kind> <json-path>
  kind: fleet | shard | net
"""

import json
import sys


def require(obj, keys, where):
    missing = [key for key in keys if key not in obj]
    if missing:
        raise SystemExit(f"{where}: missing keys {missing}")


def check_shard(data):
    require(data, ["bench", "smoke", "hardware_concurrency", "workloads",
                   "recovery", "criteria"], "BENCH_shard.json")
    if not data["workloads"]:
        raise SystemExit("BENCH_shard.json: empty workloads")
    for row in data["workloads"]:
        require(row, ["name", "shards", "batch_window", "durable", "users",
                      "requests", "global_releases", "seconds",
                      "requests_per_sec"], f"workload {row.get('name')}")
    if not data["recovery"]:
        raise SystemExit("BENCH_shard.json: empty recovery section")
    names = set()
    for row in data["recovery"]:
        require(row, ["name", "wal_records", "wal_physical_records",
                      "wal_bytes", "snapshot_every", "compacted",
                      "recover_seconds"], f"recovery {row.get('name')}")
        names.add(row["name"])
    for expected in ("full_log", "full_log_snapshots", "full_log_compacted"):
        if expected not in names:
            raise SystemExit(f"BENCH_shard.json: recovery case '{expected}'"
                             " missing")
    require(data["criteria"], ["multi_shard_speedup_vs_fleet_engine",
                               "gate_enforced", "compacted_wal_bytes",
                               "uncompacted_wal_bytes", "compact_seconds"],
            "criteria")
    compacted = data["criteria"]["compacted_wal_bytes"]
    uncompacted = data["criteria"]["uncompacted_wal_bytes"]
    if not 0 < compacted < uncompacted:
        raise SystemExit("BENCH_shard.json: compaction did not shrink the "
                         f"WAL ({uncompacted} -> {compacted} bytes)")


def check_fleet(data):
    require(data, ["bench", "smoke", "workloads", "criteria"],
            "BENCH_fleet.json")
    if not data["workloads"]:
        raise SystemExit("BENCH_fleet.json: empty workloads")


def check_net(data):
    require(data, ["bench", "smoke", "workloads", "criteria"],
            "BENCH_net.json")
    if not data["workloads"]:
        raise SystemExit("BENCH_net.json: empty workloads")


def main(argv):
    if len(argv) != 3 or argv[1] not in ("fleet", "shard", "net"):
        raise SystemExit(f"usage: {argv[0]} fleet|shard|net <json-path>")
    with open(argv[2], encoding="utf-8") as handle:
        data = json.load(handle)
    {"fleet": check_fleet, "shard": check_shard, "net": check_net}[argv[1]](
        data)
    print(f"check_bench_schema: {argv[2]} ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
