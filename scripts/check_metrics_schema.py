#!/usr/bin/env python3
"""External validator for the tcdp metrics export surfaces.

MetricsJson / MetricsPrometheusText (src/obs/metrics.cc) are rendered
by hand, so CI re-checks the artifacts from the outside with an
independent implementation of both formats — a serializer bug that
drops a field or emits a malformed label set would otherwise only be
validated against itself. The same JSON schema is produced by
`tcdp stats --json -` and `tcdp serve --metrics-json`, so one checker
covers the wire scrape and the periodic file dump.

Usage:
  check_metrics_schema.py dump.json [more.json ...]
  check_metrics_schema.py --prom dump.prom [more.prom ...]
  check_metrics_schema.py --monotonic first.json second.json
  check_metrics_schema.py --monotonic --prom first.prom second.prom
  check_metrics_schema.py --self-test

--monotonic additionally checks counter monotonicity across two
scrapes taken from the same server (every counter present in both must
not decrease; histogram counts too). With --prom it compares two
Prometheus dumps instead: counter samples plus histogram _count and
_bucket series must be non-decreasing.

--self-test feeds deliberately malformed documents through both
validators and fails if any is accepted.
"""

import copy
import json
import re
import sys

VERSION = 1

BASE_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
LABEL_NAME = r"[a-zA-Z_][a-zA-Z0-9_]*"
LABEL_VALUE = r'"(?:[^"\\\n]|\\.)*"'
LABEL_SET = rf"\{{(?:{LABEL_NAME}={LABEL_VALUE}(?:,{LABEL_NAME}={LABEL_VALUE})*)?\}}"
NAME_RE = re.compile(rf"^{BASE_NAME}(?:{LABEL_SET})?$")
PROM_SAMPLE_RE = re.compile(
    rf"^({BASE_NAME})({LABEL_SET})? (-?(?:[0-9.e+-]+|[+]?Inf|NaN))$")
PROM_TYPE_RE = re.compile(
    rf"^# TYPE ({BASE_NAME}) (counter|gauge|histogram)$")
HISTOGRAM_FIELDS = ("count", "sum", "p50", "p90", "p99", "max")


class SchemaError(Exception):
    pass


def is_number(value):
    return not isinstance(value, bool) and isinstance(value, (int, float))


def check_name(name, where):
    if not isinstance(name, str) or not NAME_RE.match(name):
        raise SchemaError(f"{where}: invalid metric name '{name}'")


# ------------------------------------------------------------------ JSON

def check_json(data):
    if not isinstance(data, dict):
        raise SchemaError("document: expected a JSON object")
    for key in ("tcdp_metrics_version", "counters", "gauges", "histograms"):
        if key not in data:
            raise SchemaError(f"document: missing key '{key}'")
    if data["tcdp_metrics_version"] != VERSION:
        raise SchemaError(
            f"document: tcdp_metrics_version "
            f"{data['tcdp_metrics_version']!r} != {VERSION}")
    for key in ("counters", "gauges", "histograms"):
        if not isinstance(data[key], dict):
            raise SchemaError(f"{key}: expected an object")
    for name, value in data["counters"].items():
        check_name(name, "counters")
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise SchemaError(
                f"counters['{name}']: not a non-negative integer")
    for name, value in data["gauges"].items():
        check_name(name, "gauges")
        if isinstance(value, bool) or not isinstance(value, int):
            raise SchemaError(f"gauges['{name}']: not an integer")
    for name, hist in data["histograms"].items():
        check_name(name, "histograms")
        where = f"histograms['{name}']"
        if not isinstance(hist, dict):
            raise SchemaError(f"{where}: expected an object")
        for field in HISTOGRAM_FIELDS:
            if field not in hist:
                raise SchemaError(f"{where}: missing key '{field}'")
            if not is_number(hist[field]):
                raise SchemaError(f"{where}.{field}: not a number")
        if isinstance(hist["count"], bool) or not isinstance(
                hist["count"], int) or hist["count"] < 0:
            raise SchemaError(f"{where}.count: not a non-negative integer")
        if not hist["p50"] <= hist["p90"] <= hist["p99"]:
            raise SchemaError(f"{where}: quantiles not monotone")
        if hist["count"] == 0 and any(
                hist[f] != 0 for f in ("sum", "p50", "p90", "p99", "max")):
            raise SchemaError(f"{where}: empty histogram with nonzero stats")


# ------------------------------------------------------------ Prometheus

def check_prometheus(text):
    declared = {}  # base name -> type
    samples = {}   # full name -> float value, in order
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        where = f"line {lineno}"
        if line.startswith("#"):
            match = PROM_TYPE_RE.match(line)
            if not match:
                raise SchemaError(f"{where}: malformed comment '{line}'")
            name, kind = match.groups()
            if name in declared:
                raise SchemaError(f"{where}: duplicate TYPE for '{name}'")
            declared[name] = kind
            continue
        match = PROM_SAMPLE_RE.match(line)
        if not match:
            raise SchemaError(f"{where}: malformed sample '{line}'")
        name, labels, value = match.group(1), match.group(2) or "", \
            match.group(3)
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in declared:
                base = name[:-len(suffix)]
                break
        if base not in declared:
            raise SchemaError(f"{where}: sample '{name}' has no TYPE")
        if declared[base] == "histogram" and base == name:
            raise SchemaError(
                f"{where}: bare sample for histogram '{name}'")
        if declared[base] == "counter" and float(value) < 0:
            raise SchemaError(f"{where}: negative counter '{name}'")
        samples[name + labels] = float(value)

    # Histogram series: cumulative non-decreasing buckets ending at
    # +Inf, with _count equal to the +Inf bucket, per label set.
    for base, kind in declared.items():
        if kind != "histogram":
            continue
        series = {}  # non-le label prefix -> [(le, value)]
        counts = {}
        for full, value in samples.items():
            if full.startswith(base + "_bucket{"):
                labels = full[len(base + "_bucket"):]
                le = re.search(r'le="([^"]*)"', labels)
                if not le:
                    raise SchemaError(
                        f"{base}: bucket without le label: {full}")
                key = re.sub(r',?le="[^"]*"', "", labels)
                series.setdefault(key, []).append((le.group(1), value))
            elif full == base + "_count" or full.startswith(
                    base + "_count{"):
                counts[full[len(base + "_count"):]] = value
        if not series:
            raise SchemaError(f"{base}: histogram with no _bucket series")
        for key, buckets in series.items():
            if buckets[-1][0] != "+Inf":
                raise SchemaError(
                    f"{base}{key}: last bucket is not le=\"+Inf\"")
            values = [v for _, v in buckets]
            if any(b > a for b, a in zip(values, values[1:])):
                raise SchemaError(f"{base}{key}: buckets not cumulative")
            count_key = key if key in counts else ""
            if count_key not in counts and key not in counts:
                raise SchemaError(f"{base}{key}: missing _count")
            if counts.get(key, counts.get("")) != values[-1]:
                raise SchemaError(
                    f"{base}{key}: +Inf bucket != _count")
    return samples, declared


# ---------------------------------------------------------- monotonicity

def check_monotonic(first, second):
    """Counters (and histogram counts) must not decrease between two
    scrapes of the same server."""
    check_json(first)
    check_json(second)
    for name, value in second["counters"].items():
        if name in first["counters"] and value < first["counters"][name]:
            raise SchemaError(
                f"counter '{name}' decreased: "
                f"{first['counters'][name]} -> {value}")
    for name, hist in second["histograms"].items():
        if name in first["histograms"]:
            before = first["histograms"][name]["count"]
            if hist["count"] < before:
                raise SchemaError(
                    f"histogram '{name}' count decreased: "
                    f"{before} -> {hist['count']}")


def prom_monotone_samples(samples, declared):
    """The subset of a Prometheus scrape that must never decrease on
    the same server: counter samples, histogram _count samples, and
    cumulative _bucket series."""
    out = {}
    for full, value in samples.items():
        name = full.split("{", 1)[0]
        if declared.get(name) == "counter":
            out[full] = value
            continue
        for suffix in ("_count", "_bucket"):
            if name.endswith(suffix) and \
                    declared.get(name[:-len(suffix)]) == "histogram":
                out[full] = value
    return out


def check_prom_monotonic(first_text, second_text):
    first_samples, first_declared = check_prometheus(first_text)
    second_samples, second_declared = check_prometheus(second_text)
    first = prom_monotone_samples(first_samples, first_declared)
    second = prom_monotone_samples(second_samples, second_declared)
    for full, value in second.items():
        if full in first and value < first[full]:
            raise SchemaError(
                f"sample '{full}' decreased: {first[full]} -> {value}")
    return len(second)


# -------------------------------------------------------------- self-test

def valid_json_doc():
    return {
        "tcdp_metrics_version": 1,
        "counters": {"tcdp_x_total": 3,
                     'tcdp_y_total{shard="0"}': 0},
        "gauges": {"tcdp_depth": -2},
        "histograms": {
            "tcdp_lat_seconds": {"count": 2, "sum": 0.5, "p50": 0.1,
                                 "p90": 0.4, "p99": 0.4, "max": 0.41},
            "tcdp_empty_seconds": {"count": 0, "sum": 0, "p50": 0,
                                   "p90": 0, "p99": 0, "max": 0},
        },
    }


VALID_PROM = """\
# TYPE tcdp_x_total counter
tcdp_x_total 3
# TYPE tcdp_depth gauge
tcdp_depth{shard="0"} -2
# TYPE tcdp_lat_seconds histogram
tcdp_lat_seconds_bucket{le="0.1"} 1
tcdp_lat_seconds_bucket{le="1"} 2
tcdp_lat_seconds_bucket{le="+Inf"} 2
tcdp_lat_seconds_sum 0.5
tcdp_lat_seconds_count 2
"""


def self_test():
    check_json(valid_json_doc())
    check_prometheus(VALID_PROM)
    check_monotonic(valid_json_doc(), valid_json_doc())

    rejected = 0

    def expect_json_reject(description, fn):
        nonlocal rejected
        data = copy.deepcopy(valid_json_doc())
        fn(data)
        try:
            check_json(data)
        except SchemaError:
            rejected += 1
            return
        raise SystemExit(f"self-test: accepted malformed JSON: {description}")

    def expect_prom_reject(description, text):
        nonlocal rejected
        try:
            check_prometheus(text)
        except SchemaError:
            rejected += 1
            return
        raise SystemExit(
            f"self-test: accepted malformed Prometheus text: {description}")

    expect_json_reject("wrong version",
                       lambda d: d.update(tcdp_metrics_version=2))
    expect_json_reject("missing counters", lambda d: d.pop("counters"))
    expect_json_reject("negative counter",
                       lambda d: d["counters"].update(tcdp_x_total=-1))
    expect_json_reject("float counter",
                       lambda d: d["counters"].update(tcdp_x_total=1.5))
    expect_json_reject("boolean gauge",
                       lambda d: d["gauges"].update(tcdp_depth=True))
    expect_json_reject("bad metric name",
                       lambda d: d["counters"].update({"9bad": 1}))
    expect_json_reject("unterminated label set",
                       lambda d: d["counters"].update({'tcdp_z{k="v"': 1}))
    expect_json_reject("histogram missing p99",
                       lambda d: d["histograms"]["tcdp_lat_seconds"].pop(
                           "p99"))
    expect_json_reject(
        "non-monotone quantiles",
        lambda d: d["histograms"]["tcdp_lat_seconds"].update(p50=0.9))
    expect_json_reject(
        "negative histogram count",
        lambda d: d["histograms"]["tcdp_lat_seconds"].update(count=-1))
    expect_json_reject(
        "empty histogram with nonzero sum",
        lambda d: d["histograms"]["tcdp_empty_seconds"].update(sum=1.0))

    expect_prom_reject("sample without TYPE", "tcdp_x_total 3\n")
    expect_prom_reject("malformed comment", "# HELLO tcdp_x_total\n")
    expect_prom_reject(
        "negative counter",
        "# TYPE tcdp_x_total counter\ntcdp_x_total -3\n")
    expect_prom_reject(
        "histogram without buckets",
        "# TYPE tcdp_lat_seconds histogram\ntcdp_lat_seconds_count 2\n")
    expect_prom_reject(
        "histogram without +Inf",
        "# TYPE tcdp_lat_seconds histogram\n"
        'tcdp_lat_seconds_bucket{le="1"} 2\n'
        "tcdp_lat_seconds_sum 0.5\ntcdp_lat_seconds_count 2\n")
    expect_prom_reject(
        "non-cumulative buckets",
        "# TYPE tcdp_lat_seconds histogram\n"
        'tcdp_lat_seconds_bucket{le="0.1"} 2\n'
        'tcdp_lat_seconds_bucket{le="1"} 1\n'
        'tcdp_lat_seconds_bucket{le="+Inf"} 2\n'
        "tcdp_lat_seconds_sum 0.5\ntcdp_lat_seconds_count 2\n")
    expect_prom_reject(
        "+Inf bucket disagrees with _count",
        "# TYPE tcdp_lat_seconds histogram\n"
        'tcdp_lat_seconds_bucket{le="+Inf"} 3\n'
        "tcdp_lat_seconds_sum 0.5\ntcdp_lat_seconds_count 2\n")
    expect_prom_reject(
        "malformed label set",
        "# TYPE tcdp_x_total counter\ntcdp_x_total{k=unquoted} 3\n")

    # Monotonicity violations.
    shrunk = valid_json_doc()
    shrunk["counters"]["tcdp_x_total"] = 1
    try:
        check_monotonic(valid_json_doc(), shrunk)
        raise SystemExit("self-test: accepted a decreasing counter")
    except SchemaError:
        rejected += 1

    # Prometheus monotonicity: identical scrapes pass; a decreasing
    # counter, a decreasing histogram _count, and a decreasing _bucket
    # sample are each rejected; gauges are free to fall.
    check_prom_monotonic(VALID_PROM, VALID_PROM)
    check_prom_monotonic(VALID_PROM,
                         VALID_PROM.replace("tcdp_depth{shard=\"0\"} -2",
                                            "tcdp_depth{shard=\"0\"} -9"))
    for description, first, second in (
            ("decreasing prom counter",
             VALID_PROM, VALID_PROM.replace("tcdp_x_total 3",
                                            "tcdp_x_total 2")),
            ("decreasing prom histogram count",
             VALID_PROM,
             VALID_PROM.replace("tcdp_lat_seconds_count 2",
                                "tcdp_lat_seconds_count 1")
             .replace('tcdp_lat_seconds_bucket{le="1"} 2',
                      'tcdp_lat_seconds_bucket{le="1"} 1')
             .replace('tcdp_lat_seconds_bucket{le="+Inf"} 2',
                      'tcdp_lat_seconds_bucket{le="+Inf"} 1')),
            ("decreasing prom bucket",
             VALID_PROM,
             VALID_PROM.replace('tcdp_lat_seconds_bucket{le="0.1"} 1',
                                'tcdp_lat_seconds_bucket{le="0.1"} 0'))):
        try:
            check_prom_monotonic(first, second)
            raise SystemExit(f"self-test: accepted {description}")
        except SchemaError:
            rejected += 1

    print(f"self-test OK: {rejected} malformed documents rejected")


# ------------------------------------------------------------------ main

def load_json(path):
    with open(path, encoding="utf-8") as handle:
        try:
            return json.load(handle)
        except json.JSONDecodeError as err:
            raise SystemExit(f"{path}: not valid JSON: {err}")


def main(argv):
    if len(argv) < 2:
        raise SystemExit(__doc__)
    if argv[1] == "--self-test":
        self_test()
        return 0
    if argv[1] == "--prom":
        if len(argv) < 3:
            raise SystemExit(__doc__)
        for path in argv[2:]:
            with open(path, encoding="utf-8") as handle:
                try:
                    samples, _ = check_prometheus(handle.read())
                except SchemaError as err:
                    raise SystemExit(f"{path}: {err}")
            print(f"{path}: OK ({len(samples)} samples)")
        return 0
    if argv[1] == "--monotonic":
        if len(argv) >= 3 and argv[2] == "--prom":
            if len(argv) != 5:
                raise SystemExit(__doc__)
            with open(argv[3], encoding="utf-8") as handle:
                first_text = handle.read()
            with open(argv[4], encoding="utf-8") as handle:
                second_text = handle.read()
            try:
                checked = check_prom_monotonic(first_text, second_text)
            except SchemaError as err:
                raise SystemExit(f"{argv[4]}: {err}")
            print(f"{argv[3]} -> {argv[4]}: prom samples monotone "
                  f"({checked} monotone samples)")
            return 0
        if len(argv) != 4:
            raise SystemExit(__doc__)
        first, second = load_json(argv[2]), load_json(argv[3])
        try:
            check_monotonic(first, second)
        except SchemaError as err:
            raise SystemExit(f"{argv[3]}: {err}")
        print(f"{argv[2]} -> {argv[3]}: counters monotone "
              f"({len(second['counters'])} counters)")
        return 0
    for path in argv[1:]:
        data = load_json(path)
        try:
            check_json(data)
        except SchemaError as err:
            raise SystemExit(f"{path}: {err}")
        print(f"{path}: OK ({len(data['counters'])} counters, "
              f"{len(data['gauges'])} gauges, "
              f"{len(data['histograms'])} histograms)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
