// Unit tests for common/table.

#include "common/table.h"

#include <gtest/gtest.h>

namespace tcdp {
namespace {

TEST(FormatNumber, FixedPrecision) {
  EXPECT_EQ(FormatNumber(3.14159, 2), "3.14");
  EXPECT_EQ(FormatNumber(1.0, 4), "1.0000");
  EXPECT_EQ(FormatNumber(-0.5, 1), "-0.5");
}

TEST(FormatNumber, SpecialValues) {
  EXPECT_EQ(FormatNumber(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(FormatNumber(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(FormatNumber(std::numeric_limits<double>::quiet_NaN()), "nan");
}

TEST(Table, BuildsRowsAndCounts) {
  Table t({"a", "b"});
  EXPECT_EQ(t.num_cols(), 2u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow();
  t.AddCell("x");
  t.AddNumber(1.5, 1);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Table, AlignedOutputContainsHeaderAndCells) {
  Table t({"name", "value"});
  t.AddRow();
  t.AddCell("epsilon");
  t.AddNumber(0.25, 2);
  const std::string out = t.ToAlignedString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("epsilon"), std::string::npos);
  EXPECT_NE(out.find("0.25"), std::string::npos);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"k"});
  t.AddRow();
  t.AddCell("a,b");
  t.AddRow();
  t.AddCell("say \"hi\"");
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvRowsNewlineSeparated) {
  Table t({"x", "y"});
  t.AddRowCells({"1", "2"});
  t.AddRowCells({"3", "4"});
  EXPECT_EQ(t.ToCsv(), "x,y\n1,2\n3,4\n");
}

TEST(Table, AddIntFormatsWithoutDecimals) {
  Table t({"n"});
  t.AddRow();
  t.AddInt(42);
  EXPECT_NE(t.ToCsv().find("42"), std::string::npos);
  EXPECT_EQ(t.ToCsv().find("42.0"), std::string::npos);
}

}  // namespace
}  // namespace tcdp
