// Unit tests for obs/metrics: histogram bucket math (bounded relative
// error), snapshot merging, the binary snapshot codec, and the
// registry/naming conveniences.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace tcdp {
namespace obs {
namespace {

// The documented error bound with a hair of slack for the floating-
// point log/exp round trips in BucketIndex/BucketValue.
double Tolerance(double relative_error) { return relative_error * 1.0001; }

TEST(Histogram, SingleValueQuantileWithinRelativeError) {
  HistogramOptions options;
  options.relative_error = 0.05;
  Histogram histogram(options);
  // Sweep values geometrically across the full [min, max) range.
  for (double value = options.min_value * 1.5; value < options.max_value;
       value *= 3.7) {
    Histogram fresh(options);
    fresh.Observe(value);
    const double estimate = fresh.Snapshot().Quantile(0.5);
    EXPECT_NEAR(estimate, value, value * Tolerance(options.relative_error))
        << "value=" << value;
  }
}

TEST(Histogram, BucketEdgesContainTheirValues) {
  Histogram histogram;
  const HistogramOptions& options = histogram.options();
  for (double value = options.min_value; value < options.max_value;
       value *= 2.9) {
    const std::size_t index = histogram.BucketIndex(value);
    ASSERT_LT(index, histogram.num_buckets());
    EXPECT_LT(value, histogram.BucketUpperEdge(index));
    if (index > 0) {
      EXPECT_GE(value, histogram.BucketUpperEdge(index - 1) *
                           (1.0 - 1e-12));
    }
    // The representative sits inside its own bucket.
    const double rep = histogram.BucketValue(index);
    EXPECT_EQ(histogram.BucketIndex(rep), index);
  }
}

TEST(Histogram, TinyValuesClampIntoFirstBucket) {
  HistogramOptions options;
  Histogram histogram(options);
  histogram.Observe(options.min_value / 1000.0);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count(), 1u);
  EXPECT_EQ(snapshot.zero_count, 0u);
  EXPECT_EQ(snapshot.overflow_count, 0u);
  // Over-reported (first-bucket representative), never under.
  EXPECT_GE(snapshot.Quantile(0.5), options.min_value / 1000.0);
}

TEST(Histogram, ZeroAndNegativeLandInZeroBucket) {
  Histogram histogram;
  histogram.Observe(0.0);
  histogram.Observe(-3.5);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.zero_count, 2u);
  EXPECT_EQ(snapshot.count(), 2u);
  EXPECT_EQ(snapshot.Quantile(0.5), 0.0);
}

TEST(Histogram, OverflowBucketReportsMaxValue) {
  HistogramOptions options;
  Histogram histogram(options);
  histogram.Observe(options.max_value);
  histogram.Observe(options.max_value * 50.0);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.overflow_count, 2u);
  EXPECT_EQ(snapshot.count(), 2u);
  EXPECT_EQ(snapshot.Quantile(0.99), options.max_value);
  // max_observed is exact even when the bucket saturates.
  EXPECT_EQ(snapshot.max_observed, options.max_value * 50.0);
}

TEST(Histogram, EmptySnapshotQuantileIsZero) {
  Histogram histogram;
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count(), 0u);
  EXPECT_EQ(snapshot.Quantile(0.0), 0.0);
  EXPECT_EQ(snapshot.Quantile(0.5), 0.0);
  EXPECT_EQ(snapshot.Quantile(1.0), 0.0);
}

TEST(Histogram, QuantilesAreMonotonic) {
  Histogram histogram;
  for (int i = 1; i <= 1000; ++i) histogram.Observe(i * 1e-4);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  double previous = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double value = snapshot.Quantile(q);
    EXPECT_GE(value, previous) << "q=" << q;
    previous = value;
  }
  // Spot-check the median against the exact value.
  EXPECT_NEAR(snapshot.Quantile(0.5), 0.05,
              0.05 * Tolerance(histogram.options().relative_error));
}

TEST(Histogram, MergeSumsEveryField) {
  HistogramOptions options;
  Histogram a(options);
  Histogram b(options);
  a.Observe(0.001);
  a.Observe(0.0);
  b.Observe(0.002);
  b.Observe(options.max_value * 2.0);
  HistogramSnapshot merged = a.Snapshot();
  ASSERT_TRUE(merged.Merge(b.Snapshot()));
  EXPECT_EQ(merged.count(), 4u);
  EXPECT_EQ(merged.zero_count, 1u);
  EXPECT_EQ(merged.overflow_count, 1u);
  EXPECT_EQ(merged.max_observed, options.max_value * 2.0);
  EXPECT_NEAR(merged.sum, 0.003 + options.max_value * 2.0, 1e-12);
}

TEST(Histogram, MergeIsCommutative) {
  HistogramOptions options;
  Histogram a(options);
  Histogram b(options);
  for (int i = 1; i < 50; ++i) a.Observe(i * 1e-3);
  for (int i = 1; i < 80; ++i) b.Observe(i * 1e-2);
  HistogramSnapshot ab = a.Snapshot();
  ASSERT_TRUE(ab.Merge(b.Snapshot()));
  HistogramSnapshot ba = b.Snapshot();
  ASSERT_TRUE(ba.Merge(a.Snapshot()));
  EXPECT_EQ(ab.buckets, ba.buckets);
  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_EQ(ab.Quantile(0.9), ba.Quantile(0.9));
}

TEST(Histogram, MergeRejectsMismatchedConfiguration) {
  HistogramOptions narrow;
  narrow.relative_error = 0.01;
  Histogram a;
  Histogram b(narrow);
  a.Observe(1.0);
  b.Observe(1.0);
  HistogramSnapshot merged = a.Snapshot();
  const HistogramSnapshot before = merged;
  EXPECT_FALSE(merged.Merge(b.Snapshot()));
  // Failed merge must leave the target untouched.
  EXPECT_EQ(merged.buckets, before.buckets);
  EXPECT_EQ(merged.count(), before.count());
}

TEST(Histogram, ConcurrentObserversLoseNothing) {
  Histogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Observe((t + 1) * 1e-4);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(histogram.Snapshot().count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsCodec, RoundTripPreservesEverything) {
  MetricsSnapshot snapshot;
  snapshot.counters.emplace_back("tcdp_test_total", 12345u);
  snapshot.counters.emplace_back("tcdp_test_zero_total", 0u);
  snapshot.gauges.emplace_back("tcdp_test_gauge", -42);
  snapshot.gauges.emplace_back("tcdp_test_gauge_big",
                               std::int64_t{1} << 40);
  Histogram histogram;
  histogram.Observe(0.0);
  histogram.Observe(1e-5);
  histogram.Observe(0.37);
  histogram.Observe(1e9);
  snapshot.histograms.emplace_back("tcdp_test_seconds",
                                   histogram.Snapshot());
  Histogram empty;
  snapshot.histograms.emplace_back("tcdp_test_empty_seconds",
                                   empty.Snapshot());

  const std::string payload = EncodeMetricsSnapshot(snapshot);
  auto decoded = DecodeMetricsSnapshot(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->counters, snapshot.counters);
  EXPECT_EQ(decoded->gauges, snapshot.gauges);
  ASSERT_EQ(decoded->histograms.size(), snapshot.histograms.size());
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& want = snapshot.histograms[i].second;
    const HistogramSnapshot& got = decoded->histograms[i].second;
    EXPECT_EQ(decoded->histograms[i].first, snapshot.histograms[i].first);
    EXPECT_EQ(got.buckets, want.buckets);
    EXPECT_EQ(got.zero_count, want.zero_count);
    EXPECT_EQ(got.overflow_count, want.overflow_count);
    EXPECT_EQ(got.sum, want.sum);
    EXPECT_EQ(got.max_observed, want.max_observed);
    EXPECT_EQ(got.relative_error, want.relative_error);
  }
}

TEST(MetricsCodec, RejectsMalformedPayloads) {
  MetricsSnapshot snapshot;
  snapshot.counters.emplace_back("tcdp_test_total", 7u);
  const std::string payload = EncodeMetricsSnapshot(snapshot);

  EXPECT_FALSE(DecodeMetricsSnapshot(std::string()).ok());
  // Unsupported version byte.
  std::string bad_version = payload;
  bad_version[0] = static_cast<char>(99);
  EXPECT_FALSE(DecodeMetricsSnapshot(bad_version).ok());
  // Every truncation must fail, never crash or accept.
  for (std::size_t cut = 1; cut < payload.size(); ++cut) {
    EXPECT_FALSE(DecodeMetricsSnapshot(payload.substr(0, cut)).ok())
        << "cut=" << cut;
  }
  // Trailing garbage after a well-formed snapshot.
  EXPECT_FALSE(DecodeMetricsSnapshot(payload + "x").ok());
}

TEST(Registry, FindOrCreateReturnsStablePointers) {
  Registry& registry = Registry::Default();
  Counter* counter = registry.GetCounter("tcdp_unittest_stable_total");
  EXPECT_EQ(registry.GetCounter("tcdp_unittest_stable_total"), counter);
  Gauge* gauge = registry.GetGauge("tcdp_unittest_stable_gauge");
  EXPECT_EQ(registry.GetGauge("tcdp_unittest_stable_gauge"), gauge);
  Histogram* histogram =
      registry.GetHistogram("tcdp_unittest_stable_seconds");
  EXPECT_EQ(registry.GetHistogram("tcdp_unittest_stable_seconds"),
            histogram);
}

TEST(Registry, KindCollisionYieldsDetachedInstrument) {
  Registry& registry = Registry::Default();
  Counter* counter = registry.GetCounter("tcdp_unittest_collision");
  ASSERT_NE(counter, nullptr);
  // Same name, different kind: callers still get a usable instrument,
  // but it must not alias the counter and must not be exported.
  Gauge* gauge = registry.GetGauge("tcdp_unittest_collision");
  ASSERT_NE(gauge, nullptr);
  gauge->Set(123);
  const MetricsSnapshot snapshot = registry.Snapshot();
  for (const auto& [name, value] : snapshot.gauges) {
    EXPECT_NE(name, "tcdp_unittest_collision");
    (void)value;
  }
}

TEST(MetricNames, WithLabelComposesAndValidates) {
  EXPECT_EQ(WithLabel("tcdp_x_total", "shard", "3"),
            "tcdp_x_total{shard=\"3\"}");
  EXPECT_EQ(WithLabel(WithLabel("tcdp_x_total", "shard", "3"), "op", "y"),
            "tcdp_x_total{shard=\"3\",op=\"y\"}");
  EXPECT_TRUE(IsValidMetricName("tcdp_x_total"));
  EXPECT_TRUE(IsValidMetricName(WithLabel("tcdp_x_total", "k", "v")));
  EXPECT_TRUE(
      IsValidMetricName(WithLabel("tcdp_x_total", "k", "quo\"te")));
  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("9starts_with_digit"));
  EXPECT_FALSE(IsValidMetricName("tcdp_x{unterminated"));
  EXPECT_FALSE(IsValidMetricName("tcdp_x{k=unquoted}"));
}

TEST(ScopedLatencyTimerTest, NullHistogramAndDisabledMetricsAreSafe) {
  { ScopedLatencyTimer timer(nullptr); }
  Histogram histogram;
  SetMetricsEnabled(false);
  { ScopedLatencyTimer timer(&histogram); }
  SetMetricsEnabled(true);
  EXPECT_EQ(histogram.Snapshot().count(), 0u);
  { ScopedLatencyTimer timer(&histogram); }
  EXPECT_EQ(histogram.Snapshot().count(), 1u);
}

TEST(MetricsExport, JsonAndPrometheusRenderRegisteredInstruments) {
  MetricsSnapshot snapshot;
  snapshot.counters.emplace_back("tcdp_render_total", 3u);
  snapshot.gauges.emplace_back(WithLabel("tcdp_render_gauge", "shard", "0"),
                               -1);
  Histogram histogram;
  histogram.Observe(0.25);
  snapshot.histograms.emplace_back("tcdp_render_seconds",
                                   histogram.Snapshot());

  const std::string json = MetricsJson(snapshot);
  EXPECT_NE(json.find("\"tcdp_metrics_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"tcdp_render_total\": 3"), std::string::npos);
  EXPECT_NE(json.find("tcdp_render_seconds"), std::string::npos);

  const std::string prom = MetricsPrometheusText(snapshot);
  EXPECT_NE(prom.find("# TYPE tcdp_render_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("tcdp_render_gauge{shard=\"0\"} -1"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE tcdp_render_seconds histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(prom.find("tcdp_render_seconds_count 1"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace tcdp
