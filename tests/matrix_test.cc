// Unit tests for linalg/matrix.

#include "linalg/matrix.h"

#include <gtest/gtest.h>

namespace tcdp {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(Matrix, FillConstructor) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m.At(r, c), 1.5);
  }
}

TEST(Matrix, InitializerListLayout) {
  Matrix m({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m(0, 0), 1);
  EXPECT_DOUBLE_EQ(m(0, 1), 2);
  EXPECT_DOUBLE_EQ(m(1, 0), 3);
  EXPECT_DOUBLE_EQ(m(1, 1), 4);
}

TEST(Matrix, FromFlatValidatesSize) {
  auto ok = Matrix::FromFlat(2, 2, {1, 2, 3, 4});
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(ok->At(1, 0), 3);
  auto bad = Matrix::FromFlat(2, 2, {1, 2, 3});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(Matrix, IdentityHasOnesOnDiagonal) {
  Matrix id = Matrix::Identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, RowAndColExtraction) {
  Matrix m({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.Row(1), (std::vector<double>{4, 5, 6}));
  EXPECT_EQ(m.Col(2), (std::vector<double>{3, 6}));
}

TEST(Matrix, SetRowOverwrites) {
  Matrix m(2, 2, 0.0);
  m.SetRow(0, {7, 8});
  EXPECT_DOUBLE_EQ(m(0, 0), 7);
  EXPECT_DOUBLE_EQ(m(0, 1), 8);
  EXPECT_DOUBLE_EQ(m(1, 0), 0);
}

TEST(Matrix, TransposeSwapsIndices) {
  Matrix m({{1, 2, 3}, {4, 5, 6}});
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6);
}

TEST(Matrix, MultiplyMatchesHandComputation) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix b({{5, 6}, {7, 8}});
  auto c = a.Multiply(b);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->ApproxEquals(Matrix({{19, 22}, {43, 50}})));
}

TEST(Matrix, MultiplyShapeMismatchFails) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_FALSE(a.Multiply(b).ok());
}

TEST(Matrix, MultiplyByIdentityIsNoop) {
  Matrix a({{1, 2}, {3, 4}});
  auto c = a.Multiply(Matrix::Identity(2));
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->ApproxEquals(a));
}

TEST(Matrix, LeftMultiplyIsRowVectorTimesMatrix) {
  Matrix m({{1, 2}, {3, 4}});
  // (1, 1) * m = (4, 6)
  EXPECT_EQ(m.LeftMultiply({1, 1}), (std::vector<double>{4, 6}));
}

TEST(Matrix, RightMultiplyIsMatrixTimesColumn) {
  Matrix m({{1, 2}, {3, 4}});
  EXPECT_EQ(m.RightMultiply({1, 1}), (std::vector<double>{3, 7}));
}

TEST(Matrix, MaxAbsDiffAndApproxEquals) {
  Matrix a({{1, 2}, {3, 4}});
  Matrix b({{1, 2}, {3, 4.5}});
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 0.5);
  EXPECT_FALSE(a.ApproxEquals(b));
  EXPECT_TRUE(a.ApproxEquals(b, 0.6));
}

TEST(Matrix, ApproxEqualsRejectsShapeMismatch) {
  EXPECT_FALSE(Matrix(2, 2).ApproxEquals(Matrix(2, 3)));
}

TEST(Matrix, ToStringContainsEntries) {
  Matrix m({{1.25, 0}, {0, 1}});
  const std::string s = m.ToString(2);
  EXPECT_NE(s.find("1.25"), std::string::npos);
}

}  // namespace
}  // namespace tcdp
