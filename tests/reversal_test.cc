// Unit tests for markov/reversal: Bayesian derivation of backward
// correlations (paper Section III-A) including the Figure 2 example
// structure.

#include "markov/reversal.h"

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "markov/markov_chain.h"

namespace tcdp {
namespace {

TEST(ReverseWithPrior, ValidatesSizes) {
  auto fwd = StochasticMatrix::Uniform(3);
  EXPECT_FALSE(ReverseWithPrior(fwd, {0.5, 0.5}).ok());
}

TEST(ReverseWithPrior, ValidatesPrior) {
  auto fwd = StochasticMatrix::Uniform(2);
  EXPECT_FALSE(ReverseWithPrior(fwd, {0.7, 0.7}).ok());
}

TEST(ReverseWithPrior, FailsOnZeroMarginal) {
  // State 1 is unreachable: forward never transitions into it and the
  // prior gives it no mass.
  auto fwd = StochasticMatrix::FromRows({{1.0, 0.0}, {1.0, 0.0}});
  auto r = ReverseWithPrior(fwd, {1.0, 0.0});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ReverseWithPrior, BayesRuleHandComputed) {
  // P^F = ((0.9, 0.1), (0.2, 0.8)), prior = (0.5, 0.5).
  // marginal = (0.55, 0.45).
  // P^B(0,0) = 0.9*0.5/0.55 = 9/11; P^B(0,1) = 0.2*0.5/0.55 = 2/11.
  auto fwd = StochasticMatrix::FromRows({{0.9, 0.1}, {0.2, 0.8}});
  auto back = ReverseWithPrior(fwd, {0.5, 0.5});
  ASSERT_TRUE(back.ok());
  EXPECT_NEAR(back->At(0, 0), 9.0 / 11.0, 1e-12);
  EXPECT_NEAR(back->At(0, 1), 2.0 / 11.0, 1e-12);
  EXPECT_NEAR(back->At(1, 0), 0.1 * 0.5 / 0.45, 1e-12);
  EXPECT_NEAR(back->At(1, 1), 0.8 * 0.5 / 0.45, 1e-12);
}

TEST(ReverseWithPrior, UniformChainIsSelfReverse) {
  auto fwd = StochasticMatrix::Uniform(4);
  std::vector<double> prior(4, 0.25);
  auto back = ReverseWithPrior(fwd, prior);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ApproxEquals(fwd, 1e-12));
}

TEST(ReverseWithPrior, RowsAreDistributions) {
  auto fwd = StochasticMatrix::FromRows(
      {{0.2, 0.3, 0.5}, {0.1, 0.1, 0.8}, {0.6, 0.2, 0.2}});
  auto back = ReverseWithPrior(fwd, {0.3, 0.3, 0.4});
  ASSERT_TRUE(back.ok());
  for (std::size_t r = 0; r < 3; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) sum += back->At(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(ReverseAtStationarity, ReversibleChainEqualsForward) {
  // Symmetric transition matrices are reversible w.r.t. the uniform
  // stationary distribution: P^B == P^F.
  auto fwd = StochasticMatrix::FromRows({{0.7, 0.3}, {0.3, 0.7}});
  auto back = ReverseAtStationarity(fwd);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ApproxEquals(fwd, 1e-6));
}

TEST(ReverseAtStationarity, NonReversibleChainDiffers) {
  // A biased cycle flows one way forward and the other way backward.
  auto fwd = StochasticMatrix::FromRows(
      {{0.1, 0.8, 0.1}, {0.1, 0.1, 0.8}, {0.8, 0.1, 0.1}});
  auto back = ReverseAtStationarity(fwd);
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back->ApproxEquals(fwd, 1e-3));
  // Backward mass should concentrate on the predecessor in the cycle:
  // current 1 came mostly from 0.
  EXPECT_GT(back->At(1, 0), 0.6);
}

TEST(ReverseAtStationarity, DoubleReversalRecoversForward) {
  auto fwd = StochasticMatrix::FromRows(
      {{0.5, 0.4, 0.1}, {0.2, 0.5, 0.3}, {0.3, 0.3, 0.4}});
  auto back = ReverseAtStationarity(fwd);
  ASSERT_TRUE(back.ok());
  auto fwd_again = ReverseAtStationarity(*back);
  ASSERT_TRUE(fwd_again.ok());
  EXPECT_TRUE(fwd_again->ApproxEquals(fwd, 1e-6));
}

}  // namespace
}  // namespace tcdp
