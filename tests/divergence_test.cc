// Divergence tests (ISSUE 10): a follower whose local history
// disagrees with the primary's must refuse to apply, report unhealthy
// loudly, and never silently fork — and the primary must refuse the
// forked follower symmetrically.
//
// Divergence is asserted by CONTENT, not length: subscribe cursors and
// kLogBatch prefixes carry chain CRCs (repl_messages.h), so two
// histories with the same record count but different bytes are caught
// at the first handshake. The dual of divergence also matters: an
// out-of-sequence batch (record-count mismatch) is a TRANSPORT error —
// reconnect and resubscribe — because it carries no evidence the
// histories differ, only that the stream is stale. These tests pin
// down both classifications.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/wire.h"
#include "replication/follower.h"
#include "replication/log_stream.h"
#include "replication/repl_messages.h"
#include "server/event_log.h"
#include "server/sharded_service.h"
#include "workload/generators.h"

namespace tcdp {
namespace replication {
namespace {

constexpr std::size_t kShards = 2;

std::string UserName(std::size_t u) { return "user-" + std::to_string(u); }

TemporalCorrelations Profile(std::size_t u) {
  auto matrix = ClickstreamModel(3 + u % 3, 0.2 + 0.05 * (u % 4));
  EXPECT_TRUE(matrix.ok());
  return TemporalCorrelations::Both(*matrix, *matrix).value();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

std::string ShardWal(const std::string& dir, std::size_t shard) {
  return dir + "/shard-" + std::to_string(shard) + ".wal";
}

/// Runs the shared workload, then one final ReleaseAll(tail_epsilon):
/// two dirs built with different tails share a WAL byte prefix and
/// fork at the last release records.
void RunForkedService(const std::string& dir, double tail_epsilon) {
  std::filesystem::remove_all(dir);
  server::ShardedServiceOptions options;
  options.num_shards = kShards;
  options.batch_window = 4;
  auto service = server::ShardedReleaseService::Create(dir, options);
  ASSERT_TRUE(service.ok()) << service.status();
  for (std::size_t u = 0; u < 6; ++u) {
    ASSERT_TRUE((*service)->Join(UserName(u), Profile(u)).ok());
  }
  ASSERT_TRUE((*service)->Flush().ok());
  for (std::size_t u = 0; u < 6; ++u) {
    ASSERT_TRUE((*service)->Release(UserName(u), 0.1).ok());
  }
  ASSERT_TRUE((*service)->Flush().ok());
  ASSERT_TRUE((*service)->ReleaseAll(tail_epsilon).ok());
  ASSERT_TRUE((*service)->Flush().ok());
  ASSERT_TRUE((*service)->Close().ok());
}

std::vector<std::uint64_t> WalRecordCounts(const std::string& dir) {
  std::vector<std::uint64_t> counts;
  for (std::size_t s = 0; s < kShards; ++s) {
    auto read = server::ReadEventLog(ShardWal(dir, s));
    EXPECT_TRUE(read.ok()) << read.status();
    EXPECT_TRUE(read->clean);
    counts.push_back(read->records.size());
  }
  return counts;
}

/// Streams \p primary_dir into \p replica_dir until the follower has
/// acked every record, then tears the stream down.
void ReplicateFully(const std::string& primary_dir,
                    const std::string& replica_dir) {
  LogStreamOptions stream_options;
  stream_options.log_dir = primary_dir;
  auto stream = LogStreamServer::Listen(stream_options);
  ASSERT_TRUE(stream.ok()) << stream.status();
  Status serve_status;
  std::thread serve_thread(
      [&stream, &serve_status] { serve_status = (*stream)->Serve(); });

  FollowerOptions options;
  options.primary_port = (*stream)->port();
  options.log_dir = replica_dir;
  auto follower = Follower::Open(options);
  ASSERT_TRUE(follower.ok()) << follower.status();
  ASSERT_TRUE((*follower)->Start().ok());
  const std::vector<std::uint64_t> want = WalRecordCounts(primary_dir);
  for (int i = 0; i < 500; ++i) {
    if ((*follower)->status().durable_records == want) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  (*follower)->Stop();
  ASSERT_EQ((*follower)->status().durable_records, want)
      << "replica never caught up for the test setup";
  ASSERT_FALSE((*follower)->status().diverged);
  (*stream)->Stop();
  serve_thread.join();
  ASSERT_TRUE(serve_status.ok()) << serve_status;
}

/// Starts a stream server over \p primary_dir and points a follower
/// with reconnect ENABLED at it; returns after the follower's thread
/// has terminated on its own (divergence must end the session loop
/// even though reconnecting is allowed). Fails the test on timeout.
FollowerStatus AttemptSync(const std::string& primary_dir,
                           const std::string& replica_dir,
                           std::uint64_t* primary_divergences,
                           Status* promote_status) {
  LogStreamOptions stream_options;
  stream_options.log_dir = primary_dir;
  auto stream = LogStreamServer::Listen(stream_options);
  EXPECT_TRUE(stream.ok()) << stream.status();
  Status serve_status;
  std::thread serve_thread(
      [&stream, &serve_status] { serve_status = (*stream)->Serve(); });

  FollowerOptions options;
  options.primary_port = (*stream)->port();
  options.log_dir = replica_dir;
  options.reconnect = true;  // divergence must trump the reconnect policy
  options.reconnect_delay_ms = 10;
  auto follower = Follower::Open(options);
  EXPECT_TRUE(follower.ok()) << follower.status();
  EXPECT_TRUE((*follower)->Start().ok());
  bool stopped = false;
  for (int i = 0; i < 500; ++i) {
    if (!(*follower)->status().running) {
      stopped = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(stopped)
      << "a diverged follower must terminate, not keep reconnecting";
  const FollowerStatus status = (*follower)->status();
  *promote_status = (*follower)->Promote().status();
  *primary_divergences = (*stream)->stats().divergences;
  (*stream)->Stop();
  serve_thread.join();
  EXPECT_TRUE(serve_status.ok()) << serve_status;
  return status;
}

TEST(DivergenceTest, ForkedHistoryIsRefusedAtSubscribe) {
  const std::string dir_a = "/tmp/tcdp_diverge_a";
  const std::string dir_b = "/tmp/tcdp_diverge_b";
  const std::string replica_dir = "/tmp/tcdp_diverge_replica";
  std::filesystem::remove_all(replica_dir);
  // Two primaries with a common history that forks at the tail: the
  // same record COUNTS, different record BYTES.
  RunForkedService(dir_a, 0.2);
  RunForkedService(dir_b, 0.9);
  ASSERT_EQ(WalRecordCounts(dir_a), WalRecordCounts(dir_b));
  const std::string wal_a = ReadFileBytes(ShardWal(dir_a, 0));
  const std::string wal_b = ReadFileBytes(ShardWal(dir_b, 0));
  ASSERT_EQ(wal_a.size(), wal_b.size());
  ASSERT_NE(wal_a, wal_b) << "the tails must actually fork";
  ASSERT_EQ(wal_a.compare(0, 64, wal_b, 0, 64), 0)
      << "the histories must share a real common prefix";

  ReplicateFully(dir_a, replica_dir);
  std::vector<std::string> replica_before;
  for (std::size_t s = 0; s < kShards; ++s) {
    replica_before.push_back(ReadFileBytes(ShardWal(replica_dir, s)));
  }

  // Point the A-replica at B: the subscribe cursor's chain CRC cannot
  // match B's history, so B must refuse it and the follower must latch
  // diverged without applying (or truncating) anything.
  std::uint64_t divergences = 0;
  Status promote_status = Status::OK();
  const FollowerStatus status =
      AttemptSync(dir_b, replica_dir, &divergences, &promote_status);
  EXPECT_TRUE(status.diverged);
  EXPECT_EQ(status.reconnects, 0u);
  EXPECT_EQ(status.records_applied, 0u);
  EXPECT_FALSE(status.last_error.ok());
  EXPECT_NE(status.last_error.message().find("diverged:"),
            std::string::npos)
      << status.last_error;
  EXPECT_GE(divergences, 1u) << "the primary must count the refusal";
  EXPECT_FALSE(promote_status.ok())
      << "a diverged replica must refuse promotion";

  // Not one byte of the replica moved: no truncate-to-match, no
  // partial apply, no silent fork.
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(ReadFileBytes(ShardWal(replica_dir, s)), replica_before[s])
        << "shard " << s;
  }
  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
  std::filesystem::remove_all(replica_dir);
}

TEST(DivergenceTest, ReplicaAheadOfPrimaryIsRefused) {
  const std::string dir_full = "/tmp/tcdp_diverge_full";
  const std::string dir_short = "/tmp/tcdp_diverge_short";
  const std::string replica_dir = "/tmp/tcdp_diverge_ahead_replica";
  std::filesystem::remove_all(dir_short);
  std::filesystem::remove_all(replica_dir);
  RunForkedService(dir_full, 0.2);
  ReplicateFully(dir_full, replica_dir);

  // "The primary lost its acked tail": rebuild the primary's directory
  // minus the last record of every shard — byte-identical prefix, so
  // only the replica-is-ahead check can catch it.
  std::filesystem::create_directories(dir_short);
  {
    std::ofstream manifest(dir_short + "/MANIFEST", std::ios::binary);
    manifest << ReadFileBytes(dir_full + "/MANIFEST");
  }
  for (std::size_t s = 0; s < kShards; ++s) {
    auto read = server::ReadEventLog(ShardWal(dir_full, s));
    ASSERT_TRUE(read.ok()) << read.status();
    auto writer = server::EventLogWriter::Create(ShardWal(dir_short, s));
    ASSERT_TRUE(writer.ok()) << writer.status();
    for (std::size_t r = 0; r + 1 < read->records.size(); ++r) {
      ASSERT_TRUE(
          writer->Append(read->records[r].type, read->records[r].payload)
              .ok());
    }
    ASSERT_TRUE(writer->Close().ok());
  }

  std::uint64_t divergences = 0;
  Status promote_status = Status::OK();
  const FollowerStatus status =
      AttemptSync(dir_short, replica_dir, &divergences, &promote_status);
  EXPECT_TRUE(status.diverged);
  EXPECT_EQ(status.records_applied, 0u);
  EXPECT_NE(status.last_error.message().find("diverged:"),
            std::string::npos)
      << status.last_error;
  EXPECT_GE(divergences, 1u);
  EXPECT_FALSE(promote_status.ok());
  // The replica keeps its longer history intact.
  EXPECT_EQ(ReadFileBytes(ShardWal(replica_dir, 0)),
            ReadFileBytes(ShardWal(dir_full, 0)));
  std::filesystem::remove_all(dir_full);
  std::filesystem::remove_all(dir_short);
  std::filesystem::remove_all(replica_dir);
}

// ------------------------------------------------------- fake primary

/// A scripted primary: accepts replication connections, waits for the
/// kSubscribe frame, and replies with pre-baked bytes — so tests can
/// say exactly what a (buggy or malicious) primary streams.
class FakePrimary {
 public:
  static std::unique_ptr<FakePrimary> Start(
      std::vector<std::string> responses) {
    auto primary = std::unique_ptr<FakePrimary>(new FakePrimary());
    primary->responses_ = std::move(responses);
    primary->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (primary->listen_fd_ < 0) return nullptr;
    int reuse = 1;
    ::setsockopt(primary->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse,
                 sizeof(reuse));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::bind(primary->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(primary->listen_fd_, 4) != 0) {
      ::close(primary->listen_fd_);
      return nullptr;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(primary->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                  &len);
    primary->port_ = ntohs(addr.sin_port);
    primary->thread_ = std::thread([raw = primary.get()] { raw->Run(); });
    return primary;
  }

  std::uint16_t port() const { return port_; }
  std::uint64_t connections() const { return connections_.load(); }

  void Stop() {
    stop_.store(true);
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (thread_.joinable()) thread_.join();
  }

  ~FakePrimary() {
    Stop();
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

 private:
  FakePrimary() = default;

  void ServeConnection(int fd, const std::string& response) {
    timeval timeout{0, 200 * 1000};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    net::FrameDecoder decoder;
    bool have_subscribe = false;
    char buffer[4096];
    while (!stop_.load() && !have_subscribe) {
      const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
      if (n == 0) break;
      if (n < 0) continue;  // timeout: poll stop_ again
      if (!decoder.Feed(buffer, static_cast<std::size_t>(n)).ok()) break;
      while (decoder.has_frame()) {
        if (decoder.PopFrame().type == net::MsgType::kSubscribe) {
          have_subscribe = true;
        }
      }
    }
    if (have_subscribe) {
      std::string out;
      net::AppendPreamble(&out);
      out += response;
      std::size_t sent = 0;
      while (sent < out.size()) {
        const ssize_t w = ::send(fd, out.data() + sent, out.size() - sent,
                                 MSG_NOSIGNAL);
        if (w <= 0) break;
        sent += static_cast<std::size_t>(w);
      }
      // Hold the stream open until the follower reacts (hangs up) or
      // the test stops us — the follower must not need an EOF to
      // classify what it was sent.
      while (!stop_.load() && ::recv(fd, buffer, sizeof(buffer), 0) != 0) {
      }
    }
    ::close(fd);
  }

  void Run() {
    std::size_t served = 0;
    while (!stop_.load()) {
      pollfd listener{listen_fd_, POLLIN, 0};
      if (::poll(&listener, 1, 100) <= 0) continue;
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) continue;
      connections_.fetch_add(1);
      const std::string& response =
          responses_[std::min(served, responses_.size() - 1)];
      ++served;
      ServeConnection(fd, response);
    }
  }

  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::vector<std::string> responses_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> connections_{0};
};

/// A real 1-shard MANIFEST for the fake primary's kSubscribeOk.
std::string SeedManifestText() {
  const std::string dir = "/tmp/tcdp_diverge_seed";
  std::filesystem::remove_all(dir);
  server::ShardedServiceOptions options;
  options.num_shards = 1;
  auto service = server::ShardedReleaseService::Create(dir, options);
  EXPECT_TRUE(service.ok()) << service.status();
  EXPECT_TRUE((*service)->Close().ok());
  const std::string text = ReadFileBytes(dir + "/MANIFEST");
  std::filesystem::remove_all(dir);
  return text;
}

std::string SubscribeOkFrame(const std::string& manifest_text) {
  SubscribeOk ok;
  ok.num_shards = 1;
  ok.manifest_text = manifest_text;
  std::string bytes;
  net::AppendFrame(&bytes, net::MsgType::kSubscribeOk,
                   EncodeSubscribeOk(ok));
  return bytes;
}

std::string BatchFrame(std::uint64_t first_record,
                       std::uint32_t prev_chain_crc) {
  LogBatch batch;
  batch.shard = 0;
  batch.first_record = first_record;
  batch.prev_chain_crc = prev_chain_crc;
  server::EventRecord record;
  record.type = server::EventType::kAddUser;
  record.payload = "mallory";
  batch.records.push_back(record);
  std::string bytes;
  net::AppendFrame(&bytes, net::MsgType::kLogBatch, EncodeLogBatch(batch));
  return bytes;
}

TEST(DivergenceTest, MidStreamChainMismatchIsTerminal) {
  const std::string replica_dir = "/tmp/tcdp_diverge_chain_replica";
  std::filesystem::remove_all(replica_dir);
  const std::string manifest = SeedManifestText();
  // A batch whose position is right (record 0 on a fresh replica) but
  // whose chain-CRC claim is a lie: content disagreement, terminal.
  auto primary = FakePrimary::Start(
      {SubscribeOkFrame(manifest) + BatchFrame(0, 0xdeadbeef)});
  ASSERT_NE(primary, nullptr);

  FollowerOptions options;
  options.primary_port = primary->port();
  options.log_dir = replica_dir;
  options.reconnect = true;
  options.reconnect_delay_ms = 10;
  auto follower = Follower::Open(options);
  ASSERT_TRUE(follower.ok()) << follower.status();
  ASSERT_TRUE((*follower)->Start().ok());
  for (int i = 0; i < 500 && (*follower)->status().running; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const FollowerStatus status = (*follower)->status();
  EXPECT_FALSE(status.running) << "divergence must end the session loop";
  EXPECT_TRUE(status.diverged);
  EXPECT_EQ(status.reconnects, 0u)
      << "divergence must never trigger a reconnect";
  EXPECT_EQ(status.records_applied, 0u);
  EXPECT_NE(status.last_error.message().find("diverged:"),
            std::string::npos)
      << status.last_error;
  EXPECT_EQ(primary->connections(), 1u);
  // The lying batch left no trace: the bootstrapped WAL is magic-only.
  EXPECT_EQ(ReadFileBytes(ShardWal(replica_dir, 0)).size(), 8u);
  EXPECT_FALSE((*follower)->Promote().ok());
  primary->Stop();
  std::filesystem::remove_all(replica_dir);
}

TEST(DivergenceTest, OutOfSequenceBatchIsTransportErrorNotDivergence) {
  const std::string replica_dir = "/tmp/tcdp_diverge_seq_replica";
  std::filesystem::remove_all(replica_dir);
  const std::string manifest = SeedManifestText();
  // A batch starting at record 5 on a fresh replica: no content claim
  // about the replica's history, so it is a stale/buggy STREAM — the
  // follower must drop the session and try again, not latch diverged.
  auto primary = FakePrimary::Start(
      {SubscribeOkFrame(manifest) + BatchFrame(5, kChainSeed)});
  ASSERT_NE(primary, nullptr);

  FollowerOptions options;
  options.primary_port = primary->port();
  options.log_dir = replica_dir;
  options.reconnect = true;
  options.reconnect_delay_ms = 10;
  auto follower = Follower::Open(options);
  ASSERT_TRUE(follower.ok()) << follower.status();
  ASSERT_TRUE((*follower)->Start().ok());
  for (int i = 0; i < 500 && primary->connections() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(primary->connections(), 3u)
      << "a transport-classified fault must keep reconnecting";
  (*follower)->Stop();
  const FollowerStatus status = (*follower)->status();
  EXPECT_FALSE(status.diverged);
  EXPECT_GE(status.reconnects, 2u);
  EXPECT_EQ(status.records_applied, 0u);
  primary->Stop();
  std::filesystem::remove_all(replica_dir);
}

}  // namespace
}  // namespace replication
}  // namespace tcdp
