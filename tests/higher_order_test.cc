// Unit tests for markov/higher_order: k-th order chains, the first-order
// embedding, and estimation — the Section III-D extension.

#include "markov/higher_order.h"

#include <gtest/gtest.h>

#include "core/privacy_loss.h"
#include "core/tpl_accountant.h"
#include "linalg/matrix.h"
#include "markov/estimation.h"

namespace tcdp {
namespace {

// Order-2 chain over {0,1}: next value = XOR of the last two w.p. 0.9.
HigherOrderChain XorishChain() {
  Matrix table(4, 2);
  // histories: 00 01 10 11 (oldest first); xor: 0 1 1 0.
  const double p = 0.9;
  table.SetRow(0, {p, 1 - p});
  table.SetRow(1, {1 - p, p});
  table.SetRow(2, {1 - p, p});
  table.SetRow(3, {p, 1 - p});
  auto chain = HigherOrderChain::Create(2, 2, std::move(table));
  EXPECT_TRUE(chain.ok());
  return std::move(chain).value();
}

TEST(PowChecked, ComputesAndGuards) {
  auto ok = PowChecked(3, 4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 81u);
  EXPECT_FALSE(PowChecked(10, 10).ok());  // 1e10 > default limit
  auto one = PowChecked(5, 0);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(*one, 1u);
}

TEST(HigherOrderChain, CreateValidatesShape) {
  EXPECT_FALSE(HigherOrderChain::Create(2, 2, Matrix(3, 2, 0.5)).ok());
  EXPECT_FALSE(HigherOrderChain::Create(2, 2, Matrix(4, 3, 1.0 / 3)).ok());
  EXPECT_FALSE(HigherOrderChain::Create(1, 2, Matrix(1, 1, 1.0)).ok());
  EXPECT_FALSE(HigherOrderChain::Create(2, 0, Matrix(1, 2, 0.5)).ok());
  // Non-stochastic row.
  Matrix bad(4, 2, 0.3);
  EXPECT_FALSE(HigherOrderChain::Create(2, 2, std::move(bad)).ok());
}

TEST(HigherOrderChain, EncodeDecodeRoundTrip) {
  auto chain = XorishChain();
  for (std::size_t code = 0; code < 4; ++code) {
    auto history = chain.DecodeHistory(code);
    auto back = chain.EncodeHistory(history);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, code);
  }
  EXPECT_EQ(chain.DecodeHistory(2), (std::vector<std::size_t>{1, 0}));
}

TEST(HigherOrderChain, EncodeValidates) {
  auto chain = XorishChain();
  EXPECT_FALSE(chain.EncodeHistory({0}).ok());        // wrong window size
  EXPECT_FALSE(chain.EncodeHistory({0, 5}).ok());     // bad value
}

TEST(HigherOrderChain, TransitionProbabilityLookups) {
  auto chain = XorishChain();
  auto p = chain.TransitionProbability({0, 1}, 1);  // xor = 1
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 0.9);
  EXPECT_FALSE(chain.TransitionProbability({0, 1}, 9).ok());
}

TEST(HigherOrderChain, EmbeddingIsStochasticAndShiftsWindows) {
  auto chain = XorishChain();
  auto embedded = chain.EmbedAsFirstOrder();
  EXPECT_EQ(embedded.size(), 4u);
  // From history 01 (code 1), emitting value v moves to history (1, v):
  // code 2 for v=0, code 3 for v=1.
  EXPECT_DOUBLE_EQ(embedded.At(1, 2), 0.1);
  EXPECT_DOUBLE_EQ(embedded.At(1, 3), 0.9);
  // Unreachable codes from 01 are zero.
  EXPECT_DOUBLE_EQ(embedded.At(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(embedded.At(1, 1), 0.0);
}

TEST(HigherOrderChain, EmbeddedLossFeedsPaperMachinery) {
  // The whole point of the embedding: Algorithm 1 + the accountant work
  // on the embedded matrix unchanged.
  auto chain = XorishChain();
  TemporalLossFunction loss(chain.EmbedAsFirstOrder());
  const double l1 = loss.Evaluate(1.0);
  EXPECT_GT(l1, 0.0);
  EXPECT_LE(l1, 1.0 + 1e-12);

  TplAccountant acc(
      TemporalCorrelations::BackwardOnly(chain.EmbedAsFirstOrder()));
  ASSERT_TRUE(acc.RecordUniformReleases(0.2, 6).ok());
  EXPECT_GT(acc.MaxTpl(), 0.2);  // correlations compound
}

TEST(HigherOrderChain, SimulateRespectsDynamics) {
  Rng rng(99);
  auto chain = XorishChain();
  auto traj = chain.Simulate(5000, &rng);
  ASSERT_EQ(traj.size(), 5000u);
  // Count how often the next value equals xor of the previous two.
  std::size_t match = 0, total = 0;
  for (std::size_t t = 2; t < traj.size(); ++t) {
    ++total;
    if (traj[t] == (traj[t - 1] ^ traj[t - 2])) ++match;
  }
  EXPECT_NEAR(static_cast<double>(match) / static_cast<double>(total), 0.9,
              0.02);
}

TEST(HigherOrderChain, EstimateRecoversTable) {
  Rng rng(100);
  auto truth = XorishChain();
  std::vector<Trajectory> trajs;
  for (int i = 0; i < 60; ++i) trajs.push_back(truth.Simulate(400, &rng));
  auto est = HigherOrderChain::Estimate(trajs, 2, 2);
  ASSERT_TRUE(est.ok());
  EXPECT_LT(est->table().MaxAbsDiff(truth.table()), 0.03);
}

TEST(HigherOrderChain, EstimateValidates) {
  EXPECT_FALSE(HigherOrderChain::Estimate({{0, 1}}, 2, 2).ok());  // too short
  EXPECT_FALSE(HigherOrderChain::Estimate({{0, 1, 5}}, 2, 2).ok());
  EXPECT_FALSE(HigherOrderChain::Estimate({{0, 1, 0}}, 2, 2, -1.0).ok());
  // Smoothing rescues the no-window case.
  EXPECT_TRUE(HigherOrderChain::Estimate({{0, 1}}, 2, 2, 0.5).ok());
}

TEST(HigherOrderChain, SecondOrderBeatsFirstOrderOnXorData) {
  // The XOR process has NO first-order signal: Pr(next | current) is
  // 50/50. An order-2 model captures it; the embedded TPL reflects the
  // stronger adversary.
  Rng rng(101);
  auto truth = XorishChain();
  std::vector<Trajectory> trajs;
  for (int i = 0; i < 60; ++i) trajs.push_back(truth.Simulate(300, &rng));

  auto first = EstimateForwardTransition(trajs, 2);
  ASSERT_TRUE(first.ok());
  TemporalLossFunction first_loss(*first);
  auto second = HigherOrderChain::Estimate(trajs, 2, 2);
  ASSERT_TRUE(second.ok());
  TemporalLossFunction second_loss(second->EmbedAsFirstOrder());

  // First-order sees an almost uniform matrix -> tiny loss increment.
  EXPECT_LT(first_loss.Evaluate(1.0), 0.05);
  // Second-order sees the deterministic-ish structure -> large increment.
  EXPECT_GT(second_loss.Evaluate(1.0), 0.5);
}

}  // namespace
}  // namespace tcdp
