// Unit tests for lp/linear_fractional (Charnes-Cooper) and lp/dinkelbach:
// both generic LFP routes must agree on hand-solvable fractional programs.

#include <cmath>

#include <gtest/gtest.h>

#include "lp/dinkelbach.h"
#include "lp/linear_fractional.h"

namespace tcdp {
namespace {

LinearConstraint Le(std::vector<double> coeffs, double rhs) {
  return LinearConstraint{std::move(coeffs), Relation::kLessEqual, rhs};
}

// max (2x + y) / (x + y) on the box 1 <= x <= 2, 1 <= y <= 2.
// The ratio increases with x and decreases with y -> optimum at (2, 1),
// value 5/3.
LinearFractionalProgram BoxInstance() {
  LinearFractionalProgram lfp;
  lfp.numerator = {2.0, 1.0};
  lfp.denominator = {1.0, 1.0};
  lfp.constraints = {Le({1, 0}, 2), Le({0, 1}, 2), Le({-1, 0}, -1),
                     Le({0, -1}, -1)};
  return lfp;
}

TEST(CharnesCooper, SolvesBoxInstance) {
  auto sol = SolveLfpByCharnesCooper(BoxInstance());
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol->objective_value, 5.0 / 3.0, 1e-9);
  EXPECT_NEAR(sol->x[0], 2.0, 1e-8);
  EXPECT_NEAR(sol->x[1], 1.0, 1e-8);
}

TEST(Dinkelbach, SolvesBoxInstance) {
  auto sol = SolveLfpByDinkelbach(BoxInstance());
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol->objective_value, 5.0 / 3.0, 1e-9);
}

TEST(BothRoutes, AgreeOnConstantRatio) {
  // Numerator = denominator -> ratio identically 1.
  LinearFractionalProgram lfp;
  lfp.numerator = {1.0, 1.0};
  lfp.denominator = {1.0, 1.0};
  lfp.constraints = {Le({1, 1}, 4), Le({-1, -1}, -1)};
  auto cc = SolveLfpByCharnesCooper(lfp);
  auto dk = SolveLfpByDinkelbach(lfp);
  ASSERT_TRUE(cc.ok());
  ASSERT_TRUE(dk.ok());
  EXPECT_NEAR(cc->objective_value, 1.0, 1e-9);
  EXPECT_NEAR(dk->objective_value, 1.0, 1e-9);
}

TEST(BothRoutes, AgreeWithAffineTerms) {
  // max (x + 1) / (2x + 1), x in [0, 3]: decreasing in x -> optimum x=0,
  // value 1.
  LinearFractionalProgram lfp;
  lfp.numerator = {1.0};
  lfp.numerator_const = 1.0;
  lfp.denominator = {2.0};
  lfp.denominator_const = 1.0;
  lfp.constraints = {Le({1}, 3)};
  auto cc = SolveLfpByCharnesCooper(lfp);
  auto dk = SolveLfpByDinkelbach(lfp);
  ASSERT_TRUE(cc.ok());
  ASSERT_TRUE(dk.ok());
  EXPECT_NEAR(cc->objective_value, 1.0, 1e-9);
  EXPECT_NEAR(dk->objective_value, 1.0, 1e-9);
}

TEST(BothRoutes, AgreeOnIncreasingAffineInstance) {
  // max (3x + 2) / (x + 4), x in [0, 5]: increasing -> x=5, value 17/9.
  LinearFractionalProgram lfp;
  lfp.numerator = {3.0};
  lfp.numerator_const = 2.0;
  lfp.denominator = {1.0};
  lfp.denominator_const = 4.0;
  lfp.constraints = {Le({1}, 5)};
  auto cc = SolveLfpByCharnesCooper(lfp);
  auto dk = SolveLfpByDinkelbach(lfp);
  ASSERT_TRUE(cc.ok());
  ASSERT_TRUE(dk.ok());
  EXPECT_NEAR(cc->objective_value, 17.0 / 9.0, 1e-9);
  EXPECT_NEAR(dk->objective_value, 17.0 / 9.0, 1e-9);
}

TEST(CharnesCooper, RejectsArityMismatch) {
  LinearFractionalProgram lfp;
  lfp.numerator = {1.0, 2.0};
  lfp.denominator = {1.0};
  EXPECT_FALSE(SolveLfpByCharnesCooper(lfp).ok());
}

TEST(CharnesCooper, ReportsInfeasible) {
  LinearFractionalProgram lfp;
  lfp.numerator = {1.0};
  lfp.denominator = {1.0};
  lfp.constraints = {Le({1}, 1), Le({-1}, -3)};  // x <= 1 and x >= 3
  auto sol = SolveLfpByCharnesCooper(lfp);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->status, SolveStatus::kInfeasible);
}

TEST(Dinkelbach, ReportsInfeasible) {
  LinearFractionalProgram lfp;
  lfp.numerator = {1.0};
  lfp.denominator = {1.0};
  lfp.constraints = {Le({1}, 1), Le({-1}, -3)};
  auto sol = SolveLfpByDinkelbach(lfp);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->status, SolveStatus::kInfeasible);
}

TEST(Dinkelbach, CountsTotalPivots) {
  auto sol = SolveLfpByDinkelbach(BoxInstance());
  ASSERT_TRUE(sol.ok());
  EXPECT_GT(sol->iterations, 0u);
}

}  // namespace
}  // namespace tcdp
