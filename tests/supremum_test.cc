// Unit tests for core/supremum: Theorem 5's four cases, pinned to the
// paper's Figure 4 values, plus the fixpoint cross-check and the budget
// inverse used by Algorithms 2/3.

#include "core/supremum.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "markov/stochastic_matrix.h"

namespace tcdp {
namespace {

TEST(SupremumForPair, ValidatesInput) {
  EXPECT_FALSE(SupremumForPair(0.5, 0.1, 0.0).ok());
  EXPECT_FALSE(SupremumForPair(0.5, 0.1, -1.0).ok());
  EXPECT_FALSE(SupremumForPair(1.5, 0.1, 0.5).ok());
  EXPECT_FALSE(SupremumForPair(0.5, -0.1, 0.5).ok());
}

TEST(SupremumForPair, NoCorrelationGivesEpsilon) {
  auto r = SupremumForPair(0.0, 0.0, 0.3);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->exists);
  EXPECT_DOUBLE_EQ(r->value, 0.3);
}

// Paper Figure 4(c)-equivalent: q=0.8, d=0.1, eps=0.23 -> sup ~ 0.792
// (the plateau at ~0.8 in the figure). Certify via the fixpoint
// identity rather than a hand-rounded constant.
TEST(SupremumForPair, PaperFigure4CaseDNonZero) {
  auto r = SupremumForPair(0.8, 0.1, 0.23);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->exists);
  EXPECT_NEAR(r->value, 0.792, 1e-3);
  const double a = r->value;
  EXPECT_NEAR(a,
              std::log((0.8 * std::expm1(a) + 1.0) /
                       (0.1 * std::expm1(a) + 1.0)) +
                  0.23,
              1e-10);
}

// Paper Figure 4(d)-equivalent: q=0.8, d=0, eps=0.15 < ln(1/0.8) ->
// sup = ln((1-q)e^eps / (1 - q e^eps)) ~ 1.1922 (the figure's ~1.2
// plateau).
TEST(SupremumForPair, PaperFigure4CaseDZeroFinite) {
  auto r = SupremumForPair(0.8, 0.0, 0.15);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->exists);
  const double direct = std::log(0.2 * std::exp(0.15) /
                                 (1.0 - 0.8 * std::exp(0.15)));
  EXPECT_NEAR(r->value, direct, 1e-12);
  EXPECT_NEAR(r->value, 1.19224, 1e-4);
}

// Paper Figure 4(b)-equivalent: q=0.8, d=0, eps=0.23 > ln(1/0.8)=0.2231
// -> no supremum.
TEST(SupremumForPair, PaperFigure4CaseDZeroInfinite) {
  auto r = SupremumForPair(0.8, 0.0, 0.23);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->exists);
  EXPECT_EQ(r->value, kInf);
}

// Paper Figure 4(a)-equivalent: q=1, d=0 (strongest correlation) ->
// BPL grows linearly, no supremum for any eps.
TEST(SupremumForPair, StrongestCorrelationNeverBounded) {
  for (double eps : {0.01, 0.23, 5.0}) {
    auto r = SupremumForPair(1.0, 0.0, eps);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->exists) << "eps=" << eps;
  }
}

TEST(SupremumForPair, BoundaryEpsilonEqualsLogOneOverQ) {
  // At eps = ln(1/q) the closed form blows up; we treat it as
  // non-existent (strict inequality; see DESIGN.md deviations).
  const double q = 0.8;
  auto r = SupremumForPair(q, 0.0, std::log(1.0 / q));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->exists);
}

TEST(SupremumForPair, SupremumIsFixpointOfRecurrence) {
  // alpha* must satisfy alpha = log((q(e^alpha - 1)+1)/(d(e^alpha - 1)+1))
  // + eps.
  const double q = 0.7, d = 0.2, eps = 0.4;
  auto r = SupremumForPair(q, d, eps);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->exists);
  const double a = r->value;
  const double lhs = a;
  const double rhs =
      std::log((q * std::expm1(a) + 1.0) / (d * std::expm1(a) + 1.0)) + eps;
  EXPECT_NEAR(lhs, rhs, 1e-9);
}

TEST(SupremumForPair, MonotoneInEpsilon) {
  double prev = 0.0;
  for (double eps : {0.05, 0.1, 0.2, 0.4}) {
    auto r = SupremumForPair(0.6, 0.2, eps);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->exists);
    EXPECT_GT(r->value, prev);
    prev = r->value;
  }
}

TEST(SupremumForPair, LargeEpsilonAsymptoticBranch) {
  // eps > 500 triggers the overflow-safe branch: sup ~ eps + log(q/d).
  auto r = SupremumForPair(0.5, 0.25, 600.0);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->exists);
  EXPECT_NEAR(r->value, 600.0 + std::log(2.0), 1e-6);
}

// --- Full-matrix supremum via fixpoint ---------------------------------

TEST(ComputeSupremum, Figure3MatrixEpsilonPointOne) {
  // P = (0.8 0.2; 0 1), eps = 0.1 < ln(1.25): sup = ln(0.2 e^0.1 /
  // (1 - 0.8 e^0.1)) ~ 0.64598.
  TemporalLossFunction loss(
      StochasticMatrix::FromRows({{0.8, 0.2}, {0.0, 1.0}}));
  auto r = ComputeSupremum(loss, 0.1);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->exists);
  EXPECT_NEAR(r->value, std::log(0.2 * std::exp(0.1) /
                                 (1.0 - 0.8 * std::exp(0.1))),
              1e-8);
}

TEST(ComputeSupremum, Figure3MatrixLargeEpsilonDiverges) {
  TemporalLossFunction loss(
      StochasticMatrix::FromRows({{0.8, 0.2}, {0.0, 1.0}}));
  auto r = ComputeSupremum(loss, 0.23);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->exists);
}

TEST(ComputeSupremum, IdentityMatrixDiverges) {
  TemporalLossFunction loss(StochasticMatrix::Identity(2));
  auto r = ComputeSupremum(loss, 0.1);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->exists);
}

TEST(ComputeSupremum, UniformMatrixGivesEpsilon) {
  TemporalLossFunction loss(StochasticMatrix::Uniform(3));
  auto r = ComputeSupremum(loss, 0.7);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->exists);
  EXPECT_NEAR(r->value, 0.7, 1e-9);
}

TEST(ComputeSupremum, AgreesWithFixpointIteration) {
  TemporalLossFunction loss(StochasticMatrix::FromRows(
      {{0.7, 0.2, 0.1}, {0.15, 0.7, 0.15}, {0.1, 0.3, 0.6}}));
  const double eps = 0.3;
  auto closed = ComputeSupremum(loss, eps);
  ASSERT_TRUE(closed.ok());
  ASSERT_TRUE(closed->exists);
  auto fix = IterateLeakageToFixpoint(loss, eps);
  ASSERT_TRUE(fix.converged);
  EXPECT_NEAR(closed->value, fix.value, 1e-7);
}

TEST(IterateLeakageToFixpoint, MonotoneNonDecreasingIterates) {
  TemporalLossFunction loss(
      StochasticMatrix::FromRows({{0.9, 0.1}, {0.2, 0.8}}));
  // Manual iteration mirrors the helper; each iterate must grow.
  double alpha = 0.2;
  for (int i = 0; i < 50; ++i) {
    const double next = loss.Evaluate(alpha) + 0.2;
    EXPECT_GE(next, alpha - 1e-12);
    alpha = next;
  }
}

// --- Budget inverse -----------------------------------------------------

TEST(EpsilonForSupremum, InvertsComputeSupremum) {
  TemporalLossFunction loss(
      StochasticMatrix::FromRows({{0.9, 0.1}, {0.2, 0.8}}));
  const double target_alpha = 1.0;
  auto eps = EpsilonForSupremum(loss, target_alpha);
  ASSERT_TRUE(eps.ok());
  EXPECT_GT(*eps, 0.0);
  auto sup = ComputeSupremum(loss, *eps);
  ASSERT_TRUE(sup.ok());
  ASSERT_TRUE(sup->exists);
  EXPECT_NEAR(sup->value, target_alpha, 1e-6);
}

TEST(EpsilonForSupremum, FailsOnStrongestCorrelation) {
  TemporalLossFunction loss(StochasticMatrix::Identity(2));
  auto eps = EpsilonForSupremum(loss, 1.0);
  EXPECT_FALSE(eps.ok());
  EXPECT_EQ(eps.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EpsilonForSupremum, ValidatesAlpha) {
  TemporalLossFunction loss(StochasticMatrix::Uniform(2));
  EXPECT_FALSE(EpsilonForSupremum(loss, 0.0).ok());
  EXPECT_FALSE(EpsilonForSupremum(loss, -2.0).ok());
}

TEST(EpsilonForSupremum, NoCorrelationReturnsAlphaItself) {
  TemporalLossFunction loss(StochasticMatrix::Uniform(4));
  auto eps = EpsilonForSupremum(loss, 0.8);
  ASSERT_TRUE(eps.ok());
  EXPECT_DOUBLE_EQ(*eps, 0.8);
}

}  // namespace
}  // namespace tcdp
