// Unit tests for markov/smoothing: the Section VI / Equation 25
// correlation generator.

#include "markov/smoothing.h"

#include <cmath>

#include <gtest/gtest.h>

namespace tcdp {
namespace {

TEST(LaplacianSmooth, RejectsNegativeS) {
  EXPECT_FALSE(LaplacianSmooth(StochasticMatrix::Uniform(3), -0.1).ok());
}

TEST(LaplacianSmooth, ZeroSIsIdentityOperation) {
  auto m = StochasticMatrix::FromRows({{0.8, 0.2}, {0.3, 0.7}});
  auto out = LaplacianSmooth(m, 0.0);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->ApproxEquals(m));
}

TEST(LaplacianSmooth, MatchesEquation25) {
  // p_hat(j,k) = (p(j,k) + s) / (1 + n s) for row sums of 1.
  auto m = StochasticMatrix::FromRows({{1.0, 0.0}, {0.0, 1.0}});
  const double s = 0.25;
  auto out = LaplacianSmooth(m, s);
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out->At(0, 0), 1.25 / 1.5, 1e-12);
  EXPECT_NEAR(out->At(0, 1), 0.25 / 1.5, 1e-12);
}

TEST(LaplacianSmooth, LargeSApproachesUniform) {
  auto m = StrongestCorrelationMatrix(4);
  auto out = LaplacianSmooth(m, 1e6);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->ApproxEquals(StochasticMatrix::Uniform(4), 1e-5));
}

TEST(LaplacianSmooth, PreservesStochasticity) {
  auto out = LaplacianSmooth(StrongestCorrelationMatrix(7), 0.005);
  ASSERT_TRUE(out.ok());
  for (std::size_t r = 0; r < 7; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 7; ++c) sum += out->At(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(StrongestCorrelationMatrix, IsCyclicShift) {
  auto m = StrongestCorrelationMatrix(4);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(m.At(i, (i + 1) % 4), 1.0);
  }
}

TEST(StrongestCorrelationMatrix, RowsHaveDistinctColumns) {
  // The paper requires the 1.0 cells in different columns per row.
  auto m = StrongestCorrelationMatrix(6);
  std::vector<bool> used(6, false);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      if (m.At(i, j) == 1.0) {
        EXPECT_FALSE(used[j]);
        used[j] = true;
      }
    }
  }
}

TEST(RandomStrongestCorrelationMatrix, IsPermutation) {
  Rng rng(9);
  auto m = RandomStrongestCorrelationMatrix(5, &rng);
  for (std::size_t r = 0; r < 5; ++r) {
    double sum = 0.0;
    double max = 0.0;
    for (std::size_t c = 0; c < 5; ++c) {
      sum += m.At(r, c);
      max = std::max(max, m.At(r, c));
    }
    EXPECT_DOUBLE_EQ(sum, 1.0);
    EXPECT_DOUBLE_EQ(max, 1.0);
  }
}

TEST(SmoothedCorrelationMatrix, SmallerSMeansStrongerCorrelation) {
  auto strong = SmoothedCorrelationMatrix(10, 0.001);
  auto weak = SmoothedCorrelationMatrix(10, 1.0);
  ASSERT_TRUE(strong.ok());
  ASSERT_TRUE(weak.ok());
  EXPECT_GT(CorrelationDegree(*strong), CorrelationDegree(*weak));
}

TEST(CorrelationDegree, EndpointsAreZeroAndOne) {
  EXPECT_DOUBLE_EQ(CorrelationDegree(StochasticMatrix::Uniform(5)), 0.0);
  EXPECT_DOUBLE_EQ(CorrelationDegree(StrongestCorrelationMatrix(5)), 1.0);
}

TEST(CorrelationDegree, MonotoneInS) {
  double prev = 2.0;
  for (double s : {0.0, 0.01, 0.1, 1.0, 10.0}) {
    auto m = SmoothedCorrelationMatrix(6, s);
    ASSERT_TRUE(m.ok());
    const double deg = CorrelationDegree(*m);
    EXPECT_LT(deg, prev);
    prev = deg;
  }
}

}  // namespace
}  // namespace tcdp
