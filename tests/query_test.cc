// Unit tests for dp/query: count and histogram queries with their
// sensitivities.

#include "dp/query.h"

#include <gtest/gtest.h>

namespace tcdp {
namespace {

Database MakeDb() {
  auto db = Database::Create({0, 0, 2, 1}, 3);
  EXPECT_TRUE(db.ok());
  return std::move(db).value();
}

TEST(CountQuery, CountsTarget) {
  Database db = MakeDb();
  EXPECT_EQ(CountQuery(0).Evaluate(db), (std::vector<double>{2}));
  EXPECT_EQ(CountQuery(1).Evaluate(db), (std::vector<double>{1}));
  EXPECT_EQ(CountQuery(2).Evaluate(db), (std::vector<double>{1}));
}

TEST(CountQuery, SensitivityIsOne) {
  EXPECT_DOUBLE_EQ(CountQuery(0).Sensitivity(), 1.0);
  EXPECT_EQ(CountQuery(0).OutputSize(10), 1u);
}

TEST(CountQuery, SensitivityBoundHoldsOnNeighbors) {
  Database db = MakeDb();
  CountQuery query(0);
  const double base = query.Evaluate(db)[0];
  for (std::size_t u = 0; u < db.num_users(); ++u) {
    for (std::size_t v = 0; v < db.domain_size(); ++v) {
      auto n = db.WithValue(u, v);
      ASSERT_TRUE(n.ok());
      EXPECT_LE(std::abs(query.Evaluate(*n)[0] - base),
                query.Sensitivity());
    }
  }
}

TEST(CountQuery, NameIsDescriptive) {
  EXPECT_EQ(CountQuery(0).name(), "count(loc1)");
  EXPECT_EQ(CountQuery(4).name(), "count(loc5)");
}

TEST(HistogramQuery, EvaluatesFullHistogram) {
  Database db = MakeDb();
  EXPECT_EQ(HistogramQuery().Evaluate(db), (std::vector<double>{2, 1, 1}));
  EXPECT_EQ(HistogramQuery().OutputSize(3), 3u);
}

TEST(HistogramQuery, SensitivityConventions) {
  EXPECT_DOUBLE_EQ(
      HistogramQuery(HistogramSensitivity::kPerCount).Sensitivity(), 1.0);
  EXPECT_DOUBLE_EQ(
      HistogramQuery(HistogramSensitivity::kStrictL1).Sensitivity(), 2.0);
}

TEST(HistogramQuery, StrictL1BoundHoldsOnNeighbors) {
  Database db = MakeDb();
  HistogramQuery query(HistogramSensitivity::kStrictL1);
  const auto base = query.Evaluate(db);
  for (std::size_t u = 0; u < db.num_users(); ++u) {
    for (std::size_t v = 0; v < db.domain_size(); ++v) {
      auto n = db.WithValue(u, v);
      ASSERT_TRUE(n.ok());
      const auto h = query.Evaluate(*n);
      double l1 = 0.0;
      for (std::size_t b = 0; b < h.size(); ++b) {
        l1 += std::abs(h[b] - base[b]);
      }
      EXPECT_LE(l1, query.Sensitivity());
    }
  }
}

TEST(Query, PolymorphicUseThroughBasePointer) {
  std::unique_ptr<Query> q = std::make_unique<CountQuery>(2);
  Database db = MakeDb();
  EXPECT_EQ(q->Evaluate(db)[0], 1.0);
}

}  // namespace
}  // namespace tcdp
