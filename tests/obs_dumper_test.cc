// MetricsDumper coverage (ISSUE 9 satellite): atomic rotation under
// concurrent registry load, the guaranteed final exit-path dump, and
// the process self-metrics flowing through all three export surfaces
// (binary snapshot codec, JSON, Prometheus text).

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/dumper.h"
#include "obs/metrics.h"
#include "obs/process_metrics.h"
#include "obs/watchdog.h"

namespace tcdp {
namespace obs {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("tcdp-dumper-" + name + "-" + std::to_string(::getpid())))
      .string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

TEST(WriteFileAtomic, PublishesWholeFilesOnly) {
  const std::string path = TempPath("atomic.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "first").ok());
  EXPECT_EQ(ReadFile(path), "first");
  ASSERT_TRUE(WriteFileAtomic(path, "second-longer-content").ok());
  EXPECT_EQ(ReadFile(path), "second-longer-content");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST(MetricsDumper, RotationUnderLoadNeverExposesAPartialFile) {
  SetMetricsEnabled(true);
  const std::string json_path = TempPath("load.json");
  const std::string prom_path = TempPath("load.prom");
  Counter* counter =
      Registry::Default().GetCounter("tcdp_dumper_test_load_total");
  std::atomic<bool> stop{false};
  std::thread load([&] {
    while (!stop.load()) counter->Increment();
  });
  {
    MetricsDumper dumper(json_path, prom_path, /*interval_ms=*/1);
    // Every observed JSON file must be a complete document: the
    // tmp+rename publication means a reader never sees a torn write
    // even while the dumper rewrites it every millisecond.
    int observed = 0;
    for (int i = 0; i < 200; ++i) {
      const std::string json = ReadFile(json_path);
      if (json.empty()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      ++observed;
      EXPECT_EQ(json.front(), '{') << json.substr(0, 40);
      const auto end = json.find_last_not_of(" \n\t");
      ASSERT_NE(end, std::string::npos);
      EXPECT_EQ(json[end], '}');
    }
    EXPECT_GT(observed, 0);
    EXPECT_GT(dumper.dumps(), 0u);
  }
  stop.store(true);
  load.join();
  std::filesystem::remove(json_path);
  std::filesystem::remove(prom_path);
}

TEST(MetricsDumper, RegistersAPeriodicHeartbeatWhileRunning) {
  const std::size_t before = HeartbeatRegistry::Default().size();
  {
    MetricsDumper dumper(TempPath("hb.json"), "", /*interval_ms=*/10);
    bool seen = false;
    for (const auto& sample : HeartbeatRegistry::Default().SampleAll()) {
      if (sample.name == "metrics-dumper") {
        EXPECT_EQ(sample.kind, HeartbeatKind::kPeriodic);
        EXPECT_EQ(sample.expected_period_ns, 10ull * 1000000ull);
        seen = true;
      }
    }
    EXPECT_TRUE(seen);
  }
  EXPECT_EQ(HeartbeatRegistry::Default().size(), before);
  std::filesystem::remove(TempPath("hb.json"));
}

TEST(MetricsDumper, FinalDumpAlwaysLandsOnTheExitPath) {
  SetMetricsEnabled(true);
  const std::string json_path = TempPath("final.json");
  const std::string prom_path = TempPath("final.prom");
  std::filesystem::remove(json_path);
  std::filesystem::remove(prom_path);
  Counter* counter =
      Registry::Default().GetCounter("tcdp_dumper_test_final_total");
  {
    // interval 0: no background thread at all — the destructor is the
    // only writer, and it must still leave both files behind.
    MetricsDumper dumper(json_path, prom_path, /*interval_ms=*/0);
    counter->Increment();
  }
  const std::string json = ReadFile(json_path);
  const std::string prom = ReadFile(prom_path);
  ASSERT_FALSE(json.empty());
  ASSERT_FALSE(prom.empty());
  EXPECT_NE(json.find("tcdp_dumper_test_final_total"), std::string::npos);
  EXPECT_NE(prom.find("tcdp_dumper_test_final_total"), std::string::npos);
  std::filesystem::remove(json_path);
  std::filesystem::remove(prom_path);
}

TEST(MetricsDumper, InactivePathsSpawnNothingAndDumpNothing) {
  const std::size_t before = HeartbeatRegistry::Default().size();
  { MetricsDumper dumper("", "", /*interval_ms=*/5); }
  EXPECT_EQ(HeartbeatRegistry::Default().size(), before);
}

TEST(ProcessMetrics, ExportedThroughAllThreeSurfaces) {
  SetMetricsEnabled(true);
  UpdateProcessMetrics();
  const MetricsSnapshot snapshot = Registry::Default().Snapshot();
  bool uptime = false;
  for (const auto& [name, value] : snapshot.gauges) {
    if (name == "tcdp_process_uptime_seconds") uptime = true;
#if defined(__linux__)
    if (name == "tcdp_process_rss_bytes") EXPECT_GT(value, 0);
    if (name == "tcdp_process_open_fds") EXPECT_GT(value, 0);
#endif
  }
  EXPECT_TRUE(uptime);

  // Surface 2: the binary snapshot codec round-trips the gauges.
  auto decoded = DecodeMetricsSnapshot(EncodeMetricsSnapshot(snapshot));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->gauges, snapshot.gauges);

  // Surfaces 1 and 3: JSON and Prometheus text.
  EXPECT_NE(MetricsJson(snapshot).find("tcdp_process_uptime_seconds"),
            std::string::npos);
  EXPECT_NE(
      MetricsPrometheusText(snapshot).find("tcdp_process_uptime_seconds"),
      std::string::npos);
#if defined(__linux__)
  EXPECT_NE(MetricsJson(snapshot).find("tcdp_process_rss_bytes"),
            std::string::npos);
#endif
}

}  // namespace
}  // namespace obs
}  // namespace tcdp
