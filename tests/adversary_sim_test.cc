// Unit tests for core/adversary_sim: the operational Bayesian adversary
// and the Monte-Carlo validation that realized leakage never exceeds the
// analytic BPL bound.

#include "core/adversary_sim.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/tpl_accountant.h"
#include "dp/laplace.h"

namespace tcdp {
namespace {

TEST(HistogramLogDensities, ValidatesInput) {
  EXPECT_FALSE(HistogramLogDensities({1.0}, {1.0, 2.0}, 1.0).ok());
  EXPECT_FALSE(HistogramLogDensities({1.0}, {1.0}, 0.0).ok());
}

TEST(HistogramLogDensities, PrefersBinNearNoisyValue) {
  // Others' histogram is flat zero; the release shows bin 1 elevated by
  // ~1 -> the target most plausibly sits in bin 1.
  auto d = HistogramLogDensities({0.0, 1.0, 0.0}, {0.0, 0.0, 0.0}, 1.0);
  ASSERT_TRUE(d.ok());
  EXPECT_GT((*d)[1], (*d)[0]);
  EXPECT_GT((*d)[1], (*d)[2]);
}

TEST(HistogramLogDensities, MatchesDirectDensityComputation) {
  const std::vector<double> noisy = {1.3, -0.2};
  const std::vector<double> others = {1.0, 0.0};
  const double eps = 0.5;
  auto d = HistogramLogDensities(noisy, others, eps);
  ASSERT_TRUE(d.ok());
  const double scale = 1.0 / eps;
  // v = 0: target in bin 0.
  const double direct0 =
      std::log(LaplaceMechanism::Pdf(noisy[0] - others[0] - 1.0, scale)) +
      std::log(LaplaceMechanism::Pdf(noisy[1] - others[1], scale));
  EXPECT_NEAR((*d)[0], direct0, 1e-12);
  // v = 1: target in bin 1.
  const double direct1 =
      std::log(LaplaceMechanism::Pdf(noisy[0] - others[0], scale)) +
      std::log(LaplaceMechanism::Pdf(noisy[1] - others[1] - 1.0, scale));
  EXPECT_NEAR((*d)[1], direct1, 1e-12);
}

TEST(HistogramLogDensities, SingleObservationLeakageBounded) {
  // For one release, the log-density gap between any two candidate
  // values is at most 2 * eps... no: each value shifts exactly one bin by
  // sensitivity 1, and the Laplace log-density Lipschitz bound gives
  // |log p(r|v) - log p(r|v')| <= 2 * eps/sensitivity * 1 / 2... verify
  // empirically <= 2*eps (two bins differ by 1 each).
  Rng rng(70);
  const double eps = 0.8;
  double max_gap = 0.0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<double> noisy = {rng.Laplace(1.0 / eps) + 1.0,
                                 rng.Laplace(1.0 / eps)};
    auto d = HistogramLogDensities(noisy, {0.0, 0.0}, eps);
    ASSERT_TRUE(d.ok());
    max_gap = std::max(max_gap, std::fabs((*d)[0] - (*d)[1]));
  }
  EXPECT_LE(max_gap, 2 * eps + 1e-9);
}

TEST(BayesianAdversary, ObserveValidatesSize) {
  BayesianAdversary adv(StochasticMatrix::Uniform(3));
  EXPECT_FALSE(adv.Observe({0.0, 0.0}).ok());
}

TEST(BayesianAdversary, FirstObservationSetsLikelihoods) {
  BayesianAdversary adv(StochasticMatrix::Uniform(2));
  ASSERT_TRUE(adv.Observe({-1.0, -2.0}).ok());
  EXPECT_EQ(adv.num_observations(), 1u);
  EXPECT_NEAR(adv.RealizedLeakage(), 1.0, 1e-12);
}

TEST(BayesianAdversary, UniformCorrelationErasesHistory) {
  // With uniform P^B the previous likelihoods contribute a constant, so
  // leakage equals the gap of the latest densities only.
  BayesianAdversary adv(StochasticMatrix::Uniform(2));
  ASSERT_TRUE(adv.Observe({-1.0, -3.0}).ok());
  ASSERT_TRUE(adv.Observe({-0.5, -1.0}).ok());
  EXPECT_NEAR(adv.RealizedLeakage(), 0.5, 1e-12);
}

TEST(BayesianAdversary, IdentityCorrelationAccumulates) {
  // P^B = I chains the likelihood ratios: gaps add up across time.
  BayesianAdversary adv(StochasticMatrix::Identity(2));
  ASSERT_TRUE(adv.Observe({-1.0, -1.5}).ok());
  ASSERT_TRUE(adv.Observe({-1.0, -1.5}).ok());
  EXPECT_NEAR(adv.RealizedLeakage(), 1.0, 1e-12);
}

TEST(BayesianAdversary, PosteriorIsDistribution) {
  BayesianAdversary adv(StochasticMatrix::Uniform(3));
  ASSERT_TRUE(adv.Observe({-1.0, -2.0, -3.0}).ok());
  auto post = adv.Posterior();
  double sum = 0.0;
  for (double p : post) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(post[0], post[2]);
}

TEST(BayesianAdversary, ResetClearsState) {
  BayesianAdversary adv(StochasticMatrix::Uniform(2));
  ASSERT_TRUE(adv.Observe({-1.0, -2.0}).ok());
  adv.Reset();
  EXPECT_EQ(adv.num_observations(), 0u);
  EXPECT_DOUBLE_EQ(adv.RealizedLeakage(), 0.0);
}

// The central validation: Monte-Carlo realized leakage never exceeds the
// analytic BPL bound computed by Algorithm 1.
TEST(BayesianAdversary, RealizedLeakageBoundedByAnalyticBpl) {
  const auto backward = StochasticMatrix::FromRows({{0.9, 0.1}, {0.2, 0.8}});
  const double eps = 0.5;
  const std::size_t horizon = 8;

  TplAccountant accountant(TemporalCorrelations::BackwardOnly(backward));
  ASSERT_TRUE(accountant.RecordUniformReleases(eps, horizon).ok());

  // Full-histogram observation: eps-DP requires the strict L1
  // sensitivity 2 (one user's value change moves two bins by 1 each).
  const double kSensitivity = 2.0;
  const double scale = kSensitivity / eps;
  Rng rng(71);
  const std::vector<double> others = {10.0, 5.0};
  for (int trial = 0; trial < 300; ++trial) {
    BayesianAdversary adv(backward);
    // Ground truth: the target stays in state 0 the whole time (a
    // worst-ish case for this correlation).
    for (std::size_t t = 1; t <= horizon; ++t) {
      std::vector<double> truth = others;
      truth[0] += 1.0;
      std::vector<double> noisy = {truth[0] + rng.Laplace(scale),
                                   truth[1] + rng.Laplace(scale)};
      auto densities =
          HistogramLogDensities(noisy, others, eps, kSensitivity);
      ASSERT_TRUE(densities.ok());
      ASSERT_TRUE(adv.Observe(*densities).ok());
      const double bound = *accountant.Bpl(t);
      EXPECT_LE(adv.RealizedLeakage(), bound + 1e-9)
          << "trial=" << trial << " t=" << t;
    }
  }
}

// --- SmoothingAdversary: the offline (full-sequence) attack ------------

TEST(SmoothingAdversary, CreateValidatesDimensions) {
  EXPECT_FALSE(SmoothingAdversary::Create(StochasticMatrix::Uniform(2),
                                          StochasticMatrix::Uniform(3))
                   .ok());
}

TEST(SmoothingAdversary, ValidatesInputShapes) {
  auto adv = SmoothingAdversary::Create(StochasticMatrix::Uniform(2),
                                        StochasticMatrix::Uniform(2));
  ASSERT_TRUE(adv.ok());
  EXPECT_FALSE(adv->RealizedTplSeries({}).ok());
  EXPECT_FALSE(adv->RealizedTplSeries({{0.0, 0.0, 0.0}}).ok());
}

TEST(SmoothingAdversary, UniformCorrelationsReduceToPerReleaseGap) {
  // With uniform P^B and P^F, only the release at time t informs l^t.
  auto adv = SmoothingAdversary::Create(StochasticMatrix::Uniform(2),
                                        StochasticMatrix::Uniform(2));
  ASSERT_TRUE(adv.ok());
  auto realized =
      adv->RealizedTplSeries({{-1.0, -2.0}, {-0.25, -0.5}, {-3.0, -3.0}});
  ASSERT_TRUE(realized.ok());
  EXPECT_NEAR((*realized)[0], 1.0, 1e-12);
  EXPECT_NEAR((*realized)[1], 0.25, 1e-12);
  EXPECT_NEAR((*realized)[2], 0.0, 1e-12);
}

TEST(SmoothingAdversary, IdentityCorrelationsSumAllGaps) {
  // P = I both ways chains every release's evidence into every t.
  auto adv = SmoothingAdversary::Create(StochasticMatrix::Identity(2),
                                        StochasticMatrix::Identity(2));
  ASSERT_TRUE(adv.ok());
  auto realized =
      adv->RealizedTplSeries({{-1.0, -1.5}, {-2.0, -2.25}, {0.0, -0.25}});
  ASSERT_TRUE(realized.ok());
  for (double v : *realized) {
    EXPECT_NEAR(v, 0.5 + 0.25 + 0.25, 1e-12);
  }
}

TEST(SmoothingAdversary, InteriorLeakageExceedsOnlineAdversary) {
  // The smoothing attack uses future releases too, so its realized
  // leakage at interior t dominates the online (filtering-only) one.
  const auto p = StochasticMatrix::FromRows({{0.9, 0.1}, {0.2, 0.8}});
  auto smoothing = SmoothingAdversary::Create(p, p);
  ASSERT_TRUE(smoothing.ok());
  Rng rng(81);
  const double eps = 0.6;
  const double scale = 2.0 / eps;  // strict histogram sensitivity
  const std::size_t horizon = 6;

  std::vector<std::vector<double>> densities;
  BayesianAdversary online(p);
  std::vector<double> online_leakage;
  for (std::size_t t = 0; t < horizon; ++t) {
    std::vector<double> noisy = {1.0 + rng.Laplace(scale),
                                 rng.Laplace(scale)};
    auto d = HistogramLogDensities(noisy, {0.0, 0.0}, eps, 2.0);
    ASSERT_TRUE(d.ok());
    densities.push_back(*d);
    ASSERT_TRUE(online.Observe(*d).ok());
    online_leakage.push_back(online.RealizedLeakage());
  }
  auto realized = smoothing->RealizedTplSeries(densities);
  ASSERT_TRUE(realized.ok());
  // At t=1 (index 0) the smoothing adversary sees 5 extra future
  // releases the online one had not seen at that point.
  EXPECT_GE((*realized)[0], online_leakage[0] - 1e-9);
  // At the last step they coincide: no future left, same past.
  EXPECT_NEAR((*realized)[horizon - 1], online_leakage[horizon - 1], 1e-9);
}

// The central validation: realized smoothed leakage never exceeds the
// analytic TPL bound at any time point, across many trials.
TEST(SmoothingAdversary, RealizedLeakageBoundedByAnalyticTpl) {
  const auto p = StochasticMatrix::FromRows({{0.85, 0.15}, {0.25, 0.75}});
  auto corr = TemporalCorrelations::Both(p, p);
  ASSERT_TRUE(corr.ok());
  const double eps = 0.5;
  const std::size_t horizon = 8;

  TplAccountant accountant(*corr);
  ASSERT_TRUE(accountant.RecordUniformReleases(eps, horizon).ok());
  const auto tpl = accountant.TplSeries();

  auto adversary = SmoothingAdversary::Create(p, p);
  ASSERT_TRUE(adversary.ok());
  Rng rng(82);
  const double scale = 2.0 / eps;
  const std::vector<double> others = {9.0, 6.0};
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::vector<double>> densities;
    for (std::size_t t = 0; t < horizon; ++t) {
      std::vector<double> noisy = {others[0] + 1.0 + rng.Laplace(scale),
                                   others[1] + rng.Laplace(scale)};
      auto d = HistogramLogDensities(noisy, others, eps, 2.0);
      ASSERT_TRUE(d.ok());
      densities.push_back(*d);
    }
    auto realized = adversary->RealizedTplSeries(densities);
    ASSERT_TRUE(realized.ok());
    for (std::size_t t = 0; t < horizon; ++t) {
      EXPECT_LE((*realized)[t], tpl[t] + 1e-9)
          << "trial=" << trial << " t=" << (t + 1);
    }
  }
}

// Under the strongest correlation the realized leakage should get close
// to the (linearly growing) bound for extreme outputs.
TEST(BayesianAdversary, StrongCorrelationLeakageGrowsOverTime) {
  const auto backward = StochasticMatrix::Identity(2);
  const double eps = 1.0;
  Rng rng(72);
  BayesianAdversary adv(backward);
  double prev = 0.0;
  bool grew = false;
  for (std::size_t t = 1; t <= 10; ++t) {
    std::vector<double> noisy = {1.0 + rng.Laplace(1.0 / eps),
                                 rng.Laplace(1.0 / eps)};
    auto densities = HistogramLogDensities(noisy, {0.0, 0.0}, eps);
    ASSERT_TRUE(densities.ok());
    ASSERT_TRUE(adv.Observe(*densities).ok());
    if (adv.RealizedLeakage() > prev + 0.3) grew = true;
    prev = adv.RealizedLeakage();
  }
  EXPECT_TRUE(grew);
  EXPECT_GT(prev, 2.0);  // well beyond single-release eps = 1
}

}  // namespace
}  // namespace tcdp
