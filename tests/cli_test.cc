// Unit tests for tools/cli: every subcommand driven in-process, against
// temp files.

#include "tools/cli.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "markov/io.h"

namespace tcdp {
namespace {

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    matrix_path_ = "/tmp/tcdp_cli_test_matrix.csv";
    traj_path_ = "/tmp/tcdp_cli_test_traj.csv";
    std::ofstream m(matrix_path_);
    m << "0.8,0.2\n0.0,1.0\n";
    std::ofstream t(traj_path_);
    t << "0,0,1,1,1\n0,1,1,0,0\n1,1,1,1,0\n";
  }
  void TearDown() override {
    std::remove(matrix_path_.c_str());
    std::remove(traj_path_.c_str());
    std::remove("/tmp/tcdp_cli_test_out.csv");
    std::remove("/tmp/tcdp_cli_test_back.csv");
  }

  StatusOr<std::string> Run(std::vector<std::string> args) {
    std::ostringstream out;
    Status s = cli::Run(args, out);
    if (!s.ok()) return s;
    return out.str();
  }

  std::string matrix_path_;
  std::string traj_path_;
};

TEST_F(CliTest, HelpOnEmptyAndExplicit) {
  auto empty = Run({});
  ASSERT_TRUE(empty.ok());
  EXPECT_NE(empty->find("usage: tcdp"), std::string::npos);
  auto help = Run({"help"});
  ASSERT_TRUE(help.ok());
  EXPECT_EQ(*help, cli::HelpText());
}

TEST_F(CliTest, UnknownCommandFails) {
  auto r = Run({"frobnicate"});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unknown command"), std::string::npos);
}

TEST_F(CliTest, FlagParsingErrors) {
  EXPECT_FALSE(Run({"quantify", "positional"}).ok());
  EXPECT_FALSE(Run({"quantify", "--epsilon"}).ok());  // missing value
  EXPECT_FALSE(Run({"quantify", "--epsilon", "abc", "--matrix",
                    matrix_path_, "--horizon", "3"})
                   .ok());
}

TEST_F(CliTest, QuantifyPrintsTimeline) {
  auto r = Run({"quantify", "--matrix", matrix_path_, "--epsilon", "0.1",
                "--horizon", "10"});
  ASSERT_TRUE(r.ok()) << r.status();
  // The Figure 3 hump: max TPL ~ 0.6368, user level = 1.0.
  EXPECT_NE(r->find("max TPL (event-level alpha): 0.6368"),
            std::string::npos);
  EXPECT_NE(r->find("user-level TPL (Corollary 1): 1.0000"),
            std::string::npos);
}

TEST_F(CliTest, QuantifyWithExplicitSchedule) {
  auto r = Run({"quantify", "--backward", matrix_path_, "--schedule",
                "0.1,0.2,0.3"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NE(r->find("0.300000"), std::string::npos);
}

TEST_F(CliTest, QuantifyRequiresCorrelations) {
  EXPECT_FALSE(Run({"quantify", "--epsilon", "0.1", "--horizon", "5"}).ok());
  // --matrix excludes --backward.
  EXPECT_FALSE(Run({"quantify", "--matrix", matrix_path_, "--backward",
                    matrix_path_, "--epsilon", "0.1", "--horizon", "5"})
                   .ok());
}

TEST_F(CliTest, SupremumReportsBothDirections) {
  auto r = Run({"supremum", "--matrix", matrix_path_, "--epsilon", "0.1"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NE(r->find("BPL: supremum = 0.645907"), std::string::npos);
  EXPECT_NE(r->find("FPL: supremum = 0.645907"), std::string::npos);
}

TEST_F(CliTest, SupremumDetectsNonExistence) {
  auto r = Run({"supremum", "--matrix", matrix_path_, "--epsilon", "0.25"});
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->find("does not exist"), std::string::npos);
}

TEST_F(CliTest, AllocateQuantifiedAuditsAtAlpha) {
  auto r = Run({"allocate", "--matrix", matrix_path_, "--alpha", "1.0",
                "--horizon", "8"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NE(r->find("strategy: quantified"), std::string::npos);
  EXPECT_NE(r->find("audited max TPL: 1.0000"), std::string::npos);
}

TEST_F(CliTest, AllocateStrategies) {
  auto ub = Run({"allocate", "--matrix", matrix_path_, "--alpha", "1.0",
                 "--horizon", "5", "--strategy", "upper-bound"});
  ASSERT_TRUE(ub.ok());
  auto group = Run({"allocate", "--matrix", matrix_path_, "--alpha", "1.0",
                    "--horizon", "5", "--strategy", "group"});
  ASSERT_TRUE(group.ok());
  EXPECT_NE(group->find("0.200000"), std::string::npos);  // alpha/T
  EXPECT_FALSE(Run({"allocate", "--matrix", matrix_path_, "--alpha", "1.0",
                    "--horizon", "5", "--strategy", "bogus"})
                   .ok());
}

TEST_F(CliTest, EstimatePrintsMatrix) {
  auto r = Run({"estimate", "--trajectories", traj_path_});
  ASSERT_TRUE(r.ok()) << r.status();
  // Output must itself parse as a stochastic matrix.
  auto parsed = ParseStochasticMatrix(*r);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->size(), 2u);
}

TEST_F(CliTest, EstimateWritesFiles) {
  auto r = Run({"estimate", "--trajectories", traj_path_, "--out",
                "/tmp/tcdp_cli_test_out.csv", "--backward-out",
                "/tmp/tcdp_cli_test_back.csv"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(LoadStochasticMatrix("/tmp/tcdp_cli_test_out.csv").ok());
  EXPECT_TRUE(LoadStochasticMatrix("/tmp/tcdp_cli_test_back.csv").ok());
}

TEST_F(CliTest, EstimateHigherOrderEmbeds) {
  auto r = Run({"estimate", "--trajectories", traj_path_, "--order", "2",
                "--smoothing", "0.1"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NE(r->find("order-2 model embedded over 4 histories"),
            std::string::npos);
  // Strip the comment line, the rest is a 4x4 matrix.
  auto body = r->substr(r->find('\n') + 1);
  auto parsed = ParseStochasticMatrix(body);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 4u);
}

TEST_F(CliTest, EstimateMissingFileIsNotFound) {
  auto r = Run({"estimate", "--trajectories", "/tmp/missing_tcdp.csv"});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(CliTest, FleetPrintsThroughputAndCacheStats) {
  auto r = Run({"fleet", "--users", "20", "--horizon", "4", "--threads", "2",
                "--groups", "2", "--pages", "6"});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->find("releases/sec"), std::string::npos);
  EXPECT_NE(r->find("overall alpha"), std::string::npos);
  EXPECT_NE(r->find("loss cache hit rate"), std::string::npos);
}

TEST_F(CliTest, FleetCacheOffSkipsCacheStats) {
  auto r = Run({"fleet", "--users", "5", "--horizon", "2", "--threads", "1",
                "--cache", "off"});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->find("loss cache"), std::string::npos);
  EXPECT_EQ(r->find("hit rate"), std::string::npos);
}

TEST_F(CliTest, FleetRejectsBadFlags) {
  EXPECT_FALSE(Run({"fleet", "--users", "0"}).ok());
  EXPECT_FALSE(Run({"fleet", "--cache", "maybe"}).ok());
  EXPECT_FALSE(Run({"fleet", "--sparsity", "1.5"}).ok());
  EXPECT_FALSE(Run({"fleet", "--json", "/tmp/not-supported.json"}).ok());
}

TEST_F(CliTest, FleetSparseJsonSmoke) {
  // The machine-readable mode the perf trajectory scripts consume:
  // sparse heterogeneous schedule, explicit thread count, JSON output.
  auto r = Run({"fleet", "--users", "16", "--horizon", "4", "--threads", "2",
                "--groups", "2", "--pages", "5", "--sparsity", "0.5",
                "--seed", "7", "--json", "-"});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Schema keys the dashboards key on.
  for (const char* key :
       {"\"users\": 16", "\"horizon\": 4", "\"cohorts\": 2",
        "\"threads\": 2", "\"sparsity\": 0.5", "\"user_releases\": 64",
        "\"user_releases_per_sec\":", "\"overall_alpha\":",
        "\"cache_hits\":"}) {
    EXPECT_NE(r->find(key), std::string::npos) << "missing " << key
                                               << " in:\n" << *r;
  }
  EXPECT_EQ(r->front(), '{');
  EXPECT_EQ(r->back(), '\n');

  // Same seed, same fleet: byte-identical JSON apart from the timing
  // fields — spot-check the deterministic alpha instead.
  auto again = Run({"fleet", "--users", "16", "--horizon", "4", "--threads",
                    "1", "--groups", "2", "--pages", "5", "--sparsity", "0.5",
                    "--seed", "7", "--json", "-"});
  ASSERT_TRUE(again.ok());
  const auto alpha_of = [](const std::string& text) {
    const auto pos = text.find("\"overall_alpha\":");
    return text.substr(pos, text.find('\n', pos) - pos);
  };
  EXPECT_EQ(alpha_of(*r), alpha_of(*again));
}

TEST_F(CliTest, BenchListShowsEverySuite) {
  auto r = Run({"bench", "--list"});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (const char* suite :
       {"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "table2", "wevent",
        "ablation", "fleet", "shard", "net"}) {
    EXPECT_NE(r->find(suite), std::string::npos) << "missing " << suite;
  }
}

TEST_F(CliTest, BenchSmokeSingleSuiteWritesValidJsonAndSelfCompares) {
  const std::string json_path = "/tmp/tcdp_cli_bench_fig3.json";
  std::remove(json_path.c_str());
  auto r = Run({"bench", "--suite", "fig3", "--smoke", "--json", json_path});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->find("gate"), std::string::npos);
  EXPECT_NE(r->find("PASS"), std::string::npos);

  std::ifstream in(json_path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"tcdp-bench-v1\""), std::string::npos);
  EXPECT_NE(buffer.str().find("\"fig3\""), std::string::npos);
  EXPECT_NE(buffer.str().find("\"hardware\""), std::string::npos);
  EXPECT_NE(buffer.str().find("\"build\""), std::string::npos);

  // A run compared against its own output is regression-free.
  auto compare = Run(
      {"bench", "--suite", "fig3", "--smoke", "--compare", json_path});
  EXPECT_TRUE(compare.ok()) << compare.status().ToString();
  EXPECT_NE(compare->find("0 regressions"), std::string::npos);
  std::remove(json_path.c_str());
}

TEST_F(CliTest, BenchRejectsBadInvocations) {
  auto unknown_suite = Run({"bench", "--suite", "nope", "--smoke"});
  ASSERT_FALSE(unknown_suite.ok());
  EXPECT_NE(unknown_suite.status().message().find("nope"),
            std::string::npos);

  auto bad_flag = Run({"bench", "--frobnicate"});
  ASSERT_FALSE(bad_flag.ok());

  auto bad_noise = Run({"bench", "--suite", "fig3", "--noise", "-1"});
  ASSERT_FALSE(bad_noise.ok());

  auto missing_baseline = Run({"bench", "--suite", "fig3", "--smoke",
                               "--compare", "/tmp/tcdp_no_such_file.json"});
  ASSERT_FALSE(missing_baseline.ok());
}

TEST_F(CliTest, BenchRejectsMalformedBaseline) {
  const std::string bad_path = "/tmp/tcdp_cli_bench_bad_baseline.json";
  {
    std::ofstream bad(bad_path);
    bad << "{\"schema\": \"tcdp-bench-v0\"}\n";
  }
  auto r = Run({"bench", "--suite", "fig3", "--smoke", "--compare",
                bad_path});
  ASSERT_FALSE(r.ok());
  std::remove(bad_path.c_str());
}

class ServeCliTest : public CliTest {
 protected:
  void SetUp() override {
    CliTest::SetUp();
    script_path_ = "/tmp/tcdp_cli_serve_script.txt";
    log_dir_ = "/tmp/tcdp_cli_serve_logs";
    std::filesystem::remove_all(log_dir_);
    std::ofstream script(script_path_);
    script << "# two users, mixed releases, a query\n"
              "join alice 6 0.3\n"
              "join bob 6 0.4\n"
              "release 0.1 all\n"
              "release 0.2 alice\n"
              "flush\n"
              "release 0.1 alice,bob\n"
              "query alice\n";
  }
  void TearDown() override {
    CliTest::TearDown();
    std::remove(script_path_.c_str());
    std::filesystem::remove_all(log_dir_);
  }

  std::string script_path_;
  std::string log_dir_;
};

TEST_F(ServeCliTest, ServeEphemeralPrintsStats) {
  auto r = Run({"serve", "--script", script_path_, "--shards", "2",
                "--batch-window", "4"});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->find("global releases"), std::string::npos);
  EXPECT_NE(r->find("overall alpha"), std::string::npos);
  EXPECT_NE(r->find("query alice"), std::string::npos);
}

TEST_F(ServeCliTest, ServeJsonThenReplayVerifies) {
  auto served = Run({"serve", "--script", script_path_, "--shards", "2",
                     "--batch-window", "4", "--snapshot-every", "2",
                     "--log-dir", log_dir_, "--json", "-"});
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  for (const char* key :
       {"\"shards\": 2", "\"users\": 2", "\"horizon\": 3",
        "\"release_requests\": 4", "\"queries\": [", "\"name\": \"alice\"",
        "\"wal_records\":"}) {
    EXPECT_NE(served->find(key), std::string::npos)
        << "missing " << key << " in:\n" << *served;
  }

  auto replayed = Run({"replay", "--log-dir", log_dir_, "--verify", "1",
                       "--json", "-"});
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  for (const char* key :
       {"\"users\": 2", "\"horizon\": 3", "\"verified\": true",
        "\"verified_users\": 2", "\"verify_failures\": 0"}) {
    EXPECT_NE(replayed->find(key), std::string::npos)
        << "missing " << key << " in:\n" << *replayed;
  }

  auto human = Run({"replay", "--log-dir", log_dir_, "--verify", "1"});
  ASSERT_TRUE(human.ok()) << human.status().ToString();
  EXPECT_NE(human->find("2 users bitwise-equal, 0 failures"),
            std::string::npos)
      << *human;
}

TEST_F(ServeCliTest, ServeRejectsBadInput) {
  EXPECT_FALSE(Run({"serve"}).ok());  // no script
  EXPECT_FALSE(
      Run({"serve", "--script", "/tmp/no_such_tcdp_script.txt"}).ok());
  std::ofstream(script_path_) << "frobnicate everything\n";
  auto r = Run({"serve", "--script", script_path_});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unknown command"),
            std::string::npos);
  std::ofstream(script_path_) << "release 0.1 nobody\n";
  EXPECT_FALSE(Run({"serve", "--script", script_path_}).ok());
}

TEST_F(ServeCliTest, ReplayRequiresLogDir) {
  EXPECT_FALSE(Run({"replay"}).ok());
  EXPECT_FALSE(
      Run({"replay", "--log-dir", "/tmp/no_such_tcdp_log_dir"}).ok());
}

TEST_F(ServeCliTest, CompactShrinksLogsAndReplayStillVerifies) {
  // Serve durably with a mid-stream snapshot so compaction has an
  // anchor, compact, and check the replay verification still passes
  // against the shrunken logs.
  std::ofstream(script_path_) << "join alice 6 0.3\n"
                                 "join bob 6 0.4\n"
                                 "release 0.1 all\n"
                                 "release 0.2 alice\n"
                                 "snapshot\n"
                                 "release 0.1 alice,bob\n"
                                 "flush\n";
  auto served = Run({"serve", "--script", script_path_, "--shards", "2",
                     "--batch-window", "4", "--log-dir", log_dir_});
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  auto compacted = Run({"compact", "--log-dir", log_dir_, "--json", "-"});
  ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
  for (const char* key :
       {"\"wal_bytes_before\":", "\"wal_bytes_after\":",
        "\"physical_records_after\":", "\"compact_seconds\":"}) {
    EXPECT_NE(compacted->find(key), std::string::npos)
        << "missing " << key << " in:\n" << *compacted;
  }

  auto replayed = Run({"replay", "--log-dir", log_dir_, "--verify", "1"});
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_NE(replayed->find("2 users bitwise-equal, 0 failures"),
            std::string::npos)
      << *replayed;

  auto human = Run({"compact", "--log-dir", log_dir_});
  ASSERT_TRUE(human.ok()) << human.status().ToString();
  EXPECT_NE(human->find("compacted 2 shard WALs"), std::string::npos)
      << *human;
}

TEST_F(ServeCliTest, CompactRejectsBadInput) {
  EXPECT_FALSE(Run({"compact"}).ok());
  EXPECT_FALSE(
      Run({"compact", "--log-dir", "/tmp/no_such_tcdp_log_dir"}).ok());
  // Retention flags on an ephemeral serve are a contradiction.
  auto r = Run({"serve", "--script", script_path_, "--auto-compact", "1"});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("--log-dir"), std::string::npos);
}

TEST_F(ServeCliTest, ServeScriptCompactVerbAndAutoCompactFlags) {
  std::ofstream(script_path_) << "join alice 6 0.3\n"
                                 "release 0.1 all\n"
                                 "snapshot\n"
                                 "compact\n"
                                 "release 0.2 alice\n"
                                 "query alice\n";
  auto served = Run({"serve", "--script", script_path_, "--shards", "2",
                     "--batch-window", "2", "--log-dir", log_dir_,
                     "--auto-compact", "1", "--json", "-"});
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  for (const char* key :
       {"\"compactions\":", "\"wal_physical_records\":",
        "\"name\": \"alice\""}) {
    EXPECT_NE(served->find(key), std::string::npos)
        << "missing " << key << " in:\n" << *served;
  }
  EXPECT_EQ(served->find("\"compactions\": 0"), std::string::npos)
      << "no shard compacted in:\n" << *served;
}

/// Extracts the `"queries": [...]` JSON section — the part that must be
/// bitwise identical between an in-process serve run and a networked
/// client replay of the same script.
std::string QueriesSection(const std::string& json) {
  const std::size_t begin = json.find("\"queries\": [");
  EXPECT_NE(begin, std::string::npos) << json;
  if (begin == std::string::npos) return "";
  const std::size_t end = json.find(']', begin);
  EXPECT_NE(end, std::string::npos);
  return json.substr(begin, end - begin + 1);
}

TEST_F(ServeCliTest, ClientReplayOverLoopbackMatchesInProcessBitwise) {
  // In-process run (the ISSUE 4 acceptance reference).
  auto in_process = Run({"serve", "--script", script_path_, "--shards", "3",
                         "--batch-window", "4", "--json", "-"});
  ASSERT_TRUE(in_process.ok()) << in_process.status().ToString();

  // Networked run: serve --listen on a background thread, replay the
  // same script through `tcdp client`, shut the server down.
  const std::string port_file = "/tmp/tcdp_cli_net_port.txt";
  std::remove(port_file.c_str());
  StatusOr<std::string> served = Status::Internal("serve never ran");
  std::thread server([&] {
    served = Run({"serve", "--listen", "0", "--shards", "3",
                  "--batch-window", "4", "--port-file", port_file,
                  "--json", "-"});
  });
  std::string port;
  for (int i = 0; i < 200 && port.empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    std::ifstream in(port_file);
    std::getline(in, port);
  }
  ASSERT_FALSE(port.empty()) << "server never wrote its port file";
  auto client = Run({"client", "--port", port, "--script", script_path_,
                     "--pipeline", "4", "--shutdown", "1", "--json", "-"});
  server.join();
  std::remove(port_file.c_str());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  // Bitwise: the doubles print at precision 17 in both outputs.
  EXPECT_EQ(QueriesSection(*client), QueriesSection(*in_process))
      << "client:\n" << *client << "\nin-process:\n" << *in_process;
  for (const char* key :
       {"\"server_stats\":", "\"queue_depth\":", "\"enqueue_blocks\":"}) {
    EXPECT_NE(client->find(key), std::string::npos)
        << "missing " << key << " in:\n" << *client;
  }
  for (const char* key : {"\"net\":", "\"connections_accepted\": 1",
                          "\"queue_depth\":", "\"enqueue_blocks\":"}) {
    EXPECT_NE(served->find(key), std::string::npos)
        << "missing " << key << " in:\n" << *served;
  }
}

TEST_F(ServeCliTest, ClientRejectsBadFlags) {
  EXPECT_FALSE(Run({"client"}).ok());  // no script, no port
  EXPECT_FALSE(Run({"client", "--script", script_path_}).ok());  // no port
  EXPECT_FALSE(Run({"client", "--script", script_path_, "--port",
                    "99999999"})
                   .ok());
  EXPECT_FALSE(Run({"client", "--port", "1", "--script",
                    "/tmp/no_such_tcdp_script.txt"})
                   .ok());
}

TEST_F(ServeCliTest, HelpMentionsNetworkCommands) {
  auto help = Run({"help"});
  ASSERT_TRUE(help.ok());
  EXPECT_NE(help->find("client"), std::string::npos);
  EXPECT_NE(help->find("--listen"), std::string::npos);
}

}  // namespace
}  // namespace tcdp
