// Unit tests for markov/io: text parsing/serialization of matrices and
// trajectories, with file round-trips.

#include "markov/io.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace tcdp {
namespace {

TEST(ParseStochasticMatrix, ParsesCommaAndWhitespace) {
  auto m = ParseStochasticMatrix("0.5,0.5\n0.25 0.75\n");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->size(), 2u);
  EXPECT_DOUBLE_EQ(m->At(1, 0), 0.25);
}

TEST(ParseStochasticMatrix, SkipsCommentsAndBlanks) {
  auto m = ParseStochasticMatrix(
      "# forward correlation\n\n0.9, 0.1\n  \n0.2, 0.8\n");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->size(), 2u);
}

TEST(ParseStochasticMatrix, RejectsRaggedRows) {
  auto m = ParseStochasticMatrix("0.5,0.5\n1.0\n");
  EXPECT_FALSE(m.ok());
  EXPECT_NE(m.status().message().find("ragged"), std::string::npos);
}

TEST(ParseStochasticMatrix, RejectsGarbageFields) {
  auto m = ParseStochasticMatrix("0.5,abc\n0.5,0.5\n");
  EXPECT_FALSE(m.ok());
  EXPECT_NE(m.status().message().find("line 1"), std::string::npos);
}

TEST(ParseStochasticMatrix, RejectsNonStochasticRows) {
  EXPECT_FALSE(ParseStochasticMatrix("0.5,0.6\n0.5,0.5\n").ok());
  EXPECT_FALSE(ParseStochasticMatrix("").ok());
}

TEST(SerializeStochasticMatrix, RoundTripsExactly) {
  auto original = StochasticMatrix::FromRows(
      {{0.123456789012345, 0.876543210987655}, {1.0 / 3, 2.0 / 3}});
  auto parsed = ParseStochasticMatrix(SerializeStochasticMatrix(original));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->ApproxEquals(original, 1e-15));
}

TEST(MatrixFileIo, SaveAndLoad) {
  const std::string path = "/tmp/tcdp_io_test_matrix.csv";
  auto m = StochasticMatrix::FromRows({{0.7, 0.3}, {0.4, 0.6}});
  ASSERT_TRUE(SaveStochasticMatrix(m, path).ok());
  auto loaded = LoadStochasticMatrix(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->ApproxEquals(m, 1e-15));
  std::remove(path.c_str());
}

TEST(MatrixFileIo, LoadMissingFileIsNotFound) {
  auto m = LoadStochasticMatrix("/tmp/definitely_missing_tcdp_file.csv");
  EXPECT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kNotFound);
}

TEST(ParseTrajectories, ParsesMultipleUsers) {
  auto t = ParseTrajectories("0,1,2\n2 2 0\n# comment\n");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->size(), 2u);
  EXPECT_EQ((*t)[0], (Trajectory{0, 1, 2}));
  EXPECT_EQ((*t)[1], (Trajectory{2, 2, 0}));
}

TEST(ParseTrajectories, EnforcesDomainWhenGiven) {
  EXPECT_TRUE(ParseTrajectories("0,1\n", 2).ok());
  auto bad = ParseTrajectories("0,5\n", 2);
  EXPECT_FALSE(bad.ok());
}

TEST(ParseTrajectories, RejectsNegativeAndGarbage) {
  EXPECT_FALSE(ParseTrajectories("0,-1\n").ok());
  EXPECT_FALSE(ParseTrajectories("a,b\n").ok());
  EXPECT_FALSE(ParseTrajectories("").ok());
}

TEST(TrajectoryFileIo, RoundTrip) {
  const std::string path = "/tmp/tcdp_io_test_traj.csv";
  std::vector<Trajectory> trajs = {{0, 1, 0}, {2, 2, 2}, {1}};
  ASSERT_TRUE(SaveTrajectories(trajs, path).ok());
  auto loaded = LoadTrajectories(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, trajs);
  std::remove(path.c_str());
}

TEST(SerializeTrajectories, CustomSeparator) {
  EXPECT_EQ(SerializeTrajectories({{1, 2, 3}}, ' '), "1 2 3\n");
}

}  // namespace
}  // namespace tcdp
