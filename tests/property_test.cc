// Property-based tests (parameterized gtest sweeps) over randomized
// inputs. The centerpiece: Algorithm 1's polynomial-time subset solution
// must agree with the generic LFP solvers (Charnes-Cooper simplex and
// Dinkelbach) on the paper's linear-fractional program — the same
// equivalence the paper verifies experimentally in Section VI-A.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/budget_allocation.h"
#include "core/privacy_loss.h"
#include "core/supremum.h"
#include "core/tpl_accountant.h"
#include "lp/tpl_lfp.h"
#include "markov/smoothing.h"
#include "markov/stochastic_matrix.h"
#include "release/w_event.h"

namespace tcdp {
namespace {

// ----------------------------------------------------------------------
// Algorithm 1 vs generic LFP solvers.

using LossOracleParam = std::tuple<int /*n*/, double /*alpha*/, int /*seed*/>;

class LossOracleTest : public ::testing::TestWithParam<LossOracleParam> {};

TEST_P(LossOracleTest, Algorithm1MatchesCharnesCooper) {
  const auto [n, alpha, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  auto matrix = StochasticMatrix::Random(static_cast<std::size_t>(n), &rng);
  TemporalLossFunction loss(matrix);
  const double fast = loss.Evaluate(alpha);
  auto oracle = TemporalLossViaLfp(matrix, alpha, LfpMethod::kCharnesCooper,
                                   LfpFormulation::kPairwise);
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  EXPECT_NEAR(fast, *oracle, 1e-6)
      << "n=" << n << " alpha=" << alpha << " seed=" << seed;
}

TEST_P(LossOracleTest, Algorithm1MatchesDinkelbach) {
  const auto [n, alpha, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) + 1000);
  auto matrix = StochasticMatrix::Random(static_cast<std::size_t>(n), &rng);
  TemporalLossFunction loss(matrix);
  const double fast = loss.Evaluate(alpha);
  auto oracle = TemporalLossViaLfp(matrix, alpha, LfpMethod::kDinkelbach,
                                   LfpFormulation::kPairwise);
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  EXPECT_NEAR(fast, *oracle, 1e-6);
}

TEST_P(LossOracleTest, CompactFormulationAgrees) {
  const auto [n, alpha, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) + 2000);
  auto matrix = StochasticMatrix::Random(static_cast<std::size_t>(n), &rng);
  TemporalLossFunction loss(matrix);
  const double fast = loss.Evaluate(alpha);
  auto oracle = TemporalLossViaLfp(matrix, alpha, LfpMethod::kCharnesCooper,
                                   LfpFormulation::kCompact);
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  EXPECT_NEAR(fast, *oracle, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    RandomMatrices, LossOracleTest,
    ::testing::Combine(::testing::Values(2, 3, 5),
                       ::testing::Values(0.1, 1.0, 4.0),
                       ::testing::Values(1, 2, 3)));

// Smoothed (structured) matrices, which stress the subset-removal path
// harder than uniform-random rows.
using SmoothedParam = std::tuple<double /*s*/, double /*alpha*/>;

class SmoothedOracleTest : public ::testing::TestWithParam<SmoothedParam> {};

TEST_P(SmoothedOracleTest, Algorithm1MatchesLfpOnSmoothedMatrices) {
  const auto [s, alpha] = GetParam();
  auto matrix = SmoothedCorrelationMatrix(4, s);
  ASSERT_TRUE(matrix.ok());
  TemporalLossFunction loss(*matrix);
  auto oracle = TemporalLossViaLfp(*matrix, alpha, LfpMethod::kCharnesCooper,
                                   LfpFormulation::kPairwise);
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  EXPECT_NEAR(loss.Evaluate(alpha), *oracle, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(SmoothedMatrices, SmoothedOracleTest,
                         ::testing::Combine(::testing::Values(0.01, 0.1, 1.0),
                                            ::testing::Values(0.1, 0.5, 2.0)));

// ----------------------------------------------------------------------
// Remark 1 bounds and structural invariants of the loss function.

class LossBoundsTest : public ::testing::TestWithParam<int /*seed*/> {};

TEST_P(LossBoundsTest, LossWithinRemark1Bounds) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  auto matrix = StochasticMatrix::Random(5, &rng);
  TemporalLossFunction loss(matrix);
  for (double alpha : {0.0, 0.05, 0.5, 2.0, 10.0, 50.0}) {
    const double v = loss.Evaluate(alpha);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, alpha + 1e-9);
  }
}

TEST_P(LossBoundsTest, SortedPrefixSolverMatchesIterative) {
  // The O(n log n) threshold-set scan must agree with the paper's
  // iterative refinement on every pair, for random and structured
  // matrices alike.
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 300);
  for (const StochasticMatrix& matrix :
       {StochasticMatrix::Random(6, &rng),
        SmoothedCorrelationMatrix(6, 0.02).value(),
        StochasticMatrix::Uniform(6)}) {
    TemporalLossFunction loss(matrix);
    for (double alpha : {0.05, 0.8, 5.0}) {
      LossEvalOptions iterative;
      LossEvalOptions sorted;
      sorted.method = PairLossMethod::kSortedPrefix;
      const auto a = loss.EvaluateDetailed(alpha, sorted);
      const auto b = loss.EvaluateDetailed(alpha, iterative);
      EXPECT_NEAR(a.loss, b.loss, 1e-12) << "alpha=" << alpha;
      EXPECT_NEAR(a.q_sum, b.q_sum, 1e-12);
      EXPECT_NEAR(a.d_sum, b.d_sum, 1e-12);
    }
  }
}

TEST_P(LossBoundsTest, SortedPrefixMatchesIterativePerPair) {
  // Per-pair agreement including the selected subset (up to ties).
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 350);
  auto matrix = StochasticMatrix::Random(5, &rng);
  for (double alpha : {0.1, 2.0}) {
    for (std::size_t a = 0; a < 5; ++a) {
      for (std::size_t b = 0; b < 5; ++b) {
        if (a == b) continue;
        auto it = ComputePairLoss(matrix.Row(a), matrix.Row(b), alpha);
        auto sp = ComputePairLossSorted(matrix.Row(a), matrix.Row(b), alpha);
        ASSERT_TRUE(it.ok());
        ASSERT_TRUE(sp.ok());
        EXPECT_NEAR(it->loss, sp->loss, 1e-12)
            << "alpha=" << alpha << " pair " << a << "," << b;
      }
    }
  }
}

TEST_P(LossBoundsTest, LossMonotoneInAlpha) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  auto matrix = StochasticMatrix::Random(4, &rng);
  TemporalLossFunction loss(matrix);
  double prev = 0.0;
  for (double alpha = 0.0; alpha <= 6.0; alpha += 0.3) {
    const double v = loss.Evaluate(alpha);
    EXPECT_GE(v, prev - 1e-10);
    prev = v;
  }
}

TEST_P(LossBoundsTest, BatchRemovalMatchesOneAtATimeReference) {
  // The paper argues (Lines 8-10 discussion) that removing all violating
  // pairs at once is equivalent to removing them one by one. Reference
  // implementation: remove a single worst violator per pass.
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 900);
  auto matrix = StochasticMatrix::Random(6, &rng);
  const double alpha = 1.5;
  for (std::size_t a = 0; a < 6; ++a) {
    for (std::size_t b = 0; b < 6; ++b) {
      if (a == b) continue;
      const auto q = matrix.Row(a);
      const auto d = matrix.Row(b);
      auto fast = ComputePairLoss(q, d, alpha);
      ASSERT_TRUE(fast.ok());

      // One-at-a-time reference.
      std::vector<std::size_t> subset;
      for (std::size_t j = 0; j < q.size(); ++j) {
        if (q[j] > d[j]) subset.push_back(j);
      }
      while (!subset.empty()) {
        double qs = 0.0, ds = 0.0;
        for (std::size_t j : subset) {
          qs += q[j];
          ds += d[j];
        }
        const double ratio =
            (qs * std::expm1(alpha) + 1.0) / (ds * std::expm1(alpha) + 1.0);
        std::size_t drop = subset.size();
        for (std::size_t k = 0; k < subset.size(); ++k) {
          const std::size_t j = subset[k];
          const double rj = d[j] == 0.0 ? 1e300 : q[j] / d[j];
          if (rj <= ratio) {
            drop = k;
            break;
          }
        }
        if (drop == subset.size()) {
          EXPECT_NEAR(fast->loss, std::log(ratio), 1e-9);
          break;
        }
        subset.erase(subset.begin() + static_cast<long>(drop));
      }
      if (subset.empty()) {
        EXPECT_NEAR(fast->loss, 0.0, 1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossBoundsTest,
                         ::testing::Range(1, 11));

// ----------------------------------------------------------------------
// Supremum: closed form vs fixpoint iteration across random matrices.

class SupremumAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(SupremumAgreementTest, ClosedFormMatchesIteration) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 7000);
  auto matrix = StochasticMatrix::Random(4, &rng);
  TemporalLossFunction loss(matrix);
  for (double eps : {0.05, 0.2, 1.0}) {
    auto closed = ComputeSupremum(loss, eps);
    ASSERT_TRUE(closed.ok());
    auto fix = IterateLeakageToFixpoint(loss, eps);
    if (closed->exists) {
      ASSERT_TRUE(fix.converged) << "eps=" << eps;
      EXPECT_NEAR(closed->value, fix.value, 1e-6);
      // A supremum is a fixpoint: L(sup) + eps == sup.
      EXPECT_NEAR(loss.Evaluate(closed->value) + eps, closed->value, 1e-6);
    } else {
      EXPECT_FALSE(fix.converged);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SupremumAgreementTest,
                         ::testing::Range(1, 9));

// ----------------------------------------------------------------------
// Allocation invariants across random correlations and targets.

using AllocationParam = std::tuple<double /*alpha*/, int /*seed*/>;

class AllocationInvariantTest
    : public ::testing::TestWithParam<AllocationParam> {};

TEST_P(AllocationInvariantTest, SchedulesNeverExceedAlpha) {
  const auto [alpha, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) + 11000);
  auto pb = StochasticMatrix::Random(3, &rng);
  auto pf = StochasticMatrix::Random(3, &rng);
  auto corr = TemporalCorrelations::Both(pb, pf);
  ASSERT_TRUE(corr.ok());
  auto alloc = BudgetAllocator::Create(*corr, alpha);
  ASSERT_TRUE(alloc.ok()) << alloc.status();

  for (std::size_t horizon : {1u, 3u, 17u, 60u}) {
    // Algorithm 2.
    {
      TplAccountant acc(*corr);
      for (double e : alloc->UpperBoundSchedule(horizon)) {
        ASSERT_TRUE(acc.RecordRelease(e).ok());
      }
      EXPECT_LE(acc.MaxTpl(), alpha + 1e-7)
          << "ub horizon=" << horizon << " alpha=" << alpha;
    }
    // Algorithm 3: exact alpha.
    {
      auto sched = alloc->QuantifiedSchedule(horizon);
      ASSERT_TRUE(sched.ok());
      TplAccountant acc(*corr);
      for (double e : *sched) ASSERT_TRUE(acc.RecordRelease(e).ok());
      EXPECT_LE(acc.MaxTpl(), alpha + 1e-7);
      if (horizon >= 2) {
        EXPECT_NEAR(acc.MaxTpl(), alpha, 1e-5)
            << "q horizon=" << horizon << " alpha=" << alpha;
      }
    }
  }
}

TEST_P(AllocationInvariantTest, SteadyBudgetIsSupremumInverse) {
  const auto [alpha, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) + 12000);
  auto pb = StochasticMatrix::Random(3, &rng);
  auto corr = TemporalCorrelations::BackwardOnly(pb);
  auto alloc = BudgetAllocator::Create(corr, alpha);
  ASSERT_TRUE(alloc.ok());
  // Backward-only: alpha_b == alpha and the BPL supremum under the steady
  // budget must equal alpha.
  EXPECT_NEAR(alloc->budget().alpha_b, alpha, 1e-6);
  TemporalLossFunction lb(pb);
  auto sup = ComputeSupremum(lb, alloc->budget().eps_steady);
  ASSERT_TRUE(sup.ok());
  ASSERT_TRUE(sup->exists);
  EXPECT_NEAR(sup->value, alpha, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllocationInvariantTest,
    ::testing::Combine(::testing::Values(0.5, 1.0, 2.0),
                       ::testing::Values(1, 2, 3, 4)));

// ----------------------------------------------------------------------
// Accountant consistency: TPL identity and composition coherence.

class AccountantInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(AccountantInvariantTest, TplIdentityAndMonotoneBpl) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 15000);
  auto pb = StochasticMatrix::Random(4, &rng);
  auto pf = StochasticMatrix::Random(4, &rng);
  auto corr = TemporalCorrelations::Both(pb, pf);
  ASSERT_TRUE(corr.ok());
  TplAccountant acc(*corr);
  std::vector<double> epsilons;
  for (int t = 0; t < 12; ++t) {
    const double eps = 0.05 + 0.3 * rng.Uniform();
    epsilons.push_back(eps);
    ASSERT_TRUE(acc.RecordRelease(eps).ok());
  }
  auto bpl = acc.BplSeries();
  auto fpl = acc.FplSeries();
  auto tpl = acc.TplSeries();
  for (std::size_t i = 0; i < tpl.size(); ++i) {
    // Equation 10.
    EXPECT_NEAR(tpl[i], bpl[i] + fpl[i] - epsilons[i], 1e-12);
    // Leakage dominates the per-step budget.
    EXPECT_GE(bpl[i] + 1e-12, epsilons[i]);
    EXPECT_GE(fpl[i] + 1e-12, epsilons[i]);
    // Remark 1 upper bounds: cumulative sums.
    double prefix = 0.0;
    for (std::size_t k = 0; k <= i; ++k) prefix += epsilons[k];
    EXPECT_LE(bpl[i], prefix + 1e-9);
  }
  // User-level = sum (Corollary 1) >= every event-level TPL.
  for (double v : tpl) EXPECT_LE(v, acc.UserLevelTpl() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccountantInvariantTest,
                         ::testing::Range(1, 9));

// ----------------------------------------------------------------------
// Exhaustive oracle for Theorem 4's subset selection: for small n,
// enumerate EVERY subset of coordinates and maximize the objective
// directly; Algorithm 1's iterative refinement must find the same
// optimum.

class SubsetOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(SubsetOracleTest, IterativeRefinementMatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 40000);
  const std::size_t n = 7;
  auto matrix = StochasticMatrix::Random(n, &rng);
  for (double alpha : {0.05, 0.7, 3.0, 12.0}) {
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = 0; b < n; ++b) {
        if (a == b) continue;
        const auto q = matrix.Row(a);
        const auto d = matrix.Row(b);
        auto fast = ComputePairLoss(q, d, alpha);
        ASSERT_TRUE(fast.ok());
        // Brute force over all 2^n subsets.
        double best = 0.0;
        for (std::size_t mask = 0; mask < (1u << n); ++mask) {
          double qs = 0.0, ds = 0.0;
          for (std::size_t j = 0; j < n; ++j) {
            if (mask & (1u << j)) {
              qs += q[j];
              ds += d[j];
            }
          }
          const double value = LogLinearInExpAlpha(qs, alpha) -
                               LogLinearInExpAlpha(ds, alpha);
          best = std::max(best, value);
        }
        EXPECT_NEAR(fast->loss, best, 1e-9)
            << "alpha=" << alpha << " rows " << a << "," << b;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubsetOracleTest, ::testing::Range(1, 6));

// ----------------------------------------------------------------------
// w-event mechanisms: the window-budget invariant must survive any
// (window, strategy, stream-volatility) combination.

using WEventParam = std::tuple<int /*window*/, int /*mechanism*/,
                               int /*volatility*/>;

class WEventInvariantTest : public ::testing::TestWithParam<WEventParam> {};

TEST_P(WEventInvariantTest, WindowBudgetInvariant) {
  const auto [window, mechanism, volatility] = GetParam();
  const double eps = 0.8;
  WEventOptions options;
  options.window = static_cast<std::size_t>(window);
  options.epsilon = eps;

  std::unique_ptr<WEventMechanism> mech;
  if (mechanism == 0) {
    auto m = BudgetDistributionMechanism::Create(
        options, std::make_unique<HistogramQuery>());
    ASSERT_TRUE(m.ok());
    mech = std::move(m).value();
  } else {
    auto m = BudgetAbsorptionMechanism::Create(
        options, std::make_unique<HistogramQuery>());
    ASSERT_TRUE(m.ok());
    mech = std::move(m).value();
  }

  Rng rng(static_cast<std::uint64_t>(window * 100 + volatility));
  std::vector<std::size_t> values(30, 0);
  for (int t = 0; t < 50; ++t) {
    // Volatility 0: static; 1: drift a few users; 2: full reshuffle.
    if (volatility == 1) {
      for (int k = 0; k < 3; ++k) {
        values[static_cast<std::size_t>(rng.UniformInt(0, 29))] =
            static_cast<std::size_t>(rng.UniformInt(0, 2));
      }
    } else if (volatility == 2) {
      for (auto& v : values) {
        v = static_cast<std::size_t>(rng.UniformInt(0, 2));
      }
    }
    auto db = Database::Create(values, 3);
    ASSERT_TRUE(db.ok());
    auto r = mech->Process(*db, &rng);
    ASSERT_TRUE(r.ok());
    // Released vector always well-formed.
    ASSERT_EQ(r->released_values.size(), 3u);
  }
  EXPECT_LE(mech->MaxWindowSpend(), eps + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WEventInvariantTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(0, 1),
                       ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace tcdp
