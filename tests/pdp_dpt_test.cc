// Unit tests for core/pdp_dpt: personalized alpha_i-DP_T planning and
// release (Section III-D).

#include "core/pdp_dpt.h"

#include <gtest/gtest.h>

#include "markov/smoothing.h"
#include "workload/generators.h"

namespace tcdp {
namespace {

TemporalCorrelations CorrOf(double s) {
  auto m = SmoothedCorrelationMatrix(3, s);
  EXPECT_TRUE(m.ok());
  auto c = TemporalCorrelations::Both(*m, *m);
  EXPECT_TRUE(c.ok());
  return std::move(c).value();
}

std::vector<PdpUserSpec> ThreeUsers() {
  return {
      {"cautious", CorrOf(0.5), 0.5, DptStrategy::kQuantified},
      {"moderate", CorrOf(0.5), 1.0, DptStrategy::kQuantified},
      {"liberal", CorrOf(0.5), 2.0, DptStrategy::kQuantified},
  };
}

TEST(PersonalizedDptPlanner, CreateValidates) {
  EXPECT_FALSE(PersonalizedDptPlanner::Create({}).ok());
  // A user with strongest correlations cannot be bounded; the error names
  // the user.
  std::vector<PdpUserSpec> users = ThreeUsers();
  users.push_back({"impossible",
                   TemporalCorrelations::BackwardOnly(
                       StochasticMatrix::Identity(2)),
                   1.0, DptStrategy::kQuantified});
  auto planner = PersonalizedDptPlanner::Create(std::move(users));
  ASSERT_FALSE(planner.ok());
  EXPECT_NE(planner.status().message().find("impossible"),
            std::string::npos);
}

TEST(PersonalizedDptPlanner, SchedulesOrderedByAlpha) {
  auto planner = PersonalizedDptPlanner::Create(ThreeUsers());
  ASSERT_TRUE(planner.ok());
  auto schedules = planner->Schedules(8);
  ASSERT_TRUE(schedules.ok());
  ASSERT_EQ(schedules->size(), 3u);
  // Identical correlations, increasing alphas -> pointwise increasing
  // budgets.
  for (std::size_t t = 0; t < 8; ++t) {
    EXPECT_LT((*schedules)[0][t], (*schedules)[1][t]) << "t=" << t;
    EXPECT_LT((*schedules)[1][t], (*schedules)[2][t]) << "t=" << t;
  }
}

TEST(PersonalizedDptPlanner, ThresholdIsMaxOverUsers) {
  auto planner = PersonalizedDptPlanner::Create(ThreeUsers());
  ASSERT_TRUE(planner.ok());
  auto schedules = planner->Schedules(5);
  auto thresholds = planner->ThresholdSchedule(5);
  ASSERT_TRUE(schedules.ok());
  ASSERT_TRUE(thresholds.ok());
  for (std::size_t t = 0; t < 5; ++t) {
    double expected = 0.0;
    for (const auto& s : *schedules) expected = std::max(expected, s[t]);
    EXPECT_DOUBLE_EQ((*thresholds)[t], expected);
  }
}

TEST(PersonalizedDptPlanner, MixedStrategiesSupported) {
  std::vector<PdpUserSpec> users = {
      {"ub", CorrOf(0.5), 1.0, DptStrategy::kUpperBound},
      {"q", CorrOf(0.5), 1.0, DptStrategy::kQuantified},
      {"g", CorrOf(0.5), 1.0, DptStrategy::kGroupDpBaseline},
  };
  auto planner = PersonalizedDptPlanner::Create(std::move(users));
  ASSERT_TRUE(planner.ok());
  auto schedules = planner->Schedules(4);
  ASSERT_TRUE(schedules.ok());
  // Upper bound: flat; quantified: peaked ends; group: alpha/T flat.
  EXPECT_DOUBLE_EQ((*schedules)[0][0], (*schedules)[0][1]);
  EXPECT_GT((*schedules)[1][0], (*schedules)[1][1]);
  EXPECT_DOUBLE_EQ((*schedules)[2][0], 0.25);
}

TEST(PersonalizedDptPlanner, ReleaseSeriesAuditsEveryUser) {
  auto planner = PersonalizedDptPlanner::Create(ThreeUsers());
  ASSERT_TRUE(planner.ok());

  // Build a 3-user series matching the planner's user count.
  auto road = RingRoadNetwork(3, 0.5, 0.2);
  ASSERT_TRUE(road.ok());
  auto chain = MarkovChain::WithUniformInitial(*road);
  Rng rng(11);
  auto series = SimulatePopulation(chain, 3, 10, &rng);
  ASSERT_TRUE(series.ok());

  HistogramQuery query;
  auto result = planner->ReleaseSeries(*series, query, &rng);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->releases.size(), 10u);
  ASSERT_EQ(result->per_user_max_tpl.size(), 3u);
  EXPECT_LE(result->per_user_max_tpl[0], 0.5 + 1e-6);
  EXPECT_LE(result->per_user_max_tpl[1], 1.0 + 1e-6);
  EXPECT_LE(result->per_user_max_tpl[2], 2.0 + 1e-6);
  // Quantified strategy: each user's audit is tight at their own alpha.
  EXPECT_NEAR(result->per_user_max_tpl[0], 0.5, 1e-5);
  EXPECT_NEAR(result->per_user_max_tpl[2], 2.0, 1e-5);
  // Thresholds match the max schedule.
  auto thresholds = planner->ThresholdSchedule(10);
  ASSERT_TRUE(thresholds.ok());
  for (std::size_t t = 0; t < 10; ++t) {
    EXPECT_DOUBLE_EQ(result->thresholds[t], (*thresholds)[t]);
  }
}

TEST(PersonalizedDptPlanner, ReleaseSeriesValidatesUserCount) {
  auto planner = PersonalizedDptPlanner::Create(ThreeUsers());
  ASSERT_TRUE(planner.ok());
  auto road = RingRoadNetwork(3, 0.5, 0.2);
  ASSERT_TRUE(road.ok());
  auto chain = MarkovChain::WithUniformInitial(*road);
  Rng rng(12);
  auto series = SimulatePopulation(chain, 5, 4, &rng);  // 5 users != 3
  ASSERT_TRUE(series.ok());
  HistogramQuery query;
  EXPECT_FALSE(planner->ReleaseSeries(*series, query, &rng).ok());
}

}  // namespace
}  // namespace tcdp
