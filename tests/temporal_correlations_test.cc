// Unit tests for core/temporal_correlations.

#include "core/temporal_correlations.h"

#include <gtest/gtest.h>

namespace tcdp {
namespace {

TEST(TemporalCorrelations, NoneIsEmpty) {
  auto c = TemporalCorrelations::None();
  EXPECT_TRUE(c.empty());
  EXPECT_FALSE(c.has_backward());
  EXPECT_FALSE(c.has_forward());
  EXPECT_EQ(c.domain_size(), 0u);
}

TEST(TemporalCorrelations, BackwardOnly) {
  auto c = TemporalCorrelations::BackwardOnly(StochasticMatrix::Uniform(3));
  EXPECT_TRUE(c.has_backward());
  EXPECT_FALSE(c.has_forward());
  EXPECT_EQ(c.domain_size(), 3u);
  EXPECT_EQ(c.backward().size(), 3u);
}

TEST(TemporalCorrelations, ForwardOnly) {
  auto c = TemporalCorrelations::ForwardOnly(StochasticMatrix::Uniform(4));
  EXPECT_FALSE(c.has_backward());
  EXPECT_TRUE(c.has_forward());
  EXPECT_EQ(c.domain_size(), 4u);
}

TEST(TemporalCorrelations, BothValidatesDimensions) {
  auto ok = TemporalCorrelations::Both(StochasticMatrix::Uniform(3),
                                       StochasticMatrix::Uniform(3));
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->has_backward());
  EXPECT_TRUE(ok->has_forward());

  auto bad = TemporalCorrelations::Both(StochasticMatrix::Uniform(3),
                                        StochasticMatrix::Uniform(4));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(TemporalCorrelations, ToStringMentionsMatrices) {
  EXPECT_EQ(TemporalCorrelations::None().ToString(),
            "TemporalCorrelations{none}");
  auto c = TemporalCorrelations::BackwardOnly(StochasticMatrix::Uniform(2));
  EXPECT_NE(c.ToString().find("P^B"), std::string::npos);
}

TEST(AdversaryT, AggregatesTargetAndKnowledge) {
  AdversaryT adv{7, TemporalCorrelations::ForwardOnly(
                        StochasticMatrix::Uniform(2))};
  EXPECT_EQ(adv.target_user, 7u);
  EXPECT_TRUE(adv.knowledge.has_forward());
}

}  // namespace
}  // namespace tcdp
