// Unit tests for service/fleet_engine: agreement with the standalone
// TplAccountant, serial-vs-parallel determinism, cache accounting,
// late-joining users, and the population aggregates.

#include "service/fleet_engine.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "workload/generators.h"

namespace tcdp {
namespace {

StochasticMatrix Fig3Matrix() {
  return StochasticMatrix::FromRows({{0.8, 0.2}, {0.0, 1.0}});
}

TemporalCorrelations Fig3Both() {
  auto c = TemporalCorrelations::Both(Fig3Matrix(), Fig3Matrix());
  EXPECT_TRUE(c.ok());
  return std::move(c).value();
}

FleetEngine MakeEngine(std::size_t threads, bool cache,
                       std::size_t users, const TemporalCorrelations& corr) {
  FleetEngineOptions options;
  options.num_threads = threads;
  options.share_loss_cache = cache;
  FleetEngine engine(options);
  for (std::size_t u = 0; u < users; ++u) {
    engine.AddUser("user-" + std::to_string(u), corr);
  }
  return engine;
}

TEST(FleetEngine, RejectsBadEpsilon) {
  FleetEngine engine;
  engine.AddUser("u", Fig3Both());
  EXPECT_FALSE(engine.RecordRelease(0.0).ok());
  EXPECT_FALSE(engine.RecordRelease(-1.0).ok());
  EXPECT_EQ(engine.horizon(), 0u);
}

TEST(FleetEngine, MatchesStandaloneAccountant) {
  // The cached fleet path must reproduce the plain accountant's series
  // (grid alphas only shift values by ~1e-9 resolution; allow 1e-7).
  const std::vector<double> schedule = {0.1, 0.2, 0.05, 0.3, 0.1};
  TplAccountant reference(Fig3Both());
  for (double eps : schedule) ASSERT_TRUE(reference.RecordRelease(eps).ok());

  auto engine = MakeEngine(/*threads=*/1, /*cache=*/true, /*users=*/3,
                           Fig3Both());
  ASSERT_TRUE(engine.RecordReleases(schedule).ok());

  for (std::size_t u = 0; u < engine.num_users(); ++u) {
    const auto got = engine.user(u).TplSeries();
    const auto want = reference.TplSeries();
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i], want[i], 1e-7) << "user " << u << " t=" << i + 1;
    }
  }
}

TEST(FleetEngine, UncachedModeIsExactlyTheStandaloneAccountant) {
  const std::vector<double> schedule = {0.1, 0.2, 0.05};
  TplAccountant reference(Fig3Both());
  for (double eps : schedule) ASSERT_TRUE(reference.RecordRelease(eps).ok());

  auto engine = MakeEngine(/*threads=*/1, /*cache=*/false, /*users=*/2,
                           Fig3Both());
  ASSERT_TRUE(engine.RecordReleases(schedule).ok());
  EXPECT_EQ(engine.user(0).TplSeries(), reference.TplSeries());
}

TEST(FleetEngine, ParallelSeriesBitwiseIdenticalToSerial) {
  auto clickstream = ClickstreamModel(12);
  ASSERT_TRUE(clickstream.ok());
  auto corr = TemporalCorrelations::Both(*clickstream, *clickstream);
  ASSERT_TRUE(corr.ok());
  const std::vector<double> schedule(10, 0.1);

  auto serial = MakeEngine(/*threads=*/1, /*cache=*/true, /*users=*/64, *corr);
  auto parallel = MakeEngine(/*threads=*/4, /*cache=*/true, /*users=*/64,
                             *corr);
  ASSERT_TRUE(serial.RecordReleases(schedule).ok());
  ASSERT_TRUE(parallel.RecordReleases(schedule).ok());

  for (std::size_t u = 0; u < serial.num_users(); ++u) {
    EXPECT_EQ(serial.user(u).TplSeries(), parallel.user(u).TplSeries())
        << "user " << u;
    EXPECT_EQ(serial.user(u).BplSeries(), parallel.user(u).BplSeries())
        << "user " << u;
  }
  EXPECT_EQ(serial.OverallAlpha(), parallel.OverallAlpha());
}

TEST(FleetEngine, CacheHitMissAccountingOnUniformFleet) {
  // 50 users, one shared matrix: each new alpha is solved once (miss)
  // and served 49 times (hits). Backward and forward share the interned
  // matrix, and with a uniform schedule the FPL pass re-hits the same
  // buckets.
  auto engine = MakeEngine(/*threads=*/1, /*cache=*/true, /*users=*/50,
                           Fig3Both());
  ASSERT_TRUE(engine.RecordReleases(std::vector<double>(6, 0.1)).ok());
  (void)engine.OverallAlpha();  // forces the FPL backward pass
  const auto stats = engine.cache_stats();
  EXPECT_EQ(stats.distinct_matrices, 1u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  // BPL visits 5 distinct alphas; FPL hits the same buckets.
  EXPECT_EQ(stats.misses, 5u);
  EXPECT_GT(stats.HitRate(), 0.9);
}

TEST(FleetEngine, HeterogeneousMatricesStayIsolated) {
  FleetEngineOptions options;
  options.num_threads = 1;
  FleetEngine engine(options);
  engine.AddUser("a", Fig3Both());
  engine.AddUser("b", TemporalCorrelations::BackwardOnly(
                          StochasticMatrix::Identity(2)));
  engine.AddUser("c", TemporalCorrelations::None());
  ASSERT_TRUE(engine.RecordReleases({0.1, 0.1, 0.1}).ok());
  EXPECT_EQ(engine.cache_stats().distinct_matrices, 2u);
  // Identity correlation: BPL grows linearly; no-correlation user stays
  // flat at eps.
  EXPECT_NEAR(*engine.user(1).Bpl(3), 0.3, 1e-9);
  EXPECT_NEAR(*engine.user(2).Tpl(2), 0.1, 1e-12);
}

TEST(FleetEngine, LateJoinerAccruesOnlyTheSubScheduleAfterJoining) {
  // A user added mid-stream joins at the current horizon: the feed's
  // past releases never included them, so nothing is replayed and the
  // leakage series starts fresh.
  auto engine = MakeEngine(/*threads=*/1, /*cache=*/true, /*users=*/1,
                           Fig3Both());
  ASSERT_TRUE(engine.RecordReleases({0.1, 0.2}).ok());
  const std::size_t late = engine.AddUser("late", Fig3Both());
  EXPECT_EQ(engine.user(late).join_release(), 2u);
  EXPECT_EQ(engine.user(late).horizon(), 0u);
  ASSERT_TRUE(engine.RecordRelease(0.05).ok());
  EXPECT_EQ(engine.user(late).horizon(), 1u);
  EXPECT_DOUBLE_EQ(engine.user(late).UserLevelTpl(), 0.05);

  // The late joiner's series equals a fresh accountant over the
  // sub-schedule it actually saw.
  TplAccountant reference(Fig3Both());
  ASSERT_TRUE(reference.RecordRelease(0.05).ok());
  const auto got = engine.user(late).TplSeries();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_NEAR(got[0], reference.TplSeries()[0], 1e-7);
  // The original user keeps its longer history.
  EXPECT_EQ(engine.user(0).horizon(), 3u);
  EXPECT_DOUBLE_EQ(engine.user(0).UserLevelTpl(), 0.35);
}

TEST(FleetEngine, SparseParticipationMatchesReferenceWithSkips) {
  // Heterogeneous schedule: user 0 sees every release, user 1 only the
  // 1st and 3rd. The bank must match reference accountants driven with
  // RecordRelease/RecordSkip through an identically quantized cache —
  // bitwise.
  FleetEngineOptions options;
  options.num_threads = 1;
  FleetEngine engine(options);
  engine.AddUser("always", Fig3Both());
  engine.AddUser("sometimes", Fig3Both());
  ASSERT_TRUE(engine.RecordRelease(0.1, {0, 1}).ok());
  ASSERT_TRUE(engine.RecordRelease(0.2, {0}).ok());
  ASSERT_TRUE(engine.RecordRelease(0.15, {0, 1}).ok());

  TemporalLossCache cache(options.cache);
  auto make_reference = [&cache]() {
    auto corr = Fig3Both();
    auto b = cache.Intern(corr.backward());
    auto f = cache.Intern(corr.forward());
    return TplAccountant(std::move(corr), std::move(b), std::move(f));
  };
  TplAccountant always = make_reference();
  ASSERT_TRUE(always.RecordRelease(0.1).ok());
  ASSERT_TRUE(always.RecordRelease(0.2).ok());
  ASSERT_TRUE(always.RecordRelease(0.15).ok());
  TplAccountant sometimes = make_reference();
  ASSERT_TRUE(sometimes.RecordRelease(0.1).ok());
  ASSERT_TRUE(sometimes.RecordSkip().ok());
  ASSERT_TRUE(sometimes.RecordRelease(0.15).ok());

  EXPECT_EQ(engine.user(0).BplSeries(), always.BplSeries());
  EXPECT_EQ(engine.user(0).FplSeries(), always.FplSeries());
  EXPECT_EQ(engine.user(0).TplSeries(), always.TplSeries());
  EXPECT_EQ(engine.user(1).BplSeries(), sometimes.BplSeries());
  EXPECT_EQ(engine.user(1).FplSeries(), sometimes.FplSeries());
  EXPECT_EQ(engine.user(1).TplSeries(), sometimes.TplSeries());
  EXPECT_DOUBLE_EQ(engine.user(1).UserLevelTpl(), 0.25);
  // The absent release still advanced the FPL horizon: the skipped
  // step's leakage is nonzero because later releases back-propagate.
  EXPECT_GT(*engine.user(1).Fpl(2), 0.0);
}

TEST(FleetEngine, SparseParticipationRejectsBadIndices) {
  FleetEngine engine;
  engine.AddUser("only", Fig3Both());
  EXPECT_FALSE(engine.RecordRelease(0.1, {1}).ok());
  EXPECT_EQ(engine.horizon(), 0u);
}

TEST(FleetEngine, CohortsDeduplicateByMatrixPairContents) {
  FleetEngineOptions options;
  options.num_threads = 1;
  FleetEngine engine(options);
  engine.AddUser("a", Fig3Both());
  engine.AddUser("b", Fig3Both());  // same pair contents -> same cohort
  engine.AddUser("c", TemporalCorrelations::BackwardOnly(Fig3Matrix()));
  engine.AddUser("d", TemporalCorrelations::ForwardOnly(Fig3Matrix()));
  engine.AddUser("e", TemporalCorrelations::None());
  EXPECT_EQ(engine.num_cohorts(), 4u);
  // Backward-only and forward-only over the same matrix must NOT share
  // a cohort (their recurrences differ) even though the interned loss
  // table is shared underneath.
  EXPECT_EQ(engine.cache_stats().distinct_matrices, 1u);
}

TEST(FleetEngine, PopulationAggregates) {
  FleetEngineOptions options;
  options.num_threads = 2;
  FleetEngine engine(options);
  engine.AddUser("correlated", Fig3Both());
  engine.AddUser("uncorrelated", TemporalCorrelations::None());
  ASSERT_TRUE(engine.RecordReleases(std::vector<double>(4, 0.1)).ok());

  const auto alphas = engine.PersonalizedAlphas();
  ASSERT_EQ(alphas.size(), 2u);
  EXPECT_GT(alphas[0], alphas[1]);  // correlation amplifies leakage
  EXPECT_NEAR(alphas[1], 0.1, 1e-12);
  EXPECT_EQ(engine.OverallAlpha(), std::max(alphas[0], alphas[1]));

  auto at2 = engine.MaxTplAt(2);
  ASSERT_TRUE(at2.ok());
  EXPECT_EQ(*at2, *engine.user(0).Tpl(2));
  EXPECT_FALSE(engine.MaxTplAt(0).ok());
  EXPECT_FALSE(engine.MaxTplAt(5).ok());
}

TEST(FleetEngine, MaxTplAtWithoutUsersFails) {
  FleetEngine engine;
  EXPECT_FALSE(engine.MaxTplAt(1).ok());
}

TEST(FleetEngine, StatsCountUserReleases) {
  auto engine = MakeEngine(/*threads=*/1, /*cache=*/true, /*users=*/10,
                           Fig3Both());
  ASSERT_TRUE(engine.RecordReleases(std::vector<double>(3, 0.1)).ok());
  EXPECT_EQ(engine.stats().user_releases, 30u);
  EXPECT_GE(engine.stats().record_seconds, 0.0);
}

}  // namespace
}  // namespace tcdp
