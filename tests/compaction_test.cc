// WAL log compaction (ISSUE 5 tentpole): after a snapshot, a shard's
// WAL is rewritten to manifest + kCompaction record + the suffix past
// the snapshot's applied_records horizon, with the same crash-safety
// contract as the rest of the durability layer:
//
//   * the rewrite is tmp+rename: killing it at EVERY byte offset of
//     the tmp file recovers bitwise-identically from the old log;
//   * a recovered compacted service equals the uncompacted recovery of
//     the same history down to the exported accountant blobs;
//   * compacting twice is byte-for-byte compacting once;
//   * records appended after a compaction tear like any others — every
//     truncation offset of the compacted WAL's suffix recovers a
//     consistent prefix;
//   * a compacted shard whose snapshot is gone fails recovery loudly
//     (the prefix lives only in the snapshot — resurrecting partial
//     state would be silent data loss).

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "server/compaction.h"
#include "server/event_log.h"
#include "server/records.h"
#include "server/sharded_service.h"
#include "server/snapshot.h"

namespace tcdp {
namespace server {
namespace {

namespace fs = std::filesystem;

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void CopyDir(const std::string& from, const std::string& to) {
  fs::remove_all(to);
  fs::create_directories(to);
  for (const auto& entry : fs::directory_iterator(from)) {
    fs::copy_file(entry.path(), to + "/" + entry.path().filename().string());
  }
}

struct UserTruth {
  std::size_t join = 0;
  std::vector<double> epsilons;
  std::vector<double> tpl_series;
  std::string blob;  ///< exported tcdp-accountant-v2 image
};

using TruthMap = std::map<std::string, UserTruth>;

TruthMap SnapshotTruth(ShardedReleaseService* service) {
  TruthMap truth;
  auto alphas = service->PersonalizedAlphas();
  EXPECT_TRUE(alphas.ok());
  if (!alphas.ok()) return truth;
  for (const auto& [name, alpha] : *alphas) {
    (void)alpha;
    auto report = service->Query(name);
    auto blob = service->ExportUser(name);
    EXPECT_TRUE(report.ok());
    EXPECT_TRUE(blob.ok());
    truth[name] = UserTruth{report->join_release, report->epsilons,
                            report->tpl_series,
                            blob.ok() ? *blob : std::string()};
  }
  return truth;
}

/// Seeded workload: joins, sparse per-user releases, ReleaseAlls, and a
/// mid-stream service-level Snapshot so compaction has an anchor with a
/// real suffix behind it.
TruthMap RunWorkload(const std::string& dir, ShardedServiceOptions options,
                     std::uint64_t seed, int steps = 70,
                     int snapshot_at = 40) {
  TruthMap truth;
  auto service = ShardedReleaseService::Create(dir, options);
  EXPECT_TRUE(service.ok()) << service.status();
  if (!service.ok()) return truth;
  ShardedReleaseService& s = **service;
  Rng rng(seed);
  std::vector<std::string> joined;
  const StochasticMatrix m0 =
      StochasticMatrix::FromRows({{0.8, 0.2}, {0.0, 1.0}});
  const StochasticMatrix m1 =
      StochasticMatrix::FromRows({{0.6, 0.4}, {0.3, 0.7}});
  for (int i = 0; i < steps; ++i) {
    if (i == snapshot_at) EXPECT_TRUE(s.Snapshot().ok());
    if (joined.size() < 5 && (joined.empty() || rng.Uniform() < 0.12)) {
      const std::string name = "u" + std::to_string(joined.size());
      const StochasticMatrix& m = joined.size() % 2 == 0 ? m0 : m1;
      EXPECT_TRUE(
          s.Join(name, TemporalCorrelations::Both(m, m).value()).ok());
      joined.push_back(name);
    } else if (rng.Uniform() < 0.1) {
      EXPECT_TRUE(s.ReleaseAll(0.1).ok());
    } else {
      const auto& name = joined[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(joined.size()) - 1))];
      EXPECT_TRUE(s.Release(name, rng.Uniform() < 0.5 ? 0.05 : 0.2).ok());
    }
  }
  EXPECT_TRUE(s.Flush().ok());
  truth = SnapshotTruth(service->get());
  EXPECT_TRUE(s.Close().ok());
  return truth;
}

/// Recovered state must equal \p truth exactly: same users, joins,
/// epsilon sequences, TPL series, and exported accountant blobs.
void CheckRecoveredEqualsTruth(ShardedReleaseService* recovered,
                               const TruthMap& truth,
                               const std::string& context) {
  auto alphas = recovered->PersonalizedAlphas();
  ASSERT_TRUE(alphas.ok()) << context;
  ASSERT_EQ(alphas->size(), truth.size()) << context;
  for (const auto& [name, expected] : truth) {
    auto report = recovered->Query(name);
    ASSERT_TRUE(report.ok()) << context << " user " << name;
    ASSERT_EQ(report->join_release, expected.join)
        << context << " user " << name;
    ASSERT_EQ(report->epsilons, expected.epsilons)
        << context << " user " << name;
    ASSERT_EQ(report->tpl_series, expected.tpl_series)
        << context << " user " << name;
    auto blob = recovered->ExportUser(name);
    ASSERT_TRUE(blob.ok()) << context << " user " << name;
    ASSERT_EQ(*blob, expected.blob) << context << " user " << name;
  }
}

class CompactionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pristine_ = "/tmp/tcdp_compact_pristine";
    work_ = "/tmp/tcdp_compact_work";
    fs::remove_all(pristine_);
    fs::remove_all(work_);
  }
  void TearDown() override {
    fs::remove_all(pristine_);
    fs::remove_all(work_);
  }

  std::string pristine_;
  std::string work_;
};

TEST_F(CompactionTest, CompactionBoundsDiskAndRecoversBitwise) {
  ShardedServiceOptions options;
  options.num_shards = 2;
  options.batch_window = 3;
  const TruthMap truth = RunWorkload(pristine_, options, 31337);
  ASSERT_FALSE(truth.empty());

  CopyDir(pristine_, work_);
  std::vector<std::uint64_t> bytes_before;
  {
    auto service = ShardedReleaseService::Recover(work_);
    ASSERT_TRUE(service.ok()) << service.status();
    for (std::size_t s = 0; s < options.num_shards; ++s) {
      bytes_before.push_back((*service)->shard_stats(s).wal_bytes);
    }
    ASSERT_TRUE((*service)->Compact().ok());
    for (std::size_t s = 0; s < options.num_shards; ++s) {
      const ShardStats stats = (*service)->shard_stats(s);
      // Bounded: manifest + compaction record + post-snapshot suffix.
      EXPECT_LT(stats.wal_bytes, bytes_before[s]) << "shard " << s;
      EXPECT_EQ(stats.compactions, 1u) << "shard " << s;
      EXPECT_LT(stats.wal_physical_records, stats.wal_records)
          << "shard " << s;
      // The WAL on disk parses as manifest + kCompaction + add/release.
      auto log = ReadEventLog(work_ + "/shard-" + std::to_string(s) +
                              ".wal");
      ASSERT_TRUE(log.ok());
      ASSERT_TRUE(log->clean);
      ASSERT_GE(log->records.size(), 2u);
      EXPECT_EQ(log->records[0].type, EventType::kManifest);
      EXPECT_EQ(log->records[1].type, EventType::kCompaction);
    }
    // Accounting state is untouched by the rewrite.
    CheckRecoveredEqualsTruth(service->get(), truth, "post-compact live");
    ASSERT_TRUE((*service)->Close().ok());
  }
  // A fresh recovery of the compacted logs equals the truth too.
  auto again = ShardedReleaseService::Recover(work_);
  ASSERT_TRUE(again.ok()) << again.status();
  CheckRecoveredEqualsTruth(again->get(), truth, "compacted recovery");
  ASSERT_TRUE((*again)->Close().ok());
}

TEST_F(CompactionTest, CompactTwiceIsByteIdenticalToOnce) {
  ShardedServiceOptions options;
  options.num_shards = 2;
  options.batch_window = 4;
  (void)RunWorkload(pristine_, options, 777);

  CopyDir(pristine_, work_);
  {
    auto service = ShardedReleaseService::Recover(work_);
    ASSERT_TRUE(service.ok()) << service.status();
    ASSERT_TRUE((*service)->Compact().ok());
    ASSERT_TRUE((*service)->Close().ok());
  }
  std::vector<std::string> once_wal;
  std::vector<std::string> once_snap;
  for (std::size_t s = 0; s < options.num_shards; ++s) {
    once_wal.push_back(
        ReadFileBytes(work_ + "/shard-" + std::to_string(s) + ".wal"));
    once_snap.push_back(
        ReadFileBytes(work_ + "/shard-" + std::to_string(s) + ".snap"));
  }
  {
    auto service = ShardedReleaseService::Recover(work_);
    ASSERT_TRUE(service.ok()) << service.status();
    ASSERT_TRUE((*service)->Compact().ok());
    ASSERT_TRUE((*service)->Close().ok());
  }
  for (std::size_t s = 0; s < options.num_shards; ++s) {
    EXPECT_EQ(
        ReadFileBytes(work_ + "/shard-" + std::to_string(s) + ".wal"),
        once_wal[s])
        << "shard " << s << " WAL changed on recompaction";
    EXPECT_EQ(
        ReadFileBytes(work_ + "/shard-" + std::to_string(s) + ".snap"),
        once_snap[s])
        << "shard " << s << " snapshot changed on recompaction";
  }
}

TEST_F(CompactionTest, KillingTheRewriteAtEveryByteOffsetLosesNothing) {
  // The rewrite's only externally visible intermediate state is the
  // growing tmp file (the WAL itself is replaced atomically by
  // rename). Simulate a crash at every byte offset: the directory
  // holds the intact old log plus a truncated
  // shard-0.wal.compact.tmp; recovery must ignore/remove the stray tmp
  // and reproduce the uninterrupted truth bitwise.
  ShardedServiceOptions options;
  options.num_shards = 2;
  options.batch_window = 3;
  const TruthMap truth = RunWorkload(pristine_, options, 424242);
  ASSERT_FALSE(truth.empty());

  // Produce the bytes the rewrite would have written, by compacting a
  // scratch copy and reading the result.
  CopyDir(pristine_, work_);
  {
    auto service = ShardedReleaseService::Recover(work_);
    ASSERT_TRUE(service.ok()) << service.status();
    ASSERT_TRUE((*service)->Compact().ok());
    ASSERT_TRUE((*service)->Close().ok());
  }
  const std::string compacted = ReadFileBytes(work_ + "/shard-0.wal");
  ASSERT_GT(compacted.size(), 20u);

  for (std::size_t cut = 0; cut <= compacted.size(); ++cut) {
    CopyDir(pristine_, work_);
    WriteFileBytes(work_ + "/shard-0.wal.compact.tmp",
                   compacted.substr(0, cut));
    auto recovered = ShardedReleaseService::Recover(work_);
    ASSERT_TRUE(recovered.ok())
        << "tmp cut at " << cut << ": " << recovered.status();
    CheckRecoveredEqualsTruth(recovered->get(), truth,
                              "tmp cut " + std::to_string(cut));
    if (testing::Test::HasFatalFailure()) {
      FAIL() << "first failing tmp truncation offset: " << cut;
    }
    EXPECT_FALSE(fs::exists(work_ + "/shard-0.wal.compact.tmp"))
        << "stray rewrite tmp survived recovery (cut " << cut << ")";
    ASSERT_TRUE((*recovered)->Close().ok());
  }

  // And the instant after the rename: the compacted log in place, the
  // tmp gone — same truth.
  CopyDir(pristine_, work_);
  WriteFileBytes(work_ + "/shard-0.wal", compacted);
  auto recovered = ShardedReleaseService::Recover(work_);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  CheckRecoveredEqualsTruth(recovered->get(), truth, "post-rename");
  ASSERT_TRUE((*recovered)->Close().ok());
}

TEST_F(CompactionTest, PostCompactionAppendsTearLikeAnyOthers) {
  // Continue serving after a compaction, then truncate the WAL at
  // every byte offset past the compacted prefix: recovery must come
  // back to a consistent prefix of the continued run every time.
  ShardedServiceOptions options;
  options.num_shards = 1;
  options.batch_window = 2;
  (void)RunWorkload(pristine_, options, 99, /*steps=*/30,
                    /*snapshot_at=*/20);
  std::uint64_t compacted_bytes = 0;
  TruthMap continued_truth;
  {
    auto service = ShardedReleaseService::Recover(pristine_);
    ASSERT_TRUE(service.ok()) << service.status();
    ASSERT_TRUE((*service)->Compact().ok());
    compacted_bytes = (*service)->shard_stats(0).wal_bytes;
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE((*service)->ReleaseAll(0.05 + 0.01 * i).ok());
    }
    ASSERT_TRUE((*service)->Flush().ok());
    continued_truth = SnapshotTruth(service->get());
    ASSERT_TRUE((*service)->Close().ok());
  }
  const std::string full = ReadFileBytes(pristine_ + "/shard-0.wal");
  ASSERT_GT(full.size(), compacted_bytes);

  const std::size_t horizon_full =
      continued_truth.begin()->second.tpl_series.size() +
      continued_truth.begin()->second.join;
  for (std::size_t cut = static_cast<std::size_t>(compacted_bytes);
       cut <= full.size(); ++cut) {
    CopyDir(pristine_, work_);
    WriteFileBytes(work_ + "/shard-0.wal", full.substr(0, cut));
    auto recovered = ShardedReleaseService::Recover(work_);
    ASSERT_TRUE(recovered.ok())
        << "cut at " << cut << ": " << recovered.status();
    const std::size_t horizon = (*recovered)->horizon();
    ASSERT_LE(horizon, horizon_full) << "cut " << cut;
    for (const auto& [name, expected] : continued_truth) {
      auto report = (*recovered)->Query(name);
      ASSERT_TRUE(report.ok()) << "cut " << cut << " user " << name;
      // The recovered spend sequence is a bitwise prefix of the
      // continued run's.
      ASSERT_EQ(report->epsilons.size(), horizon - expected.join)
          << "cut " << cut << " user " << name;
      for (std::size_t i = 0; i < report->epsilons.size(); ++i) {
        ASSERT_EQ(report->epsilons[i], expected.epsilons[i])
            << "cut " << cut << " user " << name << " step " << i;
      }
    }
    if (testing::Test::HasFatalFailure()) {
      FAIL() << "first failing truncation offset: " << cut;
    }
    ASSERT_TRUE((*recovered)->Close().ok());
  }
}

TEST_F(CompactionTest, AnchorOutlivesSnapshotOverwritesAndDeletes) {
  ShardedServiceOptions options;
  options.num_shards = 2;
  options.batch_window = 3;
  const TruthMap truth = RunWorkload(pristine_, options, 5);
  {
    auto service = ShardedReleaseService::Recover(pristine_);
    ASSERT_TRUE(service.ok()) << service.status();
    ASSERT_TRUE((*service)->Compact().ok());
    ASSERT_TRUE((*service)->Close().ok());
  }
  ASSERT_TRUE(fs::exists(pristine_ + "/shard-0.snap.anchor"));

  // Losing the snapshot alone is survivable: the anchor copy preserved
  // at compaction time sits at exactly the base and recovery falls
  // back to it.
  CopyDir(pristine_, work_);
  fs::remove(work_ + "/shard-0.snap");
  {
    auto recovered = ShardedReleaseService::Recover(work_);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    CheckRecoveredEqualsTruth(recovered->get(), truth, "anchor fallback");
    ASSERT_TRUE((*recovered)->Close().ok());
  }

  // Losing BOTH copies of the compacted prefix must fail loudly — the
  // data exists nowhere else, and resurrecting partial state would be
  // silent data loss.
  CopyDir(pristine_, work_);
  fs::remove(work_ + "/shard-0.snap");
  fs::remove(work_ + "/shard-0.snap.anchor");
  auto recovered = ShardedReleaseService::Recover(work_);
  ASSERT_FALSE(recovered.ok())
      << "recovery of a compacted shard without snapshot or anchor must "
         "fail";
  EXPECT_EQ(recovered.status().code(), StatusCode::kFailedPrecondition)
      << recovered.status();
  EXPECT_NE(recovered.status().message().find("compacted"),
            std::string::npos)
      << recovered.status();
}

TEST_F(CompactionTest, NewerSnapshotBeyondCommonHorizonFallsBackToAnchor) {
  // The anchor's reason for existing: after a compaction at base H0, a
  // later snapshot overwrites shard-<i>.snap at a horizon H2 that may
  // not be durable on every shard. Crash with another shard's durable
  // log at G in [H0, H2): the newer snapshot does not fit under the
  // common horizon and recovery must fall back to the anchor at H0 +
  // WAL suffix replay, not fail (and not resurrect H2 state).
  ShardedServiceOptions options;
  options.num_shards = 2;
  options.batch_window = 2;
  const TruthMap truth = RunWorkload(pristine_, options, 2024);
  {
    auto service = ShardedReleaseService::Recover(pristine_);
    ASSERT_TRUE(service.ok()) << service.status();
    ASSERT_TRUE((*service)->Compact().ok());
    // More committed traffic past the compaction base...
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE((*service)->ReleaseAll(0.05).ok());
    }
    // ...then a NEW snapshot on every shard (overwriting the one the
    // compaction anchored).
    ASSERT_TRUE((*service)->Snapshot().ok());
    ASSERT_TRUE((*service)->Close().ok());
  }
  // Simulate the lagging shard: cut shard 1's WAL roughly in half so
  // the common horizon lands between the compaction base and the new
  // snapshot's horizon.
  CopyDir(pristine_, work_);
  const std::string full = ReadFileBytes(work_ + "/shard-1.wal");
  auto scan = ReadEventLog(work_ + "/shard-1.wal");
  ASSERT_TRUE(scan.ok());
  const std::size_t cut_records = scan->records.size() / 2;
  ASSERT_GT(cut_records, 2u);
  WriteFileBytes(
      work_ + "/shard-1.wal",
      full.substr(0, static_cast<std::size_t>(
                         scan->record_end[cut_records - 1])));
  auto recovered = ShardedReleaseService::Recover(work_);
  ASSERT_TRUE(recovered.ok())
      << "anchor fallback should have aligned the shards: "
      << recovered.status();
  // Every recovered series must be a bitwise prefix of the continued
  // truth is covered elsewhere; here assert the load-bearing parts:
  // the compacted shard came back (from its anchor) and the horizon
  // sits at the lagging shard's durable release count.
  auto alphas = (*recovered)->PersonalizedAlphas();
  ASSERT_TRUE(alphas.ok());
  EXPECT_EQ(alphas->size(), truth.size());
  EXPECT_LT((*recovered)->horizon(),
            truth.begin()->second.epsilons.size() +
                truth.begin()->second.join + 7)
      << "horizon should have been cut below the new snapshot's";
  ASSERT_TRUE((*recovered)->Close().ok());
}

TEST_F(CompactionTest, AutoCompactAfterSnapshotAndThresholdsEngage) {
  // after_snapshot: every service-level Snapshot() leaves the WAL at
  // its floor (manifest + compaction record only).
  ShardedServiceOptions options;
  options.num_shards = 2;
  options.batch_window = 2;
  options.compaction.after_snapshot = true;
  {
    auto service = ShardedReleaseService::Create(pristine_, options);
    ASSERT_TRUE(service.ok()) << service.status();
    const StochasticMatrix m =
        StochasticMatrix::FromRows({{0.7, 0.3}, {0.2, 0.8}});
    ASSERT_TRUE(
        (*service)->Join("a", TemporalCorrelations::Both(m, m).value()).ok());
    ASSERT_TRUE(
        (*service)->Join("b", TemporalCorrelations::Both(m, m).value()).ok());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE((*service)->ReleaseAll(0.1).ok());
    }
    ASSERT_TRUE((*service)->Snapshot().ok());
    for (std::size_t s = 0; s < options.num_shards; ++s) {
      const ShardStats stats = (*service)->shard_stats(s);
      EXPECT_EQ(stats.compactions, 1u) << "shard " << s;
      EXPECT_EQ(stats.wal_physical_records, 2u)
          << "shard " << s << ": snapshot anchor should cover everything";
    }
    ASSERT_TRUE((*service)->Close().ok());
  }
  fs::remove_all(pristine_);

  // Thresholds: a tiny max_wal_records ceiling forces compactions as
  // traffic flows, keeping the physical WAL bounded while logical
  // history grows past it. The MANIFEST round-trips the policy, so the
  // recovered service keeps compacting.
  options.compaction.after_snapshot = false;
  options.compaction.max_wal_records = 12;
  TruthMap truth;
  {
    auto service = ShardedReleaseService::Create(pristine_, options);
    ASSERT_TRUE(service.ok()) << service.status();
    const StochasticMatrix m =
        StochasticMatrix::FromRows({{0.7, 0.3}, {0.2, 0.8}});
    ASSERT_TRUE(
        (*service)->Join("a", TemporalCorrelations::Both(m, m).value()).ok());
    ASSERT_TRUE(
        (*service)->Join("b", TemporalCorrelations::Both(m, m).value()).ok());
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE((*service)->ReleaseAll(0.1).ok());
    }
    ASSERT_TRUE((*service)->Flush().ok());
    std::uint64_t compactions = 0;
    for (std::size_t s = 0; s < options.num_shards; ++s) {
      const ShardStats stats = (*service)->shard_stats(s);
      compactions += stats.compactions;
      EXPECT_GT(stats.wal_records, options.compaction.max_wal_records)
          << "shard " << s << ": logical history should outgrow the cap";
      EXPECT_LE(stats.wal_physical_records,
                options.compaction.max_wal_records + 2 * options.batch_window)
          << "shard " << s << ": physical WAL should stay near the cap";
    }
    EXPECT_GT(compactions, 0u) << "threshold never engaged";
    truth = SnapshotTruth(service->get());
    ASSERT_TRUE((*service)->Close().ok());
  }
  auto recovered = ShardedReleaseService::Recover(pristine_);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  CheckRecoveredEqualsTruth(recovered->get(), truth, "threshold recovery");
  ASSERT_TRUE((*recovered)->Close().ok());
}

}  // namespace
}  // namespace server
}  // namespace tcdp
