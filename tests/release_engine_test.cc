// Unit tests for release/release_engine.

#include "release/release_engine.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

namespace tcdp {
namespace {

TimeSeriesDatabase MakeSeries() {
  auto series = TimeSeriesDatabase::FromTrajectories(
      {{0, 1, 1}, {1, 1, 0}, {0, 0, 0}}, 2);
  EXPECT_TRUE(series.ok());
  return std::move(series).value();
}

TEST(ReleaseEngine, ReleaseRecordsTrueAndNoisyValues) {
  Rng rng(30);
  ReleaseEngine engine(std::make_unique<HistogramQuery>(), &rng);
  auto db = Database::Create({0, 1, 0}, 2);
  ASSERT_TRUE(db.ok());
  auto r = engine.Release(*db, 1.0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->time, 1u);
  EXPECT_EQ(r->true_values, (std::vector<double>{2, 1}));
  EXPECT_EQ(r->noisy_values.size(), 2u);
  EXPECT_DOUBLE_EQ(r->epsilon, 1.0);
}

TEST(ReleaseEngine, ReleaseRejectsBadEpsilon) {
  Rng rng(31);
  ReleaseEngine engine(std::make_unique<HistogramQuery>(), &rng);
  auto db = Database::Create({0}, 2);
  ASSERT_TRUE(db.ok());
  EXPECT_FALSE(engine.Release(*db, 0.0).ok());
}

TEST(ReleaseEngine, TimeAdvancesPerRelease) {
  Rng rng(32);
  ReleaseEngine engine(std::make_unique<HistogramQuery>(), &rng);
  auto db = Database::Create({0}, 2);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(engine.Release(*db, 0.5)->time, 1u);
  EXPECT_EQ(engine.Release(*db, 0.5)->time, 2u);
  EXPECT_EQ(engine.ledger().num_releases(), 2u);
}

TEST(ReleaseEngine, BudgetCapStopsReleases) {
  Rng rng(33);
  ReleaseEngine engine(std::make_unique<HistogramQuery>(), &rng,
                       /*total_budget=*/1.0);
  auto db = Database::Create({0}, 2);
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(engine.Release(*db, 0.6).ok());
  auto over = engine.Release(*db, 0.6);
  EXPECT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kResourceExhausted);
}

TEST(ReleaseEngine, ReleaseSeriesMatchesSchedule) {
  Rng rng(34);
  ReleaseEngine engine(std::make_unique<HistogramQuery>(), &rng);
  auto out = engine.ReleaseSeries(MakeSeries(), {0.1, 0.2, 0.3});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 3u);
  EXPECT_DOUBLE_EQ((*out)[0].epsilon, 0.1);
  EXPECT_DOUBLE_EQ((*out)[2].epsilon, 0.3);
  // Snapshot t=2 holds column {1,1,0}: histogram (1, 2).
  EXPECT_EQ((*out)[1].true_values, (std::vector<double>{1, 2}));
}

TEST(ReleaseEngine, ReleaseSeriesValidatesLength) {
  Rng rng(35);
  ReleaseEngine engine(std::make_unique<HistogramQuery>(), &rng);
  EXPECT_FALSE(engine.ReleaseSeries(MakeSeries(), {0.1}).ok());
}

TEST(ReleaseEngine, UniformSeriesConvenience) {
  Rng rng(36);
  ReleaseEngine engine(std::make_unique<HistogramQuery>(), &rng);
  auto out = engine.ReleaseSeriesUniform(MakeSeries(), 0.5);
  ASSERT_TRUE(out.ok());
  for (const auto& r : *out) EXPECT_DOUBLE_EQ(r.epsilon, 0.5);
}

TEST(ReleaseEngine, NoiseMagnitudeScalesWithEpsilon) {
  // Smaller epsilon -> bigger noise, on average.
  auto measure = [](double eps) {
    Rng rng(37);
    ReleaseEngine engine(std::make_unique<HistogramQuery>(), &rng);
    auto db = Database::Create(std::vector<std::size_t>(100, 0), 2);
    EXPECT_TRUE(db.ok());
    double acc = 0.0;
    const int kTrials = 3000;
    for (int i = 0; i < kTrials; ++i) {
      auto r = engine.Release(*db, eps);
      EXPECT_TRUE(r.ok());
      acc += std::fabs(r->noisy_values[0] - r->true_values[0]);
    }
    return acc / kTrials;
  };
  const double noise_tight = measure(10.0);
  const double noise_loose = measure(0.1);
  EXPECT_NEAR(noise_tight, 0.1, 0.05);
  EXPECT_NEAR(noise_loose, 10.0, 1.0);
}

TEST(ReleaseEngine, GeometricNoiseKeepsCountsIntegral) {
  Rng rng(38);
  ReleaseEngine engine(std::make_unique<HistogramQuery>(), &rng,
                       std::numeric_limits<double>::infinity(),
                       NoiseKind::kGeometric);
  auto db = Database::Create({0, 0, 1, 1, 1}, 2);
  ASSERT_TRUE(db.ok());
  for (int trial = 0; trial < 50; ++trial) {
    auto r = engine.Release(*db, 0.8);
    ASSERT_TRUE(r.ok());
    for (double v : r->noisy_values) {
      EXPECT_DOUBLE_EQ(v, std::round(v)) << "non-integer count released";
    }
  }
  EXPECT_EQ(engine.ledger().num_releases(), 50u);
}

TEST(ReleaseEngine, GeometricRequiresIntegralSensitivity) {
  // A query with fractional sensitivity cannot use geometric noise.
  class HalfQuery : public Query {
   public:
    std::vector<double> Evaluate(const Database& db) const override {
      return {static_cast<double>(db.num_users()) / 2.0};
    }
    std::size_t OutputSize(std::size_t) const override { return 1; }
    double Sensitivity() const override { return 0.5; }
    std::string name() const override { return "half"; }
  };
  Rng rng(39);
  ReleaseEngine engine(std::make_unique<HalfQuery>(), &rng,
                       std::numeric_limits<double>::infinity(),
                       NoiseKind::kGeometric);
  auto db = Database::Create({0}, 2);
  ASSERT_TRUE(db.ok());
  auto r = engine.Release(*db, 1.0);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  // The failed release must not have spent budget.
  EXPECT_EQ(engine.ledger().num_releases(), 0u);
}

TEST(Metrics, MeanAbsoluteErrorOverReleases) {
  NoisyRelease a{1, 1.0, {1.0, 2.0}, {1.5, 2.0}};
  NoisyRelease b{2, 1.0, {0.0}, {-1.0}};
  EXPECT_NEAR(MeanAbsoluteError({a, b}), (0.5 + 0.0 + 1.0) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({}), 0.0);
}

TEST(Metrics, ExpectedAbsNoiseIsMeanOfScales) {
  EXPECT_NEAR(ExpectedAbsNoise({0.5, 1.0}, 1.0), (2.0 + 1.0) / 2.0, 1e-12);
  EXPECT_NEAR(ExpectedAbsNoise({0.5}, 2.0), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(ExpectedAbsNoise({}, 1.0), 0.0);
}

}  // namespace
}  // namespace tcdp
