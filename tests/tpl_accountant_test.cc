// Unit tests for core/tpl_accountant: the BPL/FPL/TPL recurrences,
// pinned to the paper's full Figure 3 series, plus Theorem 2 composition
// and Corollary 1.

#include "core/tpl_accountant.h"

#include <gtest/gtest.h>

#include <string>

#include "core/loss_cache.h"

namespace tcdp {
namespace {

StochasticMatrix Fig3Matrix() {
  return StochasticMatrix::FromRows({{0.8, 0.2}, {0.0, 1.0}});
}

TemporalCorrelations Fig3Both() {
  auto c = TemporalCorrelations::Both(Fig3Matrix(), Fig3Matrix());
  EXPECT_TRUE(c.ok());
  return std::move(c).value();
}

TEST(TplAccountant, RejectsBadEpsilon) {
  TplAccountant acc(TemporalCorrelations::None());
  EXPECT_FALSE(acc.RecordRelease(0.0).ok());
  EXPECT_FALSE(acc.RecordRelease(-0.1).ok());
}

TEST(TplAccountant, EmptyAccountantBehaves) {
  TplAccountant acc(Fig3Both());
  EXPECT_EQ(acc.horizon(), 0u);
  EXPECT_DOUBLE_EQ(acc.MaxTpl(), 0.0);
  EXPECT_FALSE(acc.Bpl(1).ok());
}

TEST(TplAccountant, NoCorrelationCollapsesToEpsilon) {
  TplAccountant acc(TemporalCorrelations::None());
  ASSERT_TRUE(acc.RecordUniformReleases(0.3, 5).ok());
  for (std::size_t t = 1; t <= 5; ++t) {
    EXPECT_NEAR(*acc.Bpl(t), 0.3, 1e-12);
    EXPECT_NEAR(*acc.Fpl(t), 0.3, 1e-12);
    EXPECT_NEAR(*acc.Tpl(t), 0.3, 1e-12);
  }
}

// Figure 3(a)(i)/(b)(i): strongest correlation, eps=0.1 -> BPL grows
// linearly 0.1, 0.2, ..., 1.0 and FPL mirrors it backward.
TEST(TplAccountant, StrongestCorrelationLinearGrowth) {
  auto both = TemporalCorrelations::Both(StochasticMatrix::Identity(2),
                                         StochasticMatrix::Identity(2));
  ASSERT_TRUE(both.ok());
  TplAccountant acc(*both);
  ASSERT_TRUE(acc.RecordUniformReleases(0.1, 10).ok());
  for (std::size_t t = 1; t <= 10; ++t) {
    EXPECT_NEAR(*acc.Bpl(t), 0.1 * t, 1e-9) << "t=" << t;
    EXPECT_NEAR(*acc.Fpl(t), 0.1 * (11 - t), 1e-9) << "t=" << t;
    // TPL_t = 0.1 t + 0.1 (11-t) - 0.1 = 1.0 everywhere (Figure 3(c)(i)).
    EXPECT_NEAR(*acc.Tpl(t), 1.0, 1e-9) << "t=" << t;
  }
}

// Figure 3(a)(ii): the printed BPL series for P^B = (0.8 0.2; 0 1).
TEST(TplAccountant, Figure3BplSeries) {
  TplAccountant acc(TemporalCorrelations::BackwardOnly(Fig3Matrix()));
  ASSERT_TRUE(acc.RecordUniformReleases(0.1, 10).ok());
  const std::vector<double> expected = {0.10, 0.18, 0.25, 0.30, 0.35,
                                        0.39, 0.42, 0.45, 0.48, 0.50};
  auto series = acc.BplSeries();
  ASSERT_EQ(series.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(series[i], expected[i], 0.005) << "t=" << (i + 1);
  }
  // Backward-only: FPL stays at eps (Figure 3(b)(iii)).
  for (std::size_t t = 1; t <= 10; ++t) {
    EXPECT_NEAR(*acc.Fpl(t), 0.1, 1e-12);
  }
}

// Figure 3(b)(ii): FPL mirrors the BPL series backward in time.
TEST(TplAccountant, Figure3FplSeriesIsMirrored) {
  TplAccountant acc(TemporalCorrelations::ForwardOnly(Fig3Matrix()));
  ASSERT_TRUE(acc.RecordUniformReleases(0.1, 10).ok());
  const std::vector<double> expected = {0.50, 0.48, 0.45, 0.42, 0.39,
                                        0.35, 0.30, 0.25, 0.18, 0.10};
  auto series = acc.FplSeries();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(series[i], expected[i], 0.005) << "t=" << (i + 1);
  }
  // Forward-only: BPL stays at eps (Figure 3(a)(iii)).
  for (std::size_t t = 1; t <= 10; ++t) {
    EXPECT_NEAR(*acc.Bpl(t), 0.1, 1e-12);
  }
}

// Figure 3(c): TPL = BPL + FPL - eps, the printed hump-shaped series.
TEST(TplAccountant, Figure3TplSeries) {
  TplAccountant acc(Fig3Both());
  ASSERT_TRUE(acc.RecordUniformReleases(0.1, 10).ok());
  const std::vector<double> expected = {0.50, 0.56, 0.60, 0.62, 0.64,
                                        0.64, 0.62, 0.60, 0.56, 0.50};
  auto series = acc.TplSeries();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(series[i], expected[i], 0.01) << "t=" << (i + 1);
  }
  EXPECT_NEAR(acc.MaxTpl(), 0.64, 0.01);
}

TEST(TplAccountant, FplUpdatesRetroactivelyOnNewRelease) {
  // Example 3: "When r^11 is released, all FPL at time t in [1,10] will
  // be updated."
  TplAccountant acc(TemporalCorrelations::ForwardOnly(Fig3Matrix()));
  ASSERT_TRUE(acc.RecordUniformReleases(0.1, 10).ok());
  const double fpl1_before = *acc.Fpl(1);
  ASSERT_TRUE(acc.RecordRelease(0.1).ok());
  const double fpl1_after = *acc.Fpl(1);
  EXPECT_GT(fpl1_after, fpl1_before);
  // BPL at earlier times is unaffected by later releases.
  EXPECT_NEAR(*acc.Bpl(1), 0.1, 1e-12);
}

TEST(TplAccountant, BplUnaffectedByLaterReleases) {
  TplAccountant acc(Fig3Both());
  ASSERT_TRUE(acc.RecordUniformReleases(0.1, 5).ok());
  const double bpl3 = *acc.Bpl(3);
  ASSERT_TRUE(acc.RecordRelease(0.1).ok());
  EXPECT_DOUBLE_EQ(*acc.Bpl(3), bpl3);
}

TEST(TplAccountant, SequenceTplTheorem2Cases) {
  TplAccountant acc(Fig3Both());
  ASSERT_TRUE(acc.RecordUniformReleases(0.1, 6).ok());
  // j = 0: event-level TPL.
  EXPECT_NEAR(*acc.SequenceTpl(3, 0), *acc.Tpl(3), 1e-12);
  // j = 1: BPL_t + FPL_{t+1}.
  EXPECT_NEAR(*acc.SequenceTpl(2, 1), *acc.Bpl(2) + *acc.Fpl(3), 1e-12);
  // j = 2: BPL_t + FPL_{t+2} + eps_{t+1}.
  EXPECT_NEAR(*acc.SequenceTpl(2, 2),
              *acc.Bpl(2) + *acc.Fpl(4) + 0.1, 1e-12);
  // Out of range.
  EXPECT_FALSE(acc.SequenceTpl(5, 3).ok());
  EXPECT_FALSE(acc.SequenceTpl(0, 1).ok());
}

// Corollary 1: user-level TPL of the whole sequence = sum of budgets.
TEST(TplAccountant, Corollary1UserLevel) {
  TplAccountant acc(Fig3Both());
  ASSERT_TRUE(acc.RecordUniformReleases(0.1, 10).ok());
  EXPECT_NEAR(acc.UserLevelTpl(), 1.0, 1e-12);
  // And the full-span sequence TPL equals it:
  // BPL_1 + FPL_T + middle sum = 0.1 + 0.1 + 0.8.
  EXPECT_NEAR(*acc.SequenceTpl(1, 9), 1.0, 1e-12);
}

TEST(TplAccountant, NonUniformBudgetsCompose) {
  TplAccountant acc(TemporalCorrelations::BackwardOnly(Fig3Matrix()));
  ASSERT_TRUE(acc.RecordRelease(0.5).ok());
  ASSERT_TRUE(acc.RecordRelease(0.05).ok());
  // BPL_2 = L(0.5) + 0.05; L(0.5) = log(0.8(e^0.5 - 1)+1).
  const double expected = std::log(0.8 * std::expm1(0.5) + 1.0) + 0.05;
  EXPECT_NEAR(*acc.Bpl(2), expected, 1e-12);
}

TEST(TplAccountant, MaxWindowTplValidatesAndMatchesSequence) {
  TplAccountant acc(Fig3Both());
  ASSERT_TRUE(acc.RecordUniformReleases(0.1, 6).ok());
  EXPECT_FALSE(acc.MaxWindowTpl(0).ok());
  // w = 1 is the event-level maximum.
  auto w1 = acc.MaxWindowTpl(1);
  ASSERT_TRUE(w1.ok());
  EXPECT_NEAR(*w1, acc.MaxTpl(), 1e-12);
  // w >= horizon is the full-span sequence TPL.
  auto w9 = acc.MaxWindowTpl(9);
  ASSERT_TRUE(w9.ok());
  EXPECT_NEAR(*w9, *acc.SequenceTpl(1, 5), 1e-12);
  // Brute-force check for w = 3.
  auto w3 = acc.MaxWindowTpl(3);
  ASSERT_TRUE(w3.ok());
  double expected = 0.0;
  for (std::size_t t = 1; t <= 6; ++t) {
    const std::size_t j = std::min<std::size_t>(2, 6 - t);
    expected = std::max(expected, *acc.SequenceTpl(t, j));
  }
  EXPECT_NEAR(*w3, expected, 1e-12);
}

TEST(TplAccountant, MaxWindowTplMonotoneInW) {
  TplAccountant acc(Fig3Both());
  ASSERT_TRUE(acc.RecordUniformReleases(0.15, 8).ok());
  double prev = 0.0;
  for (std::size_t w = 1; w <= 8; ++w) {
    auto v = acc.MaxWindowTpl(w);
    ASSERT_TRUE(v.ok());
    EXPECT_GE(*v, prev - 1e-12) << "w=" << w;
    prev = *v;
  }
}

TEST(TplAccountant, MaxWindowTplEmptyIsZero) {
  TplAccountant acc(Fig3Both());
  auto v = acc.MaxWindowTpl(3);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, 0.0);
}

TEST(PopulationAccountant, MaxOverUsers) {
  PopulationAccountant pop;
  pop.AddUser("weak", TemporalCorrelations::None());
  pop.AddUser("strong", TemporalCorrelations::BackwardOnly(Fig3Matrix()));
  ASSERT_TRUE(pop.RecordRelease(0.1).ok());
  ASSERT_TRUE(pop.RecordRelease(0.1).ok());
  EXPECT_EQ(pop.num_users(), 2u);
  EXPECT_EQ(pop.horizon(), 2u);
  auto t2 = pop.MaxTplAt(2);
  ASSERT_TRUE(t2.ok());
  // The correlated user dominates: BPL_2 ~ 0.18 > 0.1.
  EXPECT_NEAR(*t2, 0.1807756, 1e-5);
  EXPECT_GT(pop.OverallAlpha(), 0.1);
  EXPECT_EQ(pop.user_name(1), "strong");
  EXPECT_EQ(pop.user(0).horizon(), 2u);
}

TEST(TplAccountant, RecordSkipPropagatesLossWithoutAccruingBudget) {
  TplAccountant acc(Fig3Both());
  ASSERT_TRUE(acc.RecordRelease(0.5).ok());
  ASSERT_TRUE(acc.RecordSkip().ok());
  ASSERT_TRUE(acc.RecordRelease(0.5).ok());
  EXPECT_EQ(acc.horizon(), 3u);
  EXPECT_DOUBLE_EQ(acc.UserLevelTpl(), 1.0);
  const auto bpl = acc.BplSeries();
  // The gap step: BPL_2 = L^B(BPL_1), inside (0, BPL_1] by Remark 1.
  EXPECT_GT(bpl[1], 0.0);
  EXPECT_LE(bpl[1], bpl[0]);
  EXPECT_GT(bpl[2], bpl[0]);  // leakage carried over the gap
  // TPL identity still holds with eps_t = 0.
  EXPECT_DOUBLE_EQ(*acc.Tpl(2), bpl[1] + *acc.Fpl(2));
}

TEST(TplAccountant, SkipOnlySequenceStaysAtZero) {
  TplAccountant acc(Fig3Both());
  ASSERT_TRUE(acc.RecordSkip().ok());
  ASSERT_TRUE(acc.RecordSkip().ok());
  EXPECT_EQ(acc.horizon(), 2u);
  EXPECT_DOUBLE_EQ(acc.MaxTpl(), 0.0);
  EXPECT_DOUBLE_EQ(acc.UserLevelTpl(), 0.0);
}

TEST(PopulationAccountant, SparseReleaseSkipsAbsentUsers) {
  PopulationAccountant pop;
  pop.AddUser("in", TemporalCorrelations::BackwardOnly(Fig3Matrix()));
  pop.AddUser("out", TemporalCorrelations::BackwardOnly(Fig3Matrix()));
  ASSERT_TRUE(pop.RecordRelease(0.2, {0}).ok());
  ASSERT_TRUE(pop.RecordRelease(0.2, {0, 1}).ok());
  EXPECT_EQ(pop.horizon(), 2u);
  EXPECT_DOUBLE_EQ(pop.user(0).UserLevelTpl(), 0.4);
  EXPECT_DOUBLE_EQ(pop.user(1).UserLevelTpl(), 0.2);
  EXPECT_FALSE(pop.RecordRelease(0.2, {7}).ok());
  // Invalid epsilon is rejected BEFORE any skip is recorded — horizons
  // must stay aligned.
  EXPECT_FALSE(pop.RecordRelease(-1.0, {0}).ok());
  EXPECT_FALSE(pop.RecordRelease(0.0, {}).ok());
  EXPECT_EQ(pop.user(0).horizon(), 2u);
  EXPECT_EQ(pop.user(1).horizon(), 2u);
}

TEST(TplAccountant, SerializeDeserializeRoundTrip) {
  TplAccountant original(Fig3Both());
  ASSERT_TRUE(original.RecordRelease(0.1).ok());
  ASSERT_TRUE(original.RecordRelease(0.25).ok());
  ASSERT_TRUE(original.RecordRelease(0.05).ok());

  auto restored = TplAccountant::Deserialize(original.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->horizon(), 3u);
  EXPECT_EQ(restored->epsilons(), original.epsilons());
  for (std::size_t t = 1; t <= 3; ++t) {
    EXPECT_DOUBLE_EQ(*restored->Bpl(t), *original.Bpl(t));
    EXPECT_DOUBLE_EQ(*restored->Fpl(t), *original.Fpl(t));
    EXPECT_DOUBLE_EQ(*restored->Tpl(t), *original.Tpl(t));
  }
  // The restored accountant keeps accruing identically.
  ASSERT_TRUE(restored->RecordRelease(0.1).ok());
  TplAccountant continued(Fig3Both());
  for (double e : {0.1, 0.25, 0.05, 0.1}) {
    ASSERT_TRUE(continued.RecordRelease(e).ok());
  }
  EXPECT_DOUBLE_EQ(restored->MaxTpl(), continued.MaxTpl());
}

TEST(TplAccountant, SerializeHandlesPartialCorrelations) {
  TplAccountant backward_only(
      TemporalCorrelations::BackwardOnly(Fig3Matrix()));
  ASSERT_TRUE(backward_only.RecordRelease(0.2).ok());
  auto restored = TplAccountant::Deserialize(backward_only.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->correlations().has_backward());
  EXPECT_FALSE(restored->correlations().has_forward());

  TplAccountant none(TemporalCorrelations::None());
  ASSERT_TRUE(none.RecordRelease(0.2).ok());
  auto restored_none = TplAccountant::Deserialize(none.Serialize());
  ASSERT_TRUE(restored_none.ok());
  EXPECT_TRUE(restored_none->correlations().empty());
  EXPECT_DOUBLE_EQ(*restored_none->Tpl(1), 0.2);
}

TEST(TplAccountant, SerializedCacheBackedAccountantRestoresBitwise) {
  // The v2 header records the cache quantization step, so the restored
  // accountant replays through an identically quantized cache and the
  // series is bitwise equal to the live one — the drift documented
  // against v1 is gone.
  TemporalLossCache::Options cache_options;
  cache_options.alpha_resolution = 1e-6;  // coarse: drift would show
  TemporalLossCache cache(cache_options);
  auto corr = Fig3Both();
  TplAccountant live(corr, cache.Intern(corr.backward()),
                     cache.Intern(corr.forward()),
                     cache_options.alpha_resolution);
  ASSERT_TRUE(live.RecordRelease(0.1).ok());
  ASSERT_TRUE(live.RecordSkip().ok());
  ASSERT_TRUE(live.RecordRelease(0.3).ok());

  const std::string text = live.Serialize();
  EXPECT_EQ(text.rfind("tcdp-accountant-v2", 0), 0u);
  auto restored = TplAccountant::Deserialize(text);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->cache_alpha_resolution(),
            cache_options.alpha_resolution);
  EXPECT_EQ(restored->epsilons(), live.epsilons());
  EXPECT_EQ(restored->BplSeries(), live.BplSeries());
  EXPECT_EQ(restored->FplSeries(), live.FplSeries());
  EXPECT_EQ(restored->TplSeries(), live.TplSeries());
}

TEST(TplAccountant, DeserializeReadsLegacyV1AsDirect) {
  // A v1 blob (no quantization line) keeps restoring direct evaluators.
  TplAccountant direct(Fig3Both());
  ASSERT_TRUE(direct.RecordRelease(0.1).ok());
  ASSERT_TRUE(direct.RecordRelease(0.25).ok());
  std::string v1 = direct.Serialize();
  const std::string v2_header = "tcdp-accountant-v2\nquantization -1\n";
  ASSERT_EQ(v1.rfind(v2_header, 0), 0u);
  v1 = "tcdp-accountant-v1\n" + v1.substr(v2_header.size());
  auto restored = TplAccountant::Deserialize(v1);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_LT(restored->cache_alpha_resolution(), 0.0);
  EXPECT_EQ(restored->TplSeries(), direct.TplSeries());
}

TEST(TplAccountant, DeserializeRejectsMalformedInput) {
  EXPECT_FALSE(TplAccountant::Deserialize("").ok());
  EXPECT_FALSE(TplAccountant::Deserialize("wrong-header\n").ok());
  EXPECT_FALSE(
      TplAccountant::Deserialize("tcdp-accountant-v1\nbogus 2\n").ok());
  // v2 requires the quantization line before the matrices.
  EXPECT_FALSE(
      TplAccountant::Deserialize("tcdp-accountant-v2\nbackward 0\n").ok());
  // Non-finite quantization steps are rejected (inf would snap every
  // alpha to infinity and silently zero the losses).
  EXPECT_FALSE(TplAccountant::Deserialize(
                   "tcdp-accountant-v2\nquantization inf\nbackward 0\n"
                   "forward 0\nepsilons 0\n")
                   .ok());
  EXPECT_FALSE(TplAccountant::Deserialize(
                   "tcdp-accountant-v2\nquantization nan\nbackward 0\n"
                   "forward 0\nepsilons 0\n")
                   .ok());
  // Truncated matrix block.
  EXPECT_FALSE(TplAccountant::Deserialize(
                   "tcdp-accountant-v1\nbackward 2\n0.5,0.5\n")
                   .ok());
  // Truncated epsilon list.
  EXPECT_FALSE(TplAccountant::Deserialize("tcdp-accountant-v1\nbackward 0\n"
                                          "forward 0\nepsilons 2\n0.1\n")
                   .ok());
  // Non-positive epsilon is rejected on replay.
  EXPECT_FALSE(TplAccountant::Deserialize("tcdp-accountant-v1\nbackward 0\n"
                                          "forward 0\nepsilons 1\n-0.5\n")
                   .ok());
}

TEST(PopulationAccountant, EmptyPopulationFailsQueries) {
  PopulationAccountant pop;
  EXPECT_FALSE(pop.MaxTplAt(1).ok());
  EXPECT_DOUBLE_EQ(pop.OverallAlpha(), 0.0);
}

}  // namespace
}  // namespace tcdp
