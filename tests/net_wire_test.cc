// Unit tests for the network wire layer: framing + incremental
// reassembly (net/wire.h) and the typed message codecs
// (net/messages.h). The decoder is hostile-input-facing, so every
// malformed shape here must come back as Status — never UB — and a
// poisoned decoder must stay poisoned.

#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "net/messages.h"
#include "net/wire.h"
#include "workload/generators.h"

namespace tcdp {
namespace net {
namespace {

std::string PreambleBytes() {
  std::string bytes;
  AppendPreamble(&bytes);
  return bytes;
}

TEST(FrameDecoderTest, RoundTripsFramesFedByteByByte) {
  std::string stream = PreambleBytes();
  AppendFrame(&stream, MsgType::kFlush, "");
  AppendFrame(&stream, MsgType::kRelease, EncodeRelease("alice", 0.25));
  AppendFrame(&stream, MsgType::kQuery, std::string(1000, 'x'));

  FrameDecoder decoder;
  for (char byte : stream) {
    ASSERT_TRUE(decoder.Feed(&byte, 1).ok());
  }
  ASSERT_EQ(decoder.queued_frames(), 3u);
  EXPECT_TRUE(decoder.preamble_done());

  Frame frame = decoder.PopFrame();
  EXPECT_EQ(frame.type, MsgType::kFlush);
  EXPECT_TRUE(frame.payload.empty());
  frame = decoder.PopFrame();
  EXPECT_EQ(frame.type, MsgType::kRelease);
  auto release = DecodeRelease(frame.payload);
  ASSERT_TRUE(release.ok());
  EXPECT_EQ(release->name, "alice");
  EXPECT_EQ(release->epsilon, 0.25);
  frame = decoder.PopFrame();
  EXPECT_EQ(frame.type, MsgType::kQuery);
  EXPECT_EQ(frame.payload, std::string(1000, 'x'));
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameDecoderTest, RejectsBadMagic) {
  std::string stream = "NOTTCDP!????";
  FrameDecoder decoder;
  const Status fed = decoder.Feed(stream.data(), stream.size());
  EXPECT_FALSE(fed.ok());
  EXPECT_NE(fed.message().find("bad magic"), std::string::npos);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(FrameDecoderTest, RejectsWrongVersion) {
  std::string stream(kNetMagic, sizeof(kNetMagic));
  stream += std::string("\x02\x00\x00\x00", 4);  // version 2
  FrameDecoder decoder;
  const Status fed = decoder.Feed(stream.data(), stream.size());
  EXPECT_FALSE(fed.ok());
  EXPECT_NE(fed.message().find("version"), std::string::npos);
}

TEST(FrameDecoderTest, RejectsOversizedLength) {
  std::string stream = PreambleBytes();
  // Hand-build a header announcing kMaxFramePayload + 1 bytes. The
  // decoder must reject it from the header alone (no allocation).
  stream.push_back(static_cast<char>(MsgType::kQuery));
  const std::uint32_t length = kMaxFramePayload + 1;
  stream.append(reinterpret_cast<const char*>(&length), 4);
  stream.append(4, '\0');  // CRC, never reached
  FrameDecoder decoder;
  const Status fed = decoder.Feed(stream.data(), stream.size());
  EXPECT_FALSE(fed.ok());
  EXPECT_NE(fed.message().find("oversized"), std::string::npos);
}

TEST(FrameDecoderTest, RejectsCorruptedCrc) {
  std::string stream = PreambleBytes();
  AppendFrame(&stream, MsgType::kRelease, EncodeRelease("bob", 0.1));
  stream.back() = static_cast<char>(stream.back() ^ 0x40);  // flip payload bit
  FrameDecoder decoder;
  const Status fed = decoder.Feed(stream.data(), stream.size());
  EXPECT_FALSE(fed.ok());
  EXPECT_NE(fed.message().find("CRC"), std::string::npos);
}

TEST(FrameDecoderTest, StaysPoisonedButKeepsEarlierFrames) {
  std::string stream = PreambleBytes();
  AppendFrame(&stream, MsgType::kFlush, "");
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(stream.data(), stream.size()).ok());
  const std::string garbage = "garbage that is not a frame header!";
  EXPECT_FALSE(decoder.Feed(garbage.data(), garbage.size()).ok());
  // Also poisoned for future feeds, even of valid bytes.
  std::string valid;
  AppendFrame(&valid, MsgType::kFlush, "");
  EXPECT_FALSE(decoder.Feed(valid.data(), valid.size()).ok());
  // The frame completed before the poisoning is still deliverable.
  ASSERT_TRUE(decoder.has_frame());
  EXPECT_EQ(decoder.PopFrame().type, MsgType::kFlush);
}

TEST(MessageCodecTest, ReleaseRoundTripAndValidation) {
  auto decoded = DecodeRelease(EncodeRelease("user-7", 0.05));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->name, "user-7");
  EXPECT_EQ(decoded->epsilon, 0.05);
  // Non-positive and non-finite epsilons are rejected at decode.
  EXPECT_FALSE(DecodeRelease(EncodeRelease("u", -1.0)).ok());
  EXPECT_FALSE(DecodeRelease(EncodeRelease("u", 0.0)).ok());
}

TEST(MessageCodecTest, ReleaseAllAndNameRoundTrip) {
  auto eps = DecodeReleaseAll(EncodeReleaseAll(0.125));
  ASSERT_TRUE(eps.ok());
  EXPECT_EQ(*eps, 0.125);
  auto name = DecodeName(EncodeName("carol"));
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(*name, "carol");
}

TEST(MessageCodecTest, ErrorRoundTrip) {
  const Status original = Status::NotFound("user 'x' has not joined");
  Status decoded;
  ASSERT_TRUE(DecodeError(EncodeError(original), &decoded).ok());
  EXPECT_EQ(decoded, original);
  // Code 0 (OK) and unknown codes are invalid on the wire.
  std::string zero;
  zero.push_back('\0');
  zero.push_back('\0');
  EXPECT_FALSE(DecodeError(zero, &decoded).ok());
}

TEST(MessageCodecTest, JoinCarriesCorrelationsBitwise) {
  auto matrix = ClickstreamModel(5, 0.3);
  ASSERT_TRUE(matrix.ok());
  auto corr = TemporalCorrelations::Both(*matrix, *matrix);
  ASSERT_TRUE(corr.ok());
  const std::string payload = EncodeJoin("alice", *corr);
  auto decoded = DecodeJoin(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->name, "alice");
  // Re-encoding the decoded correlations reproduces the exact payload:
  // the matrix survives the wire bitwise.
  EXPECT_EQ(EncodeJoin("alice", decoded->image.correlations), payload);
}

TEST(MessageCodecTest, ReportRoundTripBitwise) {
  server::UserReport report;
  report.name = "user-3";
  report.shard = 2;
  report.join_release = 4;
  report.horizon = 6;
  report.max_tpl = 0.6368250731707413;
  report.user_level_tpl = 1.0000000000000002;
  report.epsilons = {0.1, 0.0, 0.2, 0.1, 0.0, 0.05};
  report.tpl_series = {0.1234567890123456, 0.2, 0.3, 0.4, 0.5, 0.6};
  auto decoded = DecodeReport(EncodeReport(report));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->name, report.name);
  EXPECT_EQ(decoded->shard, report.shard);
  EXPECT_EQ(decoded->join_release, report.join_release);
  EXPECT_EQ(decoded->horizon, report.horizon);
  EXPECT_EQ(decoded->max_tpl, report.max_tpl);
  EXPECT_EQ(decoded->user_level_tpl, report.user_level_tpl);
  EXPECT_EQ(decoded->epsilons, report.epsilons);
  EXPECT_EQ(decoded->tpl_series, report.tpl_series);
}

TEST(MessageCodecTest, StatsReportRoundTrip) {
  WireServiceStats stats;
  stats.num_shards = 3;
  stats.num_users = 100;
  stats.horizon = 17;
  stats.join_requests = 100;
  stats.release_requests = 900;
  stats.ticks = 20;
  stats.global_releases = 17;
  for (std::uint64_t s = 0; s < 3; ++s) {
    WireShardStats shard;
    shard.users = 30 + s;
    shard.horizon = 17;
    shard.wal_records = 120 + s;
    shard.wal_bytes = 4096 * (s + 1);
    shard.snapshots_written = s;
    shard.queue_depth = 5 - s;
    shard.enqueue_blocks = 2 * s;
    stats.shards.push_back(shard);
  }
  auto decoded = DecodeStatsReport(EncodeStatsReport(stats));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->num_shards, stats.num_shards);
  EXPECT_EQ(decoded->release_requests, stats.release_requests);
  ASSERT_EQ(decoded->shards.size(), 3u);
  EXPECT_EQ(decoded->shards[1].wal_bytes, 8192u);
  EXPECT_EQ(decoded->shards[2].enqueue_blocks, 4u);
  EXPECT_EQ(decoded->shards[0].queue_depth, 5u);
}

TEST(MessageCodecTest, EveryStrictPrefixFailsToDecode) {
  // Truncation at any byte must surface as Status, not UB. (Payloads
  // reach these decoders only after the frame CRC passed, but a buggy
  // or malicious peer can frame any bytes it likes.) Each payload's
  // strict prefixes must fail under its own decoder; feeding them to
  // every other decoder additionally exercises the wrong-type paths
  // (success there is harmless, crashing is not).
  server::UserReport report;
  report.name = "u";
  report.epsilons = {0.1, 0.2};
  report.tpl_series = {0.3, 0.4};
  struct Case {
    std::string payload;
    std::function<bool(const std::string&)> decodes;
  };
  const std::vector<Case> cases = {
      {EncodeRelease("alice", 0.25),
       [](const std::string& p) { return DecodeRelease(p).ok(); }},
      {EncodeReleaseAll(0.1),
       [](const std::string& p) { return DecodeReleaseAll(p).ok(); }},
      {EncodeName("bob"),
       [](const std::string& p) { return DecodeName(p).ok(); }},
      {EncodeError(Status::Internal("boom")),
       [](const std::string& p) {
         Status error;
         return DecodeError(p, &error).ok();
       }},
      {EncodeReport(report),
       [](const std::string& p) { return DecodeReport(p).ok(); }},
  };
  for (const Case& c : cases) {
    for (std::size_t cut = 0; cut < c.payload.size(); ++cut) {
      const std::string prefix = c.payload.substr(0, cut);
      EXPECT_FALSE(c.decodes(prefix)) << "prefix length " << cut;
      Status ignored;
      (void)DecodeRelease(prefix);
      (void)DecodeReleaseAll(prefix);
      (void)DecodeName(prefix);
      (void)DecodeError(prefix, &ignored);
      (void)DecodeReport(prefix);
      (void)DecodeStatsReport(prefix);
      (void)DecodeJoin(prefix);
    }
  }
  // And a series count that exceeds the remaining payload is rejected
  // before any allocation.
  std::string huge;
  PutLengthPrefixed(&huge, "u");
  for (int i = 0; i < 3; ++i) PutVarint64(&huge, 0);
  PutDoubleBits(&huge, 0.0);
  PutDoubleBits(&huge, 0.0);
  PutVarint64(&huge, std::uint64_t{1} << 60);  // epsilons count
  EXPECT_FALSE(DecodeReport(huge).ok());
}

}  // namespace
}  // namespace net
}  // namespace tcdp
