// Loopback tests for the metrics/trace wire surface (ISSUE 8): the
// kMetrics request returns a decodable registry snapshot whose
// instruments reflect work the server just did, and kTraceDump either
// invokes the server's configured dump hook or fails with
// FailedPrecondition when none is set.

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "server/sharded_service.h"
#include "workload/generators.h"

namespace tcdp {
namespace net {
namespace {

TemporalCorrelations Profile() {
  auto matrix = ClickstreamModel(4, 0.3);
  EXPECT_TRUE(matrix.ok());
  return TemporalCorrelations::Both(*matrix, *matrix).value();
}

/// In-process service + serving NetServer on a thread.
struct ObsTestServer {
  std::unique_ptr<server::ShardedReleaseService> service;
  std::unique_ptr<NetServer> server;
  std::thread thread;
  Status serve_status;

  static std::unique_ptr<ObsTestServer> Start(
      NetServerOptions net_options = {}) {
    auto ts = std::make_unique<ObsTestServer>();
    server::ShardedServiceOptions options;
    options.num_shards = 2;
    options.batch_window = 1;
    auto service = server::ShardedReleaseService::Create("", options);
    EXPECT_TRUE(service.ok()) << service.status();
    if (!service.ok()) return nullptr;
    ts->service = std::move(service).value();
    auto server = NetServer::Listen(ts->service.get(), net_options);
    EXPECT_TRUE(server.ok()) << server.status();
    if (!server.ok()) return nullptr;
    ts->server = std::move(server).value();
    ts->thread = std::thread(
        [ts = ts.get()] { ts->serve_status = ts->server->Serve(); });
    return ts;
  }

  ~ObsTestServer() {
    if (thread.joinable()) {
      server->Stop();
      thread.join();
    }
    EXPECT_TRUE(serve_status.ok()) << serve_status;
  }
};

/// 0 when absent: instruments register lazily on first use, so a
/// counter another test binary would have may not exist here yet.
std::uint64_t CounterValue(const obs::MetricsSnapshot& snapshot,
                           const std::string& name) {
  for (const auto& [n, v] : snapshot.counters) {
    if (n == name) return v;
  }
  return 0;
}

TEST(ObsWire, MetricsRequestReturnsLiveRegistrySnapshot) {
  obs::SetMetricsEnabled(true);
  auto ts = ObsTestServer::Start();
  ASSERT_NE(ts, nullptr);
  auto client = NetClient::Connect("127.0.0.1", ts->server->port());
  ASSERT_TRUE(client.ok()) << client.status();

  auto before = (*client)->Metrics();
  ASSERT_TRUE(before.ok()) << before.status();
  const std::uint64_t wal_before =
      CounterValue(*before, "tcdp_wal_appended_records_total");

  ASSERT_TRUE((*client)->Join("metrics-user", Profile()).ok());
  ASSERT_TRUE((*client)->Release("metrics-user", 0.1).ok());
  ASSERT_TRUE((*client)->Flush().ok());

  auto after = (*client)->Metrics();
  ASSERT_TRUE(after.ok()) << after.status();
  // The registry is process-global, so absolute values depend on test
  // order; deltas across this server's own work do not. An in-memory
  // service appends nothing to a WAL, but the bank stepped and the
  // net frontend timed this connection's requests.
  EXPECT_EQ(CounterValue(*after, "tcdp_wal_appended_records_total"),
            wal_before);
  bool saw_request_histogram = false;
  bool saw_bank_step = false;
  for (const auto& [name, hist] : after->histograms) {
    if (name == "tcdp_net_request_seconds{type=\"metrics\"}" &&
        hist.count() > 0) {
      saw_request_histogram = true;
    }
    if (name == "tcdp_bank_step_seconds" && hist.count() > 0) {
      saw_bank_step = true;
    }
  }
  EXPECT_TRUE(saw_request_histogram);
  EXPECT_TRUE(saw_bank_step);
  ASSERT_TRUE((*client)->Close().ok());
}

TEST(ObsWire, TraceDumpWithoutHandlerIsFailedPrecondition) {
  auto ts = ObsTestServer::Start();
  ASSERT_NE(ts, nullptr);
  auto client = NetClient::Connect("127.0.0.1", ts->server->port());
  ASSERT_TRUE(client.ok()) << client.status();
  const StatusOr<std::string> path = (*client)->TraceDump();
  EXPECT_FALSE(path.ok());
  EXPECT_EQ(path.status().code(), StatusCode::kFailedPrecondition)
      << path.status();
}

TEST(ObsWire, TraceDumpRunsTheConfiguredHookAndReturnsItsPath) {
  std::atomic<int> dumps{0};
  NetServerOptions options;
  options.on_trace_dump = [&dumps]() -> StatusOr<std::string> {
    dumps.fetch_add(1);
    return std::string("/tmp/trace-under-test.json");
  };
  auto ts = ObsTestServer::Start(options);
  ASSERT_NE(ts, nullptr);
  auto client = NetClient::Connect("127.0.0.1", ts->server->port());
  ASSERT_TRUE(client.ok()) << client.status();
  auto first = (*client)->TraceDump();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(*first, "/tmp/trace-under-test.json");
  ASSERT_TRUE((*client)->TraceDump().ok());
  EXPECT_EQ(dumps.load(), 2);
  ASSERT_TRUE((*client)->Close().ok());
}

TEST(ObsWire, MetricsSurvivesDisabledRegistry) {
  // With metrics off the snapshot still decodes (instruments freeze,
  // the request itself is not an error).
  auto ts = ObsTestServer::Start();
  ASSERT_NE(ts, nullptr);
  auto client = NetClient::Connect("127.0.0.1", ts->server->port());
  ASSERT_TRUE(client.ok()) << client.status();
  obs::SetMetricsEnabled(false);
  auto snapshot = (*client)->Metrics();
  obs::SetMetricsEnabled(true);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  ASSERT_TRUE((*client)->Close().ok());
}

}  // namespace
}  // namespace net
}  // namespace tcdp
