// Unit tests for common/thread_pool: task execution, ParallelFor
// coverage, Wait semantics, and the work-stealing stats.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace tcdp {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
  EXPECT_EQ(pool.stats().tasks_executed, 100u);
}

TEST(ThreadPool, ZeroThreadsPicksHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPool, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // no tasks: must not hang
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> touched(kN);
  pool.ParallelFor(0, kN, [&touched](std::size_t i) {
    touched[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForEmptyAndSingletonRanges) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, [&calls](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.ParallelFor(7, 8, [&calls](std::size_t i) {
    EXPECT_EQ(i, 7u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ParallelForRespectsOffsetRange) {
  ThreadPool pool(3);
  constexpr std::size_t kBegin = 100, kEnd = 350;
  std::atomic<long long> sum{0};
  pool.ParallelFor(kBegin, kEnd, [&sum](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i));
  });
  long long expected = 0;
  for (std::size_t i = kBegin; i < kEnd; ++i) {
    expected += static_cast<long long>(i);
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPool, ParallelForRangeCoversRangeInDisjointSlices) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 4096;
  std::vector<std::atomic<int>> touched(kN);
  std::atomic<int> slices{0};
  pool.ParallelForRange(
      0, kN,
      [&](std::size_t lo, std::size_t hi) {
        EXPECT_LT(lo, hi);
        slices.fetch_add(1);
        for (std::size_t i = lo; i < hi; ++i) touched[i].fetch_add(1);
      },
      /*grain=*/100);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
  }
  // ceil(4096 / 100) slices, each at most the grain wide.
  EXPECT_EQ(slices.load(), 41);
}

TEST(ThreadPool, ParallelForRangeEmptyRangeNeverCallsBody) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelForRange(9, 9, [&calls](std::size_t, std::size_t) {
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, StealingHappensUnderImbalance) {
  // One long task per queue slot followed by many short ones: idle
  // workers must steal to finish. Stats are advisory; just verify the
  // counters stay consistent.
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  pool.ParallelFor(0, 1000, [&counter](std::size_t) {
    counter.fetch_add(1);
  }, /*grain=*/1);
  EXPECT_EQ(counter.load(), 1000);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.tasks_executed, 1000u);
  EXPECT_LE(stats.tasks_stolen, stats.tasks_executed);
}

TEST(ThreadPool, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor waits for completion
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace tcdp
