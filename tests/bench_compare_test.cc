// Tests for the run-over-run comparator (src/bench/compare.h) and the
// BENCH.json round-trip it depends on (src/bench/report.h).

#include "bench/compare.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "bench/report.h"

namespace tcdp {
namespace bench {
namespace {

BenchRecord MakeRecord(const std::string& suite, const std::string& case_name,
                       std::map<std::string, double> metrics,
                       std::map<std::string, double> params = {{"n", 4.0}}) {
  BenchRecord record;
  record.suite = suite;
  record.case_name = case_name;
  record.mode = "smoke";
  record.params = std::move(params);
  record.metrics = std::move(metrics);
  record.timestamp_unix = 1.0;
  record.timestamp_iso = "2026-01-01T00:00:00Z";
  return record;
}

BenchReport MakeReport() {
  BenchReport report;
  report.smoke = true;
  report.hardware = {1, 2000.0, "host"};
  report.build = {"abc1234", "-O3", "Release", "g++"};
  report.started_unix = 1.0;
  report.finished_unix = 2.0;
  report.started_iso = "2026-01-01T00:00:00Z";
  report.suites_run = {"demo"};
  return report;
}

TEST(BenchCompare, IdenticalRunsPass) {
  BenchReport report = MakeReport();
  report.records.push_back(MakeRecord("demo", "a", {{"alpha", 0.5}}));
  const CompareResult diff = CompareReports(report, report);
  EXPECT_TRUE(diff.ok);
  EXPECT_EQ(diff.metrics_checked, 1u);
  EXPECT_EQ(diff.regressions, 0u);
}

TEST(BenchCompare, DriftInsideDefaultBandPasses) {
  BenchReport baseline = MakeReport();
  baseline.records.push_back(MakeRecord("demo", "a", {{"alpha", 1.0}}));
  BenchReport current = MakeReport();
  // +10% with the default +-15% band: inside, no finding.
  current.records.push_back(MakeRecord("demo", "a", {{"alpha", 1.10}}));
  const CompareResult diff = CompareReports(current, baseline);
  EXPECT_TRUE(diff.ok);
  EXPECT_EQ(diff.regressions, 0u);
  EXPECT_EQ(diff.improvements, 0u);
}

TEST(BenchCompare, DriftBeyondDefaultBandRegresses) {
  BenchReport baseline = MakeReport();
  baseline.records.push_back(MakeRecord("demo", "a", {{"alpha", 1.0}}));
  BenchReport current = MakeReport();
  current.records.push_back(MakeRecord("demo", "a", {{"alpha", 1.5}}));
  const CompareResult diff = CompareReports(current, baseline);
  EXPECT_FALSE(diff.ok);
  EXPECT_EQ(diff.regressions, 1u);
  EXPECT_NE(diff.report.find("REGRESS"), std::string::npos);
  EXPECT_NE(diff.report.find("demo/a"), std::string::npos);
}

TEST(BenchCompare, PerMetricPolicyOverridesDefaultBand) {
  BenchReport baseline = MakeReport();
  baseline.records.push_back(MakeRecord("demo", "a", {{"alpha", 1.0}}));
  BenchReport current = MakeReport();
  current.records.push_back(MakeRecord("demo", "a", {{"alpha", 1.01}}));
  // An exact policy with a 1e-6 band turns the 1% drift (fine under the
  // default +-15%) into a regression.
  current.policies["demo"]["alpha"] = MetricPolicy::Exact();
  const CompareResult diff = CompareReports(current, baseline);
  EXPECT_FALSE(diff.ok);
  EXPECT_EQ(diff.regressions, 1u);
}

TEST(BenchCompare, DirectionalImprovementIsNotARegression) {
  BenchReport baseline = MakeReport();
  baseline.records.push_back(MakeRecord("demo", "a", {{"rps", 100.0}}));
  BenchReport current = MakeReport();
  current.records.push_back(MakeRecord("demo", "a", {{"rps", 200.0}}));
  MetricPolicy policy;
  policy.direction = MetricPolicy::Direction::kHigherIsBetter;
  current.policies["demo"]["rps"] = policy;
  const CompareResult diff = CompareReports(current, baseline);
  EXPECT_TRUE(diff.ok);
  EXPECT_EQ(diff.improvements, 1u);
  EXPECT_NE(diff.report.find("IMPROVE"), std::string::npos);
}

TEST(BenchCompare, InformationalMetricsDriftButNeverFail) {
  BenchReport baseline = MakeReport();
  baseline.records.push_back(MakeRecord("demo", "a", {{"seconds", 1.0}}));
  BenchReport current = MakeReport();
  current.records.push_back(MakeRecord("demo", "a", {{"seconds", 10.0}}));
  current.policies["demo"]["seconds"] = MetricPolicy::Latency();
  const CompareResult diff = CompareReports(current, baseline);
  EXPECT_TRUE(diff.ok);
  EXPECT_EQ(diff.regressions, 0u);
  EXPECT_EQ(diff.informational, 1u);
  EXPECT_NE(diff.report.find("DRIFT"), std::string::npos);
}

TEST(BenchCompare, PoliciesComeFromTheCurrentRunNotTheBaseline) {
  BenchReport baseline = MakeReport();
  baseline.records.push_back(MakeRecord("demo", "a", {{"alpha", 1.0}}));
  // A tampered baseline declaring alpha informational must not weaken
  // the comparison the current run asks for.
  baseline.policies["demo"]["alpha"] = MetricPolicy::Latency();
  BenchReport current = MakeReport();
  current.records.push_back(MakeRecord("demo", "a", {{"alpha", 2.0}}));
  current.policies["demo"]["alpha"] = MetricPolicy::Exact();
  const CompareResult diff = CompareReports(current, baseline);
  EXPECT_FALSE(diff.ok);
  EXPECT_EQ(diff.regressions, 1u);
}

TEST(BenchCompare, MissingBaselineCaseFailsUnlessSkippedWithReason) {
  BenchReport baseline = MakeReport();
  baseline.records.push_back(MakeRecord("demo", "a", {{"alpha", 1.0}}));
  baseline.records.push_back(MakeRecord("demo", "b", {{"alpha", 1.0}}));
  BenchReport current = MakeReport();
  current.records.push_back(MakeRecord("demo", "a", {{"alpha", 1.0}}));

  const CompareResult lost = CompareReports(current, baseline);
  EXPECT_FALSE(lost.ok);
  EXPECT_EQ(lost.missing_cases, 1u);
  EXPECT_NE(lost.report.find("MISSING"), std::string::npos);

  current.skips.push_back({"demo", "b", "requires >= 2 cores, host has 1"});
  const CompareResult skipped = CompareReports(current, baseline);
  EXPECT_TRUE(skipped.ok);
  EXPECT_EQ(skipped.missing_cases, 0u);
  EXPECT_NE(skipped.report.find("SKIPPED"), std::string::npos);
}

TEST(BenchCompare, NewCasesAndMetricsAreInformational) {
  BenchReport baseline = MakeReport();
  baseline.records.push_back(MakeRecord("demo", "a", {{"alpha", 1.0}}));
  BenchReport current = MakeReport();
  current.records.push_back(
      MakeRecord("demo", "a", {{"alpha", 1.0}, {"beta", 2.0}}));
  current.records.push_back(MakeRecord("demo", "c", {{"alpha", 3.0}}));
  const CompareResult diff = CompareReports(current, baseline);
  EXPECT_TRUE(diff.ok);
  EXPECT_EQ(diff.new_cases, 1u);
  EXPECT_NE(diff.report.find("NEW "), std::string::npos);
  EXPECT_NE(diff.report.find("NEWMET"), std::string::npos);
}

TEST(BenchCompare, LostMetricIsARegression) {
  BenchReport baseline = MakeReport();
  baseline.records.push_back(
      MakeRecord("demo", "a", {{"alpha", 1.0}, {"beta", 2.0}}));
  BenchReport current = MakeReport();
  current.records.push_back(MakeRecord("demo", "a", {{"alpha", 1.0}}));
  const CompareResult diff = CompareReports(current, baseline);
  EXPECT_FALSE(diff.ok);
  EXPECT_NE(diff.report.find("LOST"), std::string::npos);
}

TEST(BenchCompare, DifferentParamsAreDifferentCases) {
  BenchReport baseline = MakeReport();
  baseline.records.push_back(
      MakeRecord("demo", "a", {{"alpha", 1.0}}, {{"n", 4.0}}));
  BenchReport current = MakeReport();
  current.records.push_back(
      MakeRecord("demo", "a", {{"alpha", 5.0}}, {{"n", 8.0}}));
  const CompareResult diff = CompareReports(current, baseline);
  // Param change => no match: one new case, one missing case.
  EXPECT_FALSE(diff.ok);
  EXPECT_EQ(diff.new_cases, 1u);
  EXPECT_EQ(diff.missing_cases, 1u);
  EXPECT_EQ(diff.metrics_checked, 0u);
}

TEST(BenchCompare, BaselineSuitesOutsideTheRunAreIgnored) {
  BenchReport baseline = MakeReport();
  baseline.records.push_back(MakeRecord("demo", "a", {{"alpha", 1.0}}));
  baseline.records.push_back(MakeRecord("other", "z", {{"alpha", 1.0}}));
  BenchReport current = MakeReport();  // suites_run = {"demo"} only
  current.records.push_back(MakeRecord("demo", "a", {{"alpha", 1.0}}));
  const CompareResult diff = CompareReports(current, baseline);
  EXPECT_TRUE(diff.ok);
  EXPECT_EQ(diff.missing_cases, 0u);
}

TEST(BenchReportJson, RoundTripsThroughJson) {
  BenchReport report = MakeReport();
  report.records.push_back(MakeRecord("demo", "a", {{"alpha", 0.5}}));
  report.derived["demo"]["speedup"] = 2.0;
  report.gates.push_back(
      {"demo", "g", "speedup > 1", /*enforced=*/true, /*passed=*/true, ""});
  report.skips.push_back({"demo", "b", "full-run case"});
  report.policies["demo"]["alpha"] = MetricPolicy::Exact();

  const Json json = ReportToJson(report);
  ASSERT_TRUE(ValidateReportJson(json).ok());
  const auto parsed = ReportFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const BenchReport& back = parsed.value();
  EXPECT_EQ(back.schema, kReportSchema);
  EXPECT_TRUE(back.smoke);
  EXPECT_EQ(back.hardware.hostname, "host");
  EXPECT_EQ(back.build.git_sha, "abc1234");
  ASSERT_EQ(back.records.size(), 1u);
  EXPECT_EQ(back.records[0].case_name, "a");
  EXPECT_DOUBLE_EQ(back.records[0].metrics.at("alpha"), 0.5);
  EXPECT_DOUBLE_EQ(back.derived.at("demo").at("speedup"), 2.0);
  ASSERT_EQ(back.gates.size(), 1u);
  EXPECT_TRUE(back.gates[0].passed);
  EXPECT_TRUE(back.HasSkip("demo", "b"));
  EXPECT_EQ(back.policies.at("demo").at("alpha").direction,
            MetricPolicy::Direction::kExact);
  // A second serialization must be byte-identical (stable diffs).
  EXPECT_EQ(json.Dump(), ReportToJson(back).Dump());
}

TEST(BenchReportJson, RejectsWrongSchemaTag) {
  BenchReport report = MakeReport();
  report.records.push_back(MakeRecord("demo", "a", {{"alpha", 0.5}}));
  Json json = ReportToJson(report);
  json.as_object().Set("schema", Json("tcdp-bench-v0"));
  EXPECT_FALSE(ValidateReportJson(json).ok());
}

}  // namespace
}  // namespace bench
}  // namespace tcdp
