#ifndef TCDP_TESTS_FAULT_INJECTION_H_
#define TCDP_TESTS_FAULT_INJECTION_H_

/// \file
/// Deterministic network fault injection for loopback protocol tests.
///
/// FaultyProxy is a single-connection TCP proxy that forwards bytes
/// between a test client and a real server while executing a *script*
/// of faults — not random packet mangling, but "flip the byte at
/// offset 113 of the server->client stream", "reset the connection
/// after forwarding 64 bytes", "deliver everything in 7-byte chunks".
/// Each accepted connection consumes the next ConnPlan from the
/// script (the last plan repeats), so a test can express "first
/// session gets corrupted, second session gets reset mid-frame, third
/// session is clean" and assert how the endpoints converge.
///
/// Faults are positioned by byte offset within one direction of one
/// connection, which makes every run identical: no timing
/// sensitivity, no randomness. Used by tests/net_server_test.cc (a
/// hostile client-side path must never perturb server accounting) and
/// tests/replication_test.cc (a faulty follower link must never
/// perturb the primary, and the follower must converge byte-identical
/// once the link heals).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace tcdp {
namespace testing {

/// Faults applied to one direction of one proxied connection. Offsets
/// count bytes of that direction's stream from the connection start.
struct FaultSpec {
  /// Forward in chunks of at most this many bytes (0 = unlimited).
  /// Exercises short-read/short-write handling in the endpoints.
  std::size_t chunk = 0;
  /// XOR `corrupt_mask` into the byte at this offset (-1 = never).
  long corrupt_at = -1;
  unsigned char corrupt_mask = 0x01;
  /// After forwarding this many bytes, hard-reset both sides
  /// (SO_LINGER 0 close => RST) (-1 = never).
  long reset_after = -1;
};

/// The fault script for one accepted connection.
struct ConnPlan {
  FaultSpec client_to_server;
  FaultSpec server_to_client;
};

struct FaultyProxyStats {
  std::uint64_t connections = 0;
  std::uint64_t client_to_server_bytes = 0;
  std::uint64_t server_to_client_bytes = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t resets = 0;
};

class FaultyProxy {
 public:
  /// Starts proxying 127.0.0.1:<ephemeral> -> 127.0.0.1:target_port.
  /// One connection is served at a time; connection i uses plans[i]
  /// (the last plan repeats when the script runs out; an empty script
  /// means pass-through).
  static std::unique_ptr<FaultyProxy> Start(std::uint16_t target_port,
                                            std::vector<ConnPlan> plans) {
    auto proxy = std::unique_ptr<FaultyProxy>(new FaultyProxy());
    proxy->target_port_ = target_port;
    proxy->plans_ = std::move(plans);
    if (proxy->plans_.empty()) proxy->plans_.push_back(ConnPlan{});

    proxy->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (proxy->listen_fd_ < 0) return nullptr;
    int reuse = 1;
    ::setsockopt(proxy->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse,
                 sizeof(reuse));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::bind(proxy->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(proxy->listen_fd_, 4) != 0) {
      ::close(proxy->listen_fd_);
      return nullptr;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(proxy->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                  &len);
    proxy->port_ = ntohs(addr.sin_port);
    proxy->thread_ = std::thread([raw = proxy.get()] { raw->Run(); });
    return proxy;
  }

  std::uint16_t port() const { return port_; }

  FaultyProxyStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  void Stop() {
    stop_.store(true);
    // Unblock the accept poll.
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (thread_.joinable()) thread_.join();
  }

  ~FaultyProxy() {
    Stop();
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  FaultyProxy(const FaultyProxy&) = delete;
  FaultyProxy& operator=(const FaultyProxy&) = delete;

 private:
  FaultyProxy() = default;

  /// One direction's forwarding state.
  struct Pipe {
    int from;
    int to;
    FaultSpec spec;
    std::uint64_t forwarded = 0;  ///< bytes already written to `to`
    bool open = true;
    std::uint64_t* stat_bytes;
  };

  static void HardReset(int fd) {
    linger lin{1, 0};  // close with pending data => RST, not FIN
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lin, sizeof(lin));
    ::close(fd);
  }

  /// Forwards up to one read's worth of bytes. Returns false when the
  /// pipe is finished (EOF, error, or scripted reset).
  bool PumpOnce(Pipe* pipe, bool* reset_both) {
    char buffer[4096];
    std::size_t want = sizeof(buffer);
    if (pipe->spec.chunk > 0 && pipe->spec.chunk < want) {
      want = pipe->spec.chunk;
    }
    // Never read past a scripted reset point: the bytes after it must
    // not be delivered.
    if (pipe->spec.reset_after >= 0) {
      const std::uint64_t until =
          static_cast<std::uint64_t>(pipe->spec.reset_after);
      if (pipe->forwarded >= until) {
        *reset_both = true;
        return false;
      }
      want = std::min<std::size_t>(want, until - pipe->forwarded);
    }
    const ssize_t n = ::recv(pipe->from, buffer, want, 0);
    if (n <= 0) return false;
    for (ssize_t i = 0; i < n; ++i) {
      if (pipe->spec.corrupt_at >= 0 &&
          pipe->forwarded + static_cast<std::uint64_t>(i) ==
              static_cast<std::uint64_t>(pipe->spec.corrupt_at)) {
        buffer[i] = static_cast<char>(buffer[i] ^ pipe->spec.corrupt_mask);
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.corruptions;
      }
    }
    std::size_t sent = 0;
    while (sent < static_cast<std::size_t>(n)) {
      const ssize_t w = ::send(pipe->to, buffer + sent,
                               static_cast<std::size_t>(n) - sent,
                               MSG_NOSIGNAL);
      if (w <= 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(w);
    }
    pipe->forwarded += static_cast<std::uint64_t>(n);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      *pipe->stat_bytes += static_cast<std::uint64_t>(n);
    }
    if (pipe->spec.reset_after >= 0 &&
        pipe->forwarded >=
            static_cast<std::uint64_t>(pipe->spec.reset_after)) {
      *reset_both = true;
      return false;
    }
    return true;
  }

  void ServeConnection(int client_fd, const ConnPlan& plan) {
    const int server_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(target_port_);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (server_fd < 0 ||
        ::connect(server_fd, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      if (server_fd >= 0) ::close(server_fd);
      ::close(client_fd);
      return;
    }
    int nodelay = 1;
    ::setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &nodelay,
                 sizeof(nodelay));
    ::setsockopt(server_fd, IPPROTO_TCP, TCP_NODELAY, &nodelay,
                 sizeof(nodelay));

    Pipe up{client_fd, server_fd, plan.client_to_server, 0, true,
            &stats_.client_to_server_bytes};
    Pipe down{server_fd, client_fd, plan.server_to_client, 0, true,
              &stats_.server_to_client_bytes};
    bool reset_both = false;
    while (!stop_.load() && (up.open || down.open) && !reset_both) {
      pollfd fds[2];
      nfds_t count = 0;
      if (up.open) fds[count++] = pollfd{up.from, POLLIN, 0};
      if (down.open) fds[count++] = pollfd{down.from, POLLIN, 0};
      const int ready = ::poll(fds, count, 100);
      if (ready <= 0) continue;
      for (nfds_t i = 0; i < count; ++i) {
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        Pipe* pipe = fds[i].fd == up.from && up.open ? &up : &down;
        if (!PumpOnce(pipe, &reset_both)) {
          pipe->open = false;
          if (!reset_both) {
            // Propagate the half-close so the receiver sees EOF.
            ::shutdown(pipe->to, SHUT_WR);
          }
        }
      }
      // Once one side fully closed, a simple proxy is done: propagate
      // and tear down (the protocols under test never continue past a
      // peer's EOF in one direction only).
      if (!up.open && !down.open) break;
    }
    if (reset_both) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.resets;
      }
      HardReset(client_fd);
      HardReset(server_fd);
    } else {
      ::close(client_fd);
      ::close(server_fd);
    }
  }

  void Run() {
    std::size_t next_plan = 0;
    while (!stop_.load()) {
      pollfd listener{listen_fd_, POLLIN, 0};
      const int ready = ::poll(&listener, 1, 100);
      if (ready <= 0) continue;
      const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
      if (client_fd < 0) continue;
      const ConnPlan plan =
          plans_[std::min(next_plan, plans_.size() - 1)];
      ++next_plan;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.connections;
      }
      ServeConnection(client_fd, plan);
    }
  }

  std::uint16_t target_port_ = 0;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::vector<ConnPlan> plans_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  mutable std::mutex mutex_;
  FaultyProxyStats stats_;
};

}  // namespace testing
}  // namespace tcdp

#endif  // TCDP_TESTS_FAULT_INJECTION_H_
