// Unit tests for Algorithm 1 (core/privacy_loss): subset selection,
// the loss recurrence, and exact agreement with the numbers printed in
// the paper's Figure 3.

#include "core/privacy_loss.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "markov/smoothing.h"
#include "markov/stochastic_matrix.h"

namespace tcdp {
namespace {

TEST(LogLinearInExpAlpha, ZeroCoefficientGivesZero) {
  EXPECT_DOUBLE_EQ(LogLinearInExpAlpha(0.0, 5.0), 0.0);
}

TEST(LogLinearInExpAlpha, ZeroAlphaGivesZero) {
  EXPECT_DOUBLE_EQ(LogLinearInExpAlpha(0.7, 0.0), 0.0);
}

TEST(LogLinearInExpAlpha, MatchesDirectFormulaSmallAlpha) {
  const double c = 0.37, a = 2.5;
  EXPECT_NEAR(LogLinearInExpAlpha(c, a), std::log(c * (std::exp(a) - 1) + 1),
              1e-12);
}

TEST(LogLinearInExpAlpha, StableForLargeAlpha) {
  // log(c e^a (1 + ...)) ~ a + log(c) for huge a.
  const double c = 0.5, a = 500.0;
  EXPECT_NEAR(LogLinearInExpAlpha(c, a), a + std::log(c), 1e-9);
}

TEST(LogLinearInExpAlpha, ContinuousAcrossBranchSwitch) {
  // The function's slope is ~1 near the branch point, so values 1e-6
  // apart in alpha may differ by ~1e-6; allow 3x that.
  const double c = 0.3;
  EXPECT_NEAR(LogLinearInExpAlpha(c, 29.999999), LogLinearInExpAlpha(c, 30.0),
              3e-6);
}

TEST(ComputePairLoss, RejectsMismatchedSizes) {
  auto r = ComputePairLoss({0.5, 0.5}, {1.0}, 1.0);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ComputePairLoss, RejectsNegativeAlpha) {
  auto r = ComputePairLoss({0.5, 0.5}, {0.2, 0.8}, -0.1);
  EXPECT_FALSE(r.ok());
}

TEST(ComputePairLoss, IdenticalRowsGiveZeroLoss) {
  auto r = ComputePairLoss({0.3, 0.7}, {0.3, 0.7}, 2.0);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->loss, 0.0);
  EXPECT_TRUE(r->subset.empty());
}

TEST(ComputePairLoss, ZeroAlphaGivesZeroLoss) {
  auto r = ComputePairLoss({0.8, 0.2}, {0.0, 1.0}, 0.0);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->loss, 0.0);
  // The Corollary 2 seed subset is still reported.
  EXPECT_EQ(r->subset, std::vector<std::size_t>({0}));
}

TEST(ComputePairLoss, SelectsCoordinatesWhereQExceedsD) {
  // q = (0.8, 0.2), d = (0, 1): only coordinate 0 has q > d.
  auto r = ComputePairLoss({0.8, 0.2}, {0.0, 1.0}, 0.1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->subset, std::vector<std::size_t>({0}));
  EXPECT_NEAR(r->q_sum, 0.8, 1e-12);
  EXPECT_NEAR(r->d_sum, 0.0, 1e-12);
}

TEST(ComputePairLoss, HandCheckedValue) {
  // L = log(0.8*(e^0.1 - 1) + 1) = log(1.0841...) = 0.08078...
  auto r = ComputePairLoss({0.8, 0.2}, {0.0, 1.0}, 0.1);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->loss, std::log(0.8 * (std::exp(0.1) - 1.0) + 1.0), 1e-12);
}

TEST(ComputePairLoss, StrongestCorrelationIsIdentityOnAlpha) {
  // q = (1, 0), d = (0, 1): L(alpha) = alpha (Remark 1 upper bound).
  for (double alpha : {0.1, 0.5, 1.0, 5.0, 20.0}) {
    auto r = ComputePairLoss({1.0, 0.0}, {0.0, 1.0}, alpha);
    ASSERT_TRUE(r.ok());
    EXPECT_NEAR(r->loss, alpha, 1e-9) << "alpha=" << alpha;
  }
}

TEST(ComputePairLoss, RemovalRuleDropsWeakCoordinates) {
  // Coordinate 2 has q slightly above d; with large alpha the aggregate
  // ratio exceeds q2/d2 and the pair must be dropped (Inequality 21).
  const std::vector<double> q = {0.70, 0.05, 0.25};
  const std::vector<double> d = {0.05, 0.75, 0.20};
  auto big = ComputePairLoss(q, d, 10.0);
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big->subset, std::vector<std::size_t>({0}));
  // With tiny alpha the ratio bound is ~1 and both survive.
  auto small = ComputePairLoss(q, d, 0.001);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->subset, std::vector<std::size_t>({0, 2}));
}

TEST(ComputePairLoss, LossIsNonNegativeAndBoundedByAlpha) {
  const std::vector<double> q = {0.5, 0.3, 0.2};
  const std::vector<double> d = {0.1, 0.6, 0.3};
  for (double alpha : {0.01, 0.1, 1.0, 3.0, 10.0}) {
    auto r = ComputePairLoss(q, d, alpha);
    ASSERT_TRUE(r.ok());
    EXPECT_GE(r->loss, 0.0);
    EXPECT_LE(r->loss, alpha + 1e-12);
  }
}

// --- TemporalLossFunction over full matrices --------------------------

TEST(TemporalLossFunction, UniformMatrixHasZeroLoss) {
  TemporalLossFunction loss(StochasticMatrix::Uniform(4));
  EXPECT_DOUBLE_EQ(loss.Evaluate(1.0), 0.0);
  EXPECT_DOUBLE_EQ(loss.Evaluate(10.0), 0.0);
}

TEST(TemporalLossFunction, IdentityMatrixLossEqualsAlpha) {
  TemporalLossFunction loss(StochasticMatrix::Identity(3));
  for (double alpha : {0.1, 1.0, 7.0}) {
    EXPECT_NEAR(loss.Evaluate(alpha), alpha, 1e-9);
  }
}

TEST(TemporalLossFunction, SingleStateMatrixHasZeroLoss) {
  TemporalLossFunction loss(StochasticMatrix::Uniform(1));
  EXPECT_DOUBLE_EQ(loss.Evaluate(3.0), 0.0);
}

// The paper's Figure 3(a)(ii): P = (0.8 0.2; 0 1), eps = 0.1 per step.
// Printed series: 0.10 0.18 0.25 0.30 0.35 0.39 0.42 0.45 0.48 0.50.
TEST(TemporalLossFunction, ReproducesFigure3BplSeries) {
  TemporalLossFunction loss(
      StochasticMatrix::FromRows({{0.8, 0.2}, {0.0, 1.0}}));
  const double eps = 0.1;
  const std::vector<double> expected = {0.10, 0.18, 0.25, 0.30, 0.35,
                                        0.39, 0.42, 0.45, 0.48, 0.50};
  double bpl = eps;
  for (std::size_t t = 0; t < expected.size(); ++t) {
    if (t > 0) bpl = loss.Evaluate(bpl) + eps;
    EXPECT_NEAR(bpl, expected[t], 0.005) << "t=" << (t + 1);
  }
}

// Fine-grained check of the first accumulation steps.
TEST(TemporalLossFunction, Figure3FirstStepsHighPrecision) {
  TemporalLossFunction loss(
      StochasticMatrix::FromRows({{0.8, 0.2}, {0.0, 1.0}}));
  // L(0.1): best pair is (row0, row1): log(0.8*(e^0.1-1)+1) ~ 0.080784.
  EXPECT_NEAR(loss.Evaluate(0.1), std::log(0.8 * std::expm1(0.1) + 1.0),
              1e-12);
  // Competing pair (row1, row0) with subset {1}:
  // log(1.10517/1.02103) ~ 0.079189 — strictly smaller.
  const double competing =
      std::log((1.0 * std::expm1(0.1) + 1.0) /
               (0.2 * std::expm1(0.1) + 1.0));
  EXPECT_LT(competing, loss.Evaluate(0.1));
  auto detail = loss.EvaluateDetailed(0.1);
  EXPECT_EQ(detail.row_q, 0u);
  EXPECT_EQ(detail.row_d, 1u);
  EXPECT_NEAR(detail.q_sum, 0.8, 1e-12);
  EXPECT_NEAR(detail.d_sum, 0.0, 1e-12);
}

TEST(TemporalLossFunction, DetailReportsMaximizingPair) {
  // Asymmetric matrix: pair (2 -> 0) direction differs from (0 -> 2).
  TemporalLossFunction loss(StochasticMatrix::FromRows(
      {{0.9, 0.05, 0.05}, {0.3, 0.4, 0.3}, {0.1, 0.1, 0.8}}));
  auto detail = loss.EvaluateDetailed(1.0);
  EXPECT_GT(detail.loss, 0.0);
  // Recompute the reported pair directly and confirm the loss matches.
  auto pair = ComputePairLoss(loss.transition().Row(detail.row_q),
                              loss.transition().Row(detail.row_d), 1.0);
  ASSERT_TRUE(pair.ok());
  EXPECT_NEAR(pair->loss, detail.loss, 1e-12);
}

TEST(TemporalLossFunction, MonotoneInAlpha) {
  TemporalLossFunction loss(StochasticMatrix::FromRows(
      {{0.6, 0.3, 0.1}, {0.2, 0.5, 0.3}, {0.25, 0.25, 0.5}}));
  double prev = 0.0;
  for (double alpha = 0.0; alpha <= 8.0; alpha += 0.25) {
    const double v = loss.Evaluate(alpha);
    EXPECT_GE(v, prev - 1e-12) << "alpha=" << alpha;
    prev = v;
  }
}

TEST(TemporalLossFunction, SmoothedMatricesOrderedByStrength) {
  // Smaller s => stronger correlation => larger loss (Section VI).
  const double alpha = 1.0;
  double prev = 1e18;
  for (double s : {0.005, 0.05, 0.5}) {
    auto m = SmoothedCorrelationMatrix(8, s);
    ASSERT_TRUE(m.ok());
    TemporalLossFunction loss(*m);
    const double v = loss.Evaluate(alpha);
    EXPECT_LT(v, prev) << "s=" << s;
    prev = v;
  }
}

}  // namespace
}  // namespace tcdp
