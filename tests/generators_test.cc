// Unit tests for workload/generators.

#include "workload/generators.h"

#include <gtest/gtest.h>

#include "markov/smoothing.h"

namespace tcdp {
namespace {

TEST(RingRoadNetwork, ValidatesParameters) {
  EXPECT_FALSE(RingRoadNetwork(2).ok());
  EXPECT_FALSE(RingRoadNetwork(5, 0.6, 0.3).ok());  // 0.6 + 0.6 > 1
  EXPECT_FALSE(RingRoadNetwork(5, -0.1, 0.3).ok());
}

TEST(RingRoadNetwork, RowsAreDistributionsWithNeighborStructure) {
  auto m = RingRoadNetwork(6, 0.4, 0.25);
  ASSERT_TRUE(m.ok());
  for (std::size_t i = 0; i < 6; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < 6; ++j) sum += m->At(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-12);
    // Stay and adjacent moves dominate background.
    EXPECT_GT(m->At(i, i), m->At(i, (i + 2) % 6));
    EXPECT_GT(m->At(i, (i + 1) % 6), m->At(i, (i + 3) % 6));
  }
}

TEST(RingRoadNetwork, IsIrreducible) {
  auto m = RingRoadNetwork(5);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(MarkovChain::WithUniformInitial(*m).IsIrreducible());
}

TEST(ClickstreamModel, ValidatesParameters) {
  EXPECT_FALSE(ClickstreamModel(1).ok());
  EXPECT_FALSE(ClickstreamModel(5, 0.6, 0.6).ok());
}

TEST(ClickstreamModel, HubAttractsTraffic) {
  auto m = ClickstreamModel(8, 0.4, 0.3);
  ASSERT_TRUE(m.ok());
  for (std::size_t i = 2; i < 8; ++i) {
    EXPECT_GT(m->At(i, 0), m->At(i, 2)) << "page " << i;
  }
}

TEST(SimulateTrajectories, ShapesAndDeterminism) {
  auto m = RingRoadNetwork(5);
  ASSERT_TRUE(m.ok());
  auto chain = MarkovChain::WithUniformInitial(*m);
  Rng rng1(55), rng2(55);
  auto t1 = SimulateTrajectories(chain, 10, 20, &rng1);
  auto t2 = SimulateTrajectories(chain, 10, 20, &rng2);
  ASSERT_EQ(t1.size(), 10u);
  EXPECT_EQ(t1, t2);  // same seed, same trajectories
  for (const auto& traj : t1) EXPECT_EQ(traj.size(), 20u);
}

TEST(SimulatePopulation, BuildsConsistentSeries) {
  auto m = RingRoadNetwork(5);
  ASSERT_TRUE(m.ok());
  auto chain = MarkovChain::WithUniformInitial(*m);
  Rng rng(56);
  auto series = SimulatePopulation(chain, 12, 8, &rng);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->horizon(), 8u);
  EXPECT_EQ(series->num_users(), 12u);
  EXPECT_EQ(series->domain_size(), 5u);
  // Every snapshot histogram sums to the population.
  for (std::size_t t = 1; t <= 8; ++t) {
    auto db = series->At(t);
    ASSERT_TRUE(db.ok());
    double total = 0.0;
    for (double c : db->Histogram()) total += c;
    EXPECT_DOUBLE_EQ(total, 12.0);
  }
}

TEST(SimulatePopulation, ValidatesArguments) {
  auto m = RingRoadNetwork(5);
  ASSERT_TRUE(m.ok());
  auto chain = MarkovChain::WithUniformInitial(*m);
  Rng rng(57);
  EXPECT_FALSE(SimulatePopulation(chain, 0, 5, &rng).ok());
  EXPECT_FALSE(SimulatePopulation(chain, 5, 0, &rng).ok());
}

TEST(MakeFigure1Scenario, MatchesPaperTables) {
  auto scenario = MakeFigure1Scenario();
  ASSERT_TRUE(scenario.ok());
  EXPECT_EQ(scenario->series.horizon(), 3u);
  EXPECT_EQ(scenario->series.num_users(), 4u);
  EXPECT_EQ(scenario->location_names.size(), 5u);
  // True counts of Figure 1(c), t=2: loc1=2, loc4=1, loc5=1.
  auto d2 = scenario->series.At(2);
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d2->Histogram(), (std::vector<double>{2, 0, 0, 1, 1}));
  // The Example 1 pattern: loc4 -> loc5 with probability 1.
  EXPECT_DOUBLE_EQ(scenario->forward_correlation.At(3, 4), 1.0);
}

}  // namespace
}  // namespace tcdp
