// Unit tests for markov/estimation: MLE of forward/backward correlations
// from trajectories (the adversary's supervised route, Section III-A).

#include "markov/estimation.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "markov/smoothing.h"

namespace tcdp {
namespace {

TEST(EstimateForward, ValidatesInputs) {
  EXPECT_FALSE(EstimateForwardTransition({{0, 1}}, 0).ok());
  EXPECT_FALSE(EstimateForwardTransition({{0, 5}}, 2).ok());
  EXPECT_FALSE(EstimateForwardTransition({{0}}, 2).ok());  // no pairs
  EstimationOptions bad;
  bad.additive_smoothing = -1.0;
  EXPECT_FALSE(EstimateForwardTransition({{0, 1}}, 2, bad).ok());
}

TEST(EstimateForward, CountsSimpleTransitions) {
  // 0->1 twice, 0->0 once, 1->0 twice.
  std::vector<Trajectory> trajs = {{0, 1, 0, 1, 0}, {0, 0}};
  auto m = EstimateForwardTransition(trajs, 2);
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->At(0, 1), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m->At(0, 0), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(m->At(1, 0), 1.0);
}

TEST(EstimateForward, UnobservedRowFallsBackToUniform) {
  std::vector<Trajectory> trajs = {{0, 0, 0}};
  auto m = EstimateForwardTransition(trajs, 3);
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->At(1, 0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(m->At(2, 2), 1.0 / 3.0, 1e-12);
}

TEST(EstimateForward, AdditiveSmoothingShiftsTowardUniform) {
  std::vector<Trajectory> trajs = {{0, 1, 0, 1}};
  EstimationOptions opts;
  opts.additive_smoothing = 1000.0;
  auto m = EstimateForwardTransition(trajs, 2, opts);
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->At(0, 1), 0.5, 0.01);
}

TEST(EstimateBackward, ReversesCountDirection) {
  // Trajectory 0 -> 1: backward transition from current 1 to previous 0.
  std::vector<Trajectory> trajs = {{0, 1}};
  auto m = EstimateBackwardTransition(trajs, 2);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->At(1, 0), 1.0);
}

TEST(EstimateForward, RecoversTrueMatrixFromManySamples) {
  Rng rng(77);
  auto truth = SmoothedCorrelationMatrix(4, 0.2);
  ASSERT_TRUE(truth.ok());
  auto chain = MarkovChain::WithUniformInitial(*truth);
  std::vector<Trajectory> trajs;
  for (int i = 0; i < 400; ++i) trajs.push_back(chain.Simulate(200, &rng));
  auto est = EstimateForwardTransition(trajs, 4);
  ASSERT_TRUE(est.ok());
  EXPECT_LT(est->matrix().MaxAbsDiff(truth->matrix()), 0.02);
}

TEST(EstimateBackward, MatchesBayesReversalOnLongRuns) {
  // Empirical backward MLE should approximate the stationary Bayesian
  // reversal of the forward chain.
  Rng rng(78);
  auto fwd = StochasticMatrix::FromRows(
      {{0.1, 0.8, 0.1}, {0.1, 0.1, 0.8}, {0.8, 0.1, 0.1}});
  auto chain = MarkovChain::WithUniformInitial(fwd);
  std::vector<Trajectory> trajs;
  for (int i = 0; i < 200; ++i) trajs.push_back(chain.Simulate(400, &rng));
  auto est_back = EstimateBackwardTransition(trajs, 3);
  ASSERT_TRUE(est_back.ok());
  // Current state 1 mostly came from state 0 in this biased cycle.
  EXPECT_GT(est_back->At(1, 0), 0.6);
}

TEST(EstimateInitialDistribution, CountsFirstStates) {
  std::vector<Trajectory> trajs = {{0, 1}, {0}, {2, 2}, {0}};
  auto d = EstimateInitialDistribution(trajs, 3);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ((*d)[0], 0.75);
  EXPECT_DOUBLE_EQ((*d)[1], 0.0);
  EXPECT_DOUBLE_EQ((*d)[2], 0.25);
}

TEST(EstimateInitialDistribution, RejectsEmptyInput) {
  EXPECT_FALSE(EstimateInitialDistribution({}, 2).ok());
  EXPECT_FALSE(EstimateInitialDistribution({{}}, 2).ok());
}

}  // namespace
}  // namespace tcdp
