// Tests for the benchmark harness runner (src/bench/harness.h): suite
// selection, gate evaluation over derived and case.metric variables,
// and the skip-with-reason paths for min_cores / full_only gates.

#include "bench/harness.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace tcdp {
namespace bench {
namespace {

SuiteSpec DemoSpec() {
  SuiteSpec spec;
  spec.name = "demo";
  spec.description = "toy suite";
  return spec;
}

Status DemoRun(SuiteContext* ctx) {
  ctx->Record("a", {{"n", 4.0}}, {{"alpha", 0.5}});
  ctx->Derived("speedup", 2.0);
  return Status::OK();
}

const GateResult* FindGate(const BenchReport& report,
                           const std::string& name) {
  for (const GateResult& gate : report.gates) {
    if (gate.name == name) return &gate;
  }
  return nullptr;
}

TEST(Harness, RunsSuitesAndRecordsMetadata) {
  Harness harness;
  harness.Register(DemoSpec(), DemoRun);
  RunOptions options;
  options.smoke = true;
  std::ostringstream log;
  const auto report = harness.Run(options, {}, log);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_TRUE(report.value().smoke);
  EXPECT_EQ(report.value().suites_run, std::vector<std::string>{"demo"});
  ASSERT_EQ(report.value().records.size(), 1u);
  EXPECT_EQ(report.value().records[0].mode, "smoke");
  EXPECT_GE(report.value().hardware.cores, 1u);
  EXPECT_FALSE(report.value().build.build_type.empty());
  EXPECT_DOUBLE_EQ(report.value().derived.at("demo").at("speedup"), 2.0);
}

TEST(Harness, UnknownSuiteIsAnError) {
  Harness harness;
  harness.Register(DemoSpec(), DemoRun);
  std::ostringstream log;
  const auto report = harness.Run(RunOptions{}, {"nope"}, log);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("nope"), std::string::npos);
}

TEST(Harness, GatesSeeDerivedAndCaseMetricVariables) {
  SuiteSpec spec = DemoSpec();
  spec.gates = {
      {"derived_gate", "speedup > 1"},
      {"case_metric_gate", "a.alpha >= 0.5 && a.alpha <= 0.5"},
      {"failing_gate", "speedup > 100"},
  };
  Harness harness;
  harness.Register(std::move(spec), DemoRun);
  std::ostringstream log;
  const auto report = harness.Run(RunOptions{}, {}, log);
  ASSERT_TRUE(report.ok()) << report.status().message();

  const GateResult* derived_gate = FindGate(report.value(), "derived_gate");
  ASSERT_NE(derived_gate, nullptr);
  EXPECT_TRUE(derived_gate->enforced);
  EXPECT_TRUE(derived_gate->passed);

  const GateResult* case_gate = FindGate(report.value(), "case_metric_gate");
  ASSERT_NE(case_gate, nullptr);
  EXPECT_TRUE(case_gate->passed);

  // A failing gate is recorded, not an error from Run().
  const GateResult* failing = FindGate(report.value(), "failing_gate");
  ASSERT_NE(failing, nullptr);
  EXPECT_TRUE(failing->enforced);
  EXPECT_FALSE(failing->passed);
  EXPECT_FALSE(report.value().AllGatesPassed());
}

TEST(Harness, MinCoresGateSkipsWithReasonOnSmallHosts) {
  SuiteSpec spec = DemoSpec();
  spec.gates = {{"parallel_beats_serial", "speedup > 1",
                 /*min_cores=*/64, /*full_only=*/false}};
  Harness harness;
  harness.Register(std::move(spec), DemoRun);
  RunOptions options;
  options.cores = 1;  // pretend the host is 1-core
  std::ostringstream log;
  const auto report = harness.Run(options, {}, log);
  ASSERT_TRUE(report.ok()) << report.status().message();
  const GateResult* gate = FindGate(report.value(), "parallel_beats_serial");
  ASSERT_NE(gate, nullptr);
  EXPECT_FALSE(gate->enforced);
  EXPECT_NE(gate->reason.find("cores"), std::string::npos);
  // A skipped gate never fails the run.
  EXPECT_TRUE(report.value().AllGatesPassed());
}

TEST(Harness, FullOnlyGateSkipsInSmokeMode) {
  SuiteSpec spec = DemoSpec();
  spec.gates = {{"timing_bar", "speedup > 100",
                 /*min_cores=*/0, /*full_only=*/true}};
  Harness harness;
  harness.Register(std::move(spec), DemoRun);

  RunOptions smoke;
  smoke.smoke = true;
  std::ostringstream log;
  const auto smoke_report = harness.Run(smoke, {}, log);
  ASSERT_TRUE(smoke_report.ok());
  const GateResult* skipped = FindGate(smoke_report.value(), "timing_bar");
  ASSERT_NE(skipped, nullptr);
  EXPECT_FALSE(skipped->enforced);
  EXPECT_TRUE(smoke_report.value().AllGatesPassed());

  // The same gate is enforced (and here fails) on a full run.
  const auto full_report = harness.Run(RunOptions{}, {}, log);
  ASSERT_TRUE(full_report.ok());
  const GateResult* enforced = FindGate(full_report.value(), "timing_bar");
  ASSERT_NE(enforced, nullptr);
  EXPECT_TRUE(enforced->enforced);
  EXPECT_FALSE(enforced->passed);
}

TEST(Harness, SkippedCasesLandInTheReport) {
  Harness harness;
  harness.Register(DemoSpec(), [](SuiteContext* ctx) {
    ctx->Record("a", {}, {{"alpha", 1.0}});
    ctx->Skip("big_case", "full-run case, skipped in --smoke mode");
    return Status::OK();
  });
  RunOptions options;
  options.smoke = true;
  std::ostringstream log;
  const auto report = harness.Run(options, {}, log);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().HasSkip("demo", "big_case"));
  ASSERT_EQ(report.value().skips.size(), 1u);
  EXPECT_FALSE(report.value().skips[0].reason.empty());
}

TEST(Harness, GateWithTypoFailsLoudly) {
  SuiteSpec spec = DemoSpec();
  spec.gates = {{"typo_gate", "speeddup > 1"}};
  Harness harness;
  harness.Register(std::move(spec), DemoRun);
  std::ostringstream log;
  const auto report = harness.Run(RunOptions{}, {}, log);
  // An unbound variable in a gate is a failed gate (or a run error),
  // never a silent pass.
  if (report.ok()) {
    const GateResult* gate = FindGate(report.value(), "typo_gate");
    ASSERT_NE(gate, nullptr);
    EXPECT_TRUE(gate->enforced);
    EXPECT_FALSE(gate->passed);
    EXPECT_FALSE(gate->reason.empty());
  }
}

TEST(Harness, RepetitionsResolveFromSpecAndOverride) {
  SuiteSpec spec = DemoSpec();
  spec.repetitions = 3;
  std::size_t seen = 0;
  Harness harness;
  harness.Register(std::move(spec), [&seen](SuiteContext* ctx) {
    seen = ctx->repetitions();
    ctx->Record("a", {}, {{"alpha", 1.0}});
    return Status::OK();
  });
  std::ostringstream log;
  ASSERT_TRUE(harness.Run(RunOptions{}, {}, log).ok());
  EXPECT_EQ(seen, 3u);

  RunOptions override_reps;
  override_reps.repetitions = 7;
  ASSERT_TRUE(harness.Run(override_reps, {}, log).ok());
  EXPECT_EQ(seen, 7u);
}

TEST(Harness, AllBuiltInSuitesRegister) {
  Harness harness;
  RegisterAllSuites(&harness);
  const auto names = harness.SuiteNames();
  EXPECT_EQ(names.size(), 15u);
  for (const char* expected :
       {"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "table2", "wevent",
        "ablation", "kernels", "fleet", "shard", "net", "repl", "obs"}) {
    EXPECT_NE(harness.FindSpec(expected), nullptr) << expected;
  }
}

}  // namespace
}  // namespace bench
}  // namespace tcdp
