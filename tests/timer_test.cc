// Unit tests for common/timer.

#include "common/timer.h"

#include <gtest/gtest.h>

namespace tcdp {
namespace {

TEST(WallTimer, ElapsedIsNonNegativeAndMonotone) {
  WallTimer timer;
  const double t1 = timer.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  // Busy-wait a little so time visibly advances.
  volatile double sink = 0.0;
  for (int i = 0; i < 200000; ++i) sink += static_cast<double>(i) * 1e-9;
  const double t2 = timer.ElapsedSeconds();
  EXPECT_GE(t2, t1);
  EXPECT_GT(sink, 0.0);
}

TEST(WallTimer, MillisMatchesSeconds) {
  WallTimer timer;
  const double s = timer.ElapsedSeconds();
  const double ms = timer.ElapsedMillis();
  // Sampled at slightly different instants; coarse consistency only.
  EXPECT_NEAR(ms, s * 1e3, 10.0);
}

TEST(WallTimer, ResetRestartsClock) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 500000; ++i) sink += static_cast<double>(i) * 1e-9;
  const double before = timer.ElapsedSeconds();
  timer.Reset();
  const double after = timer.ElapsedSeconds();
  EXPECT_LE(after, before + 1e-6);
  EXPECT_GT(sink, 0.0);
}

}  // namespace
}  // namespace tcdp
