// kHealth/kReady over the wire (ISSUE 9): codec round-trips and
// truncation fuzz for the health report, the no-watchdog degradation,
// and the end-to-end fault-injection property — a stalled shard worker
// flips kHealth unhealthy within the configured scan budget, leaves a
// complete flight-recorder bundle, and recovers.

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/messages.h"
#include "net/server.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"
#include "server/sharded_service.h"
#include "workload/generators.h"

namespace tcdp {
namespace net {
namespace {

TemporalCorrelations Profile() {
  auto matrix = ClickstreamModel(4, 0.3);
  EXPECT_TRUE(matrix.ok());
  return TemporalCorrelations::Both(*matrix, *matrix).value();
}

WireHealthReport SampleReport() {
  WireHealthReport report;
  report.healthy = false;
  report.ready = false;
  report.scans = 42;
  report.reason = "shard-1: queue stalled";
  WireComponentHealth comp;
  comp.name = "shard-1";
  comp.kind = 0;
  comp.stalled = true;
  comp.progress = 1234;
  comp.pending = 9;
  comp.age_ns = 5000000000ull;
  comp.detail = "queue stalled: 9 pending";
  report.components.push_back(comp);
  comp = WireComponentHealth();
  comp.name = "net-io";
  comp.kind = 1;
  report.components.push_back(comp);
  return report;
}

TEST(HealthCodec, RoundTrip) {
  const WireHealthReport report = SampleReport();
  auto decoded = DecodeHealthReport(EncodeHealthReport(report));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->healthy, report.healthy);
  EXPECT_EQ(decoded->ready, report.ready);
  EXPECT_EQ(decoded->scans, report.scans);
  EXPECT_EQ(decoded->reason, report.reason);
  ASSERT_EQ(decoded->components.size(), 2u);
  EXPECT_EQ(decoded->components[0].name, "shard-1");
  EXPECT_EQ(decoded->components[0].stalled, true);
  EXPECT_EQ(decoded->components[0].progress, 1234u);
  EXPECT_EQ(decoded->components[0].pending, 9u);
  EXPECT_EQ(decoded->components[0].age_ns, 5000000000ull);
  EXPECT_EQ(decoded->components[0].detail, "queue stalled: 9 pending");
  EXPECT_EQ(decoded->components[1].name, "net-io");
  EXPECT_EQ(decoded->components[1].kind, 1u);
}

TEST(HealthCodec, EveryTruncationFailsCleanly) {
  const std::string payload = EncodeHealthReport(SampleReport());
  for (std::size_t len = 0; len < payload.size(); ++len) {
    auto decoded = DecodeHealthReport(payload.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "truncation at " << len << " decoded";
  }
}

TEST(HealthCodec, RejectsOutOfRangeEnums) {
  WireHealthReport report = SampleReport();
  report.components[0].kind = 9;  // only 0..2 are declared kinds
  EXPECT_FALSE(DecodeHealthReport(EncodeHealthReport(report)).ok());
}

TEST(TraceDumpCodec, RoundTrip) {
  auto decoded = DecodeTraceDumpReport(EncodeTraceDumpReport("/tmp/t.json"));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, "/tmp/t.json");
  EXPECT_FALSE(DecodeTraceDumpReport("").ok());
}

/// Serving stack with a real watchdog wired into the net options.
struct HealthTestServer {
  std::unique_ptr<server::ShardedReleaseService> service;
  std::unique_ptr<obs::FlightRecorder> recorder;
  std::unique_ptr<obs::Watchdog> watchdog;
  std::unique_ptr<NetServer> server;
  std::thread thread;
  Status serve_status;

  static std::unique_ptr<HealthTestServer> Start(
      const obs::WatchdogOptions& watchdog_options,
      const std::string& diag_dir = "") {
    auto ts = std::make_unique<HealthTestServer>();
    server::ShardedServiceOptions options;
    options.num_shards = 2;
    options.batch_window = 1;
    options.queue_capacity = 1024;  // room to pile work behind a stall
    auto service = server::ShardedReleaseService::Create("", options);
    EXPECT_TRUE(service.ok()) << service.status();
    if (!service.ok()) return nullptr;
    ts->service = std::move(service).value();

    obs::WatchdogOptions wd = watchdog_options;
    if (!diag_dir.empty()) {
      obs::FlightRecorderOptions recorder_options;
      recorder_options.dir = diag_dir;
      recorder_options.state_text = [raw = ts->service.get()] {
        return raw->DiagnosticStateText();
      };
      ts->recorder =
          std::make_unique<obs::FlightRecorder>(recorder_options);
      wd.flight_recorder = ts->recorder.get();
    }
    ts->watchdog = std::make_unique<obs::Watchdog>(wd);
    EXPECT_TRUE(ts->watchdog->Start().ok());
    ts->watchdog->SetReady(true);

    NetServerOptions net_options;
    net_options.watchdog = ts->watchdog.get();
    auto server = NetServer::Listen(ts->service.get(), net_options);
    EXPECT_TRUE(server.ok()) << server.status();
    if (!server.ok()) return nullptr;
    ts->server = std::move(server).value();
    ts->thread = std::thread(
        [ts = ts.get()] { ts->serve_status = ts->server->Serve(); });
    return ts;
  }

  ~HealthTestServer() {
    if (thread.joinable()) {
      server->Stop();
      thread.join();
    }
    // Stop scanning before the service (and its heartbeats) tear down.
    if (watchdog) watchdog->Stop();
    EXPECT_TRUE(serve_status.ok()) << serve_status;
  }
};

TEST(HealthWire, NoWatchdogDegradesToHealthy) {
  server::ShardedServiceOptions options;
  options.num_shards = 1;
  options.batch_window = 1;
  auto service = server::ShardedReleaseService::Create("", options);
  ASSERT_TRUE(service.ok());
  auto server = NetServer::Listen(service->get(), {});
  ASSERT_TRUE(server.ok());
  std::thread thread(
      [srv = server->get()] { EXPECT_TRUE(srv->Serve().ok()); });
  auto client = NetClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok()) << client.status();
  auto health = (*client)->Health();
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_TRUE(health->healthy);
  EXPECT_TRUE(health->ready);
  EXPECT_NE(health->reason.find("no watchdog"), std::string::npos);
  ASSERT_TRUE((*client)->Close().ok());
  (*server)->Stop();
  thread.join();
  ASSERT_TRUE((*service)->Close().ok());
}

TEST(HealthWire, InjectedShardStallFlipsHealthAndLeavesABundle) {
  obs::SetMetricsEnabled(true);
  const std::string diag_dir =
      (std::filesystem::temp_directory_path() /
       ("tcdp-health-diag-" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(diag_dir);

  obs::WatchdogOptions wd;
  wd.interval_ms = 10;
  wd.stall_ticks = 2;
  auto ts = HealthTestServer::Start(wd, diag_dir);
  ASSERT_NE(ts, nullptr);
  auto client = NetClient::Connect("127.0.0.1", ts->server->port());
  ASSERT_TRUE(client.ok()) << client.status();

  // Both probes healthy before the fault.
  auto ready = (*client)->Ready();
  ASSERT_TRUE(ready.ok()) << ready.status();
  EXPECT_TRUE(ready->healthy);
  EXPECT_TRUE(ready->ready);

  // Find a user routed to shard 0, stall that worker, then pile work
  // behind it: batch_window=1 dispatches each release immediately.
  std::string victim;
  for (int i = 0; i < 64 && victim.empty(); ++i) {
    const std::string name = "user-" + std::to_string(i);
    if (server::ShardedReleaseService::ShardOf(name, 2) == 0) victim = name;
  }
  ASSERT_FALSE(victim.empty());
  ASSERT_TRUE((*client)->Join(victim, Profile()).ok());
  ASSERT_TRUE((*client)->Flush().ok());

  ts->service->SetShardStallForTesting(0, true);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE((*client)->Release(victim, 0.05).ok());
  }
  ASSERT_TRUE((*client)->Drain().ok());

  // Property: detection within 2 scan intervals of the stall becoming
  // classifiable, asserted via scan counts — poll kHealth until the
  // verdict flips and bound how many scans it took.
  const std::uint64_t scans_at_fault = ts->watchdog->scans();
  bool unhealthy = false;
  std::uint64_t flipped_scan = 0;
  for (int i = 0; i < 400 && !unhealthy; ++i) {
    auto health = (*client)->Health();
    ASSERT_TRUE(health.ok()) << health.status();
    if (!health->healthy) {
      unhealthy = true;
      EXPECT_FALSE(health->ready);
      bool saw_shard = false;
      for (const WireComponentHealth& comp : health->components) {
        if (comp.name == "shard-0") {
          EXPECT_TRUE(comp.stalled);
          EXPECT_GT(comp.pending, 0u);
          saw_shard = true;
        }
      }
      EXPECT_TRUE(saw_shard);
      for (const auto& comp : ts->watchdog->Snapshot().components) {
        if (comp.name == "shard-0") flipped_scan = comp.stall_detected_scan;
      }
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  ASSERT_TRUE(unhealthy);
  // The freeze needs one scan to baseline the progress counter, then
  // stall_ticks frozen scans to classify: detection within
  // stall_ticks + 1 scans of the fault, i.e. <= 2 scan intervals
  // after the baselining scan (the ISSUE 9 acceptance bound).
  EXPECT_LE(flipped_scan, scans_at_fault + wd.stall_ticks + 2);

  // The stall transition captured a complete bundle.
  ASSERT_NE(ts->recorder, nullptr);
  std::vector<std::string> bundles;
  for (int i = 0; i < 200 && bundles.empty(); ++i) {
    bundles = ts->recorder->ListBundles();
    if (bundles.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ASSERT_FALSE(bundles.empty());
  const std::string bundle = diag_dir + "/" + bundles.front();
  EXPECT_NE(bundle.find("stall-shard-0"), std::string::npos);
  std::ifstream metrics_file(bundle + "/metrics.bin", std::ios::binary);
  std::stringstream metrics_bytes;
  metrics_bytes << metrics_file.rdbuf();
  auto decoded = obs::DecodeMetricsSnapshot(metrics_bytes.str());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  std::ifstream trace_file(bundle + "/trace.json");
  std::stringstream trace_bytes;
  trace_bytes << trace_file.rdbuf();
  const std::string trace = trace_bytes.str();
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.front(), '{');  // Chrome trace object
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  std::ifstream state_file(bundle + "/state.txt");
  std::stringstream state_bytes;
  state_bytes << state_file.rdbuf();
  EXPECT_NE(state_bytes.str().find("shard 0"), std::string::npos);

  // Release the fault: the worker drains and health recovers.
  ts->service->SetShardStallForTesting(0, false);
  bool recovered = false;
  for (int i = 0; i < 400 && !recovered; ++i) {
    auto health = (*client)->Ready();
    ASSERT_TRUE(health.ok()) << health.status();
    recovered = health->healthy && health->ready;
    if (!recovered) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  EXPECT_TRUE(recovered);

  ASSERT_TRUE((*client)->Close().ok());
  ts.reset();
  std::filesystem::remove_all(diag_dir);
}

}  // namespace
}  // namespace net
}  // namespace tcdp
