// Unit tests for common/math_util.

#include "common/math_util.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace tcdp {
namespace {

TEST(ApproxEqual, WithinTolerance) {
  EXPECT_TRUE(ApproxEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(ApproxEqual(1.0, 1.0001));
  EXPECT_TRUE(ApproxEqual(1.0, 1.1, 0.2));
}

TEST(RelApproxEqual, ScalesWithMagnitude) {
  EXPECT_TRUE(RelApproxEqual(1e12, 1e12 * (1 + 1e-10)));
  EXPECT_FALSE(RelApproxEqual(1e12, 1e12 * 1.01));
  EXPECT_TRUE(RelApproxEqual(0.0, 1e-10));
}

TEST(Clamp, ClampsBothEnds) {
  EXPECT_DOUBLE_EQ(Clamp(-1.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(2.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(SafeLog, HandlesEdgeCases) {
  EXPECT_DOUBLE_EQ(SafeLog(std::exp(1.0)), 1.0);
  EXPECT_EQ(SafeLog(0.0), -kInf);
  EXPECT_TRUE(std::isnan(SafeLog(-1.0)));
}

TEST(IsProbability, AcceptsRangeRejectsOutside) {
  EXPECT_TRUE(IsProbability(0.0));
  EXPECT_TRUE(IsProbability(1.0));
  EXPECT_TRUE(IsProbability(0.5));
  EXPECT_FALSE(IsProbability(1.1));
  EXPECT_FALSE(IsProbability(-0.1));
  EXPECT_FALSE(IsProbability(kInf));
}

TEST(IsProbabilityVector, ValidatesSumAndEntries) {
  EXPECT_TRUE(IsProbabilityVector({0.25, 0.25, 0.5}));
  EXPECT_FALSE(IsProbabilityVector({0.5, 0.6}));
  EXPECT_FALSE(IsProbabilityVector({1.5, -0.5}));
  EXPECT_FALSE(IsProbabilityVector({}));  // sums to 0
}

TEST(NormalizeInPlace, NormalizesPositiveVectors) {
  std::vector<double> v = {1.0, 3.0};
  ASSERT_TRUE(NormalizeInPlace(&v));
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
}

TEST(NormalizeInPlace, RejectsZeroAndNegativeSums) {
  std::vector<double> zero = {0.0, 0.0};
  EXPECT_FALSE(NormalizeInPlace(&zero));
  std::vector<double> neg = {1.0, -2.0};
  EXPECT_FALSE(NormalizeInPlace(&neg));
  EXPECT_DOUBLE_EQ(neg[0], 1.0);  // untouched on failure
}

TEST(L1Distance, ComputesSumOfAbsoluteDiffs) {
  EXPECT_DOUBLE_EQ(L1Distance({1, 2, 3}, {1, 0, 6}), 5.0);
  EXPECT_DOUBLE_EQ(L1Distance({}, {}), 0.0);
}

TEST(LogSumExp, MatchesDirectComputation) {
  std::vector<double> x = {0.0, 1.0, 2.0};
  double direct = std::log(std::exp(0.0) + std::exp(1.0) + std::exp(2.0));
  EXPECT_NEAR(LogSumExp(x), direct, 1e-12);
}

TEST(LogSumExp, StableForLargeInputs) {
  std::vector<double> x = {1000.0, 1000.0};
  EXPECT_NEAR(LogSumExp(x), 1000.0 + std::log(2.0), 1e-9);
}

TEST(LogSumExp, EmptyIsMinusInfinity) {
  EXPECT_EQ(LogSumExp({}), -kInf);
}

TEST(LogSumExp, AllMinusInfinity) {
  EXPECT_EQ(LogSumExp({-kInf, -kInf}), -kInf);
}

TEST(MeanStdDev, BasicValues) {
  std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_NEAR(StdDev(v), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({1.0}), 0.0);
}

}  // namespace
}  // namespace tcdp
