// Unit and property tests for core/accountant_bank: cohort grouping,
// heterogeneous/sparse schedules, late joiners, and the bank's
// equivalence contract — every per-user series bitwise equal to the
// single-user TplAccountant reference, at any thread count.

#include "core/accountant_bank.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/tpl_accountant.h"
#include "markov/stochastic_matrix.h"

namespace tcdp {
namespace {

StochasticMatrix Fig3Matrix() {
  return StochasticMatrix::FromRows({{0.8, 0.2}, {0.0, 1.0}});
}

TemporalCorrelations Fig3Both() {
  auto c = TemporalCorrelations::Both(Fig3Matrix(), Fig3Matrix());
  EXPECT_TRUE(c.ok());
  return std::move(c).value();
}

TEST(AccountantBank, RejectsBadEpsilon) {
  AccountantBank bank;
  bank.AddUser(Fig3Both());
  EXPECT_FALSE(bank.RecordRelease(0.0).ok());
  EXPECT_FALSE(bank.RecordRelease(-1.0).ok());
  EXPECT_EQ(bank.horizon(), 0u);
}

TEST(AccountantBank, UniformFleetMatchesReferenceBitwise) {
  AccountantBankOptions options;
  AccountantBank bank(options);
  for (int u = 0; u < 5; ++u) bank.AddUser(Fig3Both());
  const std::vector<double> schedule = {0.1, 0.2, 0.05, 0.3};
  for (double eps : schedule) ASSERT_TRUE(bank.RecordRelease(eps).ok());

  // Reference through a separately built but identically quantized
  // cache: determinism makes shared state unnecessary for equality.
  TemporalLossCache cache(options.cache);
  auto corr = Fig3Both();
  TplAccountant reference(corr, cache.Intern(corr.backward()),
                          cache.Intern(corr.forward()),
                          options.cache.alpha_resolution);
  for (double eps : schedule) ASSERT_TRUE(reference.RecordRelease(eps).ok());

  for (std::size_t u = 0; u < bank.num_users(); ++u) {
    EXPECT_EQ(bank.BplSeriesFor(u), reference.BplSeries()) << "user " << u;
    EXPECT_EQ(bank.FplSeriesFor(u), reference.FplSeries()) << "user " << u;
    EXPECT_EQ(bank.TplSeriesFor(u), reference.TplSeries()) << "user " << u;
    EXPECT_EQ(bank.MaxTplFor(u), reference.MaxTpl());
    EXPECT_DOUBLE_EQ(bank.UserEpsSum(u), reference.UserLevelTpl());
  }
  EXPECT_EQ(bank.num_cohorts(), 1u);
  EXPECT_EQ(*bank.MaxTplAt(2), *reference.Tpl(2));
}

TEST(AccountantBank, UncachedModeMatchesDirectReferenceBitwise) {
  AccountantBankOptions options;
  options.share_loss_cache = false;
  AccountantBank bank(options);
  bank.AddUser(Fig3Both());
  TplAccountant reference(Fig3Both());
  for (double eps : {0.1, 0.2, 0.05}) {
    ASSERT_TRUE(bank.RecordRelease(eps).ok());
    ASSERT_TRUE(reference.RecordRelease(eps).ok());
  }
  EXPECT_EQ(bank.TplSeriesFor(0), reference.TplSeries());
  EXPECT_EQ(bank.cache_stats().hits + bank.cache_stats().misses, 0u);
}

TEST(AccountantBank, SkippedUsersPropagateLossWithoutAccruingBudget) {
  AccountantBank bank;
  const std::size_t user = bank.AddUser(Fig3Both());
  ASSERT_TRUE(bank.RecordRelease(0.5, {user}).ok());
  ASSERT_TRUE(bank.RecordRelease(0.5, {}).ok());  // nobody participates
  ASSERT_TRUE(bank.RecordRelease(0.5, {user}).ok());
  EXPECT_DOUBLE_EQ(bank.UserEpsSum(user), 1.0);
  EXPECT_TRUE(bank.Participated(user, 0));
  EXPECT_FALSE(bank.Participated(user, 1));
  EXPECT_EQ(bank.EpsilonsFor(user), (std::vector<double>{0.5, 0.0, 0.5}));

  const auto bpl = bank.BplSeriesFor(user);
  // The gap step accrues no eps but prior leakage still propagates:
  // 0 < BPL_2 = L^B(BPL_1) <= BPL_1 (Remark 1).
  EXPECT_GT(bpl[1], 0.0);
  EXPECT_LE(bpl[1], bpl[0]);
  // And BPL_3 = L^B(BPL_2) + 0.5 > BPL_1.
  EXPECT_GT(bpl[2], bpl[0]);
}

TEST(AccountantBank, LateJoinerSeriesCoversOnlyItsSubSchedule) {
  AccountantBank bank;
  const std::size_t early = bank.AddUser(Fig3Both());
  ASSERT_TRUE(bank.RecordRelease(0.1).ok());
  ASSERT_TRUE(bank.RecordRelease(0.2).ok());
  const std::size_t late = bank.AddUser(Fig3Both());
  EXPECT_EQ(bank.join_release(late), 2u);
  EXPECT_EQ(bank.user_horizon(late), 0u);
  ASSERT_TRUE(bank.RecordRelease(0.3).ok());
  EXPECT_EQ(bank.user_horizon(late), 1u);
  EXPECT_EQ(bank.user_horizon(early), 3u);
  // Same cohort, different join: slots stay independent.
  EXPECT_EQ(bank.num_cohorts(), 1u);
  EXPECT_DOUBLE_EQ(bank.UserEpsSum(late), 0.3);
  EXPECT_EQ(bank.BplSeriesFor(late), (std::vector<double>{0.3}));
  // MaxTplAt(1) ignores the late joiner (no series there).
  EXPECT_EQ(*bank.MaxTplAt(1), bank.TplSeriesFor(early)[0]);
}

// ----------------------------------------------------------------------
// Property tests: random participation masks, random cohort sizes, late
// joiners — bank vs reference and serial vs parallel, bitwise, per the
// ISSUE acceptance criteria.

struct RandomFleet {
  std::vector<TemporalCorrelations> profiles;  // cohort exemplars
  std::vector<std::size_t> profile_of_user;
  std::vector<std::size_t> join_of_user;          // release index at join
  std::vector<double> schedule;
  std::vector<std::vector<std::size_t>> participants;  // per release
};

RandomFleet MakeRandomFleet(Rng* rng) {
  RandomFleet fleet;
  const std::size_t num_profiles = 1 + static_cast<std::size_t>(
                                           rng->UniformInt(0, 2));
  for (std::size_t p = 0; p < num_profiles; ++p) {
    const auto pb = StochasticMatrix::Random(3, rng);
    const auto pf = StochasticMatrix::Random(3, rng);
    switch (rng->UniformInt(0, 3)) {
      case 0:
        fleet.profiles.push_back(TemporalCorrelations::Both(pb, pf).value());
        break;
      case 1:
        fleet.profiles.push_back(TemporalCorrelations::BackwardOnly(pb));
        break;
      case 2:
        fleet.profiles.push_back(TemporalCorrelations::ForwardOnly(pf));
        break;
      default:
        fleet.profiles.push_back(TemporalCorrelations::None());
        break;
    }
  }
  const std::size_t horizon = 4 + static_cast<std::size_t>(
                                      rng->UniformInt(0, 4));
  const std::size_t initial_users =
      1 + static_cast<std::size_t>(rng->UniformInt(0, 8));
  for (std::size_t u = 0; u < initial_users; ++u) {
    fleet.profile_of_user.push_back(
        static_cast<std::size_t>(rng->UniformInt(0, num_profiles - 1)));
    fleet.join_of_user.push_back(0);
  }
  for (std::size_t t = 0; t < horizon; ++t) {
    // Occasionally a user joins mid-stream.
    if (rng->Uniform() < 0.3) {
      fleet.profile_of_user.push_back(
          static_cast<std::size_t>(rng->UniformInt(0, num_profiles - 1)));
      fleet.join_of_user.push_back(t);
    }
    fleet.schedule.push_back(0.05 + 0.4 * rng->Uniform());
    std::vector<std::size_t> in_release;
    for (std::size_t u = 0; u < fleet.profile_of_user.size(); ++u) {
      if (fleet.join_of_user[u] <= t && rng->Uniform() < 0.6) {
        in_release.push_back(u);
      }
    }
    fleet.participants.push_back(std::move(in_release));
  }
  return fleet;
}

/// Drives a bank through the fleet; users are added in join order.
void DriveBank(const RandomFleet& fleet, AccountantBank* bank) {
  std::size_t next_user = 0;
  for (std::size_t t = 0; t < fleet.schedule.size(); ++t) {
    while (next_user < fleet.join_of_user.size() &&
           fleet.join_of_user[next_user] <= t) {
      bank->AddUser(fleet.profiles[fleet.profile_of_user[next_user]]);
      ++next_user;
    }
    ASSERT_TRUE(
        bank->RecordRelease(fleet.schedule[t], fleet.participants[t]).ok());
  }
}

/// The single-user reference for user \p u, driven over its
/// sub-schedule with skips, through an identically quantized cache.
TplAccountant MakeReference(const RandomFleet& fleet, std::size_t u,
                            const TemporalLossCache::Options& cache_options,
                            TemporalLossCache* cache) {
  TemporalCorrelations corr = fleet.profiles[fleet.profile_of_user[u]];
  std::shared_ptr<const LossEvaluator> b;
  std::shared_ptr<const LossEvaluator> f;
  if (corr.has_backward()) b = cache->Intern(corr.backward());
  if (corr.has_forward()) f = cache->Intern(corr.forward());
  TplAccountant reference(std::move(corr), std::move(b), std::move(f),
                          cache_options.alpha_resolution);
  for (std::size_t t = fleet.join_of_user[u]; t < fleet.schedule.size();
       ++t) {
    const auto& in_release = fleet.participants[t];
    const bool participated =
        std::find(in_release.begin(), in_release.end(), u) !=
        in_release.end();
    if (participated) {
      EXPECT_TRUE(reference.RecordRelease(fleet.schedule[t]).ok());
    } else {
      EXPECT_TRUE(reference.RecordSkip().ok());
    }
  }
  return reference;
}

class BankEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(BankEquivalenceTest, BankMatchesReferenceBitwiseUnderSparseSchedules) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 77000);
  const RandomFleet fleet = MakeRandomFleet(&rng);

  AccountantBankOptions options;
  AccountantBank bank(options);
  DriveBank(fleet, &bank);

  TemporalLossCache reference_cache(options.cache);
  for (std::size_t u = 0; u < bank.num_users(); ++u) {
    TplAccountant reference =
        MakeReference(fleet, u, options.cache, &reference_cache);
    EXPECT_EQ(bank.BplSeriesFor(u), reference.BplSeries()) << "user " << u;
    EXPECT_EQ(bank.FplSeriesFor(u), reference.FplSeries()) << "user " << u;
    EXPECT_EQ(bank.TplSeriesFor(u), reference.TplSeries()) << "user " << u;
    EXPECT_EQ(bank.MaxTplFor(u), reference.MaxTpl()) << "user " << u;
    EXPECT_DOUBLE_EQ(bank.UserEpsSum(u), reference.UserLevelTpl());
  }
}

TEST_P(BankEquivalenceTest, SerialAndParallelBanksAgreeBitwise) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 88000);
  const RandomFleet fleet = MakeRandomFleet(&rng);

  AccountantBank serial;  // no pool: inline
  DriveBank(fleet, &serial);

  for (std::size_t threads : {2u, 5u}) {
    ThreadPool pool(threads);
    AccountantBank parallel;
    parallel.set_pool(&pool);
    DriveBank(fleet, &parallel);
    ASSERT_EQ(parallel.num_users(), serial.num_users());
    for (std::size_t u = 0; u < serial.num_users(); ++u) {
      EXPECT_EQ(parallel.BplSeriesFor(u), serial.BplSeriesFor(u))
          << "threads=" << threads << " user " << u;
      EXPECT_EQ(parallel.TplSeriesFor(u), serial.TplSeriesFor(u))
          << "threads=" << threads << " user " << u;
    }
    EXPECT_EQ(parallel.OverallAlpha(), serial.OverallAlpha());
  }
}

TEST_P(BankEquivalenceTest, UncachedBankMatchesDirectReferenceBitwise) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 99000);
  const RandomFleet fleet = MakeRandomFleet(&rng);

  AccountantBankOptions options;
  options.share_loss_cache = false;
  AccountantBank bank(options);
  DriveBank(fleet, &bank);

  for (std::size_t u = 0; u < bank.num_users(); ++u) {
    TplAccountant reference(fleet.profiles[fleet.profile_of_user[u]]);
    for (std::size_t t = fleet.join_of_user[u]; t < fleet.schedule.size();
         ++t) {
      const auto& in_release = fleet.participants[t];
      if (std::find(in_release.begin(), in_release.end(), u) !=
          in_release.end()) {
        ASSERT_TRUE(reference.RecordRelease(fleet.schedule[t]).ok());
      } else {
        ASSERT_TRUE(reference.RecordSkip().ok());
      }
    }
    EXPECT_EQ(bank.TplSeriesFor(u), reference.TplSeries()) << "user " << u;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BankEquivalenceTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace tcdp
