// Unit tests for dp/personalized: the PDP Sample mechanism (Jorgensen et
// al. [21], the paper's Section III-D hook).

#include "dp/personalized.h"

#include <cmath>

#include <gtest/gtest.h>

namespace tcdp {
namespace {

TEST(PdpSampleMechanism, CreateValidates) {
  EXPECT_FALSE(PdpSampleMechanism::Create({}).ok());
  EXPECT_FALSE(PdpSampleMechanism::Create({0.5, 0.0}).ok());
  EXPECT_FALSE(PdpSampleMechanism::Create({0.5, -1.0}).ok());
  // Threshold below max budget is inconsistent.
  EXPECT_FALSE(PdpSampleMechanism::Create({0.5, 1.0}, 0.8).ok());
  EXPECT_TRUE(PdpSampleMechanism::Create({0.5, 1.0}, 1.5).ok());
}

TEST(PdpSampleMechanism, DefaultThresholdIsMaxBudget) {
  auto m = PdpSampleMechanism::Create({0.2, 0.9, 0.5});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->threshold(), 0.9);
}

TEST(PdpSampleMechanism, InclusionProbabilityFormula) {
  auto m = PdpSampleMechanism::Create({0.3, 1.0}, 1.0);
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->InclusionProbability(0),
              std::expm1(0.3) / std::expm1(1.0), 1e-12);
  EXPECT_DOUBLE_EQ(m->InclusionProbability(1), 1.0);
}

TEST(PdpSampleMechanism, InclusionMonotoneInBudget) {
  auto m = PdpSampleMechanism::Create({0.1, 0.5, 0.9, 1.3}, 1.3);
  ASSERT_TRUE(m.ok());
  for (std::size_t u = 1; u < 4; ++u) {
    EXPECT_GT(m->InclusionProbability(u), m->InclusionProbability(u - 1));
  }
}

TEST(PdpSampleMechanism, ReleaseValidatesUserCount) {
  Rng rng(1);
  auto m = PdpSampleMechanism::Create({0.5, 0.5});
  ASSERT_TRUE(m.ok());
  auto db = Database::Create({0, 1, 0}, 2);  // 3 users vs 2 budgets
  ASSERT_TRUE(db.ok());
  HistogramQuery query;
  EXPECT_FALSE(m->Release(*db, query, &rng).ok());
}

TEST(PdpSampleMechanism, FullBudgetUsersAlwaysIncluded) {
  Rng rng(2);
  auto m = PdpSampleMechanism::Create({1.0, 0.05}, 1.0);
  ASSERT_TRUE(m.ok());
  auto db = Database::Create({0, 1}, 2);
  ASSERT_TRUE(db.ok());
  HistogramQuery query;
  for (int trial = 0; trial < 200; ++trial) {
    auto r = m->Release(*db, query, &rng);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->included[0]);
  }
}

TEST(PdpSampleMechanism, SamplingRateMatchesFormula) {
  Rng rng(3);
  const double eps_small = 0.2, threshold = 1.0;
  auto m = PdpSampleMechanism::Create({eps_small, threshold}, threshold);
  ASSERT_TRUE(m.ok());
  auto db = Database::Create({0, 1}, 2);
  ASSERT_TRUE(db.ok());
  HistogramQuery query;
  int included = 0;
  const int kTrials = 20000;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto r = m->Release(*db, query, &rng);
    ASSERT_TRUE(r.ok());
    if (r->included[0]) ++included;
  }
  EXPECT_NEAR(static_cast<double>(included) / kTrials,
              std::expm1(eps_small) / std::expm1(threshold), 0.01);
}

TEST(PdpSampleMechanism, SampledCountsNeverExceedTrueCounts) {
  Rng rng(4);
  auto m = PdpSampleMechanism::Create({0.3, 0.3, 0.3, 0.3});
  ASSERT_TRUE(m.ok());
  auto db = Database::Create({0, 0, 1, 1}, 2);
  ASSERT_TRUE(db.ok());
  HistogramQuery query;
  for (int trial = 0; trial < 100; ++trial) {
    auto r = m->Release(*db, query, &rng);
    ASSERT_TRUE(r.ok());
    EXPECT_LE(r->true_values[0], 2.0);
    EXPECT_LE(r->true_values[1], 2.0);
    EXPECT_DOUBLE_EQ(r->threshold, 0.3);
  }
}

TEST(MinimumBudget, PicksSmallest) {
  EXPECT_DOUBLE_EQ(MinimumBudget({0.5, 0.2, 0.9}), 0.2);
  EXPECT_DOUBLE_EQ(MinimumBudget({}), 0.0);
}

}  // namespace
}  // namespace tcdp
