// Unit tests for markov/stochastic_matrix.

#include "markov/stochastic_matrix.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace tcdp {
namespace {

TEST(StochasticMatrix, CreateValidatesSquare) {
  auto bad = StochasticMatrix::Create(Matrix(2, 3, 0.5));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(StochasticMatrix, CreateValidatesRowSums) {
  auto bad = StochasticMatrix::Create(Matrix({{0.5, 0.4}, {0.5, 0.5}}));
  EXPECT_FALSE(bad.ok());
}

TEST(StochasticMatrix, CreateValidatesEntryRange) {
  auto bad = StochasticMatrix::Create(Matrix({{1.5, -0.5}, {0.5, 0.5}}));
  EXPECT_FALSE(bad.ok());
}

TEST(StochasticMatrix, CreateRejectsEmpty) {
  EXPECT_FALSE(StochasticMatrix::Create(Matrix()).ok());
}

TEST(StochasticMatrix, CreateRenormalizesWithinTolerance) {
  // Row sums 1 +- 1e-7 are accepted and snapped to exactly 1.
  auto m = StochasticMatrix::Create(
      Matrix({{0.5 + 5e-8, 0.5}, {0.25, 0.75 - 5e-8}}));
  ASSERT_TRUE(m.ok());
  for (std::size_t r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 2; ++c) sum += m->At(r, c);
    EXPECT_DOUBLE_EQ(sum, 1.0);
  }
}

TEST(StochasticMatrix, FromRowsPaperFigure2) {
  // Figure 2(b): the paper's forward correlation example.
  auto m = StochasticMatrix::FromRows(
      {{0.2, 0.3, 0.5}, {0.1, 0.1, 0.8}, {0.6, 0.2, 0.2}});
  EXPECT_EQ(m.size(), 3u);
  EXPECT_DOUBLE_EQ(m.At(2, 0), 0.6);
}

TEST(StochasticMatrix, UniformRows) {
  auto m = StochasticMatrix::Uniform(4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(m.At(r, c), 0.25);
  }
}

TEST(StochasticMatrix, IdentityIsPermutation) {
  auto m = StochasticMatrix::Identity(3);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 0.0);
}

TEST(StochasticMatrix, PermutationValidates) {
  auto ok = StochasticMatrix::Permutation({1, 2, 0});
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(ok->At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(ok->At(2, 0), 1.0);
  EXPECT_FALSE(StochasticMatrix::Permutation({0, 0, 1}).ok());
  EXPECT_FALSE(StochasticMatrix::Permutation({0, 3, 1}).ok());
  EXPECT_FALSE(StochasticMatrix::Permutation({}).ok());
}

TEST(StochasticMatrix, RandomRowsAreDistributions) {
  Rng rng(5);
  auto m = StochasticMatrix::Random(6, &rng);
  for (std::size_t r = 0; r < 6; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 6; ++c) {
      EXPECT_GT(m.At(r, c), 0.0);
      sum += m.At(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(StochasticMatrix, PowerKIdentityCases) {
  auto m = StochasticMatrix::FromRows({{0.5, 0.5}, {0.25, 0.75}});
  EXPECT_TRUE(m.PowerK(0).ApproxEquals(StochasticMatrix::Identity(2)));
  EXPECT_TRUE(m.PowerK(1).ApproxEquals(m));
}

TEST(StochasticMatrix, PowerKMatchesRepeatedMultiplication) {
  auto m = StochasticMatrix::FromRows({{0.9, 0.1}, {0.3, 0.7}});
  auto p3 = m.PowerK(3);
  auto direct = m.matrix()
                    .Multiply(m.matrix())
                    .value()
                    .Multiply(m.matrix())
                    .value();
  EXPECT_TRUE(p3.matrix().ApproxEquals(direct, 1e-12));
}

TEST(StochasticMatrix, PowerKStaysStochastic) {
  auto m = StochasticMatrix::FromRows({{0.8, 0.2}, {0.0, 1.0}});
  auto p = m.PowerK(17);
  for (std::size_t r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 2; ++c) sum += p.At(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(StochasticMatrix, PropagateAppliesOneStep) {
  auto m = StochasticMatrix::FromRows({{0.0, 1.0}, {1.0, 0.0}});
  auto out = m.Propagate({0.3, 0.7});
  EXPECT_DOUBLE_EQ(out[0], 0.7);
  EXPECT_DOUBLE_EQ(out[1], 0.3);
}

}  // namespace
}  // namespace tcdp
