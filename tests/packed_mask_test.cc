// PackedMask: all/dense/RLE representation choice, bit semantics, wire
// round-trips, and corrupted-input rejection.

#include "common/packed_mask.h"

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "common/random.h"

namespace tcdp {
namespace {

std::vector<std::uint64_t> RandomWords(Rng* rng, std::size_t n,
                                       double run_bias) {
  // run_bias near 1 produces long runs of repeated words.
  std::vector<std::uint64_t> words(n);
  std::uint64_t current =
      static_cast<std::uint64_t>(rng->UniformInt(0, 3)) * 0x5555555555555555ull;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng->Uniform() > run_bias) {
      current = static_cast<std::uint64_t>(
          rng->UniformInt(0, static_cast<std::int64_t>(1) << 62));
    }
    words[i] = current;
  }
  return words;
}

TEST(PackedMask, AllMaskIsEveryone) {
  const PackedMask mask = PackedMask::All();
  EXPECT_TRUE(mask.is_all());
  EXPECT_TRUE(mask.bit(0));
  EXPECT_TRUE(mask.bit(1'000'000));
  EXPECT_EQ(mask.num_words(), 0u);
}

TEST(PackedMask, EmptyExplicitMaskIsNobody) {
  const PackedMask mask = PackedMask::FromWords({});
  EXPECT_FALSE(mask.is_all());
  EXPECT_FALSE(mask.bit(0));
  EXPECT_FALSE(mask.bit(63));
}

TEST(PackedMask, ShortRowsStayDense) {
  // Three identical words would RLE to one run, but short rows keep the
  // dense path.
  const PackedMask mask = PackedMask::FromWords({0xFFull, 0xFFull, 0xFFull});
  EXPECT_FALSE(mask.is_rle());
  EXPECT_TRUE(mask.bit(0));
  EXPECT_FALSE(mask.bit(8));
  EXPECT_TRUE(mask.bit(64));
  EXPECT_FALSE(mask.bit(3 * 64));  // past the width
}

TEST(PackedMask, LongUniformRowsCompress) {
  const std::vector<std::uint64_t> words(1000, ~std::uint64_t{0});
  const PackedMask mask = PackedMask::FromWords(words);
  EXPECT_TRUE(mask.is_rle());
  EXPECT_LT(mask.MemoryBytes(), 100u);  // 2 u64 arrays of 1 run each
  EXPECT_TRUE(mask.bit(0));
  EXPECT_TRUE(mask.bit(999 * 64 + 63));
  EXPECT_FALSE(mask.bit(1000 * 64));
  EXPECT_EQ(mask.ToWords(1000), words);
}

TEST(PackedMask, MixedRowsMatchDenseReference) {
  Rng rng(20260728);
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t n = static_cast<std::size_t>(rng.UniformInt(0, 40));
    const double bias = rng.Uniform();
    const std::vector<std::uint64_t> words = RandomWords(&rng, n, bias);
    const PackedMask mask = PackedMask::FromWords(words);
    for (std::size_t i = 0; i < n * 64 + 64; ++i) {
      const bool expected =
          (i >> 6) < n && ((words[i >> 6] >> (i & 63)) & 1u);
      ASSERT_EQ(mask.bit(i), expected) << "iter " << iter << " bit " << i;
    }
    EXPECT_EQ(mask.ToWords(n), words);
  }
}

TEST(PackedMask, WireRoundTrip) {
  Rng rng(7);
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t n = static_cast<std::size_t>(rng.UniformInt(0, 64));
    const PackedMask original =
        PackedMask::FromWords(RandomWords(&rng, n, rng.Uniform()));
    std::string encoded;
    original.EncodeTo(&encoded);
    BinaryCursor cursor(encoded);
    auto decoded = PackedMask::Decode(cursor);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_TRUE(cursor.empty());
    EXPECT_TRUE(*decoded == original);
  }
  // The All mask too.
  std::string encoded;
  PackedMask::All().EncodeTo(&encoded);
  BinaryCursor cursor(encoded);
  auto decoded = PackedMask::Decode(cursor);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->is_all());
}

TEST(PackedMask, DecodeRejectsCorruption) {
  const PackedMask original = PackedMask::FromWords(
      std::vector<std::uint64_t>(100, 0xAAAAAAAAAAAAAAAAull));
  ASSERT_TRUE(original.is_rle());
  std::string encoded;
  original.EncodeTo(&encoded);

  // Every strict prefix must fail cleanly, never crash.
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    std::string prefix = encoded.substr(0, len);
    BinaryCursor cursor(prefix);
    EXPECT_FALSE(PackedMask::Decode(cursor).ok()) << "prefix " << len;
  }
  // Unknown kind byte.
  {
    std::string bad = encoded;
    bad[0] = 9;
    BinaryCursor cursor(bad);
    EXPECT_FALSE(PackedMask::Decode(cursor).ok());
  }
}

TEST(PackedMask, DecodeRejectsInconsistentRuns) {
  // Hand-build an RLE encoding whose runs over/under-cover the width.
  auto build = [](std::uint64_t width, std::uint64_t runs,
                  std::uint64_t run_len) {
    std::string out;
    out.push_back(2);  // kRle
    PutVarint64(&out, width);
    PutVarint64(&out, runs);
    for (std::uint64_t r = 0; r < runs; ++r) {
      PutVarint64(&out, run_len);
      PutFixed64(&out, 0xFFull);
    }
    return out;
  };
  {
    std::string under = build(10, 1, 5);  // covers 5 of 10
    BinaryCursor cursor(under);
    EXPECT_FALSE(PackedMask::Decode(cursor).ok());
  }
  {
    std::string over = build(10, 2, 9);  // 18 > 10
    BinaryCursor cursor(over);
    EXPECT_FALSE(PackedMask::Decode(cursor).ok());
  }
  {
    std::string zero_run = build(10, 1, 0);
    BinaryCursor cursor(zero_run);
    EXPECT_FALSE(PackedMask::Decode(cursor).ok());
  }
}

TEST(BinaryIo, VarintRoundTripAndBounds) {
  for (std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{127},
        std::uint64_t{128}, std::uint64_t{1} << 32,
        ~std::uint64_t{0}}) {
    std::string buf;
    PutVarint64(&buf, v);
    BinaryCursor cursor(buf);
    std::uint64_t back = 0;
    ASSERT_TRUE(cursor.ReadVarint64(&back).ok());
    EXPECT_EQ(back, v);
    EXPECT_TRUE(cursor.empty());
  }
  // An unterminated varint (all continuation bits) must fail.
  std::string runaway(11, static_cast<char>(0x80));
  BinaryCursor cursor(runaway);
  std::uint64_t out = 0;
  EXPECT_FALSE(cursor.ReadVarint64(&out).ok());
}

TEST(BinaryIo, DoubleBitsAreExact) {
  for (double v : {0.0, -0.0, 1.0 / 3.0, 1e-300, -2.5}) {
    std::string buf;
    PutDoubleBits(&buf, v);
    BinaryCursor cursor(buf);
    double back = 1.0;
    ASSERT_TRUE(cursor.ReadDoubleBits(&back).ok());
    std::uint64_t a, b;
    std::memcpy(&a, &v, 8);
    std::memcpy(&b, &back, 8);
    EXPECT_EQ(a, b);
  }
}

TEST(BinaryIo, Crc32KnownVector) {
  // The classic check value for "123456789" under CRC-32/ISO-HDLC.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  // Incremental == one-shot.
  const std::uint32_t head = Crc32("1234", 4);
  EXPECT_EQ(Crc32("56789", 5, head), 0xCBF43926u);
}

}  // namespace
}  // namespace tcdp
