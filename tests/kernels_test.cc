// src/kernels/: the determinism contract. Every available backend must
// be bitwise-identical to the scalar reference on every kernel, across
// random inputs and sizes that exercise the vector bodies AND the
// non-multiple-of-lane-width tails; dispatch honors the process-wide
// mode switch; ExpandMaskEpsilon guards mask word bounds.

#include "kernels/kernels.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace tcdp {
namespace kernels {
namespace {

// Bitwise comparison: operator== on doubles would accept -0.0 == 0.0
// and reject NaN == NaN; the contract is bit equality.
::testing::AssertionResult BitsEqual(const std::vector<double>& a,
                                     const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "size " << a.size() << " vs "
                                         << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
      return ::testing::AssertionFailure()
             << "index " << i << ": " << a[i] << " vs " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult BitsEqual(double a, double b) {
  if (std::memcmp(&a, &b, sizeof(double)) != 0) {
    return ::testing::AssertionFailure() << a << " vs " << b;
  }
  return ::testing::AssertionSuccess();
}

struct Inputs {
  std::vector<double> loss, add, q, d, x, seed_out;
  Inputs(std::size_t n, std::uint64_t seed)
      : loss(n), add(n), q(n), d(n), x(n), seed_out(n) {
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
      loss[i] = rng.Uniform() < 0.2 ? 0.0 : rng.Uniform();
      add[i] = rng.Uniform() < 0.5 ? 0.0 : rng.Uniform(0.01, 0.5);
      q[i] = rng.Uniform() + 1e-6;
      d[i] = rng.Uniform() + 1e-6;
      x[i] = rng.Uniform(-3.0, 3.0);
      seed_out[i] = rng.Uniform(-1.0, 1.0);
    }
  }
};

/// Runs every kernel on both backends at one (n, seed) and checks
/// bitwise equality, tagging failures with the size.
void ExpectBackendMatchesScalar(const Backend& v, std::size_t n,
                                std::uint64_t seed) {
  SCOPED_TRACE(std::string(v.name) + " n=" + std::to_string(n));
  const Backend& s = ScalarBackend();
  const Inputs in(n, seed);

  std::vector<double> bpl_s(n, -7.0), bpl_v(n, -7.0);
  std::vector<double> es_s = in.seed_out, es_v = in.seed_out;
  s.fused_loss_add(in.loss.data(), in.add.data(), bpl_s.data(), es_s.data(),
                   n);
  v.fused_loss_add(in.loss.data(), in.add.data(), bpl_v.data(), es_v.data(),
                   n);
  EXPECT_TRUE(BitsEqual(bpl_s, bpl_v)) << "fused_loss_add bpl";
  EXPECT_TRUE(BitsEqual(es_s, es_v)) << "fused_loss_add eps_sum";

  es_s = in.seed_out;
  es_v = in.seed_out;
  s.fused_loss_add_uniform(in.loss.data(), 0.125, bpl_s.data(), es_s.data(),
                           n);
  v.fused_loss_add_uniform(in.loss.data(), 0.125, bpl_v.data(), es_v.data(),
                           n);
  EXPECT_TRUE(BitsEqual(bpl_s, bpl_v)) << "fused_loss_add_uniform bpl";
  EXPECT_TRUE(BitsEqual(es_s, es_v)) << "fused_loss_add_uniform eps_sum";

  es_s = in.seed_out;
  es_v = in.seed_out;
  s.fused_fill_add(in.add.data(), bpl_s.data(), es_s.data(), n);
  v.fused_fill_add(in.add.data(), bpl_v.data(), es_v.data(), n);
  EXPECT_TRUE(BitsEqual(bpl_s, bpl_v)) << "fused_fill_add bpl";
  EXPECT_TRUE(BitsEqual(es_s, es_v)) << "fused_fill_add eps_sum";

  es_s = in.seed_out;
  es_v = in.seed_out;
  s.fused_fill_uniform(0.125, bpl_s.data(), es_s.data(), n);
  v.fused_fill_uniform(0.125, bpl_v.data(), es_v.data(), n);
  EXPECT_TRUE(BitsEqual(bpl_s, bpl_v)) << "fused_fill_uniform bpl";
  EXPECT_TRUE(BitsEqual(es_s, es_v)) << "fused_fill_uniform eps_sum";

  std::vector<double> out_s = in.seed_out, out_v = in.seed_out;
  s.axpy(-0.375, in.x.data(), out_s.data(), n);
  v.axpy(-0.375, in.x.data(), out_v.data(), n);
  EXPECT_TRUE(BitsEqual(out_s, out_v)) << "axpy";

  EXPECT_TRUE(BitsEqual(s.dot(in.x.data(), in.q.data(), n),
                        v.dot(in.x.data(), in.q.data(), n)))
      << "dot";

  std::vector<std::uint32_t> idx_s(n), idx_v(n);
  const std::size_t m_s =
      s.select_greater(in.q.data(), in.d.data(), n, idx_s.data());
  const std::size_t m_v =
      v.select_greater(in.q.data(), in.d.data(), n, idx_v.data());
  ASSERT_EQ(m_s, m_v) << "select_greater count";
  idx_s.resize(m_s);
  idx_v.resize(m_s);
  EXPECT_EQ(idx_s, idx_v) << "select_greater indices";

  double qs_s = 0.0, ds_s = 0.0, qs_v = 0.0, ds_v = 0.0;
  s.gather_pair_sums(in.q.data(), in.d.data(), idx_s.data(), m_s, &qs_s,
                     &ds_s);
  v.gather_pair_sums(in.q.data(), in.d.data(), idx_v.data(), m_s, &qs_v,
                     &ds_v);
  EXPECT_TRUE(BitsEqual(qs_s, qs_v)) << "gather_pair_sums q";
  EXPECT_TRUE(BitsEqual(ds_s, ds_v)) << "gather_pair_sums d";

  // filter_gt: in-place compaction including +inf survivors.
  std::vector<double> val_s(m_s), val_v(m_s);
  for (std::size_t i = 0; i < m_s; ++i) {
    val_s[i] = i % 11 == 3 ? std::numeric_limits<double>::infinity()
                           : in.x[idx_s[i]];
    val_v[i] = val_s[i];
  }
  std::vector<std::uint32_t> fidx_s = idx_s, fidx_v = idx_v;
  const std::size_t k_s = s.filter_gt(val_s.data(), fidx_s.data(), m_s, 0.25);
  const std::size_t k_v = v.filter_gt(val_v.data(), fidx_v.data(), m_s, 0.25);
  ASSERT_EQ(k_s, k_v) << "filter_gt count";
  val_s.resize(k_s);
  val_v.resize(k_s);
  fidx_s.resize(k_s);
  fidx_v.resize(k_s);
  EXPECT_TRUE(BitsEqual(val_s, val_v)) << "filter_gt values";
  EXPECT_EQ(fidx_s, fidx_v) << "filter_gt indices";
}

void RunPropertySweep(const Backend* v) {
  if (v == nullptr) {
    GTEST_SKIP() << "backend unavailable on this host";
  }
  // Every size below two vector registers plus odd tails past them:
  // covers empty, pure-tail, exact-lane, and lane+tail shapes for both
  // 4-wide (AVX2) and 2-wide (NEON) backends.
  for (std::size_t n = 0; n <= 19; ++n) {
    ExpectBackendMatchesScalar(*v, n, 0xC0FFEE + n);
  }
  for (std::size_t n : {31u, 32u, 33u, 64u, 100u, 255u, 1024u, 1337u}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      ExpectBackendMatchesScalar(*v, n, seed * 7919 + n);
    }
  }
}

TEST(KernelsProperty, Avx2MatchesScalarBitwise) {
  RunPropertySweep(Avx2Backend());
}

TEST(KernelsProperty, NeonMatchesScalarBitwise) {
  RunPropertySweep(NeonBackend());
}

TEST(KernelsProperty, BestMatchesScalarBitwise) {
  // Whatever BestBackend resolves to (possibly scalar itself) must
  // satisfy the contract — this leg runs on every host.
  RunPropertySweep(&BestBackend());
}

// ------------------------------------------------------------- dispatch

TEST(KernelsDispatch, ScalarBackendIsWidthOne) {
  EXPECT_STREQ(ScalarBackend().name, "scalar");
  EXPECT_EQ(ScalarBackend().simd_width, 1u);
}

TEST(KernelsDispatch, BestBackendMatchesHostCapability) {
  const Backend& best = BestBackend();
  EXPECT_EQ(best.simd_width, HostSimdWidth());
  if (Avx2Backend() != nullptr) {
    EXPECT_STREQ(best.name, "avx2");
    EXPECT_EQ(best.simd_width, 4u);
  } else if (NeonBackend() != nullptr) {
    EXPECT_STREQ(best.name, "neon");
    EXPECT_EQ(best.simd_width, 2u);
  } else {
    EXPECT_STREQ(best.name, "scalar");
  }
}

TEST(KernelsDispatch, ModeSwitchPinsAndReleasesScalar) {
  const TcdpKernelMode before = KernelMode();
  SetKernelMode(TcdpKernelMode::kScalar);
  EXPECT_EQ(&ActiveBackend(), &ScalarBackend());
  SetKernelMode(TcdpKernelMode::kAuto);
  EXPECT_EQ(&ActiveBackend(), &BestBackend());
  SetKernelMode(before);
}

TEST(KernelsDispatch, ParseKernelModeRoundTrips) {
  auto scalar = ParseKernelMode("scalar");
  ASSERT_TRUE(scalar.ok());
  EXPECT_EQ(*scalar, TcdpKernelMode::kScalar);
  EXPECT_STREQ(KernelModeName(*scalar), "scalar");
  auto auto_mode = ParseKernelMode("auto");
  ASSERT_TRUE(auto_mode.ok());
  EXPECT_EQ(*auto_mode, TcdpKernelMode::kAuto);
  EXPECT_STREQ(KernelModeName(*auto_mode), "auto");
  EXPECT_FALSE(ParseKernelMode("avx512").ok());
  EXPECT_FALSE(ParseKernelMode("").ok());
}

// ----------------------------------------------------- ExpandMaskEpsilon

TEST(KernelsMask, ExpandMaskEpsilonMatchesNaiveAndGuardsBounds) {
  Rng rng(2026);
  const double eps = 0.25;
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t users_in_mask = 1 + static_cast<std::size_t>(
                                              rng.UniformInt(0, 200));
    const std::size_t mask_words = (users_in_mask + 63) / 64;
    std::vector<std::uint64_t> mask(mask_words, 0);
    for (std::size_t u = 0; u < users_in_mask; ++u) {
      if (rng.Uniform() < 0.5) mask[u / 64] |= std::uint64_t{1} << (u % 64);
    }
    // Slot users deliberately include ids past the mask width: the
    // kernel must read them as "not participating", never out of
    // bounds (the ASan leg of CI enforces the latter).
    const std::size_t n = 1 + static_cast<std::size_t>(rng.UniformInt(0, 50));
    std::vector<std::uint32_t> users(n);
    for (std::size_t i = 0; i < n; ++i) {
      users[i] = static_cast<std::uint32_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(users_in_mask) + 80));
    }
    std::vector<double> add(n, -1.0);
    ExpandMaskEpsilon(mask.data(), mask.size(), users.data(), n, eps,
                      add.data());
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t u = users[i];
      const bool bit = u < users_in_mask &&
                       (mask[u / 64] >> (u % 64) & 1) != 0;
      EXPECT_EQ(add[i], bit ? eps : 0.0) << "slot " << i << " user " << u;
    }
  }
}

}  // namespace
}  // namespace kernels
}  // namespace tcdp
