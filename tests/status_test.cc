// Unit tests for common/status: Status, StatusOr, and the propagation
// macros.

#include "common/status.h"

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace tcdp {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoryCodesRoundTrip) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(Status, MessagePreserved) {
  Status s = Status::InvalidArgument("bad matrix");
  EXPECT_EQ(s.message(), "bad matrix");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad matrix");
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(Status, StreamOperatorMatchesToString) {
  std::ostringstream os;
  os << Status::OutOfRange("index 7");
  EXPECT_EQ(os.str(), "OutOfRange: index 7");
}

TEST(StatusCodeToString, CoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, ValueOrFallsBack) {
  StatusOr<int> err = Status::Internal("x");
  EXPECT_EQ(err.value_or(-1), -1);
  StatusOr<int> good = 3;
  EXPECT_EQ(good.value_or(-1), 3);
}

TEST(StatusOr, MoveOnlyTypesWork) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

TEST(StatusOr, ArrowOperatorReachesMembers) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  TCDP_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::OK();
}

TEST(Macros, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

StatusOr<int> Doubler(int x) {
  if (x < 0) return Status::OutOfRange("negative input");
  return 2 * x;
}

StatusOr<int> UsesAssignOrReturn(int x) {
  TCDP_ASSIGN_OR_RETURN(int doubled, Doubler(x));
  return doubled + 1;
}

TEST(Macros, AssignOrReturnUnwrapsAndPropagates) {
  auto ok = UsesAssignOrReturn(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 11);
  auto bad = UsesAssignOrReturn(-5);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace tcdp
