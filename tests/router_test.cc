// Router tests (ISSUE 10): user -> endpoint placement. The claims
// that matter operationally:
//   * Balance: with virtual nodes, no endpoint captures a grossly
//     disproportionate share of users (this caught a real bug — raw
//     FNV-1a virtual points cluster so badly one endpoint took 100%).
//   * Minimal movement: scaling out moves ~1/N of the users, all of
//     them TO the new endpoint; nobody shuffles between old endpoints,
//     and removing the endpoint restores the old placement exactly.
//   * Pins (kMigrateUser) override the ring, clear back to it, and
//     are validated against ring membership.
//   * The journal makes placement durable: reopen replays it, a torn
//     tail is truncated not fatal, and the reopened journal appends.
//   * The wire front answers kRouteLookup with exactly what the table
//     says, and refuses off-family frames.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/messages.h"
#include "net/wire.h"
#include "replication/router.h"

namespace tcdp {
namespace replication {
namespace {

constexpr std::size_t kUsers = 1000;

std::string UserName(std::size_t u) { return "user-" + std::to_string(u); }

std::map<std::string, std::string> Placements(const RouterTable& table) {
  std::map<std::string, std::string> placement;
  for (std::size_t u = 0; u < kUsers; ++u) {
    auto endpoint = table.Lookup(UserName(u));
    EXPECT_TRUE(endpoint.ok()) << endpoint.status();
    placement[UserName(u)] = endpoint.ok() ? *endpoint : "";
  }
  return placement;
}

std::map<std::string, std::size_t> CountByEndpoint(
    const std::map<std::string, std::string>& placement) {
  std::map<std::string, std::size_t> counts;
  for (const auto& entry : placement) ++counts[entry.second];
  return counts;
}

TEST(RouterTest, BalancedPlacementAndMinimalMovementOnScaleOut) {
  auto table = RouterTable::Open("");  // ephemeral
  ASSERT_TRUE(table.ok()) << table.status();
  ASSERT_TRUE((*table)->AddEndpoint("shard-a:9001").ok());
  ASSERT_TRUE((*table)->AddEndpoint("shard-b:9002").ok());

  const auto before = Placements(**table);
  const auto counts_before = CountByEndpoint(before);
  ASSERT_EQ(counts_before.size(), 2u);
  for (const auto& entry : counts_before) {
    // No endpoint may capture a grossly disproportionate share.
    EXPECT_GE(entry.second, kUsers / 4) << entry.first;
    EXPECT_LE(entry.second, 3 * kUsers / 4) << entry.first;
  }

  // Scale out: every moved user moves TO the new endpoint — an old
  // endpoint never steals from another old endpoint — and roughly 1/3
  // of the keyspace moves.
  ASSERT_TRUE((*table)->AddEndpoint("shard-c:9003").ok());
  const auto after = Placements(**table);
  std::size_t moved = 0;
  for (const auto& entry : before) {
    const std::string& now = after.at(entry.first);
    if (now != entry.second) {
      ++moved;
      EXPECT_EQ(now, "shard-c:9003")
          << entry.first << " moved between OLD endpoints";
    }
  }
  EXPECT_GE(moved, kUsers / 6) << "the new endpoint took almost nothing";
  EXPECT_LE(moved, kUsers / 2) << "scale-out reshuffled far more than 1/N";
  const auto counts_after = CountByEndpoint(after);
  ASSERT_EQ(counts_after.size(), 3u);
  EXPECT_EQ(counts_after.at("shard-c:9003"), moved);

  // Scale back in: placement is a pure function of the endpoint set,
  // so removing the endpoint restores the old map exactly.
  ASSERT_TRUE((*table)->RemoveEndpoint("shard-c:9003").ok());
  EXPECT_EQ(Placements(**table), before);

  // Membership is validated both ways.
  EXPECT_FALSE((*table)->AddEndpoint("shard-a:9001").ok());
  EXPECT_FALSE((*table)->RemoveEndpoint("never-added:1").ok());
}

TEST(RouterTest, PinsOverrideTheRingAndClearBackToIt) {
  auto table = RouterTable::Open("");
  ASSERT_TRUE(table.ok()) << table.status();
  ASSERT_TRUE((*table)->AddEndpoint("shard-a:9001").ok());
  ASSERT_TRUE((*table)->AddEndpoint("shard-b:9002").ok());

  auto ring_choice = (*table)->Lookup("alice");
  ASSERT_TRUE(ring_choice.ok());
  const std::string other =
      *ring_choice == "shard-a:9001" ? "shard-b:9002" : "shard-a:9001";

  ASSERT_TRUE((*table)->MigrateUser("alice", other).ok());
  auto pinned = (*table)->Lookup("alice");
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(*pinned, other);
  EXPECT_EQ((*table)->stats().pins, 1u);

  // A pin must target a live endpoint.
  EXPECT_FALSE((*table)->MigrateUser("bob", "unknown:1").ok());

  // Clearing hands the user back to the ring.
  ASSERT_TRUE((*table)->MigrateUser("alice", "").ok());
  auto cleared = (*table)->Lookup("alice");
  ASSERT_TRUE(cleared.ok());
  EXPECT_EQ(*cleared, *ring_choice);
  EXPECT_EQ((*table)->stats().pins, 0u);
}

TEST(RouterTest, JournalReplaysAndSurvivesATornTail) {
  const std::string journal = "/tmp/tcdp_router_test.journal";
  std::filesystem::remove(journal);
  std::map<std::string, std::string> expected;
  std::uint64_t journal_records = 0;
  {
    auto table = RouterTable::Open(journal);
    ASSERT_TRUE(table.ok()) << table.status();
    ASSERT_TRUE((*table)->AddEndpoint("shard-a:9001").ok());
    ASSERT_TRUE((*table)->AddEndpoint("shard-b:9002").ok());
    ASSERT_TRUE((*table)->AddEndpoint("shard-c:9003").ok());
    ASSERT_TRUE((*table)->RemoveEndpoint("shard-b:9002").ok());
    ASSERT_TRUE((*table)->MigrateUser("alice", "shard-c:9003").ok());
    expected = Placements(**table);
    journal_records = (*table)->stats().journal_records;
    EXPECT_GE(journal_records, 5u);
  }
  {
    // Replay reproduces the table exactly.
    auto table = RouterTable::Open(journal);
    ASSERT_TRUE(table.ok()) << table.status();
    EXPECT_EQ((*table)->stats().journal_records, journal_records);
    EXPECT_EQ((*table)->stats().endpoints, 2u);
    EXPECT_EQ((*table)->stats().pins, 1u);
    EXPECT_EQ(Placements(**table), expected);
  }
  {
    // A crash mid-append leaves a torn tail: truncated, not fatal.
    std::ofstream out(journal, std::ios::binary | std::ios::app);
    out << "\x06garbage-torn-tail";
  }
  {
    auto table = RouterTable::Open(journal);
    ASSERT_TRUE(table.ok())
        << "torn journal tail must recover: " << table.status();
    EXPECT_EQ((*table)->stats().journal_records, journal_records);
    EXPECT_EQ(Placements(**table), expected);
    // ...and the recovered journal still accepts mutations durably.
    ASSERT_TRUE((*table)->MigrateUser("bob", "shard-a:9001").ok());
  }
  {
    auto table = RouterTable::Open(journal);
    ASSERT_TRUE(table.ok()) << table.status();
    EXPECT_EQ((*table)->stats().journal_records, journal_records + 1);
    auto bob = (*table)->Lookup("bob");
    ASSERT_TRUE(bob.ok());
    EXPECT_EQ(*bob, "shard-a:9001");
  }
  std::filesystem::remove(journal);
}

TEST(RouterTest, WireLookupAnswersExactlyWhatTheTableSays) {
  auto table = RouterTable::Open("");
  ASSERT_TRUE(table.ok()) << table.status();
  ASSERT_TRUE((*table)->AddEndpoint("shard-a:9001").ok());
  ASSERT_TRUE((*table)->AddEndpoint("shard-b:9002").ok());
  ASSERT_TRUE((*table)->MigrateUser("user-7", "shard-a:9001").ok());

  auto server = RouterServer::Listen(table->get(), RouterServerOptions{});
  ASSERT_TRUE(server.ok()) << server.status();
  Status serve_status;
  std::thread serve_thread(
      [&server, &serve_status] { serve_status = (*server)->Serve(); });

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons((*server)->port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  timeval timeout{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  std::string request;
  net::AppendPreamble(&request);
  const std::vector<std::string> names = {"user-0", "user-7", "user-42",
                                          "another one entirely"};
  for (const std::string& name : names) {
    net::AppendFrame(&request, net::MsgType::kRouteLookup,
                     net::EncodeName(name));
  }
  ASSERT_EQ(::send(fd, request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));

  net::FrameDecoder decoder;
  std::vector<net::Frame> frames;
  char buffer[4096];
  while (frames.size() < names.size()) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    ASSERT_GT(n, 0) << "server hung up before answering every lookup";
    ASSERT_TRUE(decoder.Feed(buffer, static_cast<std::size_t>(n)).ok());
    while (decoder.has_frame()) frames.push_back(decoder.PopFrame());
  }
  ASSERT_EQ(frames.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    ASSERT_EQ(frames[i].type, net::MsgType::kRouteReport) << names[i];
    auto endpoint = net::DecodeName(frames[i].payload);
    ASSERT_TRUE(endpoint.ok());
    auto direct = (*table)->Lookup(names[i]);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(*endpoint, *direct) << names[i];
  }

  // An off-family frame gets a kError and the connection is closed.
  std::string bogus;
  net::AppendFrame(&bogus, net::MsgType::kSubscribe, "");
  ASSERT_EQ(::send(fd, bogus.data(), bogus.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bogus.size()));
  bool got_error = false;
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;  // server closed on us, as it must
    ASSERT_TRUE(decoder.Feed(buffer, static_cast<std::size_t>(n)).ok());
    while (decoder.has_frame()) {
      got_error = decoder.PopFrame().type == net::MsgType::kError;
    }
  }
  EXPECT_TRUE(got_error);
  ::close(fd);

  (*server)->Stop();
  serve_thread.join();
  EXPECT_TRUE(serve_status.ok()) << serve_status;
}

}  // namespace
}  // namespace replication
}  // namespace tcdp
