// Tests for the benchmark harness JSON document model
// (src/bench/json.h): Dump/Parse round-trips, insertion-order
// preservation, and parse failures surfacing as errors.

#include "bench/json.h"

#include <gtest/gtest.h>

#include <string>

namespace tcdp {
namespace bench {
namespace {

TEST(BenchJson, RoundTripsNestedDocument) {
  JsonObject inner;
  inner.Set("pi", Json(3.25));
  inner.Set("name", Json("fig3"));
  inner.Set("flag", Json(true));
  JsonArray array;
  array.push_back(Json(1.0));
  array.push_back(Json("two"));
  array.push_back(Json());
  JsonObject root;
  root.Set("inner", Json(std::move(inner)));
  root.Set("list", Json(std::move(array)));

  const std::string text = Json(std::move(root)).Dump();
  const auto parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const Json& doc = parsed.value();
  ASSERT_TRUE(doc.is_object());

  const Json* inner_back = doc.as_object().Find("inner");
  ASSERT_NE(inner_back, nullptr);
  EXPECT_DOUBLE_EQ(GetNumber(*inner_back, "pi").value(), 3.25);
  EXPECT_EQ(GetString(*inner_back, "name").value(), "fig3");
  EXPECT_TRUE(GetBool(*inner_back, "flag").value());

  const Json* list = doc.as_object().Find("list");
  ASSERT_NE(list, nullptr);
  ASSERT_TRUE(list->is_array());
  ASSERT_EQ(list->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(list->as_array()[0].as_number(), 1.0);
  EXPECT_EQ(list->as_array()[1].as_string(), "two");
  EXPECT_TRUE(list->as_array()[2].is_null());
}

TEST(BenchJson, ObjectsPreserveInsertionOrder) {
  JsonObject object;
  object.Set("zulu", Json(1.0));
  object.Set("alpha", Json(2.0));
  object.Set("mike", Json(3.0));
  const std::string text = Json(std::move(object)).Dump();
  EXPECT_LT(text.find("zulu"), text.find("alpha"));
  EXPECT_LT(text.find("alpha"), text.find("mike"));
}

TEST(BenchJson, SetOverwritesInPlace) {
  JsonObject object;
  object.Set("key", Json(1.0));
  object.Set("key", Json(2.0));
  EXPECT_EQ(object.size(), 1u);
  EXPECT_DOUBLE_EQ(object.Find("key")->as_number(), 2.0);
}

TEST(BenchJson, RoundTripsEscapedStrings) {
  JsonObject object;
  object.Set("s", Json(std::string("line\nbreak \"quoted\" \t tab")));
  const std::string text = Json(std::move(object)).Dump();
  const auto parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(GetString(parsed.value(), "s").value(),
            "line\nbreak \"quoted\" \t tab");
}

TEST(BenchJson, ParsesScientificNotationAndNegatives) {
  const auto parsed = Json::Parse("{\"a\": -1.5e-3, \"b\": 2E+2}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_DOUBLE_EQ(GetNumber(parsed.value(), "a").value(), -1.5e-3);
  EXPECT_DOUBLE_EQ(GetNumber(parsed.value(), "b").value(), 200.0);
}

TEST(BenchJson, RejectsMalformedDocuments) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("{\"a\": }").ok());
  EXPECT_FALSE(Json::Parse("[1, 2,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(Json::Parse("nul").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
}

TEST(BenchJson, LookupsReportMissingAndMistypedKeys) {
  const auto parsed = Json::Parse("{\"n\": 1, \"s\": \"x\"}");
  ASSERT_TRUE(parsed.ok());
  const Json& doc = parsed.value();
  EXPECT_FALSE(GetNumber(doc, "missing").ok());
  EXPECT_FALSE(GetNumber(doc, "s").ok());
  EXPECT_FALSE(GetString(doc, "n").ok());
  EXPECT_FALSE(GetBool(doc, "n").ok());
  EXPECT_TRUE(GetMember(doc, "n").ok());
  EXPECT_FALSE(GetMember(Json(1.0), "n").ok());
}

}  // namespace
}  // namespace bench
}  // namespace tcdp
