// Unit tests for lp/tpl_lfp: the paper's LFP instance (18)-(20) built for
// generic solvers, and its agreement with the closed-form objective of
// Theorem 4 on hand-checked pairs.

#include "lp/tpl_lfp.h"

#include <cmath>

#include <gtest/gtest.h>

namespace tcdp {
namespace {

TEST(BuildPairwiseTplLfp, ShapeMatchesPaperFormulation) {
  auto lfp = BuildPairwiseTplLfp({0.8, 0.2}, {0.0, 1.0}, 0.5);
  ASSERT_TRUE(lfp.ok());
  // n(n-1) ratio constraints + n unit-box constraints.
  EXPECT_EQ(lfp->constraints.size(), 2u * 1u + 2u);
  EXPECT_EQ(lfp->num_variables(), 2u);
}

TEST(BuildPairwiseTplLfp, ValidatesInput) {
  EXPECT_FALSE(BuildPairwiseTplLfp({1.0}, {1.0}, 0.5).ok());          // n<2
  EXPECT_FALSE(BuildPairwiseTplLfp({0.5, 0.5}, {1.0}, 0.5).ok());     // size
  EXPECT_FALSE(BuildPairwiseTplLfp({0.5, 0.5}, {0.5, 0.5}, -1).ok()); // alpha
}

TEST(BuildCompactTplLfp, HasTwoAuxiliaryVariables) {
  auto lfp = BuildCompactTplLfp({0.8, 0.2}, {0.0, 1.0}, 0.5);
  ASSERT_TRUE(lfp.ok());
  EXPECT_EQ(lfp->num_variables(), 4u);  // x1, x2, m, M
  // 2n envelope constraints + link + box.
  EXPECT_EQ(lfp->constraints.size(), 2u * 2u + 2u);
}

// The Theorem 4 closed form for the pair q=(0.8,0.2), d=(0,1):
// subset {0}, value = (0.8 (e^a - 1) + 1) / 1.
double ClosedFormLoss(double alpha) {
  return std::log(0.8 * std::expm1(alpha) + 1.0);
}

TEST(PairLossViaLfp, CharnesCooperPairwiseMatchesClosedForm) {
  for (double alpha : {0.1, 0.5, 1.0, 2.0}) {
    auto loss = PairLossViaLfp({0.8, 0.2}, {0.0, 1.0}, alpha,
                               LfpMethod::kCharnesCooper,
                               LfpFormulation::kPairwise);
    ASSERT_TRUE(loss.ok()) << loss.status();
    EXPECT_NEAR(*loss, ClosedFormLoss(alpha), 1e-7) << "alpha=" << alpha;
  }
}

TEST(PairLossViaLfp, DinkelbachPairwiseMatchesClosedForm) {
  for (double alpha : {0.1, 1.0, 2.0}) {
    auto loss =
        PairLossViaLfp({0.8, 0.2}, {0.0, 1.0}, alpha, LfpMethod::kDinkelbach,
                       LfpFormulation::kPairwise);
    ASSERT_TRUE(loss.ok()) << loss.status();
    EXPECT_NEAR(*loss, ClosedFormLoss(alpha), 1e-7) << "alpha=" << alpha;
  }
}

TEST(PairLossViaLfp, CompactFormulationAgreesWithPairwise) {
  const std::vector<double> q = {0.5, 0.3, 0.2};
  const std::vector<double> d = {0.1, 0.6, 0.3};
  for (double alpha : {0.2, 1.0, 3.0}) {
    auto pw = PairLossViaLfp(q, d, alpha, LfpMethod::kCharnesCooper,
                             LfpFormulation::kPairwise);
    auto cp = PairLossViaLfp(q, d, alpha, LfpMethod::kCharnesCooper,
                             LfpFormulation::kCompact);
    ASSERT_TRUE(pw.ok());
    ASSERT_TRUE(cp.ok());
    EXPECT_NEAR(*pw, *cp, 1e-7) << "alpha=" << alpha;
  }
}

TEST(PairLossViaLfp, IdenticalRowsGiveZero) {
  auto loss = PairLossViaLfp({0.4, 0.6}, {0.4, 0.6}, 1.0,
                             LfpMethod::kCharnesCooper,
                             LfpFormulation::kPairwise);
  ASSERT_TRUE(loss.ok());
  EXPECT_NEAR(*loss, 0.0, 1e-8);
}

TEST(TemporalLossViaLfp, MaximizesOverOrderedPairs) {
  // Figure 3's matrix: max over pairs is log(0.8(e^a -1)+1) (pair 0->1).
  auto m = StochasticMatrix::FromRows({{0.8, 0.2}, {0.0, 1.0}});
  auto loss = TemporalLossViaLfp(m, 0.1, LfpMethod::kCharnesCooper,
                                 LfpFormulation::kPairwise);
  ASSERT_TRUE(loss.ok());
  EXPECT_NEAR(*loss, ClosedFormLoss(0.1), 1e-7);
}

TEST(TemporalLossViaLfp, RejectsTinyMatrices) {
  EXPECT_FALSE(TemporalLossViaLfp(StochasticMatrix::Uniform(1), 1.0,
                                  LfpMethod::kCharnesCooper,
                                  LfpFormulation::kPairwise)
                   .ok());
}

}  // namespace
}  // namespace tcdp
