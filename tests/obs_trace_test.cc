// Unit tests for obs/trace: the fixed-capacity span ring, wraparound,
// the Chrome trace-event dump, and the enabled/disabled contract.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace tcdp {
namespace obs {
namespace {

TraceEvent MakeEvent(const char* name, std::uint64_t start_ns,
                     std::uint64_t arg = 0) {
  TraceEvent event;
  event.name = name;
  event.category = "test";
  event.start_ns = start_ns;
  event.duration_ns = 10;
  event.thread_id = TraceThreadId();
  event.arg = arg;
  return event;
}

TEST(TraceRecorder, DisabledRecorderDropsEverything) {
  TraceRecorder recorder;
  EXPECT_FALSE(recorder.enabled());
  recorder.Record(MakeEvent("dropped", 100));
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_EQ(recorder.size(), 0u);
}

TEST(TraceRecorder, RecordsUpToCapacity) {
  TraceRecorder recorder;
  recorder.Start(4);
  EXPECT_TRUE(recorder.enabled());
  EXPECT_EQ(recorder.capacity(), 4u);
  for (int i = 0; i < 3; ++i) {
    recorder.Record(MakeEvent("span", 100 + i, i));
  }
  EXPECT_EQ(recorder.recorded(), 3u);
  EXPECT_EQ(recorder.size(), 3u);
}

TEST(TraceRecorder, WraparoundKeepsNewestSpans) {
  TraceRecorder recorder;
  recorder.Start(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    recorder.Record(MakeEvent("wrap", 1000 + i, i));
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.size(), 4u);  // ring holds only the last capacity

  const std::string json = recorder.DumpJson();
  // Survivors are args 6..9; 0..5 were overwritten.
  for (std::uint64_t arg = 6; arg < 10; ++arg) {
    EXPECT_NE(json.find("\"arg\": " + std::to_string(arg)),
              std::string::npos)
        << json;
  }
  for (std::uint64_t arg = 0; arg < 6; ++arg) {
    EXPECT_EQ(json.find("\"arg\": " + std::to_string(arg) + "}"),
              std::string::npos)
        << json;
  }
  // Oldest-first: arg 6 renders before arg 9.
  EXPECT_LT(json.find("\"arg\": 6"), json.find("\"arg\": 9"));
}

TEST(TraceRecorder, RestartResetsTheRing) {
  TraceRecorder recorder;
  recorder.Start(2);
  recorder.Record(MakeEvent("first", 1));
  recorder.Stop();
  EXPECT_FALSE(recorder.enabled());
  recorder.Record(MakeEvent("while_stopped", 2));
  EXPECT_EQ(recorder.recorded(), 1u);
  recorder.Start(8);
  EXPECT_EQ(recorder.capacity(), 8u);
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_EQ(recorder.size(), 0u);
}

TEST(TraceRecorder, DumpJsonIsWellFormedWhenEmpty) {
  TraceRecorder recorder;
  recorder.Start(4);
  const std::string json = recorder.DumpJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("]"), std::string::npos);
}

TEST(TraceRecorder, ConcurrentWritersNeverTearTheCount) {
  TraceRecorder recorder;
  recorder.Start(64);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&recorder] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.Record(MakeEvent("mt", 1 + i));
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(recorder.recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(recorder.size(), 64u);
  // The dump must stay parseable after heavy wrapping.
  const std::string json = recorder.DumpJson();
  EXPECT_NE(json.find("\"mt\""), std::string::npos);
}

TEST(TraceThreadIdTest, StablePerThreadAndDistinctAcrossThreads) {
  const std::uint32_t mine = TraceThreadId();
  EXPECT_EQ(TraceThreadId(), mine);
  std::uint32_t other = mine;
  std::thread worker([&other] { other = TraceThreadId(); });
  worker.join();
  EXPECT_NE(other, mine);
}

TEST(ScopedSpanTest, RecordsOnlyWhenDefaultTraceEnabled) {
  TraceRecorder& recorder = DefaultTrace();
  const bool was_enabled = recorder.enabled();
  recorder.Stop();
  {
    ScopedSpan span("obs_trace_test_disabled", "test");
  }
  recorder.Start(16);
  const std::uint64_t before = recorder.recorded();
  {
    ScopedSpan span("obs_trace_test_enabled", "test", 7);
  }
  EXPECT_EQ(recorder.recorded(), before + 1);
  const std::string json = recorder.DumpJson();
  EXPECT_NE(json.find("obs_trace_test_enabled"), std::string::npos);
  EXPECT_EQ(json.find("obs_trace_test_disabled"), std::string::npos);
  if (!was_enabled) recorder.Stop();
}

}  // namespace
}  // namespace obs
}  // namespace tcdp
