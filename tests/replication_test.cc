// Integration tests for WAL-streaming replication (ISSUE 10): a
// primary's LogStreamServer + a Follower over real loopback sockets.
//
//   * A follower's log directory converges to a BYTE-IDENTICAL copy of
//     the primary's (MANIFEST and every shard WAL compared bitwise),
//     and the acked release horizon the primary exposes matches what
//     the service committed.
//   * A stopped follower resumes from its (record, chain-CRC) cursors
//     and converges again without re-streaming history it has.
//   * Deterministic network faults on the follower link — scripted
//     byte corruption, mid-frame connection resets, 1-byte chunking
//     (tests/fault_injection.h) — never change a single byte of the
//     primary's WALs or its accounting reports, and the follower
//     converges byte-identical once the link heals.
//   * Hostile bytes straight at the replication port are dropped
//     without perturbing the primary (the satellite claim: the
//     replication listener is as inert as the client listener).

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/wire.h"
#include "replication/follower.h"
#include "replication/log_stream.h"
#include "server/sharded_service.h"
#include "tests/fault_injection.h"
#include "workload/generators.h"

namespace tcdp {
namespace replication {
namespace {

std::string UserName(std::size_t u) { return "user-" + std::to_string(u); }

TemporalCorrelations Profile(std::size_t u) {
  auto matrix = ClickstreamModel(3 + u % 3, 0.2 + 0.05 * (u % 4));
  EXPECT_TRUE(matrix.ok());
  return TemporalCorrelations::Both(*matrix, *matrix).value();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Asserts every file of the primary's log dir is byte-identical in
/// the replica dir.
void ExpectByteIdenticalDirs(const std::string& primary,
                             const std::string& replica,
                             const std::string& label) {
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(primary)) {
    const std::string name = entry.path().filename().string();
    const std::string a = ReadFileBytes(entry.path().string());
    const std::string b = ReadFileBytes(replica + "/" + name);
    EXPECT_EQ(a.size(), b.size()) << label << " " << name;
    EXPECT_TRUE(a == b) << label << ": " << name << " differs";
    ++files;
  }
  EXPECT_GE(files, 2u) << label;  // MANIFEST + at least one shard WAL
}

/// A durable primary service + its replication stream server.
struct Primary {
  std::string dir;
  std::unique_ptr<server::ShardedReleaseService> service;
  std::unique_ptr<LogStreamServer> stream;
  std::thread thread;
  Status serve_status;

  static std::unique_ptr<Primary> Start(const std::string& dir,
                                        std::size_t shards) {
    std::filesystem::remove_all(dir);
    auto primary = std::make_unique<Primary>();
    primary->dir = dir;
    server::ShardedServiceOptions options;
    options.num_shards = shards;
    options.batch_window = 4;
    auto service = server::ShardedReleaseService::Create(dir, options);
    EXPECT_TRUE(service.ok()) << service.status();
    if (!service.ok()) return nullptr;
    primary->service = std::move(service).value();
    LogStreamOptions stream_options;
    stream_options.log_dir = dir;
    auto stream = LogStreamServer::Listen(stream_options);
    EXPECT_TRUE(stream.ok()) << stream.status();
    if (!stream.ok()) return nullptr;
    primary->stream = std::move(stream).value();
    primary->thread = std::thread([raw = primary.get()] {
      raw->serve_status = raw->stream->Serve();
    });
    return primary;
  }

  std::uint16_t port() const { return stream->port(); }

  void StopStream() {
    if (thread.joinable()) {
      stream->Stop();
      thread.join();
    }
    EXPECT_TRUE(serve_status.ok()) << serve_status;
  }

  ~Primary() {
    if (thread.joinable()) {
      stream->Stop();
      thread.join();
    }
  }
};

/// Blocks until \p follower has acked \p release_horizon (and the
/// primary agrees), or fails the test after ~5s.
void AwaitHorizon(Primary* primary, Follower* follower,
                  std::uint64_t release_horizon) {
  for (int i = 0; i < 500; ++i) {
    const FollowerStatus fs = follower->status();
    const LogStreamStats ps = primary->stream->stats();
    if (fs.release_horizon >= release_horizon &&
        ps.min_acked_release_horizon >= release_horizon &&
        ps.followers > 0 && ps.max_lag_records == 0) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "follower never acked horizon " << release_horizon
         << " (follower at " << follower->status().release_horizon
         << ", primary sees "
         << primary->stream->stats().min_acked_release_horizon << ")";
}

/// Joins users and runs \p rounds global releases, flushing (and
/// therefore committing WAL bytes) each round.
void RunWorkload(server::ShardedReleaseService* service, std::size_t users,
                 int rounds) {
  for (std::size_t u = 0; u < users; ++u) {
    ASSERT_TRUE(service->Join(UserName(u), Profile(u)).ok());
  }
  ASSERT_TRUE(service->Flush().ok());
  for (int round = 0; round < rounds; ++round) {
    for (std::size_t u = 0; u < users; ++u) {
      ASSERT_TRUE(service->Release(UserName(u), 0.1 + 0.05 * round).ok());
    }
    ASSERT_TRUE(service->Flush().ok());
  }
}

TEST(ReplicationTest, FollowerConvergesByteIdenticalAndAcksHorizon) {
  const std::string primary_dir = "/tmp/tcdp_repl_test_primary";
  const std::string replica_dir = "/tmp/tcdp_repl_test_replica";
  std::filesystem::remove_all(replica_dir);
  auto primary = Primary::Start(primary_dir, 3);
  ASSERT_NE(primary, nullptr);

  FollowerOptions options;
  options.primary_port = primary->port();
  options.log_dir = replica_dir;
  auto follower = Follower::Open(options);
  ASSERT_TRUE(follower.ok()) << follower.status();
  ASSERT_TRUE((*follower)->Start().ok());

  RunWorkload(primary->service.get(), 9, 3);
  // Horizon semantics: every global release the service committed must
  // be acked as durable by the follower.
  const std::uint64_t horizon = primary->service->horizon();
  EXPECT_GE(horizon, 3u);
  AwaitHorizon(primary.get(), follower->get(), horizon);

  const LogStreamStats stats = primary->stream->stats();
  EXPECT_EQ(stats.min_acked_release_horizon, horizon);
  EXPECT_EQ(stats.followers, 1u);
  EXPECT_GT(stats.records_sent, 0u);
  EXPECT_GT(stats.acks_received, 0u);
  EXPECT_EQ(stats.divergences, 0u);
  ASSERT_EQ(stats.follower_rows.size(), 1u);
  EXPECT_EQ(stats.follower_rows[0].lag_records, 0u);

  (*follower)->Stop();
  ExpectByteIdenticalDirs(primary_dir, replica_dir, "converged");

  const FollowerStatus fs = (*follower)->status();
  EXPECT_FALSE(fs.diverged);
  EXPECT_EQ(fs.num_shards, 3u);
  EXPECT_GT(fs.records_applied, 0u);
  EXPECT_EQ(fs.release_horizon, horizon);

  primary->StopStream();
  EXPECT_TRUE(primary->service->Close().ok());
  std::filesystem::remove_all(primary_dir);
  std::filesystem::remove_all(replica_dir);
}

TEST(ReplicationTest, StoppedFollowerResumesFromItsCursors) {
  const std::string primary_dir = "/tmp/tcdp_repl_resume_primary";
  const std::string replica_dir = "/tmp/tcdp_repl_resume_replica";
  std::filesystem::remove_all(replica_dir);
  auto primary = Primary::Start(primary_dir, 2);
  ASSERT_NE(primary, nullptr);

  FollowerOptions options;
  options.primary_port = primary->port();
  options.log_dir = replica_dir;
  std::uint64_t already_applied = 0;
  {
    auto follower = Follower::Open(options);
    ASSERT_TRUE(follower.ok()) << follower.status();
    ASSERT_TRUE((*follower)->Start().ok());
    RunWorkload(primary->service.get(), 6, 2);
    AwaitHorizon(primary.get(), follower->get(),
                 primary->service->horizon());
    (*follower)->Stop();
    already_applied = (*follower)->status().records_applied;
    EXPECT_GT(already_applied, 0u);
  }

  // The primary moves on while the follower is down.
  for (std::size_t u = 0; u < 6; ++u) {
    ASSERT_TRUE(primary->service->Release(UserName(u), 0.3).ok());
  }
  ASSERT_TRUE(primary->service->Flush().ok());
  const std::uint64_t final_horizon = primary->service->horizon();

  {
    // Reopening scans the local WALs and resumes from the cursors: the
    // second session must apply only the delta.
    auto follower = Follower::Open(options);
    ASSERT_TRUE(follower.ok()) << follower.status();
    ASSERT_TRUE((*follower)->Start().ok());
    AwaitHorizon(primary.get(), follower->get(), final_horizon);
    (*follower)->Stop();
    const FollowerStatus fs = (*follower)->status();
    EXPECT_FALSE(fs.diverged);
    EXPECT_LT(fs.records_applied, already_applied)
        << "resume re-streamed history the replica already had";
    EXPECT_EQ(fs.release_horizon, final_horizon);
  }
  ExpectByteIdenticalDirs(primary_dir, replica_dir, "resumed");

  primary->StopStream();
  EXPECT_TRUE(primary->service->Close().ok());
  std::filesystem::remove_all(primary_dir);
  std::filesystem::remove_all(replica_dir);
}

TEST(ReplicationTest, ScriptedLinkFaultsNeverPerturbThePrimary) {
  const std::string primary_dir = "/tmp/tcdp_repl_fault_primary";
  const std::string replica_dir = "/tmp/tcdp_repl_fault_replica";
  std::filesystem::remove_all(replica_dir);
  auto primary = Primary::Start(primary_dir, 2);
  ASSERT_NE(primary, nullptr);

  // Commit state FIRST, then snapshot the primary's bytes and reports:
  // the fault sweep must not change either.
  RunWorkload(primary->service.get(), 8, 3);
  std::vector<std::string> wal_before;
  for (std::size_t s = 0; s < 2; ++s) {
    wal_before.push_back(ReadFileBytes(primary_dir + "/shard-" +
                                       std::to_string(s) + ".wal"));
  }
  auto report_before = primary->service->Query(UserName(0));
  ASSERT_TRUE(report_before.ok());

  // Fault script: session 1 delivers the stream 1 byte at a time and
  // corrupts byte 200 of the primary->follower direction (mid-batch:
  // the follower must detect it via the frame CRC and hang up);
  // session 2 resets the connection after 64 bytes of stream (mid
  // frame); session 3+ is clean and must converge.
  std::vector<testing::ConnPlan> plans(3);
  plans[0].server_to_client.chunk = 1;
  plans[0].server_to_client.corrupt_at = 200;
  plans[1].server_to_client.reset_after = 64;
  auto proxy = testing::FaultyProxy::Start(primary->port(), plans);
  ASSERT_NE(proxy, nullptr);

  FollowerOptions options;
  options.primary_port = proxy->port();
  options.log_dir = replica_dir;
  options.reconnect_delay_ms = 10;
  auto follower = Follower::Open(options);
  ASSERT_TRUE(follower.ok()) << follower.status();
  ASSERT_TRUE((*follower)->Start().ok());

  AwaitHorizon(primary.get(), follower->get(),
               primary->service->horizon());
  (*follower)->Stop();

  const FollowerStatus fs = (*follower)->status();
  EXPECT_FALSE(fs.diverged)
      << "transport corruption must read as a transport fault, "
         "never as history divergence";
  EXPECT_GE(fs.reconnects, 2u) << "both faulty sessions must have died";
  const testing::FaultyProxyStats proxy_stats = proxy->stats();
  EXPECT_GE(proxy_stats.connections, 3u);
  EXPECT_EQ(proxy_stats.corruptions, 1u);
  EXPECT_EQ(proxy_stats.resets, 1u);
  proxy->Stop();

  // The replica converged byte-identical through the hostile link...
  ExpectByteIdenticalDirs(primary_dir, replica_dir, "healed");
  // ...and the primary never felt a thing: WAL bytes and accounting
  // reports are bitwise what they were before the sweep.
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(ReadFileBytes(primary_dir + "/shard-" + std::to_string(s) +
                            ".wal"),
              wal_before[s])
        << "shard " << s << " WAL changed under follower faults";
  }
  auto report_after = primary->service->Query(UserName(0));
  ASSERT_TRUE(report_after.ok());
  EXPECT_EQ(report_after->tpl_series, report_before->tpl_series);
  EXPECT_EQ(report_after->epsilons, report_before->epsilons);

  primary->StopStream();
  EXPECT_TRUE(primary->service->Close().ok());
  std::filesystem::remove_all(primary_dir);
  std::filesystem::remove_all(replica_dir);
}

TEST(ReplicationTest, HostileBytesAtTheReplicationPortAreInert) {
  const std::string primary_dir = "/tmp/tcdp_repl_hostile_primary";
  const std::string replica_dir = "/tmp/tcdp_repl_hostile_replica";
  std::filesystem::remove_all(replica_dir);
  auto primary = Primary::Start(primary_dir, 2);
  ASSERT_NE(primary, nullptr);
  RunWorkload(primary->service.get(), 4, 2);
  const std::string wal_before =
      ReadFileBytes(primary_dir + "/shard-0.wal");

  auto hostile = [&](const std::string& bytes) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(primary->port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    if (!bytes.empty()) {
      ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
                static_cast<ssize_t>(bytes.size()));
    }
    timeval timeout{5, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    // Drain until the server closes on us (it must).
    char buffer[1024];
    while (::recv(fd, buffer, sizeof(buffer), 0) > 0) {
    }
    ::close(fd);
  };

  hostile("not the protocol at all.........................");
  {
    std::string attack;
    net::AppendPreamble(&attack);
    attack.push_back(static_cast<char>(net::MsgType::kSubscribe));
    const std::uint32_t huge = net::kMaxFramePayload + 1;
    attack.append(reinterpret_cast<const char*>(&huge), 4);
    attack.append(4, '\0');
    hostile(attack);
  }
  {
    std::string attack;
    net::AppendPreamble(&attack);
    net::AppendFrame(&attack, net::MsgType::kSubscribe,
                     "not a subscribe payload");
    hostile(attack);
  }
  {
    // A client-protocol request at the replication port: framed fine,
    // wrong family. Refused, not crashed.
    std::string attack;
    net::AppendPreamble(&attack);
    net::AppendFrame(&attack, net::MsgType::kFlush, "");
    hostile(attack);
  }

  // A real follower still converges afterwards, and the primary's WAL
  // never moved.
  FollowerOptions options;
  options.primary_port = primary->port();
  options.log_dir = replica_dir;
  auto follower = Follower::Open(options);
  ASSERT_TRUE(follower.ok()) << follower.status();
  ASSERT_TRUE((*follower)->Start().ok());
  AwaitHorizon(primary.get(), follower->get(),
               primary->service->horizon());
  (*follower)->Stop();
  EXPECT_FALSE((*follower)->status().diverged);
  ExpectByteIdenticalDirs(primary_dir, replica_dir, "post-hostile");
  EXPECT_EQ(ReadFileBytes(primary_dir + "/shard-0.wal"), wal_before);

  primary->StopStream();
  EXPECT_TRUE(primary->service->Close().ok());
  std::filesystem::remove_all(primary_dir);
  std::filesystem::remove_all(replica_dir);
}

}  // namespace
}  // namespace replication
}  // namespace tcdp
