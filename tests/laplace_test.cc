// Unit tests for dp/laplace: the Theorem 1 mechanism and an empirical
// differential-privacy check of the likelihood-ratio bound.

#include "dp/laplace.h"

#include <cmath>

#include <gtest/gtest.h>

namespace tcdp {
namespace {

TEST(LaplaceMechanism, CreateValidates) {
  EXPECT_FALSE(LaplaceMechanism::Create(0.0).ok());
  EXPECT_FALSE(LaplaceMechanism::Create(-1.0).ok());
  EXPECT_FALSE(LaplaceMechanism::Create(1.0, 0.0).ok());
  EXPECT_TRUE(LaplaceMechanism::Create(0.5, 2.0).ok());
}

TEST(LaplaceMechanism, ScaleIsSensitivityOverEpsilon) {
  auto m = LaplaceMechanism::Create(0.5, 2.0);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->scale(), 4.0);
  EXPECT_DOUBLE_EQ(m->ExpectedAbsNoise(), 4.0);
  EXPECT_DOUBLE_EQ(m->NoiseVariance(), 32.0);
}

TEST(LaplaceMechanism, PerturbIsUnbiased) {
  Rng rng(20);
  auto m = LaplaceMechanism::Create(1.0);
  ASSERT_TRUE(m.ok());
  double acc = 0.0;
  const int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) acc += m->Perturb(10.0, &rng);
  EXPECT_NEAR(acc / kSamples, 10.0, 0.02);
}

TEST(LaplaceMechanism, EmpiricalAbsNoiseMatchesExpectation) {
  Rng rng(21);
  auto m = LaplaceMechanism::Create(0.1);  // scale 10
  ASSERT_TRUE(m.ok());
  double acc = 0.0;
  const int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    acc += std::fabs(m->Perturb(0.0, &rng));
  }
  EXPECT_NEAR(acc / kSamples, m->ExpectedAbsNoise(), 0.15);
}

TEST(LaplaceMechanism, PerturbVectorIsElementwise) {
  Rng rng(22);
  auto m = LaplaceMechanism::Create(1.0);
  ASSERT_TRUE(m.ok());
  auto out = m->PerturbVector({1.0, 2.0, 3.0}, &rng);
  ASSERT_EQ(out.size(), 3u);
  // Noise should differ per coordinate almost surely.
  EXPECT_NE(out[0] - 1.0, out[1] - 2.0);
}

TEST(LaplaceMechanism, PdfIntegratesToOneOnGrid) {
  const double scale = 1.5;
  double mass = 0.0;
  const double dx = 0.01;
  for (double x = -30.0; x <= 30.0; x += dx) {
    mass += LaplaceMechanism::Pdf(x, scale) * dx;
  }
  EXPECT_NEAR(mass, 1.0, 1e-3);
}

TEST(LaplaceMechanism, CdfMatchesClosedForm) {
  EXPECT_DOUBLE_EQ(LaplaceMechanism::Cdf(0.0, 1.0), 0.5);
  EXPECT_NEAR(LaplaceMechanism::Cdf(1.0, 1.0), 1.0 - 0.5 * std::exp(-1.0),
              1e-12);
  EXPECT_NEAR(LaplaceMechanism::Cdf(-1.0, 1.0), 0.5 * std::exp(-1.0), 1e-12);
}

TEST(LaplaceMechanism, CdfIsMonotone) {
  double prev = 0.0;
  for (double x = -10.0; x <= 10.0; x += 0.25) {
    const double c = LaplaceMechanism::Cdf(x, 2.0);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

// The DP guarantee itself: for outputs r, neighboring values v, v' with
// |v - v'| <= sensitivity, pdf(r - v) / pdf(r - v') <= e^eps.
TEST(LaplaceMechanism, LikelihoodRatioBoundedByExpEpsilon) {
  const double eps = 0.7;
  const double sensitivity = 1.0;
  const double scale = sensitivity / eps;
  for (double r = -5.0; r <= 5.0; r += 0.1) {
    const double p0 = LaplaceMechanism::Pdf(r - 0.0, scale);
    const double p1 = LaplaceMechanism::Pdf(r - 1.0, scale);
    EXPECT_LE(std::log(p0 / p1), eps + 1e-12);
    EXPECT_GE(std::log(p0 / p1), -eps - 1e-12);
  }
}

// Empirical DP audit: histogram the mechanism's outputs under two
// neighboring inputs and check the observed log-odds never exceed eps by
// more than sampling error.
TEST(LaplaceMechanism, EmpiricalPrivacyAudit) {
  Rng rng(23);
  const double eps = 1.0;
  auto m = LaplaceMechanism::Create(eps);
  ASSERT_TRUE(m.ok());
  const int kSamples = 400000;
  const double lo = -4.0, hi = 5.0, width = 0.5;
  const int bins = static_cast<int>((hi - lo) / width);
  std::vector<double> h0(bins, 1.0), h1(bins, 1.0);  // +1 smoothing
  for (int i = 0; i < kSamples; ++i) {
    const double r0 = m->Perturb(0.0, &rng);
    const double r1 = m->Perturb(1.0, &rng);
    const int b0 = static_cast<int>((r0 - lo) / width);
    const int b1 = static_cast<int>((r1 - lo) / width);
    if (b0 >= 0 && b0 < bins) h0[b0] += 1.0;
    if (b1 >= 0 && b1 < bins) h1[b1] += 1.0;
  }
  for (int b = 0; b < bins; ++b) {
    const double ratio = std::log(h0[b] / h1[b]);
    EXPECT_LE(std::fabs(ratio), eps + 0.15) << "bin " << b;
  }
}

}  // namespace
}  // namespace tcdp
