// Loopback integration tests for the network frontend (ISSUE 4):
//
//   * N concurrent clients driving disjoint users produce per-user TPL
//     series that are bitwise invariant across server shard counts AND
//     bitwise equal to an in-process ShardedReleaseService run — the
//     wire adds transport, never semantics. Concurrency is made
//     deterministic the same way the service itself is: each phase
//     uses a single epsilon and ends with one flush, so the phase's
//     global release is a participant-set union, insensitive to
//     arrival order.
//   * Malformed input (garbage magic, oversized length, corrupt CRC,
//     truncated frames, non-request frame types) drops the offending
//     connection without crashing the server or perturbing accounting
//     state (asserted bitwise before/after; runs under ASan in CI).
//   * Durable service over the network: WAL + snapshot written through
//     networked requests recover to the same per-user reports.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/server.h"
#include "server/sharded_service.h"
#include "tests/fault_injection.h"
#include "workload/generators.h"

namespace tcdp {
namespace net {
namespace {

constexpr std::size_t kUsers = 12;
constexpr std::size_t kClients = 4;

std::string UserName(std::size_t u) { return "user-" + std::to_string(u); }

TemporalCorrelations Profile(std::size_t u) {
  auto matrix = ClickstreamModel(3 + u % 3, 0.2 + 0.05 * (u % 4));
  EXPECT_TRUE(matrix.ok());
  return TemporalCorrelations::Both(*matrix, *matrix).value();
}

/// One deterministic workload phase: epsilon + the participating users.
struct Phase {
  double epsilon;
  std::vector<std::size_t> users;
};

std::vector<Phase> MakePhases() {
  std::vector<Phase> phases;
  const double epsilons[] = {0.1, 0.2, 0.05, 0.1};
  for (std::size_t p = 0; p < 4; ++p) {
    Phase phase;
    phase.epsilon = epsilons[p];
    for (std::size_t u = 0; u < kUsers; ++u) {
      if ((u + p) % 3 != 0) phase.users.push_back(u);
    }
    phases.push_back(std::move(phase));
  }
  return phases;
}

/// A served ShardedReleaseService with its Serve() loop on a thread.
struct TestServer {
  std::unique_ptr<server::ShardedReleaseService> service;
  std::unique_ptr<NetServer> server;
  std::thread thread;
  Status serve_status;

  static std::unique_ptr<TestServer> Start(std::size_t shards,
                                           std::size_t batch_window,
                                           const std::string& log_dir = "",
                                           NetServerOptions net_options = {}) {
    auto ts = std::make_unique<TestServer>();
    server::ShardedServiceOptions options;
    options.num_shards = shards;
    options.batch_window = batch_window;
    auto service = server::ShardedReleaseService::Create(log_dir, options);
    EXPECT_TRUE(service.ok()) << service.status();
    if (!service.ok()) return nullptr;
    ts->service = std::move(service).value();
    auto server = NetServer::Listen(ts->service.get(), net_options);
    EXPECT_TRUE(server.ok()) << server.status();
    if (!server.ok()) return nullptr;
    ts->server = std::move(server).value();
    ts->thread = std::thread([ts = ts.get()] {
      ts->serve_status = ts->server->Serve();
    });
    return ts;
  }

  std::uint16_t port() const { return server->port(); }

  /// Stops the loop (if a client's Shutdown hasn't already) and joins.
  void Finish() {
    if (thread.joinable()) {
      server->Stop();
      thread.join();
    }
    EXPECT_TRUE(serve_status.ok()) << serve_status;
  }

  ~TestServer() {
    if (thread.joinable()) {
      server->Stop();
      thread.join();
    }
  }
};

StatusOr<std::unique_ptr<NetClient>> Connect(const TestServer& ts,
                                             std::size_t pipeline = 1) {
  NetClientOptions options;
  options.pipeline_depth = pipeline;
  return NetClient::Connect("127.0.0.1", ts.port(), options);
}

/// Collects every user's report through one connection.
std::vector<server::UserReport> QueryAll(NetClient* client) {
  std::vector<server::UserReport> reports;
  for (std::size_t u = 0; u < kUsers; ++u) {
    auto report = client->Query(UserName(u));
    EXPECT_TRUE(report.ok()) << report.status();
    if (report.ok()) reports.push_back(std::move(report).value());
  }
  return reports;
}

/// Drives the phased workload over the network with kClients threads
/// (disjoint user slices) and returns all user reports.
std::vector<server::UserReport> RunNetworkWorkload(std::size_t shards) {
  // A huge batch window: each phase becomes exactly one tick (closed
  // by Flush), so the global schedule is arrival-order independent.
  auto ts = TestServer::Start(shards, 1u << 20);
  EXPECT_NE(ts, nullptr);
  if (ts == nullptr) return {};

  auto control = Connect(*ts);
  EXPECT_TRUE(control.ok()) << control.status();
  for (std::size_t u = 0; u < kUsers; ++u) {
    EXPECT_TRUE((*control)->Join(UserName(u), Profile(u)).ok());
  }
  EXPECT_TRUE((*control)->Flush().ok());

  for (const Phase& phase : MakePhases()) {
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        auto client = Connect(*ts, /*pipeline=*/4);
        ASSERT_TRUE(client.ok()) << client.status();
        for (std::size_t u : phase.users) {
          if (u % kClients != c) continue;  // disjoint slices
          ASSERT_TRUE((*client)->Release(UserName(u), phase.epsilon).ok());
        }
        ASSERT_TRUE((*client)->Drain().ok());
      });
    }
    for (std::thread& thread : threads) thread.join();
    // Every phase request is acked (dispatched into the service)
    // before this flush closes the window.
    EXPECT_TRUE((*control)->Flush().ok());
  }

  std::vector<server::UserReport> reports = QueryAll(control->get());
  EXPECT_TRUE((*control)->Shutdown().ok());
  ts->Finish();
  EXPECT_TRUE(ts->service->Close().ok());
  return reports;
}

/// The same workload applied directly to an in-process service.
std::vector<server::UserReport> RunInProcessWorkload(std::size_t shards) {
  server::ShardedServiceOptions options;
  options.num_shards = shards;
  options.batch_window = 1u << 20;
  auto service = server::ShardedReleaseService::Create("", options);
  EXPECT_TRUE(service.ok());
  for (std::size_t u = 0; u < kUsers; ++u) {
    EXPECT_TRUE((*service)->Join(UserName(u), Profile(u)).ok());
  }
  EXPECT_TRUE((*service)->Flush().ok());
  for (const Phase& phase : MakePhases()) {
    for (std::size_t u : phase.users) {
      EXPECT_TRUE((*service)->Release(UserName(u), phase.epsilon).ok());
    }
    EXPECT_TRUE((*service)->Flush().ok());
  }
  std::vector<server::UserReport> reports;
  for (std::size_t u = 0; u < kUsers; ++u) {
    auto report = (*service)->Query(UserName(u));
    EXPECT_TRUE(report.ok());
    if (report.ok()) reports.push_back(std::move(report).value());
  }
  EXPECT_TRUE((*service)->Close().ok());
  return reports;
}

void ExpectSameReports(const std::vector<server::UserReport>& a,
                       const std::vector<server::UserReport>& b,
                       const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name) << label;
    EXPECT_EQ(a[i].horizon, b[i].horizon) << label << " " << a[i].name;
    EXPECT_EQ(a[i].max_tpl, b[i].max_tpl) << label << " " << a[i].name;
    EXPECT_EQ(a[i].user_level_tpl, b[i].user_level_tpl)
        << label << " " << a[i].name;
    EXPECT_EQ(a[i].epsilons, b[i].epsilons) << label << " " << a[i].name;
    EXPECT_EQ(a[i].tpl_series, b[i].tpl_series) << label << " " << a[i].name;
  }
}

TEST(NetServerTest, ConcurrentClientsShardCountInvariantBitwise) {
  const auto reference = RunInProcessWorkload(2);
  ASSERT_EQ(reference.size(), kUsers);
  for (std::size_t shards : {std::size_t{1}, std::size_t{3}}) {
    const auto over_wire = RunNetworkWorkload(shards);
    ExpectSameReports(over_wire, reference,
                      "shards=" + std::to_string(shards));
  }
}

TEST(NetServerTest, PipelineDepthDoesNotChangeResults) {
  // One client, depth 1 vs depth 16, identical request order.
  auto run = [](std::size_t depth) {
    auto ts = TestServer::Start(2, 8);
    EXPECT_NE(ts, nullptr);
    auto client = Connect(*ts, depth);
    EXPECT_TRUE(client.ok());
    for (std::size_t u = 0; u < kUsers; ++u) {
      EXPECT_TRUE((*client)->Join(UserName(u), Profile(u)).ok());
    }
    for (int round = 0; round < 3; ++round) {
      for (std::size_t u = 0; u < kUsers; ++u) {
        if ((u + static_cast<std::size_t>(round)) % 2 == 0) {
          EXPECT_TRUE(
              (*client)->Release(UserName(u), 0.1 * (round + 1)).ok());
        }
      }
    }
    EXPECT_TRUE((*client)->Flush().ok());
    auto reports = QueryAll(client->get());
    EXPECT_TRUE((*client)->Shutdown().ok());
    ts->Finish();
    return reports;
  };
  ExpectSameReports(run(16), run(1), "pipeline");
}

TEST(NetServerTest, ServiceErrorsAreReportedAndDoNotKillTheStream) {
  auto ts = TestServer::Start(2, 4);
  ASSERT_NE(ts, nullptr);
  auto client = Connect(*ts);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Join("alice", Profile(0)).ok());
  // Unknown-user queries come back NotFound without latching.
  auto missing = (*client)->Query("nobody");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  auto present = (*client)->Query("alice");
  EXPECT_TRUE(present.ok());
  // A mutation error latches that client...
  auto bad = (*client)->Release("nobody", 0.1);
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE((*client)->Release("alice", 0.1).ok());
  // ...but the server and other connections are unaffected.
  auto fresh = Connect(*ts);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE((*fresh)->Release("alice", 0.1).ok());
  EXPECT_TRUE((*fresh)->Flush().ok());
  EXPECT_TRUE((*fresh)->Shutdown().ok());
  ts->Finish();
}

// --------------------------------------------------------- malformed input

/// A raw TCP connection for crafting hostile bytes.
struct RawConn {
  int fd = -1;

  static RawConn To(std::uint16_t port) {
    RawConn conn;
    conn.fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(conn.fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        ::connect(conn.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
        0);
    timeval timeout{5, 0};
    ::setsockopt(conn.fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                 sizeof(timeout));
    return conn;
  }

  void Send(const std::string& bytes) {
    ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Half-close: "no more bytes are coming" without closing our read
  /// side, so we can still observe the server's close.
  void ShutdownWrite() { ::shutdown(fd, SHUT_WR); }

  /// Reads until the server closes; returns everything received after
  /// the server's preamble+any frames. Fails the test on timeout.
  bool ClosedByServer() {
    char buffer[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
      if (n == 0) return true;  // orderly close from the server
      if (n < 0) return false;  // timeout or reset without close
    }
  }

  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }
};

TEST(NetServerTest, MalformedInputDropsConnectionWithoutCorruption) {
  auto ts = TestServer::Start(2, 4);
  ASSERT_NE(ts, nullptr);

  // Seed real state through a good client and capture it.
  auto good = Connect(*ts);
  ASSERT_TRUE(good.ok());
  for (std::size_t u = 0; u < 4; ++u) {
    ASSERT_TRUE((*good)->Join(UserName(u), Profile(u)).ok());
  }
  for (int round = 0; round < 2; ++round) {
    for (std::size_t u = 0; u < 4; ++u) {
      ASSERT_TRUE((*good)->Release(UserName(u), 0.1).ok());
    }
  }
  ASSERT_TRUE((*good)->Flush().ok());
  auto before = (*good)->Query(UserName(0));
  ASSERT_TRUE(before.ok());

  std::string preamble;
  AppendPreamble(&preamble);

  {  // Garbage magic.
    RawConn conn = RawConn::To(ts->port());
    conn.Send("this is definitely not the tcdp protocol....");
    EXPECT_TRUE(conn.ClosedByServer());
  }
  {  // Valid preamble, oversized frame length.
    RawConn conn = RawConn::To(ts->port());
    std::string attack = preamble;
    attack.push_back(static_cast<char>(MsgType::kQuery));
    const std::uint32_t huge = kMaxFramePayload + 1;
    attack.append(reinterpret_cast<const char*>(&huge), 4);
    attack.append(4, '\0');
    conn.Send(attack);
    EXPECT_TRUE(conn.ClosedByServer());
  }
  {  // Valid preamble, frame with corrupted CRC.
    RawConn conn = RawConn::To(ts->port());
    std::string attack = preamble;
    AppendFrame(&attack, MsgType::kFlush, "");
    attack.back() = static_cast<char>(attack.back() ^ 0x01);
    conn.Send(attack);
    EXPECT_TRUE(conn.ClosedByServer());
  }
  {  // Truncated frame, then the peer vanishes.
    RawConn conn = RawConn::To(ts->port());
    std::string attack = preamble;
    AppendFrame(&attack, MsgType::kRelease,
                EncodeRelease(UserName(0), 0.1));
    conn.Send(attack.substr(0, attack.size() - 3));
    // Half-closing abandons the partial frame; the server must just
    // discard it (nothing to apply, nothing to answer) and close.
    conn.ShutdownWrite();
    EXPECT_TRUE(conn.ClosedByServer());
  }
  {  // Well-framed but non-request type: answered with kError, closed.
    RawConn conn = RawConn::To(ts->port());
    std::string attack = preamble;
    AppendFrame(&attack, MsgType::kOk, "");
    conn.Send(attack);
    EXPECT_TRUE(conn.ClosedByServer());
  }
  {  // Empty-payload request type carrying junk bytes (misframing).
    RawConn conn = RawConn::To(ts->port());
    std::string attack = preamble;
    AppendFrame(&attack, MsgType::kFlush, "junk payload bytes");
    conn.Send(attack);
    EXPECT_TRUE(conn.ClosedByServer());
  }
  {  // Well-framed request whose payload does not decode — with more
     // frames queued behind it, which the server must discard (a
     // violation connection that waits for its queue to drain would
     // leak: those frames are never answered).
    RawConn conn = RawConn::To(ts->port());
    std::string attack = preamble;
    AppendFrame(&attack, MsgType::kJoin, "not a join payload");
    AppendFrame(&attack, MsgType::kFlush, "");
    AppendFrame(&attack, MsgType::kFlush, "");
    conn.Send(attack);
    EXPECT_TRUE(conn.ClosedByServer());
  }

  // The good connection and the accounting state are untouched.
  auto after = (*good)->Query(UserName(0));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->horizon, before->horizon);
  EXPECT_EQ(after->epsilons, before->epsilons);
  EXPECT_EQ(after->tpl_series, before->tpl_series);
  EXPECT_TRUE((*good)->Release(UserName(1), 0.2).ok());
  EXPECT_TRUE((*good)->Flush().ok());
  EXPECT_TRUE((*good)->Shutdown().ok());
  ts->Finish();
  EXPECT_GE(ts->server->stats().connections_dropped, 5u);
}

TEST(NetServerTest, StatsQueryReportsShardGauges) {
  auto ts = TestServer::Start(3, 4);
  ASSERT_NE(ts, nullptr);
  auto client = Connect(*ts, /*pipeline=*/8);
  ASSERT_TRUE(client.ok());
  for (std::size_t u = 0; u < kUsers; ++u) {
    ASSERT_TRUE((*client)->Join(UserName(u), Profile(u)).ok());
  }
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE((*client)->ReleaseAll(0.1).ok());
  }
  ASSERT_TRUE((*client)->Flush().ok());
  auto stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->num_shards, 3u);
  EXPECT_EQ(stats->num_users, kUsers);
  EXPECT_EQ(stats->join_requests, kUsers);
  EXPECT_EQ(stats->release_requests, 2u);
  ASSERT_EQ(stats->shards.size(), 3u);
  std::uint64_t users = 0;
  for (const WireShardStats& shard : stats->shards) {
    users += shard.users;
    EXPECT_EQ(shard.horizon, stats->horizon);
    EXPECT_EQ(shard.wal_records, 0u);  // ephemeral service: no WAL
    EXPECT_EQ(shard.queue_depth, 0u);  // drained by the stats read
  }
  EXPECT_EQ(users, kUsers);
  EXPECT_TRUE((*client)->Shutdown().ok());
  ts->Finish();
}

TEST(NetServerTest, DurableServiceOverNetworkRecovers) {
  const std::string dir = "/tmp/tcdp_net_server_test_logs";
  std::filesystem::remove_all(dir);
  std::vector<server::UserReport> before;
  {
    auto ts = TestServer::Start(2, 4, dir);
    ASSERT_NE(ts, nullptr);
    auto client = Connect(*ts, /*pipeline=*/4);
    ASSERT_TRUE(client.ok());
    for (std::size_t u = 0; u < kUsers; ++u) {
      ASSERT_TRUE((*client)->Join(UserName(u), Profile(u)).ok());
    }
    for (int round = 0; round < 3; ++round) {
      for (std::size_t u = 0; u < kUsers; u += 2) {
        ASSERT_TRUE((*client)->Release(UserName(u), 0.1).ok());
      }
      ASSERT_TRUE((*client)->Flush().ok());
    }
    ASSERT_TRUE((*client)->Snapshot().ok());
    for (std::size_t u = 1; u < kUsers; u += 2) {
      ASSERT_TRUE((*client)->Release(UserName(u), 0.2).ok());
    }
    ASSERT_TRUE((*client)->Flush().ok());
    before = QueryAll(client->get());
    EXPECT_TRUE((*client)->Shutdown().ok());
    ts->Finish();
    EXPECT_TRUE(ts->service->Close().ok());
  }
  auto recovered = server::ShardedReleaseService::Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  std::vector<server::UserReport> after;
  for (std::size_t u = 0; u < kUsers; ++u) {
    auto report = (*recovered)->Query(UserName(u));
    ASSERT_TRUE(report.ok());
    after.push_back(std::move(report).value());
  }
  ExpectSameReports(after, before, "recovered");
  EXPECT_TRUE((*recovered)->Close().ok());
  std::filesystem::remove_all(dir);
}

TEST(NetServerTest, CompactOverNetworkShrinksLogsAndRecovers) {
  const std::string dir = "/tmp/tcdp_net_compact_test_logs";
  std::filesystem::remove_all(dir);
  std::vector<server::UserReport> before;
  {
    auto ts = TestServer::Start(2, 4, dir);
    ASSERT_NE(ts, nullptr);
    auto client = Connect(*ts, /*pipeline=*/4);
    ASSERT_TRUE(client.ok());
    for (std::size_t u = 0; u < kUsers; ++u) {
      ASSERT_TRUE((*client)->Join(UserName(u), Profile(u)).ok());
    }
    for (int round = 0; round < 3; ++round) {
      ASSERT_TRUE((*client)->ReleaseAll(0.1).ok());
      ASSERT_TRUE((*client)->Flush().ok());
    }
    ASSERT_TRUE((*client)->Snapshot().ok());
    // Suffix past the anchor, then the admin request under test.
    ASSERT_TRUE((*client)->ReleaseAll(0.2).ok());
    ASSERT_TRUE((*client)->Flush().ok());
    auto dense = (*client)->Stats();
    ASSERT_TRUE(dense.ok());
    ASSERT_TRUE((*client)->Compact().ok());
    auto compacted = (*client)->Stats();
    ASSERT_TRUE(compacted.ok());
    for (std::size_t s = 0; s < compacted->shards.size(); ++s) {
      EXPECT_LT(compacted->shards[s].wal_bytes, dense->shards[s].wal_bytes)
          << "shard " << s << " did not shrink over the wire";
    }
    // The connection survives the admin request and keeps serving.
    ASSERT_TRUE((*client)->ReleaseAll(0.05).ok());
    ASSERT_TRUE((*client)->Flush().ok());
    before = QueryAll(client->get());
    EXPECT_TRUE((*client)->Shutdown().ok());
    ts->Finish();
    EXPECT_TRUE(ts->service->Close().ok());
  }
  auto recovered = server::ShardedReleaseService::Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  std::vector<server::UserReport> after;
  for (std::size_t u = 0; u < kUsers; ++u) {
    auto report = (*recovered)->Query(UserName(u));
    ASSERT_TRUE(report.ok());
    after.push_back(std::move(report).value());
  }
  ExpectSameReports(after, before, "compacted-recovered");
  EXPECT_TRUE((*recovered)->Close().ok());
  std::filesystem::remove_all(dir);
}

TEST(NetServerTest, CompactOnEphemeralServiceIsAnApplicationError) {
  auto ts = TestServer::Start(1, 4);
  ASSERT_NE(ts, nullptr);
  auto client = Connect(*ts);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Join(UserName(0), Profile(0)).ok());
  const Status compacted = (*client)->Compact();
  EXPECT_FALSE(compacted.ok());
  EXPECT_EQ(compacted.code(), StatusCode::kFailedPrecondition)
      << compacted;
  // Tier-3 error: the error latches in THIS client (its view of
  // applied state is pipelined), but the connection itself stays open
  // and a fresh client keeps working against untouched state.
  auto fresh = Connect(*ts);
  ASSERT_TRUE(fresh.ok());
  auto report = (*fresh)->Query(UserName(0));
  EXPECT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE((*fresh)->Shutdown().ok());
  ts->Finish();
}

TEST(NetServerTest, ScriptedLinkFaultsOnTheClientPathAreContained) {
  // Deterministic link faults (tests/fault_injection.h) between a
  // client and the server: a corrupted mutation must NOT apply (the
  // frame CRC catches it and the connection drops), a mid-response
  // reset must not wedge the server, and a 1-byte-chunked link must
  // behave exactly like a clean one.
  auto ts = TestServer::Start(2, 4);
  ASSERT_NE(ts, nullptr);

  auto good = Connect(*ts);
  ASSERT_TRUE(good.ok());
  for (std::size_t u = 0; u < 4; ++u) {
    ASSERT_TRUE((*good)->Join(UserName(u), Profile(u)).ok());
  }
  for (std::size_t u = 0; u < 4; ++u) {
    ASSERT_TRUE((*good)->Release(UserName(u), 0.1).ok());
  }
  ASSERT_TRUE((*good)->Flush().ok());
  auto before = (*good)->Query(UserName(0));
  ASSERT_TRUE(before.ok());

  // Connection 1: flip a byte inside the first request frame's payload
  // (preamble is 12 bytes, the frame header 9: offset 23 is payload
  // byte 2 of the client's first frame). Connection 2: hard-reset the
  // server->client direction mid-preamble/response. Connection 3+:
  // clean but delivered one byte at a time, both directions.
  std::vector<tcdp::testing::ConnPlan> plans(3);
  plans[0].client_to_server.corrupt_at = 23;
  plans[1].server_to_client.reset_after = 16;
  plans[2].client_to_server.chunk = 1;
  plans[2].server_to_client.chunk = 1;
  auto proxy = tcdp::testing::FaultyProxy::Start(ts->port(), plans);
  ASSERT_NE(proxy, nullptr);

  {
    // The corrupted Release must surface as an error and must not
    // change accounting state (asserted below against `before`).
    auto client = NetClient::Connect("127.0.0.1", proxy->port(), {});
    ASSERT_TRUE(client.ok()) << client.status();
    const Status released = (*client)->Release(UserName(0), 0.9);
    EXPECT_FALSE(released.ok())
        << "a CRC-corrupted mutation must not be acked";
  }
  {
    // The reset lands mid server->client stream; the client errors,
    // the server just drops the connection.
    auto client = NetClient::Connect("127.0.0.1", proxy->port(), {});
    if (client.ok()) {
      auto report = (*client)->Query(UserName(0));
      EXPECT_FALSE(report.ok()) << "response was reset mid-flight";
    }
  }
  {
    // The chunked link is slow but correct: reports are identical to
    // the direct connection's.
    auto client = NetClient::Connect("127.0.0.1", proxy->port(), {});
    ASSERT_TRUE(client.ok()) << client.status();
    for (std::size_t u = 0; u < 4; ++u) {
      auto chunked = (*client)->Query(UserName(u));
      ASSERT_TRUE(chunked.ok()) << chunked.status();
      auto direct = (*good)->Query(UserName(u));
      ASSERT_TRUE(direct.ok()) << direct.status();
      EXPECT_EQ(chunked->horizon, direct->horizon) << UserName(u);
      EXPECT_EQ(chunked->epsilons, direct->epsilons) << UserName(u);
      EXPECT_EQ(chunked->tpl_series, direct->tpl_series) << UserName(u);
    }
  }
  const tcdp::testing::FaultyProxyStats proxy_stats = proxy->stats();
  EXPECT_EQ(proxy_stats.corruptions, 1u);
  EXPECT_EQ(proxy_stats.resets, 1u);
  EXPECT_GE(proxy_stats.connections, 3u);
  proxy->Stop();

  // The faulted connections left no trace: user-0 is bitwise where the
  // clean workload put it (the corrupted 0.9 release never applied).
  auto after = (*good)->Query(UserName(0));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->horizon, before->horizon);
  EXPECT_EQ(after->epsilons, before->epsilons);
  EXPECT_EQ(after->tpl_series, before->tpl_series);
  EXPECT_GE(ts->server->stats().connections_dropped, 1u);
  EXPECT_TRUE((*good)->Shutdown().ok());
  ts->Finish();
}

}  // namespace
}  // namespace net
}  // namespace tcdp
