// Unit tests for markov/hmm: forward-backward, Viterbi, and Baum-Welch
// (the adversary's unsupervised correlation-learning route).

#include "markov/hmm.h"

#include <cmath>

#include <gtest/gtest.h>

namespace tcdp {
namespace {

HiddenMarkovModel SimpleHmm() {
  // Two hidden states with near-deterministic emissions.
  auto m = HiddenMarkovModel::Create(
      {0.6, 0.4}, StochasticMatrix::FromRows({{0.7, 0.3}, {0.4, 0.6}}),
      Matrix({{0.9, 0.1}, {0.2, 0.8}}));
  EXPECT_TRUE(m.ok());
  return std::move(m).value();
}

TEST(Hmm, CreateValidatesShapes) {
  EXPECT_FALSE(HiddenMarkovModel::Create(
                   {1.0}, StochasticMatrix::Uniform(2), Matrix(2, 2, 0.5))
                   .ok());
  EXPECT_FALSE(HiddenMarkovModel::Create({0.5, 0.5},
                                         StochasticMatrix::Uniform(2),
                                         Matrix(3, 2, 0.5))
                   .ok());
  EXPECT_FALSE(HiddenMarkovModel::Create({0.5, 0.5},
                                         StochasticMatrix::Uniform(2),
                                         Matrix({{0.9, 0.9}, {0.5, 0.5}}))
                   .ok());
}

TEST(Hmm, LogLikelihoodMatchesBruteForceEnumeration) {
  auto hmm = SimpleHmm();
  const ObservationSequence obs = {0, 1, 0};
  // Brute force: sum over all 2^3 hidden paths.
  double total = 0.0;
  for (int h0 = 0; h0 < 2; ++h0) {
    for (int h1 = 0; h1 < 2; ++h1) {
      for (int h2 = 0; h2 < 2; ++h2) {
        double p = hmm.initial()[h0] * hmm.emission().At(h0, obs[0]);
        p *= hmm.transition().At(h0, h1) * hmm.emission().At(h1, obs[1]);
        p *= hmm.transition().At(h1, h2) * hmm.emission().At(h2, obs[2]);
        total += p;
      }
    }
  }
  auto ll = hmm.LogLikelihood(obs);
  ASSERT_TRUE(ll.ok());
  EXPECT_NEAR(*ll, std::log(total), 1e-10);
}

TEST(Hmm, LogLikelihoodRejectsBadSymbols) {
  auto hmm = SimpleHmm();
  EXPECT_FALSE(hmm.LogLikelihood({0, 5}).ok());
  EXPECT_FALSE(hmm.LogLikelihood({}).ok());
}

TEST(Hmm, ImpossibleSequenceFailsCleanly) {
  // Emission of symbol 1 from every state is 0 -> zero-probability path.
  auto hmm = HiddenMarkovModel::Create(
      {1.0, 0.0}, StochasticMatrix::Identity(2),
      Matrix({{1.0, 0.0}, {1.0, 0.0}}));
  ASSERT_TRUE(hmm.ok());
  auto ll = hmm->LogLikelihood({1});
  EXPECT_FALSE(ll.ok());
  EXPECT_EQ(ll.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Hmm, SampleShapesAndRanges) {
  Rng rng(10);
  auto hmm = SimpleHmm();
  Trajectory hidden;
  ObservationSequence observed;
  hmm.Sample(25, &rng, &hidden, &observed);
  ASSERT_EQ(hidden.size(), 25u);
  ASSERT_EQ(observed.size(), 25u);
  for (auto h : hidden) EXPECT_LT(h, 2u);
  for (auto o : observed) EXPECT_LT(o, 2u);
}

TEST(Hmm, ViterbiRecoversObviousPath) {
  // Nearly deterministic emissions: the decoded path should match the
  // symbols' "home" states.
  auto hmm = SimpleHmm();
  auto path = hmm.Viterbi({0, 0, 1, 1, 0});
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, (Trajectory{0, 0, 1, 1, 0}));
}

TEST(Hmm, ViterbiPathLikelihoodIsAchievable) {
  auto hmm = SimpleHmm();
  const ObservationSequence obs = {0, 1, 1, 0};
  auto path = hmm.Viterbi(obs);
  ASSERT_TRUE(path.ok());
  auto ll = hmm.LogLikelihood(obs);
  ASSERT_TRUE(ll.ok());
  // Single-path probability <= total probability.
  double logp = std::log(hmm.initial()[(*path)[0]]) +
                std::log(hmm.emission().At((*path)[0], obs[0]));
  for (std::size_t t = 1; t < obs.size(); ++t) {
    logp += std::log(hmm.transition().At((*path)[t - 1], (*path)[t]));
    logp += std::log(hmm.emission().At((*path)[t], obs[t]));
  }
  EXPECT_LE(logp, *ll + 1e-12);
}

TEST(Hmm, BaumWelchRejectsEmptyInput) {
  EXPECT_FALSE(SimpleHmm().BaumWelch({}).ok());
}

TEST(Hmm, BaumWelchLikelihoodNonDecreasing) {
  Rng rng(11);
  auto truth = SimpleHmm();
  std::vector<ObservationSequence> data;
  for (int i = 0; i < 20; ++i) {
    Trajectory h;
    ObservationSequence o;
    truth.Sample(60, &rng, &h, &o);
    data.push_back(std::move(o));
  }
  auto start = HiddenMarkovModel::Random(2, 2, &rng);
  auto fit = start.BaumWelch(data, 30);
  ASSERT_TRUE(fit.ok());
  for (std::size_t i = 1; i < fit->log_likelihoods.size(); ++i) {
    EXPECT_GE(fit->log_likelihoods[i], fit->log_likelihoods[i - 1] - 1e-6)
        << "EM iteration " << i;
  }
}

TEST(Hmm, BaumWelchImprovesOverRandomInit) {
  Rng rng(12);
  auto truth = SimpleHmm();
  std::vector<ObservationSequence> data;
  for (int i = 0; i < 30; ++i) {
    Trajectory h;
    ObservationSequence o;
    truth.Sample(80, &rng, &h, &o);
    data.push_back(std::move(o));
  }
  auto start = HiddenMarkovModel::Random(2, 2, &rng);
  double start_ll = 0.0;
  for (const auto& o : data) start_ll += *start.LogLikelihood(o);
  auto fit = start.BaumWelch(data, 50);
  ASSERT_TRUE(fit.ok());
  double end_ll = 0.0;
  for (const auto& o : data) end_ll += *fit->model.LogLikelihood(o);
  EXPECT_GT(end_ll, start_ll);
}

}  // namespace
}  // namespace tcdp
