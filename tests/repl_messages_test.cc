// Codec tests for the replication message family (ISSUE 10):
// round-trips, cursor chain-CRC algebra against the on-disk WAL
// framing, and totality — every truncated prefix and every single-byte
// corruption of a valid payload must come back as Status, never crash
// or decode to a silently-wrong value that passes validation.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "replication/repl_messages.h"
#include "server/event_log.h"

namespace tcdp {
namespace replication {
namespace {

server::EventRecord Record(server::EventType type,
                           const std::string& payload) {
  server::EventRecord record;
  record.type = type;
  record.payload = payload;
  return record;
}

TEST(ReplMessagesTest, SubscribeRoundTripsBootstrapAndResume) {
  SubscribeRequest bootstrap;
  auto decoded = DecodeSubscribe(EncodeSubscribe(bootstrap));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->format_version, 1u);
  EXPECT_TRUE(decoded->cursors.empty());

  SubscribeRequest resume;
  resume.cursors = {{0, kChainSeed}, {12345678901234ull, 0xdeadbeef},
                    {7, 0}};
  decoded = DecodeSubscribe(EncodeSubscribe(resume));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->cursors.size(), 3u);
  EXPECT_EQ(decoded->cursors[1].next_record, 12345678901234ull);
  EXPECT_EQ(decoded->cursors[1].chain_crc, 0xdeadbeefu);
  EXPECT_EQ(decoded->cursors[2].next_record, 7u);
}

TEST(ReplMessagesTest, SubscribeRejectsUnknownFormatVersion) {
  std::string payload;
  PutVarint64(&payload, 99);  // format_version
  PutVarint64(&payload, 0);   // cursors
  auto decoded = DecodeSubscribe(payload);
  EXPECT_FALSE(decoded.ok());
}

TEST(ReplMessagesTest, SubscribeOkRoundTripsAndValidates) {
  SubscribeOk ok;
  ok.num_shards = 4;
  ok.manifest_text = "tcdp-shard-manifest-v1\nshards 4\nhorizon 0\n";
  auto decoded = DecodeSubscribeOk(EncodeSubscribeOk(ok));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->num_shards, 4u);
  EXPECT_EQ(decoded->manifest_text, ok.manifest_text);

  SubscribeOk zero;
  zero.manifest_text = "x";
  EXPECT_FALSE(DecodeSubscribeOk(EncodeSubscribeOk(zero)).ok())
      << "zero shards must not decode";
  SubscribeOk empty;
  empty.num_shards = 1;
  EXPECT_FALSE(DecodeSubscribeOk(EncodeSubscribeOk(empty)).ok())
      << "an empty manifest must not decode";
}

TEST(ReplMessagesTest, LogBatchRoundTripsRecordsVerbatim) {
  LogBatch batch;
  batch.shard = 2;
  batch.first_record = 41;
  batch.prev_chain_crc = 0x1234abcd;
  batch.records.push_back(
      Record(server::EventType::kAddUser, std::string("alice\0bob", 9)));
  batch.records.push_back(Record(server::EventType::kRelease, ""));
  batch.records.push_back(
      Record(server::EventType::kRelease, std::string(1000, '\xff')));
  auto decoded = DecodeLogBatch(EncodeLogBatch(batch));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->shard, 2u);
  EXPECT_EQ(decoded->first_record, 41u);
  EXPECT_EQ(decoded->prev_chain_crc, 0x1234abcdu);
  ASSERT_EQ(decoded->records.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded->records[i].type, batch.records[i].type) << i;
    EXPECT_EQ(decoded->records[i].payload, batch.records[i].payload) << i;
  }
}

TEST(ReplMessagesTest, EmptyLogBatchDoesNotDecode) {
  LogBatch batch;
  batch.shard = 0;
  EXPECT_FALSE(DecodeLogBatch(EncodeLogBatch(batch)).ok());
}

TEST(ReplMessagesTest, AckHorizonRoundTrips) {
  AckHorizon ack;
  ack.durable_records = {3, 0, 999999999999ull};
  ack.release_horizon = 17;
  auto decoded = DecodeAckHorizon(EncodeAckHorizon(ack));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->durable_records, ack.durable_records);
  EXPECT_EQ(decoded->release_horizon, 17u);
}

// ------------------------------------------------------ chain CRC algebra

TEST(ReplMessagesTest, FrameCrcMatchesTheOnDiskWalFraming) {
  // RecordFrameCrc must reproduce the exact CRC EventLogWriter frames
  // with — write a real log and check against the stored headers.
  const std::string path = "/tmp/tcdp_repl_messages_test.wal";
  std::filesystem::remove(path);
  auto writer = server::EventLogWriter::Create(path);
  ASSERT_TRUE(writer.ok()) << writer.status();
  const std::vector<server::EventRecord> records = {
      Record(server::EventType::kManifest, "shard 0"),
      Record(server::EventType::kAddUser, "alice"),
      Record(server::EventType::kRelease, std::string("\x00\x01", 2)),
  };
  for (const server::EventRecord& record : records) {
    ASSERT_TRUE(writer->Append(record.type, record.payload).ok());
  }
  ASSERT_TRUE(writer->Close().ok());

  // Pull the stored frame CRCs straight out of the file bytes:
  // magic(8) then per record [u8 type][u32 len][u32 crc][payload].
  std::string bytes;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buffer[4096];
    std::size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
      bytes.append(buffer, n);
    }
    std::fclose(f);
  }
  std::size_t offset = 8;
  std::uint32_t chain = kChainSeed;
  for (const server::EventRecord& record : records) {
    std::uint32_t length = 0;
    std::uint32_t stored_crc = 0;
    std::memcpy(&length, bytes.data() + offset + 1, 4);
    std::memcpy(&stored_crc, bytes.data() + offset + 5, 4);
    EXPECT_EQ(RecordFrameCrc(record), stored_crc);
    chain = AdvanceChainCrc(chain, stored_crc);
    offset += 9 + length;
  }
  EXPECT_EQ(offset, bytes.size()) << "walked exactly the whole file";

  // The chain is order-sensitive: swapping two records changes it.
  std::uint32_t swapped = kChainSeed;
  swapped = AdvanceChainCrc(swapped, RecordFrameCrc(records[1]));
  swapped = AdvanceChainCrc(swapped, RecordFrameCrc(records[0]));
  swapped = AdvanceChainCrc(swapped, RecordFrameCrc(records[2]));
  EXPECT_NE(swapped, chain);
  std::filesystem::remove(path);
}

TEST(ReplMessagesTest, ChainCrcDistinguishesContentNotJustLength) {
  // Same record count, one payload byte different => different chain.
  std::uint32_t a = AdvanceChainCrc(
      kChainSeed, RecordFrameCrc(Record(server::EventType::kRelease, "x")));
  std::uint32_t b = AdvanceChainCrc(
      kChainSeed, RecordFrameCrc(Record(server::EventType::kRelease, "y")));
  EXPECT_NE(a, b);
  // Same payload, different type byte => different chain too.
  std::uint32_t c = AdvanceChainCrc(
      kChainSeed, RecordFrameCrc(Record(server::EventType::kAddUser, "x")));
  EXPECT_NE(a, c);
}

// ----------------------------------------------------------- totality sweep

/// Every strict prefix of a valid encoding must fail to decode (the
/// messages carry no optional tail), and no truncation may crash.
template <typename Decoder>
void ExpectTruncationsFail(const std::string& payload, Decoder decode,
                           const std::string& what) {
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    auto decoded = decode(payload.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << what << " decoded at cut " << cut;
  }
}

TEST(ReplMessagesTest, TruncatedPayloadsNeverDecode) {
  SubscribeRequest subscribe;
  subscribe.cursors = {{5, 0xabcd0123}, {9, 0x00ff00ff}};
  ExpectTruncationsFail(EncodeSubscribe(subscribe), DecodeSubscribe,
                        "subscribe");

  SubscribeOk ok;
  ok.num_shards = 2;
  ok.manifest_text = "tcdp-shard-manifest-v1\nshards 2\n";
  ExpectTruncationsFail(EncodeSubscribeOk(ok), DecodeSubscribeOk,
                        "subscribe-ok");

  LogBatch batch;
  batch.shard = 1;
  batch.first_record = 3;
  batch.prev_chain_crc = 0x55555555;
  batch.records.push_back(Record(server::EventType::kAddUser, "carol"));
  batch.records.push_back(Record(server::EventType::kRelease, "eps"));
  ExpectTruncationsFail(EncodeLogBatch(batch), DecodeLogBatch,
                        "log-batch");

  AckHorizon ack;
  ack.durable_records = {1, 2, 3};
  ack.release_horizon = 1;
  ExpectTruncationsFail(EncodeAckHorizon(ack), DecodeAckHorizon, "ack");
}

TEST(ReplMessagesTest, HostileCountsDoNotOverReserve) {
  // A payload claiming 2^40 cursors but carrying none must be rejected
  // by the count-vs-bytes guard, not die in a reserve.
  std::string hostile;
  PutVarint64(&hostile, 1);                    // format_version
  PutVarint64(&hostile, 1ull << 40);           // cursor count
  EXPECT_FALSE(DecodeSubscribe(hostile).ok());

  std::string batch;
  PutVarint64(&batch, 0);                      // shard
  PutVarint64(&batch, 0);                      // first_record
  PutFixed32(&batch, 0);                       // prev chain
  PutVarint64(&batch, 1ull << 50);             // record count
  EXPECT_FALSE(DecodeLogBatch(batch).ok());

  std::string ack;
  PutVarint64(&ack, 1ull << 45);               // shard count
  EXPECT_FALSE(DecodeAckHorizon(ack).ok());
}

}  // namespace
}  // namespace replication
}  // namespace tcdp
