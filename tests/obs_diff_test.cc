// Snapshot differencing (ISSUE 9): counter clamping, gauge
// passthrough, bucket-wise histogram subtraction driven by real
// Histogram observations, and the config-mismatch fresh-histogram
// fallback `tcdp top` / `stats --watch` rely on.

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "obs/diff.h"
#include "obs/metrics.h"

namespace tcdp {
namespace obs {
namespace {

MetricsSnapshot WithCounter(const std::string& name, std::uint64_t value) {
  MetricsSnapshot snapshot;
  snapshot.counters.emplace_back(name, value);
  return snapshot;
}

TEST(Diff, CounterDeltasAndRestartClamp) {
  MetricsSnapshot prev;
  prev.counters.emplace_back("a_total", 100);
  prev.counters.emplace_back("b_total", 50);
  MetricsSnapshot cur;
  cur.counters.emplace_back("a_total", 130);
  cur.counters.emplace_back("b_total", 7);   // went backwards: restart
  cur.counters.emplace_back("c_total", 12);  // new counter

  const MetricsDelta delta = DiffMetricsSnapshots(prev, cur, 2.0);
  EXPECT_EQ(delta.interval_seconds, 2.0);
  EXPECT_EQ(delta.CounterValue("a_total"), 30u);
  // A counter below its previous value reports the full new value —
  // the process restarted, so everything it counted is new.
  EXPECT_EQ(delta.CounterValue("b_total"), 7u);
  EXPECT_EQ(delta.CounterValue("c_total"), 12u);
  EXPECT_EQ(delta.CounterValue("missing_total"), 0u);
}

TEST(Diff, CounterSumAggregatesLabels) {
  MetricsSnapshot prev;
  prev.counters.emplace_back("req_total{type=\"a\"}", 10);
  prev.counters.emplace_back("req_total{type=\"b\"}", 20);
  MetricsSnapshot cur;
  cur.counters.emplace_back("req_total{type=\"a\"}", 15);
  cur.counters.emplace_back("req_total{type=\"b\"}", 26);
  cur.counters.emplace_back("other_total", 99);
  const MetricsDelta delta = DiffMetricsSnapshots(prev, cur, 1.0);
  EXPECT_EQ(delta.CounterSum("req_total"), 11u);
}

TEST(Diff, GaugesPassThroughAsLevels) {
  MetricsSnapshot prev;
  prev.gauges.emplace_back("depth", 40);
  MetricsSnapshot cur;
  cur.gauges.emplace_back("depth", 3);
  const MetricsDelta delta = DiffMetricsSnapshots(prev, cur, 1.0);
  EXPECT_EQ(delta.GaugeValue("depth"), 3);
}

TEST(Diff, HistogramSubtractionIsolatesTheInterval) {
  // Drive a real histogram through two snapshot points: the delta's
  // quantiles must reflect only the second batch of observations.
  Registry registry;
  SetMetricsEnabled(true);
  Histogram* histogram = registry.GetHistogram("diff_test_seconds");
  for (int i = 0; i < 100; ++i) histogram->Observe(0.001);  // 1ms era
  const MetricsSnapshot prev = registry.Snapshot();
  for (int i = 0; i < 100; ++i) histogram->Observe(1.0);  // 1s era
  const MetricsSnapshot cur = registry.Snapshot();

  const MetricsDelta delta = DiffMetricsSnapshots(prev, cur, 1.0);
  ASSERT_EQ(delta.histograms.size(), 1u);
  const HistogramSnapshot& interval = delta.histograms[0].second;
  EXPECT_EQ(interval.count(), 100u);
  // The cumulative histogram's median sits between the eras; the
  // interval's median is squarely in the 1s era.
  EXPECT_GT(interval.Quantile(0.5), 0.5);
  // Cumulative distribution for contrast: median far below 1s.
  for (const auto& [name, cumulative] : cur.histograms) {
    EXPECT_EQ(cumulative.count(), 200u);
  }
}

TEST(Diff, HistogramConfigMismatchFallsBackToFresh) {
  HistogramOptions coarse;
  coarse.relative_error = 0.5;
  Registry prev_registry;
  Registry cur_registry;
  SetMetricsEnabled(true);
  prev_registry.GetHistogram("h_seconds", coarse)->Observe(0.5);
  cur_registry.GetHistogram("h_seconds")->Observe(0.25);
  cur_registry.GetHistogram("h_seconds")->Observe(0.75);

  const MetricsSnapshot prev = prev_registry.Snapshot();
  const MetricsSnapshot cur = cur_registry.Snapshot();
  HistogramSnapshot out;
  EXPECT_FALSE(
      SubtractHistogramSnapshots(prev.histograms[0].second,
                                 cur.histograms[0].second, &out));
  // The diff treats the reconfigured histogram as fresh: the full
  // current snapshot passes through.
  const MetricsDelta delta = DiffMetricsSnapshots(prev, cur, 1.0);
  ASSERT_EQ(delta.histograms.size(), 1u);
  EXPECT_EQ(delta.histograms[0].second.count(), 2u);
}

TEST(Diff, SubtractClampsRegressingBuckets) {
  Registry registry;
  SetMetricsEnabled(true);
  Histogram* histogram = registry.GetHistogram("clamp_seconds");
  histogram->Observe(0.002);
  const MetricsSnapshot after = registry.Snapshot();
  // prev deliberately "ahead" of cur (scrape pair from a restarted
  // process): clamped to empty rather than underflowing.
  HistogramSnapshot out;
  ASSERT_TRUE(SubtractHistogramSnapshots(after.histograms[0].second,
                                         after.histograms[0].second, &out));
  EXPECT_EQ(out.count(), 0u);
  EXPECT_EQ(out.sum, 0.0);
}

TEST(Diff, NewHistogramInCurIsFresh) {
  const MetricsSnapshot prev = WithCounter("x_total", 1);
  Registry registry;
  SetMetricsEnabled(true);
  registry.GetHistogram("fresh_seconds")->Observe(0.1);
  MetricsSnapshot cur = registry.Snapshot();
  cur.counters.emplace_back("x_total", 2);
  const MetricsDelta delta = DiffMetricsSnapshots(prev, cur, 1.0);
  ASSERT_EQ(delta.histograms.size(), 1u);
  EXPECT_EQ(delta.histograms[0].second.count(), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace tcdp
