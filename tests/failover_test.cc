// Failover property test (ISSUE 10): kill the primary after EVERY
// committed WAL record and promote the most-acked follower.
//
// The property: at every kill point, the promoted follower's state is
// exactly what the primary's own crash recovery would produce at that
// point — because the replica's WALs are a bitwise PREFIX of the
// uninterrupted primary's WALs, and promotion IS crash recovery
// (ShardedReleaseService::Recover), there is no separate failover code
// path to diverge.
//
// Shape:
//   Phase 1 (truth): run a scripted workload to completion on a normal
//     durable service, capture every per-user report and the raw WAL
//     bytes of the finished run.
//   Phase 2 (sweep): rebuild the primary's directory RECORD BY RECORD
//     with EventLogWriter (byte-identical framing) under a live
//     LogStreamServer — the tailer needs files, not a live service, so
//     "the primary died right after record k" is literally the state
//     on disk. Two followers stream it; after each record we wait for
//     the ack and snapshot-copy the most-acked follower's directory.
//     Follower 2 is stopped halfway so the most-acked selection is
//     exercised for real, not just on ties.
//   Phase 3 (check): every snapshot's WALs must be a bitwise prefix of
//     the truth run's, and Recover (= promotion) must succeed on it.
//     The final snapshot must reproduce every truth report bit for
//     bit, and a live Follower::Promote() at the end must as well.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "replication/follower.h"
#include "replication/log_stream.h"
#include "server/event_log.h"
#include "server/sharded_service.h"
#include "workload/generators.h"

namespace tcdp {
namespace replication {
namespace {

constexpr std::size_t kShards = 2;
constexpr std::size_t kUsers = 5;

std::string UserName(std::size_t u) { return "user-" + std::to_string(u); }

TemporalCorrelations Profile(std::size_t u) {
  auto matrix = ClickstreamModel(3 + u % 3, 0.2 + 0.05 * (u % 4));
  EXPECT_TRUE(matrix.ok());
  return TemporalCorrelations::Both(*matrix, *matrix).value();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

std::string ShardWal(const std::string& dir, std::size_t shard) {
  return dir + "/shard-" + std::to_string(shard) + ".wal";
}

/// Exact-equality check of a promoted service against the truth run's
/// reports: same series, same budgets, bit for bit.
void ExpectReportsEqual(server::ShardedReleaseService* service,
                        const std::vector<server::UserReport>& truth,
                        const std::string& label) {
  for (const server::UserReport& expected : truth) {
    auto report = service->Query(expected.name);
    ASSERT_TRUE(report.ok()) << label << " " << expected.name << ": "
                             << report.status();
    EXPECT_EQ(report->shard, expected.shard) << label;
    EXPECT_EQ(report->join_release, expected.join_release) << label;
    EXPECT_EQ(report->horizon, expected.horizon) << label;
    EXPECT_EQ(report->max_tpl, expected.max_tpl) << label;
    EXPECT_EQ(report->user_level_tpl, expected.user_level_tpl) << label;
    EXPECT_EQ(report->epsilons, expected.epsilons) << label;
    EXPECT_EQ(report->tpl_series, expected.tpl_series) << label;
  }
}

/// Blocks until the follower's per-shard durable (acked) cursors equal
/// \p want, or fails the test after ~5s.
void AwaitDurable(Follower* follower,
                  const std::vector<std::uint64_t>& want,
                  std::size_t kill_point) {
  for (int i = 0; i < 500; ++i) {
    const FollowerStatus fs = follower->status();
    ASSERT_FALSE(fs.diverged) << "diverged at kill point " << kill_point
                              << ": " << fs.last_error;
    if (fs.durable_records == want) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  FAIL() << "follower never acked kill point " << kill_point;
}

std::uint64_t DurableSum(const FollowerStatus& fs) {
  std::uint64_t sum = 0;
  for (std::uint64_t records : fs.durable_records) sum += records;
  return sum;
}

TEST(FailoverTest, PromoteMostAckedFollowerAtEveryRecord) {
  const std::string truth_dir = "/tmp/tcdp_failover_truth";
  const std::string primary_dir = "/tmp/tcdp_failover_primary";
  const std::string replica1_dir = "/tmp/tcdp_failover_replica1";
  const std::string replica2_dir = "/tmp/tcdp_failover_replica2";
  const std::string kill_root = "/tmp/tcdp_failover_kills";
  for (const std::string& dir :
       {truth_dir, primary_dir, replica1_dir, replica2_dir, kill_root}) {
    std::filesystem::remove_all(dir);
  }
  std::filesystem::create_directories(primary_dir);
  std::filesystem::create_directories(kill_root);

  // ---- Phase 1: the uninterrupted truth run.
  std::vector<server::UserReport> truth_reports;
  std::size_t truth_horizon = 0;
  {
    server::ShardedServiceOptions options;
    options.num_shards = kShards;
    options.batch_window = 4;
    auto service = server::ShardedReleaseService::Create(truth_dir, options);
    ASSERT_TRUE(service.ok()) << service.status();
    for (std::size_t u = 0; u < kUsers; ++u) {
      ASSERT_TRUE((*service)->Join(UserName(u), Profile(u)).ok());
    }
    ASSERT_TRUE((*service)->Flush().ok());
    for (int round = 0; round < 2; ++round) {
      for (std::size_t u = 0; u < kUsers; ++u) {
        ASSERT_TRUE(
            (*service)->Release(UserName(u), 0.1 + 0.05 * round).ok());
      }
      ASSERT_TRUE((*service)->Flush().ok());
    }
    truth_horizon = (*service)->horizon();
    for (std::size_t u = 0; u < kUsers; ++u) {
      auto report = (*service)->Query(UserName(u));
      ASSERT_TRUE(report.ok()) << report.status();
      truth_reports.push_back(*report);
    }
    ASSERT_TRUE((*service)->Close().ok());
  }
  ASSERT_GE(truth_horizon, 4u);

  // The finished run's bytes and records, shard by shard.
  const std::string truth_manifest = ReadFileBytes(truth_dir + "/MANIFEST");
  std::vector<std::string> truth_bytes(kShards);
  std::vector<std::vector<server::EventRecord>> truth_records(kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    truth_bytes[s] = ReadFileBytes(ShardWal(truth_dir, s));
    auto read = server::ReadEventLog(ShardWal(truth_dir, s));
    ASSERT_TRUE(read.ok()) << read.status();
    ASSERT_TRUE(read->clean);
    truth_records[s] = std::move(read->records);
    ASSERT_GE(truth_records[s].size(), 2u);
  }

  // ---- Phase 2: regrow the primary record by record under a live
  // stream server, with two subscribed followers.
  {
    std::ofstream manifest(primary_dir + "/MANIFEST", std::ios::binary);
    manifest << truth_manifest;
  }
  std::vector<server::EventLogWriter> writers;
  for (std::size_t s = 0; s < kShards; ++s) {
    auto writer = server::EventLogWriter::Create(ShardWal(primary_dir, s));
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE(writer->Flush().ok());  // magic on disk before Listen
    writers.push_back(std::move(writer).value());
  }

  LogStreamOptions stream_options;
  stream_options.log_dir = primary_dir;
  auto stream = LogStreamServer::Listen(stream_options);
  ASSERT_TRUE(stream.ok()) << stream.status();
  Status serve_status;
  std::thread serve_thread([&stream, &serve_status] {
    serve_status = (*stream)->Serve();
  });

  auto open_follower = [&](const std::string& dir) {
    FollowerOptions options;
    options.primary_port = (*stream)->port();
    options.log_dir = dir;
    auto follower = Follower::Open(options);
    EXPECT_TRUE(follower.ok()) << follower.status();
    EXPECT_TRUE((*follower)->Start().ok());
    return std::move(follower).value();
  };
  auto follower1 = open_follower(replica1_dir);
  auto follower2 = open_follower(replica2_dir);

  std::size_t total_records = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    total_records += truth_records[s].size();
  }
  ASSERT_GE(total_records, 10u);

  // Interleave shards round-robin so kill points alternate which shard
  // is ahead — recovery must align them to a common horizon every time.
  std::vector<std::uint64_t> appended(kShards, 0);
  std::vector<std::string> kill_dirs;
  bool follower2_alive = true;
  std::size_t appended_total = 0;
  while (appended_total < total_records) {
    for (std::size_t s = 0; s < kShards; ++s) {
      if (appended[s] >= truth_records[s].size()) continue;
      const server::EventRecord& record = truth_records[s][appended[s]];
      ASSERT_TRUE(writers[s].Append(record.type, record.payload).ok());
      ASSERT_TRUE(writers[s].Sync().ok());
      ++appended[s];
      ++appended_total;
      const std::size_t kill_point = kill_dirs.size();

      AwaitDurable(follower1.get(), appended, kill_point);
      if (follower2_alive) {
        AwaitDurable(follower2.get(), appended, kill_point);
        if (appended_total * 2 >= total_records) {
          // Lose follower 2 halfway: from here on the most-acked
          // selection below must pick follower 1 on merit, not a tie.
          follower2->Stop();
          follower2_alive = false;
        }
      }

      // "The primary just died": promote whichever follower acked the
      // most records (ties break to follower 1).
      const FollowerStatus f1 = follower1->status();
      const FollowerStatus f2 = follower2->status();
      const std::string& most_acked_dir =
          DurableSum(f2) > DurableSum(f1) ? replica2_dir : replica1_dir;
      if (!follower2_alive) {
        ASSERT_GE(DurableSum(f1), DurableSum(f2));
      }
      const std::string kill_dir =
          kill_root + "/kill-" + std::to_string(kill_point);
      std::filesystem::copy(most_acked_dir, kill_dir,
                            std::filesystem::copy_options::recursive);
      kill_dirs.push_back(kill_dir);
    }
  }
  ASSERT_EQ(kill_dirs.size(), total_records);
  EXPECT_FALSE(follower2_alive);

  // ---- Phase 3: every kill point is a bitwise prefix of the truth
  // run, and promotion (crash recovery) succeeds on it.
  std::size_t last_horizon = 0;
  for (std::size_t k = 0; k < kill_dirs.size(); ++k) {
    EXPECT_EQ(ReadFileBytes(kill_dirs[k] + "/MANIFEST"), truth_manifest)
        << "kill " << k;
    bool bootstrapped = true;
    for (std::size_t s = 0; s < kShards; ++s) {
      const std::string bytes = ReadFileBytes(ShardWal(kill_dirs[k], s));
      ASSERT_LE(bytes.size(), truth_bytes[s].size())
          << "kill " << k << " shard " << s;
      EXPECT_EQ(truth_bytes[s].compare(0, bytes.size(), bytes), 0)
          << "kill " << k << " shard " << s
          << ": replica WAL is not a bitwise prefix of the primary's";
      // Magic only: this shard never received its manifest record.
      if (bytes.size() <= 8) bootstrapped = false;
    }
    auto promoted = server::ShardedReleaseService::Recover(kill_dirs[k]);
    if (!bootstrapped) {
      // A replica that has not streamed every shard's manifest record
      // is not a valid primary yet; promotion must refuse loudly, not
      // invent an empty service.
      EXPECT_FALSE(promoted.ok()) << "kill " << k;
      continue;
    }
    ASSERT_TRUE(promoted.ok())
        << "promotion failed at kill " << k << ": " << promoted.status();
    const std::size_t horizon = (*promoted)->horizon();
    EXPECT_GE(horizon, last_horizon) << "kill " << k;
    EXPECT_LE(horizon, truth_horizon) << "kill " << k;
    last_horizon = horizon;
    if (k + 1 == kill_dirs.size()) {
      EXPECT_EQ(horizon, truth_horizon);
      ExpectReportsEqual(promoted->get(), truth_reports, "final kill");
    }
    ASSERT_TRUE((*promoted)->Close().ok()) << "kill " << k;
  }
  EXPECT_EQ(last_horizon, truth_horizon);

  // ---- Finale: the primary dies for real; promote the live follower
  // through Follower::Promote() and get the truth state back.
  (*stream)->Stop();
  serve_thread.join();
  EXPECT_TRUE(serve_status.ok()) << serve_status;
  for (std::size_t s = 0; s < kShards; ++s) {
    ASSERT_TRUE(writers[s].Close().ok());
  }

  const FollowerStatus fs = follower1->status();
  EXPECT_FALSE(fs.diverged);
  EXPECT_EQ(fs.release_horizon, truth_horizon);
  auto promoted = follower1->Promote();
  ASSERT_TRUE(promoted.ok()) << promoted.status();
  EXPECT_EQ((*promoted)->horizon(), truth_horizon);
  ExpectReportsEqual(promoted->get(), truth_reports, "live promote");
  // The promoted service is a fully live primary: it accepts writes.
  ASSERT_TRUE((*promoted)->ReleaseAll(0.25).ok());
  ASSERT_TRUE((*promoted)->Flush().ok());
  EXPECT_EQ((*promoted)->horizon(), truth_horizon + 1);
  ASSERT_TRUE((*promoted)->Close().ok());

  for (const std::string& dir :
       {truth_dir, primary_dir, replica1_dir, replica2_dir, kill_root}) {
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace replication
}  // namespace tcdp
