// Unit tests for release/w_event: Kellaris et al.'s Budget Distribution
// and Budget Absorption mechanisms — the paper's [22] baseline.
//
// Central invariant: for EVERY window of w consecutive steps, the total
// spent budget (dissimilarity + publications) never exceeds epsilon.

#include "release/w_event.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "workload/generators.h"

namespace tcdp {
namespace {

WEventOptions Opts(std::size_t w, double eps) {
  WEventOptions o;
  o.window = w;
  o.epsilon = eps;
  return o;
}

Database Snapshot(std::vector<std::size_t> values) {
  auto db = Database::Create(std::move(values), 3);
  EXPECT_TRUE(db.ok());
  return std::move(db).value();
}

TEST(WEventOptionsValidation, RejectsBadParameters) {
  EXPECT_FALSE(ValidateWEventOptions(Opts(0, 1.0)).ok());
  EXPECT_FALSE(ValidateWEventOptions(Opts(3, 0.0)).ok());
  WEventOptions bad = Opts(3, 1.0);
  bad.dissimilarity_fraction = 1.0;
  EXPECT_FALSE(ValidateWEventOptions(bad).ok());
  EXPECT_TRUE(ValidateWEventOptions(Opts(3, 1.0)).ok());
}

TEST(BudgetDistribution, CreateValidates) {
  EXPECT_FALSE(BudgetDistributionMechanism::Create(Opts(0, 1.0),
                                                   std::make_unique<HistogramQuery>())
                   .ok());
  EXPECT_FALSE(
      BudgetDistributionMechanism::Create(Opts(3, 1.0), nullptr).ok());
}

TEST(BudgetDistribution, FirstStepAlwaysPublishes) {
  Rng rng(1);
  auto m = BudgetDistributionMechanism::Create(
      Opts(4, 1.0), std::make_unique<HistogramQuery>());
  ASSERT_TRUE(m.ok());
  auto r = (*m)->Process(Snapshot({0, 1, 2}), &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->published);
  EXPECT_GT(r->publication_epsilon, 0.0);
  EXPECT_EQ(r->time, 1u);
}

TEST(BudgetDistribution, RepublishesStableStreams) {
  // A constant stream should mostly re-publish after the first step.
  Rng rng(2);
  auto m = BudgetDistributionMechanism::Create(
      Opts(4, 2.0), std::make_unique<HistogramQuery>());
  ASSERT_TRUE(m.ok());
  auto snapshot = Snapshot(std::vector<std::size_t>(60, 1));
  std::size_t republished = 0;
  for (int t = 0; t < 30; ++t) {
    auto r = (*m)->Process(snapshot, &rng);
    ASSERT_TRUE(r.ok());
    if (!r->published) ++republished;
  }
  EXPECT_GT(republished, 20u);
}

TEST(BudgetDistribution, WindowBudgetNeverExceeded) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const double eps = 1.0;
    auto m = BudgetDistributionMechanism::Create(
        Opts(4, eps), std::make_unique<HistogramQuery>());
    ASSERT_TRUE(m.ok());
    // Volatile stream: force frequent publications.
    for (int t = 0; t < 60; ++t) {
      std::vector<std::size_t> values(40);
      for (auto& v : values) {
        v = static_cast<std::size_t>(rng.UniformInt(0, 2));
      }
      ASSERT_TRUE((*m)->Process(Snapshot(values), &rng).ok());
    }
    EXPECT_LE((*m)->MaxWindowSpend(), eps + 1e-9) << "seed=" << seed;
    EXPECT_GT((*m)->num_publications(), 1u);
  }
}

TEST(BudgetAbsorption, WindowBudgetNeverExceeded) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed + 50);
    const double eps = 1.0;
    auto m = BudgetAbsorptionMechanism::Create(
        Opts(4, eps), std::make_unique<HistogramQuery>());
    ASSERT_TRUE(m.ok());
    for (int t = 0; t < 60; ++t) {
      std::vector<std::size_t> values(40);
      for (auto& v : values) {
        v = static_cast<std::size_t>(rng.UniformInt(0, 2));
      }
      ASSERT_TRUE((*m)->Process(Snapshot(values), &rng).ok());
    }
    EXPECT_LE((*m)->MaxWindowSpend(), eps + 1e-9) << "seed=" << seed;
  }
}

TEST(BudgetAbsorption, NullificationForcesRepublication) {
  // Publish after a long skip run -> large absorbed budget -> the next
  // steps are nullified (publication_epsilon == 0) regardless of change.
  Rng rng(7);
  auto m = BudgetAbsorptionMechanism::Create(
      Opts(6, 1.0), std::make_unique<HistogramQuery>());
  ASSERT_TRUE(m.ok());
  auto stable = Snapshot(std::vector<std::size_t>(50, 0));
  // First publication at t=1.
  ASSERT_TRUE((*m)->Process(stable, &rng).ok());
  // Let several stable steps accumulate absorbable budget.
  for (int t = 0; t < 4; ++t) ASSERT_TRUE((*m)->Process(stable, &rng).ok());
  // Strong change: should publish with absorbed budget...
  auto changed = Snapshot(std::vector<std::size_t>(50, 2));
  auto pub = (*m)->Process(changed, &rng);
  ASSERT_TRUE(pub.ok());
  ASSERT_TRUE(pub->published);
  EXPECT_GT(pub->publication_epsilon, (1.0 - 0.5) / 6.0 + 1e-12);
  // ...and the following steps must be nullified re-publications.
  auto changed_again = Snapshot(std::vector<std::size_t>(50, 1));
  auto nullified = (*m)->Process(changed_again, &rng);
  ASSERT_TRUE(nullified.ok());
  EXPECT_FALSE(nullified->published);
}

TEST(WEvent, AdaptiveBeatsUniformOnSparseStreams) {
  // Piecewise-constant stream (the regime Kellaris et al. designed for):
  // the population redistributes only every 10 steps. Re-publication is
  // free between change points, so the adaptive mechanisms should beat
  // the uniform eps/w baseline at equal window budget.
  const double eps = 1.0;
  const std::size_t w = 5;
  TimeSeriesDatabase series_builder(3);
  for (int t = 0; t < 40; ++t) {
    const std::size_t hot = static_cast<std::size_t>(t / 10) % 3;
    // In each 10-step phase one "hot" bin holds 120 users, the others 40.
    std::vector<std::size_t> values;
    for (std::size_t b = 0; b < 3; ++b) {
      const std::size_t count = (b == hot) ? 120 : 40;
      values.insert(values.end(), count, b);
    }
    auto db = Database::Create(std::move(values), 3);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(series_builder.Append(std::move(*db)).ok());
  }
  auto series = StatusOr<TimeSeriesDatabase>(std::move(series_builder));

  auto run_adaptive = [&](auto mechanism) {
    Rng rng(123);
    double err = 0.0;
    std::size_t cells = 0;
    for (std::size_t t = 1; t <= series->horizon(); ++t) {
      auto r = mechanism->Process(*series->At(t), &rng);
      EXPECT_TRUE(r.ok());
      for (std::size_t b = 0; b < r->true_values.size(); ++b) {
        err += std::fabs(r->released_values[b] - r->true_values[b]);
        ++cells;
      }
    }
    return err / static_cast<double>(cells);
  };

  auto bd = BudgetDistributionMechanism::Create(
      Opts(w, eps), std::make_unique<HistogramQuery>());
  ASSERT_TRUE(bd.ok());
  const double bd_err = run_adaptive(bd->get());

  // Uniform baseline: eps/w per step, always publish.
  Rng rng(123);
  ReleaseEngine uniform(std::make_unique<HistogramQuery>(), &rng);
  auto uniform_releases =
      uniform.ReleaseSeriesUniform(*series, eps / static_cast<double>(w));
  ASSERT_TRUE(uniform_releases.ok());
  const double uniform_err = MeanAbsoluteError(*uniform_releases);

  EXPECT_LT(bd_err, uniform_err);
}

TEST(WEvent, NamesExposed) {
  auto bd = BudgetDistributionMechanism::Create(
      Opts(3, 1.0), std::make_unique<HistogramQuery>());
  auto ba = BudgetAbsorptionMechanism::Create(
      Opts(3, 1.0), std::make_unique<HistogramQuery>());
  ASSERT_TRUE(bd.ok());
  ASSERT_TRUE(ba.ok());
  EXPECT_STREQ((*bd)->name(), "budget-distribution");
  EXPECT_STREQ((*ba)->name(), "budget-absorption");
}

}  // namespace
}  // namespace tcdp
