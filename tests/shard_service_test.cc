// ShardedReleaseService: routing, micro-batch semantics, durability
// round-trips, and the tentpole property — (shards x batching x
// recovery) produces per-user TPL series bitwise identical to a serial
// TplAccountant reference driven by an independently implemented model
// of the documented batching rules, at any shard count and batch
// window.

#include "server/sharded_service.h"

#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/loss_cache.h"
#include "core/tpl_accountant.h"
#include "kernels/kernels.h"
#include "markov/stochastic_matrix.h"

namespace tcdp {
namespace server {
namespace {

TemporalCorrelations ProfileCorrelations(int profile) {
  Rng rng(1000 + static_cast<std::uint64_t>(profile));
  const StochasticMatrix m = StochasticMatrix::Random(3, &rng);
  return TemporalCorrelations::Both(m, m).value();
}

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& name)
      : path("/tmp/tcdp_shard_test_" + name) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

// ------------------------------------------------------- reference model
//
// An independent, deliberately naive implementation of the service's
// batching contract (header of sharded_service.h): requests accumulate;
// every batch_window requests (or a flush) the window ticks — joins
// dispatch first, then one GLOBAL release per distinct epsilon in
// first-seen order, participants deduplicated. Each user is a serial
// TplAccountant over an identically quantized loss cache.

struct ReferenceOp {
  enum Kind { kJoin, kRelease, kReleaseAll, kFlush } kind;
  std::string name;
  int profile = 0;
  double epsilon = 0.0;
};

class ReferenceModel {
 public:
  explicit ReferenceModel(std::size_t batch_window)
      : batch_window_(batch_window) {}

  void Apply(const ReferenceOp& op) {
    switch (op.kind) {
      case ReferenceOp::kJoin:
        pending_joins_.push_back({op.name, op.profile});
        if (++window_ >= batch_window_) Tick();
        break;
      case ReferenceOp::kRelease: {
        Group& group = GroupFor(op.epsilon);
        bool seen = false;
        for (const std::string& existing : group.participants) {
          if (existing == op.name) seen = true;
        }
        if (!seen) group.participants.push_back(op.name);
        if (++window_ >= batch_window_) Tick();
        break;
      }
      case ReferenceOp::kReleaseAll:
        GroupFor(op.epsilon).all = true;
        if (++window_ >= batch_window_) Tick();
        break;
      case ReferenceOp::kFlush:
        Tick();
        break;
    }
  }

  void Finish() { Tick(); }

  std::vector<double> TplSeries(const std::string& name) {
    return users_.at(name).accountant->TplSeries();
  }
  std::vector<std::string> names() const {
    std::vector<std::string> out;
    for (const auto& [name, user] : users_) out.push_back(name);
    return out;
  }

 private:
  struct Group {
    double epsilon = 0.0;
    bool all = false;
    std::vector<std::string> participants;
  };
  struct User {
    std::unique_ptr<TplAccountant> accountant;
  };

  Group& GroupFor(double epsilon) {
    for (Group& group : groups_) {
      if (group.epsilon == epsilon) return group;
    }
    groups_.push_back(Group{epsilon, false, {}});
    return groups_.back();
  }

  void Tick() {
    window_ = 0;
    for (const auto& [name, profile] : pending_joins_) {
      TemporalCorrelations corr = ProfileCorrelations(profile);
      auto accountant = std::make_unique<TplAccountant>(
          corr, cache_.Intern(corr.backward()), cache_.Intern(corr.forward()),
          cache_options_.alpha_resolution);
      users_.emplace(name, User{std::move(accountant)});
    }
    pending_joins_.clear();
    for (const Group& group : groups_) {
      for (auto& [name, user] : users_) {
        bool participates = group.all;
        for (const std::string& p : group.participants) {
          if (p == name) participates = true;
        }
        ASSERT_TRUE_OR_DIE(participates
                               ? user.accountant->RecordRelease(group.epsilon)
                               : user.accountant->RecordSkip());
      }
    }
    groups_.clear();
  }

  static void ASSERT_TRUE_OR_DIE(const Status& status) {
    ASSERT_TRUE(status.ok()) << status;
  }

  std::size_t batch_window_;
  std::size_t window_ = 0;
  std::vector<std::pair<std::string, int>> pending_joins_;
  std::vector<Group> groups_;
  TemporalLossCache::Options cache_options_;
  TemporalLossCache cache_{cache_options_};
  std::map<std::string, User> users_;
};

/// A deterministic scripted workload: joins sprinkled among releases,
/// several distinct epsilons, sparse per-user requests.
std::vector<ReferenceOp> MakeWorkload(std::uint64_t seed,
                                      std::size_t num_users,
                                      std::size_t num_requests) {
  Rng rng(seed);
  std::vector<ReferenceOp> ops;
  std::vector<std::string> joined;
  const double epsilons[] = {0.05, 0.1, 0.2};
  for (std::size_t i = 0; i < num_requests; ++i) {
    const bool can_join = joined.size() < num_users;
    if (can_join && (joined.empty() || rng.Uniform() < 0.2)) {
      const std::string name = "user-" + std::to_string(joined.size());
      ops.push_back({ReferenceOp::kJoin, name,
                     static_cast<int>(joined.size() % 3), 0.0});
      joined.push_back(name);
      continue;
    }
    const double roll = rng.Uniform();
    if (roll < 0.08) {
      ops.push_back({ReferenceOp::kReleaseAll, "", 0,
                     epsilons[rng.UniformInt(0, 2)]});
    } else if (roll < 0.13) {
      ops.push_back({ReferenceOp::kFlush, "", 0, 0.0});
    } else {
      ops.push_back({ReferenceOp::kRelease,
                     joined[static_cast<std::size_t>(
                         rng.UniformInt(0, static_cast<std::int64_t>(
                                               joined.size()) -
                                               1))],
                     0, epsilons[rng.UniformInt(0, 2)]});
    }
  }
  return ops;
}

Status DriveService(ShardedReleaseService* service,
                    const std::vector<ReferenceOp>& ops) {
  for (const ReferenceOp& op : ops) {
    Status status = Status::OK();
    switch (op.kind) {
      case ReferenceOp::kJoin:
        status = service->Join(op.name, ProfileCorrelations(op.profile));
        break;
      case ReferenceOp::kRelease:
        status = service->Release(op.name, op.epsilon);
        break;
      case ReferenceOp::kReleaseAll:
        status = service->ReleaseAll(op.epsilon);
        break;
      case ReferenceOp::kFlush:
        status = service->Flush();
        break;
    }
    if (!status.ok()) return status;
  }
  return service->Flush();
}

// ------------------------------------------------------------ unit tests

TEST(ShardedService, RoutesAndReportsBasics) {
  auto service = ShardedReleaseService::Create("", {});
  ASSERT_TRUE(service.ok()) << service.status();
  ShardedReleaseService& s = **service;
  ASSERT_TRUE(s.Join("alice", ProfileCorrelations(0)).ok());
  ASSERT_TRUE(s.Join("bob", ProfileCorrelations(1)).ok());
  EXPECT_FALSE(s.Join("alice", ProfileCorrelations(0)).ok());  // duplicate
  ASSERT_TRUE(s.ReleaseAll(0.1).ok());
  ASSERT_TRUE(s.Release("alice", 0.2).ok());
  EXPECT_FALSE(s.Release("carol", 0.1).ok());  // unknown user
  EXPECT_FALSE(s.Release("alice", 0.0).ok());  // bad epsilon
  ASSERT_TRUE(s.Flush().ok());
  EXPECT_EQ(s.num_users(), 2u);
  EXPECT_EQ(s.horizon(), 2u);  // two distinct epsilons -> two releases

  auto alice = s.Query("alice");
  ASSERT_TRUE(alice.ok()) << alice.status();
  EXPECT_EQ(alice->horizon, 2u);
  EXPECT_GT(alice->max_tpl, 0.0);
  EXPECT_EQ(alice->user_level_tpl, 0.1 + 0.2);
  auto bob = s.Query("bob");
  ASSERT_TRUE(bob.ok());
  EXPECT_EQ(bob->user_level_tpl, 0.1);  // skipped the 0.2 release

  auto overall = s.OverallAlpha();
  ASSERT_TRUE(overall.ok());
  EXPECT_GE(*overall, alice->max_tpl);
  ASSERT_TRUE(s.Close().ok());
  EXPECT_FALSE(s.Release("alice", 0.1).ok());  // closed
}

TEST(ShardedService, ShardOfIsStableAndCoversShards) {
  // The partition function is part of the durable contract (logs
  // reference it implicitly through user placement).
  EXPECT_EQ(ShardedReleaseService::ShardOf("anything", 1), 0u);
  bool hit[4] = {false, false, false, false};
  for (int i = 0; i < 64; ++i) {
    hit[ShardedReleaseService::ShardOf("user-" + std::to_string(i), 4)] =
        true;
  }
  EXPECT_TRUE(hit[0] && hit[1] && hit[2] && hit[3]);
}

TEST(ShardedService, BatchWindowCoalesces) {
  ShardedServiceOptions options;
  options.num_shards = 2;
  options.batch_window = 100;  // nothing ticks until Flush
  auto service = ShardedReleaseService::Create("", options);
  ASSERT_TRUE(service.ok());
  ShardedReleaseService& s = **service;
  ASSERT_TRUE(s.Join("u0", ProfileCorrelations(0)).ok());
  ASSERT_TRUE(s.Join("u1", ProfileCorrelations(0)).ok());
  // Five requests at one epsilon + three at another = two global
  // releases once the window flushes, not eight.
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(s.Release("u0", 0.1).ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(s.Release("u1", 0.2).ok());
  EXPECT_EQ(s.horizon(), 0u);  // still batching
  ASSERT_TRUE(s.Flush().ok());
  EXPECT_EQ(s.horizon(), 2u);
  EXPECT_EQ(s.stats().ticks, 1u);
  EXPECT_EQ(s.stats().global_releases, 2u);
  EXPECT_EQ(s.stats().release_requests, 8u);
  ASSERT_TRUE(s.Close().ok());
}

TEST(ShardedService, SmallQueueCapacityStillCompletes) {
  ShardedServiceOptions options;
  options.num_shards = 3;
  options.batch_window = 1;  // tick on every request: maximum pressure
  options.queue_capacity = 2;
  auto service = ShardedReleaseService::Create("", options);
  ASSERT_TRUE(service.ok());
  ShardedReleaseService& s = **service;
  for (int u = 0; u < 6; ++u) {
    ASSERT_TRUE(
        s.Join("u" + std::to_string(u), ProfileCorrelations(u % 2)).ok());
  }
  for (int t = 0; t < 50; ++t) {
    ASSERT_TRUE(s.Release("u" + std::to_string(t % 6), 0.05).ok());
  }
  ASSERT_TRUE(s.Flush().ok());
  EXPECT_EQ(s.horizon(), 50u);
  ASSERT_TRUE(s.Close().ok());
}

// -------------------------------------------------- the tentpole property

void ExpectMatchesReference(std::uint64_t seed, std::size_t shards,
                            std::size_t batch_window,
                            const std::string& log_dir,
                            std::size_t threads_per_shard = 1,
                            TcdpKernelMode kernel_mode =
                                TcdpKernelMode::kAuto) {
  const std::vector<ReferenceOp> ops = MakeWorkload(seed, 8, 120);

  ReferenceModel reference(batch_window);
  for (const ReferenceOp& op : ops) reference.Apply(op);
  reference.Finish();

  ShardedServiceOptions options;
  options.num_shards = shards;
  options.batch_window = batch_window;
  options.threads_per_shard = threads_per_shard;
  options.kernel_mode = kernel_mode;
  auto service = ShardedReleaseService::Create(log_dir, options);
  ASSERT_TRUE(service.ok()) << service.status();
  ASSERT_TRUE(DriveService(service->get(), ops).ok());

  for (const std::string& name : reference.names()) {
    auto report = (*service)->Query(name);
    ASSERT_TRUE(report.ok()) << name << ": " << report.status();
    EXPECT_EQ(report->tpl_series, reference.TplSeries(name))
        << "seed " << seed << " shards " << shards << " window "
        << batch_window << " threads_per_shard " << threads_per_shard
        << " kernels " << kernels::KernelModeName(kernel_mode) << " user "
        << name;
  }
  ASSERT_TRUE((*service)->Close().ok());
}

TEST(ShardedServiceProperty, MatchesSerialReferenceAcrossShardsAndWindows) {
  for (std::uint64_t seed : {11u, 23u}) {
    for (std::size_t shards : {1u, 2u, 5u}) {
      for (std::size_t window : {1u, 7u, 64u}) {
        ExpectMatchesReference(seed, shards, window, "");
        if (testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

TEST(ShardedServiceProperty, MatchesSerialReferenceAcrossHybridGrid) {
  // ISSUE 7 tentpole: hybrid shard x bank parallelism and kernel
  // dispatch are both bitwise-invisible — every (shards x
  // threads_per_shard x kernel mode) cell reproduces the serial
  // TplAccountant reference exactly. Create() applies the cell's
  // kernel mode process-wide, so the loop also exercises switching.
  for (TcdpKernelMode mode :
       {TcdpKernelMode::kScalar, TcdpKernelMode::kAuto}) {
    for (std::size_t shards : {1u, 3u}) {
      for (std::size_t threads_per_shard : {1u, 2u, 4u}) {
        ExpectMatchesReference(41, shards, 7, "", threads_per_shard, mode);
        if (testing::Test::HasFatalFailure()) return;
      }
    }
  }
  kernels::SetKernelMode(TcdpKernelMode::kAuto);
}

TEST(ShardedServiceDurability, ThreadsPerShardRoundTripsThroughManifest) {
  TempDir dir("hybrid_manifest");
  const std::vector<ReferenceOp> ops = MakeWorkload(13, 6, 80);
  std::map<std::string, std::vector<double>> live_series;
  {
    ShardedServiceOptions options;
    options.num_shards = 2;
    options.batch_window = 4;
    options.threads_per_shard = 3;
    auto service = ShardedReleaseService::Create(dir.path, options);
    ASSERT_TRUE(service.ok()) << service.status();
    ASSERT_TRUE(DriveService(service->get(), ops).ok());
    auto alphas = (*service)->PersonalizedAlphas();
    ASSERT_TRUE(alphas.ok());
    for (const auto& [name, alpha] : *alphas) {
      (void)alpha;
      live_series[name] = (*service)->Query(name)->tpl_series;
    }
    ASSERT_TRUE((*service)->Close().ok());
  }
  auto recovered = ShardedReleaseService::Recover(dir.path);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ((*recovered)->options().threads_per_shard, 3u);
  for (const auto& [name, series] : live_series) {
    auto report = (*recovered)->Query(name);
    ASSERT_TRUE(report.ok()) << name;
    EXPECT_EQ(report->tpl_series, series) << name;
  }
  ASSERT_TRUE((*recovered)->Close().ok());
}

TEST(ShardedServiceProperty, SeriesAreShardCountInvariant) {
  // Global time steps make per-user series independent of placement:
  // run the same stream at 1 and 4 shards and compare bitwise.
  const std::vector<ReferenceOp> ops = MakeWorkload(99, 10, 150);
  std::map<std::string, std::vector<double>> series_by_name;
  for (std::size_t shards : {1u, 4u}) {
    ShardedServiceOptions options;
    options.num_shards = shards;
    options.batch_window = 5;
    auto service = ShardedReleaseService::Create("", options);
    ASSERT_TRUE(service.ok());
    ASSERT_TRUE(DriveService(service->get(), ops).ok());
    auto alphas = (*service)->PersonalizedAlphas();
    ASSERT_TRUE(alphas.ok());
    for (const auto& [name, alpha] : *alphas) {
      (void)alpha;
      auto report = (*service)->Query(name);
      ASSERT_TRUE(report.ok());
      auto [it, inserted] =
          series_by_name.emplace(name, report->tpl_series);
      if (!inserted) {
        EXPECT_EQ(it->second, report->tpl_series)
            << "shard-count variance for " << name;
      }
    }
    ASSERT_TRUE((*service)->Close().ok());
  }
}

// ----------------------------------------------------------- durability

TEST(ShardedServiceDurability, CleanRestartReproducesSeriesBitwise) {
  TempDir dir("clean_restart");
  const std::vector<ReferenceOp> ops = MakeWorkload(7, 6, 100);
  std::map<std::string, std::vector<double>> live_series;
  {
    ShardedServiceOptions options;
    options.num_shards = 3;
    options.batch_window = 4;
    auto service = ShardedReleaseService::Create(dir.path, options);
    ASSERT_TRUE(service.ok()) << service.status();
    ASSERT_TRUE(DriveService(service->get(), ops).ok());
    auto alphas = (*service)->PersonalizedAlphas();
    ASSERT_TRUE(alphas.ok());
    for (const auto& [name, alpha] : *alphas) {
      (void)alpha;
      live_series[name] = (*service)->Query(name)->tpl_series;
    }
    ASSERT_TRUE((*service)->Close().ok());
  }
  auto recovered = ShardedReleaseService::Recover(dir.path);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ((*recovered)->num_users(), live_series.size());
  for (const auto& [name, series] : live_series) {
    auto report = (*recovered)->Query(name);
    ASSERT_TRUE(report.ok()) << name;
    EXPECT_EQ(report->tpl_series, series) << name;
  }
  // The recovered service keeps serving.
  ASSERT_TRUE((*recovered)->ReleaseAll(0.1).ok());
  ASSERT_TRUE((*recovered)->Flush().ok());
  ASSERT_TRUE((*recovered)->Close().ok());
}

TEST(ShardedServiceDurability, SnapshotsCutReplayAndStayBitwise) {
  TempDir dir("snapshots");
  const std::vector<ReferenceOp> ops = MakeWorkload(31, 6, 160);
  std::map<std::string, std::vector<double>> live_series;
  {
    ShardedServiceOptions options;
    options.num_shards = 2;
    options.batch_window = 3;
    options.snapshot_every = 5;
    auto service = ShardedReleaseService::Create(dir.path, options);
    ASSERT_TRUE(service.ok()) << service.status();
    ASSERT_TRUE(DriveService(service->get(), ops).ok());
    auto alphas = (*service)->PersonalizedAlphas();
    ASSERT_TRUE(alphas.ok());
    for (const auto& [name, alpha] : *alphas) {
      (void)alpha;
      live_series[name] = (*service)->Query(name)->tpl_series;
    }
    EXPECT_GT((*service)->shard_stats(0).snapshots_written, 0u);
    ASSERT_TRUE((*service)->Close().ok());
  }
  auto recovered = ShardedReleaseService::Recover(dir.path);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  for (std::size_t shard = 0; shard < 2; ++shard) {
    const ShardStats stats = (*recovered)->shard_stats(shard);
    EXPECT_TRUE(stats.restored_from_snapshot) << "shard " << shard;
    EXPECT_LT(stats.replayed_records, stats.wal_records)
        << "snapshot should cut replay on shard " << shard;
  }
  for (const auto& [name, series] : live_series) {
    auto report = (*recovered)->Query(name);
    ASSERT_TRUE(report.ok()) << name;
    EXPECT_EQ(report->tpl_series, series) << name;
  }
  ASSERT_TRUE((*recovered)->Close().ok());
}

TEST(ShardedService, EphemeralSnapshotIsRejectedWithoutBrickingService) {
  auto service = ShardedReleaseService::Create("", {});
  ASSERT_TRUE(service.ok());
  ShardedReleaseService& s = **service;
  ASSERT_TRUE(s.Join("alice", ProfileCorrelations(0)).ok());
  EXPECT_FALSE(s.Snapshot().ok());  // no log dir
  // The rejection must not fail-stop the shards: serving continues.
  ASSERT_TRUE(s.ReleaseAll(0.1).ok());
  ASSERT_TRUE(s.Flush().ok());
  EXPECT_EQ(s.horizon(), 1u);
  ASSERT_TRUE(s.Close().ok());
}

TEST(ShardedServiceDurability, ZeroUserShardSnapshotsAreUsable) {
  // More shards than users: some shards snapshot with no users, and
  // those snapshots must still cut replay on recovery (the header
  // carries the quantization, not just the per-user blobs).
  TempDir dir("zero_user_shard");
  std::size_t live_horizon = 0;
  {
    ShardedServiceOptions options;
    options.num_shards = 4;
    options.batch_window = 2;
    options.snapshot_every = 3;
    auto service = ShardedReleaseService::Create(dir.path, options);
    ASSERT_TRUE(service.ok());
    ASSERT_TRUE((*service)->Join("only-user", ProfileCorrelations(0)).ok());
    // Same-epsilon requests coalesce within a window, so this yields
    // fewer global releases than requests — compare against the live
    // horizon, not the request count.
    for (int t = 0; t < 12; ++t) {
      ASSERT_TRUE((*service)->ReleaseAll(0.05).ok());
    }
    ASSERT_TRUE((*service)->Flush().ok());
    live_horizon = (*service)->horizon();
    ASSERT_TRUE((*service)->Close().ok());
  }
  auto recovered = ShardedReleaseService::Recover(dir.path);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ((*recovered)->num_users(), 1u);
  EXPECT_EQ((*recovered)->horizon(), live_horizon);
  EXPECT_GT(live_horizon, 4u);  // enough releases that snapshots fired
  std::size_t zero_user_shards = 0;
  for (std::size_t shard = 0; shard < 4; ++shard) {
    const ShardStats stats = (*recovered)->shard_stats(shard);
    if (stats.users > 0) continue;
    ++zero_user_shards;
    EXPECT_TRUE(stats.restored_from_snapshot) << "shard " << shard;
    EXPECT_LT(stats.replayed_records, stats.wal_records) << "shard " << shard;
  }
  EXPECT_GE(zero_user_shards, 1u);
  ASSERT_TRUE((*recovered)->Close().ok());
}

TEST(ShardedServiceDurability, CreateRefusesExistingDirAndRecoverNeedsOne) {
  TempDir dir("create_guard");
  {
    auto service = ShardedReleaseService::Create(dir.path, {});
    ASSERT_TRUE(service.ok());
    ASSERT_TRUE((*service)->Close().ok());
  }
  auto again = ShardedReleaseService::Create(dir.path, {});
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);
  auto missing = ShardedReleaseService::Recover("/tmp/tcdp_no_such_dir");
  EXPECT_FALSE(missing.ok());
}

}  // namespace
}  // namespace server
}  // namespace tcdp
