// Active diagnostics (ISSUE 9): heartbeat registry sampling, watchdog
// stall classification with scan-count detection-latency bounds, the
// flight recorder's bundle contents/atomicity/retention, and the
// crash-path state writer.

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"

namespace tcdp {
namespace obs {
namespace {

std::string TempDir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("tcdp-obs-" + tag + "-" +
                    std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

TEST(HeartbeatRegistry, RegisterSampleUnregister) {
  HeartbeatRegistry registry;
  EXPECT_EQ(registry.size(), 0u);

  std::atomic<std::uint64_t> queue{3};
  HeartbeatInfo info;
  info.name = "unit-worker";
  info.kind = HeartbeatKind::kWorker;
  info.pending = [&queue] { return queue.load(); };
  HeartbeatHandle handle = registry.Register(std::move(info));
  ASSERT_TRUE(handle.registered());
  EXPECT_EQ(registry.size(), 1u);

  handle.Beat();
  handle.Beat();
  auto samples = registry.SampleAll();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "unit-worker");
  EXPECT_EQ(samples[0].kind, HeartbeatKind::kWorker);
  EXPECT_EQ(samples[0].progress, 2u);
  EXPECT_EQ(samples[0].pending, 3u);
  EXPECT_GT(samples[0].last_active_ns, 0u);

  handle.Unregister();
  EXPECT_FALSE(handle.registered());
  EXPECT_EQ(registry.size(), 0u);
  // Unregister is idempotent and the handle stays null-safe.
  handle.Unregister();
  handle.Beat();
}

TEST(HeartbeatRegistry, MoveTransfersOwnership) {
  HeartbeatRegistry registry;
  HeartbeatInfo info;
  info.name = "mover";
  HeartbeatHandle a = registry.Register(std::move(info));
  HeartbeatHandle b = std::move(a);
  EXPECT_FALSE(a.registered());
  EXPECT_TRUE(b.registered());
  EXPECT_EQ(registry.size(), 1u);
  b.Unregister();
  EXPECT_EQ(registry.size(), 0u);
}

TEST(Watchdog, IdleWorkerWithEmptyQueueNeverStalls) {
  std::atomic<std::uint64_t> pending{0};
  HeartbeatInfo info;
  info.name = "idle-worker";
  info.kind = HeartbeatKind::kWorker;
  info.pending = [&pending] { return pending.load(); };
  HeartbeatHandle handle = HeartbeatRegistry::Default().Register(
      std::move(info));

  WatchdogOptions options;
  options.interval_ms = 0;  // manual scans only
  options.stall_ticks = 1;
  Watchdog watchdog(options);
  for (int i = 0; i < 5; ++i) watchdog.ScanOnceForTesting();
  const HealthSnapshot snapshot = watchdog.Snapshot();
  EXPECT_TRUE(snapshot.healthy);
  for (const ComponentHealth& comp : snapshot.components) {
    if (comp.name == "idle-worker") EXPECT_FALSE(comp.stalled);
  }
  handle.Unregister();
}

TEST(Watchdog, FrozenWorkerWithPendingWorkStallsWithinStallTicksScans) {
  std::atomic<std::uint64_t> pending{0};
  HeartbeatInfo info;
  info.name = "stuck-worker";
  info.kind = HeartbeatKind::kWorker;
  info.pending = [&pending] { return pending.load(); };
  HeartbeatHandle handle = HeartbeatRegistry::Default().Register(
      std::move(info));

  WatchdogOptions options;
  options.interval_ms = 0;
  options.stall_ticks = 2;
  Watchdog watchdog(options);

  // Healthy while progressing.
  handle.Beat();
  watchdog.ScanOnceForTesting();
  EXPECT_TRUE(watchdog.Snapshot().healthy);

  // Freeze with work pending: detection must land within stall_ticks
  // scans of the freeze (acceptance: 2 scan intervals), measured in
  // scan counts so no wall clock races the assertion.
  pending.store(4);
  const std::uint64_t frozen_at = watchdog.scans();
  bool detected = false;
  std::uint64_t detected_scan = 0;
  for (int i = 0; i < 4 && !detected; ++i) {
    watchdog.ScanOnceForTesting();
    for (const ComponentHealth& comp : watchdog.Snapshot().components) {
      if (comp.name == "stuck-worker" && comp.stalled) {
        detected = true;
        detected_scan = comp.stall_detected_scan;
      }
    }
  }
  ASSERT_TRUE(detected);
  EXPECT_LE(detected_scan, frozen_at + options.stall_ticks + 1);
  EXPECT_FALSE(watchdog.Snapshot().healthy);
  EXPECT_FALSE(watchdog.Snapshot().ready);

  // Progress again: the stall clears on the next scan.
  handle.Beat();
  pending.store(0);
  watchdog.ScanOnceForTesting();
  EXPECT_TRUE(watchdog.Snapshot().healthy);
  handle.Unregister();
}

TEST(Watchdog, ReadyRequiresLatchAndHealth) {
  WatchdogOptions options;
  options.interval_ms = 0;
  Watchdog watchdog(options);
  watchdog.ScanOnceForTesting();
  EXPECT_FALSE(watchdog.Snapshot().ready);  // latch not set
  watchdog.SetReady(true);
  watchdog.ScanOnceForTesting();
  EXPECT_TRUE(watchdog.Snapshot().ready);
}

TEST(Watchdog, StallBumpsTheStallCounterAndFiresTheRecorder) {
  SetMetricsEnabled(true);
  const std::string dir = TempDir("wd-recorder");
  FlightRecorderOptions recorder_options;
  recorder_options.dir = dir;
  recorder_options.keep = 4;
  recorder_options.state_text = [] { return std::string("state-ok"); };
  FlightRecorder recorder(recorder_options);

  std::atomic<std::uint64_t> pending{7};
  HeartbeatInfo info;
  info.name = "recorded-worker";
  info.kind = HeartbeatKind::kWorker;
  info.pending = [&pending] { return pending.load(); };
  HeartbeatHandle handle = HeartbeatRegistry::Default().Register(
      std::move(info));

  WatchdogOptions options;
  options.interval_ms = 0;
  options.stall_ticks = 1;
  options.flight_recorder = &recorder;
  Watchdog watchdog(options);
  for (int i = 0; i < 3; ++i) watchdog.ScanOnceForTesting();

  ASSERT_FALSE(watchdog.Snapshot().healthy);
  const auto bundles = recorder.ListBundles();
  ASSERT_EQ(bundles.size(), 1u);  // transition fires once, not per scan

  // Bundle completeness: the published directory holds a decodable
  // metrics snapshot, a parseable trace dump, the manifest, and the
  // host's state text. ListBundles returns names relative to the dir.
  const std::string bundle = dir + "/" + bundles[0];
  EXPECT_NE(bundle.find("stall-recorded-worker"), std::string::npos);
  const std::string metrics_bin = ReadFile(bundle + "/metrics.bin");
  ASSERT_FALSE(metrics_bin.empty());
  auto decoded = DecodeMetricsSnapshot(metrics_bin);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  bool saw_stall_counter = false;
  for (const auto& [name, value] : decoded->counters) {
    if (name ==
            "tcdp_watchdog_stalls_total{component=\"recorded-worker\"}" &&
        value >= 1) {
      saw_stall_counter = true;
    }
  }
  EXPECT_TRUE(saw_stall_counter);
  const std::string trace = ReadFile(bundle + "/trace.json");
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.front(), '{');  // Chrome trace object
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(ReadFile(bundle + "/MANIFEST.txt").find("stall-recorded-worker"),
            std::string::npos);
  EXPECT_NE(ReadFile(bundle + "/state.txt").find("state-ok"),
            std::string::npos);
  // No half-written temp dirs left behind after publication.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().filename().string().rfind(".tmp-", 0),
              std::string::npos);
  }

  handle.Unregister();
  std::filesystem::remove_all(dir);
}

TEST(FlightRecorder, RetentionKeepsTheNewestK) {
  const std::string dir = TempDir("retention");
  FlightRecorderOptions options;
  options.dir = dir;
  options.keep = 3;
  FlightRecorder recorder(options);
  for (int i = 0; i < 7; ++i) {
    auto path = recorder.Trigger("round-" + std::to_string(i));
    ASSERT_TRUE(path.ok()) << path.status();
  }
  const auto bundles = recorder.ListBundles();
  ASSERT_EQ(bundles.size(), 3u);
  // ListBundles sorts by sequence; the survivors are the newest three.
  EXPECT_NE(bundles[0].find("round-4"), std::string::npos);
  EXPECT_NE(bundles[2].find("round-6"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(FlightRecorder, ReasonIsSanitizedIntoThePath) {
  const std::string dir = TempDir("sanitize");
  FlightRecorderOptions options;
  options.dir = dir;
  FlightRecorder recorder(options);
  auto path = recorder.Trigger("stall: shard/0 went \taway");
  ASSERT_TRUE(path.ok()) << path.status();
  EXPECT_EQ(path->find('\t'), std::string::npos);
  EXPECT_EQ(path->find(' '), std::string::npos);
  EXPECT_EQ(path->find('/', dir.size() + 1), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(FlightRecorder, CrashPathWritesThePreSerializedState) {
  const std::string dir = TempDir("crash");
  FlightRecorderOptions options;
  options.dir = dir;
  options.state_text = [] { return std::string("crash-state-marker"); };
  FlightRecorder recorder(options);
  ASSERT_TRUE(recorder.InstallCrashHandler().ok());
  recorder.RefreshSignalState();
  // Exercise the handler body directly: raising a real SIGSEGV under
  // sanitizers would end the test run instead of exercising the code.
  FlightRecorder::WriteCrashFileFromSignal(SIGSEGV);
  const std::string crash_file =
      dir + "/crash-" + std::to_string(::getpid()) + ".txt";
  const std::string contents = ReadFile(crash_file);
  ASSERT_FALSE(contents.empty());
  EXPECT_NE(contents.find("signal"), std::string::npos);
  EXPECT_NE(contents.find("crash-state-marker"), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace obs
}  // namespace tcdp
