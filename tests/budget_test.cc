// Unit tests for dp/budget: the ledger, sequential composition
// (Theorem 3), and w-event windows (Table II).

#include "dp/budget.h"

#include <gtest/gtest.h>

namespace tcdp {
namespace {

TEST(BudgetLedger, StartsEmpty) {
  BudgetLedger ledger;
  EXPECT_EQ(ledger.num_releases(), 0u);
  EXPECT_DOUBLE_EQ(ledger.TotalSpent(), 0.0);
}

TEST(BudgetLedger, SpendValidatesEpsilon) {
  BudgetLedger ledger;
  EXPECT_FALSE(ledger.Spend(0.0).ok());
  EXPECT_FALSE(ledger.Spend(-1.0).ok());
  EXPECT_TRUE(ledger.Spend(0.5).ok());
}

TEST(BudgetLedger, SequentialCompositionSums) {
  // Theorem 3: the combined mechanism spends the sum.
  BudgetLedger ledger;
  ASSERT_TRUE(ledger.Spend(0.1).ok());
  ASSERT_TRUE(ledger.Spend(0.2).ok());
  ASSERT_TRUE(ledger.Spend(0.3).ok());
  EXPECT_NEAR(ledger.TotalSpent(), 0.6, 1e-12);
  EXPECT_EQ(ledger.num_releases(), 3u);
}

TEST(BudgetLedger, CapEnforced) {
  BudgetLedger ledger(1.0);
  ASSERT_TRUE(ledger.Spend(0.7).ok());
  auto over = ledger.Spend(0.5);
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
  EXPECT_NEAR(ledger.TotalSpent(), 0.7, 1e-12);  // rejected spend not booked
  EXPECT_TRUE(ledger.Spend(0.3).ok());
  EXPECT_NEAR(ledger.Remaining(), 0.0, 1e-9);
}

TEST(BudgetLedger, LabelsStored) {
  BudgetLedger ledger;
  ASSERT_TRUE(ledger.Spend(0.5, "t=1").ok());
  ASSERT_EQ(ledger.entries().size(), 1u);
  EXPECT_EQ(ledger.entries()[0].label, "t=1");
}

TEST(BudgetLedger, WindowSpendValidatesW) {
  BudgetLedger ledger;
  EXPECT_FALSE(ledger.WindowSpend(0).ok());
}

TEST(BudgetLedger, WindowSpendEmptyLedgerIsZero) {
  BudgetLedger ledger;
  auto w = ledger.WindowSpend(3);
  ASSERT_TRUE(w.ok());
  EXPECT_DOUBLE_EQ(*w, 0.0);
}

TEST(BudgetLedger, WindowSpendSlidingMaximum) {
  BudgetLedger ledger;
  for (double e : {0.1, 0.5, 0.2, 0.4, 0.05}) ASSERT_TRUE(ledger.Spend(e).ok());
  // Windows of 2: (0.6, 0.7, 0.6, 0.45) -> 0.7.
  auto w2 = ledger.WindowSpend(2);
  ASSERT_TRUE(w2.ok());
  EXPECT_NEAR(*w2, 0.7, 1e-12);
  // Window of 1: max single = 0.5.
  auto w1 = ledger.WindowSpend(1);
  ASSERT_TRUE(w1.ok());
  EXPECT_NEAR(*w1, 0.5, 1e-12);
  // Window larger than history: total.
  auto w9 = ledger.WindowSpend(9);
  ASSERT_TRUE(w9.ok());
  EXPECT_NEAR(*w9, ledger.TotalSpent(), 1e-12);
}

TEST(BudgetLedger, WEventPropertyUniformBudget) {
  // Table II: releasing eps-DP at each step gives w*eps over any window.
  BudgetLedger ledger;
  const double eps = 0.2;
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(ledger.Spend(eps).ok());
  auto w4 = ledger.WindowSpend(4);
  ASSERT_TRUE(w4.ok());
  EXPECT_NEAR(*w4, 4 * eps, 1e-12);
}

}  // namespace
}  // namespace tcdp
