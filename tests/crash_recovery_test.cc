// The crash-at-any-record property (ISSUE 3 satellite): kill a shard's
// WAL at EVERY byte offset of a small workload and assert the
// recovered state equals the uninterrupted run truncated to the
// recovered horizon — per-user epsilon sub-schedules must be bitwise
// prefixes of the uninterrupted ones, and every recovered TPL series
// must be bitwise identical to a serial TplAccountant driven over that
// prefix through an identically quantized cache.

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/loss_cache.h"
#include "core/tpl_accountant.h"
#include "markov/stochastic_matrix.h"
#include "server/event_log.h"
#include "server/sharded_service.h"

namespace tcdp {
namespace server {
namespace {

namespace fs = std::filesystem;

TemporalCorrelations SmallProfile(int which) {
  const StochasticMatrix m =
      which == 0 ? StochasticMatrix::FromRows({{0.8, 0.2}, {0.0, 1.0}})
                 : StochasticMatrix::FromRows({{0.6, 0.4}, {0.3, 0.7}});
  return TemporalCorrelations::Both(m, m).value();
}

struct UserTruth {
  std::size_t join = 0;
  std::vector<double> epsilons;
};

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Drives the seeded workload; returns per-user ground truth from the
/// uninterrupted service.
std::map<std::string, UserTruth> RunWorkload(const std::string& dir,
                                             ShardedServiceOptions options,
                                             std::uint64_t seed) {
  std::map<std::string, UserTruth> truth;
  auto service = ShardedReleaseService::Create(dir, options);
  EXPECT_TRUE(service.ok()) << service.status();
  if (!service.ok()) return truth;
  ShardedReleaseService& s = **service;
  Rng rng(seed);
  std::vector<std::string> joined;
  for (int i = 0; i < 60; ++i) {
    if (joined.size() < 4 && (joined.empty() || rng.Uniform() < 0.15)) {
      const std::string name = "u" + std::to_string(joined.size());
      EXPECT_TRUE(
          s.Join(name, SmallProfile(static_cast<int>(joined.size()) % 2))
              .ok());
      joined.push_back(name);
    } else if (rng.Uniform() < 0.1) {
      EXPECT_TRUE(s.ReleaseAll(0.1).ok());
    } else {
      const auto& name = joined[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(joined.size()) - 1))];
      EXPECT_TRUE(s.Release(name, rng.Uniform() < 0.5 ? 0.05 : 0.2).ok());
    }
  }
  EXPECT_TRUE(s.Flush().ok());
  for (const std::string& name : joined) {
    auto report = s.Query(name);
    EXPECT_TRUE(report.ok());
    truth[name] = UserTruth{report->join_release, report->epsilons};
  }
  EXPECT_TRUE(s.Close().ok());
  return truth;
}

/// Recovered series must equal a fresh accountant over the recovered
/// epsilon prefix, and that prefix must match the uninterrupted truth.
void CheckRecoveredAgainstTruth(
    ShardedReleaseService* recovered,
    const std::map<std::string, UserTruth>& truth, std::size_t context) {
  TemporalLossCache::Options cache_options;  // service defaults
  TemporalLossCache cache(cache_options);
  const std::size_t horizon = recovered->horizon();
  auto alphas = recovered->PersonalizedAlphas();
  ASSERT_TRUE(alphas.ok()) << "offset " << context;
  for (const auto& [name, alpha] : *alphas) {
    (void)alpha;
    auto report = recovered->Query(name);
    ASSERT_TRUE(report.ok()) << "offset " << context << " user " << name;
    const auto it = truth.find(name);
    ASSERT_NE(it, truth.end()) << "offset " << context
                               << " recovered unknown user " << name;
    const UserTruth& expected = it->second;
    ASSERT_EQ(report->join_release, expected.join)
        << "offset " << context << " user " << name;
    // The recovered spend sequence is a bitwise prefix of the
    // uninterrupted one.
    ASSERT_EQ(report->epsilons.size(), horizon - expected.join)
        << "offset " << context << " user " << name;
    for (std::size_t i = 0; i < report->epsilons.size(); ++i) {
      ASSERT_EQ(report->epsilons[i], expected.epsilons[i])
          << "offset " << context << " user " << name << " step " << i;
    }
    // And the series equals the serial reference over that prefix.
    TemporalCorrelations corr =
        SmallProfile(name == "u0" || name == "u2" ? 0 : 1);
    TplAccountant reference(corr, cache.Intern(corr.backward()),
                            cache.Intern(corr.forward()),
                            cache_options.alpha_resolution);
    for (double eps : report->epsilons) {
      ASSERT_TRUE((eps == 0.0 ? reference.RecordSkip()
                              : reference.RecordRelease(eps))
                      .ok());
    }
    ASSERT_EQ(report->tpl_series, reference.TplSeries())
        << "offset " << context << " user " << name;
  }
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    pristine_ = "/tmp/tcdp_crash_pristine";
    work_ = "/tmp/tcdp_crash_work";
    fs::remove_all(pristine_);
    fs::remove_all(work_);
  }
  void TearDown() override {
    fs::remove_all(pristine_);
    fs::remove_all(work_);
  }

  /// Copies the pristine dir into the work dir.
  void ResetWorkDir() {
    fs::remove_all(work_);
    fs::create_directories(work_);
    for (const auto& entry : fs::directory_iterator(pristine_)) {
      fs::copy_file(entry.path(), work_ + "/" +
                                      entry.path().filename().string());
    }
  }

  std::string pristine_;
  std::string work_;
};

TEST_F(CrashRecoveryTest, EveryTruncationOffsetRecoversConsistently) {
  ShardedServiceOptions options;
  options.num_shards = 2;
  options.batch_window = 3;
  const auto truth = RunWorkload(pristine_, options, 12345);
  ASSERT_FALSE(truth.empty());

  const std::string victim = pristine_ + "/shard-0.wal";
  const std::string full = ReadFileBytes(victim);
  ASSERT_GT(full.size(), 100u);
  // The manifest record is fdatasynced before Create returns, so a
  // real crash always leaves it intact: start the cuts at its end (a
  // torn manifest rightly fails Recover — identity unknown).
  auto scan = ReadEventLog(victim);
  ASSERT_TRUE(scan.ok());
  const std::size_t first_cut =
      static_cast<std::size_t>(scan->record_end.front());

  for (std::size_t cut = first_cut; cut <= full.size(); ++cut) {
    ResetWorkDir();
    WriteFileBytes(work_ + "/shard-0.wal", full.substr(0, cut));
    auto recovered = ShardedReleaseService::Recover(work_);
    ASSERT_TRUE(recovered.ok())
        << "offset " << cut << ": " << recovered.status();
    CheckRecoveredAgainstTruth(recovered->get(), truth, cut);
    if (testing::Test::HasFatalFailure()) {
      FAIL() << "first failing truncation offset: " << cut;
    }
    ASSERT_TRUE((*recovered)->Close().ok()) << "offset " << cut;
  }
}

TEST_F(CrashRecoveryTest, RecoveredServiceResumesAndSurvivesSecondCrash) {
  ShardedServiceOptions options;
  options.num_shards = 2;
  options.batch_window = 2;
  const auto truth = RunWorkload(pristine_, options, 777);
  ResetWorkDir();
  const std::string full = ReadFileBytes(pristine_ + "/shard-1.wal");
  WriteFileBytes(work_ + "/shard-1.wal", full.substr(0, full.size() / 2));

  std::map<std::string, std::vector<double>> resumed_series;
  {
    auto recovered = ShardedReleaseService::Recover(work_);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    CheckRecoveredAgainstTruth(recovered->get(), truth, 1);
    // Keep serving after the crash...
    ASSERT_TRUE((*recovered)->ReleaseAll(0.05).ok());
    ASSERT_TRUE((*recovered)->Flush().ok());
    auto alphas = (*recovered)->PersonalizedAlphas();
    ASSERT_TRUE(alphas.ok());
    for (const auto& [name, alpha] : *alphas) {
      (void)alpha;
      resumed_series[name] = (*recovered)->Query(name)->tpl_series;
    }
    ASSERT_TRUE((*recovered)->Close().ok());
  }
  // ...and a second recovery of the resumed log reproduces it.
  auto again = ShardedReleaseService::Recover(work_);
  ASSERT_TRUE(again.ok()) << again.status();
  for (const auto& [name, series] : resumed_series) {
    auto report = (*again)->Query(name);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->tpl_series, series) << name;
  }
  ASSERT_TRUE((*again)->Close().ok());
}

TEST_F(CrashRecoveryTest, CrashWithSnapshotsAlsoRecoversConsistently) {
  ShardedServiceOptions options;
  options.num_shards = 2;
  options.batch_window = 3;
  options.snapshot_every = 4;
  const auto truth = RunWorkload(pristine_, options, 4242);
  const std::string full = ReadFileBytes(pristine_ + "/shard-0.wal");
  auto scan = ReadEventLog(pristine_ + "/shard-0.wal");
  ASSERT_TRUE(scan.ok());
  const std::size_t first_cut =
      static_cast<std::size_t>(scan->record_end.front());

  // Snapshots must not resurrect state past a torn WAL: sample offsets
  // across the file (every byte is covered by the no-snapshot test).
  for (std::size_t cut = first_cut; cut <= full.size(); cut += 13) {
    ResetWorkDir();
    WriteFileBytes(work_ + "/shard-0.wal", full.substr(0, cut));
    auto recovered = ShardedReleaseService::Recover(work_);
    ASSERT_TRUE(recovered.ok())
        << "offset " << cut << ": " << recovered.status();
    CheckRecoveredAgainstTruth(recovered->get(), truth, cut);
    if (testing::Test::HasFatalFailure()) {
      FAIL() << "first failing truncation offset: " << cut;
    }
    ASSERT_TRUE((*recovered)->Close().ok());
  }
}

TEST_F(CrashRecoveryTest, FlippedBytesAreCutNotTrusted) {
  ShardedServiceOptions options;
  options.num_shards = 1;
  options.batch_window = 2;
  const auto truth = RunWorkload(pristine_, options, 99);
  const std::string full = ReadFileBytes(pristine_ + "/shard-0.wal");
  Rng rng(5);
  for (int trial = 0; trial < 25; ++trial) {
    ResetWorkDir();
    std::string corrupt = full;
    // Flips land past the manifest record: corrupting the manifest
    // makes the log unidentifiable, which rightly fails Recover.
    const std::size_t pos = static_cast<std::size_t>(rng.UniformInt(
        64, static_cast<std::int64_t>(corrupt.size()) - 1));
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x10);
    WriteFileBytes(work_ + "/shard-0.wal", corrupt);
    auto recovered = ShardedReleaseService::Recover(work_);
    ASSERT_TRUE(recovered.ok())
        << "flip at " << pos << ": " << recovered.status();
    CheckRecoveredAgainstTruth(recovered->get(), truth, pos);
    if (testing::Test::HasFatalFailure()) {
      FAIL() << "corrupting byte " << pos << " broke recovery";
    }
    ASSERT_TRUE((*recovered)->Close().ok());
  }
}

TEST_F(CrashRecoveryTest, ParallelRecoveryIsBitwiseIdenticalToSerial) {
  // Shards are independent during replay, so fanning Recover over the
  // thread pool must change nothing: compare the exported accountant
  // blobs (exact text), reports, and per-shard counters of a serial
  // (1-thread) and a parallel (4-thread) recovery of the same logs,
  // with snapshots present on some shards.
  ShardedServiceOptions options;
  options.num_shards = 5;
  options.batch_window = 3;
  options.snapshot_every = 4;
  const auto truth = RunWorkload(pristine_, options, 424242);
  ASSERT_FALSE(truth.empty());

  // Distinct directories: a recovered service holds its WALs open for
  // append, so the two recoveries must not share files.
  ResetWorkDir();
  auto serial = ShardedReleaseService::Recover(work_, 1);
  ASSERT_TRUE(serial.ok()) << serial.status();
  auto parallel = ShardedReleaseService::Recover(pristine_, 4);
  ASSERT_TRUE(parallel.ok()) << parallel.status();

  ASSERT_EQ((*serial)->num_users(), (*parallel)->num_users());
  ASSERT_EQ((*serial)->horizon(), (*parallel)->horizon());
  for (const auto& [name, unused] : truth) {
    (void)unused;
    auto serial_report = (*serial)->Query(name);
    auto parallel_report = (*parallel)->Query(name);
    ASSERT_TRUE(serial_report.ok());
    ASSERT_TRUE(parallel_report.ok());
    EXPECT_EQ(serial_report->shard, parallel_report->shard) << name;
    EXPECT_EQ(serial_report->epsilons, parallel_report->epsilons) << name;
    EXPECT_EQ(serial_report->tpl_series, parallel_report->tpl_series)
        << name;
    EXPECT_EQ(serial_report->max_tpl, parallel_report->max_tpl) << name;
    // The serialized accountant image is the strictest equality we
    // have: every double exact, every matrix byte identical.
    auto serial_blob = (*serial)->ExportUser(name);
    auto parallel_blob = (*parallel)->ExportUser(name);
    ASSERT_TRUE(serial_blob.ok());
    ASSERT_TRUE(parallel_blob.ok());
    EXPECT_EQ(*serial_blob, *parallel_blob) << name;
  }
  for (std::size_t s = 0; s < options.num_shards; ++s) {
    const ShardStats serial_stats = (*serial)->shard_stats(s);
    const ShardStats parallel_stats = (*parallel)->shard_stats(s);
    EXPECT_EQ(serial_stats.users, parallel_stats.users) << "shard " << s;
    EXPECT_EQ(serial_stats.wal_records, parallel_stats.wal_records)
        << "shard " << s;
    EXPECT_EQ(serial_stats.replayed_records,
              parallel_stats.replayed_records)
        << "shard " << s;
    EXPECT_EQ(serial_stats.restored_from_snapshot,
              parallel_stats.restored_from_snapshot)
        << "shard " << s;
  }
  // Both recoveries must also still match the uninterrupted truth.
  CheckRecoveredAgainstTruth(parallel->get(), truth, 0);
  ASSERT_TRUE((*serial)->Close().ok());
  ASSERT_TRUE((*parallel)->Close().ok());
}

}  // namespace
}  // namespace server
}  // namespace tcdp
