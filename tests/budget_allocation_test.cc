// Unit tests for core/budget_allocation: Algorithms 2 and 3 on the
// paper's Figure 7 configuration, plus invariants audited through the
// accountant.

#include "core/budget_allocation.h"

#include <gtest/gtest.h>

#include "core/supremum.h"
#include "core/tpl_accountant.h"
#include "markov/smoothing.h"

namespace tcdp {
namespace {

// Figure 7 configuration: P^B = (0.8 .2; .2 .8), P^F = (0.8 .2; .1 .9),
// goal 1-DP_T.
TemporalCorrelations Fig7Correlations() {
  auto c = TemporalCorrelations::Both(
      StochasticMatrix::FromRows({{0.8, 0.2}, {0.2, 0.8}}),
      StochasticMatrix::FromRows({{0.8, 0.2}, {0.1, 0.9}}));
  EXPECT_TRUE(c.ok());
  return std::move(c).value();
}

TEST(BudgetAllocator, ValidatesAlpha) {
  EXPECT_FALSE(BudgetAllocator::Create(Fig7Correlations(), 0.0).ok());
  EXPECT_FALSE(BudgetAllocator::Create(Fig7Correlations(), -1.0).ok());
}

TEST(BudgetAllocator, NoCorrelationGivesFullBudget) {
  auto alloc = BudgetAllocator::Create(TemporalCorrelations::None(), 0.7);
  ASSERT_TRUE(alloc.ok());
  EXPECT_DOUBLE_EQ(alloc->budget().eps_steady, 0.7);
  auto sched = alloc->QuantifiedSchedule(4);
  ASSERT_TRUE(sched.ok());
  for (double e : *sched) EXPECT_DOUBLE_EQ(e, 0.7);
}

TEST(BudgetAllocator, StrongestBackwardCorrelationFails) {
  auto c = TemporalCorrelations::BackwardOnly(StochasticMatrix::Identity(2));
  auto alloc = BudgetAllocator::Create(c, 1.0);
  EXPECT_FALSE(alloc.ok());
  EXPECT_EQ(alloc.status().code(), StatusCode::kFailedPrecondition);
}

TEST(BudgetAllocator, StrongestForwardCorrelationFails) {
  auto c = TemporalCorrelations::ForwardOnly(StochasticMatrix::Identity(2));
  auto alloc = BudgetAllocator::Create(c, 1.0);
  EXPECT_FALSE(alloc.ok());
}

TEST(BudgetAllocator, BalanceEquationsHold) {
  auto alloc = BudgetAllocator::Create(Fig7Correlations(), 1.0);
  ASSERT_TRUE(alloc.ok());
  const BalancedBudget& b = alloc->budget();
  EXPECT_GT(b.eps_steady, 0.0);
  EXPECT_GT(b.alpha_b, 0.0);
  EXPECT_LE(b.alpha_b, 1.0 + 1e-9);
  // eps = alpha_b - L^B(alpha_b).
  TemporalLossFunction lb(Fig7Correlations().backward());
  EXPECT_NEAR(b.eps_steady, b.alpha_b - lb.Evaluate(b.alpha_b), 1e-6);
  // eps = alpha_f - L^F(alpha_f).
  TemporalLossFunction lf(Fig7Correlations().forward());
  EXPECT_NEAR(b.eps_steady, b.alpha_f - lf.Evaluate(b.alpha_f), 1e-6);
  // alpha split: alpha_b + alpha_f - eps = alpha (Equation 10).
  EXPECT_NEAR(b.alpha_b + b.alpha_f - b.eps_steady, 1.0, 1e-6);
}

TEST(BudgetAllocator, BackwardOnlyPutsWholeBoundOnBpl) {
  auto c = TemporalCorrelations::BackwardOnly(
      StochasticMatrix::FromRows({{0.8, 0.2}, {0.0, 1.0}}));
  auto alloc = BudgetAllocator::Create(c, 0.6459511);  // sup at eps=0.1
  ASSERT_TRUE(alloc.ok());
  // With no forward correlation, alpha_b = alpha and eps = alpha - L(alpha),
  // which for this matrix/alpha is the paper's eps = 0.1.
  EXPECT_NEAR(alloc->budget().alpha_b, 0.6459511, 1e-6);
  EXPECT_NEAR(alloc->budget().eps_steady, 0.1, 1e-5);
}

// Algorithm 2 contract: uniform schedule keeps TPL_t < alpha for every t
// and any horizon.
TEST(BudgetAllocator, UpperBoundScheduleBoundsTplForAnyHorizon) {
  auto alloc = BudgetAllocator::Create(Fig7Correlations(), 1.0);
  ASSERT_TRUE(alloc.ok());
  for (std::size_t horizon : {1u, 2u, 5u, 30u, 200u}) {
    auto schedule = alloc->UpperBoundSchedule(horizon);
    TplAccountant acc(Fig7Correlations());
    for (double e : schedule) ASSERT_TRUE(acc.RecordRelease(e).ok());
    EXPECT_LE(acc.MaxTpl(), 1.0 + 1e-8) << "horizon=" << horizon;
  }
}

// Algorithm 3 contract: TPL_t == alpha exactly at every time point.
TEST(BudgetAllocator, QuantifiedScheduleAchievesAlphaExactly) {
  auto alloc = BudgetAllocator::Create(Fig7Correlations(), 1.0);
  ASSERT_TRUE(alloc.ok());
  for (std::size_t horizon : {2u, 3u, 10u, 30u}) {
    auto schedule = alloc->QuantifiedSchedule(horizon);
    ASSERT_TRUE(schedule.ok());
    TplAccountant acc(Fig7Correlations());
    for (double e : *schedule) ASSERT_TRUE(acc.RecordRelease(e).ok());
    auto tpl = acc.TplSeries();
    for (std::size_t t = 0; t < tpl.size(); ++t) {
      EXPECT_NEAR(tpl[t], 1.0, 1e-6)
          << "horizon=" << horizon << " t=" << (t + 1);
    }
  }
}

TEST(BudgetAllocator, QuantifiedScheduleShape) {
  auto alloc = BudgetAllocator::Create(Fig7Correlations(), 1.0);
  ASSERT_TRUE(alloc.ok());
  auto s = alloc->QuantifiedSchedule(6);
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->size(), 6u);
  // First and last get more budget than the steady middle (the paper's
  // "more influential" observation).
  EXPECT_GT(s->front(), (*s)[1]);
  EXPECT_GT(s->back(), (*s)[1]);
  for (std::size_t i = 1; i + 1 < s->size(); ++i) {
    EXPECT_DOUBLE_EQ((*s)[i], alloc->budget().eps_steady);
  }
  EXPECT_FALSE(alloc->QuantifiedSchedule(0).ok());
  // Horizon 1: single release with full alpha.
  auto s1 = alloc->QuantifiedSchedule(1);
  ASSERT_TRUE(s1.ok());
  EXPECT_DOUBLE_EQ((*s1)[0], 1.0);
}

TEST(BudgetAllocator, QuantifiedBeatsUpperBoundOnShortHorizons) {
  // Figure 8(a): for short T the quantified schedule spends more budget
  // (less noise).
  auto alloc = BudgetAllocator::Create(Fig7Correlations(), 1.0);
  ASSERT_TRUE(alloc.ok());
  const std::size_t horizon = 5;
  auto q = alloc->QuantifiedSchedule(horizon);
  ASSERT_TRUE(q.ok());
  auto u = alloc->UpperBoundSchedule(horizon);
  double q_sum = 0.0, u_sum = 0.0;
  for (double e : *q) q_sum += e;
  for (double e : u) u_sum += e;
  EXPECT_GT(q_sum, u_sum);
}

TEST(BudgetAllocator, StrongerCorrelationsGetSmallerSteadyBudget) {
  double prev = 0.0;
  for (double s : {0.001, 0.01, 0.1, 1.0}) {
    auto m = SmoothedCorrelationMatrix(4, s);
    ASSERT_TRUE(m.ok());
    auto c = TemporalCorrelations::Both(*m, *m);
    ASSERT_TRUE(c.ok());
    auto alloc = BudgetAllocator::Create(*c, 2.0);
    ASSERT_TRUE(alloc.ok());
    EXPECT_GT(alloc->budget().eps_steady, prev) << "s=" << s;
    prev = alloc->budget().eps_steady;
  }
}

TEST(MinSchedule, TakesPerTimeMinimum) {
  auto m = MinSchedule({{0.5, 1.0, 0.2}, {0.4, 2.0, 0.3}});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(*m, (std::vector<double>{0.4, 1.0, 0.2}));
}

TEST(MinSchedule, Validates) {
  EXPECT_FALSE(MinSchedule({}).ok());
  EXPECT_FALSE(MinSchedule({{}}).ok());
  EXPECT_FALSE(MinSchedule({{0.1}, {0.1, 0.2}}).ok());
}

TEST(GroupDpSchedule, UniformAlphaOverT) {
  auto s = GroupDpSchedule(1.0, 4);
  ASSERT_EQ(s.size(), 4u);
  for (double e : s) EXPECT_DOUBLE_EQ(e, 0.25);
  EXPECT_TRUE(GroupDpSchedule(1.0, 0).empty());
}

}  // namespace
}  // namespace tcdp
