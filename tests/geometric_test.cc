// Unit tests for dp/geometric: the discrete (two-sided geometric)
// mechanism, including a likelihood-ratio DP audit.

#include "dp/geometric.h"

#include <cmath>

#include <gtest/gtest.h>

namespace tcdp {
namespace {

TEST(GeometricMechanism, CreateValidates) {
  EXPECT_FALSE(GeometricMechanism::Create(0.0).ok());
  EXPECT_FALSE(GeometricMechanism::Create(-1.0).ok());
  EXPECT_FALSE(GeometricMechanism::Create(1.0, 0).ok());
  EXPECT_FALSE(GeometricMechanism::Create(1.0, -2).ok());
  EXPECT_TRUE(GeometricMechanism::Create(0.5, 2).ok());
}

TEST(GeometricMechanism, RatioFormula) {
  auto m = GeometricMechanism::Create(1.0, 2);
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->ratio(), std::exp(-0.5), 1e-12);
}

TEST(GeometricMechanism, PmfSumsToOne) {
  auto m = GeometricMechanism::Create(0.7);
  ASSERT_TRUE(m.ok());
  double mass = 0.0;
  for (std::int64_t k = -200; k <= 200; ++k) mass += m->Pmf(k);
  EXPECT_NEAR(mass, 1.0, 1e-10);
}

TEST(GeometricMechanism, PmfSymmetricAndDecaying) {
  auto m = GeometricMechanism::Create(0.5);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->Pmf(3), m->Pmf(-3));
  EXPECT_GT(m->Pmf(0), m->Pmf(1));
  EXPECT_NEAR(m->Pmf(1) / m->Pmf(0), m->ratio(), 1e-12);
}

TEST(GeometricMechanism, EmpiricalMomentsMatchAnalytic) {
  Rng rng(90);
  auto m = GeometricMechanism::Create(0.4);
  ASSERT_TRUE(m.ok());
  const int kSamples = 300000;
  double abs_acc = 0.0, sq_acc = 0.0, acc = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const auto k = m->SampleNoise(&rng);
    acc += static_cast<double>(k);
    abs_acc += static_cast<double>(std::llabs(k));
    sq_acc += static_cast<double>(k) * static_cast<double>(k);
  }
  EXPECT_NEAR(acc / kSamples, 0.0, 0.03);  // symmetric
  EXPECT_NEAR(abs_acc / kSamples, m->ExpectedAbsNoise(), 0.05);
  EXPECT_NEAR(sq_acc / kSamples, m->NoiseVariance(), 0.35);
}

TEST(GeometricMechanism, PerturbVectorKeepsIntegrality) {
  Rng rng(91);
  auto m = GeometricMechanism::Create(1.0);
  ASSERT_TRUE(m.ok());
  auto out = m->PerturbVector({3.0, 0.0, 12.0}, &rng);
  ASSERT_EQ(out.size(), 3u);
  for (double v : out) {
    EXPECT_DOUBLE_EQ(v, std::round(v)) << "non-integer release";
  }
}

// The DP property: Pmf(k) / Pmf(k - sensitivity) <= e^eps for all k.
TEST(GeometricMechanism, LikelihoodRatioBounded) {
  const double eps = 0.8;
  const int sensitivity = 2;
  auto m = GeometricMechanism::Create(eps, sensitivity);
  ASSERT_TRUE(m.ok());
  for (std::int64_t k = -30; k <= 30; ++k) {
    const double ratio = m->Pmf(k) / m->Pmf(k - sensitivity);
    EXPECT_LE(std::log(ratio), eps + 1e-12) << "k=" << k;
    EXPECT_GE(std::log(ratio), -eps - 1e-12) << "k=" << k;
  }
}

// Empirical audit, mirroring the Laplace one: histogram outputs under
// neighboring inputs and check observed log-odds.
TEST(GeometricMechanism, EmpiricalPrivacyAudit) {
  Rng rng(92);
  const double eps = 1.0;
  auto m = GeometricMechanism::Create(eps);
  ASSERT_TRUE(m.ok());
  const int kSamples = 300000;
  const int lo = -6, hi = 8;
  std::vector<double> h0(hi - lo + 1, 1.0), h1(hi - lo + 1, 1.0);
  for (int i = 0; i < kSamples; ++i) {
    const auto r0 = m->Perturb(0, &rng);
    const auto r1 = m->Perturb(1, &rng);
    if (r0 >= lo && r0 <= hi) h0[static_cast<std::size_t>(r0 - lo)] += 1.0;
    if (r1 >= lo && r1 <= hi) h1[static_cast<std::size_t>(r1 - lo)] += 1.0;
  }
  for (std::size_t b = 0; b < h0.size(); ++b) {
    // Only bins with enough mass for the log-odds estimate to be stable
    // (tail bins carry ~100 samples and +-10% noise).
    if (h0[b] < 2000.0 || h1[b] < 2000.0) continue;
    EXPECT_LE(std::fabs(std::log(h0[b] / h1[b])), eps + 0.1) << "bin " << b;
  }
}

TEST(GeometricMechanism, SmallerEpsilonMoreNoise) {
  auto tight = GeometricMechanism::Create(2.0);
  auto loose = GeometricMechanism::Create(0.2);
  ASSERT_TRUE(tight.ok());
  ASSERT_TRUE(loose.ok());
  EXPECT_LT(tight->ExpectedAbsNoise(), loose->ExpectedAbsNoise());
}

}  // namespace
}  // namespace tcdp
