// Unit tests for dp/database: snapshots and the event-level neighboring
// relation.

#include "dp/database.h"

#include <gtest/gtest.h>

namespace tcdp {
namespace {

TEST(Database, CreateValidatesDomain) {
  EXPECT_FALSE(Database::Create({0, 1}, 0).ok());
  EXPECT_FALSE(Database::Create({0, 5}, 3).ok());
  EXPECT_TRUE(Database::Create({0, 2}, 3).ok());
  EXPECT_TRUE(Database::Create({}, 3).ok());  // empty user set is legal
}

TEST(Database, AccessorsWork) {
  auto db = Database::Create({1, 0, 1}, 2);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_users(), 3u);
  EXPECT_EQ(db->domain_size(), 2u);
  EXPECT_EQ(db->value(0), 1u);
  EXPECT_EQ(db->value(1), 0u);
}

TEST(Database, HistogramCountsValues) {
  auto db = Database::Create({0, 0, 2, 1, 0}, 3);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->Histogram(), (std::vector<double>{3, 1, 1}));
}

TEST(Database, Figure1CountsAtTime1) {
  // Fig 1(a) column t=1: u1=loc3, u2=loc2, u3=loc2, u4=loc4.
  auto db = Database::Create({2, 1, 1, 3}, 5);
  ASSERT_TRUE(db.ok());
  // Fig 1(c) column t=1: loc1..loc5 = 0, 2, 1, 1, 0.
  EXPECT_EQ(db->Histogram(), (std::vector<double>{0, 2, 1, 1, 0}));
}

TEST(Database, WithValueBuildsNeighbor) {
  auto db = Database::Create({0, 1}, 3);
  ASSERT_TRUE(db.ok());
  auto n = db->WithValue(0, 2);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->value(0), 2u);
  EXPECT_EQ(db->value(0), 0u);  // original untouched
  EXPECT_TRUE(AreNeighbors(*db, *n));
}

TEST(Database, WithValueValidates) {
  auto db = Database::Create({0, 1}, 3);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->WithValue(5, 1).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(db->WithValue(0, 7).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(AreNeighbors, RequiresExactlyOneDifference) {
  auto a = Database::Create({0, 1, 2}, 3);
  auto b = Database::Create({0, 1, 2}, 3);   // identical
  auto c = Database::Create({1, 1, 2}, 3);   // one diff
  auto d = Database::Create({1, 0, 2}, 3);   // two diffs
  ASSERT_TRUE(a.ok() && b.ok() && c.ok() && d.ok());
  EXPECT_FALSE(AreNeighbors(*a, *b));
  EXPECT_TRUE(AreNeighbors(*a, *c));
  EXPECT_FALSE(AreNeighbors(*a, *d));
}

TEST(AreNeighbors, ShapeMismatchIsNotNeighboring) {
  auto a = Database::Create({0, 1}, 3);
  auto b = Database::Create({0}, 3);
  auto c = Database::Create({0, 1}, 4);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_FALSE(AreNeighbors(*a, *b));
  EXPECT_FALSE(AreNeighbors(*a, *c));
}

}  // namespace
}  // namespace tcdp
