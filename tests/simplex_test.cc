// Unit tests for lp/simplex: two-phase simplex on hand-solvable programs,
// infeasible/unbounded detection, and degenerate instances.

#include "lp/simplex.h"

#include <gtest/gtest.h>

namespace tcdp {
namespace {

LinearConstraint Le(std::vector<double> coeffs, double rhs) {
  return LinearConstraint{std::move(coeffs), Relation::kLessEqual, rhs};
}
LinearConstraint Ge(std::vector<double> coeffs, double rhs) {
  return LinearConstraint{std::move(coeffs), Relation::kGreaterEqual, rhs};
}
LinearConstraint Eq(std::vector<double> coeffs, double rhs) {
  return LinearConstraint{std::move(coeffs), Relation::kEqual, rhs};
}

TEST(Simplex, RejectsMalformedInput) {
  LinearProgram empty;
  EXPECT_FALSE(SimplexSolver::Solve(empty).ok());

  LinearProgram arity;
  arity.objective = {1.0, 1.0};
  arity.constraints.push_back(Le({1.0}, 1.0));
  EXPECT_FALSE(SimplexSolver::Solve(arity).ok());

  LinearProgram nan_obj;
  nan_obj.objective = {std::numeric_limits<double>::quiet_NaN()};
  EXPECT_FALSE(SimplexSolver::Solve(nan_obj).ok());
}

TEST(Simplex, TextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> (2, 6), 36.
  LinearProgram lp;
  lp.objective = {3.0, 5.0};
  lp.constraints = {Le({1, 0}, 4), Le({0, 2}, 12), Le({3, 2}, 18)};
  auto sol = SimplexSolver::Solve(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol->objective_value, 36.0, 1e-9);
  EXPECT_NEAR(sol->x[0], 2.0, 1e-9);
  EXPECT_NEAR(sol->x[1], 6.0, 1e-9);
}

TEST(Simplex, MinimizationViaFlag) {
  // min x + y s.t. x + 2y >= 4, 3x + y >= 6 -> vertex (8/5, 6/5), value 14/5.
  LinearProgram lp;
  lp.maximize = false;
  lp.objective = {1.0, 1.0};
  lp.constraints = {Ge({1, 2}, 4), Ge({3, 1}, 6)};
  auto sol = SimplexSolver::Solve(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol->objective_value, 14.0 / 5.0, 1e-9);
}

TEST(Simplex, EqualityConstraintHandled) {
  // max x + y s.t. x + y = 5, x <= 3 -> 5 (any split), e.g. x=3,y=2.
  LinearProgram lp;
  lp.objective = {1.0, 1.0};
  lp.constraints = {Eq({1, 1}, 5), Le({1, 0}, 3)};
  auto sol = SimplexSolver::Solve(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol->objective_value, 5.0, 1e-9);
  EXPECT_NEAR(sol->x[0] + sol->x[1], 5.0, 1e-9);
}

TEST(Simplex, NegativeRhsNormalized) {
  // -x <= -2 means x >= 2; max -x -> x = 2, value -2.
  LinearProgram lp;
  lp.objective = {-1.0};
  lp.constraints = {Le({-1}, -2), Le({1}, 10)};
  auto sol = SimplexSolver::Solve(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol->x[0], 2.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  // x <= 1 and x >= 3 cannot both hold.
  LinearProgram lp;
  lp.objective = {1.0};
  lp.constraints = {Le({1}, 1), Ge({1}, 3)};
  auto sol = SimplexSolver::Solve(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  // max x with only x >= 1.
  LinearProgram lp;
  lp.objective = {1.0};
  lp.constraints = {Ge({1}, 1)};
  auto sol = SimplexSolver::Solve(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->status, SolveStatus::kUnbounded);
}

TEST(Simplex, ZeroObjectiveReturnsFeasiblePoint) {
  LinearProgram lp;
  lp.objective = {0.0, 0.0};
  lp.constraints = {Eq({1, 1}, 2)};
  auto sol = SimplexSolver::Solve(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol->x[0] + sol->x[1], 2.0, 1e-9);
}

TEST(Simplex, DegenerateProgramTerminates) {
  // Highly degenerate: many constraints active at the origin.
  LinearProgram lp;
  lp.objective = {1.0, 1.0, 1.0};
  lp.constraints = {Le({1, -1, 0}, 0), Le({0, 1, -1}, 0), Le({-1, 0, 1}, 0),
                    Le({1, 0, 0}, 1),  Le({0, 1, 0}, 1),  Le({0, 0, 1}, 1)};
  auto sol = SimplexSolver::Solve(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol->objective_value, 3.0, 1e-9);
}

TEST(Simplex, BlandOnlyModeSolvesToo) {
  LinearProgram lp;
  lp.objective = {3.0, 5.0};
  lp.constraints = {Le({1, 0}, 4), Le({0, 2}, 12), Le({3, 2}, 18)};
  SimplexSolver::Options opts;
  opts.dantzig_pricing = false;
  auto sol = SimplexSolver::Solve(lp, opts);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->objective_value, 36.0, 1e-9);
}

TEST(Simplex, IterationLimitReported) {
  LinearProgram lp;
  lp.objective = {3.0, 5.0};
  lp.constraints = {Le({1, 0}, 4), Le({0, 2}, 12), Le({3, 2}, 18)};
  SimplexSolver::Options opts;
  opts.max_iterations = 1;
  auto sol = SimplexSolver::Solve(lp, opts);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->status, SolveStatus::kIterationLimit);
}

TEST(Simplex, RedundantEqualityRowsHandled) {
  // Same equality twice: phase 1 leaves a redundant artificial row.
  LinearProgram lp;
  lp.objective = {1.0, 0.0};
  lp.constraints = {Eq({1, 1}, 3), Eq({1, 1}, 3), Le({1, 0}, 2)};
  auto sol = SimplexSolver::Solve(lp);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol->x[0], 2.0, 1e-9);
}

TEST(SolveStatusToString, Names) {
  EXPECT_STREQ(SolveStatusToString(SolveStatus::kOptimal), "Optimal");
  EXPECT_STREQ(SolveStatusToString(SolveStatus::kInfeasible), "Infeasible");
  EXPECT_STREQ(SolveStatusToString(SolveStatus::kUnbounded), "Unbounded");
  EXPECT_STREQ(SolveStatusToString(SolveStatus::kIterationLimit),
               "IterationLimit");
}

}  // namespace
}  // namespace tcdp
