// Corruption matrix for accountant persistence: truncated and mutated
// v1/v2 blobs must come back as Status — never assert, crash, or
// allocate unboundedly — and the bank's image-restore path must reject
// every class of inconsistent image.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/accountant_bank.h"
#include "core/tpl_accountant.h"
#include "markov/stochastic_matrix.h"

namespace tcdp {
namespace {

StochasticMatrix TestMatrix() {
  return StochasticMatrix::FromRows({{0.8, 0.2}, {0.3, 0.7}});
}

TemporalCorrelations TestCorrelations() {
  return TemporalCorrelations::Both(TestMatrix(), TestMatrix()).value();
}

std::string SerializedFixture() {
  TplAccountant accountant(TestCorrelations());
  EXPECT_TRUE(accountant.RecordRelease(0.1).ok());
  EXPECT_TRUE(accountant.RecordSkip().ok());
  EXPECT_TRUE(accountant.RecordRelease(0.2).ok());
  return accountant.Serialize();
}

TEST(AccountantCorruptionMatrix, EveryTruncationFailsCleanly) {
  const std::string blob = SerializedFixture();
  // Every strict prefix must be rejected with a Status. (The final few
  // characters of a trailing number are the one legitimate ambiguity:
  // "0.2" truncated to "0." still parses as a shorter valid number, so
  // prefixes that happen to parse may succeed — but they must never
  // crash. We assert failure for every prefix that drops a whole line.)
  for (std::size_t len = 0; len < blob.size(); ++len) {
    const std::string prefix = blob.substr(0, len);
    auto image = ParseAccountantImage(prefix);
    auto restored = TplAccountant::Deserialize(prefix);
    if (prefix.find("epsilons") == std::string::npos) {
      EXPECT_FALSE(image.ok()) << "prefix of " << len << " parsed";
      EXPECT_FALSE(restored.ok()) << "prefix of " << len << " restored";
    }
  }
}

TEST(AccountantCorruptionMatrix, HostileCountsAreBounded) {
  // A flipped digit must not turn into an exabyte allocation.
  EXPECT_FALSE(ParseAccountantImage("tcdp-accountant-v1\n"
                                    "backward 0\nforward 0\n"
                                    "epsilons 999999999999999999\n0.1\n")
                   .ok());
  EXPECT_FALSE(ParseAccountantImage("tcdp-accountant-v1\n"
                                    "backward 999999999999999999\n")
                   .ok());
  // Negative counts wrap to huge unsigned values; same guard.
  EXPECT_FALSE(ParseAccountantImage("tcdp-accountant-v1\n"
                                    "backward 0\nforward 0\n"
                                    "epsilons -7\n")
                   .ok());
}

TEST(AccountantCorruptionMatrix, HostileValuesRejected) {
  const std::string head = "tcdp-accountant-v1\nbackward 0\nforward 0\n";
  EXPECT_FALSE(ParseAccountantImage(head + "epsilons 1\nnan\n").ok());
  EXPECT_FALSE(ParseAccountantImage(head + "epsilons 1\ninf\n").ok());
  EXPECT_FALSE(ParseAccountantImage(head + "epsilons 1\n-0.5\n").ok());
  EXPECT_FALSE(ParseAccountantImage(head + "epsilons 1\npotato\n").ok());
  EXPECT_FALSE(
      ParseAccountantImage("tcdp-accountant-v2\nquantization nan\n" +
                           std::string("backward 0\nforward 0\nepsilons 0\n"))
          .ok());
  // Matrix rows that are not stochastic.
  EXPECT_FALSE(ParseAccountantImage("tcdp-accountant-v1\n"
                                    "backward 2\n0.5,0.5\n0.9,0.9\n"
                                    "forward 0\nepsilons 0\n")
                   .ok());
  // Declared size disagreeing with the actual row count.
  EXPECT_FALSE(ParseAccountantImage("tcdp-accountant-v1\n"
                                    "backward 3\n0.5,0.5\n0.5,0.5\n"
                                    "forward 0\nepsilons 0\n")
                   .ok());
}

TEST(AccountantCorruptionMatrix, FieldMutationsFailOrRoundTrip) {
  const std::string blob = SerializedFixture();
  // Swap each keyword for garbage: structural corruption.
  for (const char* keyword : {"quantization", "backward", "forward",
                              "epsilons"}) {
    std::string mutated = blob;
    const std::size_t pos = mutated.find(keyword);
    ASSERT_NE(pos, std::string::npos);
    mutated[pos] = 'X';
    EXPECT_FALSE(ParseAccountantImage(mutated).ok()) << keyword;
  }
  // An unharmed blob still parses and replays bitwise.
  auto image = ParseAccountantImage(blob);
  ASSERT_TRUE(image.ok()) << image.status();
  EXPECT_EQ(image->epsilons, (std::vector<double>{0.1, 0.0, 0.2}));
  auto restored = TplAccountant::Deserialize(blob);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->Serialize(), blob);
}

// ---------------------------------------------------------------- bank

AccountantBank::Image LiveImage(AccountantBank* bank) {
  bank->AddUser(TestCorrelations());
  bank->AddUser(TestCorrelations());
  EXPECT_TRUE(bank->RecordRelease(0.1).ok());
  EXPECT_TRUE(bank->RecordRelease(0.2, {0}).ok());
  EXPECT_TRUE(bank->RecordRelease(0.3).ok());
  return bank->ExportImage();
}

TEST(AccountantBankRestore, RoundTripsBitwise) {
  AccountantBank bank;
  const AccountantBank::Image image = LiveImage(&bank);
  auto restored = AccountantBank::Restore(image);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->num_users(), bank.num_users());
  for (std::size_t u = 0; u < bank.num_users(); ++u) {
    EXPECT_EQ(restored->TplSeriesFor(u), bank.TplSeriesFor(u)) << u;
    EXPECT_EQ(restored->BplSeriesFor(u), bank.BplSeriesFor(u)) << u;
    EXPECT_EQ(restored->UserEpsSum(u), bank.UserEpsSum(u)) << u;
  }
}

TEST(AccountantBankRestore, RejectsInconsistentImages) {
  AccountantBank bank;
  const AccountantBank::Image good = LiveImage(&bank);

  {
    AccountantBank::Image bad = good;
    bad.participation.pop_back();  // row/schedule length mismatch
    EXPECT_FALSE(AccountantBank::Restore(bad).ok());
  }
  {
    AccountantBank::Image bad = good;
    bad.schedule[1] = -0.2;  // non-positive budget
    EXPECT_FALSE(AccountantBank::Restore(bad).ok());
  }
  {
    AccountantBank::Image bad = good;
    bad.schedule[1] = std::nan("");  // non-finite budget
    EXPECT_FALSE(AccountantBank::Restore(bad).ok());
  }
  {
    AccountantBank::Image bad = good;
    bad.users[0].join = 99;  // join past the horizon
    EXPECT_FALSE(AccountantBank::Restore(bad).ok());
  }
  {
    AccountantBank::Image bad = good;
    bad.users[1].eps_sum += 0.25;  // columns disagree with masks
    EXPECT_FALSE(AccountantBank::Restore(bad).ok());
  }
  {
    AccountantBank::Image bad = good;
    bad.users[0].bpl_last = -1.0;  // negative running state
    EXPECT_FALSE(AccountantBank::Restore(bad).ok());
  }
  {
    AccountantBank::Image bad = good;
    bad.participation[0] = PackedMask::FromWords(
        std::vector<std::uint64_t>(64, ~std::uint64_t{0}));  // too wide
    EXPECT_FALSE(AccountantBank::Restore(bad).ok());
  }
}

TEST(AccountantBankSerializeUser, MatchesStandaloneAccountant) {
  AccountantBank bank;
  (void)LiveImage(&bank);
  for (std::size_t u = 0; u < bank.num_users(); ++u) {
    auto restored = TplAccountant::Deserialize(bank.SerializeUser(u));
    ASSERT_TRUE(restored.ok()) << restored.status();
    EXPECT_EQ(restored->TplSeries(), bank.TplSeriesFor(u)) << u;
    EXPECT_EQ(restored->UserLevelTpl(), bank.UserEpsSum(u)) << u;
  }
}

TEST(AccountantBankParticipation, LongHistoriesCompress) {
  AccountantBank bank;
  for (int u = 0; u < 2048; ++u) bank.AddUser(TestCorrelations());
  // Sparse schedule: a fixed small clique participates, everyone else
  // skips — rows are mostly zero words and should RLE away.
  const std::vector<std::size_t> clique = {0, 1, 2};
  for (int t = 0; t < 200; ++t) {
    ASSERT_TRUE(bank.RecordRelease(0.01, clique).ok());
  }
  const std::size_t dense_bytes = 200 * ((2048 + 63) / 64) * 8;
  EXPECT_LT(bank.ParticipationBytes(), dense_bytes / 4)
      << "RLE rows should be far below the dense footprint";
  // And the compressed rows still answer membership exactly.
  EXPECT_TRUE(bank.Participated(2, 150));
  EXPECT_FALSE(bank.Participated(3, 150));
  EXPECT_EQ(bank.UserEpsSum(3), 0.0);
}

}  // namespace
}  // namespace tcdp
