// Unit tests for core/online_planner: the streaming alpha-DP_T budget
// rule eps_t <= alpha_b - L^B(BPL_{t-1}), its recovery behaviour after
// quiet periods, and exhaustive audits that the contract holds under
// adversarial spend patterns.

#include "core/online_planner.h"

#include <gtest/gtest.h>

#include "markov/smoothing.h"

namespace tcdp {
namespace {

TemporalCorrelations MildBoth() {
  auto p = StochasticMatrix::FromRows({{0.8, 0.2}, {0.1, 0.9}});
  auto c = TemporalCorrelations::Both(p, p);
  EXPECT_TRUE(c.ok());
  return std::move(c).value();
}

TEST(OnlineTplPlanner, CreatePropagatesAllocatorErrors) {
  auto strongest =
      TemporalCorrelations::BackwardOnly(StochasticMatrix::Identity(2));
  EXPECT_FALSE(OnlineTplPlanner::Create(strongest, 1.0).ok());
}

TEST(OnlineTplPlanner, FirstStepAffordsFullBackwardBound) {
  auto planner = OnlineTplPlanner::Create(MildBoth(), 1.0);
  ASSERT_TRUE(planner.ok());
  // With no history there is no accumulated BPL: the whole alpha_b is
  // affordable (a one-shot release may spend it all).
  EXPECT_NEAR(planner->MaxAffordableEpsilon(), planner->budget().alpha_b,
              1e-12);
}

TEST(OnlineTplPlanner, RecordValidates) {
  auto planner = OnlineTplPlanner::Create(MildBoth(), 1.0);
  ASSERT_TRUE(planner.ok());
  EXPECT_FALSE(planner->RecordRelease(0.0).ok());
  EXPECT_FALSE(planner->RecordRelease(-1.0).ok());
  const double too_much = planner->budget().alpha_b * 1.01;
  auto s = planner->RecordRelease(too_much);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(planner->steps_taken(), 0u);
}

TEST(OnlineTplPlanner, GreedyStreamingNeverBreaksContract) {
  auto planner = OnlineTplPlanner::Create(MildBoth(), 1.0);
  ASSERT_TRUE(planner.ok());
  for (int t = 0; t < 100; ++t) {
    auto eps = planner->RecordMaxRelease();
    ASSERT_TRUE(eps.ok()) << "t=" << t;
    EXPECT_GT(*eps, 0.0);
  }
  EXPECT_LE(planner->AuditedMaxTpl(), 1.0 + 1e-7);
}

TEST(OnlineTplPlanner, GreedyScheduleConvergesToSteadyBudget) {
  // After the first (large) spend the rule settles on Algorithm 2's
  // eps* exactly: alpha_b - L^B(alpha_b).
  auto planner = OnlineTplPlanner::Create(MildBoth(), 1.0);
  ASSERT_TRUE(planner.ok());
  auto first = planner->RecordMaxRelease();
  ASSERT_TRUE(first.ok());
  EXPECT_NEAR(*first, planner->budget().alpha_b, 1e-9);
  for (int t = 0; t < 30; ++t) {
    auto eps = planner->RecordMaxRelease();
    ASSERT_TRUE(eps.ok());
    EXPECT_NEAR(*eps, planner->budget().eps_steady, 1e-9) << "t=" << t;
  }
}

TEST(OnlineTplPlanner, RecoversBudgetAfterQuietPeriods) {
  // Tiny spends leave BPL low; the affordable budget afterwards exceeds
  // the steady eps* — the adaptive advantage over Algorithm 2.
  auto planner = OnlineTplPlanner::Create(MildBoth(), 1.0);
  ASSERT_TRUE(planner.ok());
  const double eps_star = planner->budget().eps_steady;
  ASSERT_TRUE(planner->RecordRelease(eps_star / 10).ok());
  ASSERT_TRUE(planner->RecordRelease(eps_star / 10).ok());
  EXPECT_GT(planner->MaxAffordableEpsilon(), eps_star * 1.5);
  // Take the recovered budget; the audit must still respect alpha after
  // a long steady tail.
  ASSERT_TRUE(planner->RecordMaxRelease().ok());
  for (int t = 0; t < 40; ++t) ASSERT_TRUE(planner->RecordMaxRelease().ok());
  EXPECT_LE(planner->AuditedMaxTpl(), 1.0 + 1e-7);
}

TEST(OnlineTplPlanner, BurstAfterQuietIsSafeEndToEnd) {
  // The scenario that motivated the rule's proof: steady spending, a
  // quiet dip, then the planner allows a burst above eps*; the exact
  // accountant confirms the contract held at every time point.
  auto planner = OnlineTplPlanner::Create(MildBoth(), 1.0);
  ASSERT_TRUE(planner.ok());
  const double eps_star = planner->budget().eps_steady;
  ASSERT_TRUE(planner->RecordRelease(eps_star).ok());
  for (int t = 0; t < 10; ++t) {
    ASSERT_TRUE(planner->RecordRelease(eps_star).ok());
  }
  ASSERT_TRUE(planner->RecordRelease(eps_star / 50).ok());  // quiet dip
  const double burst = planner->MaxAffordableEpsilon();
  EXPECT_GT(burst, eps_star);  // a genuine burst
  ASSERT_TRUE(planner->RecordRelease(burst).ok());
  for (int t = 0; t < 20; ++t) ASSERT_TRUE(planner->RecordMaxRelease().ok());
  EXPECT_LE(planner->AuditedMaxTpl(), 1.0 + 1e-7);
}

TEST(OnlineTplPlanner, RandomCompliantPatternsAlwaysAudit) {
  // Fuzz the rule: any spend pattern the planner accepts must audit
  // within alpha, across correlations and seeds.
  for (double s : {0.05, 0.3, 1.0}) {
    auto m = SmoothedCorrelationMatrix(3, s);
    ASSERT_TRUE(m.ok());
    auto corr = TemporalCorrelations::Both(*m, *m);
    ASSERT_TRUE(corr.ok());
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      auto planner = OnlineTplPlanner::Create(*corr, 1.5);
      ASSERT_TRUE(planner.ok());
      Rng rng(seed * 17);
      for (int t = 0; t < 60; ++t) {
        const double cap = planner->MaxAffordableEpsilon();
        ASSERT_GT(cap, 0.0);
        // Spend a random fraction of the affordable budget.
        const double eps = cap * (0.02 + 0.98 * rng.Uniform());
        ASSERT_TRUE(planner->RecordRelease(eps).ok())
            << "s=" << s << " seed=" << seed << " t=" << t;
      }
      EXPECT_LE(planner->AuditedMaxTpl(), 1.5 + 1e-7)
          << "s=" << s << " seed=" << seed;
    }
  }
}

TEST(OnlineTplPlanner, DominatesAlgorithm2OnBurstyWorkloads) {
  // Cumulative spent budget under the adaptive rule is at least the
  // uniform eps* schedule's when the stream starts quiet.
  auto planner = OnlineTplPlanner::Create(MildBoth(), 1.0);
  ASSERT_TRUE(planner.ok());
  const double eps_star = planner->budget().eps_steady;
  double adaptive_total = 0.0;
  // 5 quiet steps then greedy.
  for (int t = 0; t < 5; ++t) {
    ASSERT_TRUE(planner->RecordRelease(eps_star / 4).ok());
    adaptive_total += eps_star / 4;
  }
  for (int t = 0; t < 10; ++t) {
    auto eps = planner->RecordMaxRelease();
    ASSERT_TRUE(eps.ok());
    adaptive_total += *eps;
  }
  // Uniform Algorithm 2 over the same 15 steps, same quiet prefix.
  const double uniform_total = 5 * (eps_star / 4) + 10 * eps_star;
  EXPECT_GT(adaptive_total, uniform_total);
  EXPECT_LE(planner->AuditedMaxTpl(), 1.0 + 1e-7);
}

}  // namespace
}  // namespace tcdp
