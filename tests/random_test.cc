// Unit tests for common/random: determinism and distributional sanity.

#include "common/random.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"

namespace tcdp {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform() == b.Uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, LaplaceMomentsMatchTheory) {
  // E|X| = b, Var = 2 b^2 for Lap(b).
  Rng rng(42);
  const double b = 2.5;
  const int kSamples = 200000;
  double abs_acc = 0.0, sq_acc = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.Laplace(b);
    abs_acc += std::fabs(x);
    sq_acc += x * x;
  }
  EXPECT_NEAR(abs_acc / kSamples, b, 0.05);
  EXPECT_NEAR(sq_acc / kSamples, 2 * b * b, 0.3);
}

TEST(Rng, LaplaceSymmetric) {
  Rng rng(43);
  int pos = 0;
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.Laplace(1.0) > 0.0) ++pos;
  }
  EXPECT_NEAR(static_cast<double>(pos) / kSamples, 0.5, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(44);
  const double rate = 4.0;
  double acc = 0.0;
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.Exponential(rate);
    EXPECT_GE(x, 0.0);
    acc += x;
  }
  EXPECT_NEAR(acc / kSamples, 1.0 / rate, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng rng(45);
  double acc = 0.0, sq = 0.0;
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.Gaussian(1.0, 2.0);
    acc += x;
    sq += (x - 1.0) * (x - 1.0);
  }
  EXPECT_NEAR(acc / kSamples, 1.0, 0.05);
  EXPECT_NEAR(sq / kSamples, 4.0, 0.1);
}

TEST(Rng, DiscreteMatchesWeights) {
  Rng rng(46);
  std::vector<double> probs = {0.1, 0.2, 0.7};
  std::vector<int> counts(3, 0);
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    auto idx = rng.Discrete(probs);
    ASSERT_TRUE(idx.ok());
    counts[*idx]++;
  }
  for (std::size_t k = 0; k < probs.size(); ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / kSamples, probs[k], 0.01);
  }
}

TEST(Rng, DiscreteAcceptsUnnormalizedWeights) {
  Rng rng(47);
  auto idx = rng.Discrete({2.0, 6.0});  // 25% / 75%
  ASSERT_TRUE(idx.ok());
}

TEST(Rng, DiscreteRejectsBadInput) {
  Rng rng(48);
  EXPECT_FALSE(rng.Discrete({}).ok());
  EXPECT_FALSE(rng.Discrete({0.0, 0.0}).ok());
  EXPECT_FALSE(rng.Discrete({0.5, -0.5}).ok());
}

TEST(Rng, DiscreteDegenerateAlwaysPicksMassPoint) {
  Rng rng(49);
  for (int i = 0; i < 100; ++i) {
    auto idx = rng.Discrete({0.0, 1.0, 0.0});
    ASSERT_TRUE(idx.ok());
    EXPECT_EQ(*idx, 1u);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(50);
  std::vector<int> v = {1, 2, 3, 4, 5};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

}  // namespace
}  // namespace tcdp
