// Unit tests for markov/markov_chain.

#include "markov/markov_chain.h"

#include <gtest/gtest.h>

#include "common/math_util.h"

namespace tcdp {
namespace {

StochasticMatrix TwoState() {
  return StochasticMatrix::FromRows({{0.9, 0.1}, {0.5, 0.5}});
}

TEST(MarkovChain, CreateValidatesInitialSize) {
  auto bad = MarkovChain::Create({1.0}, TwoState());
  EXPECT_FALSE(bad.ok());
}

TEST(MarkovChain, CreateValidatesInitialDistribution) {
  auto bad = MarkovChain::Create({0.7, 0.7}, TwoState());
  EXPECT_FALSE(bad.ok());
}

TEST(MarkovChain, WithUniformInitial) {
  auto chain = MarkovChain::WithUniformInitial(TwoState());
  EXPECT_EQ(chain.num_states(), 2u);
  EXPECT_DOUBLE_EQ(chain.initial()[0], 0.5);
}

TEST(MarkovChain, SimulateProducesValidStatesAndLength) {
  Rng rng(3);
  auto chain = MarkovChain::WithUniformInitial(TwoState());
  auto traj = chain.Simulate(50, &rng);
  ASSERT_EQ(traj.size(), 50u);
  for (std::size_t s : traj) EXPECT_LT(s, 2u);
}

TEST(MarkovChain, DeterministicChainSimulatesCycle) {
  Rng rng(4);
  auto perm = StochasticMatrix::Permutation({1, 2, 0});
  ASSERT_TRUE(perm.ok());
  auto chain = MarkovChain::Create({1.0, 0.0, 0.0}, *perm);
  ASSERT_TRUE(chain.ok());
  auto traj = chain->Simulate(6, &rng);
  EXPECT_EQ(traj, (Trajectory{0, 1, 2, 0, 1, 2}));
}

TEST(MarkovChain, MarginalAtEvolvesByTransition) {
  auto chain = MarkovChain::Create({1.0, 0.0}, TwoState());
  ASSERT_TRUE(chain.ok());
  auto m1 = chain->MarginalAt(1);
  EXPECT_DOUBLE_EQ(m1[0], 1.0);
  auto m2 = chain->MarginalAt(2);
  EXPECT_DOUBLE_EQ(m2[0], 0.9);
  EXPECT_DOUBLE_EQ(m2[1], 0.1);
  auto m3 = chain->MarginalAt(3);
  EXPECT_NEAR(m3[0], 0.9 * 0.9 + 0.1 * 0.5, 1e-12);
}

TEST(MarkovChain, StationaryDistributionFixedPoint) {
  auto chain = MarkovChain::WithUniformInitial(TwoState());
  auto pi = chain.StationaryDistribution();
  ASSERT_TRUE(pi.ok());
  // pi = pi P.
  auto propagated = chain.transition().Propagate(*pi);
  EXPECT_LT(L1Distance(*pi, propagated), 1e-9);
  // Hand-solved: pi = (5/6, 1/6).
  EXPECT_NEAR((*pi)[0], 5.0 / 6.0, 1e-9);
}

TEST(MarkovChain, StationaryFailsForPeriodicChain) {
  auto swap = StochasticMatrix::FromRows({{0.0, 1.0}, {1.0, 0.0}});
  auto chain = MarkovChain::WithUniformInitial(swap);
  // Uniform start is already stationary for the swap chain; use a biased
  // start via Create to force oscillation.
  auto biased = MarkovChain::Create({0.9, 0.1}, swap);
  ASSERT_TRUE(biased.ok());
  // Power iteration from the uniform interior still converges here, so
  // probe with the biased chain's marginals directly:
  auto m2 = biased->MarginalAt(2);
  auto m3 = biased->MarginalAt(3);
  EXPECT_GT(L1Distance(m2, m3), 0.5);  // oscillates, never settles
}

TEST(MarkovChain, IsIrreducibleDetectsConnectivity) {
  EXPECT_TRUE(MarkovChain::WithUniformInitial(TwoState()).IsIrreducible());
  auto absorbing = StochasticMatrix::FromRows({{1.0, 0.0}, {0.5, 0.5}});
  EXPECT_FALSE(
      MarkovChain::WithUniformInitial(absorbing).IsIrreducible());
}

TEST(MarkovChain, IdentityChainIsReducible) {
  EXPECT_FALSE(MarkovChain::WithUniformInitial(StochasticMatrix::Identity(3))
                   .IsIrreducible());
}

}  // namespace
}  // namespace tcdp
