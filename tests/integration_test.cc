// Integration tests: full pipelines across modules — the Figure 1
// scenario end to end, adversary estimation feeding the allocator, and
// the release/audit loop.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/adversary_sim.h"
#include "core/dpt_mechanism.h"
#include "core/tpl_accountant.h"
#include "dp/budget.h"
#include "markov/estimation.h"
#include "markov/reversal.h"
#include "markov/smoothing.h"
#include "workload/generators.h"

namespace tcdp {
namespace {

// End to end on the paper's Figure 1 scenario: build the series, derive
// the backward correlation by Bayes, release with a naive eps-DP
// mechanism, and quantify how the leakage exceeds eps.
TEST(Integration, Figure1NaiveReleaseLeaksMoreThanEpsilon) {
  auto scenario = MakeFigure1Scenario();
  ASSERT_TRUE(scenario.ok());
  const double eps = 0.5;

  // Adversary derives P^B from P^F and a uniform prior (Section III-A).
  std::vector<double> prior(5, 0.2);
  auto backward = ReverseWithPrior(scenario->forward_correlation, prior);
  ASSERT_TRUE(backward.ok());
  auto corr =
      TemporalCorrelations::Both(*backward, scenario->forward_correlation);
  ASSERT_TRUE(corr.ok());

  TplAccountant acc(*corr);
  ASSERT_TRUE(
      acc.RecordUniformReleases(eps, scenario->series.horizon()).ok());
  // The naive mechanism promises eps-DP per time point, but the actual
  // temporal leakage is strictly larger at every time point.
  for (std::size_t t = 1; t <= scenario->series.horizon(); ++t) {
    EXPECT_GT(*acc.Tpl(t), eps) << "t=" << t;
  }
}

// The paper's fix: wrap the same release in the quantified allocator and
// the audited leakage comes back exactly at the target.
TEST(Integration, Figure1DptMechanismRestoresGuarantee) {
  auto scenario = MakeFigure1Scenario();
  ASSERT_TRUE(scenario.ok());
  std::vector<double> prior(5, 0.2);
  auto backward = ReverseWithPrior(scenario->forward_correlation, prior);
  ASSERT_TRUE(backward.ok());
  auto corr =
      TemporalCorrelations::Both(*backward, scenario->forward_correlation);
  ASSERT_TRUE(corr.ok());

  Rng rng(80);
  const double alpha = 0.5;
  auto mech = DptMechanism::Create(*corr, alpha, DptStrategy::kQuantified);
  ASSERT_TRUE(mech.ok()) << mech.status();
  auto result = mech->ReleaseSeries(scenario->series,
                                    std::make_unique<HistogramQuery>(), &rng);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LE(result->max_tpl, alpha + 1e-6);
  EXPECT_NEAR(result->max_tpl, alpha, 1e-5);
  EXPECT_EQ(result->releases.size(), 3u);
}

// Adversary-side pipeline: learn correlations from public trajectories
// via MLE, then feed them into the allocator — the loop a deployment
// would actually run.
TEST(Integration, EstimatedCorrelationsDriveAllocation) {
  auto road = RingRoadNetwork(6, 0.5, 0.2);
  ASSERT_TRUE(road.ok());
  auto chain = MarkovChain::WithUniformInitial(*road);
  Rng rng(81);
  auto trajectories = SimulateTrajectories(chain, 300, 100, &rng);

  auto forward = EstimateForwardTransition(trajectories, 6);
  auto backward = EstimateBackwardTransition(trajectories, 6);
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(backward.ok());
  EXPECT_LT(forward->matrix().MaxAbsDiff(road->matrix()), 0.05);

  auto corr = TemporalCorrelations::Both(*backward, *forward);
  ASSERT_TRUE(corr.ok());
  auto alloc = BudgetAllocator::Create(*corr, 1.0);
  ASSERT_TRUE(alloc.ok()) << alloc.status();
  EXPECT_GT(alloc->budget().eps_steady, 0.0);
  EXPECT_LT(alloc->budget().eps_steady, 1.0);

  // Audit the quantified schedule under the *true* correlations: the
  // estimate is close enough that the overshoot is small.
  auto true_backward = ReverseAtStationarity(*road);
  ASSERT_TRUE(true_backward.ok());
  auto true_corr = TemporalCorrelations::Both(*true_backward, *road);
  ASSERT_TRUE(true_corr.ok());
  auto sched = alloc->QuantifiedSchedule(20);
  ASSERT_TRUE(sched.ok());
  TplAccountant acc(*true_corr);
  for (double e : *sched) ASSERT_TRUE(acc.RecordRelease(e).ok());
  EXPECT_LT(acc.MaxTpl(), 1.1);
}

// Release + Bayesian adversary: the operational attack on the actual
// noisy outputs stays within the analytic TPL of the schedule.
TEST(Integration, OperationalAdversaryBoundedByAccountant) {
  const auto backward = StochasticMatrix::FromRows({{0.85, 0.15},
                                                    {0.25, 0.75}});
  auto corr = TemporalCorrelations::BackwardOnly(backward);
  const double eps = 0.4;
  const std::size_t horizon = 10;

  TplAccountant acc(corr);
  ASSERT_TRUE(acc.RecordUniformReleases(eps, horizon).ok());

  // Population of one target user (state path all-zeros) among others.
  // The adversary observes the FULL histogram, so the eps-DP release must
  // use the strict L1 sensitivity of 2 (a value change moves one user
  // across two bins); Lap(1/eps) per bin would only be 2eps-DP against
  // this adversary. See dp/query.h HistogramSensitivity.
  const double kSensitivity = 2.0;
  const double scale = kSensitivity / eps;
  Rng rng(82);
  const std::vector<double> others = {7.0, 3.0};
  for (int trial = 0; trial < 100; ++trial) {
    BayesianAdversary adv(backward);
    for (std::size_t t = 1; t <= horizon; ++t) {
      std::vector<double> noisy = {others[0] + 1.0 + rng.Laplace(scale),
                                   others[1] + rng.Laplace(scale)};
      auto densities =
          HistogramLogDensities(noisy, others, eps, kSensitivity);
      ASSERT_TRUE(densities.ok());
      ASSERT_TRUE(adv.Observe(*densities).ok());
      EXPECT_LE(adv.RealizedLeakage(), *acc.Bpl(t) + 1e-9);
    }
  }
}

// Personalized accounting (Section III-D): users with weaker correlations
// enjoy strictly smaller leakage under the same schedule.
TEST(Integration, PersonalizedLeakageOrdering) {
  PopulationAccountant pop;
  auto strong = SmoothedCorrelationMatrix(4, 0.01);
  auto weak = SmoothedCorrelationMatrix(4, 1.0);
  ASSERT_TRUE(strong.ok());
  ASSERT_TRUE(weak.ok());
  auto cs = TemporalCorrelations::Both(*strong, *strong);
  auto cw = TemporalCorrelations::Both(*weak, *weak);
  ASSERT_TRUE(cs.ok());
  ASSERT_TRUE(cw.ok());
  pop.AddUser("strongly-correlated", *cs);
  pop.AddUser("weakly-correlated", *cw);
  for (int t = 0; t < 15; ++t) ASSERT_TRUE(pop.RecordRelease(0.2).ok());
  EXPECT_GT(pop.user(0).MaxTpl(), pop.user(1).MaxTpl());
  EXPECT_DOUBLE_EQ(pop.OverallAlpha(), pop.user(0).MaxTpl());
}

// w-event view (Table II): on independent data the ledger's window spend
// matches the accountant's sequence TPL for uncorrelated users.
TEST(Integration, WEventMatchesSequenceTplWithoutCorrelations) {
  TplAccountant acc(TemporalCorrelations::None());
  BudgetLedger ledger;
  const std::vector<double> eps = {0.1, 0.3, 0.2, 0.15, 0.25};
  for (double e : eps) {
    ASSERT_TRUE(acc.RecordRelease(e).ok());
    ASSERT_TRUE(ledger.Spend(e).ok());
  }
  // Window [2..4] (w=3 starting at t=2): sum = 0.3+0.2+0.15.
  auto seq = acc.SequenceTpl(2, 2);
  ASSERT_TRUE(seq.ok());
  EXPECT_NEAR(*seq, 0.65, 1e-12);
  auto window = ledger.WindowSpend(3);
  ASSERT_TRUE(window.ok());
  EXPECT_NEAR(*window, 0.65, 1e-12);  // max window happens to be [2..4]
}

}  // namespace
}  // namespace tcdp
