// Unit tests for release/timeseries.

#include "release/timeseries.h"

#include <gtest/gtest.h>

namespace tcdp {
namespace {

TEST(TimeSeriesDatabase, FromTrajectoriesTransposesUsersToSnapshots) {
  // Figure 1(a): rows are users, columns are time points.
  std::vector<Trajectory> users = {
      {2, 0, 0}, {1, 0, 0}, {1, 3, 4}, {3, 4, 2}};
  auto series = TimeSeriesDatabase::FromTrajectories(users, 5);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->horizon(), 3u);
  EXPECT_EQ(series->num_users(), 4u);
  auto d1 = series->At(1);
  ASSERT_TRUE(d1.ok());
  EXPECT_EQ(d1->values(), (std::vector<std::size_t>{2, 1, 1, 3}));
  auto d3 = series->At(3);
  ASSERT_TRUE(d3.ok());
  EXPECT_EQ(d3->values(), (std::vector<std::size_t>{0, 0, 4, 2}));
}

TEST(TimeSeriesDatabase, FromTrajectoriesValidates) {
  EXPECT_FALSE(TimeSeriesDatabase::FromTrajectories({}, 3).ok());
  EXPECT_FALSE(TimeSeriesDatabase::FromTrajectories({{}}, 3).ok());
  EXPECT_FALSE(
      TimeSeriesDatabase::FromTrajectories({{0, 1}, {0}}, 3).ok());
  EXPECT_FALSE(TimeSeriesDatabase::FromTrajectories({{0, 7}}, 3).ok());
}

TEST(TimeSeriesDatabase, AppendValidatesShape) {
  TimeSeriesDatabase series(3);
  auto db1 = Database::Create({0, 1}, 3);
  ASSERT_TRUE(db1.ok());
  EXPECT_TRUE(series.Append(*db1).ok());

  auto wrong_domain = Database::Create({0, 1}, 4);
  ASSERT_TRUE(wrong_domain.ok());
  EXPECT_FALSE(series.Append(*wrong_domain).ok());

  auto wrong_users = Database::Create({0, 1, 2}, 3);
  ASSERT_TRUE(wrong_users.ok());
  EXPECT_FALSE(series.Append(*wrong_users).ok());
}

TEST(TimeSeriesDatabase, AtUsesOneBasedPaperIndexing) {
  TimeSeriesDatabase series(2);
  auto db = Database::Create({0}, 2);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(series.Append(*db).ok());
  EXPECT_TRUE(series.At(1).ok());
  EXPECT_EQ(series.At(0).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(series.At(2).status().code(), StatusCode::kOutOfRange);
}

TEST(TimeSeriesDatabase, EmptySeriesProperties) {
  TimeSeriesDatabase series(4);
  EXPECT_EQ(series.horizon(), 0u);
  EXPECT_EQ(series.num_users(), 0u);
  EXPECT_EQ(series.domain_size(), 4u);
}

}  // namespace
}  // namespace tcdp
