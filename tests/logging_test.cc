// Unit tests for common/logging.

#include "common/logging.h"

#include <gtest/gtest.h>

namespace tcdp {
namespace {

TEST(Logging, SetAndGetLevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(Logging, MacroCompilesAndStreams) {
  SetLogLevel(LogLevel::kError);  // suppress output during the test
  TCDP_LOG(kInfo) << "value=" << 42 << " pi=" << 3.14;
  TCDP_LOG(kDebug) << "below threshold, dropped";
  SetLogLevel(LogLevel::kInfo);
}

TEST(Logging, LogMessageRespectsThreshold) {
  // Behavioural check: messages below the threshold must not crash and
  // the call is a no-op; messages at/above go to stderr (not captured
  // here, only exercised).
  SetLogLevel(LogLevel::kWarning);
  LogMessage(LogLevel::kDebug, "dropped");
  LogMessage(LogLevel::kWarning, "emitted (expected in stderr)");
  SetLogLevel(LogLevel::kInfo);
}

}  // namespace
}  // namespace tcdp
