// Unit tests for common/logging.

#include "common/logging.h"

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

namespace tcdp {
namespace {

/// Captures one emitted log line.
std::string EmitAndCapture(LogLevel level, const std::string& message) {
  testing::internal::CaptureStderr();
  LogMessage(level, message);
  return testing::internal::GetCapturedStderr();
}

TEST(Logging, SetAndGetLevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(Logging, MacroCompilesAndStreams) {
  SetLogLevel(LogLevel::kError);  // suppress output during the test
  TCDP_LOG(kInfo) << "value=" << 42 << " pi=" << 3.14;
  TCDP_LOG(kDebug) << "below threshold, dropped";
  SetLogLevel(LogLevel::kInfo);
}

TEST(Logging, LogMessageRespectsThreshold) {
  // Behavioural check: messages below the threshold must not crash and
  // the call is a no-op; messages at/above go to stderr (not captured
  // here, only exercised).
  SetLogLevel(LogLevel::kWarning);
  LogMessage(LogLevel::kDebug, "dropped");
  LogMessage(LogLevel::kWarning, "emitted (expected in stderr)");
  SetLogLevel(LogLevel::kInfo);
}

TEST(Logging, DefaultFormatHasTimestampAndThreadId) {
  unsetenv("TCDP_LOG_PLAIN");
  SetLogLevel(LogLevel::kInfo);
  const std::string line = EmitAndCapture(LogLevel::kError, "probe msg");
  // Shape: [YYYY-MM-DDTHH:MM:SS.mmmZ <tid> tcdp ERROR] probe msg
  ASSERT_GE(line.size(), std::string("[0000-00-00T00:00:00.000Z").size());
  EXPECT_EQ(line[0], '[');
  EXPECT_EQ(line[5], '-');
  EXPECT_EQ(line[8], '-');
  EXPECT_EQ(line[11], 'T');
  EXPECT_EQ(line[14], ':');
  EXPECT_EQ(line[17], ':');
  EXPECT_EQ(line[20], '.');
  EXPECT_EQ(line[24], 'Z');
  EXPECT_EQ(line[25], ' ');
  // A thread ordinal (digits) precedes the tag.
  std::size_t i = 26;
  ASSERT_LT(i, line.size());
  EXPECT_TRUE(line[i] >= '0' && line[i] <= '9') << line;
  while (i < line.size() && line[i] >= '0' && line[i] <= '9') ++i;
  EXPECT_EQ(line.compare(i, 12, " tcdp ERROR]"), 0) << line;
  EXPECT_NE(line.find("] probe msg\n"), std::string::npos) << line;
}

TEST(Logging, PlainEnvRestoresLegacyFormat) {
  setenv("TCDP_LOG_PLAIN", "1", 1);
  SetLogLevel(LogLevel::kInfo);
  const std::string line = EmitAndCapture(LogLevel::kWarning, "plain probe");
  EXPECT_EQ(line, "[tcdp WARN] plain probe\n");
  // Any value other than exactly "1" keeps the full prefix.
  setenv("TCDP_LOG_PLAIN", "yes", 1);
  const std::string full = EmitAndCapture(LogLevel::kWarning, "full probe");
  EXPECT_EQ(full.find("[tcdp WARN]"), std::string::npos) << full;
  EXPECT_NE(full.find(" tcdp WARN] full probe\n"), std::string::npos)
      << full;
  unsetenv("TCDP_LOG_PLAIN");
}

}  // namespace
}  // namespace tcdp
