// The write-ahead event log: framing round-trips, torn-tail recovery at
// every byte offset, CRC detection of flipped bytes, and
// truncate-then-append resumption.

#include "server/event_log.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace tcdp {
namespace server {
namespace {

class EventLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "/tmp/tcdp_event_log_test.wal";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string ReadFileBytes() {
    std::ifstream in(path_, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  void WriteFileBytes(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string path_;
};

TEST_F(EventLogTest, RoundTripsRecords) {
  {
    auto writer = EventLogWriter::Create(path_);
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE(writer->Append(EventType::kManifest, "manifest").ok());
    ASSERT_TRUE(writer->Append(EventType::kAddUser, "").ok());
    ASSERT_TRUE(writer->Append(EventType::kRelease,
                               std::string("\x00\x01\x02", 3))
                    .ok());
    EXPECT_EQ(writer->records_written(), 3u);
    ASSERT_TRUE(writer->Sync().ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  auto result = ReadEventLog(path_);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->clean);
  ASSERT_EQ(result->records.size(), 3u);
  EXPECT_EQ(result->records[0].type, EventType::kManifest);
  EXPECT_EQ(result->records[0].payload, "manifest");
  EXPECT_EQ(result->records[1].payload, "");
  EXPECT_EQ(result->records[2].payload, std::string("\x00\x01\x02", 3));
  EXPECT_EQ(result->record_end.size(), 3u);
  EXPECT_EQ(result->valid_bytes, result->record_end.back());
}

TEST_F(EventLogTest, MissingFileIsNotFound) {
  auto result = ReadEventLog("/tmp/definitely_missing_tcdp.wal");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(EventLogTest, BadMagicRejected) {
  WriteFileBytes("NOTALOG1xxxxxxxx");
  auto result = ReadEventLog(path_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EventLogTest, TruncationAtEveryOffsetRecoversValidPrefix) {
  {
    auto writer = EventLogWriter::Create(path_);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(writer
                      ->Append(EventType::kRelease,
                               "payload-" + std::to_string(i))
                      .ok());
    }
    ASSERT_TRUE(writer->Close().ok());
  }
  const std::string full = ReadFileBytes();
  auto full_read = ReadEventLog(path_);
  ASSERT_TRUE(full_read.ok());
  ASSERT_TRUE(full_read->clean);
  const auto& boundaries = full_read->record_end;

  for (std::size_t cut = 8; cut <= full.size(); ++cut) {
    WriteFileBytes(full.substr(0, cut));
    auto result = ReadEventLog(path_);
    ASSERT_TRUE(result.ok()) << "cut " << cut << ": " << result.status();
    // The number of whole records the cut preserves.
    std::size_t expect_records = 0;
    while (expect_records < boundaries.size() &&
           boundaries[expect_records] <= cut) {
      ++expect_records;
    }
    ASSERT_EQ(result->records.size(), expect_records) << "cut " << cut;
    const bool at_boundary =
        cut == 8 || (expect_records > 0 &&
                     boundaries[expect_records - 1] == cut);
    EXPECT_EQ(result->clean, at_boundary) << "cut " << cut;
    for (std::size_t r = 0; r < expect_records; ++r) {
      EXPECT_EQ(result->records[r].payload, "payload-" + std::to_string(r));
    }
  }
}

TEST_F(EventLogTest, FlippedByteStopsAtCorruptRecord) {
  {
    auto writer = EventLogWriter::Create(path_);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(EventType::kAddUser, "first").ok());
    ASSERT_TRUE(writer->Append(EventType::kAddUser, "second").ok());
    ASSERT_TRUE(writer->Append(EventType::kAddUser, "third").ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  const std::string full = ReadFileBytes();
  auto clean_read = ReadEventLog(path_);
  ASSERT_TRUE(clean_read.ok());
  // Flip one byte inside the second record's payload.
  const std::uint64_t second_begin = clean_read->record_end[0];
  std::string corrupt = full;
  corrupt[static_cast<std::size_t>(second_begin) + 9 + 2] ^= 0x40;
  WriteFileBytes(corrupt);
  auto result = ReadEventLog(path_);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->clean);
  ASSERT_EQ(result->records.size(), 1u);
  EXPECT_EQ(result->records[0].payload, "first");
  EXPECT_EQ(result->valid_bytes, second_begin);
  EXPECT_NE(result->tail_error.find("CRC"), std::string::npos)
      << result->tail_error;
}

TEST_F(EventLogTest, TruncateThenAppendResumes) {
  {
    auto writer = EventLogWriter::Create(path_);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(EventType::kAddUser, "keep").ok());
    ASSERT_TRUE(writer->Append(EventType::kRelease, "torn").ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  auto before = ReadEventLog(path_);
  ASSERT_TRUE(before.ok());
  // Simulate a crash that tore the second record, then recovery.
  const std::uint64_t cut = before->record_end[0];
  {
    const std::string full = ReadFileBytes();
    WriteFileBytes(full.substr(0, static_cast<std::size_t>(cut) + 3));
  }
  auto torn = ReadEventLog(path_);
  ASSERT_TRUE(torn.ok());
  EXPECT_FALSE(torn->clean);
  ASSERT_TRUE(TruncateFile(path_, torn->valid_bytes).ok());
  {
    auto writer = EventLogWriter::OpenForAppend(path_, torn->valid_bytes,
                                                torn->records.size());
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE(writer->Append(EventType::kRelease, "after-crash").ok());
    EXPECT_EQ(writer->records_written(), torn->records.size() + 1);
    ASSERT_TRUE(writer->Close().ok());
  }
  auto result = ReadEventLog(path_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->clean);
  ASSERT_EQ(result->records.size(), 2u);
  EXPECT_EQ(result->records[0].payload, "keep");
  EXPECT_EQ(result->records[1].payload, "after-crash");
}

TEST_F(EventLogTest, AppendAfterCloseFails) {
  auto writer = EventLogWriter::Create(path_);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Close().ok());
  EXPECT_FALSE(writer->Append(EventType::kAddUser, "x").ok());
}

}  // namespace
}  // namespace server
}  // namespace tcdp
