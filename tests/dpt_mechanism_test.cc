// Unit tests for core/dpt_mechanism: the end-to-end alpha-DP_T wrapper.

#include "core/dpt_mechanism.h"

#include <gtest/gtest.h>

#include "workload/generators.h"

namespace tcdp {
namespace {

TemporalCorrelations MildCorrelations() {
  auto c = TemporalCorrelations::Both(
      StochasticMatrix::FromRows({{0.8, 0.2}, {0.2, 0.8}}),
      StochasticMatrix::FromRows({{0.8, 0.2}, {0.1, 0.9}}));
  EXPECT_TRUE(c.ok());
  return std::move(c).value();
}

TimeSeriesDatabase SmallSeries(std::size_t horizon) {
  auto m = StochasticMatrix::FromRows({{0.8, 0.2}, {0.1, 0.9}});
  auto chain = MarkovChain::WithUniformInitial(m);
  Rng rng(60);
  auto series = SimulatePopulation(chain, 20, horizon, &rng);
  EXPECT_TRUE(series.ok());
  return std::move(series).value();
}

TEST(DptMechanism, CreatePropagatesAllocatorFailure) {
  auto strongest =
      TemporalCorrelations::BackwardOnly(StochasticMatrix::Identity(2));
  auto m = DptMechanism::Create(strongest, 1.0, DptStrategy::kUpperBound);
  EXPECT_FALSE(m.ok());
}

TEST(DptMechanism, ScheduleMatchesStrategy) {
  auto mech =
      DptMechanism::Create(MildCorrelations(), 1.0, DptStrategy::kQuantified);
  ASSERT_TRUE(mech.ok());
  auto s = mech->Schedule(5);
  ASSERT_TRUE(s.ok());
  EXPECT_GT(s->front(), (*s)[1]);  // quantified shape

  auto ub =
      DptMechanism::Create(MildCorrelations(), 1.0, DptStrategy::kUpperBound);
  ASSERT_TRUE(ub.ok());
  auto us = ub->Schedule(5);
  ASSERT_TRUE(us.ok());
  for (double e : *us) EXPECT_DOUBLE_EQ(e, ub->budget().eps_steady);

  auto gp = DptMechanism::Create(MildCorrelations(), 1.0,
                                 DptStrategy::kGroupDpBaseline);
  ASSERT_TRUE(gp.ok());
  auto gs = gp->Schedule(5);
  ASSERT_TRUE(gs.ok());
  for (double e : *gs) EXPECT_DOUBLE_EQ(e, 0.2);

  EXPECT_FALSE(mech->Schedule(0).ok());
}

TEST(DptMechanism, ReleaseSeriesAuditsWithinAlpha) {
  Rng rng(61);
  auto mech =
      DptMechanism::Create(MildCorrelations(), 1.0, DptStrategy::kQuantified);
  ASSERT_TRUE(mech.ok());
  auto result = mech->ReleaseSeries(SmallSeries(12),
                                    std::make_unique<HistogramQuery>(), &rng);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->releases.size(), 12u);
  EXPECT_EQ(result->tpl_series.size(), 12u);
  EXPECT_LE(result->max_tpl, 1.0 + 1e-6);
  EXPECT_NEAR(result->max_tpl, 1.0, 1e-5);  // quantified is exact
  EXPECT_GT(result->expected_abs_noise, 0.0);
}

TEST(DptMechanism, UpperBoundStaysStrictlyBelowAlphaOnShortHorizons) {
  Rng rng(62);
  auto mech =
      DptMechanism::Create(MildCorrelations(), 1.0, DptStrategy::kUpperBound);
  ASSERT_TRUE(mech.ok());
  auto result = mech->ReleaseSeries(SmallSeries(6),
                                    std::make_unique<HistogramQuery>(), &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->max_tpl, 1.0);
}

TEST(DptMechanism, QuantifiedHasLessNoiseThanUpperBoundShortT) {
  Rng rng(63);
  auto q =
      DptMechanism::Create(MildCorrelations(), 1.0, DptStrategy::kQuantified);
  auto u =
      DptMechanism::Create(MildCorrelations(), 1.0, DptStrategy::kUpperBound);
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(u.ok());
  auto series = SmallSeries(5);
  auto qr =
      q->ReleaseSeries(series, std::make_unique<HistogramQuery>(), &rng);
  auto ur =
      u->ReleaseSeries(series, std::make_unique<HistogramQuery>(), &rng);
  ASSERT_TRUE(qr.ok());
  ASSERT_TRUE(ur.ok());
  EXPECT_LT(qr->expected_abs_noise, ur->expected_abs_noise);
}

TEST(DptMechanism, GroupDpBaselineOverPerturbsLongHorizons) {
  Rng rng(64);
  auto g = DptMechanism::Create(MildCorrelations(), 1.0,
                                DptStrategy::kGroupDpBaseline);
  auto u =
      DptMechanism::Create(MildCorrelations(), 1.0, DptStrategy::kUpperBound);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(u.ok());
  auto series = SmallSeries(40);
  auto gr =
      g->ReleaseSeries(series, std::make_unique<HistogramQuery>(), &rng);
  auto ur =
      u->ReleaseSeries(series, std::make_unique<HistogramQuery>(), &rng);
  ASSERT_TRUE(gr.ok());
  ASSERT_TRUE(ur.ok());
  // alpha/T = 0.025 per step vs the correlation-aware steady budget.
  EXPECT_GT(gr->expected_abs_noise, ur->expected_abs_noise);
}

TEST(DptMechanism, RejectsEmptySeries) {
  Rng rng(65);
  auto mech =
      DptMechanism::Create(MildCorrelations(), 1.0, DptStrategy::kUpperBound);
  ASSERT_TRUE(mech.ok());
  TimeSeriesDatabase empty(2);
  EXPECT_FALSE(
      mech->ReleaseSeries(empty, std::make_unique<HistogramQuery>(), &rng)
          .ok());
}

}  // namespace
}  // namespace tcdp
