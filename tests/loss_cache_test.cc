// Unit tests for core/loss_cache: hit/miss accounting, matrix
// interning/deduplication, agreement with the direct Algorithm-1
// evaluation, the generic-LFP oracle regression, and thread safety.

#include "core/loss_cache.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/random.h"
#include "lp/tpl_lfp.h"
#include "markov/stochastic_matrix.h"

namespace tcdp {
namespace {

StochasticMatrix Fig3Matrix() {
  return StochasticMatrix::FromRows({{0.8, 0.2}, {0.0, 1.0}});
}

TEST(TemporalLossCache, FirstEvaluationMissesSecondHits) {
  TemporalLossCache cache;
  auto loss = cache.Intern(Fig3Matrix());
  const double first = loss->Evaluate(0.5);
  auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 1u);

  const double second = loss->Evaluate(0.5);
  stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(first, second);  // bitwise: same memoized value
}

TEST(TemporalLossCache, ZeroAlphaShortCircuits) {
  TemporalLossCache cache;
  auto loss = cache.Intern(Fig3Matrix());
  EXPECT_EQ(loss->Evaluate(0.0), 0.0);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 0u);
}

TEST(TemporalLossCache, InternDeduplicatesEqualMatrices) {
  TemporalLossCache cache;
  auto a = cache.Intern(Fig3Matrix());
  auto b = cache.Intern(Fig3Matrix());  // distinct object, same contents
  EXPECT_EQ(cache.stats().distinct_matrices, 1u);

  a->Evaluate(0.7);  // miss, populates the shared table
  b->Evaluate(0.7);  // hit through the other handle
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(TemporalLossCache, DistinctMatricesGetDistinctTables) {
  TemporalLossCache cache;
  auto a = cache.Intern(Fig3Matrix());
  auto b = cache.Intern(StochasticMatrix::Identity(2));
  EXPECT_EQ(cache.stats().distinct_matrices, 2u);
  a->Evaluate(0.4);
  b->Evaluate(0.4);
  EXPECT_EQ(cache.stats().misses, 2u);  // no cross-matrix sharing
}

TEST(TemporalLossCache, NeverUnderestimatesAndStaysNearDirect) {
  TemporalLossCache::Options options;
  options.alpha_resolution = 1e-9;
  TemporalLossCache cache(options);
  const auto matrix = Fig3Matrix();
  auto cached = cache.Intern(matrix);
  TemporalLossFunction direct(matrix);
  // The cache evaluates at the grid point >= alpha, so it must never
  // round a leakage down, and L's 1-Lipschitz bound keeps it within
  // two grid steps of the exact value.
  for (double alpha : {0.001, 0.1, 0.5, 1.0, 2.0, 10.0}) {
    const double got = cached->Evaluate(alpha);
    const double want = direct.Evaluate(alpha);
    EXPECT_GE(got, want) << "alpha=" << alpha;
    EXPECT_NEAR(got, want, 2e-9) << "alpha=" << alpha;
  }
}

TEST(TemporalLossCache, QuantizationErrorIsBounded) {
  TemporalLossCache::Options options;
  options.alpha_resolution = 1e-6;
  TemporalLossCache cache(options);
  const auto matrix = Fig3Matrix();
  auto cached = cache.Intern(matrix);
  TemporalLossFunction direct(matrix);
  Rng rng(20260728);
  for (int i = 0; i < 50; ++i) {
    const double alpha = rng.Uniform(1e-3, 5.0);
    // L is 1-Lipschitz in alpha, so the upward grid snap raises the
    // value by at most ~one resolution step — and never lowers it.
    const double got = cached->Evaluate(alpha);
    const double want = direct.Evaluate(alpha);
    EXPECT_GE(got, want) << "alpha=" << alpha;
    EXPECT_NEAR(got, want, 2e-6) << "alpha=" << alpha;
  }
}

TEST(TemporalLossCache, DisabledQuantizationUsesExactBits) {
  TemporalLossCache::Options options;
  options.alpha_resolution = 0.0;
  TemporalLossCache cache(options);
  auto cached = cache.Intern(Fig3Matrix());
  TemporalLossFunction direct(Fig3Matrix());
  const double alpha = 0.1 + 1e-13;  // off any coarse grid
  EXPECT_EQ(cached->Evaluate(alpha), direct.Evaluate(alpha));
}

// Satellite regression: cached L(alpha) agrees with the generic-LFP
// route (the paper's Figure 5 baseline) on small matrices.
TEST(TemporalLossCache, MatchesTemporalLossViaLfpOnSmallMatrices) {
  TemporalLossCache cache;
  Rng rng(42);
  for (std::size_t n : {2u, 3u, 4u}) {
    const auto matrix = StochasticMatrix::Random(n, &rng);
    auto cached = cache.Intern(matrix);
    for (double alpha : {0.1, 0.5, 1.0}) {
      auto oracle = TemporalLossViaLfp(matrix, alpha, LfpMethod::kCharnesCooper,
                                       LfpFormulation::kPairwise);
      ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
      EXPECT_NEAR(cached->Evaluate(alpha), *oracle, 1e-6)
          << "n=" << n << " alpha=" << alpha;
    }
  }
}

TEST(TemporalLossCache, ClearDropsValuesButKeepsEvaluators) {
  TemporalLossCache cache;
  auto loss = cache.Intern(Fig3Matrix());
  const double before = loss->Evaluate(0.3);
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(loss->Evaluate(0.3), before);  // recomputes the same value
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(TemporalLossCache, EvaluatorOutlivesCacheHandle) {
  std::shared_ptr<const LossEvaluator> loss;
  double direct = 0.0;
  {
    TemporalLossCache cache;
    loss = cache.Intern(Fig3Matrix());
    direct = TemporalLossFunction(Fig3Matrix()).Evaluate(0.25);
  }
  EXPECT_NEAR(loss->Evaluate(0.25), direct, 2e-9);
}

TEST(TemporalLossCache, ConcurrentEvaluationsAgree) {
  TemporalLossCache cache;
  auto loss = cache.Intern(Fig3Matrix());
  // The grid-snapped reference: whatever the cache computes once, every
  // thread must observe bitwise.
  const double expected = loss->Evaluate(0.5);
  std::vector<std::thread> threads;
  std::vector<double> results(8, -1.0);
  for (std::size_t i = 0; i < results.size(); ++i) {
    threads.emplace_back([&loss, &results, i] {
      for (int rep = 0; rep < 100; ++rep) results[i] = loss->Evaluate(0.5);
    });
  }
  for (auto& t : threads) t.join();
  for (double r : results) EXPECT_EQ(r, expected);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.hits, 0u);
}

}  // namespace
}  // namespace tcdp
