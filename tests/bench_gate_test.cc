// Tests for the gate expression language (src/bench/gate_expr.h):
// grammar, precedence, dotted identifiers, functions, and the
// loud-failure contract for unbound variables.

#include "bench/gate_expr.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace tcdp {
namespace bench {
namespace {

double Eval(const std::string& expr,
            const std::map<std::string, double>& vars = {}) {
  const auto result = EvalGateExpression(expr, vars);
  EXPECT_TRUE(result.ok()) << expr << ": " << result.status().message();
  return result.ok() ? result.value() : -1.0;
}

TEST(GateExpr, ArithmeticPrecedence) {
  EXPECT_DOUBLE_EQ(Eval("1 + 2 * 3"), 7.0);
  EXPECT_DOUBLE_EQ(Eval("(1 + 2) * 3"), 9.0);
  EXPECT_DOUBLE_EQ(Eval("10 / 4"), 2.5);
  EXPECT_DOUBLE_EQ(Eval("-3 + 5"), 2.0);
  EXPECT_DOUBLE_EQ(Eval("2 - -2"), 4.0);
}

TEST(GateExpr, ComparisonsYieldBooleans) {
  EXPECT_DOUBLE_EQ(Eval("1 < 2"), 1.0);
  EXPECT_DOUBLE_EQ(Eval("2 <= 2"), 1.0);
  EXPECT_DOUBLE_EQ(Eval("3 > 4"), 0.0);
  EXPECT_DOUBLE_EQ(Eval("3 >= 4"), 0.0);
  EXPECT_DOUBLE_EQ(Eval("5 == 5"), 1.0);
  EXPECT_DOUBLE_EQ(Eval("5 != 5"), 0.0);
}

TEST(GateExpr, BooleanConnectivesAndNegation) {
  EXPECT_DOUBLE_EQ(Eval("1 < 2 && 3 < 4"), 1.0);
  EXPECT_DOUBLE_EQ(Eval("1 < 2 && 4 < 3"), 0.0);
  EXPECT_DOUBLE_EQ(Eval("1 > 2 || 3 < 4"), 1.0);
  EXPECT_DOUBLE_EQ(Eval("!(1 < 2)"), 0.0);
  // && binds tighter than ||.
  EXPECT_DOUBLE_EQ(Eval("1 || 0 && 0"), 1.0);
}

TEST(GateExpr, Functions) {
  EXPECT_DOUBLE_EQ(Eval("abs(-2.5)"), 2.5);
  EXPECT_DOUBLE_EQ(Eval("min(3, 7)"), 3.0);
  EXPECT_DOUBLE_EQ(Eval("max(3, 7)"), 7.0);
  EXPECT_DOUBLE_EQ(Eval("abs(min(-1, 1) * 4)"), 4.0);
}

TEST(GateExpr, DottedIdentifiersResolve) {
  const std::map<std::string, double> vars = {
      {"cached_speedup", 6.0},
      {"moderate.bpl_t10", 0.5},
  };
  EXPECT_DOUBLE_EQ(Eval("cached_speedup >= 5.0", vars), 1.0);
  EXPECT_DOUBLE_EQ(
      Eval("moderate.bpl_t10 >= 0.49 && moderate.bpl_t10 <= 0.51", vars), 1.0);
}

TEST(GateExpr, RealGateShapesFromTheSuites) {
  const std::map<std::string, double> vars = {
      {"compacted_wal_bytes", 1000.0},
      {"uncompacted_wal_bytes", 4000.0},
      {"loopback_slowdown_depth8", 2.5},
  };
  EXPECT_DOUBLE_EQ(
      Eval("compacted_wal_bytes > 0 && "
           "compacted_wal_bytes < uncompacted_wal_bytes",
           vars),
      1.0);
  EXPECT_DOUBLE_EQ(Eval("loopback_slowdown_depth8 <= 5", vars), 1.0);
}

TEST(GateExpr, UnboundVariableIsALoudError) {
  const auto result = EvalGateExpression("typo_speedup > 1", {});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("typo_speedup"),
            std::string::npos);
}

TEST(GateExpr, SyntaxErrorsAreRejected) {
  EXPECT_FALSE(EvalGateExpression("", {}).ok());
  EXPECT_FALSE(EvalGateExpression("1 +", {}).ok());
  EXPECT_FALSE(EvalGateExpression("(1 < 2", {}).ok());
  EXPECT_FALSE(EvalGateExpression("1 2", {}).ok());
  EXPECT_FALSE(EvalGateExpression("min(1)", {}).ok());
  EXPECT_FALSE(EvalGateExpression("nosuchfn(1, 2)", {}).ok());
}

}  // namespace
}  // namespace bench
}  // namespace tcdp
