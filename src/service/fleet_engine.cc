#include "service/fleet_engine.h"

#include <utility>

#include "common/timer.h"

namespace tcdp {
namespace {

AccountantBankOptions BankOptions(const FleetEngineOptions& options) {
  AccountantBankOptions bank;
  bank.share_loss_cache = options.share_loss_cache;
  bank.cache = options.cache;
  return bank;
}

}  // namespace

FleetEngine::FleetEngine(FleetEngineOptions options)
    : options_(std::move(options)), bank_(BankOptions(options_)) {
  if (options_.num_threads != 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
    bank_.set_pool(pool_.get());
  }
}

std::size_t FleetEngine::AddUser(std::string name,
                                 TemporalCorrelations correlations) {
  const std::size_t index = bank_.AddUser(std::move(correlations));
  names_.push_back(std::move(name));
  return index;
}

Status FleetEngine::TimedRecord(
    double epsilon, const std::vector<std::size_t>* participants) {
  WallTimer timer;
  const Status recorded = participants != nullptr
                              ? bank_.RecordRelease(epsilon, *participants)
                              : bank_.RecordRelease(epsilon);
  if (!recorded.ok()) return recorded;
  stats_.user_releases += num_users();
  stats_.record_seconds += timer.ElapsedSeconds();
  return Status::OK();
}

Status FleetEngine::RecordRelease(double epsilon) {
  return TimedRecord(epsilon, nullptr);
}

Status FleetEngine::RecordRelease(
    double epsilon, const std::vector<std::size_t>& participants) {
  return TimedRecord(epsilon, &participants);
}

Status FleetEngine::RecordReleases(const std::vector<double>& schedule) {
  for (double epsilon : schedule) {
    TCDP_RETURN_IF_ERROR(RecordRelease(epsilon));
  }
  return Status::OK();
}

StatusOr<double> FleetEngine::UserView::Bpl(std::size_t t) const {
  if (t < 1 || t > horizon()) {
    return Status::OutOfRange("Bpl: t outside [1, horizon]");
  }
  return bank_->BplSeriesFor(index_)[t - 1];
}

StatusOr<double> FleetEngine::UserView::Fpl(std::size_t t) const {
  if (t < 1 || t > horizon()) {
    return Status::OutOfRange("Fpl: t outside [1, horizon]");
  }
  return bank_->FplSeriesFor(index_)[t - 1];
}

StatusOr<double> FleetEngine::UserView::Tpl(std::size_t t) const {
  if (t < 1 || t > horizon()) {
    return Status::OutOfRange("Tpl: t outside [1, horizon]");
  }
  return bank_->TplSeriesFor(index_)[t - 1];
}

ThreadPool::Stats FleetEngine::pool_stats() const {
  return pool_ != nullptr ? pool_->stats() : ThreadPool::Stats{};
}

}  // namespace tcdp
