#include "service/fleet_engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/timer.h"

namespace tcdp {

FleetEngine::FleetEngine(FleetEngineOptions options)
    : options_(std::move(options)) {
  if (options_.share_loss_cache) {
    cache_ = std::make_unique<TemporalLossCache>(options_.cache);
  }
  if (options_.num_threads != 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

TplAccountant FleetEngine::MakeAccountant(TemporalCorrelations correlations) {
  if (cache_ == nullptr) return TplAccountant(std::move(correlations));
  std::shared_ptr<const LossEvaluator> backward;
  std::shared_ptr<const LossEvaluator> forward;
  if (correlations.has_backward()) {
    backward = cache_->Intern(correlations.backward());
  }
  if (correlations.has_forward()) {
    forward = cache_->Intern(correlations.forward());
  }
  return TplAccountant(std::move(correlations), std::move(backward),
                       std::move(forward));
}

std::size_t FleetEngine::AddUser(std::string name,
                                 TemporalCorrelations correlations) {
  UserEntry entry{std::move(name), MakeAccountant(std::move(correlations))};
  for (double epsilon : schedule_) {
    const Status replayed = entry.accountant.RecordRelease(epsilon);
    assert(replayed.ok());  // schedule_ holds only validated budgets
    (void)replayed;
  }
  users_.push_back(std::move(entry));
  return users_.size() - 1;
}

void FleetEngine::ForEachUser(
    const std::function<void(std::size_t)>& body) const {
  if (pool_ != nullptr && users_.size() > 1) {
    pool_->ParallelFor(0, users_.size(), body);
  } else {
    for (std::size_t i = 0; i < users_.size(); ++i) body(i);
  }
}

Status FleetEngine::RecordRelease(double epsilon) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument(
        "FleetEngine: epsilon must be finite and > 0");
  }
  WallTimer timer;
  ForEachUser([this, epsilon](std::size_t i) {
    const Status recorded = users_[i].accountant.RecordRelease(epsilon);
    assert(recorded.ok());  // epsilon validated above; cannot fail per-user
    (void)recorded;
  });
  schedule_.push_back(epsilon);
  stats_.user_releases += users_.size();
  stats_.record_seconds += timer.ElapsedSeconds();
  return Status::OK();
}

Status FleetEngine::RecordReleases(const std::vector<double>& schedule) {
  for (double epsilon : schedule) {
    TCDP_RETURN_IF_ERROR(RecordRelease(epsilon));
  }
  return Status::OK();
}

StatusOr<double> FleetEngine::MaxTplAt(std::size_t t) const {
  if (users_.empty()) {
    return Status::FailedPrecondition("MaxTplAt: no users registered");
  }
  if (t < 1 || t > horizon()) {
    return Status::OutOfRange("MaxTplAt: t outside [1, horizon]");
  }
  std::vector<double> per_user(users_.size(), 0.0);
  ForEachUser([this, t, &per_user](std::size_t i) {
    per_user[i] = *users_[i].accountant.Tpl(t);
  });
  // Deterministic serial reduction in user order.
  double best = 0.0;
  for (double v : per_user) best = std::max(best, v);
  return best;
}

std::vector<double> FleetEngine::PersonalizedAlphas() const {
  std::vector<double> alphas(users_.size(), 0.0);
  ForEachUser([this, &alphas](std::size_t i) {
    alphas[i] = users_[i].accountant.MaxTpl();
  });
  return alphas;
}

double FleetEngine::OverallAlpha() const {
  double best = 0.0;
  for (double v : PersonalizedAlphas()) best = std::max(best, v);
  return best;
}

TemporalLossCache::Stats FleetEngine::cache_stats() const {
  return cache_ != nullptr ? cache_->stats() : TemporalLossCache::Stats{};
}

ThreadPool::Stats FleetEngine::pool_stats() const {
  return pool_ != nullptr ? pool_->stats() : ThreadPool::Stats{};
}

}  // namespace tcdp
