#ifndef TCDP_SERVICE_FLEET_ENGINE_H_
#define TCDP_SERVICE_FLEET_ENGINE_H_

/// \file
/// Fleet-scale release accounting: a thin façade over the
/// structure-of-arrays AccountantBank (core/accountant_bank.h) that
/// adds user naming, a thread pool, wall-clock stats, and convenience
/// aggregates.
///
/// The bank groups users into cohorts by interned transition-matrix
/// pair and advances Equation 13 in a tight loop over contiguous
/// column slices, fanned out over the pool in range chunks — per-user
/// work no longer collapses to a hash lookup, so parallel recording
/// stays profitable on warm caches (bench_fleet_throughput tracks
/// this).
///
/// Heterogeneous schedules: `RecordRelease(epsilon, participants)`
/// charges only the listed users; absent users record skips whose
/// leakage still propagates. Users added after releases started join
/// at the current horizon and accrue only the sub-schedule from then
/// on (they do NOT replay history — the joining feed's past releases
/// never included them).
///
/// Determinism: every per-user series is bitwise identical to the
/// single-user TplAccountant reference driven with the same
/// sub-schedule, whatever the thread count or chunking
/// (property-tested, and reasserted by bench_fleet_throughput).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/accountant_bank.h"
#include "core/loss_cache.h"
#include "core/tpl_accountant.h"

namespace tcdp {

struct FleetEngineOptions {
  /// Worker threads for fan-out; 0 = hardware concurrency, 1 = run the
  /// per-user loop inline (no pool is created).
  std::size_t num_threads = 0;
  /// When false, every cohort builds a direct TemporalLossFunction and
  /// no memoization happens (the uncached ablation baseline).
  bool share_loss_cache = true;
  TemporalLossCache::Options cache;
};

/// \brief A population of named users behind one release feed.
///
/// Thread-compatible: concurrent calls on one FleetEngine must be
/// externally serialized (the internal parallelism is the engine's own).
class FleetEngine {
 public:
  explicit FleetEngine(FleetEngineOptions options = {});

  /// \brief Read-only view of one user's accounting, computed on demand
  /// from the bank's columns. All series/time indices are relative to
  /// the user's own sub-schedule (1-based t in [1, horizon()]).
  class UserView {
   public:
    /// Length of this user's series (releases since the user joined).
    std::size_t horizon() const { return bank_->user_horizon(index_); }
    /// Global release index (0-based) at which the user joined.
    std::size_t join_release() const { return bank_->join_release(index_); }
    /// Effective spend sequence; 0 entries are skipped releases.
    std::vector<double> epsilons() const {
      return bank_->EpsilonsFor(index_);
    }
    std::vector<double> BplSeries() const {
      return bank_->BplSeriesFor(index_);
    }
    std::vector<double> FplSeries() const {
      return bank_->FplSeriesFor(index_);
    }
    std::vector<double> TplSeries() const {
      return bank_->TplSeriesFor(index_);
    }
    StatusOr<double> Bpl(std::size_t t) const;
    StatusOr<double> Fpl(std::size_t t) const;
    StatusOr<double> Tpl(std::size_t t) const;
    /// max_t TPL_t (0 for an empty series).
    double MaxTpl() const { return bank_->MaxTplFor(index_); }
    /// Corollary 1: sum of accrued budgets.
    double UserLevelTpl() const { return bank_->UserEpsSum(index_); }

   private:
    friend class FleetEngine;
    UserView(const AccountantBank* bank, std::size_t index)
        : bank_(bank), index_(index) {}
    const AccountantBank* bank_;
    std::size_t index_;
  };

  /// Registers a user and returns its index. The user joins at the
  /// current horizon (no replay of earlier releases).
  std::size_t AddUser(std::string name, TemporalCorrelations correlations);

  /// Records one release of budget \p epsilon > 0 for every user.
  Status RecordRelease(double epsilon);

  /// Heterogeneous-schedule release: only \p participants (user
  /// indices) accrue \p epsilon; everyone else records a skip.
  Status RecordRelease(double epsilon,
                       const std::vector<std::size_t>& participants);

  /// Records a whole schedule in order (every user participates).
  Status RecordReleases(const std::vector<double>& schedule);

  std::size_t num_users() const { return bank_.num_users(); }
  std::size_t num_cohorts() const { return bank_.num_cohorts(); }
  std::size_t horizon() const { return bank_.horizon(); }
  const std::vector<double>& schedule() const { return bank_.schedule(); }

  UserView user(std::size_t index) const { return UserView(&bank_, index); }
  const std::string& user_name(std::size_t index) const {
    return names_[index];
  }

  /// Definition 5's outer max at one global time point: max over users
  /// whose series covers t. OutOfRange for t outside [1, horizon];
  /// FailedPrecondition with no users.
  StatusOr<double> MaxTplAt(std::size_t t) const { return bank_.MaxTplAt(t); }

  /// Per-user event-level alpha (max_t TPL_t), computed in parallel —
  /// the personalized privacy profile of Section III-D.
  std::vector<double> PersonalizedAlphas() const {
    return bank_.PersonalizedAlphas();
  }

  /// Overall alpha of the recorded sequence: max over users and t.
  double OverallAlpha() const { return bank_.OverallAlpha(); }

  const AccountantBank& bank() const { return bank_; }

  /// Zeroed stats when share_loss_cache is false.
  TemporalLossCache::Stats cache_stats() const { return bank_.cache_stats(); }
  /// Zeroed stats when running inline (num_threads == 1).
  ThreadPool::Stats pool_stats() const;

  struct Stats {
    /// User x release steps driven. Skipped users count: a skip still
    /// advances state (the backward loss propagates), so this is the
    /// work denominator, not the number of budgets accrued.
    std::uint64_t user_releases = 0;
    double record_seconds = 0.0;      ///< wall time inside RecordRelease
    double UserReleasesPerSecond() const {
      return record_seconds > 0.0
                 ? static_cast<double>(user_releases) / record_seconds
                 : 0.0;
    }
  };
  const Stats& stats() const { return stats_; }

 private:
  Status TimedRecord(double epsilon,
                     const std::vector<std::size_t>* participants);

  FleetEngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // null when inline
  AccountantBank bank_;
  std::vector<std::string> names_;
  Stats stats_;
};

}  // namespace tcdp

#endif  // TCDP_SERVICE_FLEET_ENGINE_H_
