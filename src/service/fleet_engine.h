#ifndef TCDP_SERVICE_FLEET_ENGINE_H_
#define TCDP_SERVICE_FLEET_ENGINE_H_

/// \file
/// Fleet-scale release accounting: thousands of per-user TplAccountants
/// driven over a shared temporal-loss cache and a work-stealing thread
/// pool.
///
/// The per-user recurrences (Equations 13/15) are embarrassingly
/// parallel across users — user A's BPL never reads user B's state — so
/// `RecordRelease` fans the forward step out over the pool. All users
/// whose adversaries know the same transition matrix share one memoized
/// loss function (core/loss_cache.h), turning the fleet's per-release
/// cost from num_users Algorithm-1 solves into (roughly) one solve plus
/// num_users hash lookups.
///
/// Determinism: each user's series depends only on its own inputs, and
/// cached evaluations are performed at quantized arguments, so the
/// computed TPL series are bitwise identical whatever the thread count
/// or interleaving — parallel replay equals serial replay exactly
/// (tested, and reasserted by bench_fleet_throughput).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/loss_cache.h"
#include "core/tpl_accountant.h"

namespace tcdp {

struct FleetEngineOptions {
  /// Worker threads for fan-out; 0 = hardware concurrency, 1 = run the
  /// per-user loop inline (no pool is created).
  std::size_t num_threads = 0;
  /// When false, every user builds its own TemporalLossFunction and no
  /// memoization happens (the single-accountant baseline, for ablation).
  bool share_loss_cache = true;
  TemporalLossCache::Options cache;
};

/// \brief A population of per-user accountants behind one release feed.
///
/// Thread-compatible: concurrent calls on one FleetEngine must be
/// externally serialized (the internal parallelism is the engine's own).
class FleetEngine {
 public:
  explicit FleetEngine(FleetEngineOptions options = {});

  /// Registers a user and returns its index. A user added after
  /// releases have been recorded replays the full recorded schedule, so
  /// every accountant always sits at the same horizon (late joiners in a
  /// live service inherit the history of the feed they join).
  std::size_t AddUser(std::string name, TemporalCorrelations correlations);

  /// Records one release of budget \p epsilon > 0 for every user, in
  /// parallel.
  Status RecordRelease(double epsilon);

  /// Records a whole schedule in order.
  Status RecordReleases(const std::vector<double>& schedule);

  std::size_t num_users() const { return users_.size(); }
  std::size_t horizon() const { return schedule_.size(); }
  const std::vector<double>& schedule() const { return schedule_; }

  const TplAccountant& user(std::size_t index) const {
    return users_[index].accountant;
  }
  const std::string& user_name(std::size_t index) const {
    return users_[index].name;
  }

  /// Definition 5's outer max at one time point: max over users of
  /// TPL_t. OutOfRange for t outside [1, horizon]; FailedPrecondition
  /// with no users.
  StatusOr<double> MaxTplAt(std::size_t t) const;

  /// Per-user event-level alpha (max_t TPL_t), computed in parallel —
  /// the personalized privacy profile of Section III-D.
  std::vector<double> PersonalizedAlphas() const;

  /// Overall alpha of the recorded sequence: max over users and t.
  double OverallAlpha() const;

  /// Zeroed stats when share_loss_cache is false.
  TemporalLossCache::Stats cache_stats() const;
  /// Zeroed stats when running inline (num_threads == 1).
  ThreadPool::Stats pool_stats() const;

  struct Stats {
    std::uint64_t user_releases = 0;  ///< user x release pairs recorded
    double record_seconds = 0.0;      ///< wall time inside RecordRelease
    double UserReleasesPerSecond() const {
      return record_seconds > 0.0
                 ? static_cast<double>(user_releases) / record_seconds
                 : 0.0;
    }
  };
  const Stats& stats() const { return stats_; }

 private:
  struct UserEntry {
    std::string name;
    TplAccountant accountant;
  };

  TplAccountant MakeAccountant(TemporalCorrelations correlations);
  /// Runs body(i) over [0, num_users) — pooled or inline per options.
  void ForEachUser(const std::function<void(std::size_t)>& body) const;

  FleetEngineOptions options_;
  std::unique_ptr<TemporalLossCache> cache_;  // null when not sharing
  std::unique_ptr<ThreadPool> pool_;          // null when inline
  std::vector<UserEntry> users_;
  std::vector<double> schedule_;
  Stats stats_;
};

}  // namespace tcdp

#endif  // TCDP_SERVICE_FLEET_ENGINE_H_
