#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#include "common/binary_io.h"

namespace tcdp {
namespace obs {
namespace {

std::atomic<bool> g_metrics_enabled{true};

constexpr std::size_t kStripes = 4;
constexpr std::size_t kMaxBuckets = 1u << 20;

/// Adds \p delta to the double stored as raw bits in \p cell.
void AtomicDoubleAdd(std::atomic<std::uint64_t>* cell, double delta) {
  std::uint64_t observed = cell->load(std::memory_order_relaxed);
  for (;;) {
    double current;
    static_assert(sizeof(current) == sizeof(observed), "double is 64-bit");
    std::memcpy(&current, &observed, sizeof(current));
    const double next_value = current + delta;
    std::uint64_t next;
    std::memcpy(&next, &next_value, sizeof(next));
    if (cell->compare_exchange_weak(observed, next,
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

void AtomicDoubleMax(std::atomic<std::uint64_t>* cell, double value) {
  std::uint64_t observed = cell->load(std::memory_order_relaxed);
  for (;;) {
    double current;
    std::memcpy(&current, &observed, sizeof(current));
    if (!(value > current)) return;
    std::uint64_t next;
    std::memcpy(&next, &value, sizeof(next));
    if (cell->compare_exchange_weak(observed, next,
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

double BitsToDouble(std::uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::size_t ThreadStripe(std::size_t num_stripes) {
  static std::atomic<unsigned> next{0};
  thread_local unsigned id = next.fetch_add(1, std::memory_order_relaxed);
  return id % num_stripes;
}

bool IsBaseNameChar(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

bool IsLabelNameChar(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

/// Splits `base{labels}` into its parts; \p labels keeps the raw text
/// between the braces ("" when absent). Assumes a validated name.
void SplitName(const std::string& name, std::string* base,
               std::string* labels) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

std::string SanitizeName(const std::string& name) {
  if (IsValidMetricName(name)) return name;
  std::string out = name.empty() ? std::string("_") : name;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (!IsBaseNameChar(out[i], i == 0)) out[i] = '_';
  }
  return out;
}

void JsonAppendEscaped(std::string* out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out->append(buffer);
        } else {
          out->push_back(c);
        }
    }
  }
}

void AppendDouble(std::string* out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out->append(buffer);
}

std::uint64_t ZigZagEncode(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

std::int64_t ZigZagDecode(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

std::uint64_t MonotonicNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// -------------------------------------------------------------- histogram

struct Histogram::Stripe {
  std::atomic<std::uint64_t> zero{0};
  std::atomic<std::uint64_t> overflow{0};
  std::atomic<std::uint64_t> sum_bits{0};
  std::atomic<std::uint64_t> max_bits{0};
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
};

Histogram::Histogram(HistogramOptions options) : options_(options) {
  // Harden the configuration: a broken spec degrades to the default
  // rather than dividing by log(1) below.
  if (!(options_.relative_error > 0.0) || !(options_.relative_error < 1.0)) {
    options_.relative_error = 0.05;
  }
  if (!(options_.min_value > 0.0) || !std::isfinite(options_.min_value)) {
    options_.min_value = 1e-9;
  }
  if (!(options_.max_value > options_.min_value) ||
      !std::isfinite(options_.max_value)) {
    options_.max_value = options_.min_value * 1e12;
  }
  const double gamma =
      (1.0 + options_.relative_error) / (1.0 - options_.relative_error);
  log_gamma_ = std::log(gamma);
  inv_log_gamma_ = 1.0 / log_gamma_;
  const double span =
      std::log(options_.max_value / options_.min_value) * inv_log_gamma_;
  num_buckets_ = static_cast<std::size_t>(std::ceil(span));
  if (num_buckets_ < 1) num_buckets_ = 1;
  if (num_buckets_ > kMaxBuckets) num_buckets_ = kMaxBuckets;
  num_stripes_ = kStripes;
  stripes_ = new Stripe[num_stripes_];
  for (std::size_t s = 0; s < num_stripes_; ++s) {
    stripes_[s].buckets =
        std::make_unique<std::atomic<std::uint64_t>[]>(num_buckets_);
    for (std::size_t i = 0; i < num_buckets_; ++i) {
      stripes_[s].buckets[i].store(0, std::memory_order_relaxed);
    }
  }
}

Histogram::~Histogram() { delete[] stripes_; }

std::size_t Histogram::BucketIndex(double value) const {
  if (!(value > options_.min_value)) return 0;
  const double position = std::log(value / options_.min_value) * inv_log_gamma_;
  std::size_t index = static_cast<std::size_t>(position);
  if (index >= num_buckets_) index = num_buckets_ - 1;
  return index;
}

double Histogram::BucketUpperEdge(std::size_t index) const {
  const double edge =
      options_.min_value * std::exp(log_gamma_ * static_cast<double>(index + 1));
  return std::min(edge, options_.max_value);
}

double Histogram::BucketValue(std::size_t index) const {
  const double lo =
      options_.min_value * std::exp(log_gamma_ * static_cast<double>(index));
  const double gamma = std::exp(log_gamma_);
  // The point equalizing the relative error against both bucket edges:
  // rep/lo - 1 == 1 - rep/(lo*gamma) == (gamma-1)/(gamma+1) == a.
  const double rep = 2.0 * lo * gamma / (1.0 + gamma);
  return std::min(rep, options_.max_value);
}

void Histogram::Observe(double value) {
  Stripe& stripe = stripes_[ThreadStripe(num_stripes_)];
  if (!std::isfinite(value) || !(value > 0.0)) {
    stripe.zero.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  AtomicDoubleAdd(&stripe.sum_bits, value);
  AtomicDoubleMax(&stripe.max_bits, value);
  if (value >= options_.max_value) {
    stripe.overflow.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  stripe.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.relative_error = options_.relative_error;
  snapshot.min_value = options_.min_value;
  snapshot.max_value = options_.max_value;
  snapshot.buckets.assign(num_buckets_, 0);
  for (std::size_t s = 0; s < num_stripes_; ++s) {
    const Stripe& stripe = stripes_[s];
    snapshot.zero_count += stripe.zero.load(std::memory_order_relaxed);
    snapshot.overflow_count +=
        stripe.overflow.load(std::memory_order_relaxed);
    snapshot.sum +=
        BitsToDouble(stripe.sum_bits.load(std::memory_order_relaxed));
    snapshot.max_observed = std::max(
        snapshot.max_observed,
        BitsToDouble(stripe.max_bits.load(std::memory_order_relaxed)));
    for (std::size_t i = 0; i < num_buckets_; ++i) {
      snapshot.buckets[i] +=
          stripe.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return snapshot;
}

std::uint64_t HistogramSnapshot::count() const {
  std::uint64_t total = zero_count + overflow_count;
  for (std::uint64_t bucket : buckets) total += bucket;
  return total;
}

double HistogramSnapshot::Quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  if (rank <= zero_count) return 0.0;
  std::uint64_t cumulative = zero_count;
  const double gamma = (1.0 + relative_error) / (1.0 - relative_error);
  const double log_gamma = std::log(gamma);
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (rank <= cumulative) {
      const double lo = min_value * std::exp(log_gamma * static_cast<double>(i));
      return std::min(2.0 * lo * gamma / (1.0 + gamma), max_value);
    }
  }
  return max_value;
}

bool HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (relative_error != other.relative_error ||
      min_value != other.min_value || max_value != other.max_value ||
      buckets.size() != other.buckets.size()) {
    return false;
  }
  zero_count += other.zero_count;
  overflow_count += other.overflow_count;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  sum += other.sum;
  max_observed = std::max(max_observed, other.max_observed);
  return true;
}

// --------------------------------------------------------------- registry

struct Registry::Impl {
  mutable std::mutex mu;
  // std::map: snapshots iterate sorted, so every export is
  // deterministic without a sort pass.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
  // Kind-collision fallbacks: live forever, never exported.
  std::vector<std::unique_ptr<Counter>> detached_counters;
  std::vector<std::unique_ptr<Gauge>> detached_gauges;
  std::vector<std::unique_ptr<Histogram>> detached_histograms;
};

Registry::Registry() : impl_(new Impl) {}
Registry::~Registry() { delete impl_; }

Registry& Registry::Default() {
  // Leaked on purpose: instruments are handed out as raw pointers and
  // may be touched by worker threads during static destruction.
  static Registry* registry = new Registry;
  return *registry;
}

Counter* Registry::GetCounter(const std::string& name) {
  const std::string key = SanitizeName(name);
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->counters.find(key);
  if (it != impl_->counters.end()) return it->second.get();
  if (impl_->gauges.count(key) != 0 || impl_->histograms.count(key) != 0) {
    impl_->detached_counters.push_back(std::make_unique<Counter>());
    return impl_->detached_counters.back().get();
  }
  return impl_->counters.emplace(key, std::make_unique<Counter>())
      .first->second.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  const std::string key = SanitizeName(name);
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->gauges.find(key);
  if (it != impl_->gauges.end()) return it->second.get();
  if (impl_->counters.count(key) != 0 || impl_->histograms.count(key) != 0) {
    impl_->detached_gauges.push_back(std::make_unique<Gauge>());
    return impl_->detached_gauges.back().get();
  }
  return impl_->gauges.emplace(key, std::make_unique<Gauge>())
      .first->second.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  HistogramOptions options) {
  const std::string key = SanitizeName(name);
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->histograms.find(key);
  if (it != impl_->histograms.end()) return it->second.get();
  if (impl_->counters.count(key) != 0 || impl_->gauges.count(key) != 0) {
    impl_->detached_histograms.push_back(
        std::make_unique<Histogram>(options));
    return impl_->detached_histograms.back().get();
  }
  return impl_->histograms.emplace(key, std::make_unique<Histogram>(options))
      .first->second.get();
}

MetricsSnapshot Registry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(impl_->mu);
  snapshot.counters.reserve(impl_->counters.size());
  for (const auto& [name, counter] : impl_->counters) {
    snapshot.counters.emplace_back(name, counter->value());
  }
  snapshot.gauges.reserve(impl_->gauges.size());
  for (const auto& [name, gauge] : impl_->gauges) {
    snapshot.gauges.emplace_back(name, gauge->value());
  }
  snapshot.histograms.reserve(impl_->histograms.size());
  for (const auto& [name, histogram] : impl_->histograms) {
    snapshot.histograms.emplace_back(name, histogram->Snapshot());
  }
  return snapshot;
}

// ------------------------------------------------------------ conveniences

std::string WithLabel(const std::string& base, const std::string& key,
                      const std::string& value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') escaped.push_back('\\');
    if (c == '\n') {
      escaped.append("\\n");
      continue;
    }
    escaped.push_back(c);
  }
  std::string out;
  if (!base.empty() && base.back() == '}') {
    out = base.substr(0, base.size() - 1);
    out += ",";
  } else {
    out = base;
    out += "{";
  }
  out += key;
  out += "=\"";
  out += escaped;
  out += "\"}";
  return out;
}

bool IsValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  std::size_t i = 0;
  if (!IsBaseNameChar(name[0], /*first=*/true)) return false;
  for (i = 1; i < name.size() && IsBaseNameChar(name[i], false); ++i) {
  }
  if (i == name.size()) return true;
  if (name[i] != '{' || name.back() != '}') return false;
  ++i;
  const std::size_t end = name.size() - 1;
  if (i == end) return true;  // empty label set: base{}
  while (i < end) {
    if (!IsLabelNameChar(name[i], /*first=*/true)) return false;
    ++i;
    while (i < end && IsLabelNameChar(name[i], false)) ++i;
    if (i + 1 >= end || name[i] != '=' || name[i + 1] != '"') return false;
    i += 2;
    while (i < end && name[i] != '"') {
      if (name[i] == '\\') ++i;  // escaped character
      if (name[i] == '\n') return false;
      ++i;
    }
    if (i >= end || name[i] != '"') return false;
    ++i;
    if (i == end) return true;
    if (name[i] != ',') return false;
    ++i;
  }
  return false;
}

ScopedLatencyTimer::ScopedLatencyTimer(Histogram* histogram)
    : histogram_(MetricsEnabled() ? histogram : nullptr),
      start_ns_(histogram_ != nullptr ? MonotonicNanos() : 0) {}

ScopedLatencyTimer::~ScopedLatencyTimer() {
  if (histogram_ == nullptr) return;
  histogram_->Observe(static_cast<double>(MonotonicNanos() - start_ns_) *
                      1e-9);
}

// ------------------------------------------------------- serialization

namespace {
constexpr std::uint8_t kSnapshotVersion = 1;
}  // namespace

std::string EncodeMetricsSnapshot(const MetricsSnapshot& snapshot) {
  std::string out;
  out.push_back(static_cast<char>(kSnapshotVersion));
  PutVarint64(&out, snapshot.counters.size());
  for (const auto& [name, value] : snapshot.counters) {
    PutLengthPrefixed(&out, name);
    PutVarint64(&out, value);
  }
  PutVarint64(&out, snapshot.gauges.size());
  for (const auto& [name, value] : snapshot.gauges) {
    PutLengthPrefixed(&out, name);
    PutVarint64(&out, ZigZagEncode(value));
  }
  PutVarint64(&out, snapshot.histograms.size());
  for (const auto& [name, hist] : snapshot.histograms) {
    PutLengthPrefixed(&out, name);
    PutDoubleBits(&out, hist.relative_error);
    PutDoubleBits(&out, hist.min_value);
    PutDoubleBits(&out, hist.max_value);
    PutVarint64(&out, hist.zero_count);
    PutVarint64(&out, hist.overflow_count);
    PutDoubleBits(&out, hist.sum);
    PutDoubleBits(&out, hist.max_observed);
    PutVarint64(&out, hist.buckets.size());
    // Run-trim: only the populated [first, last] window travels.
    std::size_t first = hist.buckets.size();
    std::size_t last = 0;
    for (std::size_t i = 0; i < hist.buckets.size(); ++i) {
      if (hist.buckets[i] != 0) {
        if (first == hist.buckets.size()) first = i;
        last = i;
      }
    }
    if (first == hist.buckets.size()) {
      PutVarint64(&out, 0);
      PutVarint64(&out, 0);
    } else {
      PutVarint64(&out, first);
      PutVarint64(&out, last - first + 1);
      for (std::size_t i = first; i <= last; ++i) {
        PutVarint64(&out, hist.buckets[i]);
      }
    }
  }
  return out;
}

StatusOr<MetricsSnapshot> DecodeMetricsSnapshot(const std::string& payload) {
  BinaryCursor cursor(payload);
  std::uint8_t version = 0;
  TCDP_RETURN_IF_ERROR(cursor.ReadByte(&version));
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument(
        "DecodeMetricsSnapshot: unsupported version " +
        std::to_string(version));
  }
  MetricsSnapshot snapshot;
  std::uint64_t count = 0;
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&count));
  if (count > cursor.remaining() / 2) {
    return Status::InvalidArgument(
        "DecodeMetricsSnapshot: counter count exceeds payload");
  }
  snapshot.counters.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string name;
    std::uint64_t value = 0;
    TCDP_RETURN_IF_ERROR(cursor.ReadLengthPrefixed(&name));
    TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&value));
    snapshot.counters.emplace_back(std::move(name), value);
  }
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&count));
  if (count > cursor.remaining() / 2) {
    return Status::InvalidArgument(
        "DecodeMetricsSnapshot: gauge count exceeds payload");
  }
  snapshot.gauges.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string name;
    std::uint64_t value = 0;
    TCDP_RETURN_IF_ERROR(cursor.ReadLengthPrefixed(&name));
    TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&value));
    snapshot.gauges.emplace_back(std::move(name), ZigZagDecode(value));
  }
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string name;
    HistogramSnapshot hist;
    TCDP_RETURN_IF_ERROR(cursor.ReadLengthPrefixed(&name));
    TCDP_RETURN_IF_ERROR(cursor.ReadDoubleBits(&hist.relative_error));
    TCDP_RETURN_IF_ERROR(cursor.ReadDoubleBits(&hist.min_value));
    TCDP_RETURN_IF_ERROR(cursor.ReadDoubleBits(&hist.max_value));
    if (!(hist.relative_error > 0.0) || !(hist.relative_error < 1.0) ||
        !(hist.min_value > 0.0) || !std::isfinite(hist.min_value) ||
        !(hist.max_value > hist.min_value) ||
        !std::isfinite(hist.max_value)) {
      return Status::InvalidArgument(
          "DecodeMetricsSnapshot: malformed histogram configuration for '" +
          name + "'");
    }
    TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&hist.zero_count));
    TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&hist.overflow_count));
    TCDP_RETURN_IF_ERROR(cursor.ReadDoubleBits(&hist.sum));
    TCDP_RETURN_IF_ERROR(cursor.ReadDoubleBits(&hist.max_observed));
    std::uint64_t total_buckets = 0;
    std::uint64_t first = 0;
    std::uint64_t window = 0;
    TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&total_buckets));
    TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&first));
    TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&window));
    if (total_buckets > kMaxBuckets || first > total_buckets ||
        window > total_buckets - first || window > cursor.remaining()) {
      return Status::InvalidArgument(
          "DecodeMetricsSnapshot: bucket window exceeds payload for '" +
          name + "'");
    }
    hist.buckets.assign(static_cast<std::size_t>(total_buckets), 0);
    for (std::uint64_t b = 0; b < window; ++b) {
      std::uint64_t bucket = 0;
      TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&bucket));
      hist.buckets[static_cast<std::size_t>(first + b)] = bucket;
    }
    snapshot.histograms.emplace_back(std::move(name), std::move(hist));
  }
  if (!cursor.empty()) {
    return Status::InvalidArgument(
        "DecodeMetricsSnapshot: trailing bytes in payload");
  }
  return snapshot;
}

std::string MetricsJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"tcdp_metrics_version\": 1,\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    JsonAppendEscaped(&out, name);
    out += "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    JsonAppendEscaped(&out, name);
    out += "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    JsonAppendEscaped(&out, name);
    out += "\": {\"count\": " + std::to_string(hist.count());
    out += ", \"sum\": ";
    AppendDouble(&out, hist.sum);
    out += ", \"p50\": ";
    AppendDouble(&out, hist.Quantile(0.50));
    out += ", \"p90\": ";
    AppendDouble(&out, hist.Quantile(0.90));
    out += ", \"p99\": ";
    AppendDouble(&out, hist.Quantile(0.99));
    out += ", \"max\": ";
    AppendDouble(&out, hist.max_observed);
    out += "}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string MetricsPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string base;
  std::string labels;
  std::string last_typed;
  auto type_line = [&](const std::string& metric, const char* kind) {
    if (metric == last_typed) return;
    last_typed = metric;
    out += "# TYPE " + metric + " " + kind + "\n";
  };
  for (const auto& [name, value] : snapshot.counters) {
    SplitName(name, &base, &labels);
    type_line(base, "counter");
    out += base;
    if (!labels.empty()) out += "{" + labels + "}";
    out += " " + std::to_string(value) + "\n";
  }
  last_typed.clear();
  for (const auto& [name, value] : snapshot.gauges) {
    SplitName(name, &base, &labels);
    type_line(base, "gauge");
    out += base;
    if (!labels.empty()) out += "{" + labels + "}";
    out += " " + std::to_string(value) + "\n";
  }
  last_typed.clear();
  for (const auto& [name, hist] : snapshot.histograms) {
    SplitName(name, &base, &labels);
    type_line(base, "histogram");
    const double gamma =
        (1.0 + hist.relative_error) / (1.0 - hist.relative_error);
    const double log_gamma = std::log(gamma);
    // Zero/unrepresentable observations sit below every finite edge.
    std::uint64_t cumulative = hist.zero_count;
    auto bucket_line = [&](const char* le, std::uint64_t cum) {
      out += base + "_bucket{";
      if (!labels.empty()) out += labels + ",";
      out += "le=\"";
      out += le;
      out += "\"} " + std::to_string(cum) + "\n";
    };
    for (std::size_t i = 0; i < hist.buckets.size(); ++i) {
      if (hist.buckets[i] == 0) continue;  // sparse: skip empty edges
      cumulative += hist.buckets[i];
      const double edge = std::min(
          hist.min_value * std::exp(log_gamma * static_cast<double>(i + 1)),
          hist.max_value);
      char buffer[48];
      std::snprintf(buffer, sizeof(buffer), "%.9g", edge);
      bucket_line(buffer, cumulative);
    }
    bucket_line("+Inf", hist.count());
    out += base + "_sum";
    if (!labels.empty()) out += "{" + labels + "}";
    out += " ";
    AppendDouble(&out, hist.sum);
    out += "\n" + base + "_count";
    if (!labels.empty()) out += "{" + labels + "}";
    out += " " + std::to_string(hist.count()) + "\n";
  }
  return out;
}

}  // namespace obs
}  // namespace tcdp
