#ifndef TCDP_OBS_PROCESS_METRICS_H_
#define TCDP_OBS_PROCESS_METRICS_H_

/// \file
/// Process self-metrics, refreshed at export points rather than on a
/// timer of their own: every surface that serializes the registry
/// (kMetrics handler, MetricsDumper, flight recorder, CLI final dump)
/// calls UpdateProcessMetrics() first, so the gauges are exactly as
/// fresh as the snapshot they ride in.
///
/// Gauges (all int64, same schema as every other gauge):
///
/// * `tcdp_process_uptime_seconds` — monotonic-clock seconds since the
///   process first touched the obs layer.
/// * `tcdp_process_rss_bytes` — resident set size from
///   `/proc/self/statm` x page size. Linux-only; on platforms without
///   procfs the gauge is simply never registered (graceful absence,
///   not a zero lie).
/// * `tcdp_process_open_fds` — open descriptor count from
///   `/proc/self/fd`, same absence rule.

namespace tcdp {
namespace obs {

/// Refreshes the process gauges in Registry::Default(). Cheap (two
/// procfs reads); no-op for the procfs-backed gauges when /proc is
/// unavailable. Skips everything when metrics are disabled.
void UpdateProcessMetrics();

}  // namespace obs
}  // namespace tcdp

#endif  // TCDP_OBS_PROCESS_METRICS_H_
