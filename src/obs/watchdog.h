#ifndef TCDP_OBS_WATCHDOG_H_
#define TCDP_OBS_WATCHDOG_H_

/// \file
/// Active self-monitoring on top of the passive metrics registry:
/// components publish heartbeats, a watchdog thread classifies stalls.
///
/// **Heartbeats.** Each long-lived component (shard workers, the net
/// I/O thread, the metrics dumper) registers a named heartbeat and
/// advances it from its own loop: `Beat()` is two relaxed atomic
/// stores plus one steady-clock read — a monotonic progress counter
/// and a last-activity timestamp. An optional `pending` probe reports
/// outstanding work (queue depth + in-flight command), which is what
/// separates "idle" from "stuck": an idle worker with an empty queue
/// never ages into a stall.
///
/// **Watchdog.** A dedicated thread samples every heartbeat on a
/// configurable interval and classifies:
///
/// - `kWorker`: pending work but a frozen progress counter for
///   `stall_ticks` consecutive scans — the queue-non-empty-but-
///   tick-counter-frozen signature. When the last activity is also
///   older than `wal_fsync_p99_factor` x the registry's observed
///   p99 WAL fsync latency, the stall is annotated as WAL-suspect
///   (the append path, not the bank, is the likely culprit).
/// - `kEventLoop`: not polling — last activity older than the loop's
///   own declared period plus `stall_ticks` scan intervals
///   (the poll loop touches its heartbeat every readiness round, so
///   staleness means the loop is wedged, not idle).
/// - `kPeriodic`: a timer-driven component (metrics dumper) whose
///   last activity is older than `stall_ticks` x its declared period.
///
/// A stall transition emits a structured TCDP_LOG warning, bumps
/// `tcdp_watchdog_stalls_total{component=...}`, and fires the flight
/// recorder (obs/flight_recorder.h) so the moment of failure is
/// captured, not the aftermath. Recovery transitions are logged too.
/// The scan result doubles as the kHealth/kReady wire answer
/// (docs/PROTOCOL.md): healthy = no component stalled; ready = the
/// host marked recovery complete AND healthy.
///
/// Everything here lives beside the accounting hot path, never in it:
/// heartbeat publication is relaxed atomics, scanning happens on the
/// watchdog's own thread, and the obs bench suite's bitwise/overhead
/// gates run with the watchdog enabled.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace tcdp {
namespace obs {

class FlightRecorder;

enum class HeartbeatKind : std::uint8_t {
  kWorker = 0,     ///< queue-driven: stalls when pending > 0 and frozen
  kEventLoop = 1,  ///< poll-driven: stalls when not polling
  kPeriodic = 2,   ///< timer-driven: stalls when a period is missed
};

const char* HeartbeatKindName(HeartbeatKind kind);

/// \brief The cell a component beats into. All operations are relaxed
/// atomics; one writer (the component), any number of sampling
/// readers (the watchdog).
class Heartbeat {
 public:
  /// One unit of progress: bump the counter, stamp the clock.
  void Beat();
  /// Activity without progress (an event loop waking up to no work).
  void Touch();

  std::uint64_t progress() const {
    return progress_.load(std::memory_order_relaxed);
  }
  std::uint64_t last_active_ns() const {
    return last_active_ns_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> progress_{0};
  std::atomic<std::uint64_t> last_active_ns_{0};
};

struct HeartbeatInfo {
  std::string name;  ///< e.g. "shard-0", "net-io", "metrics-dumper"
  HeartbeatKind kind = HeartbeatKind::kWorker;
  /// The component's own cadence (poll timeout, dump interval); only
  /// meaningful for kEventLoop/kPeriodic freshness checks.
  std::uint64_t expected_period_ns = 0;
  /// Outstanding-work probe (queue depth + in-flight). Invoked on the
  /// watchdog thread under the registry lock, so it must only read
  /// atomics and must stay valid until the handle unregisters.
  std::function<std::uint64_t()> pending;
};

class HeartbeatRegistry;

/// \brief RAII registration: destroying (or moving over) the handle
/// unregisters the heartbeat, after which the watchdog can no longer
/// invoke its `pending` probe — components unregister before tearing
/// down the state the probe reads.
class HeartbeatHandle {
 public:
  HeartbeatHandle() = default;
  ~HeartbeatHandle();
  HeartbeatHandle(HeartbeatHandle&& other) noexcept;
  HeartbeatHandle& operator=(HeartbeatHandle&& other) noexcept;
  HeartbeatHandle(const HeartbeatHandle&) = delete;
  HeartbeatHandle& operator=(const HeartbeatHandle&) = delete;

  bool registered() const { return cell_ != nullptr; }
  /// No-ops on an empty handle, so call sites need no null guards.
  void Beat() {
    if (cell_ != nullptr) cell_->Beat();
  }
  void Touch() {
    if (cell_ != nullptr) cell_->Touch();
  }
  void Unregister();

 private:
  friend class HeartbeatRegistry;
  HeartbeatRegistry* registry_ = nullptr;
  std::uint64_t id_ = 0;
  std::shared_ptr<Heartbeat> cell_;
};

/// \brief Process-wide table of live heartbeats. Registration and
/// sampling lock; beating never does.
class HeartbeatRegistry {
 public:
  static HeartbeatRegistry& Default();

  HeartbeatRegistry();
  ~HeartbeatRegistry();
  HeartbeatRegistry(const HeartbeatRegistry&) = delete;
  HeartbeatRegistry& operator=(const HeartbeatRegistry&) = delete;

  /// Registers \p info and stamps the heartbeat's first activity.
  HeartbeatHandle Register(HeartbeatInfo info);

  struct Sample {
    std::uint64_t id = 0;
    std::string name;
    HeartbeatKind kind = HeartbeatKind::kWorker;
    std::uint64_t expected_period_ns = 0;
    std::uint64_t progress = 0;
    std::uint64_t last_active_ns = 0;
    std::uint64_t pending = 0;
  };
  /// Point-in-time copy of every live heartbeat (probes included).
  std::vector<Sample> SampleAll() const;

  std::size_t size() const;

 private:
  friend class HeartbeatHandle;
  void Unregister(std::uint64_t id);

  struct Impl;
  Impl* impl_;
};

// ---------------------------------------------------------------- watchdog

struct WatchdogOptions {
  /// Scan cadence. 0 disables Start() (scans can still be driven
  /// manually via ScanOnceForTesting).
  std::uint64_t interval_ms = 1000;
  /// Consecutive frozen scans before a worker stall fires (>= 1).
  std::uint64_t stall_ticks = 3;
  /// A frozen worker whose last activity is older than this factor x
  /// the observed p99 of `tcdp_wal_fsync_seconds` gets the WAL-suspect
  /// annotation.
  double wal_fsync_p99_factor = 8.0;
  /// Fired on every stall transition (not owned; must outlive the
  /// watchdog). Null skips bundle capture, stalls still log + count.
  FlightRecorder* flight_recorder = nullptr;
};

struct ComponentHealth {
  std::string name;
  HeartbeatKind kind = HeartbeatKind::kWorker;
  std::uint64_t progress = 0;
  std::uint64_t pending = 0;
  std::uint64_t age_ns = 0;  ///< now - last activity, at scan time
  bool stalled = false;
  /// Scan counter value at which the current stall was detected
  /// (0 when not stalled) — what lets tests assert detection within
  /// N scan intervals without racing wall clocks.
  std::uint64_t stall_detected_scan = 0;
  std::string detail;  ///< human-readable classification
};

struct HealthSnapshot {
  bool healthy = true;  ///< no component stalled at the last scan
  bool ready = false;   ///< host marked ready AND healthy
  std::uint64_t scans = 0;
  std::vector<ComponentHealth> components;
};

/// \brief The scanning thread. Thread-safe interface; one instance per
/// process is typical (`tcdp serve` owns one).
class Watchdog {
 public:
  explicit Watchdog(WatchdogOptions options = {});
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Spawns the scan thread. FailedPrecondition when already started
  /// or interval_ms is 0.
  Status Start();
  /// Stops and joins the scan thread. Idempotent; run by the dtor.
  void Stop();

  /// Readiness latch for kReady: the host flips this on once recovery
  /// (or preload) completes. Readiness also requires healthy.
  void SetReady(bool ready);

  /// The last scan's classification (plus the readiness latch).
  /// Cheap: copies the cached result, does not rescan.
  HealthSnapshot Snapshot() const;

  std::uint64_t scans() const;

  /// Runs one scan synchronously on the calling thread (tests, and
  /// hosts that want a scan before the first interval elapses).
  void ScanOnceForTesting();

 private:
  struct Tracked;
  struct Impl;

  void Loop();
  void Scan();

  WatchdogOptions options_;
  Impl* impl_;
};

}  // namespace obs
}  // namespace tcdp

#endif  // TCDP_OBS_WATCHDOG_H_
