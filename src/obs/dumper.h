#ifndef TCDP_OBS_DUMPER_H_
#define TCDP_OBS_DUMPER_H_

/// \file
/// File export for the metrics registry: atomic single-file writes and
/// the background MetricsDumper thread `tcdp serve` runs next to the
/// net event loop. Lived in tools/cli.cc until the dumper grew real
/// responsibilities (heartbeat, process metrics, guaranteed final
/// dump) and needed direct test coverage.

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/watchdog.h"

namespace tcdp {
namespace obs {

/// Crash-safe file publication (tmp + rename), so a scraper polling
/// the dump never reads a half-written file.
Status WriteFileAtomic(const std::string& path, const std::string& contents);

/// Dumps the registry to the configured paths: JSON
/// (scripts/check_metrics_schema.py's schema, shared with
/// `tcdp stats --json`) and/or Prometheus text exposition. Refreshes
/// the process self-metrics first so every dump carries current
/// uptime/RSS/fd gauges. Empty paths are skipped.
Status DumpMetricsFiles(const std::string& json_path,
                        const std::string& prom_path);

/// \brief Background thread republishing the metrics files every
/// interval while Serve blocks the main thread. Snapshot/serialize
/// never touch the service, only the obs registry (thread-safe by
/// construction). Publishes a kPeriodic heartbeat so the watchdog
/// notices a wedged dumper, and always lands one final dump from the
/// destructor — the exit-path files are never stale.
class MetricsDumper {
 public:
  MetricsDumper(std::string json_path, std::string prom_path,
                std::size_t interval_ms);
  ~MetricsDumper();
  MetricsDumper(const MetricsDumper&) = delete;
  MetricsDumper& operator=(const MetricsDumper&) = delete;

  /// Synchronous dump on the calling thread (also counted).
  Status DumpNow();

  /// Completed dumps (interval + explicit + final).
  std::uint64_t dumps() const;

 private:
  void Loop();
  bool active() const {
    return !json_path_.empty() || !prom_path_.empty();
  }

  std::string json_path_;
  std::string prom_path_;
  std::size_t interval_ms_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::uint64_t dumps_ = 0;
  HeartbeatHandle heartbeat_;
  std::thread worker_;
};

}  // namespace obs
}  // namespace tcdp

#endif  // TCDP_OBS_DUMPER_H_
