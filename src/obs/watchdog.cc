#include "obs/watchdog.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace tcdp {
namespace obs {

const char* HeartbeatKindName(HeartbeatKind kind) {
  switch (kind) {
    case HeartbeatKind::kWorker:
      return "worker";
    case HeartbeatKind::kEventLoop:
      return "event-loop";
    case HeartbeatKind::kPeriodic:
      return "periodic";
  }
  return "unknown";
}

void Heartbeat::Beat() {
  progress_.fetch_add(1, std::memory_order_relaxed);
  last_active_ns_.store(MonotonicNanos(), std::memory_order_relaxed);
}

void Heartbeat::Touch() {
  last_active_ns_.store(MonotonicNanos(), std::memory_order_relaxed);
}

// ------------------------------------------------------------- registry

struct HeartbeatRegistry::Impl {
  mutable std::mutex mu;
  std::uint64_t next_id = 1;
  std::map<std::uint64_t, std::pair<HeartbeatInfo, std::shared_ptr<Heartbeat>>>
      entries;
};

HeartbeatRegistry& HeartbeatRegistry::Default() {
  // Leaked like Registry::Default(): heartbeat handles held by static
  // or late-destroyed objects must be able to unregister at any point
  // during shutdown.
  static HeartbeatRegistry* registry = new HeartbeatRegistry;
  return *registry;
}

HeartbeatRegistry::HeartbeatRegistry() : impl_(new Impl) {}

HeartbeatRegistry::~HeartbeatRegistry() { delete impl_; }

HeartbeatHandle HeartbeatRegistry::Register(HeartbeatInfo info) {
  auto cell = std::make_shared<Heartbeat>();
  cell->Touch();  // registration counts as activity
  HeartbeatHandle handle;
  handle.registry_ = this;
  handle.cell_ = cell;
  std::lock_guard<std::mutex> lock(impl_->mu);
  handle.id_ = impl_->next_id++;
  impl_->entries.emplace(handle.id_,
                         std::make_pair(std::move(info), std::move(cell)));
  return handle;
}

void HeartbeatRegistry::Unregister(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->entries.erase(id);
}

std::vector<HeartbeatRegistry::Sample> HeartbeatRegistry::SampleAll() const {
  std::vector<Sample> samples;
  std::lock_guard<std::mutex> lock(impl_->mu);
  samples.reserve(impl_->entries.size());
  for (const auto& entry : impl_->entries) {
    const HeartbeatInfo& info = entry.second.first;
    const Heartbeat& cell = *entry.second.second;
    Sample sample;
    sample.id = entry.first;
    sample.name = info.name;
    sample.kind = info.kind;
    sample.expected_period_ns = info.expected_period_ns;
    sample.progress = cell.progress();
    sample.last_active_ns = cell.last_active_ns();
    sample.pending = info.pending ? info.pending() : 0;
    samples.push_back(std::move(sample));
  }
  return samples;
}

std::size_t HeartbeatRegistry::size() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->entries.size();
}

HeartbeatHandle::~HeartbeatHandle() { Unregister(); }

HeartbeatHandle::HeartbeatHandle(HeartbeatHandle&& other) noexcept
    : registry_(other.registry_), id_(other.id_),
      cell_(std::move(other.cell_)) {
  other.registry_ = nullptr;
  other.id_ = 0;
  other.cell_.reset();
}

HeartbeatHandle& HeartbeatHandle::operator=(HeartbeatHandle&& other) noexcept {
  if (this != &other) {
    Unregister();
    registry_ = other.registry_;
    id_ = other.id_;
    cell_ = std::move(other.cell_);
    other.registry_ = nullptr;
    other.id_ = 0;
    other.cell_.reset();
  }
  return *this;
}

void HeartbeatHandle::Unregister() {
  if (registry_ != nullptr && cell_ != nullptr) {
    registry_->Unregister(id_);
  }
  registry_ = nullptr;
  id_ = 0;
  cell_.reset();
}

// ------------------------------------------------------------- watchdog

struct Watchdog::Tracked {
  std::uint64_t last_progress = 0;
  std::uint64_t frozen_scans = 0;  // consecutive scans frozen with pending
  bool stalled = false;
  std::uint64_t detected_scan = 0;
};

struct Watchdog::Impl {
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
  bool started = false;
  std::thread thread;

  std::atomic<bool> ready{false};
  std::atomic<std::uint64_t> scans{0};

  // Guarded by mu: per-heartbeat scan state and the cached snapshot.
  std::map<std::uint64_t, Tracked> tracked;
  HealthSnapshot last;

  // Lazily resolved stall counters, one per component name.
  std::map<std::string, Counter*> stall_counters;
  Counter* scans_total = nullptr;
};

Watchdog::Watchdog(WatchdogOptions options)
    : options_(options), impl_(new Impl) {
  if (options_.stall_ticks == 0) options_.stall_ticks = 1;
}

Watchdog::~Watchdog() {
  Stop();
  delete impl_;
}

Status Watchdog::Start() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->started) {
    return Status::FailedPrecondition("watchdog already started");
  }
  if (options_.interval_ms == 0) {
    return Status::FailedPrecondition("watchdog interval must be > 0");
  }
  impl_->stop = false;
  impl_->started = true;
  impl_->thread = std::thread(&Watchdog::Loop, this);
  return Status::OK();
}

void Watchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (!impl_->started) return;
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  impl_->thread.join();
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->started = false;
}

void Watchdog::SetReady(bool ready) {
  impl_->ready.store(ready, std::memory_order_relaxed);
}

HealthSnapshot Watchdog::Snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  HealthSnapshot snapshot = impl_->last;
  snapshot.ready =
      impl_->ready.load(std::memory_order_relaxed) && snapshot.healthy;
  return snapshot;
}

std::uint64_t Watchdog::scans() const {
  return impl_->scans.load(std::memory_order_relaxed);
}

void Watchdog::ScanOnceForTesting() { Scan(); }

void Watchdog::Loop() {
  std::unique_lock<std::mutex> lock(impl_->mu);
  while (!impl_->stop) {
    impl_->cv.wait_for(lock, std::chrono::milliseconds(options_.interval_ms));
    if (impl_->stop) break;
    lock.unlock();
    Scan();
    lock.lock();
  }
}

namespace {

/// The registry's observed p99 WAL fsync latency in nanoseconds, or 0
/// when the histogram has no observations yet. One registry snapshot
/// per scan is cheap at watchdog cadence.
std::uint64_t WalFsyncP99Ns(const MetricsSnapshot& metrics) {
  for (const auto& entry : metrics.histograms) {
    if (entry.first == "tcdp_wal_fsync_seconds" && entry.second.count() > 0) {
      return static_cast<std::uint64_t>(entry.second.Quantile(0.99) * 1e9);
    }
  }
  return 0;
}

/// Worst follower lag in records (tcdp_repl_lag_records gauge,
/// published by the replication stream server), or 0 when no primary
/// role / no followers. Same per-scan-snapshot pattern as the WAL
/// fsync annotation.
std::int64_t ReplLagRecords(const MetricsSnapshot& metrics) {
  for (const auto& entry : metrics.gauges) {
    if (entry.first == "tcdp_repl_lag_records") return entry.second;
  }
  return 0;
}

}  // namespace

void Watchdog::Scan() {
  const std::uint64_t now_ns = MonotonicNanos();
  const std::uint64_t interval_ns = options_.interval_ms * 1000000ull;
  const std::vector<HeartbeatRegistry::Sample> samples =
      HeartbeatRegistry::Default().SampleAll();
  const MetricsSnapshot metrics = Registry::Default().Snapshot();
  const std::uint64_t fsync_p99_ns = WalFsyncP99Ns(metrics);
  const std::int64_t repl_lag_records = ReplLagRecords(metrics);

  // Stall transitions collected under the lock, acted on after — the
  // flight recorder serializes the registry itself and must not run
  // under the watchdog mutex.
  std::vector<std::string> fired;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    const std::uint64_t scan =
        impl_->scans.fetch_add(1, std::memory_order_relaxed) + 1;

    HealthSnapshot next;
    next.scans = scan;
    next.components.reserve(samples.size());

    // Drop state for heartbeats that unregistered since the last scan.
    std::map<std::uint64_t, Tracked> tracked;
    for (const auto& sample : samples) {
      Tracked state;
      auto it = impl_->tracked.find(sample.id);
      if (it != impl_->tracked.end()) state = it->second;

      const std::uint64_t age_ns =
          now_ns > sample.last_active_ns ? now_ns - sample.last_active_ns : 0;
      bool stalled = false;
      std::ostringstream detail;
      switch (sample.kind) {
        case HeartbeatKind::kWorker: {
          const bool frozen = sample.pending > 0 &&
                              sample.progress == state.last_progress;
          state.frozen_scans = frozen ? state.frozen_scans + 1 : 0;
          stalled = state.frozen_scans >= options_.stall_ticks;
          if (stalled) {
            detail << "queue stalled: " << sample.pending
                   << " pending, progress frozen for " << state.frozen_scans
                   << " scans";
            if (fsync_p99_ns > 0 &&
                static_cast<double>(age_ns) >
                    options_.wal_fsync_p99_factor *
                        static_cast<double>(fsync_p99_ns)) {
              detail << "; last activity "
                     << age_ns / 1000000 << "ms ago > "
                     << options_.wal_fsync_p99_factor
                     << "x p99 WAL fsync latency (WAL-suspect)";
            }
          }
          break;
        }
        case HeartbeatKind::kEventLoop: {
          const std::uint64_t allowed =
              options_.stall_ticks * interval_ns + sample.expected_period_ns;
          stalled = age_ns > allowed;
          if (stalled) {
            detail << "event loop not polling: last activity "
                   << age_ns / 1000000 << "ms ago (allowed "
                   << allowed / 1000000 << "ms)";
          }
          break;
        }
        case HeartbeatKind::kPeriodic: {
          const std::uint64_t allowed =
              options_.stall_ticks * sample.expected_period_ns + interval_ns;
          stalled = sample.expected_period_ns > 0 && age_ns > allowed;
          if (stalled) {
            detail << "missed period: last activity " << age_ns / 1000000
                   << "ms ago (declared period "
                   << sample.expected_period_ns / 1000000 << "ms)";
          }
          break;
        }
      }

      // A stalled component on a replicating primary drags followers
      // behind with it; surface the lag in the same annotation so
      // `tcdp health` shows cause and blast radius together.
      if (stalled && repl_lag_records > 0) {
        detail << "; replication lagging (" << repl_lag_records
               << " records behind on the worst follower)";
      }

      if (stalled && !state.stalled) {
        state.detected_scan = scan;
        TCDP_LOG(kWarning) << "watchdog: component '" << sample.name << "' ("
                           << HeartbeatKindName(sample.kind)
                           << ") stalled: " << detail.str();
        Counter*& counter = impl_->stall_counters[sample.name];
        if (counter == nullptr) {
          counter = Registry::Default().GetCounter(WithLabel(
              "tcdp_watchdog_stalls_total", "component", sample.name));
        }
        counter->Increment();
        fired.push_back(sample.name);
      } else if (!stalled && state.stalled) {
        TCDP_LOG(kInfo) << "watchdog: component '" << sample.name
                        << "' recovered after "
                        << scan - state.detected_scan << " scans";
        state.detected_scan = 0;
        state.frozen_scans = 0;
      }
      state.stalled = stalled;
      state.last_progress = sample.progress;

      ComponentHealth health;
      health.name = sample.name;
      health.kind = sample.kind;
      health.progress = sample.progress;
      health.pending = sample.pending;
      health.age_ns = age_ns;
      health.stalled = stalled;
      health.stall_detected_scan = stalled ? state.detected_scan : 0;
      health.detail = detail.str();
      if (stalled) next.healthy = false;
      next.components.push_back(std::move(health));

      tracked.emplace(sample.id, state);
    }
    impl_->tracked.swap(tracked);
    impl_->last = std::move(next);

    if (impl_->scans_total == nullptr) {
      impl_->scans_total =
          Registry::Default().GetCounter("tcdp_watchdog_scans_total");
    }
    impl_->scans_total->Increment();
  }

  if (options_.flight_recorder != nullptr) {
    // Keep the crash handler's pre-serialized state fresh even on
    // healthy scans, then capture a bundle per newly stalled component.
    options_.flight_recorder->RefreshSignalState();
    for (const std::string& name : fired) {
      StatusOr<std::string> bundle =
          options_.flight_recorder->Trigger("stall-" + name);
      if (bundle.ok()) {
        TCDP_LOG(kWarning) << "watchdog: diagnostic bundle written to "
                           << *bundle;
      } else {
        TCDP_LOG(kError) << "watchdog: flight recorder failed: "
                         << bundle.status().message();
      }
    }
  }
}

}  // namespace obs
}  // namespace tcdp
