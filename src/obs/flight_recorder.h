#ifndef TCDP_OBS_FLIGHT_RECORDER_H_
#define TCDP_OBS_FLIGHT_RECORDER_H_

/// \file
/// Crash/stall flight recorder: captures a diagnostic bundle at the
/// moment of failure so a wedged or dying process leaves evidence
/// behind, not just a flat graph.
///
/// A **bundle** is a directory under `options.dir` named
/// `bundle-<seq>-<reason>`, written atomically (everything lands in a
/// dot-prefixed temp directory first, then one rename publishes it —
/// the same tmp+rename dance the snapshot writer uses). Contents:
///
/// | file             | contents |
/// |------------------|----------|
/// | `MANIFEST.txt`   | reason, wall-clock time, build + hardware provenance (bench/env.h) |
/// | `metrics.bin`    | registry snapshot in the `tcdp-metrics-v1` codec (`DecodeMetricsSnapshot` round-trips it) |
/// | `metrics.json`   | the same snapshot as `MetricsJson` (human/jq-friendly) |
/// | `trace.json`     | the trace ring as Chrome trace-event JSON (may be `[]` when tracing is off) |
/// | `state.txt`      | host-provided state text (per-shard queue/WAL/horizon from atomics) |
///
/// Retention is bounded: after each trigger the oldest bundles beyond
/// `keep` are deleted, so a flapping component cannot fill the disk.
///
/// **Crash path.** Fatal signals cannot run any of the above — malloc,
/// locks and iostreams are all off-limits in a handler. Instead the
/// watchdog calls RefreshSignalState() every scan, which pre-serializes
/// the interesting state (metrics JSON + host state + provenance) into
/// a static double buffer; InstallCrashHandler() arms SIGSEGV/SIGABRT/
/// SIGBUS/SIGFPE handlers that write that buffer to
/// `<dir>/crash-<pid>.txt` using only async-signal-safe calls
/// (open/write/close) and then re-raise with the default disposition.
/// The dump is at most one watchdog interval stale — the price of
/// signal safety.

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace tcdp {
namespace obs {

struct FlightRecorderOptions {
  /// Bundle directory (`--diag-dir`); created if missing.
  std::string dir;
  /// Bundles retained after pruning (0 = unlimited).
  std::size_t keep = 8;
  /// Host state for `state.txt` and the crash buffer. Invoked on the
  /// triggering thread (typically the watchdog), so it must be safe to
  /// run concurrently with the rest of the process — atomics-only
  /// reads, no locks shared with suspect components.
  std::function<std::string()> state_text;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options);

  /// Captures one bundle; returns the published bundle directory.
  /// Serialized internally — concurrent triggers queue up.
  StatusOr<std::string> Trigger(const std::string& reason);

  /// Published bundle directory names, oldest first.
  std::vector<std::string> ListBundles() const;

  /// Re-serializes crash state into the signal-safe buffer. Called by
  /// the watchdog once per scan; cheap enough to call anywhere.
  void RefreshSignalState();

  /// Arms process-wide fatal-signal handlers that dump the buffer to
  /// `<dir>/crash-<pid>.txt`. Process-global (the handler cannot carry
  /// instance state); later installs re-point it at this recorder's
  /// directory. Call once from `tcdp serve`.
  Status InstallCrashHandler();

  const FlightRecorderOptions& options() const { return options_; }

  /// The handler body: writes the pre-serialized buffer using only
  /// async-signal-safe calls. Public so tests can exercise the crash
  /// path directly — raising a real SIGSEGV under ASan would end the
  /// test run instead. No-op until InstallCrashHandler() has armed it.
  static void WriteCrashFileFromSignal(int signo);

 private:
  Status PruneLocked();

  FlightRecorderOptions options_;
  mutable std::mutex mu_;
  std::uint64_t next_seq_ = 1;  // scanned past existing bundles at ctor
};

}  // namespace obs
}  // namespace tcdp

#endif  // TCDP_OBS_FLIGHT_RECORDER_H_
