#include "obs/dumper.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <utility>

#include "obs/metrics.h"
#include "obs/process_metrics.h"

namespace tcdp {
namespace obs {

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) return Status::Internal("cannot write " + tmp);
    file << contents;
    if (!file) return Status::Internal("cannot write " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Status DumpMetricsFiles(const std::string& json_path,
                        const std::string& prom_path) {
  UpdateProcessMetrics();
  const MetricsSnapshot snapshot = Registry::Default().Snapshot();
  if (!json_path.empty()) {
    TCDP_RETURN_IF_ERROR(WriteFileAtomic(json_path, MetricsJson(snapshot)));
  }
  if (!prom_path.empty()) {
    TCDP_RETURN_IF_ERROR(
        WriteFileAtomic(prom_path, MetricsPrometheusText(snapshot)));
  }
  return Status::OK();
}

MetricsDumper::MetricsDumper(std::string json_path, std::string prom_path,
                             std::size_t interval_ms)
    : json_path_(std::move(json_path)),
      prom_path_(std::move(prom_path)),
      interval_ms_(interval_ms) {
  if (interval_ms_ > 0 && active()) {
    HeartbeatInfo info;
    info.name = "metrics-dumper";
    info.kind = HeartbeatKind::kPeriodic;
    info.expected_period_ns = static_cast<std::uint64_t>(interval_ms_) *
                              1000000ull;
    heartbeat_ = HeartbeatRegistry::Default().Register(std::move(info));
    worker_ = std::thread([this] { Loop(); });
  }
}

MetricsDumper::~MetricsDumper() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  heartbeat_.Unregister();
  // The exit-path guarantee: whatever happened on the interval thread,
  // the files on disk reflect the registry at shutdown.
  if (active()) (void)DumpNow();
}

Status MetricsDumper::DumpNow() {
  const Status dumped = DumpMetricsFiles(json_path_, prom_path_);
  std::lock_guard<std::mutex> lock(mu_);
  ++dumps_;
  return dumped;
}

std::uint64_t MetricsDumper::dumps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dumps_;
}

void MetricsDumper::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    lock.unlock();
    (void)DumpNow();
    heartbeat_.Beat();
    lock.lock();
    cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                 [this] { return stop_; });
  }
}

}  // namespace obs
}  // namespace tcdp
