#ifndef TCDP_OBS_METRICS_H_
#define TCDP_OBS_METRICS_H_

/// \file
/// Lock-light process-wide metrics: monotonic counters, gauges, and
/// log-bucketed latency histograms with a bounded relative error.
///
/// Design constraints (docs/ARCHITECTURE.md "Observability"):
///
/// - **Hot-path cost is one relaxed atomic op.** Instruments are
///   resolved to raw pointers once (registration takes a mutex; reads
///   never do). Histogram recording is striped across a small set of
///   per-thread shards so concurrent workers do not bounce one cache
///   line; a snapshot merges the stripes.
/// - **Zero-cost when disabled.** `MetricsEnabled()` is a single
///   relaxed atomic load; the `ScopedLatencyTimer` helper skips even
///   the clock read when metrics are off. Nothing here ever touches
///   the accounting arithmetic, so per-user TPL series are bitwise
///   identical with instrumentation on or off (gated by the `obs`
///   bench suite).
/// - **Bounded relative error.** A histogram with relative error `a`
///   buckets values geometrically with growth `gamma = (1+a)/(1-a)`
///   and reports each bucket at `rep = 2*lo*gamma/(1+gamma)`, the
///   point that equalizes the edge errors at exactly `a`. Any
///   quantile estimate over [min_value, max_value] is within `a` of
///   the true recorded value. Values below `min_value` clamp into the
///   first bucket (over-reported, never under); values at or above
///   `max_value` land in an explicit overflow bucket reported at
///   `max_value`; zero/negative values are counted separately.
/// - **Mergeable.** `HistogramSnapshot`s with identical bucket
///   configuration merge associatively and commutatively, so
///   per-thread or per-process snapshots aggregate exactly.
///
/// Snapshots serialize three ways: a compact binary codec (the
/// `kMetrics` wire response, see docs/PROTOCOL.md), a JSON object
/// (`tcdp serve --metrics-json`, `tcdp stats --json`), and Prometheus
/// text exposition. `scripts/check_metrics_schema.py` validates the
/// latter two from the outside.
///
/// The registry is process-global on purpose: services, shards, and
/// the net frontend all publish into one namespace, and tests that
/// create many services share instruments (counters keep
/// accumulating; gauges are last-writer-wins).

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace tcdp {
namespace obs {

/// Global instrumentation switch (default on). A relaxed load; safe
/// to flip at runtime (`tcdp serve --no-metrics 1`, bench A/B runs).
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

// ---------------------------------------------------------------- counter

/// \brief Monotonic counter. All operations are relaxed atomics.
class Counter {
 public:
  void Add(std::uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// ------------------------------------------------------------------ gauge

/// \brief Last-writer-wins signed gauge with a monotonic-max helper
/// (high watermarks).
class Gauge {
 public:
  void Set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Sub(std::int64_t delta) {
    value_.fetch_sub(delta, std::memory_order_relaxed);
  }
  /// Raises the gauge to \p value if it is below it (CAS loop).
  void SetMax(std::int64_t value) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < value && !value_.compare_exchange_weak(
                              cur, value, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

// -------------------------------------------------------------- histogram

struct HistogramOptions {
  /// Quantile estimates are within this relative error of the true
  /// recorded value (for values inside [min_value, max_value)).
  double relative_error = 0.05;
  /// Smallest distinguishable value; defaults sized for seconds-scale
  /// latencies down to 1ns.
  double min_value = 1e-9;
  /// Values >= max_value land in the overflow bucket.
  double max_value = 1e4;
};

/// \brief Mergeable point-in-time view of a histogram.
struct HistogramSnapshot {
  double relative_error = 0.0;
  double min_value = 0.0;
  double max_value = 0.0;
  std::uint64_t zero_count = 0;      ///< values <= 0
  std::uint64_t overflow_count = 0;  ///< values >= max_value
  std::vector<std::uint64_t> buckets;
  double sum = 0.0;           ///< sum of every recorded value
  double max_observed = 0.0;  ///< largest recorded value (exact)

  std::uint64_t count() const;
  /// Quantile estimate; \p q in [0,1]. 0 when empty. Values from the
  /// zero bucket report 0; overflow reports max_value.
  double Quantile(double q) const;
  /// Element-wise accumulate; false (and no-op) when the bucket
  /// configurations differ.
  bool Merge(const HistogramSnapshot& other);
};

/// \brief Striped log-bucketed histogram; see the file comment for
/// the error bound. Thread-safe for concurrent Observe/Snapshot.
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;
  ~Histogram();

  void Observe(double value);
  HistogramSnapshot Snapshot() const;

  std::size_t num_buckets() const { return num_buckets_; }
  const HistogramOptions& options() const { return options_; }

  /// Bucket index for \p value (clamped; callers outside tests rarely
  /// need this). Exposed for the bucket-math property tests.
  std::size_t BucketIndex(double value) const;
  /// The representative value reported for bucket \p index.
  double BucketValue(std::size_t index) const;
  /// Exclusive upper edge of bucket \p index (Prometheus `le`).
  double BucketUpperEdge(std::size_t index) const;

 private:
  struct Stripe;

  HistogramOptions options_;
  double inv_log_gamma_ = 0.0;
  double log_gamma_ = 0.0;
  std::size_t num_buckets_ = 0;
  std::size_t num_stripes_ = 0;
  Stripe* stripes_ = nullptr;
};

// --------------------------------------------------------------- registry

/// \brief Sorted-by-name snapshot of every registered instrument.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// \brief Process-wide named instrument table. Registration locks;
/// returned pointers are valid for the process lifetime and their
/// operations never lock.
class Registry {
 public:
  static Registry& Default();

  /// Find-or-create. Invalid characters in \p name are sanitized to
  /// '_' (see IsValidMetricName); a name already registered as a
  /// different kind returns a detached instrument that is never
  /// exported (callers stay crash-free, the collision is a bug).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          HistogramOptions options = {});

  MetricsSnapshot Snapshot() const;

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  struct Impl;
  Impl* impl_;
};

// ------------------------------------------------------------ conveniences

/// `base{key="value"}` — the full-name form the registry stores and
/// the Prometheus renderer parses back apart. Repeated labels:
/// `WithLabel(WithLabel(n, k1, v1), k2, v2)`.
std::string WithLabel(const std::string& base, const std::string& key,
                      const std::string& value);

/// `name` must match `[a-zA-Z_:][a-zA-Z0-9_:]*` optionally followed by
/// a well-formed `{label="value",...}` suffix.
bool IsValidMetricName(const std::string& name);

/// \brief Records elapsed seconds into a histogram on destruction;
/// skips the clock read entirely when metrics are disabled (or \p
/// histogram is null).
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* histogram);
  ~ScopedLatencyTimer();
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* histogram_;
  std::uint64_t start_ns_;
};

/// Monotonic nanoseconds (steady clock); shared with the trace
/// recorder so span and latency timestamps agree.
std::uint64_t MonotonicNanos();

// ------------------------------------------------------- serialization

/// Compact binary codec for the kMetrics wire response
/// ("tcdp-metrics-v1"; grammar in docs/PROTOCOL.md). Histogram bucket
/// arrays are run-trimmed: only the [first_nonzero, last_nonzero]
/// window is emitted.
std::string EncodeMetricsSnapshot(const MetricsSnapshot& snapshot);
StatusOr<MetricsSnapshot> DecodeMetricsSnapshot(const std::string& payload);

/// JSON object: {"tcdp_metrics_version":1, "counters":{...},
/// "gauges":{...}, "histograms":{name:{count,sum,p50,p90,p99,max}}}.
/// The schema scripts/check_metrics_schema.py validates.
std::string MetricsJson(const MetricsSnapshot& snapshot);

/// Prometheus text exposition (counters, gauges, and cumulative
/// histogram series with trailing +Inf buckets).
std::string MetricsPrometheusText(const MetricsSnapshot& snapshot);

}  // namespace obs
}  // namespace tcdp

#endif  // TCDP_OBS_METRICS_H_
