#include "obs/trace.h"

#include <cstdio>

#include "obs/metrics.h"

namespace tcdp {
namespace obs {

/// Per-slot seqlock: 0 = empty/being-written, otherwise logical
/// sequence + 1. Readers reject a slot whose sequence moved while the
/// event was being copied out (the torn-span filter).
struct TraceRecorder::Slot {
  std::atomic<std::uint64_t> seq{0};
  TraceEvent event;
};

TraceRecorder::TraceRecorder(std::size_t capacity) {
  if (capacity > 0) Start(capacity);
}

TraceRecorder::~TraceRecorder() { delete[] slots_; }

void TraceRecorder::Start(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  delete[] slots_;
  slots_ = new Slot[capacity];
  capacity_ = capacity;
  next_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Record(const TraceEvent& event) {
  if (!enabled() || capacity_ == 0) return;
  const std::uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % capacity_];
  slot.seq.store(0, std::memory_order_release);
  slot.event = event;
  slot.seq.store(seq + 1, std::memory_order_release);
}

std::size_t TraceRecorder::size() const {
  const std::uint64_t total = recorded();
  return total < capacity_ ? static_cast<std::size_t>(total) : capacity_;
}

std::string TraceRecorder::DumpJson() const {
  std::string out = "{\"traceEvents\": [";
  const std::uint64_t total = recorded();
  const std::uint64_t first = total > capacity_ ? total - capacity_ : 0;
  bool any = false;
  for (std::uint64_t seq = first; seq < total; ++seq) {
    const Slot& slot = slots_[seq % capacity_];
    const std::uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before != seq + 1) continue;
    const TraceEvent event = slot.event;
    const std::uint64_t after = slot.seq.load(std::memory_order_acquire);
    if (after != seq + 1) continue;  // overwritten mid-copy
    if (event.name == nullptr) continue;
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer),
                  "%s\n  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                  "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u, "
                  "\"args\": {\"arg\": %llu}}",
                  any ? "," : "", event.name,
                  event.category != nullptr ? event.category : "tcdp",
                  static_cast<double>(event.start_ns) * 1e-3,
                  static_cast<double>(event.duration_ns) * 1e-3,
                  event.thread_id,
                  static_cast<unsigned long long>(event.arg));
    out += buffer;
    any = true;
  }
  out += "\n]}\n";
  return out;
}

TraceRecorder& TraceRecorder::Default() { return DefaultTrace(); }

TraceRecorder& DefaultTrace() {
  // Leaked for the same reason as the metrics registry: worker threads
  // may still record during static destruction.
  static TraceRecorder* recorder = new TraceRecorder;
  return *recorder;
}

std::uint32_t TraceThreadId() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::uint64_t ScopedSpan::Now() { return MonotonicNanos(); }

void ScopedSpan::Finish() {
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.start_ns = start_ns_;
  event.duration_ns = MonotonicNanos() - start_ns_;
  event.thread_id = TraceThreadId();
  event.arg = arg_;
  DefaultTrace().Record(event);
}

}  // namespace obs
}  // namespace tcdp
