#include "obs/diff.h"

#include <algorithm>

namespace tcdp {
namespace obs {

std::uint64_t MetricsDelta::CounterSum(const std::string& prefix) const {
  std::uint64_t sum = 0;
  for (const auto& entry : counters) {
    if (entry.first.compare(0, prefix.size(), prefix) == 0) {
      sum += entry.second;
    }
  }
  return sum;
}

std::uint64_t MetricsDelta::CounterValue(const std::string& name) const {
  for (const auto& entry : counters) {
    if (entry.first == name) return entry.second;
  }
  return 0;
}

std::int64_t MetricsDelta::GaugeValue(const std::string& name) const {
  for (const auto& entry : gauges) {
    if (entry.first == name) return entry.second;
  }
  return 0;
}

bool SubtractHistogramSnapshots(const HistogramSnapshot& prev,
                                const HistogramSnapshot& cur,
                                HistogramSnapshot* out) {
  if (prev.relative_error != cur.relative_error ||
      prev.min_value != cur.min_value || prev.max_value != cur.max_value ||
      prev.buckets.size() != cur.buckets.size()) {
    return false;
  }
  HistogramSnapshot delta;
  delta.relative_error = cur.relative_error;
  delta.min_value = cur.min_value;
  delta.max_value = cur.max_value;
  // Counts are monotone per bucket; the clamp only matters against a
  // snapshot from a different process incarnation, where the config
  // check above usually catches it first.
  delta.zero_count =
      cur.zero_count >= prev.zero_count ? cur.zero_count - prev.zero_count : 0;
  delta.overflow_count = cur.overflow_count >= prev.overflow_count
                             ? cur.overflow_count - prev.overflow_count
                             : 0;
  delta.buckets.resize(cur.buckets.size());
  for (std::size_t i = 0; i < cur.buckets.size(); ++i) {
    delta.buckets[i] =
        cur.buckets[i] >= prev.buckets[i] ? cur.buckets[i] - prev.buckets[i]
                                          : 0;
  }
  delta.sum = std::max(0.0, cur.sum - prev.sum);
  delta.max_observed = cur.max_observed;
  *out = delta;
  return true;
}

MetricsDelta DiffMetricsSnapshots(const MetricsSnapshot& prev,
                                  const MetricsSnapshot& cur,
                                  double interval_seconds) {
  MetricsDelta delta;
  delta.interval_seconds = interval_seconds;

  // Snapshots are sorted by name (Registry::Snapshot contract), but a
  // linear probe per entry keeps this correct for hand-built inputs
  // too; metric cardinality is tiny.
  for (const auto& entry : cur.counters) {
    std::uint64_t previous = 0;
    for (const auto& old : prev.counters) {
      if (old.first == entry.first) {
        previous = old.second;
        break;
      }
    }
    delta.counters.emplace_back(
        entry.first,
        entry.second >= previous ? entry.second - previous : entry.second);
  }

  delta.gauges = cur.gauges;

  for (const auto& entry : cur.histograms) {
    const HistogramSnapshot* previous = nullptr;
    for (const auto& old : prev.histograms) {
      if (old.first == entry.first) {
        previous = &old.second;
        break;
      }
    }
    HistogramSnapshot diffed;
    if (previous != nullptr &&
        SubtractHistogramSnapshots(*previous, entry.second, &diffed)) {
      delta.histograms.emplace_back(entry.first, std::move(diffed));
    } else {
      delta.histograms.emplace_back(entry.first, entry.second);
    }
  }
  return delta;
}

}  // namespace obs
}  // namespace tcdp
