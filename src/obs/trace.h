#ifndef TCDP_OBS_TRACE_H_
#define TCDP_OBS_TRACE_H_

/// \file
/// Ring-buffer span tracing for the server's deterministic tick
/// pipeline (enqueue -> dispatch -> bank step -> WAL append -> fsync
/// -> ack) and the compaction/recovery phases.
///
/// The recorder is a fixed-capacity ring of completed spans. Writers
/// claim a slot with one relaxed fetch_add and fill it in place — no
/// locks, no allocation — so tracing is safe from every shard worker
/// and the net I/O thread at once; once the ring wraps, the oldest
/// spans are overwritten. Recording is off by default and spans cost
/// a single relaxed load when disabled (`ScopedSpan` skips even the
/// clock read), which keeps the bank-step hot path untouched: per-user
/// TPL series are bitwise identical with tracing on or off.
///
/// Span name/category strings must have static storage duration
/// (string literals): the ring stores the pointers, not copies.
///
/// `DumpJson` renders the buffered spans oldest-first in the Chrome
/// trace-event format (load the file in chrome://tracing or Perfetto);
/// the server exposes it via `kTraceDump` + `tcdp serve --trace-out`.
///
/// A dump taken while writers are active is a best-effort snapshot:
/// slots being overwritten mid-read can surface a torn span, which the
/// dumper filters by dropping events whose sequence moved during the
/// copy. Under the intended use (dump on demand, writers quiescent or
/// slow) the window is nanoseconds wide.

#include <atomic>
#include <cstdint>
#include <string>

namespace tcdp {
namespace obs {

struct TraceEvent {
  const char* name = nullptr;  ///< static-lifetime span name
  const char* category = nullptr;
  std::uint64_t start_ns = 0;  ///< MonotonicNanos() at span open
  std::uint64_t duration_ns = 0;
  std::uint32_t thread_id = 0;  ///< small per-process thread ordinal
  std::uint64_t arg = 0;        ///< one free detail slot (shard, tick, ...)
};

/// \brief Lock-free fixed-capacity span ring. One global instance
/// (`DefaultTrace()`) backs the server; tests build their own.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 0);
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// (Re)arms the ring with \p capacity slots and enables recording;
  /// not safe concurrently with Record (call before serving).
  void Start(std::size_t capacity);
  void Stop() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Record(const TraceEvent& event);

  std::size_t capacity() const { return capacity_; }
  /// Total spans ever recorded (>= capacity means the ring wrapped).
  std::uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }
  /// Spans currently held (min(recorded, capacity)).
  std::size_t size() const;

  /// Chrome trace-event JSON array, oldest span first.
  std::string DumpJson() const;

  static TraceRecorder& Default();

 private:
  struct Slot;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_{0};
  std::size_t capacity_ = 0;
  Slot* slots_ = nullptr;
};

/// Process-global recorder used by the instrumentation points.
TraceRecorder& DefaultTrace();
/// Convenience for the hot-path guard.
inline bool TraceEnabled() { return DefaultTrace().enabled(); }

/// Small stable ordinal for the calling thread (assigned on first use).
std::uint32_t TraceThreadId();

/// \brief RAII span against the default recorder. Captures the start
/// time only if tracing is enabled at construction.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* category, std::uint64_t arg = 0)
      : name_(name), category_(category), arg_(arg) {
    if (TraceEnabled()) start_ns_ = Now();
  }
  ~ScopedSpan() {
    if (start_ns_ != 0) Finish();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  static std::uint64_t Now();
  void Finish();

  const char* name_;
  const char* category_;
  std::uint64_t arg_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace obs
}  // namespace tcdp

#endif  // TCDP_OBS_TRACE_H_
