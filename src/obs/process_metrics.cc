#include "obs/process_metrics.h"

#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <string>

#include "obs/metrics.h"

#if defined(__linux__)
#include <dirent.h>
#endif

namespace tcdp {
namespace obs {

namespace {

/// Process start on the same monotonic clock the heartbeats use.
/// Function-local static: stamped the first time anything exports
/// metrics, which for `tcdp serve` is within milliseconds of main().
std::uint64_t ProcessStartNanos() {
  static const std::uint64_t start = MonotonicNanos();
  return start;
}

#if defined(__linux__)
/// RSS in bytes from /proc/self/statm (field 2 is resident pages).
/// Returns false when procfs is absent or unreadable.
bool ReadRssBytes(std::int64_t* out) {
  std::ifstream statm("/proc/self/statm");
  if (!statm) return false;
  long long total_pages = 0;
  long long resident_pages = 0;
  statm >> total_pages >> resident_pages;
  if (!statm) return false;
  const long page_size = sysconf(_SC_PAGESIZE);
  if (page_size <= 0) return false;
  *out = static_cast<std::int64_t>(resident_pages) * page_size;
  return true;
}

bool CountOpenFds(std::int64_t* out) {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return false;
  std::int64_t count = 0;
  while (struct dirent* entry = readdir(dir)) {
    if (entry->d_name[0] == '.') continue;
    ++count;
  }
  closedir(dir);
  // The opendir descriptor itself is still open while counting.
  *out = count > 0 ? count - 1 : 0;
  return true;
}
#endif  // defined(__linux__)

}  // namespace

void UpdateProcessMetrics() {
  if (!MetricsEnabled()) return;
  Registry& registry = Registry::Default();

  const std::uint64_t uptime_ns = MonotonicNanos() - ProcessStartNanos();
  // Lazily-resolved gauges, same pattern as every other instrument
  // site: registration locks once, updates are atomic stores.
  static Gauge* uptime =
      registry.GetGauge("tcdp_process_uptime_seconds");
  uptime->Set(static_cast<std::int64_t>(uptime_ns / 1000000000ull));

#if defined(__linux__)
  std::int64_t rss_bytes = 0;
  if (ReadRssBytes(&rss_bytes)) {
    static Gauge* rss = registry.GetGauge("tcdp_process_rss_bytes");
    rss->Set(rss_bytes);
  }
  std::int64_t open_fds = 0;
  if (CountOpenFds(&open_fds)) {
    static Gauge* fds = registry.GetGauge("tcdp_process_open_fds");
    fds->Set(open_fds);
  }
#endif
}

}  // namespace obs
}  // namespace tcdp
