#ifndef TCDP_OBS_DIFF_H_
#define TCDP_OBS_DIFF_H_

/// \file
/// Snapshot differencing: turns two consecutive registry snapshots
/// into *rates* — what `tcdp top` renders live and `tcdp stats
/// --watch` prints per interval. Pure functions over MetricsSnapshot;
/// no registry access, so client-side tools diff wire snapshots from a
/// remote server exactly like local ones.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace tcdp {
namespace obs {

/// \brief The change between two snapshots of the same registry.
struct MetricsDelta {
  /// Interval the delta covers (caller-supplied; rates = delta / this).
  double interval_seconds = 0.0;
  /// Per-counter increase. Clamped at 0: a counter that appears to go
  /// backwards (process restart between scrapes) reports its full new
  /// value rather than a negative rate.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  /// Gauges are levels, not totals — the *current* value passes
  /// through unchanged.
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  /// Bucket-wise histogram subtraction: quantiles of the delta are the
  /// quantiles of *this interval's* observations. A histogram whose
  /// configuration changed between snapshots (or that is new) is
  /// treated as fresh: the current snapshot passes through whole.
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Sum of counter deltas whose name starts with \p prefix (label
  /// aggregation, e.g. all `tcdp_net_requests_total{type=...}`).
  std::uint64_t CounterSum(const std::string& prefix) const;
  /// Delta value for one exact counter name; 0 when absent.
  std::uint64_t CounterValue(const std::string& name) const;
  /// Current value for one exact gauge name; 0 when absent.
  std::int64_t GaugeValue(const std::string& name) const;
};

/// Subtracts \p prev from \p cur bucket-by-bucket. Returns false (and
/// leaves \p out untouched) when the configurations differ — the
/// caller should fall back to treating \p cur as a fresh histogram.
/// `max_observed` carries the *cumulative* maximum: per-interval
/// maxima are not recoverable from cumulative snapshots.
bool SubtractHistogramSnapshots(const HistogramSnapshot& prev,
                                const HistogramSnapshot& cur,
                                HistogramSnapshot* out);

/// Diffs two snapshots taken \p interval_seconds apart (prev first).
MetricsDelta DiffMetricsSnapshots(const MetricsSnapshot& prev,
                                  const MetricsSnapshot& cur,
                                  double interval_seconds);

}  // namespace obs
}  // namespace tcdp

#endif  // TCDP_OBS_DIFF_H_
