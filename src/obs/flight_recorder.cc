#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "bench/env.h"
#include "obs/metrics.h"
#include "obs/process_metrics.h"
#include "obs/trace.h"

namespace tcdp {
namespace obs {

namespace {

constexpr const char* kBundlePrefix = "bundle-";

std::string SanitizeReason(const std::string& reason) {
  std::string out;
  out.reserve(reason.size());
  for (char c : reason) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    out.push_back(ok ? c : '-');
    if (out.size() >= 48) break;
  }
  if (out.empty()) out = "manual";
  return out;
}

Status WriteFileOrError(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("flight recorder: cannot open " + path);
  }
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out) {
    return Status::Internal("flight recorder: short write to " + path);
  }
  return Status::OK();
}

std::string ProvenanceText() {
  const bench::BuildInfo& build = bench::Build();
  const bench::HardwareInfo& hw = bench::Hardware();
  std::ostringstream out;
  out << "time: " << bench::NowIso8601() << "\n"
      << "git_sha: " << build.git_sha << "\n"
      << "build_type: " << build.build_type << "\n"
      << "build_flags: " << build.flags << "\n"
      << "compiler: " << build.compiler << "\n"
      << "hostname: " << hw.hostname << "\n"
      << "cores: " << hw.cores << "\n"
      << "cpu_mhz: " << hw.cpu_mhz << "\n";
  return out.str();
}

std::vector<std::string> ListBundleNames(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kBundlePrefix, 0) == 0) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

// ---------------------------------------------------------- crash state
//
// A fatal-signal handler may not allocate, lock, or touch iostreams, so
// everything it needs is pre-staged here: a double-buffered state text
// (the watchdog refreshes the inactive side, then flips the index, so
// the handler always reads a fully written buffer) and a pre-formatted
// output path. All plain statics + atomics — async-signal-safe to read.

constexpr std::size_t kCrashBufSize = 1u << 16;
char g_crash_buf[2][kCrashBufSize];
std::atomic<std::size_t> g_crash_len[2];
std::atomic<unsigned> g_crash_active{0};
char g_crash_path[512] = {0};
std::atomic<bool> g_crash_armed{false};

/// Async-signal-safe decimal formatting into \p buf; returns length.
std::size_t FormatUnsigned(unsigned long value, char* buf) {
  char tmp[24];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  for (std::size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

void TcdpCrashHandler(int signo) {
  FlightRecorder::WriteCrashFileFromSignal(signo);
  // Restore the default disposition and re-raise so the process still
  // dies with the original signal (core dumps, CI failure, ...).
  signal(signo, SIG_DFL);
  raise(signo);
}

}  // namespace

void FlightRecorder::WriteCrashFileFromSignal(int signo) {
  if (!g_crash_armed.load(std::memory_order_acquire)) return;
  const int fd =
      open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return;
  char header[64];
  std::size_t pos = 0;
  const char* prefix = "tcdp crash dump: signal ";
  std::memcpy(header + pos, prefix, std::strlen(prefix));
  pos += std::strlen(prefix);
  pos += FormatUnsigned(static_cast<unsigned long>(signo), header + pos);
  header[pos++] = '\n';
  // Partial writes are tolerated: any bytes that land are better than
  // none, and retry loops in a dying process buy little.
  ssize_t ignored = write(fd, header, pos);
  const unsigned active = g_crash_active.load(std::memory_order_acquire);
  ignored = write(fd, g_crash_buf[active],
                  g_crash_len[active].load(std::memory_order_acquire));
  (void)ignored;
  close(fd);
}

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(std::move(options)) {
  if (options_.dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  // Continue numbering past bundles left by a previous process.
  for (const std::string& name : ListBundleNames(options_.dir)) {
    const std::uint64_t seq =
        std::strtoull(name.c_str() + std::strlen(kBundlePrefix), nullptr, 10);
    next_seq_ = std::max(next_seq_, seq + 1);
  }
}

StatusOr<std::string> FlightRecorder::Trigger(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.dir.empty()) {
    return Status::FailedPrecondition(
        "flight recorder has no bundle directory (--diag-dir)");
  }
  const std::uint64_t seq = next_seq_++;
  char seq_text[24];
  std::snprintf(seq_text, sizeof(seq_text), "%06llu",
                static_cast<unsigned long long>(seq));
  const std::string name =
      std::string(kBundlePrefix) + seq_text + "-" + SanitizeReason(reason);
  const std::string tmp_dir = options_.dir + "/.tmp-" + name;
  const std::string final_dir = options_.dir + "/" + name;

  std::error_code ec;
  std::filesystem::remove_all(tmp_dir, ec);
  std::filesystem::create_directories(tmp_dir, ec);
  if (ec) {
    return Status::Internal("flight recorder: cannot create " + tmp_dir +
                            ": " + ec.message());
  }

  UpdateProcessMetrics();
  const MetricsSnapshot snapshot = Registry::Default().Snapshot();

  std::ostringstream manifest;
  manifest << "reason: " << reason << "\n"
           << "bundle: " << name << "\n"
           << ProvenanceText();

  Status written = WriteFileOrError(tmp_dir + "/MANIFEST.txt", manifest.str());
  if (written.ok()) {
    written = WriteFileOrError(tmp_dir + "/metrics.bin",
                               EncodeMetricsSnapshot(snapshot));
  }
  if (written.ok()) {
    written = WriteFileOrError(tmp_dir + "/metrics.json",
                               MetricsJson(snapshot));
  }
  if (written.ok()) {
    written = WriteFileOrError(tmp_dir + "/trace.json",
                               DefaultTrace().DumpJson());
  }
  if (written.ok()) {
    written = WriteFileOrError(
        tmp_dir + "/state.txt",
        options_.state_text ? options_.state_text() : std::string("(none)\n"));
  }
  if (!written.ok()) {
    std::filesystem::remove_all(tmp_dir, ec);
    return written;
  }

  // One rename publishes the whole bundle: readers never observe a
  // partial directory, the same contract as snapshot tmp+rename.
  std::filesystem::rename(tmp_dir, final_dir, ec);
  if (ec) {
    std::filesystem::remove_all(tmp_dir, ec);
    return Status::Internal("flight recorder: cannot publish " + final_dir);
  }

  const Status pruned = PruneLocked();
  if (!pruned.ok()) return pruned;
  return final_dir;
}

std::vector<std::string> FlightRecorder::ListBundles() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.dir.empty()) return {};
  return ListBundleNames(options_.dir);
}

Status FlightRecorder::PruneLocked() {
  if (options_.keep == 0) return Status::OK();
  std::vector<std::string> names = ListBundleNames(options_.dir);
  while (names.size() > options_.keep) {
    std::error_code ec;
    std::filesystem::remove_all(options_.dir + "/" + names.front(), ec);
    if (ec) {
      return Status::Internal("flight recorder: cannot prune " +
                              names.front() + ": " + ec.message());
    }
    names.erase(names.begin());
  }
  return Status::OK();
}

void FlightRecorder::RefreshSignalState() {
  std::string text;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream out;
    out << ProvenanceText() << "--- state ---\n"
        << (options_.state_text ? options_.state_text()
                                : std::string("(none)\n"))
        << "--- metrics ---\n"
        << MetricsJson(Registry::Default().Snapshot()) << "\n";
    text = out.str();
  }
  const unsigned next = 1u - g_crash_active.load(std::memory_order_relaxed);
  const std::size_t len = std::min(text.size(), kCrashBufSize);
  std::memcpy(g_crash_buf[next], text.data(), len);
  g_crash_len[next].store(len, std::memory_order_release);
  g_crash_active.store(next, std::memory_order_release);
}

Status FlightRecorder::InstallCrashHandler() {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.dir.empty()) {
    return Status::FailedPrecondition(
        "flight recorder has no bundle directory (--diag-dir)");
  }
  const int written =
      std::snprintf(g_crash_path, sizeof(g_crash_path), "%s/crash-%ld.txt",
                    options_.dir.c_str(), static_cast<long>(getpid()));
  if (written <= 0 || static_cast<std::size_t>(written) >=
                          sizeof(g_crash_path)) {
    return Status::InvalidArgument("diag dir path too long for crash dumps");
  }
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = TcdpCrashHandler;
  sigemptyset(&action.sa_mask);
  for (int signo : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE}) {
    if (sigaction(signo, &action, nullptr) != 0) {
      return Status::Internal("sigaction failed installing crash handler");
    }
  }
  g_crash_armed.store(true, std::memory_order_release);
  return Status::OK();
}

}  // namespace obs
}  // namespace tcdp
