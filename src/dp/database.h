#ifndef TCDP_DP_DATABASE_H_
#define TCDP_DP_DATABASE_H_

/// \file
/// Snapshot database D^t = {l^t_1, ..., l^t_|U|} (paper Section II-C):
/// each user holds one value from a finite domain loc = {loc_1..loc_n}.
/// The neighboring relation is *value change of a single user* (event-
/// level continual observation, Dwork et al. [13][15]).

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace tcdp {

/// \brief One time point's database: user -> domain-value index.
class Database {
 public:
  /// Validates that every value is < domain_size. num_users may be 0.
  static StatusOr<Database> Create(std::vector<std::size_t> values,
                                   std::size_t domain_size);

  std::size_t num_users() const { return values_.size(); }
  std::size_t domain_size() const { return domain_size_; }
  std::size_t value(std::size_t user) const { return values_[user]; }
  const std::vector<std::size_t>& values() const { return values_; }

  /// Returns a neighboring database with \p user's value replaced.
  /// Returns OutOfRange for a bad user index or InvalidArgument for a
  /// bad value.
  StatusOr<Database> WithValue(std::size_t user, std::size_t value) const;

  /// Per-domain-value counts (the paper's released aggregate, Fig 1(c)).
  std::vector<double> Histogram() const;

 private:
  Database(std::vector<std::size_t> values, std::size_t domain_size)
      : values_(std::move(values)), domain_size_(domain_size) {}

  std::vector<std::size_t> values_;
  std::size_t domain_size_ = 0;
};

/// \brief True iff \p a and \p b have the same shape and differ in exactly
/// one user's value (the event-level neighboring relation).
bool AreNeighbors(const Database& a, const Database& b);

}  // namespace tcdp

#endif  // TCDP_DP_DATABASE_H_
