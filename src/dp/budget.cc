#include "dp/budget.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tcdp {

BudgetLedger::BudgetLedger(double total_budget)
    : total_budget_(total_budget) {}

Status BudgetLedger::Spend(double epsilon, std::string label) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument(
        "BudgetLedger: epsilon must be finite and > 0");
  }
  if (total_spent_ + epsilon > total_budget_ + 1e-12) {
    return Status::ResourceExhausted(
        "BudgetLedger: spend would exceed total budget");
  }
  total_spent_ += epsilon;
  entries_.push_back(Entry{epsilon, std::move(label)});
  return Status::OK();
}

StatusOr<double> BudgetLedger::WindowSpend(std::size_t w) const {
  if (w == 0) {
    return Status::InvalidArgument("WindowSpend: w must be >= 1");
  }
  if (entries_.empty()) return 0.0;
  double window = 0.0;
  double best = 0.0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    window += entries_[i].epsilon;
    if (i >= w) window -= entries_[i - w].epsilon;
    best = std::max(best, window);
  }
  return best;
}

}  // namespace tcdp
