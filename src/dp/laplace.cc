#include "dp/laplace.h"

#include <cassert>
#include <cmath>
#include <string>

namespace tcdp {

StatusOr<LaplaceMechanism> LaplaceMechanism::Create(double epsilon,
                                                    double sensitivity) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument(
        "LaplaceMechanism: epsilon must be finite and > 0, got " +
        std::to_string(epsilon));
  }
  if (!(sensitivity > 0.0) || !std::isfinite(sensitivity)) {
    return Status::InvalidArgument(
        "LaplaceMechanism: sensitivity must be finite and > 0");
  }
  return LaplaceMechanism(epsilon, sensitivity);
}

double LaplaceMechanism::Perturb(double true_value, Rng* rng) const {
  assert(rng != nullptr);
  return true_value + rng->Laplace(scale());
}

std::vector<double> LaplaceMechanism::PerturbVector(
    const std::vector<double>& values, Rng* rng) const {
  std::vector<double> out;
  out.reserve(values.size());
  for (double v : values) out.push_back(Perturb(v, rng));
  return out;
}

double LaplaceMechanism::Pdf(double x, double scale) {
  assert(scale > 0.0);
  return std::exp(-std::fabs(x) / scale) / (2.0 * scale);
}

double LaplaceMechanism::Cdf(double x, double scale) {
  assert(scale > 0.0);
  if (x < 0.0) return 0.5 * std::exp(x / scale);
  return 1.0 - 0.5 * std::exp(-x / scale);
}

}  // namespace tcdp
