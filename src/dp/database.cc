#include "dp/database.h"

#include <string>

namespace tcdp {

StatusOr<Database> Database::Create(std::vector<std::size_t> values,
                                    std::size_t domain_size) {
  if (domain_size == 0) {
    return Status::InvalidArgument("Database: domain_size must be positive");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] >= domain_size) {
      return Status::InvalidArgument(
          "Database: user " + std::to_string(i) + " value " +
          std::to_string(values[i]) + " outside domain of size " +
          std::to_string(domain_size));
    }
  }
  return Database(std::move(values), domain_size);
}

StatusOr<Database> Database::WithValue(std::size_t user,
                                       std::size_t value) const {
  if (user >= num_users()) {
    return Status::OutOfRange("WithValue: user index out of range");
  }
  if (value >= domain_size_) {
    return Status::InvalidArgument("WithValue: value outside domain");
  }
  std::vector<std::size_t> values = values_;
  values[user] = value;
  return Database(std::move(values), domain_size_);
}

std::vector<double> Database::Histogram() const {
  std::vector<double> counts(domain_size_, 0.0);
  for (std::size_t v : values_) counts[v] += 1.0;
  return counts;
}

bool AreNeighbors(const Database& a, const Database& b) {
  if (a.num_users() != b.num_users() || a.domain_size() != b.domain_size()) {
    return false;
  }
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < a.num_users(); ++i) {
    if (a.value(i) != b.value(i) && ++diffs > 1) return false;
  }
  return diffs == 1;
}

}  // namespace tcdp
