#include "dp/geometric.h"

#include <cassert>
#include <cmath>
#include <string>

namespace tcdp {

StatusOr<GeometricMechanism> GeometricMechanism::Create(double epsilon,
                                                        int sensitivity) {
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument(
        "GeometricMechanism: epsilon must be finite and > 0");
  }
  if (sensitivity < 1) {
    return Status::InvalidArgument(
        "GeometricMechanism: sensitivity must be a positive integer");
  }
  const double ratio = std::exp(-epsilon / static_cast<double>(sensitivity));
  return GeometricMechanism(epsilon, sensitivity, ratio);
}

double GeometricMechanism::ExpectedAbsNoise() const {
  return 2.0 * ratio_ / (1.0 - ratio_ * ratio_);
}

double GeometricMechanism::NoiseVariance() const {
  const double one_minus = 1.0 - ratio_;
  return 2.0 * ratio_ / (one_minus * one_minus);
}

std::int64_t GeometricMechanism::SampleNoise(Rng* rng) const {
  assert(rng != nullptr);
  // Two one-sided geometric draws G1 - G2 are two-sided geometric:
  // Pr[G = k] = (1-r) r^k for k >= 0, sampled by inversion.
  auto one_sided = [&]() {
    const double u = rng->Uniform();
    // k = floor(log(1-u) / log r); both logs negative.
    return static_cast<std::int64_t>(
        std::floor(std::log1p(-u) / std::log(ratio_)));
  };
  return one_sided() - one_sided();
}

std::int64_t GeometricMechanism::Perturb(std::int64_t true_value,
                                         Rng* rng) const {
  return true_value + SampleNoise(rng);
}

std::vector<double> GeometricMechanism::PerturbVector(
    const std::vector<double>& values, Rng* rng) const {
  std::vector<double> out;
  out.reserve(values.size());
  for (double v : values) {
    out.push_back(static_cast<double>(
        Perturb(static_cast<std::int64_t>(std::llround(v)), rng)));
  }
  return out;
}

double GeometricMechanism::Pmf(std::int64_t k) const {
  const double norm = (1.0 - ratio_) / (1.0 + ratio_);
  return norm * std::pow(ratio_, static_cast<double>(std::llabs(k)));
}

}  // namespace tcdp
