#ifndef TCDP_DP_BUDGET_H_
#define TCDP_DP_BUDGET_H_

/// \file
/// Privacy-budget accounting under *independence* assumptions: the
/// classical sequential composition of Theorem 3 (McSherry [31]) and the
/// w-event sliding-window view (Kellaris et al. [22]) used by Table II.
/// The temporal-correlation-aware accountant lives in core/tpl_accountant.

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"

namespace tcdp {

/// \brief Ledger of per-release epsilon spends with composition queries.
class BudgetLedger {
 public:
  /// \p total_budget caps cumulative spend (infinity = uncapped).
  explicit BudgetLedger(
      double total_budget = std::numeric_limits<double>::infinity());

  /// One recorded release.
  struct Entry {
    double epsilon;
    std::string label;
  };

  /// Records a spend. Returns InvalidArgument for epsilon <= 0 and
  /// ResourceExhausted when the cap would be exceeded (nothing recorded).
  Status Spend(double epsilon, std::string label = "");

  std::size_t num_releases() const { return entries_.size(); }
  const std::vector<Entry>& entries() const { return entries_; }
  double total_budget() const { return total_budget_; }

  /// Sequential composition (Theorem 3): sum of all spends. On
  /// independent data this is the user-level guarantee of the sequence.
  double TotalSpent() const { return total_spent_; }

  /// Remaining budget under the cap.
  double Remaining() const { return total_budget_ - total_spent_; }

  /// w-event guarantee: maximum spend over any window of \p w consecutive
  /// releases (w >= 1). Returns InvalidArgument for w == 0.
  StatusOr<double> WindowSpend(std::size_t w) const;

 private:
  double total_budget_;
  double total_spent_ = 0.0;
  std::vector<Entry> entries_;
};

}  // namespace tcdp

#endif  // TCDP_DP_BUDGET_H_
