#ifndef TCDP_DP_LAPLACE_H_
#define TCDP_DP_LAPLACE_H_

/// \file
/// The Laplace mechanism (paper Theorem 1, Dwork et al. [14]): adding
/// Lap(sensitivity/epsilon) noise to a query's outputs achieves eps-DP.

#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace tcdp {

/// \brief Laplace mechanism with fixed epsilon and sensitivity.
class LaplaceMechanism {
 public:
  /// Returns InvalidArgument unless epsilon > 0 and sensitivity > 0.
  static StatusOr<LaplaceMechanism> Create(double epsilon,
                                           double sensitivity = 1.0);

  double epsilon() const { return epsilon_; }
  double sensitivity() const { return sensitivity_; }

  /// Noise scale b = sensitivity / epsilon.
  double scale() const { return sensitivity_ / epsilon_; }

  /// E|noise| = b; the paper's Figure 8 utility metric.
  double ExpectedAbsNoise() const { return scale(); }

  /// Noise variance 2 b^2.
  double NoiseVariance() const { return 2.0 * scale() * scale(); }

  /// Adds one Laplace draw to \p true_value.
  double Perturb(double true_value, Rng* rng) const;

  /// Perturbs each coordinate independently.
  std::vector<double> PerturbVector(const std::vector<double>& values,
                                    Rng* rng) const;

  /// Density of Lap(0, b) at x.
  static double Pdf(double x, double scale);

  /// CDF of Lap(0, b) at x.
  static double Cdf(double x, double scale);

 private:
  LaplaceMechanism(double epsilon, double sensitivity)
      : epsilon_(epsilon), sensitivity_(sensitivity) {}

  double epsilon_;
  double sensitivity_;
};

}  // namespace tcdp

#endif  // TCDP_DP_LAPLACE_H_
