#ifndef TCDP_DP_GEOMETRIC_H_
#define TCDP_DP_GEOMETRIC_H_

/// \file
/// The geometric (discrete Laplace) mechanism — the integer-valued
/// counterpart of Theorem 1's Laplace mechanism (Ghosh, Roughgarden &
/// Sundararajan, "Universally utility-maximizing privacy mechanisms").
///
/// For integer-valued queries (the paper's counts are integers), adding
/// two-sided geometric noise with ratio r = e^{-eps/sensitivity}
/// achieves eps-DP while keeping releases integral:
///
///   Pr[noise = k] = (1 - r)/(1 + r) * r^{|k|},  k in Z.
///
/// Within this library the mechanism is a drop-in replacement for
/// LaplaceMechanism in release pipelines; its PL0 is the same eps, so
/// the TPL accounting applies unchanged.

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace tcdp {

/// \brief Two-sided geometric mechanism with fixed epsilon/sensitivity.
class GeometricMechanism {
 public:
  /// Returns InvalidArgument unless epsilon > 0 and sensitivity is a
  /// positive integer (the mechanism's DP proof needs integral
  /// sensitivity).
  static StatusOr<GeometricMechanism> Create(double epsilon,
                                             int sensitivity = 1);

  double epsilon() const { return epsilon_; }
  int sensitivity() const { return sensitivity_; }

  /// Noise ratio r = e^{-eps/sensitivity} in (0, 1).
  double ratio() const { return ratio_; }

  /// E|noise| = 2r / (1 - r^2).
  double ExpectedAbsNoise() const;

  /// Noise variance 2r / (1 - r)^2.
  double NoiseVariance() const;

  /// Samples two-sided geometric noise.
  std::int64_t SampleNoise(Rng* rng) const;

  /// Adds noise to an integer value.
  std::int64_t Perturb(std::int64_t true_value, Rng* rng) const;

  /// Perturbs a vector of (integral) doubles, keeping outputs integral.
  std::vector<double> PerturbVector(const std::vector<double>& values,
                                    Rng* rng) const;

  /// Pmf of the noise at integer k.
  double Pmf(std::int64_t k) const;

 private:
  GeometricMechanism(double epsilon, int sensitivity, double ratio)
      : epsilon_(epsilon), sensitivity_(sensitivity), ratio_(ratio) {}

  double epsilon_;
  int sensitivity_;
  double ratio_;
};

}  // namespace tcdp

#endif  // TCDP_DP_GEOMETRIC_H_
