#include "dp/personalized.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace tcdp {

StatusOr<PdpSampleMechanism> PdpSampleMechanism::Create(
    std::vector<double> epsilons, double threshold) {
  if (epsilons.empty()) {
    return Status::InvalidArgument("PdpSampleMechanism: no budgets");
  }
  double max_eps = 0.0;
  for (double e : epsilons) {
    if (!(e > 0.0) || !std::isfinite(e)) {
      return Status::InvalidArgument(
          "PdpSampleMechanism: budgets must be finite and > 0");
    }
    max_eps = std::max(max_eps, e);
  }
  if (threshold <= 0.0) threshold = max_eps;
  if (threshold < max_eps - 1e-12) {
    return Status::InvalidArgument(
        "PdpSampleMechanism: threshold " + std::to_string(threshold) +
        " below the maximum personalized budget " + std::to_string(max_eps));
  }
  return PdpSampleMechanism(std::move(epsilons), threshold);
}

double PdpSampleMechanism::InclusionProbability(std::size_t user) const {
  const double eps = epsilons_[user];
  if (eps >= threshold_) return 1.0;
  return std::expm1(eps) / std::expm1(threshold_);
}

StatusOr<PdpRelease> PdpSampleMechanism::Release(const Database& db,
                                                 const Query& query,
                                                 Rng* rng) const {
  if (db.num_users() != num_users()) {
    return Status::InvalidArgument(
        "PdpSampleMechanism: database has " + std::to_string(db.num_users()) +
        " users but mechanism was built for " + std::to_string(num_users()));
  }
  PdpRelease release;
  release.threshold = threshold_;
  release.included.resize(num_users());
  std::vector<std::size_t> sampled_values;
  sampled_values.reserve(num_users());
  for (std::size_t u = 0; u < num_users(); ++u) {
    const bool in = rng->Uniform() < InclusionProbability(u);
    release.included[u] = in;
    if (in) sampled_values.push_back(db.value(u));
  }
  TCDP_ASSIGN_OR_RETURN(
      Database sampled,
      Database::Create(std::move(sampled_values), db.domain_size()));
  release.true_values = query.Evaluate(sampled);
  TCDP_ASSIGN_OR_RETURN(
      LaplaceMechanism mech,
      LaplaceMechanism::Create(threshold_, query.Sensitivity()));
  release.noisy_values = mech.PerturbVector(release.true_values, rng);
  return release;
}

double MinimumBudget(const std::vector<double>& epsilons) {
  if (epsilons.empty()) return 0.0;
  return *std::min_element(epsilons.begin(), epsilons.end());
}

}  // namespace tcdp
