#ifndef TCDP_DP_PERSONALIZED_H_
#define TCDP_DP_PERSONALIZED_H_

/// \file
/// Personalized differential privacy (PDP) — Jorgensen et al. [21], the
/// mechanism family the paper's Section III-D says its framework can
/// convert "to bound the temporal privacy leakage for each user".
///
/// The Sample mechanism: given per-user budgets eps_u and a threshold
/// t >= max_u eps_u, include user u's record with probability
///
///     pi_u = (e^{eps_u} - 1) / (e^t - 1)      (1 if eps_u >= t)
///
/// then run any t-DP mechanism on the sampled database. The combination
/// satisfies eps_u-DP for each user u.

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "dp/database.h"
#include "dp/laplace.h"
#include "dp/query.h"

namespace tcdp {

/// \brief One personalized release: which users were sampled and the
/// noisy output of the threshold-DP mechanism on the sample.
struct PdpRelease {
  std::vector<bool> included;       ///< per-user sampling outcome
  std::vector<double> true_values;  ///< Q(sampled D) — pre-noise
  std::vector<double> noisy_values; ///< released output
  double threshold = 0.0;           ///< the t-DP budget actually spent
};

/// \brief The PDP Sample mechanism over snapshot databases.
class PdpSampleMechanism {
 public:
  /// \p epsilons: per-user budgets (> 0). \p threshold: the uniform
  /// budget of the inner mechanism; defaults (<= 0) to max(epsilons).
  /// Returns InvalidArgument for empty/non-positive budgets or a
  /// threshold below the maximum budget.
  static StatusOr<PdpSampleMechanism> Create(std::vector<double> epsilons,
                                             double threshold = 0.0);

  std::size_t num_users() const { return epsilons_.size(); }
  double threshold() const { return threshold_; }
  const std::vector<double>& epsilons() const { return epsilons_; }

  /// pi_u = (e^{eps_u} - 1)/(e^t - 1), clamped to 1.
  double InclusionProbability(std::size_t user) const;

  /// Samples users, evaluates \p query on the sampled snapshot, perturbs
  /// with Lap(sensitivity/t). Returns InvalidArgument when db's user
  /// count mismatches the budget vector.
  StatusOr<PdpRelease> Release(const Database& db, const Query& query,
                               Rng* rng) const;

 private:
  PdpSampleMechanism(std::vector<double> epsilons, double threshold)
      : epsilons_(std::move(epsilons)), threshold_(threshold) {}

  std::vector<double> epsilons_;
  double threshold_;
};

/// \brief The "Minimum" strawman from [21]: ignore personalization and
/// run everyone at min_u eps_u. Returned for comparisons.
double MinimumBudget(const std::vector<double>& epsilons);

}  // namespace tcdp

#endif  // TCDP_DP_PERSONALIZED_H_
