#include "dp/query.h"

namespace tcdp {

std::vector<double> CountQuery::Evaluate(const Database& db) const {
  double count = 0.0;
  for (std::size_t v : db.values()) {
    if (v == target_value_) count += 1.0;
  }
  return {count};
}

std::string CountQuery::name() const {
  return "count(loc" + std::to_string(target_value_ + 1) + ")";
}

std::vector<double> HistogramQuery::Evaluate(const Database& db) const {
  return db.Histogram();
}

}  // namespace tcdp
