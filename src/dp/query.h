#ifndef TCDP_DP_QUERY_H_
#define TCDP_DP_QUERY_H_

/// \file
/// Statistical queries over snapshot databases, with their L1 sensitivity
/// under the event-level neighboring relation (one user's value changes).

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "dp/database.h"

namespace tcdp {

/// \brief Abstract vector-valued query with known L1 sensitivity.
class Query {
 public:
  virtual ~Query() = default;

  /// Evaluates the query on \p db.
  virtual std::vector<double> Evaluate(const Database& db) const = 0;

  /// Output dimension for a database over \p domain_size values.
  virtual std::size_t OutputSize(std::size_t domain_size) const = 0;

  /// Worst-case L1 change of the output across neighboring databases.
  virtual double Sensitivity() const = 0;

  virtual std::string name() const = 0;
};

/// \brief Count of users holding one target value (sensitivity 1).
class CountQuery final : public Query {
 public:
  explicit CountQuery(std::size_t target_value)
      : target_value_(target_value) {}
  std::vector<double> Evaluate(const Database& db) const override;
  std::size_t OutputSize(std::size_t) const override { return 1; }
  double Sensitivity() const override { return 1.0; }
  std::string name() const override;

 private:
  std::size_t target_value_;
};

/// Sensitivity convention for full histograms.
enum class HistogramSensitivity {
  /// The paper's convention (Example 1): each count is perturbed with
  /// Lap(1/eps) — i.e. the per-count sensitivity 1 is used. Matches
  /// "adding Lap(1/eps) noise to perturb each count ... achieves eps-DP".
  kPerCount,
  /// Strict L1 sensitivity of the full vector: a value change moves one
  /// user between two bins, so ||Q(D)-Q(D')||_1 = 2.
  kStrictL1,
};

/// \brief All per-value counts (the paper's released aggregate).
class HistogramQuery final : public Query {
 public:
  explicit HistogramQuery(
      HistogramSensitivity convention = HistogramSensitivity::kPerCount)
      : convention_(convention) {}
  std::vector<double> Evaluate(const Database& db) const override;
  std::size_t OutputSize(std::size_t domain_size) const override {
    return domain_size;
  }
  double Sensitivity() const override {
    return convention_ == HistogramSensitivity::kPerCount ? 1.0 : 2.0;
  }
  std::string name() const override { return "histogram"; }

 private:
  HistogramSensitivity convention_;
};

}  // namespace tcdp

#endif  // TCDP_DP_QUERY_H_
