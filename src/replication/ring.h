#ifndef TCDP_REPLICATION_RING_H_
#define TCDP_REPLICATION_RING_H_

/// \file
/// ConsistentHashRing: user-name -> endpoint placement for the router
/// (replication/router.h).
///
/// Classic virtual-node consistent hashing: every endpoint projects
/// `virtual_nodes` points onto a 64-bit ring (FNV-1a, the same hash
/// family ShardedReleaseService::ShardOf partitions with), and a user
/// routes to the first endpoint point at or after the hash of its
/// name. Adding an endpoint to an N-endpoint ring therefore moves only
/// ~1/(N+1) of the users — the property the router's rebalancing (and
/// tests/router_test.cc) is built on. Deterministic: no randomness, so
/// every process that replays the same journal computes the same
/// placement.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace tcdp {
namespace replication {

/// FNV-1a 64 (the repo's standard string hash; see ShardOf).
std::uint64_t Fnv1a64(const std::string& text);

class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(std::size_t virtual_nodes = 64)
      : virtual_nodes_(virtual_nodes == 0 ? 1 : virtual_nodes) {}

  /// AlreadyExists / NotFound on redundant mutations (the router
  /// journal must never record a no-op).
  Status AddEndpoint(const std::string& endpoint);
  Status RemoveEndpoint(const std::string& endpoint);

  bool HasEndpoint(const std::string& endpoint) const {
    return endpoints_.count(endpoint) != 0;
  }
  /// Sorted (set order) endpoint list.
  std::vector<std::string> endpoints() const {
    return std::vector<std::string>(endpoints_.begin(), endpoints_.end());
  }
  std::size_t size() const { return endpoints_.size(); }

  /// FailedPrecondition on an empty ring.
  StatusOr<std::string> Lookup(const std::string& name) const;

 private:
  std::size_t virtual_nodes_;
  /// Ring point -> endpoint. Collisions resolve to the map's last
  /// writer; with 64-bit points they are effectively absent.
  std::map<std::uint64_t, std::string> points_;
  std::set<std::string> endpoints_;
};

}  // namespace replication
}  // namespace tcdp

#endif  // TCDP_REPLICATION_RING_H_
