#ifndef TCDP_REPLICATION_ROUTER_H_
#define TCDP_REPLICATION_ROUTER_H_

/// \file
/// RouterTable + RouterServer: user -> shard-server placement with a
/// durable journal, and the wire front that answers kRouteLookup.
///
/// The table is a ConsistentHashRing plus explicit per-user pins
/// (kMigrateUser records) that override it. Both mutations are
/// journaled through the WAL framing (event_log.h) before they apply,
/// so a router recovers exactly like a shard: scan, truncate the torn
/// tail, replay. Scaling out is: add the new endpoint (ring moves
/// ~1/N of the users), then for each moved user export/import its
/// series and journal a kMigrateUser pin only if it must deviate from
/// the ring (e.g. staged migration); clearing the pin (empty endpoint)
/// hands the user back to the ring.
///
/// RouterServer speaks the TCDPNET1 framing: kRouteLookup(name) ->
/// kRouteReport(endpoint), kShutdown -> kOk. It serves reads only —
/// mutations go through the CLI against the journal, and the server
/// process is restarted (or a new one pointed at the journal) to pick
/// them up; a live mutation protocol is out of scope
/// (docs/REPLICATION.md).

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "replication/ring.h"
#include "server/event_log.h"

namespace tcdp {
namespace replication {

struct RouterTableStats {
  std::size_t endpoints = 0;
  std::size_t pins = 0;
  std::uint64_t journal_records = 0;
};

class RouterTable {
 public:
  /// Opens (replaying, torn tail truncated) or creates the journal at
  /// \p journal_path. Empty path runs ephemeral (tests, dry runs).
  static StatusOr<std::unique_ptr<RouterTable>> Open(
      const std::string& journal_path, std::size_t virtual_nodes = 64);

  /// Journal-then-apply mutations. Each Sync()s before applying, so an
  /// acknowledged mutation survives a crash.
  Status AddEndpoint(const std::string& endpoint);
  Status RemoveEndpoint(const std::string& endpoint);
  /// Pins \p name to \p endpoint (which must be on the ring); an empty
  /// endpoint clears the pin.
  Status MigrateUser(const std::string& name, const std::string& endpoint);

  /// Pin first, ring second.
  StatusOr<std::string> Lookup(const std::string& name) const;

  std::vector<std::string> endpoints() const;
  RouterTableStats stats() const;

 private:
  RouterTable(std::size_t virtual_nodes) : ring_(virtual_nodes) {}

  Status Apply(const server::EventRecord& record);
  Status Journal(server::EventType type, const std::string& payload);

  mutable std::mutex mutex_;
  ConsistentHashRing ring_;
  std::unordered_map<std::string, std::string> pins_;
  server::EventLogWriter journal_;  ///< !is_open() when ephemeral
  std::uint64_t journal_records_ = 0;
};

struct RouterServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 picks an ephemeral port
  int listen_backlog = 16;
};

/// Minimal request/response front over a RouterTable. Single poll
/// thread, same lifecycle as net::NetServer: Serve() on a dedicated
/// thread, Stop() from anywhere.
class RouterServer {
 public:
  static StatusOr<std::unique_ptr<RouterServer>> Listen(
      RouterTable* table, RouterServerOptions options);

  ~RouterServer();
  RouterServer(const RouterServer&) = delete;
  RouterServer& operator=(const RouterServer&) = delete;

  Status Serve();
  void Stop();
  std::uint16_t port() const { return port_; }

 private:
  struct Connection;

  RouterServer() = default;

  RouterTable* table_ = nullptr;
  RouterServerOptions options_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  bool stopping_ = false;
  bool served_ = false;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace replication
}  // namespace tcdp

#endif  // TCDP_REPLICATION_ROUTER_H_
