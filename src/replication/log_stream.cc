#include "replication/log_stream.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/binary_io.h"
#include "common/logging.h"
#include "net/messages.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"
#include "replication/repl_messages.h"

namespace tcdp {
namespace replication {
namespace {

constexpr char kWalMagic[8] = {'T', 'C', 'D', 'P', 'W', 'A', 'L', '1'};
constexpr std::size_t kWalMagicBytes = sizeof(kWalMagic);
constexpr std::size_t kWalHeaderBytes = 1 + 4 + 4;  // type + len + crc
constexpr char kManifestHeader[] = "tcdp-shard-manifest-v1";

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Replication-primary instruments (obs/METRICS naming conventions).
struct ReplObs {
  obs::Gauge* followers;
  obs::Gauge* lag_records;
  obs::Gauge* min_acked_horizon;
  obs::Gauge* primary_records;
  obs::Counter* batches;
  obs::Counter* records;
  obs::Counter* bytes;
  obs::Counter* acks;
  obs::Counter* divergences;
  static const ReplObs& Get() {
    static const ReplObs instruments = [] {
      obs::Registry& registry = obs::Registry::Default();
      ReplObs o;
      o.followers = registry.GetGauge("tcdp_repl_followers");
      o.lag_records = registry.GetGauge("tcdp_repl_lag_records");
      o.min_acked_horizon =
          registry.GetGauge("tcdp_repl_min_acked_horizon");
      o.primary_records = registry.GetGauge("tcdp_repl_primary_records");
      o.batches = registry.GetCounter("tcdp_repl_batches_total");
      o.records = registry.GetCounter("tcdp_repl_records_total");
      o.bytes = registry.GetCounter("tcdp_repl_bytes_total");
      o.acks = registry.GetCounter("tcdp_repl_acks_total");
      o.divergences = registry.GetCounter("tcdp_repl_divergences_total");
      return o;
    }();
    return instruments;
  }
};

/// Reads a file whole (the directory MANIFEST: a few hundred bytes).
StatusOr<std::string> ReadFileText(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  return contents;
}

/// Pulls `shards N` out of the MANIFEST text. The replication layer
/// needs only the shard count; everything else is the service's
/// business and travels to followers verbatim.
StatusOr<std::size_t> ParseManifestShards(const std::string& text) {
  std::istringstream in(text);
  std::string header;
  if (!std::getline(in, header) || header != kManifestHeader) {
    return Status::InvalidArgument("bad manifest header");
  }
  std::string key;
  while (in >> key) {
    if (key == "shards") {
      std::size_t shards = 0;
      if (!(in >> shards) || shards == 0) {
        return Status::InvalidArgument("malformed manifest 'shards' value");
      }
      return shards;
    }
    std::string skipped;
    if (!(in >> skipped)) break;
  }
  return Status::InvalidArgument("manifest carries no 'shards' key");
}

}  // namespace

/// One shard WAL as the tailer sees it: an open fd, the scanned
/// (CRC-verified) record index, and the cursor chain at every prefix.
struct LogStreamServer::ShardTail {
  std::string path;
  int fd = -1;
  bool magic_checked = false;
  /// Byte offset just past the last fully-scanned record.
  std::uint64_t scan_offset = 0;
  /// record_end[i]: byte offset just past record i (record 0 starts at
  /// the magic boundary) — the pread ranges for batch building.
  std::vector<std::uint64_t> record_end;
  /// chain_after[i]: cursor chain CRC after records [0, i].
  std::vector<std::uint32_t> chain_after;
  /// Running kRelease count per prefix: releases_through[i] = kRelease
  /// records among [0, i] (the ack release-horizon bookkeeping).
  std::vector<std::uint64_t> releases_through;
  /// Record 1 is a kCompaction record: bootstraps must be refused (the
  /// rewritten prefix lives only in the primary's snapshot, which this
  /// stream does not carry).
  bool compacted = false;
  /// Unrecoverable tail problem (corruption past the committed
  /// prefix); streaming this shard stops and followers are dropped.
  Status error = Status::OK();

  ~ShardTail() { CloseFd(&fd); }

  std::uint64_t records() const { return record_end.size(); }
  std::uint32_t chain_at(std::uint64_t next_record) const {
    return next_record == 0 ? kChainSeed : chain_after[next_record - 1];
  }
  std::uint64_t record_start(std::uint64_t index) const {
    return index == 0 ? kWalMagicBytes : record_end[index - 1];
  }
};

/// One follower connection (mirrors net::NetServer::Connection, plus
/// per-shard streaming cursors and the acked-durability view).
struct LogStreamServer::Follower {
  int fd = -1;
  net::FrameDecoder decoder;
  std::string out;
  std::size_t out_offset = 0;
  bool subscribed = false;
  bool close_after_flush = false;

  /// Next record to send / the chain there, per shard.
  std::vector<std::uint64_t> next_record;
  /// Acked durability, per shard, from the latest kAckHorizon.
  std::vector<std::uint64_t> durable;
  std::uint64_t release_horizon = 0;

  ~Follower() { CloseFd(&fd); }

  std::size_t pending_out() const { return out.size() - out_offset; }
};

LogStreamServer::~LogStreamServer() {
  CloseFd(&listen_fd_);
  CloseFd(&wake_read_fd_);
  CloseFd(&wake_write_fd_);
}

StatusOr<std::unique_ptr<LogStreamServer>> LogStreamServer::Listen(
    LogStreamOptions options) {
  if (options.log_dir.empty()) {
    return Status::InvalidArgument("LogStreamServer: empty log_dir");
  }
  std::unique_ptr<LogStreamServer> server(new LogStreamServer());
  server->options_ = std::move(options);

  TCDP_ASSIGN_OR_RETURN(
      server->manifest_text_,
      ReadFileText(server->options_.log_dir + "/MANIFEST"));
  TCDP_ASSIGN_OR_RETURN(server->num_shards_,
                        ParseManifestShards(server->manifest_text_));
  if (server->manifest_text_.size() > net::kMaxFramePayload / 2) {
    return Status::InvalidArgument(
        "LogStreamServer: MANIFEST too large to stream");
  }
  for (std::size_t i = 0; i < server->num_shards_; ++i) {
    auto tail = std::make_unique<ShardTail>();
    tail->path = server->options_.log_dir + "/shard-" + std::to_string(i) +
                 ".wal";
    tail->fd = ::open(tail->path.c_str(), O_RDONLY);
    if (tail->fd < 0) {
      return ErrnoStatus("LogStreamServer: open " + tail->path);
    }
    server->tails_.push_back(std::move(tail));
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->options_.port);
  if (::inet_pton(AF_INET, server->options_.host.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("LogStreamServer: bad IPv4 host '" +
                                   server->options_.host + "'");
  }
  server->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (server->listen_fd_ < 0) return ErrnoStatus("socket");
  int one = 1;
  (void)::setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
  if (::bind(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return ErrnoStatus("bind " + server->options_.host + ":" +
                       std::to_string(server->options_.port));
  }
  if (::listen(server->listen_fd_, server->options_.listen_backlog) != 0) {
    return ErrnoStatus("listen");
  }
  SetNonBlocking(server->listen_fd_);
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(server->listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return ErrnoStatus("getsockname");
  }
  server->port_ = ntohs(bound.sin_port);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return ErrnoStatus("pipe");
  server->wake_read_fd_ = pipe_fds[0];
  server->wake_write_fd_ = pipe_fds[1];
  SetNonBlocking(server->wake_read_fd_);
  return server;
}

void LogStreamServer::Stop() {
  if (wake_write_fd_ >= 0) {
    const char byte = 1;
    ssize_t ignored = ::write(wake_write_fd_, &byte, 1);
    (void)ignored;
  }
}

void LogStreamServer::AcceptOne() {
  sockaddr_in peer{};
  socklen_t peer_len = sizeof(peer);
  const int fd = ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer),
                          &peer_len);
  if (fd < 0) return;
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  SetNonBlocking(fd);
  auto follower = std::make_unique<Follower>();
  follower->fd = fd;
  net::AppendPreamble(&follower->out);
  followers_.push_back(std::move(follower));
}

void LogStreamServer::ScanShard(std::size_t shard) {
  ShardTail* tail = tails_[shard].get();
  if (!tail->error.ok()) return;

  // Compaction rewrites the WAL via rename: our fd keeps the old
  // inode. An inode change (or a same-inode shrink) means the record
  // index no longer describes the file — every cursor into it is
  // invalid, so followers are dropped (manual resync is the documented
  // recovery; docs/REPLICATION.md) and the tailer restarts on the new
  // file.
  struct stat by_path {};
  struct stat by_fd {};
  if (::stat(tail->path.c_str(), &by_path) != 0 ||
      ::fstat(tail->fd, &by_fd) != 0) {
    tail->error = ErrnoStatus("stat " + tail->path);
    return;
  }
  if (by_path.st_ino != by_fd.st_ino ||
      static_cast<std::uint64_t>(by_fd.st_size) < tail->scan_offset) {
    TCDP_LOG(kWarning) << "repl: shard " << shard
                       << " WAL was rewritten (compaction); dropping "
                          "followers";
    DropAllFollowers(Status::FailedPrecondition(
        "diverged: primary rewrote shard " + std::to_string(shard) +
        " WAL (compaction); followers must resync from scratch"));
    const int fd = ::open(tail->path.c_str(), O_RDONLY);
    if (fd < 0) {
      tail->error = ErrnoStatus("reopen " + tail->path);
      return;
    }
    CloseFd(&tail->fd);
    tail->fd = fd;
    tail->magic_checked = false;
    tail->scan_offset = 0;
    tail->record_end.clear();
    tail->chain_after.clear();
    tail->releases_through.clear();
    tail->compacted = false;
    if (::fstat(tail->fd, &by_fd) != 0) {
      tail->error = ErrnoStatus("fstat " + tail->path);
      return;
    }
  }
  const std::uint64_t size = static_cast<std::uint64_t>(by_fd.st_size);

  if (!tail->magic_checked) {
    if (size < kWalMagicBytes) return;  // writer has not flushed yet
    char magic[kWalMagicBytes];
    if (::pread(tail->fd, magic, kWalMagicBytes, 0) !=
            static_cast<ssize_t>(kWalMagicBytes) ||
        std::memcmp(magic, kWalMagic, kWalMagicBytes) != 0) {
      tail->error = Status::InvalidArgument(tail->path +
                                            " is not a tcdp event log");
      return;
    }
    tail->magic_checked = true;
    tail->scan_offset = kWalMagicBytes;
  }

  while (tail->scan_offset + kWalHeaderBytes <= size) {
    char header[kWalHeaderBytes];
    if (::pread(tail->fd, header, kWalHeaderBytes,
                static_cast<off_t>(tail->scan_offset)) !=
        static_cast<ssize_t>(kWalHeaderBytes)) {
      tail->error = ErrnoStatus("pread " + tail->path);
      return;
    }
    const std::uint8_t type_byte = static_cast<std::uint8_t>(header[0]);
    std::uint32_t payload_len = 0;
    std::uint32_t stored_crc = 0;
    BinaryCursor cursor(header + 1, kWalHeaderBytes - 1);
    (void)cursor.ReadFixed32(&payload_len);
    (void)cursor.ReadFixed32(&stored_crc);
    const std::uint64_t end =
        tail->scan_offset + kWalHeaderBytes + payload_len;
    if (end > size) return;  // partial record: wait for the writer
    // The record's bytes are all durable in the file now (the writer
    // appends via a retrying write loop, so a record fully inside the
    // file size is final). A CRC mismatch here is real corruption, not
    // an in-progress append.
    std::string payload(payload_len, '\0');
    if (payload_len > 0 &&
        ::pread(tail->fd, &payload[0], payload_len,
                static_cast<off_t>(tail->scan_offset + kWalHeaderBytes)) !=
            static_cast<ssize_t>(payload_len)) {
      tail->error = ErrnoStatus("pread " + tail->path);
      return;
    }
    std::uint32_t crc = Crc32(&type_byte, 1);
    crc = Crc32(payload.data(), payload.size(), crc);
    if (crc != stored_crc) {
      tail->error = Status::Internal(
          tail->path + ": CRC mismatch at offset " +
          std::to_string(tail->scan_offset) + " (committed prefix)");
      TCDP_LOG(kWarning) << "repl: " << tail->error.message();
      DropAllFollowers(tail->error);
      return;
    }
    const std::uint64_t index = tail->records();
    if (index == 1 &&
        static_cast<server::EventType>(type_byte) ==
            server::EventType::kCompaction) {
      tail->compacted = true;
    }
    const std::uint64_t prior_releases =
        index == 0 ? 0 : tail->releases_through[index - 1];
    tail->releases_through.push_back(
        prior_releases + (static_cast<server::EventType>(type_byte) ==
                                  server::EventType::kRelease
                              ? 1
                              : 0));
    tail->chain_after.push_back(AdvanceChainCrc(tail->chain_at(index), crc));
    tail->record_end.push_back(end);
    tail->scan_offset = end;
  }
}

void LogStreamServer::ScanAllShards() {
  for (std::size_t i = 0; i < tails_.size(); ++i) ScanShard(i);
}

void LogStreamServer::DropAllFollowers(const Status& why) {
  for (auto& follower : followers_) {
    if (follower->close_after_flush) continue;
    net::AppendFrame(&follower->out, net::MsgType::kError,
                     net::EncodeError(why));
    follower->close_after_flush = true;
  }
}

bool LogStreamServer::ReadFrom(Follower* follower) {
  char buffer[64 * 1024];
  const ssize_t n = ::recv(follower->fd, buffer, sizeof(buffer), 0);
  if (n < 0) {
    return errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK;
  }
  if (n == 0) return false;  // follower is gone; nothing owed to it
  const Status fed =
      follower->decoder.Feed(buffer, static_cast<std::size_t>(n));
  // Framing violation: stream position untrustworthy, drop.
  return fed.ok();
}

void LogStreamServer::ProcessFrames(Follower* follower) {
  while (follower->decoder.has_frame() && !follower->close_after_flush) {
    const net::Frame frame = follower->decoder.PopFrame();
    if (!follower->subscribed) {
      if (frame.type != net::MsgType::kSubscribe) {
        net::AppendFrame(
            &follower->out, net::MsgType::kError,
            net::EncodeError(Status::InvalidArgument(
                "replication stream expects kSubscribe first, got type " +
                std::to_string(static_cast<unsigned>(frame.type)))));
        follower->close_after_flush = true;
        return;
      }
      HandleSubscribe(follower, frame.payload);
      continue;
    }
    if (frame.type != net::MsgType::kAckHorizon) {
      net::AppendFrame(
          &follower->out, net::MsgType::kError,
          net::EncodeError(Status::InvalidArgument(
              "subscribed replication stream accepts only kAckHorizon, "
              "got type " +
              std::to_string(static_cast<unsigned>(frame.type)))));
      follower->close_after_flush = true;
      return;
    }
    HandleAck(follower, frame.payload);
  }
}

void LogStreamServer::HandleSubscribe(Follower* follower,
                                      const std::string& payload) {
  ++subscribes_;
  auto request = DecodeSubscribe(payload);
  if (!request.ok()) {
    net::AppendFrame(&follower->out, net::MsgType::kError,
                     net::EncodeError(request.status()));
    follower->close_after_flush = true;
    return;
  }
  const bool bootstrap = request->cursors.empty();
  if (!bootstrap && request->cursors.size() != num_shards_) {
    net::AppendFrame(
        &follower->out, net::MsgType::kError,
        net::EncodeError(Status::InvalidArgument(
            "subscribe carries " + std::to_string(request->cursors.size()) +
            " cursors for a " + std::to_string(num_shards_) +
            "-shard primary")));
    follower->close_after_flush = true;
    return;
  }
  for (std::size_t i = 0; i < num_shards_; ++i) {
    const ShardTail& tail = *tails_[i];
    if (!tail.error.ok()) {
      net::AppendFrame(&follower->out, net::MsgType::kError,
                       net::EncodeError(tail.error));
      follower->close_after_flush = true;
      return;
    }
    const std::uint64_t next =
        bootstrap ? 0 : request->cursors[i].next_record;
    if (tail.compacted && next < 2) {
      // Records before the compaction base live only in the primary's
      // snapshot, which this stream does not carry.
      net::AppendFrame(
          &follower->out, net::MsgType::kError,
          net::EncodeError(Status::FailedPrecondition(
              "cannot bootstrap from a compacted primary (shard " +
              std::to_string(i) +
              "); copy the log directory for the initial sync")));
      follower->close_after_flush = true;
      return;
    }
    if (bootstrap) continue;
    if (next > tail.records() ||
        request->cursors[i].chain_crc != tail.chain_at(next)) {
      ++divergences_;
      if (obs::MetricsEnabled()) ReplObs::Get().divergences->Increment();
      const std::string reason =
          next > tail.records()
              ? "cursor is ahead of the primary's log"
              : "cursor chain CRC does not match the primary's history";
      TCDP_LOG(kWarning) << "repl: refusing diverged follower on shard "
                         << i << " (" << reason << ")";
      net::AppendFrame(
          &follower->out, net::MsgType::kError,
          net::EncodeError(Status::FailedPrecondition(
              "diverged: shard " + std::to_string(i) + " " + reason)));
      follower->close_after_flush = true;
      return;
    }
  }
  follower->next_record.assign(num_shards_, 0);
  follower->durable.assign(num_shards_, 0);
  if (!bootstrap) {
    for (std::size_t i = 0; i < num_shards_; ++i) {
      follower->next_record[i] = request->cursors[i].next_record;
      follower->durable[i] = request->cursors[i].next_record;
    }
  }
  SubscribeOk ok;
  ok.num_shards = num_shards_;
  ok.manifest_text = manifest_text_;
  net::AppendFrame(&follower->out, net::MsgType::kSubscribeOk,
                   EncodeSubscribeOk(ok));
  follower->subscribed = true;
}

void LogStreamServer::HandleAck(Follower* follower,
                                const std::string& payload) {
  auto ack = DecodeAckHorizon(payload);
  if (!ack.ok()) {
    net::AppendFrame(&follower->out, net::MsgType::kError,
                     net::EncodeError(ack.status()));
    follower->close_after_flush = true;
    return;
  }
  if (ack->durable_records.size() != num_shards_) {
    net::AppendFrame(
        &follower->out, net::MsgType::kError,
        net::EncodeError(Status::InvalidArgument(
            "ack carries " + std::to_string(ack->durable_records.size()) +
            " shard horizons for a " + std::to_string(num_shards_) +
            "-shard primary")));
    follower->close_after_flush = true;
    return;
  }
  for (std::size_t i = 0; i < num_shards_; ++i) {
    // Acks only advance; a horizon moving backwards (or past what was
    // ever sent) is a protocol violation.
    if (ack->durable_records[i] < follower->durable[i] ||
        ack->durable_records[i] > follower->next_record[i]) {
      net::AppendFrame(
          &follower->out, net::MsgType::kError,
          net::EncodeError(Status::InvalidArgument(
              "ack horizon for shard " + std::to_string(i) +
              " is not monotonic within the streamed range")));
      follower->close_after_flush = true;
      return;
    }
    follower->durable[i] = ack->durable_records[i];
  }
  follower->release_horizon = ack->release_horizon;
  ++acks_received_;
  if (obs::MetricsEnabled()) ReplObs::Get().acks->Increment();
}

bool LogStreamServer::PumpBatches(Follower* follower) {
  bool queued = false;
  for (std::size_t i = 0; i < num_shards_; ++i) {
    ShardTail& tail = *tails_[i];
    if (!tail.error.ok()) continue;
    while (follower->next_record[i] < tail.records() &&
           follower->pending_out() < options_.max_write_buffer) {
      const std::uint64_t from = follower->next_record[i];
      LogBatch batch;
      batch.shard = i;
      batch.first_record = from;
      batch.prev_chain_crc = tail.chain_at(from);
      // Walk forward under both budgets. A record's encoded size is
      // its payload plus a ~6-byte type/length envelope, so budgeting
      // on raw WAL span keeps the encoded batch inside the frame cap.
      std::uint64_t end_record = from;
      const std::uint64_t start_offset = tail.record_start(from);
      while (end_record < tail.records() &&
             end_record - from < options_.max_batch_records) {
        const std::uint64_t span =
            tail.record_end[end_record] - start_offset;
        if (end_record > from && span > options_.max_batch_bytes) break;
        ++end_record;
      }
      const std::uint64_t span =
          tail.record_end[end_record - 1] - start_offset;
      std::string bytes(span, '\0');
      if (::pread(tail.fd, &bytes[0], span,
                  static_cast<off_t>(start_offset)) !=
          static_cast<ssize_t>(span)) {
        tail.error = ErrnoStatus("pread " + tail.path);
        DropAllFollowers(tail.error);
        return queued;
      }
      // Re-frame the raw span into batch records (headers were CRC-
      // verified at scan time).
      std::size_t pos = 0;
      for (std::uint64_t r = from; r < end_record; ++r) {
        const std::uint8_t type_byte = static_cast<std::uint8_t>(bytes[pos]);
        BinaryCursor header(bytes.data() + pos + 1, 8);
        std::uint32_t payload_len = 0;
        (void)header.ReadFixed32(&payload_len);
        server::EventRecord record;
        record.type = static_cast<server::EventType>(type_byte);
        record.payload.assign(bytes, pos + kWalHeaderBytes, payload_len);
        batch.records.push_back(std::move(record));
        pos += kWalHeaderBytes + payload_len;
      }
      const std::string encoded = EncodeLogBatch(batch);
      if (encoded.size() > net::kMaxFramePayload) {
        // A single WAL record too large for one frame (a >1 MiB join).
        // Nothing smaller can carry it; the stream cannot proceed.
        tail.error = Status::ResourceExhausted(
            tail.path + ": record " + std::to_string(from) +
            " exceeds the replication frame limit");
        DropAllFollowers(tail.error);
        return queued;
      }
      net::AppendFrame(&follower->out, net::MsgType::kLogBatch, encoded);
      follower->next_record[i] = end_record;
      ++batches_sent_;
      records_sent_ += batch.records.size();
      bytes_sent_ += encoded.size();
      if (obs::MetricsEnabled()) {
        const ReplObs& repl_obs = ReplObs::Get();
        repl_obs.batches->Increment();
        repl_obs.records->Add(batch.records.size());
        repl_obs.bytes->Add(encoded.size());
      }
      queued = true;
    }
  }
  return queued;
}

bool LogStreamServer::WriteTo(Follower* follower) {
  while (follower->pending_out() > 0) {
    const ssize_t n =
        ::send(follower->fd, follower->out.data() + follower->out_offset,
               follower->pending_out(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    follower->out_offset += static_cast<std::size_t>(n);
  }
  if (follower->out_offset == follower->out.size() ||
      (follower->out_offset >= 4096 &&
       follower->out_offset * 2 >= follower->out.size())) {
    follower->out.erase(0, follower->out_offset);
    follower->out_offset = 0;
  }
  return true;
}

void LogStreamServer::RefreshStats() {
  LogStreamStats stats;
  stats.num_shards = num_shards_;
  stats.subscribes = subscribes_;
  stats.batches_sent = batches_sent_;
  stats.records_sent = records_sent_;
  stats.bytes_sent = bytes_sent_;
  stats.acks_received = acks_received_;
  stats.divergences = divergences_;
  for (const auto& tail : tails_) stats.primary_records += tail->records();
  bool first = true;
  for (const auto& follower : followers_) {
    if (!follower->subscribed || follower->close_after_flush) continue;
    FollowerRow row;
    row.subscribed = true;
    for (std::size_t i = 0; i < num_shards_; ++i) {
      row.durable_records += follower->durable[i];
      row.lag_records += tails_[i]->records() - follower->durable[i];
    }
    row.release_horizon = follower->release_horizon;
    stats.min_acked_release_horizon =
        first ? row.release_horizon
              : std::min(stats.min_acked_release_horizon,
                         row.release_horizon);
    stats.max_lag_records = std::max(stats.max_lag_records, row.lag_records);
    first = false;
    ++stats.followers;
    stats.follower_rows.push_back(row);
  }
  if (obs::MetricsEnabled()) {
    const ReplObs& repl_obs = ReplObs::Get();
    repl_obs.followers->Set(static_cast<std::int64_t>(stats.followers));
    repl_obs.lag_records->Set(
        static_cast<std::int64_t>(stats.max_lag_records));
    repl_obs.min_acked_horizon->Set(
        static_cast<std::int64_t>(stats.min_acked_release_horizon));
    repl_obs.primary_records->Set(
        static_cast<std::int64_t>(stats.primary_records));
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_ = std::move(stats);
}

LogStreamStats LogStreamServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

Status LogStreamServer::Serve() {
  if (served_) {
    return Status::FailedPrecondition("LogStreamServer::Serve already ran");
  }
  served_ = true;
  obs::HeartbeatInfo heartbeat_info;
  heartbeat_info.name = "repl-stream";
  heartbeat_info.kind = obs::HeartbeatKind::kEventLoop;
  heartbeat_info.expected_period_ns =
      static_cast<std::uint64_t>(options_.poll_interval_ms) * 1000000ull;
  obs::HeartbeatHandle heartbeat =
      obs::HeartbeatRegistry::Default().Register(std::move(heartbeat_info));

  std::vector<pollfd> fds;
  std::vector<Follower*> polled;
  while (!stopping_) {
    fds.clear();
    polled.clear();
    if (followers_.size() < options_.max_followers) {
      fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    } else {
      fds.push_back(pollfd{-1, 0, 0});
    }
    fds.push_back(pollfd{wake_read_fd_, POLLIN, 0});
    for (auto& follower : followers_) {
      short events = 0;
      if (!follower->close_after_flush) events |= POLLIN;
      if (follower->pending_out() > 0) events |= POLLOUT;
      fds.push_back(pollfd{follower->fd, events, 0});
      polled.push_back(follower.get());
    }

    const int ready =
        ::poll(fds.data(), fds.size(), options_.poll_interval_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll");
    }

    if (fds[1].revents & POLLIN) {
      char drain[64];
      while (::read(wake_read_fd_, drain, sizeof(drain)) > 0) {
      }
      stopping_ = true;
      break;
    }
    if (fds[0].revents & POLLIN) AcceptOne();

    // Tail the WALs every round: the poll timeout doubles as the
    // growth-detection cadence.
    ScanAllShards();

    bool progressed = ready > 0;
    for (std::size_t i = 0; i < polled.size(); ++i) {
      Follower* follower = polled[i];
      const short revents = fds[i + 2].revents;
      bool alive = true;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
          !follower->close_after_flush) {
        alive = ReadFrom(follower);
      }
      if (alive) ProcessFrames(follower);
      if (alive && follower->subscribed && !follower->close_after_flush) {
        if (PumpBatches(follower)) progressed = true;
      }
      if (alive && follower->pending_out() > 0) alive = WriteTo(follower);
      if (alive && follower->close_after_flush &&
          follower->pending_out() == 0) {
        alive = false;
      }
      if (!alive) CloseFd(&follower->fd);
    }
    followers_.erase(
        std::remove_if(followers_.begin(), followers_.end(),
                       [](const std::unique_ptr<Follower>& follower) {
                         return follower->fd < 0;
                       }),
        followers_.end());
    if (progressed) {
      heartbeat.Beat();
    } else {
      heartbeat.Touch();
    }
    RefreshStats();
  }
  followers_.clear();
  CloseFd(&listen_fd_);
  RefreshStats();
  return Status::OK();
}

}  // namespace replication
}  // namespace tcdp
