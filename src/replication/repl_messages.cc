#include "replication/repl_messages.h"

#include <utility>

#include "common/binary_io.h"

namespace tcdp {
namespace replication {
namespace {

Status ExpectConsumed(const BinaryCursor& cursor, const char* what) {
  if (!cursor.empty()) {
    return Status::InvalidArgument(std::string(what) +
                                   ": trailing bytes in payload");
  }
  return Status::OK();
}

/// Refuses a decoded element count that the remaining payload cannot
/// possibly hold (each element is at least \p min_bytes), so a corrupt
/// count never drives a huge reserve().
Status CheckCount(std::uint64_t count, std::size_t remaining,
                  std::size_t min_bytes, const char* what) {
  if (count > remaining / min_bytes) {
    return Status::InvalidArgument(
        std::string(what) + ": count " + std::to_string(count) +
        " exceeds payload capacity (" + std::to_string(remaining) +
        " bytes remaining)");
  }
  return Status::OK();
}

}  // namespace

std::uint32_t RecordFrameCrc(const server::EventRecord& record) {
  const std::uint8_t type_byte = static_cast<std::uint8_t>(record.type);
  std::uint32_t crc = Crc32(&type_byte, 1);
  return Crc32(record.payload.data(), record.payload.size(), crc);
}

std::uint32_t AdvanceChainCrc(std::uint32_t chain, std::uint32_t frame_crc) {
  const std::uint8_t le[4] = {
      static_cast<std::uint8_t>(frame_crc & 0xFF),
      static_cast<std::uint8_t>((frame_crc >> 8) & 0xFF),
      static_cast<std::uint8_t>((frame_crc >> 16) & 0xFF),
      static_cast<std::uint8_t>((frame_crc >> 24) & 0xFF),
  };
  return Crc32(le, sizeof(le), chain);
}

std::string EncodeSubscribe(const SubscribeRequest& request) {
  std::string out;
  PutVarint64(&out, request.format_version);
  PutVarint64(&out, request.cursors.size());
  for (const ShardCursor& cursor : request.cursors) {
    PutVarint64(&out, cursor.next_record);
    PutFixed32(&out, cursor.chain_crc);
  }
  return out;
}

StatusOr<SubscribeRequest> DecodeSubscribe(const std::string& payload) {
  BinaryCursor cursor(payload);
  SubscribeRequest request;
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&request.format_version));
  if (request.format_version != 1) {
    return Status::InvalidArgument(
        "DecodeSubscribe: unsupported format version " +
        std::to_string(request.format_version));
  }
  std::uint64_t count = 0;
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&count));
  // Each cursor is >= 5 bytes: 1-byte-minimum varint + fixed32.
  TCDP_RETURN_IF_ERROR(
      CheckCount(count, cursor.remaining(), 5, "DecodeSubscribe"));
  request.cursors.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    ShardCursor shard;
    TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&shard.next_record));
    TCDP_RETURN_IF_ERROR(cursor.ReadFixed32(&shard.chain_crc));
    request.cursors.push_back(shard);
  }
  TCDP_RETURN_IF_ERROR(ExpectConsumed(cursor, "DecodeSubscribe"));
  return request;
}

std::string EncodeSubscribeOk(const SubscribeOk& ok) {
  std::string out;
  PutVarint64(&out, ok.num_shards);
  PutLengthPrefixed(&out, ok.manifest_text);
  return out;
}

StatusOr<SubscribeOk> DecodeSubscribeOk(const std::string& payload) {
  BinaryCursor cursor(payload);
  SubscribeOk ok;
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&ok.num_shards));
  if (ok.num_shards == 0) {
    return Status::InvalidArgument("DecodeSubscribeOk: zero shards");
  }
  TCDP_RETURN_IF_ERROR(cursor.ReadLengthPrefixed(&ok.manifest_text));
  if (ok.manifest_text.empty()) {
    return Status::InvalidArgument("DecodeSubscribeOk: empty manifest");
  }
  TCDP_RETURN_IF_ERROR(ExpectConsumed(cursor, "DecodeSubscribeOk"));
  return ok;
}

std::string EncodeLogBatch(const LogBatch& batch) {
  std::string out;
  PutVarint64(&out, batch.shard);
  PutVarint64(&out, batch.first_record);
  PutFixed32(&out, batch.prev_chain_crc);
  PutVarint64(&out, batch.records.size());
  for (const server::EventRecord& record : batch.records) {
    out.push_back(static_cast<char>(record.type));
    PutLengthPrefixed(&out, record.payload);
  }
  return out;
}

StatusOr<LogBatch> DecodeLogBatch(const std::string& payload) {
  BinaryCursor cursor(payload);
  LogBatch batch;
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&batch.shard));
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&batch.first_record));
  TCDP_RETURN_IF_ERROR(cursor.ReadFixed32(&batch.prev_chain_crc));
  std::uint64_t count = 0;
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&count));
  if (count == 0) {
    return Status::InvalidArgument("DecodeLogBatch: empty batch");
  }
  // Each record is >= 2 bytes: type byte + 1-byte-minimum length.
  TCDP_RETURN_IF_ERROR(
      CheckCount(count, cursor.remaining(), 2, "DecodeLogBatch"));
  batch.records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint8_t type_byte = 0;
    TCDP_RETURN_IF_ERROR(cursor.ReadByte(&type_byte));
    server::EventRecord record;
    record.type = static_cast<server::EventType>(type_byte);
    TCDP_RETURN_IF_ERROR(cursor.ReadLengthPrefixed(&record.payload));
    batch.records.push_back(std::move(record));
  }
  TCDP_RETURN_IF_ERROR(ExpectConsumed(cursor, "DecodeLogBatch"));
  return batch;
}

std::string EncodeAckHorizon(const AckHorizon& ack) {
  std::string out;
  PutVarint64(&out, ack.durable_records.size());
  for (const std::uint64_t durable : ack.durable_records) {
    PutVarint64(&out, durable);
  }
  PutVarint64(&out, ack.release_horizon);
  return out;
}

StatusOr<AckHorizon> DecodeAckHorizon(const std::string& payload) {
  BinaryCursor cursor(payload);
  AckHorizon ack;
  std::uint64_t count = 0;
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&count));
  if (count == 0) {
    return Status::InvalidArgument("DecodeAckHorizon: zero shards");
  }
  TCDP_RETURN_IF_ERROR(
      CheckCount(count, cursor.remaining(), 1, "DecodeAckHorizon"));
  ack.durable_records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t durable = 0;
    TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&durable));
    ack.durable_records.push_back(durable);
  }
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&ack.release_horizon));
  TCDP_RETURN_IF_ERROR(ExpectConsumed(cursor, "DecodeAckHorizon"));
  return ack;
}

}  // namespace replication
}  // namespace tcdp
