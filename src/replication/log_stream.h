#ifndef TCDP_REPLICATION_LOG_STREAM_H_
#define TCDP_REPLICATION_LOG_STREAM_H_

/// \file
/// LogStreamServer: the primary side of WAL-streaming replication.
///
/// The server is a pure *file tailer*: it watches the shard WALs of a
/// live (or even dead) `tcdp serve` log directory and streams every
/// committed record to subscribed followers over the TCDPNET1 framing
/// (kSubscribe / kSubscribeOk / kLogBatch / kAckHorizon — grammar in
/// docs/REPLICATION.md). It never touches the service itself, holds no
/// lock the ingest path can contend on, and cannot perturb the
/// primary's accounting state by construction — the fault-injection
/// tests (tests/replication_test.cc) prove the stronger claim that no
/// follower misbehavior changes a single byte of the primary's WALs.
///
/// Positions are (record index, chain CRC) pairs: the chain folds every
/// record's frame CRC in order (repl_messages.h), so a subscriber's
/// cursor asserts *content*, not just length. A cursor whose chain the
/// primary cannot reproduce is answered with a "diverged:" kError and
/// the connection is closed — a forked follower is refused, never
/// resynchronized silently.
///
/// Single-threaded poll loop like net::NetServer: run Serve() on a
/// dedicated thread, Stop() from anywhere (self-pipe). stats() is
/// thread-safe.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace tcdp {
namespace replication {

struct LogStreamOptions {
  /// The primary's log directory (MANIFEST + shard-<i>.wal files).
  std::string log_dir;
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port (see port()).
  std::uint16_t port = 0;
  int listen_backlog = 16;
  std::size_t max_followers = 16;
  /// Per-kLogBatch budget. Bytes are capped well under the frame limit
  /// so a batch plus its framing always fits kMaxFramePayload.
  std::size_t max_batch_records = 256;
  std::size_t max_batch_bytes = 256 * 1024;
  /// Per-follower write backlog bound; a follower at the bound is not
  /// sent further batches until it drains (backpressure, not OOM).
  std::size_t max_write_buffer = 4 * 1024 * 1024;
  /// Poll timeout: the latency floor for noticing WAL growth.
  int poll_interval_ms = 20;
};

/// One subscribed follower, as seen by the primary.
struct FollowerRow {
  bool subscribed = false;
  /// Sum over shards of records the follower has fdatasynced.
  std::uint64_t durable_records = 0;
  /// The release horizon those durable prefixes commit.
  std::uint64_t release_horizon = 0;
  /// Sum over shards of (primary records - follower durable records).
  std::uint64_t lag_records = 0;
};

struct LogStreamStats {
  std::size_t num_shards = 0;
  std::size_t followers = 0;
  /// Sum over shards of committed records visible to the tailer.
  std::uint64_t primary_records = 0;
  std::uint64_t subscribes = 0;
  std::uint64_t batches_sent = 0;
  std::uint64_t records_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t divergences = 0;
  /// Min over followers of release_horizon (0 with no followers).
  std::uint64_t min_acked_release_horizon = 0;
  /// Max over followers of lag_records (0 with no followers).
  std::uint64_t max_lag_records = 0;
  std::vector<FollowerRow> follower_rows;
};

class LogStreamServer {
 public:
  /// Validates the log directory (MANIFEST readable, every shard WAL
  /// openable) and binds the replication listener.
  static StatusOr<std::unique_ptr<LogStreamServer>> Listen(
      LogStreamOptions options);

  ~LogStreamServer();
  LogStreamServer(const LogStreamServer&) = delete;
  LogStreamServer& operator=(const LogStreamServer&) = delete;

  /// Runs the accept/tail/stream loop until Stop(). Call on a
  /// dedicated thread; returns only fatal listener errors.
  Status Serve();

  /// Thread-safe, idempotent, callable before Serve().
  void Stop();

  std::uint16_t port() const { return port_; }
  std::size_t num_shards() const { return num_shards_; }

  /// Thread-safe snapshot of streaming/ack state (refreshed every
  /// poll round by the serve loop).
  LogStreamStats stats() const;

 private:
  struct ShardTail;
  struct Follower;

  LogStreamServer() = default;

  void AcceptOne();
  /// Incremental WAL scan for one shard; extends the record index and
  /// chain. Detects rewrites (compaction) and corruption.
  void ScanShard(std::size_t shard);
  void ScanAllShards();
  /// Drops every follower with a kError explaining \p why.
  void DropAllFollowers(const Status& why);
  bool ReadFrom(Follower* follower);
  void ProcessFrames(Follower* follower);
  void HandleSubscribe(Follower* follower, const std::string& payload);
  void HandleAck(Follower* follower, const std::string& payload);
  /// Queues kLogBatch frames for every shard the follower is behind
  /// on, up to the write-buffer bound. Returns true if any were queued.
  bool PumpBatches(Follower* follower);
  bool WriteTo(Follower* follower);
  void RefreshStats();

  LogStreamOptions options_;
  std::size_t num_shards_ = 0;
  std::string manifest_text_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  bool stopping_ = false;
  bool served_ = false;

  std::vector<std::unique_ptr<ShardTail>> tails_;
  std::vector<std::unique_ptr<Follower>> followers_;

  // Loop-thread counters, published into stats_ under stats_mutex_.
  std::uint64_t subscribes_ = 0;
  std::uint64_t batches_sent_ = 0;
  std::uint64_t records_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t acks_received_ = 0;
  std::uint64_t divergences_ = 0;

  mutable std::mutex stats_mutex_;
  LogStreamStats stats_;
};

}  // namespace replication
}  // namespace tcdp

#endif  // TCDP_REPLICATION_LOG_STREAM_H_
