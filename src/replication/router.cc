#include "replication/router.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "net/messages.h"
#include "net/wire.h"
#include "server/records.h"

namespace tcdp {
namespace replication {
namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

StatusOr<std::unique_ptr<RouterTable>> RouterTable::Open(
    const std::string& journal_path, std::size_t virtual_nodes) {
  std::unique_ptr<RouterTable> table(new RouterTable(virtual_nodes));
  if (journal_path.empty()) return table;

  auto existing = server::ReadEventLog(journal_path);
  if (existing.ok()) {
    if (!existing->clean) {
      // A torn router journal recovers exactly like a torn shard WAL:
      // cut the tail, resume. The lost suffix was never acknowledged.
      TCDP_LOG(kWarning) << "router: journal torn tail ("
                         << existing->tail_error << "); truncating to "
                         << existing->valid_bytes << " bytes";
      TCDP_RETURN_IF_ERROR(
          server::TruncateFile(journal_path, existing->valid_bytes));
    }
    for (const server::EventRecord& record : existing->records) {
      TCDP_RETURN_IF_ERROR(table->Apply(record));
    }
    table->journal_records_ = existing->records.size();
    TCDP_ASSIGN_OR_RETURN(
        table->journal_,
        server::EventLogWriter::OpenForAppend(journal_path,
                                              existing->valid_bytes,
                                              existing->records.size()));
    return table;
  }
  if (existing.status().code() != StatusCode::kNotFound) {
    return existing.status();
  }
  TCDP_ASSIGN_OR_RETURN(table->journal_,
                        server::EventLogWriter::Create(journal_path));
  TCDP_RETURN_IF_ERROR(table->journal_.Sync());
  return table;
}

Status RouterTable::Apply(const server::EventRecord& record) {
  switch (record.type) {
    case server::EventType::kRouterEndpoint: {
      TCDP_ASSIGN_OR_RETURN(const server::RouterEndpointRecord decoded,
                            server::DecodeRouterEndpoint(record.payload));
      return decoded.removed ? ring_.RemoveEndpoint(decoded.endpoint)
                             : ring_.AddEndpoint(decoded.endpoint);
    }
    case server::EventType::kMigrateUser: {
      TCDP_ASSIGN_OR_RETURN(const server::MigrateUserRecord decoded,
                            server::DecodeMigrateUser(record.payload));
      if (decoded.endpoint.empty()) {
        pins_.erase(decoded.name);
      } else {
        pins_[decoded.name] = decoded.endpoint;
      }
      return Status::OK();
    }
    default:
      return Status::InvalidArgument(
          "router journal: unexpected record type " +
          std::to_string(static_cast<unsigned>(record.type)));
  }
}

Status RouterTable::Journal(server::EventType type,
                            const std::string& payload) {
  if (!journal_.is_open()) return Status::OK();  // ephemeral
  TCDP_RETURN_IF_ERROR(journal_.Append(type, payload));
  TCDP_RETURN_IF_ERROR(journal_.Sync());
  ++journal_records_;
  return Status::OK();
}

Status RouterTable::AddEndpoint(const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.HasEndpoint(endpoint)) {
    return Status::AlreadyExists("router: endpoint '" + endpoint +
                                 "' already present");
  }
  server::RouterEndpointRecord record;
  record.endpoint = endpoint;
  TCDP_RETURN_IF_ERROR(Journal(server::EventType::kRouterEndpoint,
                               server::EncodeRouterEndpoint(record)));
  return ring_.AddEndpoint(endpoint);
}

Status RouterTable::RemoveEndpoint(const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!ring_.HasEndpoint(endpoint)) {
    return Status::NotFound("router: endpoint '" + endpoint +
                            "' not present");
  }
  server::RouterEndpointRecord record;
  record.endpoint = endpoint;
  record.removed = true;
  TCDP_RETURN_IF_ERROR(Journal(server::EventType::kRouterEndpoint,
                               server::EncodeRouterEndpoint(record)));
  return ring_.RemoveEndpoint(endpoint);
}

Status RouterTable::MigrateUser(const std::string& name,
                                const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (name.empty()) {
    return Status::InvalidArgument("router: empty user name");
  }
  if (endpoint.empty() && pins_.count(name) == 0) {
    return Status::NotFound("router: user '" + name + "' has no pin");
  }
  if (!endpoint.empty() && !ring_.HasEndpoint(endpoint)) {
    return Status::NotFound("router: endpoint '" + endpoint +
                            "' not on the ring");
  }
  server::MigrateUserRecord record;
  record.name = name;
  record.endpoint = endpoint;
  TCDP_RETURN_IF_ERROR(Journal(server::EventType::kMigrateUser,
                               server::EncodeMigrateUser(record)));
  if (endpoint.empty()) {
    pins_.erase(name);
  } else {
    pins_[name] = endpoint;
  }
  return Status::OK();
}

StatusOr<std::string> RouterTable::Lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto pin = pins_.find(name);
  if (pin != pins_.end()) return pin->second;
  return ring_.Lookup(name);
}

std::vector<std::string> RouterTable::endpoints() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.endpoints();
}

RouterTableStats RouterTable::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RouterTableStats stats;
  stats.endpoints = ring_.size();
  stats.pins = pins_.size();
  stats.journal_records = journal_records_;
  return stats;
}

/// One router client connection (request/response, like NetServer).
struct RouterServer::Connection {
  int fd = -1;
  net::FrameDecoder decoder;
  std::string out;
  std::size_t out_offset = 0;
  bool close_after_flush = false;

  ~Connection() { CloseFd(&fd); }

  std::size_t pending_out() const { return out.size() - out_offset; }
};

RouterServer::~RouterServer() {
  CloseFd(&listen_fd_);
  CloseFd(&wake_read_fd_);
  CloseFd(&wake_write_fd_);
}

StatusOr<std::unique_ptr<RouterServer>> RouterServer::Listen(
    RouterTable* table, RouterServerOptions options) {
  if (table == nullptr) {
    return Status::InvalidArgument("RouterServer::Listen: null table");
  }
  std::unique_ptr<RouterServer> server(new RouterServer());
  server->table_ = table;
  server->options_ = std::move(options);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->options_.port);
  if (::inet_pton(AF_INET, server->options_.host.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("RouterServer: bad IPv4 host '" +
                                   server->options_.host + "'");
  }
  server->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (server->listen_fd_ < 0) return ErrnoStatus("socket");
  int one = 1;
  (void)::setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
  if (::bind(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return ErrnoStatus("bind " + server->options_.host + ":" +
                       std::to_string(server->options_.port));
  }
  if (::listen(server->listen_fd_, server->options_.listen_backlog) != 0) {
    return ErrnoStatus("listen");
  }
  SetNonBlocking(server->listen_fd_);
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(server->listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return ErrnoStatus("getsockname");
  }
  server->port_ = ntohs(bound.sin_port);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return ErrnoStatus("pipe");
  server->wake_read_fd_ = pipe_fds[0];
  server->wake_write_fd_ = pipe_fds[1];
  SetNonBlocking(server->wake_read_fd_);
  return server;
}

void RouterServer::Stop() {
  if (wake_write_fd_ >= 0) {
    const char byte = 1;
    ssize_t ignored = ::write(wake_write_fd_, &byte, 1);
    (void)ignored;
  }
}

Status RouterServer::Serve() {
  if (served_) {
    return Status::FailedPrecondition("RouterServer::Serve already ran");
  }
  served_ = true;
  std::vector<pollfd> fds;
  std::vector<Connection*> polled;
  while (!stopping_) {
    fds.clear();
    polled.clear();
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    fds.push_back(pollfd{wake_read_fd_, POLLIN, 0});
    for (auto& conn : connections_) {
      short events = 0;
      if (!conn->close_after_flush) events |= POLLIN;
      if (conn->pending_out() > 0) events |= POLLOUT;
      fds.push_back(pollfd{conn->fd, events, 0});
      polled.push_back(conn.get());
    }
    const int ready = ::poll(fds.data(), fds.size(), 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll");
    }
    if (fds[1].revents & POLLIN) {
      char drain[64];
      while (::read(wake_read_fd_, drain, sizeof(drain)) > 0) {
      }
      stopping_ = true;
      break;
    }
    if (fds[0].revents & POLLIN) {
      sockaddr_in peer{};
      socklen_t peer_len = sizeof(peer);
      const int fd = ::accept(
          listen_fd_, reinterpret_cast<sockaddr*>(&peer), &peer_len);
      if (fd >= 0) {
        int one = 1;
        (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        SetNonBlocking(fd);
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        net::AppendPreamble(&conn->out);
        connections_.push_back(std::move(conn));
      }
    }
    for (std::size_t i = 0; i < polled.size(); ++i) {
      Connection* conn = polled[i];
      const short revents = fds[i + 2].revents;
      bool alive = true;
      bool peer_closed = false;
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
          !conn->close_after_flush) {
        char buffer[16 * 1024];
        const ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
        if (n < 0) {
          alive =
              errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK;
        } else if (n == 0) {
          peer_closed = true;
        } else if (!conn->decoder.Feed(buffer, static_cast<std::size_t>(n))
                        .ok()) {
          alive = false;  // framing violation: drop
        }
      }
      while (alive && conn->decoder.has_frame() &&
             !conn->close_after_flush) {
        const net::Frame frame = conn->decoder.PopFrame();
        switch (frame.type) {
          case net::MsgType::kRouteLookup: {
            auto name = net::DecodeName(frame.payload);
            if (!name.ok()) {
              net::AppendFrame(&conn->out, net::MsgType::kError,
                               net::EncodeError(name.status()));
              conn->close_after_flush = true;
              break;
            }
            auto endpoint = table_->Lookup(*name);
            if (!endpoint.ok()) {
              net::AppendFrame(&conn->out, net::MsgType::kError,
                               net::EncodeError(endpoint.status()));
              break;  // application error: stay open
            }
            net::AppendFrame(&conn->out, net::MsgType::kRouteReport,
                             net::EncodeName(*endpoint));
            break;
          }
          case net::MsgType::kShutdown:
            net::AppendFrame(&conn->out, net::MsgType::kOk, std::string());
            stopping_ = true;
            break;
          default:
            net::AppendFrame(
                &conn->out, net::MsgType::kError,
                net::EncodeError(Status::InvalidArgument(
                    "router: unexpected frame type " +
                    std::to_string(static_cast<unsigned>(frame.type)))));
            conn->close_after_flush = true;
            break;
        }
      }
      while (alive && conn->pending_out() > 0) {
        const ssize_t n =
            ::send(conn->fd, conn->out.data() + conn->out_offset,
                   conn->pending_out(), MSG_NOSIGNAL);
        if (n < 0) {
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          alive = false;
          break;
        }
        conn->out_offset += static_cast<std::size_t>(n);
      }
      if (conn->out_offset == conn->out.size()) {
        conn->out.clear();
        conn->out_offset = 0;
      }
      if (alive && (peer_closed || conn->close_after_flush) &&
          conn->pending_out() == 0) {
        alive = false;
      }
      if (!alive) CloseFd(&conn->fd);
    }
    connections_.erase(
        std::remove_if(connections_.begin(), connections_.end(),
                       [](const std::unique_ptr<Connection>& conn) {
                         return conn->fd < 0;
                       }),
        connections_.end());
  }
  // Flush shutdown acks best-effort before closing.
  for (auto& conn : connections_) {
    while (conn->pending_out() > 0) {
      const ssize_t n =
          ::send(conn->fd, conn->out.data() + conn->out_offset,
                 conn->pending_out(), MSG_NOSIGNAL);
      if (n <= 0) break;
      conn->out_offset += static_cast<std::size_t>(n);
    }
  }
  connections_.clear();
  CloseFd(&listen_fd_);
  return Status::OK();
}

}  // namespace replication
}  // namespace tcdp
