#include "replication/follower.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "net/messages.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"
#include "replication/repl_messages.h"
#include "server/event_log.h"

namespace tcdp {
namespace replication {
namespace {

constexpr char kManifestHeader[] = "tcdp-shard-manifest-v1";

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

/// Follower-side instruments.
struct FollowerObs {
  obs::Gauge* diverged;
  obs::Counter* batches;
  obs::Counter* records;
  obs::Counter* acks;
  obs::Counter* reconnects;
  static const FollowerObs& Get() {
    static const FollowerObs instruments = [] {
      obs::Registry& registry = obs::Registry::Default();
      FollowerObs o;
      o.diverged = registry.GetGauge("tcdp_repl_diverged");
      o.batches =
          registry.GetCounter("tcdp_repl_follower_batches_total");
      o.records =
          registry.GetCounter("tcdp_repl_follower_records_total");
      o.acks = registry.GetCounter("tcdp_repl_follower_acks_total");
      o.reconnects =
          registry.GetCounter("tcdp_repl_follower_reconnects_total");
      return o;
    }();
    return instruments;
  }
};

std::string ShardWalPath(const std::string& dir, std::size_t shard) {
  return dir + "/shard-" + std::to_string(shard) + ".wal";
}

StatusOr<std::size_t> ParseManifestShards(const std::string& text) {
  std::istringstream in(text);
  std::string header;
  if (!std::getline(in, header) || header != kManifestHeader) {
    return Status::InvalidArgument("bad manifest header");
  }
  std::string key;
  while (in >> key) {
    if (key == "shards") {
      std::size_t shards = 0;
      if (!(in >> shards) || shards == 0) {
        return Status::InvalidArgument("malformed manifest 'shards' value");
      }
      return shards;
    }
    std::string skipped;
    if (!(in >> skipped)) break;
  }
  return Status::InvalidArgument("manifest carries no 'shards' key");
}

/// Is this kError a divergence verdict (terminal) rather than a
/// transient transport/availability problem? The primary prefixes
/// every fork-refusal with "diverged:" (docs/REPLICATION.md).
bool IsDivergenceError(const Status& status) {
  return status.message().find("diverged:") != std::string::npos;
}

}  // namespace

/// One replicated shard WAL: writer + cursor + release count.
struct Follower::ShardState {
  server::EventLogWriter writer;
  std::uint64_t records = 0;
  std::uint32_t chain = kChainSeed;
  std::uint64_t releases = 0;
  bool dirty = false;  ///< appended since the last Sync
};

Follower::~Follower() { Stop(); }

StatusOr<std::unique_ptr<Follower>> Follower::Open(FollowerOptions options) {
  if (options.log_dir.empty()) {
    return Status::InvalidArgument("Follower: empty log_dir");
  }
  std::unique_ptr<Follower> follower(new Follower());
  follower->options_ = std::move(options);
  TCDP_RETURN_IF_ERROR(follower->LoadLocalState());
  return follower;
}

Status Follower::LoadLocalState() {
  std::ifstream manifest(options_.log_dir + "/MANIFEST");
  if (!manifest) {
    // Fresh replica: the shard count and MANIFEST text arrive in
    // kSubscribeOk. Make sure the directory exists.
    if (::mkdir(options_.log_dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoStatus("Follower: mkdir " + options_.log_dir);
    }
    bootstrap_ = true;
    return Status::OK();
  }
  std::string manifest_text((std::istreambuf_iterator<char>(manifest)),
                            std::istreambuf_iterator<char>());
  TCDP_ASSIGN_OR_RETURN(const std::size_t num_shards,
                        ParseManifestShards(manifest_text));
  for (std::size_t i = 0; i < num_shards; ++i) {
    const std::string path = ShardWalPath(options_.log_dir, i);
    TCDP_ASSIGN_OR_RETURN(server::ReadLogResult log,
                          server::ReadEventLog(path));
    if (!log.clean) {
      // A torn tail is what a follower crash looks like: cut it and
      // resume — exactly the primary's own recovery move.
      TCDP_LOG(kWarning) << "repl follower: shard " << i
                         << " torn tail (" << log.tail_error
                         << "); truncating to " << log.valid_bytes
                         << " bytes";
      TCDP_RETURN_IF_ERROR(server::TruncateFile(path, log.valid_bytes));
    }
    auto shard = std::make_unique<ShardState>();
    for (const server::EventRecord& record : log.records) {
      if (record.type == server::EventType::kCompaction) {
        return Status::FailedPrecondition(
            "Follower: " + path +
            " contains a compaction record — not a streamed replica "
            "(replicas are never compacted)");
      }
      shard->chain =
          AdvanceChainCrc(shard->chain, RecordFrameCrc(record));
      if (record.type == server::EventType::kRelease) ++shard->releases;
      ++shard->records;
    }
    TCDP_ASSIGN_OR_RETURN(
        shard->writer,
        server::EventLogWriter::OpenForAppend(path, log.valid_bytes,
                                              shard->records));
    shards_.push_back(std::move(shard));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    status_.num_shards = num_shards;
    status_.durable_records.assign(num_shards, 0);
    std::uint64_t horizon = 0;
    for (std::size_t i = 0; i < num_shards; ++i) {
      status_.durable_records[i] = shards_[i]->records;
      horizon = i == 0 ? shards_[i]->releases
                       : std::min(horizon, shards_[i]->releases);
    }
    status_.release_horizon = horizon;
  }
  return Status::OK();
}

Status Follower::BootstrapFromManifest(const std::string& manifest_text,
                                       std::size_t num_shards) {
  TCDP_ASSIGN_OR_RETURN(const std::size_t manifest_shards,
                        ParseManifestShards(manifest_text));
  if (manifest_shards != num_shards) {
    return Status::InvalidArgument(
        "Follower: kSubscribeOk shard count " + std::to_string(num_shards) +
        " disagrees with its own manifest (" +
        std::to_string(manifest_shards) + ")");
  }
  // The MANIFEST lands verbatim (tmp + rename), so the replica
  // directory is byte-for-byte the primary's.
  const std::string path = options_.log_dir + "/MANIFEST";
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary);
    if (!out) return Status::Internal("cannot write " + tmp);
    out << manifest_text;
    if (!out) return Status::Internal("cannot write " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("cannot rename " + tmp + " to " + path);
  }
  for (std::size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<ShardState>();
    TCDP_ASSIGN_OR_RETURN(
        shard->writer,
        server::EventLogWriter::Create(ShardWalPath(options_.log_dir, i)));
    // Put the magic on disk now: a replica directory is well-formed
    // from the instant it exists, even for shards that have not
    // received a record yet (matters for promotion-at-every-prefix).
    TCDP_RETURN_IF_ERROR(shard->writer.Sync());
    shards_.push_back(std::move(shard));
  }
  bootstrap_ = false;
  std::lock_guard<std::mutex> lock(mutex_);
  status_.num_shards = num_shards;
  status_.durable_records.assign(num_shards, 0);
  return Status::OK();
}

Status Follower::Start() {
  if (started_) {
    return Status::FailedPrecondition("Follower::Start already ran");
  }
  started_ = true;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    status_.running = true;
  }
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void Follower::Stop() {
  stop_.store(true);
  const int fd = fd_.load();
  if (fd >= 0) (void)::shutdown(fd, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  for (auto& shard : shards_) {
    if (shard->writer.is_open()) (void)shard->writer.Close();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  status_.running = false;
  status_.connected = false;
  status_.subscribed = false;
}

StatusOr<std::unique_ptr<server::ShardedReleaseService>>
Follower::Promote() {
  Stop();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (status_.diverged) {
      return Status::FailedPrecondition(
          "Follower::Promote: replica diverged from the primary; its "
          "state is not a prefix of any primary history");
    }
  }
  return server::ShardedReleaseService::Recover(options_.log_dir);
}

FollowerStatus Follower::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return status_;
}

void Follower::SetError(const Status& error) {
  std::lock_guard<std::mutex> lock(mutex_);
  status_.last_error = error;
}

void Follower::MarkDiverged(const Status& why) {
  TCDP_LOG(kError) << "repl follower: DIVERGED from primary "
                   << options_.primary_host << ":"
                   << options_.primary_port << " — " << why.message()
                   << " (refusing to apply further records; manual resync "
                      "required)";
  if (obs::MetricsEnabled()) FollowerObs::Get().diverged->Set(1);
  std::lock_guard<std::mutex> lock(mutex_);
  status_.diverged = true;
  status_.last_error = why;
}

Status Follower::SendAll(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Status Follower::HandleBatch(const std::string& payload, bool* applied) {
  TCDP_ASSIGN_OR_RETURN(LogBatch batch, DecodeLogBatch(payload));
  if (batch.shard >= shards_.size()) {
    return Status::InvalidArgument(
        "kLogBatch for shard " + std::to_string(batch.shard) + " of " +
        std::to_string(shards_.size()));
  }
  ShardState* shard = shards_[batch.shard].get();
  if (batch.first_record != shard->records) {
    // Out-of-sequence within a connection: a primary bug or a stale
    // stream. Transport-level — reconnect and resubscribe.
    return Status::Internal(
        "kLogBatch starts at record " + std::to_string(batch.first_record) +
        ", expected " + std::to_string(shard->records));
  }
  if (batch.prev_chain_crc != shard->chain) {
    const Status why = Status::FailedPrecondition(
        "diverged: shard " + std::to_string(batch.shard) +
        " local chain CRC does not match the primary's stream at record " +
        std::to_string(batch.first_record));
    MarkDiverged(why);
    return why;
  }
  for (const server::EventRecord& record : batch.records) {
    // Append through the standard writer: the framing (and therefore
    // the file bytes) is exactly what the primary wrote.
    TCDP_RETURN_IF_ERROR(shard->writer.Append(record.type, record.payload));
    shard->chain = AdvanceChainCrc(shard->chain, RecordFrameCrc(record));
    if (record.type == server::EventType::kRelease) ++shard->releases;
    ++shard->records;
  }
  shard->dirty = true;
  *applied = true;
  if (obs::MetricsEnabled()) {
    FollowerObs::Get().batches->Increment();
    FollowerObs::Get().records->Add(batch.records.size());
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++status_.batches_applied;
  status_.records_applied += batch.records.size();
  return Status::OK();
}

Status Follower::SyncAndAck(int fd) {
  AckHorizon ack;
  ack.durable_records.reserve(shards_.size());
  std::uint64_t horizon = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ShardState* shard = shards_[i].get();
    if (shard->dirty) {
      TCDP_RETURN_IF_ERROR(shard->writer.Sync());
      shard->dirty = false;
    }
    ack.durable_records.push_back(shard->records);
    horizon = i == 0 ? shard->releases : std::min(horizon, shard->releases);
  }
  ack.release_horizon = horizon;
  std::string bytes;
  net::AppendFrame(&bytes, net::MsgType::kAckHorizon,
                   EncodeAckHorizon(ack));
  TCDP_RETURN_IF_ERROR(SendAll(fd, bytes));
  if (obs::MetricsEnabled()) FollowerObs::Get().acks->Increment();
  std::lock_guard<std::mutex> lock(mutex_);
  status_.durable_records = ack.durable_records;
  status_.release_horizon = horizon;
  ++status_.acks_sent;
  return Status::OK();
}

Status Follower::RunOnce() {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.primary_port);
  if (::inet_pton(AF_INET, options_.primary_host.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("Follower: bad IPv4 host '" +
                                   options_.primary_host + "'");
  }
  int fd = -1;
  Status connected = Status::Internal("no connect attempts made");
  const int attempts =
      options_.connect_attempts > 0 ? options_.connect_attempts : 1;
  for (int attempt = 0; attempt < attempts && !stop_.load(); ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.connect_retry_delay_ms));
    }
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return ErrnoStatus("socket");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      connected = Status::OK();
      break;
    }
    connected = ErrnoStatus("connect " + options_.primary_host + ":" +
                            std::to_string(options_.primary_port));
    ::close(fd);
    fd = -1;
  }
  if (!connected.ok()) return connected;
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // A bounded recv timeout keeps the loop responsive to Stop() even if
  // the shutdown() race loses.
  timeval timeout{0, 100 * 1000};
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                     sizeof(timeout));
  fd_.store(fd);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    status_.connected = true;
  }
  // Socket closed (and fd_ cleared) on every exit path below.
  auto close_fd = [this, fd] {
    fd_.store(-1);
    ::close(fd);
    std::lock_guard<std::mutex> lock(mutex_);
    status_.connected = false;
    status_.subscribed = false;
  };

  std::string hello;
  net::AppendPreamble(&hello);
  SubscribeRequest subscribe;
  if (!bootstrap_) {
    subscribe.cursors.reserve(shards_.size());
    for (const auto& shard : shards_) {
      ShardCursor cursor;
      cursor.next_record = shard->records;
      cursor.chain_crc = shard->chain;
      subscribe.cursors.push_back(cursor);
    }
  }
  net::AppendFrame(&hello, net::MsgType::kSubscribe,
                   EncodeSubscribe(subscribe));
  {
    const Status sent = SendAll(fd, hello);
    if (!sent.ok()) {
      close_fd();
      return sent;
    }
  }

  net::FrameDecoder decoder;
  bool have_subscribe_ok = false;
  bool batch_since_ack = false;
  Status result = Status::OK();
  while (!stop_.load()) {
    // Drain queued frames first; ack once the decoder runs dry so one
    // fdatasync covers every batch the read pulled in.
    bool progressed = false;
    while (decoder.has_frame()) {
      const net::Frame frame = decoder.PopFrame();
      progressed = true;
      if (frame.type == net::MsgType::kError) {
        Status error = Status::Internal("primary sent kError");
        (void)net::DecodeError(frame.payload, &error);
        if (IsDivergenceError(error)) {
          MarkDiverged(error);
        }
        close_fd();
        return error;
      }
      if (!have_subscribe_ok) {
        if (frame.type != net::MsgType::kSubscribeOk) {
          close_fd();
          return Status::Internal(
              "expected kSubscribeOk, got type " +
              std::to_string(static_cast<unsigned>(frame.type)));
        }
        auto ok = DecodeSubscribeOk(frame.payload);
        if (!ok.ok()) {
          close_fd();
          return ok.status();
        }
        if (bootstrap_) {
          const Status bootstrapped =
              BootstrapFromManifest(ok->manifest_text, ok->num_shards);
          if (!bootstrapped.ok()) {
            close_fd();
            return bootstrapped;
          }
        } else if (ok->num_shards != shards_.size()) {
          close_fd();
          return Status::FailedPrecondition(
              "primary has " + std::to_string(ok->num_shards) +
              " shards, replica has " + std::to_string(shards_.size()));
        }
        have_subscribe_ok = true;
        std::lock_guard<std::mutex> lock(mutex_);
        status_.subscribed = true;
        continue;
      }
      if (frame.type != net::MsgType::kLogBatch) {
        close_fd();
        return Status::Internal(
            "unexpected frame type " +
            std::to_string(static_cast<unsigned>(frame.type)) +
            " on a subscribed stream");
      }
      bool applied = false;
      const Status handled = HandleBatch(frame.payload, &applied);
      if (!handled.ok()) {
        close_fd();
        return handled;
      }
      if (applied) batch_since_ack = true;
    }
    if (batch_since_ack && !decoder.has_frame()) {
      const Status acked = SyncAndAck(fd);
      if (!acked.ok()) {
        close_fd();
        return acked;
      }
      batch_since_ack = false;
    }
    (void)progressed;

    char buffer[64 * 1024];
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;  // timeout tick: re-check stop_
      }
      result = ErrnoStatus("recv");
      break;
    }
    if (n == 0) {
      result = Status::Internal("primary closed the replication stream");
      break;
    }
    const Status fed = decoder.Feed(buffer, static_cast<std::size_t>(n));
    if (!fed.ok()) {
      result = fed;
      break;
    }
  }
  close_fd();
  if (stop_.load()) return Status::OK();
  return result;
}

void Follower::Run() {
  while (!stop_.load()) {
    const Status session = RunOnce();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (status_.diverged) break;  // terminal; never reconnect
      if (!session.ok()) status_.last_error = session;
    }
    if (stop_.load() || !options_.reconnect) {
      if (!session.ok()) {
        TCDP_LOG(kWarning) << "repl follower: session ended: "
                           << session.message();
      }
      break;
    }
    if (!session.ok()) {
      TCDP_LOG(kInfo) << "repl follower: reconnecting after: "
                      << session.message();
    }
    if (obs::MetricsEnabled()) FollowerObs::Get().reconnects->Increment();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++status_.reconnects;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.reconnect_delay_ms));
  }
  // Whether the loop ended by Stop(), divergence, or a dead session
  // with reconnects off, the thread is done: let pollers (the CLI's
  // `tcdp follow` wait loop) observe it.
  std::lock_guard<std::mutex> lock(mutex_);
  status_.running = false;
  status_.connected = false;
  status_.subscribed = false;
}

}  // namespace replication
}  // namespace tcdp
