#include "replication/ring.h"

namespace tcdp {
namespace replication {

std::uint64_t Fnv1a64(const std::string& text) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

/// MurmurHash3's 64-bit finalizer. FNV-1a alone has weak avalanche on
/// near-identical short strings — an endpoint's 64 "ep#i" points land
/// clustered on the ring and one endpoint captures almost every user.
/// The finalizer spreads them; measured in tests/router_test.cc.
std::uint64_t Mix64(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

std::uint64_t VirtualPoint(const std::string& endpoint, std::size_t index) {
  return Mix64(Fnv1a64(endpoint + "#" + std::to_string(index)));
}

}  // namespace

Status ConsistentHashRing::AddEndpoint(const std::string& endpoint) {
  if (endpoint.empty()) {
    return Status::InvalidArgument("ring: empty endpoint");
  }
  if (!endpoints_.insert(endpoint).second) {
    return Status::AlreadyExists("ring: endpoint '" + endpoint +
                                 "' already present");
  }
  for (std::size_t i = 0; i < virtual_nodes_; ++i) {
    points_[VirtualPoint(endpoint, i)] = endpoint;
  }
  return Status::OK();
}

Status ConsistentHashRing::RemoveEndpoint(const std::string& endpoint) {
  if (endpoints_.erase(endpoint) == 0) {
    return Status::NotFound("ring: endpoint '" + endpoint +
                            "' not present");
  }
  for (std::size_t i = 0; i < virtual_nodes_; ++i) {
    auto it = points_.find(VirtualPoint(endpoint, i));
    // A collision may have been overwritten by another endpoint's
    // point; erase only points we still own.
    if (it != points_.end() && it->second == endpoint) points_.erase(it);
  }
  return Status::OK();
}

StatusOr<std::string> ConsistentHashRing::Lookup(
    const std::string& name) const {
  if (points_.empty()) {
    return Status::FailedPrecondition("ring: no endpoints");
  }
  auto it = points_.lower_bound(Mix64(Fnv1a64(name)));
  if (it == points_.end()) it = points_.begin();  // wrap
  return it->second;
}

}  // namespace replication
}  // namespace tcdp
