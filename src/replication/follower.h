#ifndef TCDP_REPLICATION_FOLLOWER_H_
#define TCDP_REPLICATION_FOLLOWER_H_

/// \file
/// Follower: the replica side of WAL-streaming replication.
///
/// A follower maintains a *byte-identical* copy of a primary's log
/// directory: it subscribes to the primary's LogStreamServer with its
/// per-shard (record, chain CRC) cursors, appends every kLogBatch
/// record through the same EventLogWriter framing the primary used
/// (the re-framing is deterministic, so the copies are bitwise equal),
/// fdatasyncs, and acks its durable horizon. Promotion is crash
/// recovery: ShardedReleaseService::Recover over the replica directory
/// — the single snapshot-restore + replay path — which makes the
/// promoted service's state bitwise identical to what the primary
/// would recover to at the acked horizon (property-tested in
/// tests/failover_test.cc).
///
/// Divergence is terminal by design: a chain-CRC mismatch between the
/// local log and the primary's stream means the two histories forked
/// (e.g. the primary lost an acked tail and wrote different records
/// over it). The follower then refuses to apply anything further,
/// latches `diverged`, publishes the tcdp_repl_diverged gauge, and
/// logs loudly — it never truncates its own log to match, and never
/// silently forks state (tests/divergence_test.cc). Transport
/// failures, by contrast, just reconnect and resubscribe.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "server/sharded_service.h"

namespace tcdp {
namespace replication {

struct FollowerOptions {
  std::string primary_host = "127.0.0.1";
  std::uint16_t primary_port = 0;
  /// Replica log directory. Empty or MANIFEST-less bootstraps from the
  /// primary (shard count + MANIFEST arrive in kSubscribeOk); an
  /// existing replica resumes from its local cursors.
  std::string log_dir;
  int connect_attempts = 40;
  int connect_retry_delay_ms = 50;
  /// Reconnect + resubscribe after transport failures. Divergence
  /// never reconnects regardless.
  bool reconnect = true;
  int reconnect_delay_ms = 50;
};

struct FollowerStatus {
  bool running = false;
  bool connected = false;
  bool subscribed = false;
  /// Terminal: local history forked from the primary's.
  bool diverged = false;
  Status last_error = Status::OK();
  std::size_t num_shards = 0;
  /// Per-shard records appended + fdatasynced (== the acked cursor).
  std::vector<std::uint64_t> durable_records;
  /// Release horizon those prefixes commit (min over shards).
  std::uint64_t release_horizon = 0;
  std::uint64_t batches_applied = 0;
  std::uint64_t records_applied = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t reconnects = 0;
};

class Follower {
 public:
  /// Validates (and for an existing replica, scans + torn-tail-truncates)
  /// the local directory. Does not connect.
  static StatusOr<std::unique_ptr<Follower>> Open(FollowerOptions options);

  ~Follower();
  Follower(const Follower&) = delete;
  Follower& operator=(const Follower&) = delete;

  /// Spawns the streaming thread (connect, subscribe, apply, ack).
  Status Start();

  /// Stops the streaming thread and closes the WAL writers. Idempotent.
  void Stop();

  /// Stop + ShardedReleaseService::Recover over the replica directory:
  /// the follower becomes a primary through the crash-recovery path.
  /// The Follower holds no state afterwards (one-shot).
  StatusOr<std::unique_ptr<server::ShardedReleaseService>> Promote();

  FollowerStatus status() const;

 private:
  struct ShardState;

  Follower() = default;

  Status RunOnce();  ///< one connect/subscribe/stream session
  void Run();        ///< session loop with reconnect policy
  Status LoadLocalState();
  Status BootstrapFromManifest(const std::string& manifest_text,
                               std::size_t num_shards);
  Status HandleBatch(const std::string& payload, bool* applied);
  Status SyncAndAck(int fd);
  void SetError(const Status& error);
  void MarkDiverged(const Status& why);
  Status SendAll(int fd, const std::string& bytes);

  FollowerOptions options_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  bool bootstrap_ = false;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<int> fd_{-1};
  bool started_ = false;

  mutable std::mutex mutex_;
  FollowerStatus status_;
};

}  // namespace replication
}  // namespace tcdp

#endif  // TCDP_REPLICATION_FOLLOWER_H_
