#ifndef TCDP_REPLICATION_REPL_MESSAGES_H_
#define TCDP_REPLICATION_REPL_MESSAGES_H_

/// \file
/// Typed payload codecs for the replication message family
/// (net/wire.h kSubscribe / kSubscribeOk / kLogBatch / kAckHorizon;
/// stream grammar in docs/REPLICATION.md).
///
/// The unit of replication is the shard WAL's *physical record*: a
/// follower names its position per shard as (next_record, chain_crc),
/// where the chain CRC is a CRC-32 folded over every preceding
/// record's frame CRC in order. Two logs with the same (count, chain)
/// are byte-identical with WAL-CRC confidence — a cursor is therefore
/// a claim about content, not just length, and a primary can refuse a
/// follower whose history diverged (docs/REPLICATION.md) instead of
/// silently forking state.
///
/// Every decoder is total: truncated/corrupt payloads come back as
/// Status, and decoded counts are validated against the payload size
/// before reserving.

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/event_log.h"

namespace tcdp {
namespace replication {

/// One shard's replication position.
struct ShardCursor {
  /// Physical WAL records already held (manifest included).
  std::uint64_t next_record = 0;
  /// Chain CRC through those records (kChainSeed for an empty log).
  std::uint32_t chain_crc = 0;
};

/// Chain seed for an empty log prefix.
inline constexpr std::uint32_t kChainSeed = 0;

/// The frame CRC of \p record — the exact value the WAL stores in the
/// record's [type|len|crc] header (CRC over type byte then payload).
std::uint32_t RecordFrameCrc(const server::EventRecord& record);

/// Folds one record's frame CRC into \p chain (little-endian bytes,
/// same polynomial): the incremental step of the cursor chain.
std::uint32_t AdvanceChainCrc(std::uint32_t chain, std::uint32_t frame_crc);

/// kSubscribe request: where the follower's logs end. An empty cursor
/// list bootstraps a fresh follower (the primary answers with its
/// shard count and manifest; streaming starts at record 0 everywhere).
struct SubscribeRequest {
  std::uint64_t format_version = 1;
  std::vector<ShardCursor> cursors;
};

/// kSubscribeOk response: the primary's shape. \p manifest_text is the
/// directory MANIFEST verbatim, so a bootstrapping follower lays down
/// a byte-identical copy before the first batch arrives.
struct SubscribeOk {
  std::uint64_t num_shards = 0;
  std::string manifest_text;
};

/// kLogBatch push (primary -> follower): a run of consecutive physical
/// records of one shard. \p prev_chain_crc is the chain through
/// \p first_record — the follower verifies it against its own chain
/// before appending, so a divergent stream is refused, never applied.
struct LogBatch {
  std::uint64_t shard = 0;
  std::uint64_t first_record = 0;
  std::uint32_t prev_chain_crc = kChainSeed;
  std::vector<server::EventRecord> records;
};

/// kAckHorizon push (follower -> primary): what the follower has made
/// durable (fdatasynced), per shard, plus the release horizon those
/// prefixes commit (min over shards of durable kRelease records) —
/// the value `tcdp serve` exposes as the acked horizon.
struct AckHorizon {
  std::vector<std::uint64_t> durable_records;
  std::uint64_t release_horizon = 0;
};

std::string EncodeSubscribe(const SubscribeRequest& request);
StatusOr<SubscribeRequest> DecodeSubscribe(const std::string& payload);

std::string EncodeSubscribeOk(const SubscribeOk& ok);
StatusOr<SubscribeOk> DecodeSubscribeOk(const std::string& payload);

std::string EncodeLogBatch(const LogBatch& batch);
StatusOr<LogBatch> DecodeLogBatch(const std::string& payload);

std::string EncodeAckHorizon(const AckHorizon& ack);
StatusOr<AckHorizon> DecodeAckHorizon(const std::string& payload);

}  // namespace replication
}  // namespace tcdp

#endif  // TCDP_REPLICATION_REPL_MESSAGES_H_
