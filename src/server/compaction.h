#ifndef TCDP_SERVER_COMPACTION_H_
#define TCDP_SERVER_COMPACTION_H_

/// \file
/// Snapshot-anchored WAL compaction: bounding a shard log's disk
/// footprint without giving up a byte of recoverable state.
///
/// Snapshots cut *replay* time but the WAL still grows forever. Once a
/// snapshot durably covers the log's first `applied_records` logical
/// records, those records are redundant with it, and the log can be
/// rewritten to
///
///   [kManifest]  [kCompaction {base counts}]  [suffix records...]
///
/// where the suffix is exactly the records past the snapshot horizon.
/// The kCompaction record preserves *logical* accounting: physical
/// record `p >= 2` of a compacted log is logical record
/// `base_records + (p - 2)`, so snapshot `applied_records` horizons
/// (always logical) keep meaning the same thing across any number of
/// compactions.
///
/// **Crash safety.** The rewrite uses the same tmp+rename+fsync dance
/// as snapshots: the new log is assembled at `<wal>.compact.tmp`,
/// fdatasynced, and renamed over the WAL. A crash at ANY byte offset
/// of the rewrite leaves either the old log (rename not reached — the
/// stray tmp is ignored and removed by recovery) or the complete new
/// log; both recover bitwise-identically (property-tested in
/// tests/compaction_test.cc at every truncation offset of the tmp).
///
/// **Safety floor.** A compacted shard can no longer replay below its
/// snapshot horizon, so callers must only compact up to a horizon
/// every shard of the service has durably synced — otherwise the
/// min-common-horizon alignment of recovery could demand a rewind the
/// compacted shard cannot perform. `ShardedReleaseService::Compact`
/// enforces this by fdatasyncing every shard's WAL at the current
/// horizon before any shard rewrites (docs/DURABILITY.md, "Compaction
/// invariants").

#include <cstdint>
#include <string>

#include "common/status.h"
#include "server/event_log.h"
#include "server/records.h"

namespace tcdp {
namespace server {

/// How a scanned WAL's records map to logical indices.
struct WalBase {
  bool compacted = false;
  /// Valid when `compacted`: the base counts of physical record 1.
  CompactionRecord record;
  /// Physical index of the first replayable (kAddUser/kRelease)
  /// record: 1 for a plain log, 2 for a compacted one.
  std::size_t suffix_start = 1;
};

/// \brief Classifies \p log (a scanned shard WAL whose record 0 is the
/// manifest) as plain or compacted. Fails only when physical record 1
/// is a kCompaction record that does not decode.
StatusOr<WalBase> InspectWalBase(const ReadLogResult& log);

struct CompactionResult {
  std::uint64_t bytes_before = 0;
  std::uint64_t bytes_after = 0;
  /// Records in the rewritten file (manifest + kCompaction + suffix).
  std::uint64_t physical_records = 0;
  /// Records carried past the base (the post-snapshot suffix).
  std::uint64_t suffix_records = 0;
};

/// \brief Atomically copies the snapshot at \p snap_path to
/// \p anchor_path (tmp + fdatasync + rename). Compaction persists its
/// anchor this way BEFORE rewriting the WAL: later snapshots overwrite
/// `shard-<i>.snap` at horizons that may not yet be durable on every
/// shard, and the anchor at exactly the compaction base is what
/// recovery falls back to when that happens.
Status PersistAnchorCopy(const std::string& snap_path,
                         const std::string& anchor_path);

/// \brief Rewrites the WAL at \p wal_path to manifest + kCompaction +
/// the records past logical index \p base_records, via tmp+rename.
///
/// \p base_records / \p base_releases / \p base_users are the
/// anchoring snapshot's applied_records, horizon, and user count; they
/// are cross-checked against the log's actual prefix (a mismatch means
/// the snapshot does not describe this log and fails the rewrite —
/// nothing is modified). The log on disk must be clean (synced; no
/// torn tail). Idempotent: compacting an already-compacted log against
/// the same snapshot produces bitwise the same file.
StatusOr<CompactionResult> CompactShardWal(const std::string& wal_path,
                                           const ManifestRecord& manifest,
                                           std::uint64_t base_records,
                                           std::uint64_t base_releases,
                                           std::uint64_t base_users);

}  // namespace server
}  // namespace tcdp

#endif  // TCDP_SERVER_COMPACTION_H_
