#include "server/snapshot.h"

#include <cstdio>

#include "server/event_log.h"
#include "server/records.h"

namespace tcdp {
namespace server {

Status WriteShardSnapshot(const std::string& path,
                          const ShardSnapshot& snapshot) {
  if (snapshot.names.size() != snapshot.bank.users.size()) {
    return Status::InvalidArgument(
        "WriteShardSnapshot: " + std::to_string(snapshot.names.size()) +
        " names for " + std::to_string(snapshot.bank.users.size()) +
        " users");
  }
  const std::string tmp_path = path + ".tmp";
  TCDP_ASSIGN_OR_RETURN(EventLogWriter writer,
                        EventLogWriter::Create(tmp_path));
  SnapHeaderRecord header;
  header.applied_records = snapshot.applied_records;
  header.horizon = snapshot.bank.schedule.size();
  header.num_users = snapshot.bank.users.size();
  header.alpha_resolution = snapshot.alpha_resolution;
  TCDP_RETURN_IF_ERROR(
      writer.Append(EventType::kSnapHeader, EncodeSnapHeader(header)));
  for (std::size_t u = 0; u < snapshot.bank.users.size(); ++u) {
    const AccountantBank::UserImage& user = snapshot.bank.users[u];
    SnapUserRecord record;
    record.name = snapshot.names[u];
    record.join = user.join;
    record.bpl_last = user.bpl_last;
    record.eps_sum = user.eps_sum;
    record.image.correlations = user.correlations;
    record.image.cache_alpha_resolution = snapshot.alpha_resolution;
    TCDP_RETURN_IF_ERROR(
        writer.Append(EventType::kSnapUser, EncodeSnapUser(record)));
  }
  for (std::size_t t = 0; t < snapshot.bank.schedule.size(); ++t) {
    ReleaseRecord record;
    record.epsilon = snapshot.bank.schedule[t];
    record.all = snapshot.bank.participation[t].is_all();
    if (!record.all) record.mask = snapshot.bank.participation[t];
    TCDP_RETURN_IF_ERROR(
        writer.Append(EventType::kSnapRelease, EncodeRelease(record)));
  }
  TCDP_RETURN_IF_ERROR(writer.Sync());
  TCDP_RETURN_IF_ERROR(writer.Close());
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return Status::Internal("WriteShardSnapshot: rename to " + path +
                            " failed");
  }
  return Status::OK();
}

StatusOr<ShardSnapshot> ReadShardSnapshot(const std::string& path) {
  TCDP_ASSIGN_OR_RETURN(ReadLogResult log, ReadEventLog(path));
  if (!log.clean) {
    return Status::InvalidArgument("ReadShardSnapshot: " + path +
                                   " has a torn tail (" + log.tail_error +
                                   ") — snapshots must be complete");
  }
  if (log.records.empty() ||
      log.records[0].type != EventType::kSnapHeader) {
    return Status::InvalidArgument(
        "ReadShardSnapshot: missing kSnapHeader record");
  }
  TCDP_ASSIGN_OR_RETURN(SnapHeaderRecord header,
                        DecodeSnapHeader(log.records[0].payload));
  // Bound each count by the actual record count BEFORE summing — a
  // crafted header with num_users near UINT64_MAX would otherwise wrap
  // the sum and sail past this check into out-of-bounds indexing.
  const std::uint64_t available = log.records.size();
  if (header.num_users >= available || header.horizon >= available ||
      1 + header.num_users + header.horizon != available) {
    return Status::InvalidArgument(
        "ReadShardSnapshot: " + std::to_string(available) +
        " records, header declares 1+" + std::to_string(header.num_users) +
        "+" + std::to_string(header.horizon));
  }
  ShardSnapshot snapshot;
  snapshot.applied_records = header.applied_records;
  snapshot.alpha_resolution = header.alpha_resolution;
  for (std::uint64_t u = 0; u < header.num_users; ++u) {
    const EventRecord& record = log.records[1 + u];
    if (record.type != EventType::kSnapUser) {
      return Status::InvalidArgument(
          "ReadShardSnapshot: record " + std::to_string(1 + u) +
          " is not kSnapUser");
    }
    TCDP_ASSIGN_OR_RETURN(SnapUserRecord user,
                          DecodeSnapUser(record.payload));
    if (user.join > header.horizon) {
      return Status::InvalidArgument(
          "ReadShardSnapshot: user join past the snapshot horizon");
    }
    if (user.image.cache_alpha_resolution != snapshot.alpha_resolution) {
      return Status::InvalidArgument(
          "ReadShardSnapshot: user quantization disagrees with the header");
    }
    snapshot.names.push_back(std::move(user.name));
    AccountantBank::UserImage image;
    image.correlations = std::move(user.image.correlations);
    image.join = static_cast<std::uint32_t>(user.join);
    image.bpl_last = user.bpl_last;
    image.eps_sum = user.eps_sum;
    snapshot.bank.users.push_back(std::move(image));
  }
  for (std::uint64_t t = 0; t < header.horizon; ++t) {
    const EventRecord& record = log.records[1 + header.num_users + t];
    if (record.type != EventType::kSnapRelease) {
      return Status::InvalidArgument(
          "ReadShardSnapshot: record " +
          std::to_string(1 + header.num_users + t) + " is not kSnapRelease");
    }
    TCDP_ASSIGN_OR_RETURN(ReleaseRecord release,
                          DecodeRelease(record.payload));
    snapshot.bank.schedule.push_back(release.epsilon);
    snapshot.bank.participation.push_back(
        release.all ? PackedMask::All() : std::move(release.mask));
  }
  return snapshot;
}

}  // namespace server
}  // namespace tcdp
