#include "server/sharded_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_set>
#include <utility>

#include <atomic>

#include "common/thread_pool.h"
#include "core/accountant_bank.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "server/compaction.h"
#include "server/event_log.h"
#include "server/records.h"
#include "server/replay.h"
#include "server/snapshot.h"

namespace tcdp {
namespace server {
namespace {

constexpr char kManifestFile[] = "MANIFEST";
constexpr char kManifestHeader[] = "tcdp-shard-manifest-v1";

std::string ShardWalPath(const std::string& dir, std::size_t shard) {
  return dir + "/shard-" + std::to_string(shard) + ".wal";
}

std::string ShardSnapPath(const std::string& dir, std::size_t shard) {
  return dir + "/shard-" + std::to_string(shard) + ".snap";
}

/// The compaction anchor: a copy of the snapshot a compacted WAL's
/// base points at, immune to later snapshot overwrites.
std::string ShardAnchorPath(const std::string& dir, std::size_t shard) {
  return ShardSnapPath(dir, shard) + ".anchor";
}

AccountantBankOptions BankOptions(const ShardedServiceOptions& options) {
  AccountantBankOptions bank;
  bank.share_loss_cache = options.share_loss_cache;
  bank.cache = options.cache;
  return bank;
}

Status WriteManifestFile(const std::string& dir,
                         const ShardedServiceOptions& options) {
  const std::string path = std::string(dir) + "/" + kManifestFile;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) return Status::Internal("cannot write " + tmp);
    out.precision(17);
    out << kManifestHeader << "\n"
        << "shards " << options.num_shards << "\n"
        << "batch_window " << options.batch_window << "\n"
        << "queue_capacity " << options.queue_capacity << "\n"
        << "threads_per_shard " << options.threads_per_shard << "\n"
        << "snapshot_every " << options.snapshot_every << "\n"
        << "sync_every " << options.sync_every << "\n"
        << "share_cache " << (options.share_loss_cache ? 1 : 0) << "\n"
        << "alpha_resolution " << options.cache.alpha_resolution << "\n"
        << "compact_after_snapshot "
        << (options.compaction.after_snapshot ? 1 : 0) << "\n"
        << "compact_max_bytes " << options.compaction.max_wal_bytes << "\n"
        << "compact_max_records " << options.compaction.max_wal_records
        << "\n";
    if (!out) return Status::Internal("cannot write " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

StatusOr<ShardedServiceOptions> ReadManifestFile(const std::string& dir) {
  const std::string path = std::string(dir) + "/" + kManifestFile;
  std::ifstream in(path);
  if (!in) return Status::NotFound("no manifest at " + path);
  std::string header;
  if (!std::getline(in, header) || header != kManifestHeader) {
    return Status::InvalidArgument(path + ": bad manifest header");
  }
  ShardedServiceOptions options;
  std::string key;
  while (in >> key) {
    // A key whose value fails to parse is corruption, not EOF: silently
    // stopping here would hand back default options for everything the
    // loop never reached.
    auto bad_value = [&] {
      return Status::InvalidArgument(path + ": malformed value for '" +
                                     key + "'");
    };
    if (key == "shards") {
      if (!(in >> options.num_shards)) return bad_value();
    } else if (key == "batch_window") {
      if (!(in >> options.batch_window)) return bad_value();
    } else if (key == "queue_capacity") {
      if (!(in >> options.queue_capacity)) return bad_value();
    } else if (key == "threads_per_shard") {
      // Absent in pre-hybrid manifests (defaults to 1); 0 is clamped
      // to 1 by the service constructor.
      if (!(in >> options.threads_per_shard)) return bad_value();
    } else if (key == "snapshot_every") {
      if (!(in >> options.snapshot_every)) return bad_value();
    } else if (key == "sync_every") {
      if (!(in >> options.sync_every)) return bad_value();
    } else if (key == "share_cache") {
      int v = 0;
      if (!(in >> v)) return bad_value();
      options.share_loss_cache = v != 0;
    } else if (key == "alpha_resolution") {
      if (!(in >> options.cache.alpha_resolution)) return bad_value();
    } else if (key == "compact_after_snapshot") {
      int v = 0;
      if (!(in >> v)) return bad_value();
      options.compaction.after_snapshot = v != 0;
    } else if (key == "compact_max_bytes") {
      if (!(in >> options.compaction.max_wal_bytes)) return bad_value();
    } else if (key == "compact_max_records") {
      if (!(in >> options.compaction.max_wal_records)) return bad_value();
    } else {
      // Unknown keys are forward-compatible: skip the value.
      std::string ignored;
      if (!(in >> ignored)) return bad_value();
    }
  }
  if (options.num_shards == 0 || options.batch_window == 0 ||
      options.queue_capacity == 0 ||
      !std::isfinite(options.cache.alpha_resolution)) {
    return Status::InvalidArgument(path + ": malformed manifest values");
  }
  return options;
}

}  // namespace

// ---------------------------------------------------------------- commands

namespace {

struct ShardCommand {
  enum class Kind { kAddUser, kRelease, kSnapshot, kSync, kCompact };
  Kind kind = Kind::kRelease;
  // kAddUser
  std::string name;
  TemporalCorrelations correlations = TemporalCorrelations::None();
  // kRelease
  double epsilon = 0.0;
  bool all = false;
  std::vector<std::size_t> participants;  ///< shard-local indices
};

}  // namespace

struct ShardedReleaseService::PendingGroup {
  double epsilon = 0.0;
  bool all = false;
  std::vector<std::vector<std::size_t>> per_shard;  ///< local indices
  std::unordered_set<std::uint64_t> seen;           ///< dedup keys
};

// ------------------------------------------------------------------ shard

struct ShardedReleaseService::Shard {
  std::size_t index = 0;
  const ShardedServiceOptions* options = nullptr;
  AccountantBank bank;
  std::vector<std::string> names;

  bool durable = false;
  EventLogWriter wal;
  std::string wal_path;
  std::string snap_path;
  std::string anchor_path;
  std::uint64_t wal_records = 0;  ///< LOGICAL records, manifest included
  std::uint64_t releases_since_snapshot = 0;
  std::uint64_t releases_since_sync = 0;
  std::uint64_t snapshots_written = 0;
  std::uint64_t replayed_records = 0;
  std::uint64_t compactions = 0;
  bool restored_from_snapshot = false;
  /// On-disk footprint gauges, published by the worker after each
  /// apply so the service thread can check retention thresholds at
  /// tick boundaries without draining the shard.
  std::atomic<std::uint64_t> published_wal_bytes{0};
  std::atomic<std::uint64_t> published_wal_records{0};
  /// Bank horizon as of the last applied command — the lock-free read
  /// the flight recorder's state text uses (the bank itself belongs to
  /// the worker thread).
  std::atomic<std::uint64_t> published_horizon{0};
  /// 1 while the worker is between pop and apply-complete; the
  /// watchdog's pending probe counts it so a command stuck *in* Apply
  /// (not just behind it) still reads as outstanding work.
  std::atomic<std::size_t> applying{0};
  /// Test-only fault injection (SetShardStallForTesting): while set,
  /// the worker holds before applying its next command.
  std::atomic<bool> test_hold{false};
  obs::HeartbeatHandle heartbeat;

  std::mutex mu;
  std::condition_variable cv_push;  ///< producers wait for queue space
  std::condition_variable cv_pop;   ///< worker waits for commands
  std::condition_variable cv_idle;  ///< Drain waits for quiescence
  std::deque<ShardCommand> queue;
  std::uint64_t enqueue_blocks = 0;  ///< Pushes that found the queue full
  /// Maintained queue-depth gauge + high watermark: updated (under mu)
  /// by every push and pop, so stats reads are consistent point reads
  /// instead of racy peeks at the deque, and the watermark survives
  /// the drain a stats call performs.
  std::atomic<std::size_t> queue_depth{0};
  std::atomic<std::size_t> queue_depth_hwm{0};
  bool busy = false;
  bool stop = false;
  Status first_error;
  std::thread worker;

  /// Per-shard obs instruments, resolved once by InitObs() (after the
  /// shard index is known). Never null afterwards; instrument updates
  /// are relaxed atomics, guarded by obs::MetricsEnabled() where a
  /// clock read is involved.
  obs::Gauge* obs_queue_depth = nullptr;
  obs::Gauge* obs_queue_depth_hwm = nullptr;
  obs::Counter* obs_enqueue_blocks = nullptr;
  obs::Histogram* obs_tick_seconds = nullptr;
  obs::Histogram* obs_batch_size = nullptr;

  void InitObs() {
    const std::string label = std::to_string(index);
    obs::Registry& registry = obs::Registry::Default();
    obs_queue_depth = registry.GetGauge(
        obs::WithLabel("tcdp_shard_queue_depth", "shard", label));
    obs_queue_depth_hwm = registry.GetGauge(
        obs::WithLabel("tcdp_shard_queue_depth_hwm", "shard", label));
    obs_enqueue_blocks = registry.GetCounter(
        obs::WithLabel("tcdp_shard_enqueue_blocks_total", "shard", label));
    obs_tick_seconds = registry.GetHistogram(
        obs::WithLabel("tcdp_shard_tick_seconds", "shard", label));
    obs::HistogramOptions batch;
    batch.min_value = 1.0;
    batch.max_value = 1e9;
    obs_batch_size = registry.GetHistogram(
        obs::WithLabel("tcdp_shard_batch_size", "shard", label), batch);
  }

  /// Called with mu held after every queue mutation.
  void UpdateDepthLocked() {
    const std::size_t depth = queue.size();
    queue_depth.store(depth, std::memory_order_relaxed);
    std::size_t hwm = queue_depth_hwm.load(std::memory_order_relaxed);
    while (depth > hwm && !queue_depth_hwm.compare_exchange_weak(
                              hwm, depth, std::memory_order_relaxed)) {
    }
    if (obs_queue_depth != nullptr) {
      obs_queue_depth->Set(static_cast<std::int64_t>(depth));
      obs_queue_depth_hwm->Set(static_cast<std::int64_t>(
          queue_depth_hwm.load(std::memory_order_relaxed)));
    }
  }

  /// Hybrid mode: the shard worker fans the bank's column updates out
  /// to this pool (declared after `bank` so it joins first on
  /// destruction). Null when threads_per_shard <= 1.
  std::unique_ptr<ThreadPool> bank_pool;

  explicit Shard(const ShardedServiceOptions& opts)
      : options(&opts), bank(BankOptions(opts)) {
    if (opts.threads_per_shard > 1) {
      bank_pool = std::make_unique<ThreadPool>(opts.threads_per_shard);
      bank.set_pool(bank_pool.get());
    }
  }

  ~Shard() { StopAndJoin(); }

  void Start() {
    obs::HeartbeatInfo info;
    info.name = "shard-" + std::to_string(index);
    info.kind = obs::HeartbeatKind::kWorker;
    // Atomics-only probe: invoked from the watchdog thread; valid
    // until StopAndJoin unregisters the handle (before members die).
    info.pending = [this] {
      return static_cast<std::uint64_t>(
          queue_depth.load(std::memory_order_relaxed) +
          applying.load(std::memory_order_relaxed));
    };
    heartbeat = obs::HeartbeatRegistry::Default().Register(std::move(info));
    worker = std::thread([this] { Loop(); });
  }

  void Push(ShardCommand command) {
    obs::ScopedSpan span("enqueue", "shard", index);
    std::unique_lock<std::mutex> lock(mu);
    if (queue.size() >= options->queue_capacity && !stop) {
      ++enqueue_blocks;
      if (obs_enqueue_blocks != nullptr) obs_enqueue_blocks->Increment();
    }
    cv_push.wait(lock, [this] {
      return queue.size() < options->queue_capacity || stop;
    });
    if (stop) return;
    queue.push_back(std::move(command));
    UpdateDepthLocked();
    cv_pop.notify_one();
  }

  /// Blocks until the queue is empty and the worker idle.
  Status Drain() {
    std::unique_lock<std::mutex> lock(mu);
    cv_idle.wait(lock, [this] { return (queue.empty() && !busy) || stop; });
    return first_error;
  }

  void StopAndJoin() {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (stop && !worker.joinable()) return;
      stop = true;
    }
    // Release an injected stall so shutdown cannot hang on it.
    test_hold.store(false, std::memory_order_release);
    cv_pop.notify_all();
    cv_push.notify_all();
    if (worker.joinable()) worker.join();
    // Unregister before members the pending probe reads are destroyed.
    heartbeat.Unregister();
  }

  void Loop() {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      cv_pop.wait(lock, [this] { return stop || !queue.empty(); });
      if (queue.empty()) return;  // stop requested and queue drained
      ShardCommand command = std::move(queue.front());
      queue.pop_front();
      UpdateDepthLocked();
      busy = true;
      applying.store(1, std::memory_order_relaxed);
      lock.unlock();
      cv_push.notify_one();
      // Fault injection (tests only): hold here, with the command
      // popped and the heartbeat frozen — exactly the signature the
      // watchdog classifies as a worker stall. StopAndJoin releases
      // the hold so shutdown cannot hang.
      while (test_hold.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      // Fail-stop: after the first error the shard consumes (and
      // drops) commands so producers never deadlock, but neither the
      // WAL nor the bank advance — a half-applied shard would no
      // longer match its own log.
      Status applied = Status::OK();
      {
        std::lock_guard<std::mutex> peek(mu);
        applied = first_error;
      }
      if (applied.ok()) applied = Apply(std::move(command));
      published_horizon.store(bank.horizon(), std::memory_order_relaxed);
      applying.store(0, std::memory_order_relaxed);
      heartbeat.Beat();
      lock.lock();
      if (!applied.ok() && first_error.ok()) first_error = applied;
      busy = false;
      if (queue.empty()) cv_idle.notify_all();
    }
  }

  Status Apply(ShardCommand command) {
    Status applied = Status::Internal("unknown shard command");
    switch (command.kind) {
      case ShardCommand::Kind::kAddUser:
        applied = ApplyAddUser(std::move(command));
        break;
      case ShardCommand::Kind::kRelease:
        applied = ApplyRelease(std::move(command));
        break;
      case ShardCommand::Kind::kSnapshot:
        applied = WriteSnapshotNow();
        break;
      case ShardCommand::Kind::kSync:
        applied = SyncWal();
        break;
      case ShardCommand::Kind::kCompact:
        applied = ApplyCompact();
        break;
    }
    if (durable && applied.ok()) PublishGauges();
    return applied;
  }

  void PublishGauges() {
    published_wal_bytes.store(wal.bytes_written(),
                              std::memory_order_relaxed);
    published_wal_records.store(wal.records_written(),
                                std::memory_order_relaxed);
  }

  Status SyncWal() {
    if (!durable) return Status::OK();
    obs::ScopedSpan span("wal_sync", "wal", index);
    TCDP_RETURN_IF_ERROR(wal.Sync());
    releases_since_sync = 0;
    return Status::OK();
  }

  Status ApplyAddUser(ShardCommand command) {
    if (durable) {
      AddUserRecord record;
      record.name = command.name;
      record.image.correlations = command.correlations;
      record.image.cache_alpha_resolution = bank.cache_alpha_resolution();
      TCDP_RETURN_IF_ERROR(
          wal.Append(EventType::kAddUser, EncodeAddUser(record)));
      ++wal_records;
    }
    bank.AddUser(std::move(command.correlations));
    names.push_back(std::move(command.name));
    return Status::OK();
  }

  Status ApplyRelease(ShardCommand command) {
    // "Tick latency" for this shard: one global release applied end to
    // end (WAL append + bank step + flush/sync policy).
    obs::ScopedLatencyTimer tick_timer(obs_tick_seconds);
    obs::ScopedSpan span("shard_tick", "shard", index);
    if (obs_batch_size != nullptr && obs::MetricsEnabled()) {
      obs_batch_size->Observe(command.all
                                  ? static_cast<double>(bank.num_users())
                                  : static_cast<double>(
                                        command.participants.size()));
    }
    if (durable) {
      obs::ScopedSpan append_span("wal_append", "wal", index);
      ReleaseRecord record;
      record.epsilon = command.epsilon;
      record.all = command.all;
      if (!command.all) {
        std::vector<std::uint64_t> words((names.size() + 63) / 64, 0);
        for (std::size_t local : command.participants) {
          words[local >> 6] |= std::uint64_t{1} << (local & 63u);
        }
        record.mask = PackedMask::FromWords(std::move(words));
      }
      TCDP_RETURN_IF_ERROR(
          wal.Append(EventType::kRelease, EncodeRelease(record)));
      ++wal_records;
    }
    {
      obs::ScopedSpan step_span("bank_step", "bank", index);
      TCDP_RETURN_IF_ERROR(command.all
                               ? bank.RecordRelease(command.epsilon)
                               : bank.RecordRelease(command.epsilon,
                                                    command.participants));
    }
    if (durable) {
      ++releases_since_sync;
      if (options->sync_every > 0 &&
          releases_since_sync >= options->sync_every) {
        TCDP_RETURN_IF_ERROR(wal.Sync());
        releases_since_sync = 0;
      } else {
        TCDP_RETURN_IF_ERROR(wal.Flush());
      }
      ++releases_since_snapshot;
      if (options->snapshot_every > 0 &&
          releases_since_snapshot >= options->snapshot_every) {
        TCDP_RETURN_IF_ERROR(WriteSnapshotNow());
      }
    }
    return Status::OK();
  }

  Status WriteSnapshotNow() {
    if (!durable) {
      return Status::FailedPrecondition(
          "shard snapshot requested on an ephemeral service");
    }
    obs::ScopedSpan span("snapshot", "shard", index);
    // The WAL must be on disk before a snapshot may claim to cover it.
    TCDP_RETURN_IF_ERROR(wal.Sync());
    releases_since_sync = 0;
    ShardSnapshot snapshot;
    snapshot.applied_records = wal_records;
    snapshot.names = names;
    snapshot.bank = bank.ExportImage();
    snapshot.alpha_resolution = bank.cache_alpha_resolution();
    TCDP_RETURN_IF_ERROR(WriteShardSnapshot(snap_path, snapshot));
    ++snapshots_written;
    releases_since_snapshot = 0;
    return Status::OK();
  }

  /// Rewrites this shard's WAL against its newest snapshot
  /// (server/compaction.h). PRECONDITION (enforced by the service's
  /// Compact/Snapshot flows): every shard of the service has durably
  /// synced the current horizon, so dropping records beneath it can
  /// never strand recovery's min-common-horizon alignment.
  Status ApplyCompact() {
    if (!durable) {
      return Status::FailedPrecondition(
          "shard compaction requested on an ephemeral service");
    }
    obs::ScopedSpan span("compact", "shard", index);
    // The file must be complete on disk before it is re-derived.
    TCDP_RETURN_IF_ERROR(wal.Sync());
    releases_since_sync = 0;
    // Anchor: the newest on-disk snapshot; a shard that has never
    // snapshotted (or whose snapshot predates a previous compaction
    // and is thus unreadable) writes a fresh one now — safe, because
    // the precondition above already made this horizon durable
    // everywhere.
    bool refresh = true;
    ShardSnapshot anchor;
    if (std::filesystem::exists(snap_path)) {
      auto read = ReadShardSnapshot(snap_path);
      if (read.ok()) {
        anchor = std::move(read).value();
        refresh = false;
      }
    }
    if (refresh) {
      TCDP_RETURN_IF_ERROR(WriteSnapshotNow());
      TCDP_ASSIGN_OR_RETURN(anchor, ReadShardSnapshot(snap_path));
    }
    // Persist the anchor BEFORE the WAL loses its prefix: later
    // snapshots overwrite snap_path at horizons that may not yet be
    // durable on every shard, and recovery falls back to this copy
    // when the newer snapshot does not fit under the common horizon.
    // A crash between this rename and the WAL rename leaves an
    // uncompacted log with a harmless anchor (recovery removes it).
    TCDP_RETURN_IF_ERROR(PersistAnchorCopy(snap_path, anchor_path));
    ManifestRecord manifest;
    manifest.shard_index = index;
    manifest.num_shards = options->num_shards;
    manifest.share_loss_cache = options->share_loss_cache;
    manifest.alpha_resolution = options->cache.alpha_resolution;
    TCDP_ASSIGN_OR_RETURN(
        CompactionResult result,
        CompactShardWal(wal_path, manifest, anchor.applied_records,
                        anchor.bank.schedule.size(),
                        anchor.bank.users.size()));
    // Swap the writer onto the rewritten file (closing the old fd,
    // whose inode the rename orphaned). Logical wal_records is
    // untouched — compaction changes disk layout, not history.
    TCDP_ASSIGN_OR_RETURN(
        wal, EventLogWriter::OpenForAppend(wal_path, result.bytes_after,
                                           result.physical_records));
    ++compactions;
    return Status::OK();
  }
};

// ---------------------------------------------------------------- service

std::size_t ShardedReleaseService::ShardOf(const std::string& name,
                                           std::size_t num_shards) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return num_shards <= 1 ? 0 : static_cast<std::size_t>(h % num_shards);
}

ShardedReleaseService::ShardedReleaseService(ShardedServiceOptions options)
    : options_(std::move(options)) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  if (options_.batch_window == 0) options_.batch_window = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.threads_per_shard == 0) options_.threads_per_shard = 1;
}

ShardedReleaseService::~ShardedReleaseService() { (void)Close(); }

Status ShardedReleaseService::InitShardsFresh(const std::string& log_dir) {
  log_dir_ = log_dir;
  shard_user_count_.assign(options_.num_shards, 0);
  for (std::size_t i = 0; i < options_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>(options_);
    shard->index = i;
    shard->InitObs();
    if (!log_dir_.empty()) {
      shard->durable = true;
      shard->wal_path = ShardWalPath(log_dir_, i);
      shard->snap_path = ShardSnapPath(log_dir_, i);
      shard->anchor_path = ShardAnchorPath(log_dir_, i);
      TCDP_ASSIGN_OR_RETURN(shard->wal,
                            EventLogWriter::Create(shard->wal_path));
      ManifestRecord manifest;
      manifest.shard_index = i;
      manifest.num_shards = options_.num_shards;
      manifest.share_loss_cache = options_.share_loss_cache;
      manifest.alpha_resolution = options_.cache.alpha_resolution;
      TCDP_RETURN_IF_ERROR(shard->wal.Append(EventType::kManifest,
                                             EncodeManifest(manifest)));
      TCDP_RETURN_IF_ERROR(shard->wal.Sync());
      shard->wal_records = 1;
      shard->PublishGauges();
    }
    shard->Start();
    shards_.push_back(std::move(shard));
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<ShardedReleaseService>> ShardedReleaseService::Create(
    const std::string& log_dir, ShardedServiceOptions options) {
  std::unique_ptr<ShardedReleaseService> service(
      new ShardedReleaseService(std::move(options)));
  // Purely a perf knob (backends are bitwise identical); applied here,
  // not in Recover, so a recovered process keeps whatever mode the CLI
  // selected.
  kernels::SetKernelMode(service->options_.kernel_mode);
  if (!log_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(log_dir, ec);
    if (ec) {
      return Status::Internal("cannot create log dir " + log_dir + ": " +
                              ec.message());
    }
    if (std::filesystem::exists(log_dir + "/" + kManifestFile)) {
      return Status::AlreadyExists(log_dir +
                                   " already holds a service (use Recover)");
    }
  }
  TCDP_RETURN_IF_ERROR(service->InitShardsFresh(log_dir));
  // The MANIFEST is the directory's commit point: written only after
  // every shard WAL exists with a synced manifest record. A crash
  // before this line leaves a manifest-less directory that a rerun of
  // Create simply re-initializes (no AlreadyExists wedge).
  if (!log_dir.empty()) {
    TCDP_RETURN_IF_ERROR(WriteManifestFile(log_dir, service->options_));
  }
  return service;
}

StatusOr<std::unique_ptr<ShardedReleaseService>>
ShardedReleaseService::Recover(const std::string& log_dir,
                               std::size_t recovery_threads) {
  TCDP_ASSIGN_OR_RETURN(ShardedServiceOptions options,
                        ReadManifestFile(log_dir));
  std::unique_ptr<ShardedReleaseService> service(
      new ShardedReleaseService(std::move(options)));
  service->log_dir_ = log_dir;
  const std::size_t num_shards = service->options_.num_shards;

  // Pass 1: scan every shard's valid WAL prefix and find the minimum
  // common horizon — a global release is committed only when every
  // shard holds it. A compacted WAL's base releases count toward its
  // horizon (they are durable inside the shard snapshot).
  std::vector<ReadLogResult> logs;
  std::vector<WalBase> bases;
  logs.reserve(num_shards);
  bases.reserve(num_shards);
  std::size_t global_horizon = SIZE_MAX;
  for (std::size_t i = 0; i < num_shards; ++i) {
    TCDP_ASSIGN_OR_RETURN(ReadLogResult log,
                          ReadEventLog(ShardWalPath(log_dir, i)));
    if (log.records.empty() ||
        log.records[0].type != EventType::kManifest) {
      return Status::InvalidArgument("shard " + std::to_string(i) +
                                     " WAL has no manifest record");
    }
    TCDP_ASSIGN_OR_RETURN(ManifestRecord manifest,
                          DecodeManifest(log.records[0].payload));
    if (manifest.shard_index != i || manifest.num_shards != num_shards) {
      return Status::InvalidArgument(
          "shard " + std::to_string(i) +
          " WAL manifest disagrees with the directory MANIFEST");
    }
    TCDP_ASSIGN_OR_RETURN(WalBase base, InspectWalBase(log));
    std::size_t releases =
        base.compacted
            ? static_cast<std::size_t>(base.record.base_releases)
            : 0;
    for (std::size_t r = base.suffix_start; r < log.records.size(); ++r) {
      if (log.records[r].type == EventType::kRelease) ++releases;
    }
    global_horizon = std::min(global_horizon, releases);
    logs.push_back(std::move(log));
    bases.push_back(base);
  }
  if (global_horizon == SIZE_MAX) global_horizon = 0;

  // Pass 2: per shard, cut the log at the common horizon (keeping any
  // trailing joins), restore snapshot + replay the suffix, truncate,
  // and reopen for append. Shards share no state (each owns its bank,
  // cache, WAL, and snapshot), so replay fans out over a thread pool;
  // registration below stays serial so registry order is shard-major
  // regardless of which shard finishes first.
  std::vector<std::unique_ptr<Shard>> recovered(num_shards);
  std::vector<Status> shard_status(num_shards, Status::OK());
  auto recover_one = [&](std::size_t i) -> Status {
    obs::ScopedSpan span("recover_shard", "recovery", i);
    const ReadLogResult& log = logs[i];
    const WalBase& base = bases[i];
    const std::size_t base_releases =
        base.compacted ? static_cast<std::size_t>(base.record.base_releases)
                       : 0;
    if (base.compacted && global_horizon < base_releases) {
      // Another shard's durable log ends below this shard's compaction
      // floor. Compact() makes every shard durable at the compaction
      // horizon before any rewrite, so reaching here means the logs
      // were tampered with or compacted by a broken external tool.
      return Status::FailedPrecondition(
          "shard " + std::to_string(i) + " is compacted at horizon " +
          std::to_string(base_releases) +
          " but the common durable horizon is only " +
          std::to_string(global_horizon) +
          " — the shards cannot be aligned");
    }
    std::size_t keep = log.records.size();
    std::size_t releases = base_releases;
    if (global_horizon == base_releases) {
      // Nothing past the base commits; keep only trailing joins (a
      // user may exist with an empty series).
      keep = base.suffix_start;
      while (keep < log.records.size() &&
             log.records[keep].type == EventType::kAddUser) {
        ++keep;
      }
    } else {
      for (std::size_t r = base.suffix_start; r < log.records.size();
           ++r) {
        if (log.records[r].type != EventType::kRelease) continue;
        ++releases;
        if (releases == global_horizon) {
          keep = r + 1;
          // Joins after the last committed release are shard-local
          // facts; keep them (the user exists with an empty series).
          while (keep < log.records.size() &&
                 log.records[keep].type == EventType::kAddUser) {
            ++keep;
          }
          break;
        }
      }
    }
    // Logical index just past the kept physical prefix.
    const std::uint64_t logical_keep =
        base.compacted ? base.record.base_records + (keep - 2) : keep;

    auto shard = std::make_unique<Shard>(service->options_);
    shard->index = i;
    shard->InitObs();
    shard->durable = true;
    shard->wal_path = ShardWalPath(log_dir, i);
    shard->snap_path = ShardSnapPath(log_dir, i);
    shard->anchor_path = ShardAnchorPath(log_dir, i);
    // Stray temporaries from a crash mid-snapshot/mid-compaction are
    // dead weight; the durable files are the only truth. An anchor
    // next to an UNCOMPACTED log is the same (the compaction that
    // wrote it never renamed its WAL into place).
    std::error_code ignored;
    std::filesystem::remove(shard->snap_path + ".tmp", ignored);
    std::filesystem::remove(shard->wal_path + ".compact.tmp", ignored);
    std::filesystem::remove(shard->anchor_path + ".tmp", ignored);
    if (!base.compacted) {
      std::filesystem::remove(shard->anchor_path, ignored);
    }

    // Snapshot restore when one exists, is readable, and fits inside
    // the kept prefix. An uncompacted shard falls back to full replay
    // on any mismatch; a compacted shard CANNOT (its prefix exists
    // only as the snapshot), so there a bad snapshot fails recovery
    // loudly instead of resurrecting partial state.
    std::size_t replay_from = base.suffix_start;
    std::string snap_reject;
    if (std::filesystem::exists(shard->snap_path)) {
      auto snapshot = ReadShardSnapshot(shard->snap_path);
      if (snapshot.ok() && snapshot->applied_records <= logical_keep &&
          snapshot->bank.schedule.size() <= global_horizon &&
          (!base.compacted ||
           snapshot->applied_records >= base.record.base_records)) {
        // Cross-check: the snapshot's horizon must equal the number of
        // releases among the logical records it claims to cover.
        const std::size_t snap_end = static_cast<std::size_t>(
            base.compacted
                ? 2 + (snapshot->applied_records - base.record.base_records)
                : snapshot->applied_records);
        std::size_t covered = base_releases;
        for (std::size_t r = base.suffix_start; r < snap_end; ++r) {
          if (log.records[r].type == EventType::kRelease) ++covered;
        }
        if (covered == snapshot->bank.schedule.size() &&
            snapshot->alpha_resolution ==
                shard->bank.cache_alpha_resolution()) {
          auto restored = AccountantBank::Restore(
              std::move(snapshot->bank), BankOptions(service->options_));
          if (restored.ok()) {
            shard->bank = std::move(restored).value();
            shard->names = std::move(snapshot->names);
            replay_from = snap_end;
            shard->restored_from_snapshot = true;
          } else {
            snap_reject = restored.status().ToString();
          }
        } else {
          snap_reject = "snapshot horizon/quantization disagrees with "
                        "the WAL prefix";
        }
      } else {
        snap_reject = snapshot.ok()
                          ? "snapshot does not fit under the common horizon"
                          : snapshot.status().ToString();
      }
    } else {
      snap_reject = "no snapshot at " + shard->snap_path;
    }
    // Compacted shard whose current snapshot is unusable (most often:
    // a newer snapshot that does not fit under the common horizon):
    // fall back to the anchor copy preserved at compaction time — it
    // sits at exactly the base, which the compaction invariants made
    // durable on every shard, so it always fits.
    if (base.compacted && !shard->restored_from_snapshot &&
        std::filesystem::exists(shard->anchor_path)) {
      auto anchor = ReadShardSnapshot(shard->anchor_path);
      if (anchor.ok() &&
          anchor->applied_records == base.record.base_records &&
          anchor->bank.schedule.size() == base_releases &&
          anchor->alpha_resolution ==
              shard->bank.cache_alpha_resolution()) {
        auto restored = AccountantBank::Restore(
            std::move(anchor->bank), BankOptions(service->options_));
        if (restored.ok()) {
          shard->bank = std::move(restored).value();
          shard->names = std::move(anchor->names);
          replay_from = base.suffix_start;
          shard->restored_from_snapshot = true;
        } else {
          snap_reject += "; anchor: " + restored.status().ToString();
        }
      } else if (!anchor.ok()) {
        snap_reject += "; anchor: " + anchor.status().ToString();
      } else {
        snap_reject += "; anchor does not sit at the compaction base";
      }
    }
    if (base.compacted && !shard->restored_from_snapshot) {
      return Status::FailedPrecondition(
          "shard " + std::to_string(i) +
          " is compacted but neither its snapshot nor its anchor is "
          "usable (" + snap_reject +
          ") — the compacted prefix cannot be replayed");
    }

    for (std::size_t r = replay_from; r < keep; ++r) {
      const Status applied =
          ApplyWalRecord(log.records[r], &shard->bank, &shard->names);
      if (!applied.ok()) {
        return Status(applied.code(),
                      "shard " + std::to_string(i) + " WAL record " +
                          std::to_string(r) + ": " + applied.message());
      }
      ++shard->replayed_records;
    }

    const std::uint64_t resume_offset =
        keep > 0 ? log.record_end[keep - 1] : log.valid_bytes;
    TCDP_RETURN_IF_ERROR(
        TruncateFile(ShardWalPath(log_dir, i), resume_offset));
    TCDP_ASSIGN_OR_RETURN(
        shard->wal,
        EventLogWriter::OpenForAppend(ShardWalPath(log_dir, i),
                                      resume_offset, keep));
    shard->wal_records = logical_keep;
    shard->PublishGauges();
    recovered[i] = std::move(shard);
    return Status::OK();
  };

  const std::size_t hw = std::thread::hardware_concurrency();
  std::size_t threads =
      recovery_threads == 0 ? std::max<std::size_t>(hw, 1)
                            : recovery_threads;
  threads = std::min(threads, num_shards);
  if (threads <= 1) {
    for (std::size_t i = 0; i < num_shards; ++i) {
      shard_status[i] = recover_one(i);
    }
  } else {
    ThreadPool pool(threads);
    pool.ParallelFor(0, num_shards,
                     [&](std::size_t i) { shard_status[i] = recover_one(i); });
  }
  for (const Status& status : shard_status) {
    TCDP_RETURN_IF_ERROR(status);
  }

  service->shard_user_count_.assign(num_shards, 0);
  for (std::size_t i = 0; i < num_shards; ++i) {
    std::unique_ptr<Shard>& shard = recovered[i];
    for (std::size_t u = 0; u < shard->names.size(); ++u) {
      auto [it, inserted] = service->registry_.try_emplace(
          shard->names[u], static_cast<std::uint32_t>(i),
          static_cast<std::uint32_t>(u));
      if (!inserted) {
        return Status::InvalidArgument("user '" + shard->names[u] +
                                       "' appears on two shards");
      }
    }
    service->shard_user_count_[i] =
        static_cast<std::uint32_t>(shard->names.size());
    shard->Start();
    service->shards_.push_back(std::move(shard));
  }
  return service;
}

Status ShardedReleaseService::Join(const std::string& name,
                                   TemporalCorrelations correlations) {
  if (closed_) {
    return Status::FailedPrecondition("service is closed");
  }
  const std::size_t shard = ShardOf(name, shards_.size());
  const std::uint32_t local = shard_user_count_[shard];
  auto [it, inserted] = registry_.try_emplace(
      name, static_cast<std::uint32_t>(shard), local);
  if (!inserted) {
    return Status::AlreadyExists("user '" + name + "' already joined");
  }
  ++shard_user_count_[shard];
  pending_joins_.push_back(
      PendingJoin{name, std::move(correlations), shard});
  ++stats_.join_requests;
  return EndRequestWindow();
}

Status ShardedReleaseService::Release(const std::string& name,
                                      double epsilon) {
  if (closed_) {
    return Status::FailedPrecondition("service is closed");
  }
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument(
        "Release: epsilon must be finite and > 0");
  }
  const auto it = registry_.find(name);
  if (it == registry_.end()) {
    return Status::NotFound("user '" + name + "' has not joined");
  }
  PendingGroup& group = GroupFor(epsilon);
  if (!group.all) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(it->second.first) << 32) |
        it->second.second;
    if (group.seen.insert(key).second) {
      group.per_shard[it->second.first].push_back(it->second.second);
    }
  }
  ++stats_.release_requests;
  return EndRequestWindow();
}

Status ShardedReleaseService::ReleaseAll(double epsilon) {
  if (closed_) {
    return Status::FailedPrecondition("service is closed");
  }
  if (!(epsilon > 0.0) || !std::isfinite(epsilon)) {
    return Status::InvalidArgument(
        "ReleaseAll: epsilon must be finite and > 0");
  }
  GroupFor(epsilon).all = true;
  ++stats_.release_requests;
  return EndRequestWindow();
}

ShardedReleaseService::PendingGroup& ShardedReleaseService::GroupFor(
    double epsilon) {
  for (auto& candidate : pending_groups_) {
    if (candidate->epsilon == epsilon) return *candidate;
  }
  auto fresh = std::make_unique<PendingGroup>();
  fresh->epsilon = epsilon;
  fresh->per_shard.resize(shards_.size());
  pending_groups_.push_back(std::move(fresh));
  return *pending_groups_.back();
}

Status ShardedReleaseService::EndRequestWindow() {
  if (++window_count_ < options_.batch_window) return Status::OK();
  TCDP_RETURN_IF_ERROR(Tick());
  return MaybeAutoCompact();
}

Status ShardedReleaseService::Tick() {
  const std::size_t window = window_count_;
  window_count_ = 0;
  if (pending_joins_.empty() && pending_groups_.empty()) {
    return Status::OK();
  }
  obs::ScopedSpan span("tick", "service", window);
  if (obs::MetricsEnabled()) {
    static obs::Histogram* tick_requests = [] {
      obs::HistogramOptions options;
      options.min_value = 1.0;
      options.max_value = 1e9;
      return obs::Registry::Default().GetHistogram(
          "tcdp_service_tick_requests", options);
    }();
    tick_requests->Observe(static_cast<double>(window));
  }
  for (PendingJoin& join : pending_joins_) {
    ShardCommand command;
    command.kind = ShardCommand::Kind::kAddUser;
    command.name = std::move(join.name);
    command.correlations = std::move(join.correlations);
    shards_[join.shard]->Push(std::move(command));
  }
  pending_joins_.clear();
  for (auto& group : pending_groups_) {
    // One global time step: EVERY shard records this release, so all
    // users' skip-leakage propagates and shards share one time axis.
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      ShardCommand command;
      command.kind = ShardCommand::Kind::kRelease;
      command.epsilon = group->epsilon;
      command.all = group->all;
      if (!group->all) {
        command.participants = std::move(group->per_shard[s]);
      }
      shards_[s]->Push(std::move(command));
    }
    ++stats_.global_releases;
  }
  pending_groups_.clear();
  ++stats_.ticks;
  return Status::OK();
}

Status ShardedReleaseService::DrainShard(std::size_t shard) {
  return shards_[shard]->Drain();
}

Status ShardedReleaseService::DrainAll() {
  Status first = Status::OK();
  for (auto& shard : shards_) {
    const Status drained = shard->Drain();
    if (!drained.ok() && first.ok()) first = drained;
  }
  return first;
}

Status ShardedReleaseService::Flush() {
  if (closed_) {
    return Status::FailedPrecondition("service is closed");
  }
  TCDP_RETURN_IF_ERROR(Tick());
  TCDP_RETURN_IF_ERROR(DrainAll());
  // The drain made the gauges exact, so this is where a retention
  // threshold reliably engages even when the tick-time (lag-prone)
  // checks kept missing it — e.g. a producer outrunning the workers on
  // a loaded host.
  return MaybeAutoCompact();
}

Status ShardedReleaseService::Snapshot() {
  if (log_dir_.empty()) {
    // Reject up front: pushing the command would store FailedPrecondition
    // as every shard's first_error and fail-stop the whole service.
    return Status::FailedPrecondition(
        "snapshot requested on an ephemeral service (no log dir)");
  }
  TCDP_RETURN_IF_ERROR(SnapshotAllShards());
  // Every shard just fdatasynced its WAL (snapshots sync first) at the
  // same horizon, so the rewrite precondition holds without an extra
  // sync round.
  if (options_.compaction.after_snapshot) return CompactShards();
  return Status::OK();
}

Status ShardedReleaseService::SnapshotAllShards() {
  TCDP_RETURN_IF_ERROR(Flush());
  for (auto& shard : shards_) {
    ShardCommand command;
    command.kind = ShardCommand::Kind::kSnapshot;
    shard->Push(std::move(command));
  }
  return DrainAll();
}

Status ShardedReleaseService::Compact() {
  if (closed_) {
    return Status::FailedPrecondition("service is closed");
  }
  if (log_dir_.empty()) {
    return Status::FailedPrecondition(
        "compaction requested on an ephemeral service (no log dir)");
  }
  compacting_ = true;
  struct Unguard {
    bool* flag;
    ~Unguard() { *flag = false; }
  } unguard{&compacting_};
  TCDP_RETURN_IF_ERROR(Flush());
  // Phase 1: make the current horizon durable on EVERY shard. Only
  // then may any shard drop records beneath it — otherwise a crash
  // could leave another shard's durable log below this shard's
  // compaction floor and recovery's alignment would have nowhere to go.
  for (auto& shard : shards_) {
    ShardCommand command;
    command.kind = ShardCommand::Kind::kSync;
    shard->Push(std::move(command));
  }
  TCDP_RETURN_IF_ERROR(DrainAll());
  return CompactShards();
}

Status ShardedReleaseService::CompactShards() {
  for (auto& shard : shards_) {
    ShardCommand command;
    command.kind = ShardCommand::Kind::kCompact;
    shard->Push(std::move(command));
  }
  return DrainAll();
}

Status ShardedReleaseService::MaybeAutoCompact() {
  const CompactionOptions& policy = options_.compaction;
  if (compacting_ || log_dir_.empty() ||
      (policy.max_wal_bytes == 0 && policy.max_wal_records == 0)) {
    return Status::OK();
  }
  bool over = false;
  for (const auto& shard : shards_) {
    const std::uint64_t bytes =
        shard->published_wal_bytes.load(std::memory_order_relaxed);
    const std::uint64_t records =
        shard->published_wal_records.load(std::memory_order_relaxed);
    if ((policy.max_wal_bytes > 0 && bytes >= policy.max_wal_bytes) ||
        (policy.max_wal_records > 0 && records >= policy.max_wal_records)) {
      over = true;
      break;
    }
  }
  if (!over) return Status::OK();
  // Fresh snapshots, not whatever anchor happens to exist: a stale
  // anchor could leave the post-anchor suffix still over the
  // threshold, and the check would re-trigger a full (useless)
  // rewrite every window. Snapshotting first collapses each WAL to
  // its floor, so one pass always converges; it also satisfies the
  // cross-shard durability precondition of CompactShards.
  compacting_ = true;
  struct Unguard {
    bool* flag;
    ~Unguard() { *flag = false; }
  } unguard{&compacting_};
  TCDP_RETURN_IF_ERROR(SnapshotAllShards());
  return CompactShards();
}

StatusOr<UserReport> ShardedReleaseService::Query(const std::string& name) {
  if (closed_) {
    return Status::FailedPrecondition("service is closed");
  }
  const auto it = registry_.find(name);
  if (it == registry_.end()) {
    return Status::NotFound("user '" + name + "' has not joined");
  }
  // A query closes the current window: everything submitted before it
  // is assigned a time step and applied before we read.
  TCDP_RETURN_IF_ERROR(Tick());
  TCDP_RETURN_IF_ERROR(DrainShard(it->second.first));
  const Shard& shard = *shards_[it->second.first];
  const std::size_t local = it->second.second;
  if (local >= shard.bank.num_users()) {
    return Status::Internal("user '" + name + "' not applied after drain");
  }
  UserReport report;
  report.name = name;
  report.shard = it->second.first;
  report.join_release = shard.bank.join_release(local);
  report.horizon = shard.bank.user_horizon(local);
  report.max_tpl = shard.bank.MaxTplFor(local);
  report.user_level_tpl = shard.bank.UserEpsSum(local);
  report.epsilons = shard.bank.EpsilonsFor(local);
  report.tpl_series = shard.bank.TplSeriesFor(local);
  return report;
}

StatusOr<std::string> ShardedReleaseService::ExportUser(
    const std::string& name) {
  if (closed_) {
    return Status::FailedPrecondition("service is closed");
  }
  const auto it = registry_.find(name);
  if (it == registry_.end()) {
    return Status::NotFound("user '" + name + "' has not joined");
  }
  TCDP_RETURN_IF_ERROR(Tick());
  TCDP_RETURN_IF_ERROR(DrainShard(it->second.first));
  const Shard& shard = *shards_[it->second.first];
  if (it->second.second >= shard.bank.num_users()) {
    return Status::Internal("user '" + name + "' not applied after drain");
  }
  return shard.bank.SerializeUser(it->second.second);
}

std::size_t ShardedReleaseService::horizon() {
  if (!closed_) (void)DrainAll();
  std::size_t h = SIZE_MAX;
  for (const auto& shard : shards_) {
    h = std::min(h, shard->bank.horizon());
  }
  return shards_.empty() || h == SIZE_MAX ? 0 : h;
}

StatusOr<double> ShardedReleaseService::OverallAlpha() {
  TCDP_RETURN_IF_ERROR(Flush());
  double best = 0.0;
  for (const auto& shard : shards_) {
    best = std::max(best, shard->bank.OverallAlpha());
  }
  return best;
}

StatusOr<std::vector<std::pair<std::string, double>>>
ShardedReleaseService::PersonalizedAlphas() {
  TCDP_RETURN_IF_ERROR(Flush());
  std::vector<std::pair<std::string, double>> alphas;
  alphas.reserve(registry_.size());
  for (const auto& shard : shards_) {
    const std::vector<double> local = shard->bank.PersonalizedAlphas();
    for (std::size_t u = 0; u < local.size(); ++u) {
      alphas.emplace_back(shard->names[u], local[u]);
    }
  }
  return alphas;
}

ShardStats ShardedReleaseService::shard_stats(std::size_t shard) {
  ShardStats stats;
  {
    // Depth is sampled before the drain below empties the queue — it
    // answers "how backed up was this shard when you asked". The gauge
    // and watermark are maintained atomics, so no lock is needed for
    // them; enqueue_blocks is still guarded by mu.
    Shard& live = *shards_[shard];
    stats.queue_depth = live.queue_depth.load(std::memory_order_relaxed);
    stats.queue_depth_hwm =
        live.queue_depth_hwm.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(live.mu);
    stats.enqueue_blocks = live.enqueue_blocks;
  }
  if (!closed_) (void)DrainShard(shard);
  const Shard& s = *shards_[shard];
  stats.users = s.bank.num_users();
  stats.horizon = s.bank.horizon();
  stats.wal_records = s.wal_records;
  stats.wal_physical_records = s.durable ? s.wal.records_written() : 0;
  stats.wal_bytes = s.durable ? s.wal.bytes_written() : 0;
  stats.snapshots_written = s.snapshots_written;
  stats.compactions = s.compactions;
  stats.replayed_records = s.replayed_records;
  stats.restored_from_snapshot = s.restored_from_snapshot;
  return stats;
}

ServiceStats ShardedReleaseService::stats() const {
  ServiceStats stats = stats_;
  for (const auto& shard : shards_) {
    const TemporalLossCache::Stats cache = shard->bank.cache_stats();
    stats.cache_hits += cache.hits;
    stats.cache_misses += cache.misses;
    stats.cache_entries += cache.entries;
    stats.cache_distinct_matrices += cache.distinct_matrices;
  }
  return stats;
}

std::string ShardedReleaseService::DiagnosticStateText() const {
  // Everything here is a worker-published atomic: no locks, no drains,
  // so the flight recorder can snapshot a wedged service without
  // queueing behind the shard it is diagnosing.
  std::ostringstream out;
  out << "shards=" << shards_.size() << " log_dir="
      << (log_dir_.empty() ? "<ephemeral>" : log_dir_) << "\n";
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& s = *shards_[i];
    out << "shard " << i << ": queue_depth="
        << s.queue_depth.load(std::memory_order_relaxed)
        << " queue_depth_hwm="
        << s.queue_depth_hwm.load(std::memory_order_relaxed)
        << " applying=" << s.applying.load(std::memory_order_relaxed)
        << " horizon=" << s.published_horizon.load(std::memory_order_relaxed)
        << " wal_bytes="
        << s.published_wal_bytes.load(std::memory_order_relaxed)
        << " wal_records="
        << s.published_wal_records.load(std::memory_order_relaxed) << "\n";
  }
  return out.str();
}

void ShardedReleaseService::SetShardStallForTesting(std::size_t shard,
                                                    bool stalled) {
  shards_[shard]->test_hold.store(stalled, std::memory_order_release);
}

Status ShardedReleaseService::Close() {
  if (closed_) return Status::OK();
  Status first = Tick();
  for (auto& shard : shards_) {
    shard->StopAndJoin();
  }
  for (auto& shard : shards_) {
    if (!shard->first_error.ok() && first.ok()) first = shard->first_error;
    if (shard->durable && shard->wal.is_open()) {
      const Status synced = shard->wal.Sync();
      if (!synced.ok() && first.ok()) first = synced;
      const Status closed = shard->wal.Close();
      if (!closed.ok() && first.ok()) first = closed;
    }
  }
  closed_ = true;
  return first;
}

}  // namespace server
}  // namespace tcdp
