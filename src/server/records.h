#ifndef TCDP_SERVER_RECORDS_H_
#define TCDP_SERVER_RECORDS_H_

/// \file
/// Typed payload codecs for the event-log record types (event_log.h
/// owns the framing + CRC; this file owns what goes inside).
///
/// Wire conventions: little-endian fixed ints, LEB128 varints, doubles
/// as raw IEEE-754 bits (bitwise replay), strings length-prefixed,
/// participation masks via the PackedMask codec. Correlation matrices
/// travel inside the "tcdp-accountant-v2" text blob (core's
/// AccountantImage serializer) so the durable formats share one matrix
/// grammar with accountant persistence.
///
/// Every decoder is total: truncated or corrupted payloads (those that
/// survive the frame CRC, e.g. hand-edited files) come back as Status,
/// never UB.

#include <cstdint>
#include <string>

#include "common/packed_mask.h"
#include "common/status.h"
#include "core/tpl_accountant.h"

namespace tcdp {
namespace server {

/// First record of every shard WAL: identity + the accounting options
/// the rest of the log must be replayed under.
struct ManifestRecord {
  std::uint64_t format_version = 1;
  std::uint64_t shard_index = 0;
  std::uint64_t num_shards = 1;
  bool share_loss_cache = true;
  double alpha_resolution = 1e-9;
};

/// A user enrolled on this shard. The embedded accountant image carries
/// the correlation matrices and quantization; its epsilon list is empty
/// (history lives in the release records).
struct AddUserRecord {
  std::string name;
  AccountantImage image;
};

/// One global release: every shard logs one of these per global time
/// step, with its local participation. An All mask means every user
/// enrolled on the shard at that point participated.
struct ReleaseRecord {
  double epsilon = 0.0;
  bool all = false;
  PackedMask mask;  ///< over shard-local user indices when !all
};

/// Second record of a compacted WAL (immediately after the manifest):
/// declares that the first `base_records` *logical* records of the log
/// (manifest included) were rewritten away and live on only as the
/// shard snapshot — recovery of a compacted shard MUST restore from a
/// snapshot whose `applied_records >= base_records`. The base counts
/// keep logical accounting intact: a physical record at index p >= 2
/// is logical record `base_records + (p - 2)`, and the shard's total
/// release count is `base_releases` plus the kRelease records in the
/// physical suffix.
struct CompactionRecord {
  std::uint64_t format_version = 1;
  /// Logical WAL records replaced (manifest included); equals the
  /// anchoring snapshot's `applied_records` at compaction time.
  std::uint64_t base_records = 0;
  /// kRelease records among the replaced prefix (the snapshot horizon).
  std::uint64_t base_releases = 0;
  /// kAddUser records among the replaced prefix (the snapshot users).
  std::uint64_t base_users = 0;
};

/// Router journal (replication/router.h): one endpoint added to — or
/// tombstoned off — the consistent-hash ring. The journal reuses the
/// WAL framing, so a torn router journal recovers exactly like a torn
/// shard WAL: truncate to the last complete record and resume.
struct RouterEndpointRecord {
  std::uint64_t format_version = 1;
  std::string endpoint;  ///< "host:port"
  bool removed = false;  ///< tombstone when true
};

/// Router journal: one user pinned to an explicit endpoint, overriding
/// the ring — the unit of rebalancing when a shard-server is added.
/// An empty endpoint clears the pin (the ring resumes deciding).
struct MigrateUserRecord {
  std::uint64_t format_version = 1;
  std::string name;
  std::string endpoint;
};

/// Snapshot prologue: how much of the WAL the snapshot reflects and
/// what the state dimensions are (readers validate counts against it).
/// Carries the quantization itself so a zero-user shard's snapshot is
/// still fully self-describing.
struct SnapHeaderRecord {
  std::uint64_t applied_records = 0;  ///< WAL records (manifest included)
  std::uint64_t horizon = 0;
  std::uint64_t num_users = 0;
  double alpha_resolution = -1.0;
};

/// Snapshot per-user record: name + running columns + the v2 accountant
/// blob (correlations/quantization; empty epsilon list — the schedule
/// and masks are snapshotted once globally, not per user).
struct SnapUserRecord {
  std::string name;
  std::uint64_t join = 0;
  double bpl_last = 0.0;
  double eps_sum = 0.0;
  AccountantImage image;
};

std::string EncodeManifest(const ManifestRecord& record);
StatusOr<ManifestRecord> DecodeManifest(const std::string& payload);

std::string EncodeAddUser(const AddUserRecord& record);
StatusOr<AddUserRecord> DecodeAddUser(const std::string& payload);

std::string EncodeRelease(const ReleaseRecord& record);
StatusOr<ReleaseRecord> DecodeRelease(const std::string& payload);

std::string EncodeCompaction(const CompactionRecord& record);
StatusOr<CompactionRecord> DecodeCompaction(const std::string& payload);

std::string EncodeRouterEndpoint(const RouterEndpointRecord& record);
StatusOr<RouterEndpointRecord> DecodeRouterEndpoint(
    const std::string& payload);

std::string EncodeMigrateUser(const MigrateUserRecord& record);
StatusOr<MigrateUserRecord> DecodeMigrateUser(const std::string& payload);

std::string EncodeSnapHeader(const SnapHeaderRecord& record);
StatusOr<SnapHeaderRecord> DecodeSnapHeader(const std::string& payload);

std::string EncodeSnapUser(const SnapUserRecord& record);
StatusOr<SnapUserRecord> DecodeSnapUser(const std::string& payload);

}  // namespace server
}  // namespace tcdp

#endif  // TCDP_SERVER_RECORDS_H_
