#include "server/records.h"

#include <cmath>

#include "common/binary_io.h"

namespace tcdp {
namespace server {
namespace {

/// Serializes an image with its epsilon list intentionally dropped —
/// WAL/snapshot records carry history as release rows, not per-user
/// epsilon lists (which would duplicate it num_users times).
std::string CorrelationsBlob(const AccountantImage& image) {
  AccountantImage stripped;
  stripped.correlations = image.correlations;
  stripped.cache_alpha_resolution = image.cache_alpha_resolution;
  return SerializeAccountantImage(stripped);
}

Status ExpectConsumed(const BinaryCursor& cursor, const char* what) {
  if (!cursor.empty()) {
    return Status::InvalidArgument(std::string(what) +
                                   ": trailing bytes in payload");
  }
  return Status::OK();
}

}  // namespace

std::string EncodeManifest(const ManifestRecord& record) {
  std::string out;
  PutVarint64(&out, record.format_version);
  PutVarint64(&out, record.shard_index);
  PutVarint64(&out, record.num_shards);
  out.push_back(record.share_loss_cache ? 1 : 0);
  PutDoubleBits(&out, record.alpha_resolution);
  return out;
}

StatusOr<ManifestRecord> DecodeManifest(const std::string& payload) {
  BinaryCursor cursor(payload);
  ManifestRecord record;
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&record.format_version));
  if (record.format_version != 1) {
    return Status::InvalidArgument(
        "DecodeManifest: unsupported format version " +
        std::to_string(record.format_version));
  }
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&record.shard_index));
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&record.num_shards));
  std::uint8_t share = 0;
  TCDP_RETURN_IF_ERROR(cursor.ReadByte(&share));
  if (share > 1) {
    return Status::InvalidArgument("DecodeManifest: bad share_loss_cache");
  }
  record.share_loss_cache = share == 1;
  TCDP_RETURN_IF_ERROR(cursor.ReadDoubleBits(&record.alpha_resolution));
  if (!std::isfinite(record.alpha_resolution)) {
    return Status::InvalidArgument(
        "DecodeManifest: alpha_resolution not finite");
  }
  if (record.num_shards == 0 || record.shard_index >= record.num_shards) {
    return Status::InvalidArgument("DecodeManifest: shard " +
                                   std::to_string(record.shard_index) +
                                   " of " +
                                   std::to_string(record.num_shards));
  }
  TCDP_RETURN_IF_ERROR(ExpectConsumed(cursor, "DecodeManifest"));
  return record;
}

std::string EncodeAddUser(const AddUserRecord& record) {
  std::string out;
  PutLengthPrefixed(&out, record.name);
  PutLengthPrefixed(&out, CorrelationsBlob(record.image));
  return out;
}

StatusOr<AddUserRecord> DecodeAddUser(const std::string& payload) {
  BinaryCursor cursor(payload);
  AddUserRecord record;
  TCDP_RETURN_IF_ERROR(cursor.ReadLengthPrefixed(&record.name));
  std::string blob;
  TCDP_RETURN_IF_ERROR(cursor.ReadLengthPrefixed(&blob));
  TCDP_ASSIGN_OR_RETURN(record.image, ParseAccountantImage(blob));
  if (!record.image.epsilons.empty()) {
    return Status::InvalidArgument(
        "DecodeAddUser: embedded accountant blob carries history");
  }
  TCDP_RETURN_IF_ERROR(ExpectConsumed(cursor, "DecodeAddUser"));
  return record;
}

std::string EncodeRelease(const ReleaseRecord& record) {
  std::string out;
  PutDoubleBits(&out, record.epsilon);
  out.push_back(record.all ? 1 : 0);
  if (!record.all) record.mask.EncodeTo(&out);
  return out;
}

StatusOr<ReleaseRecord> DecodeRelease(const std::string& payload) {
  BinaryCursor cursor(payload);
  ReleaseRecord record;
  TCDP_RETURN_IF_ERROR(cursor.ReadDoubleBits(&record.epsilon));
  if (!(record.epsilon > 0.0) || !std::isfinite(record.epsilon)) {
    return Status::InvalidArgument(
        "DecodeRelease: epsilon not finite and > 0");
  }
  std::uint8_t all = 0;
  TCDP_RETURN_IF_ERROR(cursor.ReadByte(&all));
  if (all > 1) {
    return Status::InvalidArgument("DecodeRelease: bad 'all' flag");
  }
  record.all = all == 1;
  if (!record.all) {
    TCDP_ASSIGN_OR_RETURN(record.mask, PackedMask::Decode(cursor));
    if (record.mask.is_all()) {
      return Status::InvalidArgument(
          "DecodeRelease: explicit mask cannot be the All mask");
    }
  }
  TCDP_RETURN_IF_ERROR(ExpectConsumed(cursor, "DecodeRelease"));
  return record;
}

std::string EncodeCompaction(const CompactionRecord& record) {
  std::string out;
  PutVarint64(&out, record.format_version);
  PutVarint64(&out, record.base_records);
  PutVarint64(&out, record.base_releases);
  PutVarint64(&out, record.base_users);
  return out;
}

StatusOr<CompactionRecord> DecodeCompaction(const std::string& payload) {
  BinaryCursor cursor(payload);
  CompactionRecord record;
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&record.format_version));
  if (record.format_version != 1) {
    return Status::InvalidArgument(
        "DecodeCompaction: unsupported format version " +
        std::to_string(record.format_version));
  }
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&record.base_records));
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&record.base_releases));
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&record.base_users));
  // The replaced prefix is manifest + adds + releases (nothing else is
  // a WAL record type), so the base counts must tile it exactly.
  if (record.base_records < 1 ||
      1 + record.base_releases + record.base_users != record.base_records) {
    return Status::InvalidArgument(
        "DecodeCompaction: base counts 1+" +
        std::to_string(record.base_users) + "+" +
        std::to_string(record.base_releases) + " do not tile " +
        std::to_string(record.base_records) + " records");
  }
  TCDP_RETURN_IF_ERROR(ExpectConsumed(cursor, "DecodeCompaction"));
  return record;
}

std::string EncodeRouterEndpoint(const RouterEndpointRecord& record) {
  std::string out;
  PutVarint64(&out, record.format_version);
  PutLengthPrefixed(&out, record.endpoint);
  out.push_back(record.removed ? 1 : 0);
  return out;
}

StatusOr<RouterEndpointRecord> DecodeRouterEndpoint(
    const std::string& payload) {
  BinaryCursor cursor(payload);
  RouterEndpointRecord record;
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&record.format_version));
  if (record.format_version != 1) {
    return Status::InvalidArgument(
        "DecodeRouterEndpoint: unsupported format version " +
        std::to_string(record.format_version));
  }
  TCDP_RETURN_IF_ERROR(cursor.ReadLengthPrefixed(&record.endpoint));
  if (record.endpoint.empty()) {
    return Status::InvalidArgument("DecodeRouterEndpoint: empty endpoint");
  }
  std::uint8_t removed = 0;
  TCDP_RETURN_IF_ERROR(cursor.ReadByte(&removed));
  if (removed > 1) {
    return Status::InvalidArgument("DecodeRouterEndpoint: bad removed flag");
  }
  record.removed = removed == 1;
  TCDP_RETURN_IF_ERROR(ExpectConsumed(cursor, "DecodeRouterEndpoint"));
  return record;
}

std::string EncodeMigrateUser(const MigrateUserRecord& record) {
  std::string out;
  PutVarint64(&out, record.format_version);
  PutLengthPrefixed(&out, record.name);
  PutLengthPrefixed(&out, record.endpoint);
  return out;
}

StatusOr<MigrateUserRecord> DecodeMigrateUser(const std::string& payload) {
  BinaryCursor cursor(payload);
  MigrateUserRecord record;
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&record.format_version));
  if (record.format_version != 1) {
    return Status::InvalidArgument(
        "DecodeMigrateUser: unsupported format version " +
        std::to_string(record.format_version));
  }
  TCDP_RETURN_IF_ERROR(cursor.ReadLengthPrefixed(&record.name));
  if (record.name.empty()) {
    return Status::InvalidArgument("DecodeMigrateUser: empty user name");
  }
  TCDP_RETURN_IF_ERROR(cursor.ReadLengthPrefixed(&record.endpoint));
  TCDP_RETURN_IF_ERROR(ExpectConsumed(cursor, "DecodeMigrateUser"));
  return record;
}

std::string EncodeSnapHeader(const SnapHeaderRecord& record) {
  std::string out;
  PutVarint64(&out, record.applied_records);
  PutVarint64(&out, record.horizon);
  PutVarint64(&out, record.num_users);
  PutDoubleBits(&out, record.alpha_resolution);
  return out;
}

StatusOr<SnapHeaderRecord> DecodeSnapHeader(const std::string& payload) {
  BinaryCursor cursor(payload);
  SnapHeaderRecord record;
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&record.applied_records));
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&record.horizon));
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&record.num_users));
  TCDP_RETURN_IF_ERROR(cursor.ReadDoubleBits(&record.alpha_resolution));
  if (!std::isfinite(record.alpha_resolution)) {
    return Status::InvalidArgument(
        "DecodeSnapHeader: alpha_resolution not finite");
  }
  TCDP_RETURN_IF_ERROR(ExpectConsumed(cursor, "DecodeSnapHeader"));
  return record;
}

std::string EncodeSnapUser(const SnapUserRecord& record) {
  std::string out;
  PutLengthPrefixed(&out, record.name);
  PutVarint64(&out, record.join);
  PutDoubleBits(&out, record.bpl_last);
  PutDoubleBits(&out, record.eps_sum);
  PutLengthPrefixed(&out, CorrelationsBlob(record.image));
  return out;
}

StatusOr<SnapUserRecord> DecodeSnapUser(const std::string& payload) {
  BinaryCursor cursor(payload);
  SnapUserRecord record;
  TCDP_RETURN_IF_ERROR(cursor.ReadLengthPrefixed(&record.name));
  TCDP_RETURN_IF_ERROR(cursor.ReadVarint64(&record.join));
  TCDP_RETURN_IF_ERROR(cursor.ReadDoubleBits(&record.bpl_last));
  TCDP_RETURN_IF_ERROR(cursor.ReadDoubleBits(&record.eps_sum));
  std::string blob;
  TCDP_RETURN_IF_ERROR(cursor.ReadLengthPrefixed(&blob));
  TCDP_ASSIGN_OR_RETURN(record.image, ParseAccountantImage(blob));
  if (!record.image.epsilons.empty()) {
    return Status::InvalidArgument(
        "DecodeSnapUser: embedded accountant blob carries history");
  }
  TCDP_RETURN_IF_ERROR(ExpectConsumed(cursor, "DecodeSnapUser"));
  return record;
}

}  // namespace server
}  // namespace tcdp
