#ifndef TCDP_SERVER_SHARDED_SERVICE_H_
#define TCDP_SERVER_SHARDED_SERVICE_H_

/// \file
/// ShardedReleaseService: the fleet accounting engine behind a durable,
/// horizontally partitioned request front.
///
///   requests ──► router (hash by user name) ──► micro-batcher
///                                                  │ tick
///                          ┌───────────────────────┼──────────────┐
///                          ▼                       ▼              ▼
///                    shard 0 queue           shard 1 queue   ... shard N-1
///                    worker thread           worker thread
///                    WAL ► bank              WAL ► bank
///
/// **Partitioning.** Users are hash-partitioned by name (FNV-1a mod N).
/// Each shard owns an AccountantBank, its user names, and a dedicated
/// worker thread consuming a bounded command queue — enqueueing blocks
/// when the queue is full (backpressure), so a slow shard throttles
/// ingest instead of buffering unboundedly.
///
/// **Micro-batching.** Per-user release requests coalesce: every
/// `batch_window` requests (or an explicit Flush/Close) ends a batch
/// with a *tick*. A tick dispatches, per distinct epsilon in
/// first-seen order, ONE global release: every shard receives a
/// RecordRelease(eps, local participants) command — shards without
/// participants record the release with an empty participant list, so
/// every user's skip-leakage still propagates and all shards share one
/// global time axis. Joins dispatch at the head of the tick that closes
/// their window (a user can join and release in the same window).
/// Batching is purely count/flush-driven — never wall-clock — so a
/// request stream maps to one deterministic event sequence, and
/// per-user series are **bitwise independent of the shard count**
/// (property-tested against the serial TplAccountant reference).
///
/// **Durability.** Each shard write-ahead logs every command to its
/// event log before applying it (src/server/event_log.h), fdatasyncing
/// every `sync_every` releases, and writes a point-in-time snapshot
/// (src/server/snapshot.h) every `snapshot_every` releases. `Recover`
/// reads every shard's valid WAL prefix, aligns all shards to the
/// minimum common horizon (a global release is committed only once
/// every shard has logged it), truncates torn or over-the-horizon
/// tails, restores from snapshots when they fit under that horizon
/// (replaying only the WAL suffix), and resumes appending. Recovered
/// per-user TPL series are bitwise identical to the uninterrupted
/// run's at the recovered horizon.
///
/// Thread-compatible like the bank: calls on one service must be
/// externally serialized (the internal shard parallelism is the
/// service's own).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/loss_cache.h"
#include "core/temporal_correlations.h"
#include "kernels/kernels.h"

namespace tcdp {
namespace server {

/// Retention policy for snapshot-anchored WAL compaction
/// (server/compaction.h; on-disk format in docs/DURABILITY.md).
struct CompactionOptions {
  /// Compact every shard right after a service-level Snapshot()
  /// completes (the snapshot just written is the anchor, so the
  /// rewritten WAL holds only the manifest + compaction records).
  bool after_snapshot = false;
  /// Auto-compact when any shard's on-disk WAL exceeds this many
  /// bytes; 0 disables. Checked at micro-batch tick boundaries
  /// against worker-published gauges, so the trigger point is
  /// approximate — benign, since compaction never changes accounting
  /// state, only disk layout.
  std::uint64_t max_wal_bytes = 0;
  /// Same, for on-disk (physical) WAL record count; 0 disables.
  std::uint64_t max_wal_records = 0;
};

struct ShardedServiceOptions {
  std::size_t num_shards = 1;
  /// Requests (joins + releases) coalesced per micro-batch tick.
  std::size_t batch_window = 64;
  /// Commands a shard queue buffers before enqueueing blocks.
  std::size_t queue_capacity = 256;
  /// Releases between automatic per-shard snapshots; 0 disables.
  std::size_t snapshot_every = 0;
  /// Releases between WAL fdatasyncs; 0 syncs only at snapshot/close.
  std::size_t sync_every = 0;
  /// WAL retention (log compaction) policy; off by default.
  CompactionOptions compaction;
  /// Hybrid shard×bank parallelism: worker threads each shard's bank
  /// fans its column updates out to, so S shards × K bank threads
  /// scale together. 1 (or 0) runs the bank inline on the shard
  /// worker. Persisted in the MANIFEST; per-user series are bitwise
  /// invariant to this knob (property-tested), so recovery at a
  /// different setting is still exact.
  std::size_t threads_per_shard = 1;
  /// Kernel dispatch mode Create() applies process-wide
  /// (kernels::SetKernelMode): kAuto picks the best vector backend the
  /// host supports, kScalar pins the reference. Backends are bitwise
  /// identical, so this is purely a performance knob; it is NOT
  /// persisted, and Recover leaves the process-wide mode untouched.
  TcdpKernelMode kernel_mode = TcdpKernelMode::kAuto;
  bool share_loss_cache = true;
  /// NOTE: the durable MANIFEST records only `cache.alpha_resolution`
  /// (and `share_loss_cache`); a non-default `cache.eval` method is
  /// not persisted, so a recovered service evaluates with the default
  /// method — bitwise replay is guaranteed for default-eval services
  /// (which includes everything `tcdp serve` can create).
  TemporalLossCache::Options cache;
};

/// Point-in-time view of one user's accounting (Query result).
struct UserReport {
  std::string name;
  std::size_t shard = 0;
  std::size_t join_release = 0;
  std::size_t horizon = 0;       ///< length of the user's own series
  double max_tpl = 0.0;          ///< event-level alpha
  double user_level_tpl = 0.0;   ///< Corollary 1 budget sum
  std::vector<double> epsilons;  ///< effective spend sequence (0 = skip)
  std::vector<double> tpl_series;
};

struct ShardStats {
  std::size_t users = 0;
  std::size_t horizon = 0;
  /// *Logical* WAL records (manifest included): monotone across
  /// compactions — the horizon snapshots and compaction bases key on.
  std::uint64_t wal_records = 0;
  /// Records physically on disk (== wal_records until a compaction
  /// rewrites the prefix away).
  std::uint64_t wal_physical_records = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t compactions = 0;  ///< WAL rewrites performed
  std::uint64_t snapshots_written = 0;
  std::uint64_t replayed_records = 0;   ///< WAL records applied by Recover
  bool restored_from_snapshot = false;
  /// Commands waiting in the shard queue when the stats call entered
  /// (before it drains the shard). Read from a gauge the producers and
  /// worker maintain atomically, so the value is a consistent point
  /// read, not a racy peek at the deque.
  std::size_t queue_depth = 0;
  /// Deepest the queue has ever been (backpressure high watermark).
  std::size_t queue_depth_hwm = 0;
  /// Enqueues that blocked on a full queue (backpressure events).
  std::uint64_t enqueue_blocks = 0;
};

struct ServiceStats {
  std::uint64_t join_requests = 0;
  std::uint64_t release_requests = 0;
  std::uint64_t ticks = 0;
  std::uint64_t global_releases = 0;  ///< global time steps dispatched
  /// TemporalLossCache totals aggregated over every shard's bank
  /// (zero when share_loss_cache is off — the banks run direct
  /// evaluators and nothing is memoized).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t cache_distinct_matrices = 0;
};

class ShardedReleaseService {
 public:
  /// Starts a fresh service. \p log_dir empty runs ephemeral (no
  /// durability); otherwise the directory is created, a MANIFEST and
  /// per-shard WALs are laid down, and AlreadyExists is returned if a
  /// MANIFEST is already present (use Recover for that).
  static StatusOr<std::unique_ptr<ShardedReleaseService>> Create(
      const std::string& log_dir, ShardedServiceOptions options = {});

  /// Rebuilds a service from \p log_dir (options come from its
  /// MANIFEST): per shard, snapshot restore when usable plus WAL
  /// replay, torn tails truncated, shards aligned to the minimum
  /// common horizon. The service resumes accepting requests.
  ///
  /// Shard replay fans out over \p recovery_threads (0 picks
  /// hardware_concurrency, 1 replays serially) — shards are
  /// independent, so the recovered state is bitwise identical at any
  /// thread count (property-tested).
  static StatusOr<std::unique_ptr<ShardedReleaseService>> Recover(
      const std::string& log_dir, std::size_t recovery_threads = 0);

  ~ShardedReleaseService();
  ShardedReleaseService(const ShardedReleaseService&) = delete;
  ShardedReleaseService& operator=(const ShardedReleaseService&) = delete;

  /// Enrolls a user (effective at the tick closing this window).
  /// AlreadyExists for duplicate names.
  Status Join(const std::string& name, TemporalCorrelations correlations);

  /// One per-user release request: \p name spends \p epsilon at the
  /// global time step its batch tick creates. NotFound for unknown
  /// users (a join in the same window is visible).
  Status Release(const std::string& name, double epsilon);

  /// Requests \p epsilon for every user enrolled at tick time.
  Status ReleaseAll(double epsilon);

  /// Forces the pending window to tick and drains every shard.
  Status Flush();

  /// Flush + snapshot every shard now. When the compaction policy's
  /// `after_snapshot` is set, also compacts every shard's WAL against
  /// the snapshot just written.
  Status Snapshot();

  /// Flush, fdatasync every shard's WAL at the current horizon (the
  /// floor no recovery can fall below), then rewrite every shard's WAL
  /// to manifest + compaction record + the records past its newest
  /// snapshot (server/compaction.h). A shard that has never
  /// snapshotted writes one first. FailedPrecondition on an ephemeral
  /// service. Accounting state is untouched; only disk layout changes.
  Status Compact();

  /// Drains the user's shard and reports its accounting.
  StatusOr<UserReport> Query(const std::string& name);

  /// Exports one user as a standalone "tcdp-accountant-v2" blob (the
  /// bank's SerializeUser hook): TplAccountant::Deserialize on it
  /// replays the user's sub-schedule through an identically quantized
  /// cache and reproduces the service's series bitwise — `tcdp replay
  /// --verify` is built on this.
  StatusOr<std::string> ExportUser(const std::string& name);

  /// Final tick, drain, fdatasync, join worker threads. Idempotent;
  /// also run by the destructor.
  Status Close();

  std::size_t num_shards() const { return shards_.size(); }
  /// Effective options (MANIFEST-recovered values after Recover,
  /// clamps applied) — lets tests assert the durable round-trip.
  const ShardedServiceOptions& options() const { return options_; }
  std::size_t num_users() const { return registry_.size(); }
  /// Global releases applied (uniform across shards after Flush).
  /// Drains every shard first so the read does not race the workers;
  /// note it does NOT tick the pending window.
  std::size_t horizon();
  const std::string& log_dir() const { return log_dir_; }

  /// Max over users and t of TPL (drains all shards first).
  StatusOr<double> OverallAlpha();
  /// (name, event-level alpha) for every user, shard-major order.
  StatusOr<std::vector<std::pair<std::string, double>>> PersonalizedAlphas();

  /// Drains \p shard first so the snapshot of its counters is not read
  /// mid-apply.
  ShardStats shard_stats(std::size_t shard);
  /// Request/tick totals plus the aggregated loss-cache stats (the
  /// cache counters are thread-safe reads, so this does not drain).
  ServiceStats stats() const;

  /// Shard index \p name routes to, given \p num_shards (exposed so
  /// tools and tests agree with the service's partitioning).
  static std::size_t ShardOf(const std::string& name,
                             std::size_t num_shards);

  /// Per-shard diagnostic text assembled ONLY from worker-published
  /// atomics (queue depth/HWM, WAL gauges, published horizon) — safe
  /// to call from the watchdog/flight-recorder thread while another
  /// thread drives the service, unlike shard_stats (which drains).
  std::string DiagnosticStateText() const;

  /// Test-only fault injection: while set, \p shard's worker spins
  /// between popping a command and applying it, freezing its progress
  /// heartbeat with work pending — exactly the signature the watchdog
  /// classifies as a stall. Cleared automatically by Close().
  void SetShardStallForTesting(std::size_t shard, bool stalled);

 private:
  struct Shard;
  struct PendingGroup;

  explicit ShardedReleaseService(ShardedServiceOptions options);

  Status InitShardsFresh(const std::string& log_dir);
  /// The pending window's group for \p epsilon (created on first use).
  PendingGroup& GroupFor(double epsilon);
  Status Tick();
  /// Counts one request into the micro-batch window; ticks (and runs
  /// the retention check) when the window fills.
  Status EndRequestWindow();
  /// Flush + snapshot every shard (no compaction hook): afterwards
  /// every shard's WAL is fdatasynced at the same horizon and carries
  /// a snapshot of it.
  Status SnapshotAllShards();
  /// Compact() phase 2 alone: every shard rewrites against its newest
  /// snapshot. Callers must have made the current horizon durable on
  /// EVERY shard first (sync or snapshot commands, drained).
  Status CompactShards();
  /// Retention check: when a shard's published WAL gauges exceed the
  /// thresholds, snapshot every shard (fresh anchors at the current
  /// horizon — anchoring a stale snapshot could leave the log over
  /// the threshold and re-trigger forever) and compact. Called at
  /// tick boundaries and after every Flush.
  Status MaybeAutoCompact();
  Status DrainShard(std::size_t shard);
  Status DrainAll();

  ShardedServiceOptions options_;
  std::string log_dir_;  // empty = ephemeral
  std::vector<std::unique_ptr<Shard>> shards_;
  /// name -> (shard, local index); local indices assigned at request
  /// time (the shard's AddUser order matches dispatch order).
  std::unordered_map<std::string, std::pair<std::uint32_t, std::uint32_t>>
      registry_;
  /// Users assigned to each shard so far (pending joins included).
  std::vector<std::uint32_t> shard_user_count_;

  // Micro-batch state (requests since the last tick).
  struct PendingJoin {
    std::string name;
    TemporalCorrelations correlations;
    std::size_t shard;
  };
  std::vector<PendingJoin> pending_joins_;
  std::vector<std::unique_ptr<PendingGroup>> pending_groups_;
  std::size_t window_count_ = 0;

  ServiceStats stats_;
  /// Re-entrancy guard: Compact() flushes, and Flush() checks the
  /// retention thresholds — without this a threshold-triggered
  /// compaction would recurse into itself.
  bool compacting_ = false;
  bool closed_ = false;
};

}  // namespace server
}  // namespace tcdp

#endif  // TCDP_SERVER_SHARDED_SERVICE_H_
