#ifndef TCDP_SERVER_SNAPSHOT_H_
#define TCDP_SERVER_SNAPSHOT_H_

/// \file
/// Shard snapshots: a point-in-time image of one shard's accountant
/// bank, written so recovery replays only the WAL suffix.
///
/// A snapshot is an event-log-framed file (same magic/CRC framing as
/// the WAL) holding, in order:
///
///   kSnapHeader    — applied WAL record count, horizon, user count
///   kSnapUser * U  — per user: name, join, running columns, and the
///                    "tcdp-accountant-v2" correlation blob
///   kSnapRelease*T — the global schedule: eps + participation row
///                    (word-RLE-packed) per historical release
///
/// Restore rebuilds the bank via AccountantBank::Restore — no loss
/// evaluations — and the recovered per-user series are bitwise
/// identical to the live ones. Writes go to "<path>.tmp" and rename
/// into place, so a crash mid-snapshot leaves the previous snapshot
/// intact; the service fsyncs its WAL *before* snapshotting, so a
/// snapshot never refers ahead of durable log state.

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/accountant_bank.h"

namespace tcdp {
namespace server {

struct ShardSnapshot {
  /// WAL records (manifest included) reflected in this image; recovery
  /// replays WAL records at indices >= applied_records.
  std::uint64_t applied_records = 0;
  std::vector<std::string> names;  ///< aligned with bank.users
  AccountantBank::Image bank;
  /// Quantization, carried in the header record (so a zero-user
  /// shard's snapshot is self-describing); every per-user blob must
  /// agree with it.
  double alpha_resolution = -1.0;
};

/// \brief Atomically writes \p snapshot to \p path (tmp + rename).
Status WriteShardSnapshot(const std::string& path,
                          const ShardSnapshot& snapshot);

/// \brief Reads and validates a snapshot. Any framing, CRC, count, or
/// semantic mismatch returns a non-OK Status (callers treat a bad
/// snapshot as absent and fall back to full WAL replay).
StatusOr<ShardSnapshot> ReadShardSnapshot(const std::string& path);

}  // namespace server
}  // namespace tcdp

#endif  // TCDP_SERVER_SNAPSHOT_H_
