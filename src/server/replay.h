#ifndef TCDP_SERVER_REPLAY_H_
#define TCDP_SERVER_REPLAY_H_

/// \file
/// The single WAL-suffix apply path: one decoded record goes into one
/// shard's bank + name list. Crash recovery (sharded_service Recover)
/// and replication followers (replication/follower) both funnel every
/// kAddUser / kRelease record through here, which is what makes a
/// follower's state bitwise identical to what the primary would
/// recover to at the same log prefix — there is exactly one
/// interpretation of a record, not two implementations of it.

#include <string>
#include <vector>

#include "common/status.h"
#include "core/accountant_bank.h"
#include "server/event_log.h"

namespace tcdp {
namespace server {

/// Applies one WAL suffix record to \p bank / \p names:
///   * kAddUser — enrolls the user (name appended, correlations added);
///   * kRelease — records the global release with the mask's
///     shard-local participants (or everyone, for an `all` mask).
/// Any other record type is InvalidArgument — manifests, compaction
/// markers and snapshot records are prefix metadata, never replayed.
Status ApplyWalRecord(const EventRecord& record, AccountantBank* bank,
                      std::vector<std::string>* names);

}  // namespace server
}  // namespace tcdp

#endif  // TCDP_SERVER_REPLAY_H_
