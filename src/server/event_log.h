#ifndef TCDP_SERVER_EVENT_LOG_H_
#define TCDP_SERVER_EVENT_LOG_H_

/// \file
/// Binary append-only write-ahead event log: the durability substrate
/// of the sharded release service.
///
/// File layout: an 8-byte magic ("TCDPWAL1") followed by framed
/// records:
///
///   [u8 type][u32 payload_len LE][u32 crc32 LE][payload bytes]
///
/// where the CRC covers the type byte and the payload, so neither a
/// flipped type nor flipped payload bytes go unnoticed. The same
/// framing carries snapshot files (they are just logs whose records
/// happen to be snapshot-typed).
///
/// Durability model: `Append` buffers in memory; `Flush` hands the
/// buffer to the OS (write(2)); `Sync` additionally fdatasyncs — the
/// service batches syncs across micro-batches (fsync per record would
/// serialize every release on the disk). A crash can therefore tear
/// the tail: `ReadEventLog` stops at the first record that is
/// truncated or fails its CRC, reports the valid prefix length, and
/// recovery truncates the file there and appends onward. A torn tail
/// is NOT an error (it is what a crash looks like); it is surfaced in
/// the result so callers can log it.

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace tcdp {
namespace server {

/// Record types across WAL and snapshot files. Values are durable —
/// append new ones, never renumber.
enum class EventType : std::uint8_t {
  kManifest = 1,      ///< first WAL record: shard identity + options
  kAddUser = 2,       ///< a user enrolled on this shard
  kRelease = 3,       ///< one global release (eps + local participation)
  kCompaction = 4,    ///< second record of a compacted WAL: the prefix
                      ///< summarized by the shard snapshot (base counts)
  kMigrateUser = 5,   ///< router journal: a user pinned to an explicit
                      ///< endpoint, overriding the consistent-hash ring
  kRouterEndpoint = 6,  ///< router journal: an endpoint added to (or
                        ///< tombstoned off) the ring
  kSnapHeader = 16,   ///< snapshot: counts + quantization
  kSnapUser = 17,     ///< snapshot: one user (v2 accountant blob + state)
  kSnapRelease = 18,  ///< snapshot: one historical release row
};

struct EventRecord {
  EventType type = EventType::kManifest;
  std::string payload;
};

/// \brief Buffered appender. Not thread-safe; each shard worker owns
/// its writer exclusively.
class EventLogWriter {
 public:
  EventLogWriter() = default;
  ~EventLogWriter();
  EventLogWriter(EventLogWriter&& other) noexcept;
  EventLogWriter& operator=(EventLogWriter&& other) noexcept;
  EventLogWriter(const EventLogWriter&) = delete;
  EventLogWriter& operator=(const EventLogWriter&) = delete;

  /// Creates the file (writing the magic) or opens it for append at
  /// \p resume_offset — recovery passes the valid-prefix length (and
  /// the record count of that prefix, so records_written() stays
  /// cumulative) after truncating a torn tail.
  static StatusOr<EventLogWriter> Create(const std::string& path);
  static StatusOr<EventLogWriter> OpenForAppend(const std::string& path,
                                                std::uint64_t resume_offset,
                                                std::uint64_t resume_records);

  /// Frames and buffers one record. Cheap; no I/O until Flush.
  Status Append(EventType type, const std::string& payload);

  /// write(2)s the buffer. Data reaches the OS, not necessarily disk.
  Status Flush();

  /// Flush + fdatasync: the batch boundary the service persists at.
  Status Sync();

  /// Flushes and closes. Further Appends are an error.
  Status Close();

  bool is_open() const { return fd_ >= 0; }
  /// Bytes framed so far (magic included), flushed or not.
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t records_written() const { return records_written_; }

 private:
  int fd_ = -1;
  std::string path_;
  std::string buffer_;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t records_written_ = 0;
};

/// \brief Result of scanning a log: every decodable record plus where
/// the valid prefix ends.
struct ReadLogResult {
  std::vector<EventRecord> records;
  /// Byte offset just past records[i] — recovery truncates at these
  /// boundaries when aligning shards to a common horizon.
  std::vector<std::uint64_t> record_end;
  std::uint64_t valid_bytes = 0;  ///< prefix length ending at a record boundary
  bool clean = true;              ///< false when a torn/corrupt tail was cut
  std::string tail_error;         ///< why scanning stopped, when !clean
};

/// \brief Scans \p path. Fails (NotFound/InvalidArgument) only when the
/// file is unreadable or its magic is wrong; torn tails come back as
/// clean=false with the valid prefix decoded.
StatusOr<ReadLogResult> ReadEventLog(const std::string& path);

/// \brief Truncates \p path to \p size bytes (recovery cutting a torn
/// tail before reopening for append).
Status TruncateFile(const std::string& path, std::uint64_t size);

}  // namespace server
}  // namespace tcdp

#endif  // TCDP_SERVER_EVENT_LOG_H_
