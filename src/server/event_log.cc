#include "server/event_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/binary_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tcdp {
namespace server {
namespace {

/// WAL instruments are process-global (shared across shard writers):
/// latency histograms for the two durability-critical operations plus
/// byte/record throughput counters. Resolved once, leaked with the
/// registry.
struct WalObs {
  obs::Histogram* append_seconds;
  obs::Histogram* fsync_seconds;
  obs::Counter* appended_bytes;
  obs::Counter* appended_records;
  static const WalObs& Get() {
    static const WalObs instruments = [] {
      obs::Registry& registry = obs::Registry::Default();
      WalObs o;
      o.append_seconds = registry.GetHistogram("tcdp_wal_append_seconds");
      o.fsync_seconds = registry.GetHistogram("tcdp_wal_fsync_seconds");
      o.appended_bytes = registry.GetCounter("tcdp_wal_appended_bytes_total");
      o.appended_records =
          registry.GetCounter("tcdp_wal_appended_records_total");
      return o;
    }();
    return instruments;
  }
};

constexpr char kMagic[8] = {'T', 'C', 'D', 'P', 'W', 'A', 'L', '1'};
constexpr std::size_t kHeaderBytes = 1 + 4 + 4;  // type + len + crc

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::Internal(op + " " + path + ": " + std::strerror(errno));
}

bool ValidEventType(std::uint8_t type) {
  switch (static_cast<EventType>(type)) {
    case EventType::kManifest:
    case EventType::kAddUser:
    case EventType::kRelease:
    case EventType::kCompaction:
    case EventType::kMigrateUser:
    case EventType::kRouterEndpoint:
    case EventType::kSnapHeader:
    case EventType::kSnapUser:
    case EventType::kSnapRelease:
      return true;
  }
  return false;
}

}  // namespace

EventLogWriter::~EventLogWriter() {
  if (fd_ >= 0) {
    (void)Flush();
    ::close(fd_);
  }
}

EventLogWriter::EventLogWriter(EventLogWriter&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      buffer_(std::move(other.buffer_)),
      bytes_written_(other.bytes_written_),
      records_written_(other.records_written_) {
  other.fd_ = -1;
}

EventLogWriter& EventLogWriter::operator=(EventLogWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      (void)Flush();
      ::close(fd_);
    }
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    buffer_ = std::move(other.buffer_);
    bytes_written_ = other.bytes_written_;
    records_written_ = other.records_written_;
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<EventLogWriter> EventLogWriter::Create(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("EventLogWriter::Create", path);
  EventLogWriter writer;
  writer.fd_ = fd;
  writer.path_ = path;
  writer.buffer_.append(kMagic, sizeof(kMagic));
  writer.bytes_written_ = sizeof(kMagic);
  return writer;
}

StatusOr<EventLogWriter> EventLogWriter::OpenForAppend(
    const std::string& path, std::uint64_t resume_offset,
    std::uint64_t resume_records) {
  const int fd = ::open(path.c_str(), O_WRONLY, 0644);
  if (fd < 0) return ErrnoStatus("EventLogWriter::OpenForAppend", path);
  if (::lseek(fd, static_cast<off_t>(resume_offset), SEEK_SET) < 0) {
    ::close(fd);
    return ErrnoStatus("EventLogWriter::OpenForAppend lseek", path);
  }
  EventLogWriter writer;
  writer.fd_ = fd;
  writer.path_ = path;
  writer.bytes_written_ = resume_offset;
  writer.records_written_ = resume_records;
  return writer;
}

Status EventLogWriter::Append(EventType type, const std::string& payload) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("EventLogWriter: appending to a closed log");
  }
  if (payload.size() > 0xFFFFFFFFull) {
    return Status::InvalidArgument("EventLogWriter: payload exceeds 4 GiB");
  }
  const WalObs& wal_obs = WalObs::Get();
  obs::ScopedLatencyTimer timer(wal_obs.append_seconds);
  const std::uint8_t type_byte = static_cast<std::uint8_t>(type);
  std::uint32_t crc = Crc32(&type_byte, 1);
  crc = Crc32(payload.data(), payload.size(), crc);
  buffer_.push_back(static_cast<char>(type_byte));
  PutFixed32(&buffer_, static_cast<std::uint32_t>(payload.size()));
  PutFixed32(&buffer_, crc);
  buffer_.append(payload);
  bytes_written_ += kHeaderBytes + payload.size();
  ++records_written_;
  if (obs::MetricsEnabled()) {
    wal_obs.appended_bytes->Add(kHeaderBytes + payload.size());
    wal_obs.appended_records->Increment();
  }
  return Status::OK();
}

Status EventLogWriter::Flush() {
  if (fd_ < 0) {
    return Status::FailedPrecondition("EventLogWriter: flushing a closed log");
  }
  const char* data = buffer_.data();
  std::size_t left = buffer_.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("EventLogWriter::Flush write", path_);
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  buffer_.clear();
  return Status::OK();
}

Status EventLogWriter::Sync() {
  TCDP_RETURN_IF_ERROR(Flush());
  obs::ScopedLatencyTimer timer(WalObs::Get().fsync_seconds);
  obs::ScopedSpan span("wal_fsync", "wal");
  if (::fdatasync(fd_) < 0) {
    return ErrnoStatus("EventLogWriter::Sync fdatasync", path_);
  }
  return Status::OK();
}

Status EventLogWriter::Close() {
  if (fd_ < 0) return Status::OK();
  const Status flushed = Flush();
  const int rc = ::close(fd_);
  fd_ = -1;
  if (!flushed.ok()) return flushed;
  if (rc < 0) return ErrnoStatus("EventLogWriter::Close", path_);
  return Status::OK();
}

StatusOr<ReadLogResult> ReadEventLog(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("ReadEventLog: cannot open " + path);
  }
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (contents.size() < sizeof(kMagic) ||
      std::memcmp(contents.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("ReadEventLog: " + path +
                                   " is not a tcdp event log (bad magic)");
  }
  ReadLogResult result;
  std::size_t pos = sizeof(kMagic);
  result.valid_bytes = pos;
  while (pos < contents.size()) {
    if (contents.size() - pos < kHeaderBytes) {
      result.clean = false;
      result.tail_error = "truncated record header at offset " +
                          std::to_string(pos);
      break;
    }
    const std::uint8_t type_byte =
        static_cast<std::uint8_t>(contents[pos]);
    BinaryCursor cursor(contents.data() + pos + 1, 8);
    std::uint32_t payload_len = 0;
    std::uint32_t stored_crc = 0;
    (void)cursor.ReadFixed32(&payload_len);
    (void)cursor.ReadFixed32(&stored_crc);
    if (!ValidEventType(type_byte)) {
      result.clean = false;
      result.tail_error = "unknown record type " +
                          std::to_string(type_byte) + " at offset " +
                          std::to_string(pos);
      break;
    }
    if (contents.size() - pos - kHeaderBytes < payload_len) {
      result.clean = false;
      result.tail_error = "truncated record payload at offset " +
                          std::to_string(pos);
      break;
    }
    const char* payload = contents.data() + pos + kHeaderBytes;
    std::uint32_t crc = Crc32(&type_byte, 1);
    crc = Crc32(payload, payload_len, crc);
    if (crc != stored_crc) {
      result.clean = false;
      result.tail_error =
          "CRC mismatch at offset " + std::to_string(pos);
      break;
    }
    EventRecord record;
    record.type = static_cast<EventType>(type_byte);
    record.payload.assign(payload, payload_len);
    result.records.push_back(std::move(record));
    pos += kHeaderBytes + payload_len;
    result.record_end.push_back(pos);
    result.valid_bytes = pos;
  }
  return result;
}

Status TruncateFile(const std::string& path, std::uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) < 0) {
    return ErrnoStatus("TruncateFile", path);
  }
  return Status::OK();
}

}  // namespace server
}  // namespace tcdp
