#include "server/compaction.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace tcdp {
namespace server {

Status PersistAnchorCopy(const std::string& snap_path,
                         const std::string& anchor_path) {
  std::ifstream in(snap_path, std::ios::binary);
  if (!in) {
    return Status::NotFound("PersistAnchorCopy: cannot read " + snap_path);
  }
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  const std::string tmp_path = anchor_path + ".tmp";
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                        0644);
  if (fd < 0) {
    return Status::Internal("PersistAnchorCopy: open " + tmp_path + ": " +
                            std::strerror(errno));
  }
  const char* data = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status failed = Status::Internal(
          "PersistAnchorCopy: write " + tmp_path + ": " +
          std::strerror(errno));
      ::close(fd);
      return failed;
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fdatasync(fd) < 0) {
    const Status failed = Status::Internal(
        "PersistAnchorCopy: fdatasync " + tmp_path + ": " +
        std::strerror(errno));
    ::close(fd);
    return failed;
  }
  if (::close(fd) < 0) {
    return Status::Internal("PersistAnchorCopy: close " + tmp_path + ": " +
                            std::strerror(errno));
  }
  if (std::rename(tmp_path.c_str(), anchor_path.c_str()) != 0) {
    return Status::Internal("PersistAnchorCopy: rename to " + anchor_path +
                            " failed");
  }
  return Status::OK();
}

StatusOr<WalBase> InspectWalBase(const ReadLogResult& log) {
  WalBase base;
  if (log.records.size() < 2 ||
      log.records[1].type != EventType::kCompaction) {
    return base;  // plain log: logical == physical
  }
  TCDP_ASSIGN_OR_RETURN(base.record,
                        DecodeCompaction(log.records[1].payload));
  base.compacted = true;
  base.suffix_start = 2;
  return base;
}

StatusOr<CompactionResult> CompactShardWal(const std::string& wal_path,
                                           const ManifestRecord& manifest,
                                           std::uint64_t base_records,
                                           std::uint64_t base_releases,
                                           std::uint64_t base_users) {
  TCDP_ASSIGN_OR_RETURN(ReadLogResult log, ReadEventLog(wal_path));
  if (!log.clean) {
    return Status::FailedPrecondition(
        "CompactShardWal: " + wal_path + " has a torn tail (" +
        log.tail_error + ") — sync and recover before compacting");
  }
  if (log.records.empty() ||
      log.records[0].type != EventType::kManifest) {
    return Status::InvalidArgument("CompactShardWal: " + wal_path +
                                   " has no manifest record");
  }
  TCDP_ASSIGN_OR_RETURN(WalBase prev, InspectWalBase(log));
  const std::uint64_t logical_count =
      prev.compacted
          ? prev.record.base_records + (log.records.size() - 2)
          : log.records.size();
  if (base_records < 1 || base_records > logical_count ||
      (prev.compacted && base_records < prev.record.base_records)) {
    return Status::InvalidArgument(
        "CompactShardWal: snapshot covers logical record " +
        std::to_string(base_records) + " of a log holding [" +
        std::to_string(prev.compacted ? prev.record.base_records : 0) +
        ", " + std::to_string(logical_count) + ")");
  }
  // Physical index of the first record NOT replaced by the snapshot.
  const std::size_t replay_from = static_cast<std::size_t>(
      prev.compacted ? 2 + (base_records - prev.record.base_records)
                     : base_records);
  // Cross-check the base counts against the prefix actually on disk: a
  // snapshot that does not describe this log must not erase it.
  std::uint64_t releases = prev.compacted ? prev.record.base_releases : 0;
  std::uint64_t users = prev.compacted ? prev.record.base_users : 0;
  for (std::size_t r = prev.suffix_start; r < replay_from; ++r) {
    if (log.records[r].type == EventType::kRelease) ++releases;
    if (log.records[r].type == EventType::kAddUser) ++users;
  }
  if (releases != base_releases || users != base_users) {
    return Status::Internal(
        "CompactShardWal: snapshot declares " +
        std::to_string(base_releases) + " releases / " +
        std::to_string(base_users) + " users over its horizon but the log "
        "prefix holds " + std::to_string(releases) + " / " +
        std::to_string(users) + " — refusing to erase it");
  }
  for (std::size_t r = replay_from; r < log.records.size(); ++r) {
    if (log.records[r].type != EventType::kAddUser &&
        log.records[r].type != EventType::kRelease) {
      return Status::InvalidArgument(
          "CompactShardWal: suffix record " + std::to_string(r) +
          " has unexpected type");
    }
  }

  CompactionRecord compaction;
  compaction.base_records = base_records;
  compaction.base_releases = base_releases;
  compaction.base_users = base_users;

  const std::string tmp_path = wal_path + ".compact.tmp";
  TCDP_ASSIGN_OR_RETURN(EventLogWriter writer,
                        EventLogWriter::Create(tmp_path));
  TCDP_RETURN_IF_ERROR(
      writer.Append(EventType::kManifest, EncodeManifest(manifest)));
  TCDP_RETURN_IF_ERROR(
      writer.Append(EventType::kCompaction, EncodeCompaction(compaction)));
  for (std::size_t r = replay_from; r < log.records.size(); ++r) {
    TCDP_RETURN_IF_ERROR(
        writer.Append(log.records[r].type, log.records[r].payload));
  }
  TCDP_RETURN_IF_ERROR(writer.Sync());
  CompactionResult result;
  result.bytes_before = log.valid_bytes;
  result.bytes_after = writer.bytes_written();
  result.physical_records = writer.records_written();
  result.suffix_records = log.records.size() - replay_from;
  TCDP_RETURN_IF_ERROR(writer.Close());
  if (std::rename(tmp_path.c_str(), wal_path.c_str()) != 0) {
    return Status::Internal("CompactShardWal: rename to " + wal_path +
                            " failed");
  }
  return result;
}

}  // namespace server
}  // namespace tcdp
