#include "server/replay.h"

#include <utility>

#include "server/records.h"

namespace tcdp {
namespace server {

Status ApplyWalRecord(const EventRecord& record, AccountantBank* bank,
                      std::vector<std::string>* names) {
  if (record.type == EventType::kAddUser) {
    TCDP_ASSIGN_OR_RETURN(AddUserRecord add, DecodeAddUser(record.payload));
    bank->AddUser(std::move(add.image.correlations));
    names->push_back(std::move(add.name));
    return Status::OK();
  }
  if (record.type == EventType::kRelease) {
    TCDP_ASSIGN_OR_RETURN(ReleaseRecord release,
                          DecodeRelease(record.payload));
    if (release.all) {
      return bank->RecordRelease(release.epsilon);
    }
    std::vector<std::size_t> participants;
    for (std::size_t u = 0; u < names->size(); ++u) {
      if (release.mask.bit(u)) participants.push_back(u);
    }
    return bank->RecordRelease(release.epsilon, participants);
  }
  return Status::InvalidArgument(
      "ApplyWalRecord: unexpected record type " +
      std::to_string(static_cast<int>(record.type)));
}

}  // namespace server
}  // namespace tcdp
