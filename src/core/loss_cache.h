#ifndef TCDP_CORE_LOSS_CACHE_H_
#define TCDP_CORE_LOSS_CACHE_H_

/// \file
/// A fleet-wide, thread-safe memo cache for temporal loss evaluations.
///
/// Every user whose adversary knows the same transition matrix induces
/// the *same* loss function L(alpha) (Equations 23/24); a fleet of
/// thousands of users therefore re-solves identical Algorithm-1
/// instances over and over. `TemporalLossCache` removes that redundancy:
///
///  * `Intern` content-deduplicates transition matrices, so all users
///    sharing a matrix share one `TemporalLossFunction` and one value
///    table;
///  * evaluations are memoized keyed by the *quantized* argument: the
///    `alpha_resolution` grid point at or above alpha, so the cached
///    value upper-bounds the true loss (never under-reports leakage).
///    Quantization makes near-identical accumulated leakages (which
///    differ only in floating-point dust) collapse onto one entry, and
///    every caller that hits a bucket observes bitwise the same value
///    regardless of thread interleaving.
///
/// The returned evaluators keep the cache internals alive via
/// shared_ptr, so they may outlive the `TemporalLossCache` handle
/// itself.

#include <cstdint>
#include <memory>

#include "core/privacy_loss.h"
#include "markov/stochastic_matrix.h"

namespace tcdp {

class TemporalLossCache {
 public:
  struct Options {
    /// Grid spacing for the alpha argument. Evaluations are performed at
    /// the grid point >= alpha (L is nondecreasing, so the memoized
    /// value stays an upper bound on the true loss); 0 disables
    /// quantization (exact-bits keys).
    double alpha_resolution = 1e-9;
    /// Shards per interned matrix's value table (lock striping).
    std::size_t num_shards = 16;
    /// How cache misses solve each ordered row pair (forwarded to
    /// TemporalLossFunction::EvaluateDetailed on every evaluation).
    LossEvalOptions eval;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;            ///< memoized (matrix, alpha) pairs
    std::size_t distinct_matrices = 0;  ///< interned after deduplication
    double HitRate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  TemporalLossCache();  // default Options
  explicit TemporalLossCache(const Options& options);

  /// Returns a shared, thread-safe evaluator for \p matrix's loss
  /// function. Matrices with identical contents map to the same
  /// underlying entry (compared exactly, not by hash alone).
  std::shared_ptr<const LossEvaluator> Intern(const StochasticMatrix& matrix);

  Stats stats() const;

  /// Drops every memoized value (interned evaluators stay valid and
  /// start re-populating).
  void Clear();

  class Impl;  // public so the returned evaluators can name it

 private:
  std::shared_ptr<Impl> impl_;
};

}  // namespace tcdp

#endif  // TCDP_CORE_LOSS_CACHE_H_
